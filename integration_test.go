package powercap_test

// End-to-end integration tests spanning the full paper pipeline:
// workload generation → trace serialization → LP bound → replay →
// policy comparison → discrete-ILP cross-check.

import (
	"bytes"
	"math"
	"testing"

	"powercap"
)

// TestPipelineEndToEnd runs the whole pipeline on every workload and
// asserts the cross-cutting invariants that make the reproduction a
// reproduction.
func TestPipelineEndToEnd(t *testing.T) {
	for _, name := range powercap.WorkloadNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := powercap.NewWorkload(name, powercap.WorkloadParams{
				Ranks: 4, Iterations: 5, Seed: 13, WorkScale: 0.25,
			})

			// 1. Serialize and re-read the trace; the graph must survive.
			var buf bytes.Buffer
			if err := powercap.WriteTrace(&buf, name, w.Graph, w.EffScale); err != nil {
				t.Fatal(err)
			}
			g, eff, err := powercap.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}

			sys := powercap.NewSystem(nil)
			sys.EffScale = eff

			const perSocket = 42.0
			jobCap := perSocket * float64(g.NumRanks)

			// 2. LP bound from the deserialized trace.
			sched, err := sys.UpperBound(g, jobCap)
			if err != nil {
				t.Fatal(err)
			}
			if sched.MakespanS <= 0 {
				t.Fatal("empty LP bound")
			}
			if sched.MarginalSecPerW > 1e-12 {
				t.Fatalf("positive marginal value of power: %v", sched.MarginalSecPerW)
			}

			// 3. Continuous replay respects the cap and the bound.
			rep, err := sys.Replay(g, sched, true)
			if err != nil {
				t.Fatal(err)
			}
			if rep.CapViolationW > 1e-6 {
				t.Fatalf("continuous replay violates cap by %v W", rep.CapViolationW)
			}

			// 4. Policies never beat the bound.
			st, err := sys.RunStatic(g, perSocket)
			if err != nil {
				t.Fatal(err)
			}
			if st.Makespan < sched.MakespanS*(1-1e-9) {
				t.Fatalf("Static %v beat the LP bound %v", st.Makespan, sched.MakespanS)
			}
			if v := st.MaxCapViolation(jobCap); v > 1e-9 {
				t.Fatalf("Static violates the job cap by %v W", v)
			}
			cd, err := sys.RunConductor(g, jobCap)
			if err != nil {
				t.Fatal(err)
			}
			if cd.PeakPowerW > jobCap+1e-6 {
				t.Fatalf("Conductor violates the job cap: %v > %v", cd.PeakPowerW, jobCap)
			}
		})
	}
}

// TestDiscreteILPThroughFacade cross-checks the continuous bound against
// the exact discrete optimum on a small trace.
func TestDiscreteILPThroughFacade(t *testing.T) {
	tb := powercap.NewTrace(3)
	sh := powercap.DefaultShape()
	for r := 0; r < 3; r++ {
		tb.Compute(r, 0.4+0.2*float64(r), sh, "w")
	}
	tb.Collective("sync")
	for r := 0; r < 3; r++ {
		tb.Compute(r, 0.3, sh, "w2")
	}
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	cont, err := sys.UpperBoundWhole(g, 110)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := sys.UpperBoundDiscrete(g, 110)
	if err != nil {
		t.Fatal(err)
	}
	if disc.MakespanS < cont.MakespanS-1e-6 {
		t.Fatalf("discrete optimum %v below the continuous bound %v", disc.MakespanS, cont.MakespanS)
	}
	if disc.MakespanS > cont.MakespanS*1.06 {
		t.Fatalf("rounding gap suspiciously large: %v vs %v", disc.MakespanS, cont.MakespanS)
	}
}

// TestSeededDeterminism: the same parameters must give bit-identical
// comparisons (the whole pipeline is seeded, with no wall-clock inputs).
func TestSeededDeterminism(t *testing.T) {
	run := func() float64 {
		w := powercap.NewWorkload("BT", powercap.WorkloadParams{Ranks: 4, Iterations: 5, Seed: 77, WorkScale: 0.3})
		sys := powercap.SystemFor(w, nil)
		cmp, err := sys.Compare(w, 40)
		if err != nil {
			t.Fatal(err)
		}
		return cmp.StaticS + cmp.ConductorS + cmp.LPBoundS
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic pipeline: %v vs %v", a, b)
	}
}

// TestMarginalPricesConsistentWithSweep: shadow prices must predict the
// local slope of the bound-vs-power curve.
func TestMarginalPricesConsistentWithSweep(t *testing.T) {
	w := powercap.NewWorkload("LULESH", powercap.WorkloadParams{Ranks: 4, Iterations: 4, Seed: 3, WorkScale: 0.25})
	sys := powercap.SystemFor(w, nil)
	const cap = 150.0
	a, err := sys.UpperBound(w.Graph, cap)
	if err != nil {
		t.Fatal(err)
	}
	const d = 0.2
	b, err := sys.UpperBound(w.Graph, cap+d)
	if err != nil {
		t.Fatal(err)
	}
	fd := (b.MakespanS - a.MakespanS) / d
	if math.Abs(fd-a.MarginalSecPerW) > 0.1*math.Abs(a.MarginalSecPerW)+1e-5 {
		t.Fatalf("marginal %v vs finite difference %v", a.MarginalSecPerW, fd)
	}
}
