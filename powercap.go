// Package powercap finds the limits of power-constrained application
// performance, reproducing Bailey et al., "Finding the Limits of
// Power-Constrained Application Performance" (SC 2015).
//
// The library models hybrid MPI + OpenMP applications as task DAGs, solves
// the paper's fixed-vertex-order linear program to obtain a near-optimal
// schedule of (DVFS frequency, OpenMP thread count) configurations under a
// job-level power bound, and compares that theoretical bound against two
// contemporary power-allocation policies: uniform Static capping and the
// adaptive Conductor runtime.
//
// # Quick start
//
//	sys := powercap.NewSystem(nil)                     // default E5-2670-like sockets
//	w := powercap.NewWorkload("LULESH", powercap.WorkloadParams{Ranks: 8, Iterations: 6})
//	cmp, err := sys.Compare(w, 50)                     // 50 W per socket
//	// cmp.LPvsStaticPct is the paper's "potential improvement"
//
// Lower-level building blocks live in the internal packages; everything a
// downstream user needs — trace construction (TraceBuilder), the LP bound
// (UpperBound), the flow ILP (FlowILP), policy runs, and schedule replay —
// is exposed here.
package powercap

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"powercap/internal/conductor"
	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/flowilp"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/policy"
	"powercap/internal/replay"
	"powercap/internal/resilience"
	"powercap/internal/sim"
	"powercap/internal/trace"
	"powercap/internal/workloads"
)

// Re-exported core types. These aliases are the public names; the internal
// packages are implementation detail.
type (
	// Model is the socket power/performance model (DVFS ladder, thread
	// counts, power calibration).
	Model = machine.Model
	// Config is one (frequency, threads) operating configuration.
	Config = machine.Config
	// Shape describes how a task's time and power respond to
	// configuration changes.
	Shape = machine.Shape
	// Graph is an application task DAG (vertices = MPI calls, edges =
	// computation tasks or messages).
	Graph = dag.Graph
	// TraceBuilder constructs Graphs by replaying an MPI call sequence.
	TraceBuilder = dag.Builder
	// Schedule is a solved LP schedule: per-task configuration mixes,
	// rounded discrete configurations, and the bound makespan.
	Schedule = core.Schedule
	// TaskChoice is the LP's decision for one task.
	TaskChoice = core.TaskChoice
	// Engine selects the sparse LP backend's basis-inverse engine; see
	// System.Engine. Parse names with ParseEngine.
	Engine = lp.Engine
	// Pricing selects the sparse LP backend's entering rule; see
	// System.Pricing. Parse names with ParsePricing.
	Pricing = lp.Pricing
	// FlowResult is a solved flow-ILP schedule.
	FlowResult = flowilp.Result
	// SimResult is a simulated execution (timeline + power profile).
	SimResult = sim.Result
	// ConductorResult is the outcome of a Conductor run.
	ConductorResult = conductor.RunResult
	// ReplayReport is the outcome of replaying an LP schedule.
	ReplayReport = replay.Report
	// Workload is a generated benchmark instance.
	Workload = workloads.Workload
	// WorkloadParams sizes a workload.
	WorkloadParams = workloads.Params
	// WindowedOptions tunes the windowed large-trace decomposition behind
	// SolveWindowed: window count, event overlap, coarsening epsilon, and
	// speculative-solve parallelism.
	WindowedOptions = core.WindowedOptions
	// WindowedSchedule is a stitched windowed solve — a Schedule plus the
	// decomposition's bookkeeping (window/coarsening sizes, warm-start and
	// escalation counts, seam and simulator validation).
	WindowedSchedule = core.WindowedSchedule
	// SynthParams sizes a synthetic Zipf-tailed large trace (Synthetic).
	SynthParams = workloads.SynthParams
)

// Sentinel errors re-exported for errors.Is checks.
var (
	// ErrInfeasible: no schedule exists under the power constraint.
	ErrInfeasible = core.ErrInfeasible
	// ErrFlowInfeasible: the flow ILP found no schedule under the cap.
	ErrFlowInfeasible = flowilp.ErrInfeasible
	// ErrFlowTooLarge: the instance exceeds the flow ILP's size limit.
	ErrFlowTooLarge = flowilp.ErrTooLarge
	// ErrDiscreteTooLarge: the instance exceeds the discrete (ILP)
	// formulation's size limit.
	ErrDiscreteTooLarge = core.ErrDiscreteTooLarge
)

// WriteTrace serializes an application graph (and optional per-socket
// efficiency metadata) to JSON — the artifact an MPI tracing library would
// produce.
func WriteTrace(w io.Writer, name string, g *Graph, effScale []float64) error {
	return trace.Write(w, name, g, effScale)
}

// ReadTrace parses a JSON trace back into a validated graph.
func ReadTrace(r io.Reader) (*Graph, []float64, error) {
	return trace.Read(r)
}

// NewTrace starts a trace/DAG builder for numRanks MPI processes.
func NewTrace(numRanks int) *TraceBuilder { return dag.NewBuilder(numRanks) }

// GraphDigest returns the canonical SHA-256 content hash of an application
// graph, hex-encoded. Two graphs with equal digests generate identical
// fixed-vertex-order LPs under the same machine model and efficiency
// scales; the schedule cache in pcschedd is keyed on it (see ScheduleKey
// and DESIGN.md §8).
func GraphDigest(g *Graph) string {
	d := dag.Digest(g)
	return hex.EncodeToString(d[:])
}

// ScheduleKey derives the content-addressed cache key identifying one solve
// on this System: the graph digest plus everything else the resulting
// Schedule depends on — the machine model calibration, the per-socket
// efficiency scales (they re-shape every Pareto frontier), the job-level
// cap, whether the solve decomposes at iteration boundaries, which
// realization strategy (if any, "" for none) converts the LP solution into
// a realizable schedule, and the windowed-decomposition parameters
// (windows ≤ 1 and coarsenEps 0 mean the monolithic path; a windowed solve
// with different window counts or coarsening epsilons is a different
// schedule, so it gets a different key). Equal keys imply byte-for-byte
// interchangeable results.
func (s *System) ScheduleKey(g *Graph, jobCapW float64, whole bool, realize string, windows int, coarsenEps float64) string {
	h := sha256.New()
	d := dag.Digest(g)
	h.Write(d[:])
	io.WriteString(h, s.Model.Fingerprint())
	binary.Write(h, binary.LittleEndian, uint64(len(s.EffScale)))
	for _, e := range s.EffScale {
		binary.Write(h, binary.LittleEndian, math.Float64bits(e))
	}
	binary.Write(h, binary.LittleEndian, math.Float64bits(jobCapW))
	if whole {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.Write(h, binary.LittleEndian, uint64(len(realize)))
	io.WriteString(h, realize)
	if windows <= 1 {
		windows = 0 // 0 and 1 are both the monolithic formulation
	}
	binary.Write(h, binary.LittleEndian, uint64(windows))
	binary.Write(h, binary.LittleEndian, math.Float64bits(coarsenEps))
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultModel returns the calibrated Xeon-E5-2670-like socket model used
// throughout the reproduction.
func DefaultModel() *Model { return machine.Default() }

// DefaultShape returns a generic compute-heavy task shape.
func DefaultShape() Shape { return machine.DefaultShape() }

// NewWorkload builds one of the benchmark proxies: the paper's "CoMD",
// "LULESH", "SP", or "BT", or the additional "CG" and "FT" NAS kernels
// (case-insensitive). It panics on unknown names; use WorkloadByName for
// error handling.
func NewWorkload(name string, p WorkloadParams) *Workload {
	w, err := workloads.ByName(name, p)
	if err != nil {
		panic(err)
	}
	return w
}

// WorkloadByName is NewWorkload with an error return.
func WorkloadByName(name string, p WorkloadParams) (*Workload, error) {
	return workloads.ByName(name, p)
}

// WorkloadNames lists the available benchmark proxies.
func WorkloadNames() []string { return workloads.Names() }

// Re-exported LP kernel knob values (see System.Engine / System.Pricing).
const (
	EngineAuto      = lp.EngineAuto
	EngineLU        = lp.EngineLU
	EngineEta       = lp.EngineEta
	PricingAuto     = lp.PricingAuto
	PricingSteepest = lp.PricingSteepest
	PricingDantzig  = lp.PricingDantzig
)

// ParseEngine parses a basis-engine name as accepted by CLI -engine flags:
// "auto" (or empty), "lu", or "eta".
func ParseEngine(s string) (Engine, error) { return lp.ParseEngine(s) }

// ParsePricing parses a pricing-rule name as accepted by CLI -pricing
// flags: "auto" (or empty), "steepest", or "dantzig".
func ParsePricing(s string) (Pricing, error) { return lp.ParsePricing(s) }

// SyntheticWorkload generates a seeded synthetic trace with Zipf-tailed
// phase work and mergeable fragment chains — the scaling substrate for
// SolveWindowed (the benchmark proxies top out at a few thousand events).
func SyntheticWorkload(p SynthParams) *Workload { return workloads.Synthetic(p) }

// System bundles a socket model with the per-socket efficiency variation
// of a concrete machine, and exposes the paper's solvers and policies.
//
// All solve entry points share one lazily created LP solver, whose
// digest-keyed problem-IR cache and frontier cache make repeated solves of
// the same graph (sweeps, realization after a solve, repeated service
// requests) pay for one problem build. Consequently Model and EffScale must
// not be mutated once the first solve has run.
type System struct {
	Model *Model
	// EffScale is the per-rank socket power-efficiency multiplier;
	// nil means 1.0 everywhere.
	EffScale []float64
	// ExploreIters is how many leading iterations are treated as
	// Conductor's configuration-exploration phase and excluded from
	// policy comparisons (the paper discards three).
	ExploreIters int
	// Resilience tunes the fallback ladder behind UpperBoundResilient
	// (zero value = defaults). Like Model and EffScale, it must not be
	// mutated after the first resilient solve.
	Resilience ResilienceConfig
	// Engine selects the sparse LP backend's basis-inverse engine:
	// EngineAuto (the default) resolves to the Markowitz sparse LU,
	// EngineEta to the reference product-form eta file. Must not be
	// mutated after the first solve.
	Engine Engine
	// Pricing selects the sparse LP backend's entering-variable rule:
	// PricingAuto (the default) resolves to steepest edge with partial
	// pricing, PricingDantzig to the reference full reduced-cost scan.
	// Must not be mutated after the first solve.
	Pricing Pricing

	mu     sync.Mutex
	lp     *core.Solver
	ladder *resilience.Ladder
}

// solver returns the System's shared LP solver, creating it on first use.
// core.Solver is safe for concurrent use, so every caller shares its IR and
// frontier caches.
func (s *System) solver() *core.Solver {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lp == nil {
		s.lp = core.NewSolver(s.Model, s.EffScale)
		s.lp.Engine = s.Engine
		s.lp.Pricing = s.Pricing
	}
	return s.lp
}

// NewSystem creates a System over the given model (nil = DefaultModel).
func NewSystem(model *Model) *System {
	if model == nil {
		model = machine.Default()
	}
	return &System{Model: model, ExploreIters: 3}
}

// SystemFor creates a System matched to a workload instance (its
// efficiency scales).
func SystemFor(w *Workload, model *Model) *System {
	s := NewSystem(model)
	s.EffScale = w.EffScale
	return s
}

// UpperBound solves the fixed-vertex-order LP per iteration (decomposing
// at MPI_Pcontrol boundaries) under a job-level power cap and returns the
// near-optimal schedule whose makespan is the paper's theoretical bound.
func (s *System) UpperBound(g *Graph, jobCapW float64) (*Schedule, error) {
	return s.UpperBoundCtx(context.Background(), g, jobCapW)
}

// UpperBoundCtx is UpperBound with per-request cancellation: the context is
// polled inside the simplex pivot loops, so an abandoned caller (a timed-out
// service request, a shutdown) stops the solve within a few pivots. The
// returned error wraps ctx.Err() when the solve was canceled.
func (s *System) UpperBoundCtx(ctx context.Context, g *Graph, jobCapW float64) (*Schedule, error) {
	return s.solver().SolveIterationsCtx(ctx, g, jobCapW)
}

// UpperBoundWhole solves one LP over the entire graph (no iteration
// decomposition); use for graphs without Pcontrol boundaries.
func (s *System) UpperBoundWhole(g *Graph, jobCapW float64) (*Schedule, error) {
	return s.solver().Solve(g, jobCapW)
}

// UpperBoundWholeCtx is UpperBoundWhole with per-request cancellation.
func (s *System) UpperBoundWholeCtx(ctx context.Context, g *Graph, jobCapW float64) (*Schedule, error) {
	return s.solver().SolveCtx(ctx, g, jobCapW)
}

// SolveWindowed solves the fixed-vertex-order LP by windowed decomposition:
// the event order is split into overlapping windows, each window's LP is
// solved speculatively in parallel and then committed left-to-right with
// dual-simplex warm starts, and the per-window solutions are stitched into
// one schedule via canonical replay and validated on the simulator. With
// opts.CoarsenEps > 0 the graph is first coarsened by ε-bounded chain
// merging and the solution expanded back to the original tasks. This is the
// scalable path for 100k+-event traces the monolithic LP cannot hold in
// memory; with Windows ≤ 1 and CoarsenEps 0 it reproduces UpperBoundWhole's
// objective to solver tolerance (see DESIGN.md §12).
func (s *System) SolveWindowed(g *Graph, jobCapW float64, opts WindowedOptions) (*WindowedSchedule, error) {
	return s.solver().SolveWindowed(g, jobCapW, opts)
}

// SolveWindowedCtx is SolveWindowed with per-request cancellation, threaded
// through every speculative and commit solve.
func (s *System) SolveWindowedCtx(ctx context.Context, g *Graph, jobCapW float64, opts WindowedOptions) (*WindowedSchedule, error) {
	return s.solver().SolveWindowedCtx(ctx, g, jobCapW, opts)
}

// UpperBoundDiscrete solves the fixed-vertex-order formulation with true
// configuration integrality (Eq. 5 — one configuration per task) by branch
// and bound. Only small instances are accepted (ErrDiscreteTooLarge
// otherwise); its purpose is quantifying the continuous relaxation's
// rounding gap exactly.
func (s *System) UpperBoundDiscrete(g *Graph, jobCapW float64) (*Schedule, error) {
	return s.solver().SolveDiscrete(g, jobCapW)
}

// FlowILP solves the appendix's flow-based integer-linear formulation,
// which optimizes event order as well; it only accepts small instances.
func (s *System) FlowILP(g *Graph, jobCapW float64) (*FlowResult, error) {
	return flowilp.NewSolver(s.Model, s.EffScale).Solve(g, jobCapW)
}

// RunStatic executes the graph under the uniform Static baseline at a
// per-socket cap.
func (s *System) RunStatic(g *Graph, perSocketCapW float64) (*SimResult, error) {
	return policy.NewStatic(s.Model, s.EffScale).Run(g, perSocketCapW)
}

// RunConductor executes the graph under the adaptive Conductor runtime at
// a job-level cap.
func (s *System) RunConductor(g *Graph, jobCapW float64) (*ConductorResult, error) {
	c := conductor.New(s.Model, s.EffScale)
	c.ExploreIters = s.ExploreIters
	return c.Run(g, jobCapW)
}

// Replay validates a solved schedule by replaying it on the simulator with
// the paper's switch overheads and short-task threshold (Sec. 6.1).
func (s *System) Replay(g *Graph, sched *Schedule, continuous bool) (*ReplayReport, error) {
	opts := replay.DefaultOptions(s.Model, s.EffScale)
	if continuous {
		opts.Mode = replay.Continuous
	}
	return replay.Run(g, sched, opts)
}

// Comparison holds one power point of the paper's headline experiment:
// the LP bound vs Static vs Conductor, measured over the post-exploration
// iterations.
type Comparison struct {
	Workload   string
	PerSocketW float64
	JobCapW    float64

	// Times over the measured iterations (exploration excluded).
	StaticS    float64
	ConductorS float64
	LPBoundS   float64

	// LPInfeasible marks caps the LP could not schedule ("Some benchmarks
	// were not able to be scheduled at the lowest average per-socket
	// power constraint").
	LPInfeasible bool

	// Potential improvements, as the figures report them:
	// improvement = (t_policy / t_reference − 1) · 100.
	LPvsStaticPct        float64
	LPvsConductorPct     float64
	ConductorVsStaticPct float64
}

// Compare evaluates the three approaches on a workload at a per-socket
// power cap, skipping the exploration iterations exactly as Sec. 5.3
// prescribes ("we discard the first three iterations of every
// application").
func (s *System) Compare(w *Workload, perSocketW float64) (*Comparison, error) {
	return s.CompareCtx(context.Background(), w, perSocketW)
}

// CompareCtx is Compare with per-request cancellation, threaded into the LP
// solves (the dominant cost) and checked between the policy simulations.
func (s *System) CompareCtx(ctx context.Context, w *Workload, perSocketW float64) (*Comparison, error) {
	g := w.Graph
	jobCap := perSocketW * float64(g.NumRanks)
	cmp := &Comparison{Workload: w.Name, PerSocketW: perSocketW, JobCapW: jobCap}

	slices, err := dag.SliceAll(g)
	if err != nil {
		return nil, err
	}
	if len(slices) <= s.ExploreIters {
		return nil, fmt.Errorf("powercap: workload has %d iterations, need more than the %d exploration iterations", len(slices), s.ExploreIters)
	}

	// Static, summed over measured slices.
	st := policy.NewStatic(s.Model, s.EffScale)
	for i := s.ExploreIters; i < len(slices); i++ {
		r, err := st.Run(slices[i].Graph, perSocketW)
		if err != nil {
			return nil, err
		}
		cmp.StaticS += r.Makespan
	}

	// Conductor over the whole run; MeasuredS already excludes
	// exploration.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := conductor.New(s.Model, s.EffScale)
	c.ExploreIters = s.ExploreIters
	cres, err := c.Run(g, jobCap)
	if err != nil {
		return nil, err
	}
	cmp.ConductorS = cres.MeasuredS

	// LP bound per measured slice.
	lps := s.solver()
	for i := s.ExploreIters; i < len(slices); i++ {
		sched, err := lps.SolveCtx(ctx, slices[i].Graph, jobCap)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				cmp.LPInfeasible = true
				break
			}
			return nil, err
		}
		cmp.LPBoundS += sched.MakespanS
	}

	if !cmp.LPInfeasible && cmp.LPBoundS > 0 {
		cmp.LPvsStaticPct = (cmp.StaticS/cmp.LPBoundS - 1) * 100
		cmp.LPvsConductorPct = (cmp.ConductorS/cmp.LPBoundS - 1) * 100
	}
	if cmp.ConductorS > 0 {
		cmp.ConductorVsStaticPct = (cmp.StaticS/cmp.ConductorS - 1) * 100
	}
	return cmp, nil
}
