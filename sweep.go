package powercap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"powercap/internal/core"
)

// Power-cap sweep orchestration. The paper's headline figures evaluate the
// LP bound across a family of power constraints and a set of benchmarks;
// this file provides the fan-out machinery: warm-started serial sweeps
// (SolveSweep), a bounded worker pool over contiguous cap chunks
// (SweepParallel), and multi-workload orchestration (SweepJobsParallel).

// SweepPoint is the result of one cap in a sweep: a Schedule, or the error
// that cap produced (match with errors.Is(pt.Err, powercap.ErrInfeasible)).
type SweepPoint = core.SweepPoint

// SolverStats aggregates LP solver effort (warm starts, pivots,
// refactorizations) across the solves behind a Schedule or sweep.
type SolverStats = core.Stats

// SolveSweep solves the whole-graph LP at every cap in jobCapsW, in order,
// building the LP once and warm starting each solve from the previous
// cap's optimal basis. Per-cap infeasibility lands in SweepPoint.Err; the
// returned error is reserved for problems with the graph itself. Monotonic
// cap orders maximize basis reuse, but any order is correct.
func (s *System) SolveSweep(g *Graph, jobCapsW []float64) ([]SweepPoint, error) {
	return s.solver().SolveSweep(g, jobCapsW)
}

// SolveSweepCtx is SolveSweep with per-request cancellation threaded into
// every cap's pivot loop; after ctx is done the remaining caps carry the
// cancellation error without being attempted.
func (s *System) SolveSweepCtx(ctx context.Context, g *Graph, jobCapsW []float64) ([]SweepPoint, error) {
	return s.solver().SolveSweepCtx(ctx, g, jobCapsW)
}

// MaxSweepPoints bounds how many caps a single "hi:lo:step" spec may
// expand to; beyond it the spec is almost certainly a typo (e.g. a
// milliwatt step) and would pin a solver for hours.
const MaxSweepPoints = 10000

// ParseSweepSpec parses and validates a per-socket power sweep spec
// "hi:lo:step" (watts) into a descending cap list: hi, hi−step, …, down to
// the last value ≥ lo (within a 1e-9 tolerance so "70:30:5" includes 30).
// Descending order maximizes warm-start reuse — the feasible region only
// shrinks as the cap drops, so each basis repairs cheaply into the next.
//
// Malformed specs are rejected with a descriptive error rather than being
// reinterpreted: all three fields must be finite numbers, step must be
// positive, hi must be ≥ lo (no silent swapping), lo must be positive (a
// zero-or-negative power cap is meaningless), and the expansion must stay
// within MaxSweepPoints.
func ParseSweepSpec(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("sweep spec %q: want hi:lo:step (W per socket)", spec)
	}
	names := [3]string{"hi", "lo", "step"}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep spec %q: %s field %q is not a number", spec, names[i], p)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sweep spec %q: %s field must be finite, got %v", spec, names[i], v)
		}
		vals[i] = v
	}
	hi, lo, step := vals[0], vals[1], vals[2]
	if step <= 0 {
		return nil, fmt.Errorf("sweep spec %q: step must be positive, got %g", spec, step)
	}
	if hi < lo {
		return nil, fmt.Errorf("sweep spec %q: hi (%g) must be ≥ lo (%g); sweeps run high to low", spec, hi, lo)
	}
	if lo <= 0 {
		return nil, fmt.Errorf("sweep spec %q: lo must be positive, got %g", spec, lo)
	}
	if n := (hi-lo)/step + 1; n > MaxSweepPoints {
		return nil, fmt.Errorf("sweep spec %q: expands to %.0f caps (max %d)", spec, n, MaxSweepPoints)
	}
	var caps []float64
	for c := hi; c >= lo-1e-9; c -= step {
		caps = append(caps, c)
	}
	return caps, nil
}

// SweepParallel is SolveSweep fanned across a bounded worker pool: the caps
// are split into contiguous chunks (one per worker) so warm starting still
// applies within each chunk, and the workers share one solver (and thus one
// frontier cache). workers ≤ 1 degrades to the serial SolveSweep. Results
// are returned in the order of jobCapsW regardless of completion order.
func (s *System) SweepParallel(g *Graph, jobCapsW []float64, workers int) ([]SweepPoint, error) {
	if workers > len(jobCapsW) {
		workers = len(jobCapsW)
	}
	if workers <= 1 {
		return s.SolveSweep(g, jobCapsW)
	}
	solver := s.solver()
	pts := make([]SweepPoint, len(jobCapsW))
	chunk := (len(jobCapsW) + workers - 1) / workers

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for lo := 0; lo < len(jobCapsW); lo += chunk {
		hi := min(lo+chunk, len(jobCapsW))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			res, err := solver.SolveSweep(g, jobCapsW[lo:hi])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			copy(pts[lo:hi], res)
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return pts, nil
}

// MarginalPoint is one cap on a job's power–time curve: the LP bound and
// the shadow price of power (d makespan / d cap, ≤ 0) at that cap, or the
// infeasibility marker below the feasibility floor.
type MarginalPoint struct {
	CapW            float64
	MakespanS       float64
	MarginalSecPerW float64
	Infeasible      bool
}

// MarginalCurve traces a job's power–time curve: the whole-graph LP is
// built once and re-solved at every cap in jobCapsW with dual-simplex warm
// starts, and each feasible point reports the makespan bound together with
// the power constraint's shadow price. The duals are the marginal
// information a cluster-level allocator needs (see AllocateCluster): a
// steep point buys more time per watt than a flat one, and by LP convexity
// |MarginalSecPerW| is non-increasing as the cap grows, decaying to 0 once
// the job saturates. Infeasible caps set Infeasible rather than failing the
// curve; the returned error is reserved for problems with the graph itself.
func (s *System) MarginalCurve(ctx context.Context, g *Graph, jobCapsW []float64) ([]MarginalPoint, error) {
	pts, err := s.solver().SolveSweepCtx(ctx, g, jobCapsW)
	if err != nil {
		return nil, err
	}
	curve := make([]MarginalPoint, len(pts))
	for i, pt := range pts {
		curve[i] = MarginalPoint{CapW: jobCapsW[i]}
		switch {
		case pt.Err == nil:
			curve[i].MakespanS = pt.Schedule.MakespanS
			curve[i].MarginalSecPerW = pt.Schedule.MarginalSecPerW
		case errors.Is(pt.Err, ErrInfeasible):
			curve[i].Infeasible = true
		default:
			return nil, fmt.Errorf("powercap: marginal curve at %.1f W: %w", jobCapsW[i], pt.Err)
		}
	}
	return curve, nil
}

// SweepJob names one workload's sweep in a multi-workload fan-out.
type SweepJob struct {
	Name  string
	Graph *Graph
	CapsW []float64
}

// SweepJobResult is the outcome of one SweepJob: its points, or the
// job-level error (per-cap errors stay inside the points).
type SweepJobResult struct {
	Name   string
	Points []SweepPoint
	Err    error
}

// SweepJobsParallel runs each job's warm-started sweep on a bounded worker
// pool (workers ≤ 1 runs serially) and returns results in job order. Each
// job keeps its caps contiguous on one worker, preserving warm starts; the
// jobs share one solver per System so frontier work is cached across
// workloads with identical task classes.
func (s *System) SweepJobsParallel(jobs []SweepJob, workers int) []SweepJobResult {
	results := make([]SweepJobResult, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	solver := s.solver()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job := jobs[i]
				results[i].Name = job.Name
				if job.Graph == nil {
					results[i].Err = fmt.Errorf("powercap: sweep job %q has no graph", job.Name)
					continue
				}
				results[i].Points, results[i].Err = solver.SolveSweep(job.Graph, job.CapsW)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
