// Command pctrace generates, inspects, and converts application traces —
// the DAG artifacts the LP consumes. It plays the role of the paper's MPI
// tracing library frontend.
//
// Usage:
//
//	pctrace gen  -workload BT -ranks 8 -iters 6 -o bt.trace.json
//	pctrace info bt.trace.json
//	pctrace solve -cap 40 bt.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/trace"
	"powercap/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pctrace gen  -workload <name> [-ranks N] [-iters N] [-seed N] [-scale F] [-o file]
  pctrace gen  -events N [-ranks N] [-zipf S] [-seed N] [-scale F] [-o file]   (synthetic Zipf trace)
  pctrace info  <trace.json>
  pctrace solve -cap <W/socket> <trace.json>`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "CoMD", "workload name, or \"synthetic\" for the Zipf large-trace generator")
	ranks := fs.Int("ranks", 8, "MPI ranks")
	iters := fs.Int("iters", 6, "iterations (benchmark proxies)")
	events := fs.Int("events", 0, "target event (vertex) count — selects the synthetic generator")
	zipfS := fs.Float64("zipf", 0, "synthetic Zipf exponent for phase-task work (> 1; default 1.5)")
	seed := fs.Int64("seed", 1, "seed")
	scale := fs.Float64("scale", 1.0, "work scale")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)

	var w *workloads.Workload
	if *events > 0 || strings.EqualFold(*name, "synthetic") {
		w = workloads.Synthetic(workloads.SynthParams{
			Ranks: *ranks, Events: *events, Seed: *seed, WorkScale: *scale, ZipfS: *zipfS,
		})
	} else {
		var err error
		w, err = workloads.ByName(*name, workloads.Params{Ranks: *ranks, Iterations: *iters, Seed: *seed, WorkScale: *scale})
		if err != nil {
			fatal(err)
		}
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := trace.Write(dst, w.Name, w.Graph, w.EffScale); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d vertices, %d tasks\n", *out, len(w.Graph.Vertices), len(w.Graph.Tasks))
	}
}

func loadTrace(path string) (*dag.Graph, []float64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, eff, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return g, eff
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	g, eff := loadTrace(fs.Arg(0))

	computes, messages, zero := 0, 0, 0
	work := 0.0
	classes := map[string]int{}
	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
			messages++
		case t.Work <= 0:
			zero++
		default:
			computes++
			work += t.Work
			classes[t.Class]++
		}
	}
	fmt.Printf("ranks:       %d\n", g.NumRanks)
	fmt.Printf("vertices:    %d\n", len(g.Vertices))
	fmt.Printf("tasks:       %d compute (%d degenerate), %d messages\n", computes+zero, zero, messages)
	fmt.Printf("iterations:  %d\n", g.Iterations()+1)
	fmt.Printf("total work:  %.2f thread-seconds at max frequency\n", work)
	fmt.Printf("classes:     %v\n", classes)
	if len(eff) > 0 {
		lo, hi := eff[0], eff[0]
		for _, e := range eff {
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		fmt.Printf("efficiency:  %.3f–%.3f\n", lo, hi)
	}
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	capW := fs.Float64("cap", 50, "per-socket average power cap (W)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	g, eff := loadTrace(fs.Arg(0))
	s := core.NewSolver(machine.Default(), eff)
	sched, err := s.SolveIterations(g, *capW*float64(g.NumRanks))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("LP bound at %.0f W/socket: %.4f s (marginal %.4f s/W; %d solves, %d pivots)\n",
		*capW, sched.MakespanS, sched.MarginalSecPerW, sched.Stats.Solves, sched.Stats.SimplexIter)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pctrace:", err)
	os.Exit(1)
}
