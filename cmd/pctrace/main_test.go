package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/trace"
	"powercap/internal/workloads"
)

// TestRoundTrip: for every workload, gen → file → solve must reproduce the
// in-memory pipeline exactly — identical canonical digest, identical
// efficiency scales, identical solved makespan.
func TestRoundTrip(t *testing.T) {
	const (
		ranks = 2
		iters = 3
		seed  = 7
		scale = 0.1
		capW  = 55.0
	)
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name+".trace.json")
			cmdGen([]string{
				"-workload", name, "-ranks", fmt.Sprint(ranks),
				"-iters", fmt.Sprint(iters), "-seed", fmt.Sprint(seed),
				"-scale", fmt.Sprint(scale), "-o", path,
			})

			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			g, eff, err := trace.Read(f)
			if err != nil {
				t.Fatalf("reading generated trace: %v", err)
			}

			w, err := workloads.ByName(name, workloads.Params{
				Ranks: ranks, Iterations: iters, Seed: seed, WorkScale: scale,
			})
			if err != nil {
				t.Fatal(err)
			}
			if dag.Digest(g) != dag.Digest(w.Graph) {
				t.Fatal("round-tripped graph digest differs from the in-memory graph")
			}
			if len(eff) != len(w.EffScale) {
				t.Fatalf("eff_scale length %d, want %d", len(eff), len(w.EffScale))
			}
			for i := range eff {
				if eff[i] != w.EffScale[i] {
					t.Fatalf("eff_scale[%d] = %v, want %v", i, eff[i], w.EffScale[i])
				}
			}

			jobCap := capW * float64(ranks)
			fromFile, err := core.NewSolver(machine.Default(), eff).SolveIterations(g, jobCap)
			if err != nil {
				t.Fatalf("solving round-tripped trace: %v", err)
			}
			inMem, err := core.NewSolver(machine.Default(), w.EffScale).SolveIterations(w.Graph, jobCap)
			if err != nil {
				t.Fatalf("solving in-memory graph: %v", err)
			}
			if fromFile.MakespanS != inMem.MakespanS {
				t.Errorf("makespan from file %v != in-memory %v", fromFile.MakespanS, inMem.MakespanS)
			}
		})
	}
}

// TestSolveCommand exercises the solve subcommand glue end to end on a
// generated trace file.
func TestSolveCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "comd.trace.json")
	cmdGen([]string{"-workload", "CoMD", "-ranks", "2", "-iters", "3", "-scale", "0.1", "-o", path})

	out := captureStdout(t, func() {
		cmdSolve([]string{"-cap", "55", path})
	})
	if !bytes.Contains(out, []byte("LP bound at 55 W/socket:")) {
		t.Errorf("solve output missing bound line:\n%s", out)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote (the pctrace subcommands print to the real stdout).
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	w.Close()
	out := <-done
	r.Close()
	return out
}
