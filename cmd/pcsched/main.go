// Command pcsched generates a workload trace, solves the paper's
// fixed-vertex-order LP under a power constraint, and prints the resulting
// schedule with its replay validation — the end-to-end pipeline of the
// paper in one invocation.
//
// Usage:
//
//	pcsched -workload LULESH -ranks 16 -cap 50
//	pcsched -workload BT -cap 30 -policy all
//	pcsched -workload BT -cap 30 -policy all -json
//	pcsched -workload BT -cap 30 -policy lp -json
//	pcsched -workload SP -sweep 70:30:5 -workers 4
//	pcsched -workload LULESH -cap 50 -trace trace.json
//
// With -policy all -json, the three-way comparison is emitted as JSON in
// the same schema pcschedd's POST /v1/compare returns; with -policy lp
// -json, the solve is emitted in the POST /v1/solve response schema
// (including the solver-effort stats block), so scripted consumers can
// switch between the CLI and the service freely.
//
// -trace FILE records the whole solve pipeline — trace construction, IR
// build, LP phases, realization, simulation — as spans and writes a Chrome
// trace-event JSON document; open it in chrome://tracing or Perfetto.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"powercap"
	"powercap/internal/obs"
	"powercap/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcsched:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("pcsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "CoMD", "workload: CoMD, LULESH, SP, BT, CG, or FT")
		ranks    = fs.Int("ranks", 16, "MPI ranks (one socket each)")
		iters    = fs.Int("iters", 8, "application iterations")
		seed     = fs.Int64("seed", 1, "workload seed")
		scale    = fs.Float64("scale", 1.0, "task work scale")
		capW     = fs.Float64("cap", 50, "per-socket average power cap (W)")
		policy   = fs.String("policy", "lp", "lp, static, conductor, or all")
		jsonOut  = fs.Bool("json", false, "emit JSON: with -policy all the /v1/compare schema, with -policy lp the /v1/solve schema")
		gantt    = fs.Bool("gantt", false, "render an ASCII timeline of the replayed LP schedule")
		sweep    = fs.String("sweep", "", "per-socket cap sweep \"hi:lo:step\" (W): solve the LP bound at every cap, warm-started; overrides -cap and -policy")
		workers  = fs.Int("workers", 1, "parallel sweep workers (contiguous cap chunks; only with -sweep)")
		realize  = fs.String("realize", "", "realize the LP schedule as an executable one: nearest, down, replay, or best (simulator-validated, reported with its bound gap)")
		traceOut = fs.String("trace", "", "write the pipeline spans of this run as Chrome trace-event JSON to FILE (chrome://tracing / Perfetto)")
		windows  = fs.Int("windows", 0, "solve by windowed decomposition with this many event windows (> 1; the large-trace path, see DESIGN.md §12)")
		coarsen  = fs.Float64("coarsen-eps", 0, "merge same-rank compute chains below this many seconds of work before solving (windowed path; 0 disables)")
		events   = fs.Int("events", 0, "use a synthetic Zipf trace with this many events instead of -workload (the large-trace generator)")
		cluster  = fs.String("cluster", "", "allocate one site-wide budget across the jobs in FILE (the /v1/cluster request schema) instead of solving a single workload; -json emits the /v1/cluster response schema")
		engine   = fs.String("engine", "auto", "sparse LP basis engine: auto (lu), lu, or eta")
		pricing  = fs.String("pricing", "auto", "sparse LP pricing rule: auto (steepest), steepest, or dantzig")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := powercap.ParseEngine(*engine)
	if err != nil {
		return err
	}
	pri, err := powercap.ParsePricing(*pricing)
	if err != nil {
		return err
	}

	if *cluster != "" {
		return runCluster(*cluster, *jsonOut, stdout)
	}

	if *traceOut != "" {
		tr := obs.NewTrace(0)
		obs.SetGlobal(tr)
		defer func() {
			obs.SetGlobal(nil)
			f, ferr := os.Create(*traceOut)
			if ferr != nil {
				tr.Release()
				err = errors.Join(err, ferr)
				return
			}
			werr := obs.WriteChrome(f, tr)
			cerr := f.Close()
			fmt.Fprintf(stderr, "pcsched: trace: %d spans written to %s\n",
				len(tr.Snapshot()), *traceOut)
			tr.Release()
			err = errors.Join(err, werr, cerr)
		}()
	}

	var w *powercap.Workload
	if *events > 0 {
		w = powercap.SyntheticWorkload(powercap.SynthParams{
			Ranks: *ranks, Events: *events, Seed: *seed, WorkScale: *scale,
		})
	} else {
		w, err = powercap.WorkloadByName(*name, powercap.WorkloadParams{
			Ranks: *ranks, Iterations: *iters, Seed: *seed, WorkScale: *scale,
		})
		if err != nil {
			return err
		}
	}
	sys := powercap.SystemFor(w, nil)
	sys.Engine, sys.Pricing = eng, pri
	jobCap := *capW * float64(*ranks)

	if *jsonOut {
		if *sweep != "" {
			return errors.New("-json does not support -sweep")
		}
		switch *policy {
		case "all":
			return runCompareJSON(sys, w, *capW, stdout)
		case "lp":
			return runSolveJSON(sys, w, jobCap, *realize, *windows, *coarsen, stdout)
		default:
			return errors.New("-json requires -policy all or -policy lp")
		}
	}

	fmt.Fprintf(stdout, "%s: %d ranks, %d iterations, %d tasks, %d MPI-call vertices\n",
		w.Name, *ranks, *iters, len(w.Graph.Tasks), len(w.Graph.Vertices))
	if *sweep != "" {
		return runSweep(sys, w, *sweep, *ranks, *workers, stdout)
	}
	fmt.Fprintf(stdout, "power constraint: %.0f W per socket, %.0f W job-level\n\n", *capW, jobCap)

	runLP := *policy == "lp" || *policy == "all"
	runStatic := *policy == "static" || *policy == "all"
	runConductor := *policy == "conductor" || *policy == "all"
	if !runLP && !runStatic && !runConductor {
		return fmt.Errorf("unknown policy %q", *policy)
	}

	if runStatic {
		res, err := sys.RunStatic(w.Graph, *capW)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Static:    %.3f s (peak power %.1f W, avg %.1f W)\n",
			res.Makespan, res.PeakPowerW, res.AvgPower())
	}
	if runConductor {
		res, err := sys.RunConductor(w.Graph, jobCap)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Conductor: %.3f s total, %.3f s measured (%d reallocations, %d misidentifications)\n",
			res.TotalS, res.MeasuredS, res.Reallocations, res.MisIdentified)
	}
	if runLP {
		var sched *powercap.Schedule
		if *windows > 1 || *coarsen > 0 {
			ws, err := sys.SolveWindowed(w.Graph, jobCap, powercap.WindowedOptions{
				Windows: *windows, OverlapEvents: -1, CoarsenEps: *coarsen,
			})
			if err != nil {
				if errors.Is(err, powercap.ErrInfeasible) {
					fmt.Fprintf(stdout, "LP: infeasible at %.0f W per socket\n", *capW)
					return nil
				}
				return err
			}
			sched = ws.Schedule
			fmt.Fprintf(stdout, "LP bound:  %.3f s windowed (%d windows, %d tasks merged; %d speculative + %d commit solves, %.0f%% warm-start hits, %d escalations; seam excess %.2g W, simulated %.3f s)\n",
				ws.MakespanS, ws.Windows, ws.MergedTasks, ws.SpeculativeSolves, ws.CommitSolves,
				ws.WarmStartRate()*100, ws.Escalations, ws.SeamViolationW, ws.SimMakespanS)
		} else {
			var err error
			sched, err = sys.UpperBound(w.Graph, jobCap)
			if err != nil {
				if errors.Is(err, powercap.ErrInfeasible) {
					fmt.Fprintf(stdout, "LP: infeasible at %.0f W per socket\n", *capW)
					return nil
				}
				return err
			}
			fmt.Fprintf(stdout, "LP bound:  %.3f s (%d LP solves, %d simplex pivots)\n",
				sched.MakespanS, sched.Stats.Solves, sched.Stats.SimplexIter)
			// One numerical-health line (DESIGN.md §16) whenever the kernel
			// had to work for stability — silent on a clean solve.
			if st := sched.Stats; st.NaNRecoveries > 0 || st.BlandActivations > 0 || st.FactorTauRetries > 0 {
				fmt.Fprintf(stdout, "LP health: %d NaN recoveries, %d Bland activations, %d strict-pivot retries, %d pivot rejections, row-norm ratio %.1f\n",
					st.NaNRecoveries, st.BlandActivations, st.FactorTauRetries, st.PivotRejections, st.RowNormRatio)
			}
		}

		printScheduleSummary(stdout, w, sched)

		rep, err := sys.Replay(w.Graph, sched, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nreplay (discrete rounding): %.3f s, %d switches (%d suppressed), cap violation %.2f W\n",
			rep.MakespanS, rep.Switches, rep.Suppressed, rep.CapViolationW)
		if *realize != "" {
			rl, err := sys.RealizeSchedule(w.Graph, sched, *realize)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "realized (%s): %.3f s, bound gap %.2f%%, %d repairs, %d switches, cap violation %.2f W\n",
				rl.Strategy, rl.MakespanS, rl.BoundGapPct, rl.Repairs, rl.Switches, rl.CapViolationW)
		}
		if *gantt {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, rep.Result.Gantt(w.Graph, 100))
		}
	}
	return nil
}

// runCluster reads a cluster request (the POST /v1/cluster schema) from
// file and divides its site-wide budget across the jobs locally — the
// daemon-less path to the cluster power market. With -json the result is
// emitted in the /v1/cluster response schema (minus the daemon-only
// request_id/cache fields), so consumers can switch between CLI and
// service freely; otherwise a per-job table plus the allocation trace
// summary is printed.
func runCluster(path string, jsonOut bool, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var req service.ClusterRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	ctx := context.Background()
	jobs, wnames, budget, opts, err := service.ResolveCluster(ctx, &req)
	if err != nil {
		return err
	}

	alloc, err := powercap.AllocateCluster(ctx, jobs, budget, nil, opts)
	var budgetErr *powercap.BudgetError
	if err != nil && !errors.As(err, &budgetErr) {
		return err
	}
	resp := service.NewClusterResponse(jobs, wnames, budget, opts, alloc, budgetErr, nil)

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}

	fmt.Fprintf(stdout, "cluster: %d jobs, %.1f W site budget, %s policy\n\n",
		len(jobs), budget, resp.Policy)
	if resp.Infeasible {
		fmt.Fprintf(stdout, "INFEASIBLE: floors sum to %.1f W, %.1f W over budget\n\n",
			resp.FloorSumW, resp.FloorSumW-budget)
		fmt.Fprintf(stdout, "%-16s%12s\n", "job", "floor(W)")
		for _, f := range resp.Floors {
			fmt.Fprintf(stdout, "%-16s%12.1f\n", f.Name, f.FloorW)
		}
		return nil
	}
	fmt.Fprintf(stdout, "%-16s%-10s%9s%10s%11s%10s%14s%5s\n",
		"job", "workload", "cap(W)", "floor(W)", "demand(W)", "time(s)", "marg(s/W)", "")
	for _, j := range resp.Jobs {
		mark := ""
		if j.Degraded {
			mark = " [degraded: " + j.DegradedReason + "]"
		}
		fmt.Fprintf(stdout, "%-16s%-10s%9.1f%10.1f%11.1f%10.3f%14.5f%s\n",
			j.Name, j.Workload, j.CapW, j.FloorW, j.DemandW, j.MakespanS, j.MarginalSecPerW, mark)
	}
	accepted := 0
	for _, tr := range resp.Transfers {
		if tr.Accepted {
			accepted++
		}
	}
	fmt.Fprintf(stdout, "\ntotal %.3f s, slowest job %.3f s\n", resp.TotalMakespanS, resp.MaxMakespanS)
	fmt.Fprintf(stdout, "%d iterations (%d/%d transfers accepted), %.1f W moved, marginal spread %.5f s/W, converged=%v\n",
		resp.Iterations, accepted, len(resp.Transfers), resp.MovedW, resp.FinalSpreadSecPerW, resp.Converged)
	if resp.Stats != nil {
		fmt.Fprintf(stdout, "%d LP solves (%d warm starts, %d simplex + %d dual pivots)\n",
			resp.Solves, resp.Stats.WarmStarts, resp.Stats.SimplexPivots, resp.Stats.DualPivots)
	}
	return nil
}

// runCompareJSON emits the three-way comparison in the service's
// /v1/compare response schema.
func runCompareJSON(sys *powercap.System, w *powercap.Workload, perSocketW float64, stdout io.Writer) error {
	cmp, err := sys.Compare(w, perSocketW)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(&service.CompareResponse{Comparison: *cmp})
}

// runSolveJSON solves the decomposed LP and emits the result in the
// service's /v1/solve response schema — same cache key, graph digest, and
// solver-effort stats block the daemon reports for the identical request,
// so CLI and service numbers can be diffed directly.
func runSolveJSON(sys *powercap.System, w *powercap.Workload, jobCap float64, realize string, windows int, coarsenEps float64, stdout io.Writer) error {
	resp := &service.SolveResponse{
		Key:         sys.ScheduleKey(w.Graph, jobCap, false, realize, windows, coarsenEps),
		GraphDigest: powercap.GraphDigest(w.Graph),
		Workload:    w.Name,
		JobCapW:     jobCap,
	}
	var sched *powercap.Schedule
	var err error
	if windows > 1 || coarsenEps > 0 {
		var ws *powercap.WindowedSchedule
		ws, err = sys.SolveWindowed(w.Graph, jobCap, powercap.WindowedOptions{
			Windows: windows, OverlapEvents: -1, CoarsenEps: coarsenEps,
		})
		if err == nil {
			sched = ws.Schedule
			resp.Windowed = service.NewWindowedJSON(ws)
		}
	} else {
		sched, err = sys.UpperBound(w.Graph, jobCap)
	}
	if err != nil {
		if !errors.Is(err, powercap.ErrInfeasible) {
			return err
		}
		resp.Infeasible = true
	} else {
		resp.MakespanS = sched.MakespanS
		resp.MarginalSecPerW = sched.MarginalSecPerW
		resp.IterationMakespans = sched.IterationMakespans
		resp.Stats = service.NewStatsJSON(sched.Stats)
		if realize != "" {
			rl, err := sys.RealizeSchedule(w.Graph, sched, realize)
			if err != nil {
				return err
			}
			resp.Realized = service.NewRealizedJSON(rl)
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}

// printScheduleSummary aggregates the LP's choices per task class.
func printScheduleSummary(stdout io.Writer, w *powercap.Workload, sched *powercap.Schedule) {
	type agg struct {
		n        int
		power    float64
		duration float64
		threads  map[int]int
	}
	classes := map[string]*agg{}
	for tid, task := range w.Graph.Tasks {
		ch := sched.Choices[tid]
		if len(ch.Mix) == 0 {
			continue
		}
		a := classes[task.Class]
		if a == nil {
			a = &agg{threads: map[int]int{}}
			classes[task.Class] = a
		}
		a.n++
		a.power += ch.PowerW
		a.duration += ch.DurationS
		a.threads[ch.Discrete.Threads]++
	}
	var names []string
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "\n%-12s%8s%14s%14s%12s\n", "class", "tasks", "avg power(W)", "avg time(s)", "threads")
	for _, c := range names {
		a := classes[c]
		fmt.Fprintf(stdout, "%-12s%8d%14.1f%14.3f%12s\n", c, a.n,
			a.power/float64(a.n), a.duration/float64(a.n), threadSet(a.threads))
	}
}

func threadSet(ts map[int]int) string {
	var ks []int
	for k := range ts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", k)
	}
	return s
}

// runSweep evaluates the LP bound across a per-socket cap family and prints
// one row per cap with the per-solve instrumentation. The spec is validated
// by powercap.ParseSweepSpec: malformed specs (step ≤ 0, hi < lo,
// non-numeric fields) are rejected with a descriptive error instead of
// being silently reinterpreted.
func runSweep(sys *powercap.System, w *powercap.Workload, spec string, ranks, workers int, stdout io.Writer) error {
	perCaps, err := powercap.ParseSweepSpec(spec)
	if err != nil {
		return err
	}
	jobCaps := make([]float64, len(perCaps))
	for i, c := range perCaps {
		jobCaps[i] = c * float64(ranks)
	}
	fmt.Fprintf(stdout, "sweep: %.0f → %.0f W per socket (%d caps, %d workers)\n\n",
		perCaps[0], perCaps[len(perCaps)-1], len(perCaps), workers)

	pts, err := sys.SweepParallel(w.Graph, jobCaps, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%10s%12s%14s%8s%8s%8s%8s\n",
		"W/socket", "bound(s)", "marg(s/W)", "pivots", "dual", "warm", "refac")
	for i, pt := range pts {
		if pt.Err != nil {
			if errors.Is(pt.Err, powercap.ErrInfeasible) {
				fmt.Fprintf(stdout, "%10.1f%12s\n", perCaps[i], "infeasible")
				continue
			}
			return pt.Err
		}
		st := pt.Schedule.Stats
		fmt.Fprintf(stdout, "%10.1f%12.3f%14.5f%8d%8d%8d%8d\n",
			perCaps[i], pt.Schedule.MakespanS, pt.Schedule.MarginalSecPerW,
			st.SimplexIter, st.DualIter, st.WarmStarts, st.Refactorizations)
	}
	return nil
}
