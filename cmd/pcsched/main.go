// Command pcsched generates a workload trace, solves the paper's
// fixed-vertex-order LP under a power constraint, and prints the resulting
// schedule with its replay validation — the end-to-end pipeline of the
// paper in one invocation.
//
// Usage:
//
//	pcsched -workload LULESH -ranks 16 -cap 50
//	pcsched -workload BT -cap 30 -policy all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"powercap"
	"powercap/internal/machine"
)

func main() {
	var (
		name   = flag.String("workload", "CoMD", "workload: CoMD, LULESH, SP, or BT")
		ranks  = flag.Int("ranks", 16, "MPI ranks (one socket each)")
		iters  = flag.Int("iters", 8, "application iterations")
		seed   = flag.Int64("seed", 1, "workload seed")
		scale  = flag.Float64("scale", 1.0, "task work scale")
		capW   = flag.Float64("cap", 50, "per-socket average power cap (W)")
		policy = flag.String("policy", "lp", "lp, static, conductor, or all")
		gantt  = flag.Bool("gantt", false, "render an ASCII timeline of the replayed LP schedule")
	)
	flag.Parse()

	w, err := powercap.WorkloadByName(*name, powercap.WorkloadParams{
		Ranks: *ranks, Iterations: *iters, Seed: *seed, WorkScale: *scale,
	})
	if err != nil {
		fatal(err)
	}
	sys := powercap.SystemFor(w, nil)
	jobCap := *capW * float64(*ranks)
	fmt.Printf("%s: %d ranks, %d iterations, %d tasks, %d MPI-call vertices\n",
		w.Name, *ranks, *iters, len(w.Graph.Tasks), len(w.Graph.Vertices))
	fmt.Printf("power constraint: %.0f W per socket, %.0f W job-level\n\n", *capW, jobCap)

	runLP := *policy == "lp" || *policy == "all"
	runStatic := *policy == "static" || *policy == "all"
	runConductor := *policy == "conductor" || *policy == "all"
	if !runLP && !runStatic && !runConductor {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	if runStatic {
		res, err := sys.RunStatic(w.Graph, *capW)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Static:    %.3f s (peak power %.1f W, avg %.1f W)\n",
			res.Makespan, res.PeakPowerW, res.AvgPower())
	}
	if runConductor {
		res, err := sys.RunConductor(w.Graph, jobCap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Conductor: %.3f s total, %.3f s measured (%d reallocations, %d misidentifications)\n",
			res.TotalS, res.MeasuredS, res.Reallocations, res.MisIdentified)
	}
	if runLP {
		sched, err := sys.UpperBound(w.Graph, jobCap)
		if err != nil {
			if errors.Is(err, powercap.ErrInfeasible) {
				fmt.Printf("LP: infeasible at %.0f W per socket\n", *capW)
				return
			}
			fatal(err)
		}
		fmt.Printf("LP bound:  %.3f s (%d LP solves, %d simplex pivots)\n",
			sched.MakespanS, sched.Stats.Solves, sched.Stats.SimplexIter)

		printScheduleSummary(w, sched)

		rep, err := sys.Replay(w.Graph, sched, false)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nreplay (discrete rounding): %.3f s, %d switches (%d suppressed), cap violation %.2f W\n",
			rep.MakespanS, rep.Switches, rep.Suppressed, rep.CapViolationW)
		if *gantt {
			fmt.Println()
			fmt.Print(rep.Result.Gantt(w.Graph, 100))
		}
	}
}

// printScheduleSummary aggregates the LP's choices per task class.
func printScheduleSummary(w *powercap.Workload, sched *powercap.Schedule) {
	type agg struct {
		n        int
		power    float64
		duration float64
		threads  map[int]int
	}
	classes := map[string]*agg{}
	for tid, task := range w.Graph.Tasks {
		ch := sched.Choices[tid]
		if len(ch.Mix) == 0 {
			continue
		}
		a := classes[task.Class]
		if a == nil {
			a = &agg{threads: map[int]int{}}
			classes[task.Class] = a
		}
		a.n++
		a.power += ch.PowerW
		a.duration += ch.DurationS
		a.threads[ch.Discrete.Threads]++
	}
	var names []string
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Printf("\n%-12s%8s%14s%14s%12s\n", "class", "tasks", "avg power(W)", "avg time(s)", "threads")
	for _, c := range names {
		a := classes[c]
		fmt.Printf("%-12s%8d%14.1f%14.3f%12s\n", c, a.n,
			a.power/float64(a.n), a.duration/float64(a.n), threadSet(a.threads))
	}
	_ = machine.Default()
}

func threadSet(ts map[int]int) string {
	var ks []int
	for k := range ts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", k)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcsched:", err)
	os.Exit(1)
}
