// Command pcsched generates a workload trace, solves the paper's
// fixed-vertex-order LP under a power constraint, and prints the resulting
// schedule with its replay validation — the end-to-end pipeline of the
// paper in one invocation.
//
// Usage:
//
//	pcsched -workload LULESH -ranks 16 -cap 50
//	pcsched -workload BT -cap 30 -policy all
//	pcsched -workload SP -sweep 70:30:5 -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"powercap"
	"powercap/internal/machine"
)

func main() {
	var (
		name    = flag.String("workload", "CoMD", "workload: CoMD, LULESH, SP, or BT")
		ranks   = flag.Int("ranks", 16, "MPI ranks (one socket each)")
		iters   = flag.Int("iters", 8, "application iterations")
		seed    = flag.Int64("seed", 1, "workload seed")
		scale   = flag.Float64("scale", 1.0, "task work scale")
		capW    = flag.Float64("cap", 50, "per-socket average power cap (W)")
		policy  = flag.String("policy", "lp", "lp, static, conductor, or all")
		gantt   = flag.Bool("gantt", false, "render an ASCII timeline of the replayed LP schedule")
		sweep   = flag.String("sweep", "", "per-socket cap sweep \"hi:lo:step\" (W): solve the LP bound at every cap, warm-started; overrides -cap and -policy")
		workers = flag.Int("workers", 1, "parallel sweep workers (contiguous cap chunks; only with -sweep)")
	)
	flag.Parse()

	w, err := powercap.WorkloadByName(*name, powercap.WorkloadParams{
		Ranks: *ranks, Iterations: *iters, Seed: *seed, WorkScale: *scale,
	})
	if err != nil {
		fatal(err)
	}
	sys := powercap.SystemFor(w, nil)
	jobCap := *capW * float64(*ranks)
	fmt.Printf("%s: %d ranks, %d iterations, %d tasks, %d MPI-call vertices\n",
		w.Name, *ranks, *iters, len(w.Graph.Tasks), len(w.Graph.Vertices))
	if *sweep != "" {
		if err := runSweep(sys, w, *sweep, *ranks, *workers); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("power constraint: %.0f W per socket, %.0f W job-level\n\n", *capW, jobCap)

	runLP := *policy == "lp" || *policy == "all"
	runStatic := *policy == "static" || *policy == "all"
	runConductor := *policy == "conductor" || *policy == "all"
	if !runLP && !runStatic && !runConductor {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	if runStatic {
		res, err := sys.RunStatic(w.Graph, *capW)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Static:    %.3f s (peak power %.1f W, avg %.1f W)\n",
			res.Makespan, res.PeakPowerW, res.AvgPower())
	}
	if runConductor {
		res, err := sys.RunConductor(w.Graph, jobCap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Conductor: %.3f s total, %.3f s measured (%d reallocations, %d misidentifications)\n",
			res.TotalS, res.MeasuredS, res.Reallocations, res.MisIdentified)
	}
	if runLP {
		sched, err := sys.UpperBound(w.Graph, jobCap)
		if err != nil {
			if errors.Is(err, powercap.ErrInfeasible) {
				fmt.Printf("LP: infeasible at %.0f W per socket\n", *capW)
				return
			}
			fatal(err)
		}
		fmt.Printf("LP bound:  %.3f s (%d LP solves, %d simplex pivots)\n",
			sched.MakespanS, sched.Stats.Solves, sched.Stats.SimplexIter)

		printScheduleSummary(w, sched)

		rep, err := sys.Replay(w.Graph, sched, false)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nreplay (discrete rounding): %.3f s, %d switches (%d suppressed), cap violation %.2f W\n",
			rep.MakespanS, rep.Switches, rep.Suppressed, rep.CapViolationW)
		if *gantt {
			fmt.Println()
			fmt.Print(rep.Result.Gantt(w.Graph, 100))
		}
	}
}

// printScheduleSummary aggregates the LP's choices per task class.
func printScheduleSummary(w *powercap.Workload, sched *powercap.Schedule) {
	type agg struct {
		n        int
		power    float64
		duration float64
		threads  map[int]int
	}
	classes := map[string]*agg{}
	for tid, task := range w.Graph.Tasks {
		ch := sched.Choices[tid]
		if len(ch.Mix) == 0 {
			continue
		}
		a := classes[task.Class]
		if a == nil {
			a = &agg{threads: map[int]int{}}
			classes[task.Class] = a
		}
		a.n++
		a.power += ch.PowerW
		a.duration += ch.DurationS
		a.threads[ch.Discrete.Threads]++
	}
	var names []string
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Printf("\n%-12s%8s%14s%14s%12s\n", "class", "tasks", "avg power(W)", "avg time(s)", "threads")
	for _, c := range names {
		a := classes[c]
		fmt.Printf("%-12s%8d%14.1f%14.3f%12s\n", c, a.n,
			a.power/float64(a.n), a.duration/float64(a.n), threadSet(a.threads))
	}
	_ = machine.Default()
}

func threadSet(ts map[int]int) string {
	var ks []int
	for k := range ts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", k)
	}
	return s
}

// parseSweep reads a "hi:lo:step" (or "lo:hi:step") per-socket cap spec
// into a descending cap list — descending order maximizes warm-start reuse
// as the feasible region only shrinks.
func parseSweep(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("sweep spec %q: want hi:lo:step", spec)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep spec %q: %v", spec, err)
		}
		vals[i] = v
	}
	hi, lo, step := vals[0], vals[1], vals[2]
	if hi < lo {
		hi, lo = lo, hi
	}
	if step <= 0 {
		return nil, fmt.Errorf("sweep spec %q: step must be positive", spec)
	}
	var caps []float64
	for c := hi; c >= lo-1e-9; c -= step {
		caps = append(caps, c)
	}
	return caps, nil
}

// runSweep evaluates the LP bound across a per-socket cap family and prints
// one row per cap with the per-solve instrumentation.
func runSweep(sys *powercap.System, w *powercap.Workload, spec string, ranks, workers int) error {
	perCaps, err := parseSweep(spec)
	if err != nil {
		return err
	}
	jobCaps := make([]float64, len(perCaps))
	for i, c := range perCaps {
		jobCaps[i] = c * float64(ranks)
	}
	fmt.Printf("sweep: %.0f → %.0f W per socket (%d caps, %d workers)\n\n",
		perCaps[0], perCaps[len(perCaps)-1], len(perCaps), workers)

	pts, err := sys.SweepParallel(w.Graph, jobCaps, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%10s%12s%14s%8s%8s%8s%8s\n",
		"W/socket", "bound(s)", "marg(s/W)", "pivots", "dual", "warm", "refac")
	for i, pt := range pts {
		if pt.Err != nil {
			if errors.Is(pt.Err, powercap.ErrInfeasible) {
				fmt.Printf("%10.1f%12s\n", perCaps[i], "infeasible")
				continue
			}
			return pt.Err
		}
		st := pt.Schedule.Stats
		fmt.Printf("%10.1f%12.3f%14.5f%8d%8d%8d%8d\n",
			perCaps[i], pt.Schedule.MakespanS, pt.Schedule.MarginalSecPerW,
			st.SimplexIter, st.DualIter, st.WarmStarts, st.Refactorizations)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcsched:", err)
	os.Exit(1)
}
