package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powercap/internal/obs"
	"powercap/internal/service"
)

// TestJSONMatchesService is the CLI↔service schema integration test: the
// comparison `pcsched -policy all -json` emits must decode as a service
// CompareResponse and carry the exact Comparison that POST /v1/compare
// returns for the same workload and cap.
func TestJSONMatchesService(t *testing.T) {
	args := []string{
		"-workload", "CoMD", "-ranks", "2", "-iters", "6",
		"-seed", "1", "-scale", "0.1", "-cap", "55",
		"-policy", "all", "-json",
	}
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	var cli service.CompareResponse
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("-json output is not a CompareResponse: %v\n%s", err, out.String())
	}
	if cli.Comparison.Workload != "CoMD" || cli.Comparison.PerSocketW != 55 {
		t.Fatalf("unexpected comparison header: %+v", cli.Comparison)
	}
	if cli.Comparison.LPBoundS <= 0 || cli.Comparison.StaticS <= 0 || cli.Comparison.ConductorS <= 0 {
		t.Fatalf("comparison has empty times: %+v", cli.Comparison)
	}

	ts := httptest.NewServer(service.New(service.Config{Workers: 2}))
	defer ts.Close()
	body := `{"workload":{"name":"CoMD","ranks":2,"iters":6,"seed":1,"scale":0.1},"cap_per_socket_w":55}`
	resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service compare: %d (%s)", resp.StatusCode, raw)
	}
	var svc service.CompareResponse
	if err := json.Unmarshal(raw, &svc); err != nil {
		t.Fatal(err)
	}
	if cli.Comparison != svc.Comparison {
		t.Errorf("CLI and service disagree:\ncli: %+v\nsvc: %+v", cli.Comparison, svc.Comparison)
	}
}

// TestSolveJSONMatchesService is the solve-side CLI↔service parity test:
// `pcsched -policy lp -json` must emit the /v1/solve response schema with
// the same cache key, graph digest, makespan, and solver-effort stats the
// service reports for the identical request — the satellite guarantee that
// CLI and daemon report the same effort numbers.
func TestSolveJSONMatchesService(t *testing.T) {
	args := []string{
		"-workload", "CoMD", "-ranks", "2", "-iters", "6",
		"-seed", "1", "-scale", "0.1", "-cap", "55",
		"-policy", "lp", "-json",
	}
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	var cli service.SolveResponse
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("-json output is not a SolveResponse: %v\n%s", err, out.String())
	}
	if cli.MakespanS <= 0 || cli.Stats == nil || cli.Stats.SimplexPivots <= 0 {
		t.Fatalf("CLI solve missing makespan or stats: %+v", cli)
	}

	ts := httptest.NewServer(service.New(service.Config{Workers: 2}))
	defer ts.Close()
	body := `{"workload":{"name":"CoMD","ranks":2,"iters":6,"seed":1,"scale":0.1},"cap_per_socket_w":55}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service solve: %d (%s)", resp.StatusCode, raw)
	}
	var svc service.SolveResponse
	if err := json.Unmarshal(raw, &svc); err != nil {
		t.Fatal(err)
	}
	if cli.Key != svc.Key || cli.GraphDigest != svc.GraphDigest {
		t.Errorf("CLI and service key/digest disagree:\ncli: %s %s\nsvc: %s %s",
			cli.Key, cli.GraphDigest, svc.Key, svc.GraphDigest)
	}
	if cli.MakespanS != svc.MakespanS {
		t.Errorf("makespan: cli %v != svc %v", cli.MakespanS, svc.MakespanS)
	}
	if *cli.Stats != *svc.Stats {
		t.Errorf("solver effort disagrees:\ncli: %+v\nsvc: %+v", *cli.Stats, *svc.Stats)
	}
	if svc.RequestID == "" || resp.Header.Get("X-Request-Id") != svc.RequestID {
		t.Errorf("service response id %q not echoed in X-Request-Id %q",
			svc.RequestID, resp.Header.Get("X-Request-Id"))
	}
}

// TestJSONPolicyGate: -json is an error outside -policy all/lp, and with
// -sweep — never silently ignored.
func TestJSONPolicyGate(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-policy", "static", "-json"}, &out, &errs); err == nil {
		t.Fatal("-json with -policy static did not error")
	}
	if err := run([]string{"-policy", "conductor", "-json"}, &out, &errs); err == nil {
		t.Fatal("-json with -policy conductor did not error")
	}
	if err := run([]string{"-policy", "all", "-json", "-sweep", "60:50:5"}, &out, &errs); err == nil {
		t.Fatal("-json with -sweep did not error")
	}
	if err := run([]string{"-policy", "lp", "-json", "-sweep", "60:50:5"}, &out, &errs); err == nil {
		t.Fatal("-json -policy lp with -sweep did not error")
	}
}

// TestTraceFlagWritesChromeJSON: -trace produces a well-formed Chrome
// trace-event document covering the solve pipeline, with strictly valid
// span nesting.
func TestTraceFlagWritesChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	args := []string{
		"-workload", "CoMD", "-ranks", "2", "-iters", "3",
		"-scale", "0.1", "-cap", "55", "-realize", "down", "-trace", path,
	}
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	if !strings.Contains(errs.String(), "spans written to") {
		t.Errorf("missing trace confirmation on stderr: %s", errs.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if doc.DroppedSpans != 0 {
		t.Errorf("trace dropped %d spans", doc.DroppedSpans)
	}
	if err := obs.CheckNesting(doc.TraceEvents); err != nil {
		t.Errorf("nesting: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{
		"core.solve", "lp.solve", "problem.build", "schedule.realize", "sim.evaluate",
	} {
		if !names[want] {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}
}

// TestSweepSpecRejected: malformed -sweep specs must surface
// ParseSweepSpec's descriptive errors through the CLI.
func TestSweepSpecRejected(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"70:30", "want hi:lo:step"},
		{"70:30:0", "step must be positive"},
		{"70:30:-5", "step must be positive"},
		{"30:70:5", "must be ≥ lo"},
		{"70:abc:5", "not a number"},
		{"NaN:30:5", "must be finite"},
	}
	for _, c := range cases {
		var out, errs bytes.Buffer
		err := run([]string{"-workload", "CoMD", "-ranks", "2", "-iters", "3",
			"-scale", "0.1", "-sweep", c.spec}, &out, &errs)
		if err == nil {
			t.Errorf("spec %q accepted, want error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSweepRuns: a valid sweep spec produces one table row per cap.
func TestSweepRuns(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{"-workload", "CoMD", "-ranks", "2", "-iters", "3",
		"-scale", "0.1", "-sweep", "60:50:5"}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "sweep: 60 → 50 W per socket (3 caps") {
		t.Errorf("missing sweep header:\n%s", out.String())
	}
	for _, cap := range []string{"60.0", "55.0", "50.0"} {
		if !strings.Contains(out.String(), cap) {
			t.Errorf("missing row for cap %s:\n%s", cap, out.String())
		}
	}
}
