package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"powercap/internal/service"
)

// TestJSONMatchesService is the CLI↔service schema integration test: the
// comparison `pcsched -policy all -json` emits must decode as a service
// CompareResponse and carry the exact Comparison that POST /v1/compare
// returns for the same workload and cap.
func TestJSONMatchesService(t *testing.T) {
	args := []string{
		"-workload", "CoMD", "-ranks", "2", "-iters", "6",
		"-seed", "1", "-scale", "0.1", "-cap", "55",
		"-policy", "all", "-json",
	}
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	var cli service.CompareResponse
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("-json output is not a CompareResponse: %v\n%s", err, out.String())
	}
	if cli.Comparison.Workload != "CoMD" || cli.Comparison.PerSocketW != 55 {
		t.Fatalf("unexpected comparison header: %+v", cli.Comparison)
	}
	if cli.Comparison.LPBoundS <= 0 || cli.Comparison.StaticS <= 0 || cli.Comparison.ConductorS <= 0 {
		t.Fatalf("comparison has empty times: %+v", cli.Comparison)
	}

	ts := httptest.NewServer(service.New(service.Config{Workers: 2}))
	defer ts.Close()
	body := `{"workload":{"name":"CoMD","ranks":2,"iters":6,"seed":1,"scale":0.1},"cap_per_socket_w":55}`
	resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service compare: %d (%s)", resp.StatusCode, raw)
	}
	var svc service.CompareResponse
	if err := json.Unmarshal(raw, &svc); err != nil {
		t.Fatal(err)
	}
	if cli.Comparison != svc.Comparison {
		t.Errorf("CLI and service disagree:\ncli: %+v\nsvc: %+v", cli.Comparison, svc.Comparison)
	}
}

// TestJSONRequiresPolicyAll: -json outside -policy all is an error, not
// silently ignored.
func TestJSONRequiresPolicyAll(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-policy", "lp", "-json"}, &out, &errs); err == nil {
		t.Fatal("-json with -policy lp did not error")
	}
	if err := run([]string{"-policy", "all", "-json", "-sweep", "60:50:5"}, &out, &errs); err == nil {
		t.Fatal("-json with -sweep did not error")
	}
}

// TestSweepSpecRejected: malformed -sweep specs must surface
// ParseSweepSpec's descriptive errors through the CLI.
func TestSweepSpecRejected(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"70:30", "want hi:lo:step"},
		{"70:30:0", "step must be positive"},
		{"70:30:-5", "step must be positive"},
		{"30:70:5", "must be ≥ lo"},
		{"70:abc:5", "not a number"},
		{"NaN:30:5", "must be finite"},
	}
	for _, c := range cases {
		var out, errs bytes.Buffer
		err := run([]string{"-workload", "CoMD", "-ranks", "2", "-iters", "3",
			"-scale", "0.1", "-sweep", c.spec}, &out, &errs)
		if err == nil {
			t.Errorf("spec %q accepted, want error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSweepRuns: a valid sweep spec produces one table row per cap.
func TestSweepRuns(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{"-workload", "CoMD", "-ranks", "2", "-iters", "3",
		"-scale", "0.1", "-sweep", "60:50:5"}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "sweep: 60 → 50 W per socket (3 caps") {
		t.Errorf("missing sweep header:\n%s", out.String())
	}
	for _, cap := range []string{"60.0", "55.0", "50.0"} {
		if !strings.Contains(out.String(), cap) {
			t.Errorf("missing row for cap %s:\n%s", cap, out.String())
		}
	}
}
