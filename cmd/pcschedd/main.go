// Command pcschedd serves the power-constrained scheduling service over
// HTTP/JSON: POST /v1/solve, /v1/sweep, and /v1/compare accept inline trace
// JSON (the format pctrace gen emits) or named workload proxies and return
// LP bounds computed on a bounded worker pool behind a content-addressed
// schedule cache; GET /metrics and /healthz expose the service's counters.
//
// Usage:
//
//	pcschedd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 60s] [-max-timeout 5m] [-grace 30s] [-quiet]
//	         [-adapt] [-epoch 1s]
//
// The daemon prints the bound address on startup ("-addr 127.0.0.1:0"
// picks a free port — useful for harnesses) and shuts down gracefully on
// SIGINT/SIGTERM: in-flight solves complete and respond, new work gets
// 503, and the process exits once drained or the grace period lapses.
//
// -adapt arms the adaptive overload control plane (DESIGN.md §15): once
// per -epoch the daemon samples its own metrics and adapts admission
// capacity, worker count, cache size, and the brownout ladder; 429s carry
// Retry-After hints and declared retries (X-Retry-Attempt) spend a token
// budget. Without -adapt the daemon behaves bit-identically to one built
// without the control plane.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powercap/internal/adapt"
	"powercap/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcschedd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admission queue depth beyond busy workers (0 = default 64)")
		cacheSize  = fs.Int("cache", 0, "schedule cache capacity in entries (0 = default 256)")
		timeout    = fs.Duration("timeout", 0, "default per-request solve deadline (0 = 60s)")
		maxTimeout = fs.Duration("max-timeout", 0, "upper clamp on client-supplied deadlines (0 = 5m)")
		grace      = fs.Duration("grace", 30*time.Second, "drain period for in-flight solves on shutdown")
		quiet      = fs.Bool("quiet", false, "suppress per-request log lines")
		adaptOn    = fs.Bool("adapt", false, "arm the adaptive overload control plane (brownout ladder, retry budget, capacity adaptation)")
		epoch      = fs.Duration("epoch", 0, "control-plane sampling epoch (0 = 1s; needs -adapt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Structured logging: one slog text line per event, every request line
	// carrying its request_id (also echoed as X-Request-Id).
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	reqLog := logger
	if *quiet {
		reqLog = nil
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Log:            reqLog,
		Adapt:          adapt.Config{Enabled: *adaptOn, Epoch: *epoch},
	})
	// With -adapt off this is a no-op; with it on, the control-plane loop
	// runs until Drain checkpoints and stops it on shutdown.
	svc.StartAdapt()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The harness-parseable startup line: the one place the actual port
	// (meaningful with -addr ...:0) is reported.
	fmt.Fprintf(stdout, "pcschedd listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutdown: draining in-flight solves", "grace", grace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain first so in-flight solves finish and respond while the
	// listener still accepts their connections; Shutdown then closes the
	// listener and waits for the last responses to flush.
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("shutdown: drain incomplete", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	logger.Info("shutdown: done")
	return nil
}
