// Command pcschedd serves the power-constrained scheduling service over
// HTTP/JSON: POST /v1/solve, /v1/sweep, and /v1/compare accept inline trace
// JSON (the format pctrace gen emits) or named workload proxies and return
// LP bounds computed on a bounded worker pool behind a content-addressed
// schedule cache; GET /metrics and /healthz expose the service's counters.
//
// Usage:
//
//	pcschedd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 60s] [-max-timeout 5m] [-grace 30s] [-quiet]
//	         [-adapt] [-epoch 1s]
//	         [-slo-latency 2s] [-flight-slots 256] [-flight-dir DIR]
//
// The daemon prints the bound address on startup ("-addr 127.0.0.1:0"
// picks a free port — useful for harnesses) and shuts down gracefully on
// SIGINT/SIGTERM: in-flight solves complete and respond, new work gets
// 503, and the process exits once drained or the grace period lapses.
// SIGQUIT dumps the flight recorder (DESIGN.md §16) as one JSON document
// to stderr without stopping the daemon.
//
// PCSCHEDD_FAULTS arms the deterministic fault-injection registry at
// startup ("seed=7,lp-stall=1.0,lp-nan=0.25") — test harnesses only; the
// daemon logs a loud warning when armed.
//
// -adapt arms the adaptive overload control plane (DESIGN.md §15): once
// per -epoch the daemon samples its own metrics and adapts admission
// capacity, worker count, cache size, and the brownout ladder; 429s carry
// Retry-After hints and declared retries (X-Retry-Attempt) spend a token
// budget. Without -adapt the daemon behaves bit-identically to one built
// without the control plane.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"powercap/internal/adapt"
	"powercap/internal/faultinject"
	"powercap/internal/service"
	"powercap/internal/slo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcschedd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admission queue depth beyond busy workers (0 = default 64)")
		cacheSize  = fs.Int("cache", 0, "schedule cache capacity in entries (0 = default 256)")
		timeout    = fs.Duration("timeout", 0, "default per-request solve deadline (0 = 60s)")
		maxTimeout = fs.Duration("max-timeout", 0, "upper clamp on client-supplied deadlines (0 = 5m)")
		grace      = fs.Duration("grace", 30*time.Second, "drain period for in-flight solves on shutdown")
		quiet      = fs.Bool("quiet", false, "suppress per-request log lines")
		adaptOn    = fs.Bool("adapt", false, "arm the adaptive overload control plane (brownout ladder, retry budget, capacity adaptation)")
		epoch      = fs.Duration("epoch", 0, "control-plane sampling epoch (0 = 1s; needs -adapt)")
		sloLatency = fs.Duration("slo-latency", 0, "latency SLO threshold: requests slower than this burn the latency objective (0 = 2s)")
		flightN    = fs.Int("flight-slots", 0, "flight recorder ring capacity, rounded up to a power of two (0 = 256)")
		flightDir  = fs.String("flight-dir", "", "directory for automatic flight-recorder snapshots on panic/breaker-open (empty = os.TempDir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Structured logging: one slog text line per event, every request line
	// carrying its request_id (also echoed as X-Request-Id).
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	reqLog := logger
	if *quiet {
		reqLog = nil
	}
	// PCSCHEDD_FAULTS arms deterministic fault injection before the service
	// exists, so the very first solve sees the configured fault pattern.
	// Strictly a harness hook — a production daemon never sets it.
	if spec := os.Getenv("PCSCHEDD_FAULTS"); spec != "" {
		seed, rates, err := parseFaults(spec)
		if err != nil {
			return fmt.Errorf("PCSCHEDD_FAULTS: %w", err)
		}
		faultinject.Configure(seed, rates)
		logger.Warn("FAULT INJECTION ARMED — test harness mode", "spec", spec)
	}

	svc := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Log:               reqLog,
		Adapt:             adapt.Config{Enabled: *adaptOn, Epoch: *epoch},
		SLO:               slo.Config{LatencyThreshold: *sloLatency},
		FlightSlots:       *flightN,
		FlightSnapshotDir: *flightDir,
	})
	// With -adapt off this is a no-op; with it on, the control-plane loop
	// runs until Drain checkpoints and stops it on shutdown.
	svc.StartAdapt()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The harness-parseable startup line: the one place the actual port
	// (meaningful with -addr ...:0) is reported.
	fmt.Fprintf(stdout, "pcschedd listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// SIGQUIT dumps the flight recorder to stderr and keeps serving —
	// signal.Notify overrides the Go runtime's kill-with-stacks default, so
	// an operator can grab forensics from a live daemon without downtime.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			logger.Info("SIGQUIT: dumping flight recorder to stderr")
			if err := svc.Flight().WriteJSON(stderr, 0, "sigquit"); err != nil {
				logger.Warn("flight dump failed", "err", err)
			}
			fmt.Fprintln(stderr)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutdown: draining in-flight solves", "grace", grace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain first so in-flight solves finish and respond while the
	// listener still accepts their connections; Shutdown then closes the
	// listener and waits for the last responses to flush.
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("shutdown: drain incomplete", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	logger.Info("shutdown: done")
	return nil
}

// parseFaults parses the PCSCHEDD_FAULTS spec: comma-separated key=value
// pairs where the key is "seed" or a fault class name (lp-nan, lp-stall,
// cache-error, worker-panic, slow-solve) and the value is a probability in
// [0,1] (uint64 for seed). Example: "seed=7,lp-stall=1.0,lp-nan=0.25".
func parseFaults(spec string) (uint64, map[faultinject.Class]float64, error) {
	var seed uint64 = 1
	rates := make(map[faultinject.Class]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return 0, nil, fmt.Errorf("bad pair %q (want key=value)", part)
		}
		if k == "seed" {
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("bad seed %q: %w", v, err)
			}
			seed = s
			continue
		}
		var cls faultinject.Class
		found := false
		for _, c := range faultinject.Classes() {
			if c.String() == k {
				cls, found = c, true
				break
			}
		}
		if !found {
			return 0, nil, fmt.Errorf("unknown fault class %q", k)
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, nil, fmt.Errorf("bad probability %q for %s", v, k)
		}
		rates[cls] = p
	}
	if len(rates) == 0 {
		return 0, nil, fmt.Errorf("no fault classes in spec %q", spec)
	}
	return seed, rates, nil
}
