package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"powercap/internal/obs"
	"powercap/internal/service"
)

// TestObsSmoke is the observability smoke harness behind `make obs-smoke`:
// against a real pcschedd process it runs a traced solve and validates the
// inline Chrome trace document (well-formed JSON, strictly nested spans,
// the pipeline stages present), checks that the request ID is echoed in
// header, body, and the access log, scrapes /metrics twice asserting
// counter monotonicity, and probes /debug/pprof.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pcschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pcschedd: %v\n%s", err, out)
	}

	// No -quiet: the access log (with request IDs) is under test.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = url
			break
		}
	}
	if base == "" {
		t.Fatal("no listening line from pcschedd")
	}

	// Traced solve: the response must carry the request ID and a valid
	// Chrome trace document covering the solve pipeline.
	solveReq := `{"workload":{"name":"CoMD","ranks":2,"iters":3,"seed":1,"scale":0.1},"cap_per_socket_w":55}`
	resp, err := http.Post(base+"/v1/solve?trace=1", "application/json", strings.NewReader(solveReq))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced solve: status %d (%s)", resp.StatusCode, raw)
	}
	headerID := resp.Header.Get("X-Request-Id")
	if headerID == "" {
		t.Fatal("no X-Request-Id on solve response")
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("solve response is not valid JSON: %v", err)
	}
	if sr.RequestID != headerID {
		t.Errorf("body request_id %q != header %q", sr.RequestID, headerID)
	}
	if sr.Trace == nil || len(sr.Trace.TraceEvents) == 0 {
		t.Fatalf("?trace=1 response has no trace: %s", raw)
	}
	if sr.Trace.DroppedSpans != 0 {
		t.Errorf("trace dropped %d spans", sr.Trace.DroppedSpans)
	}
	if err := obs.CheckNesting(sr.Trace.TraceEvents); err != nil {
		t.Errorf("trace nesting: %v", err)
	}
	names := map[string]bool{}
	for _, e := range sr.Trace.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"resilience.ladder", "core.solve", "lp.solve", "problem.build"} {
		if !names[want] {
			t.Errorf("span %q missing from inline trace (have %v)", want, names)
		}
	}

	// Counter monotonicity: scrape, do more work, scrape again — no
	// *_total may decrease, and the work must be visible.
	m1 := fetchMetrics(t, base)
	if m1["pcschedd_traced_requests_total"] != 1 {
		t.Errorf("traced_requests_total = %v, want 1", m1["pcschedd_traced_requests_total"])
	}
	resp2, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(
		`{"workload":{"name":"CoMD","ranks":2,"iters":3,"seed":1,"scale":0.1},"cap_per_socket_w":50}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	m2 := fetchMetrics(t, base)
	for name, v1 := range m1 {
		if !strings.Contains(name, "_total") {
			continue
		}
		if v2 := m2[name]; v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", name, v1, v2)
		}
	}
	if m2["pcschedd_requests_total"] <= m1["pcschedd_requests_total"] {
		t.Errorf("requests_total did not advance: %v -> %v",
			m1["pcschedd_requests_total"], m2["pcschedd_requests_total"])
	}
	if m2["pcschedd_solves_total"] != m1["pcschedd_solves_total"]+1 {
		t.Errorf("solves_total %v -> %v, want +1",
			m1["pcschedd_solves_total"], m2["pcschedd_solves_total"])
	}
	stageSeen := false
	for name := range m2 {
		if strings.HasPrefix(name, `pcschedd_stage_latency_seconds_count{stage="lp.solve"`) {
			stageSeen = true
		}
	}
	if !stageSeen {
		t.Error("per-stage histogram for lp.solve missing from /metrics")
	}

	// pprof must be reachable on the service mux.
	pp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", pp.StatusCode)
	}

	// Stop the daemon, then check the access log (reading stderr while the
	// process runs would race with its writes).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcschedd exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pcschedd did not exit after SIGTERM")
	}
	log := stderr.String()
	if !strings.Contains(log, "request_id="+headerID) {
		t.Errorf("access log does not carry request_id=%s:\n%s", headerID, log)
	}
	if !strings.Contains(log, "msg=request") {
		t.Errorf("no structured access-log lines on stderr:\n%s", log)
	}
}
