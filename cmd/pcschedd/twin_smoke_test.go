package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"powercap/internal/twin"
)

// TestTwinSmoke is the end-to-end harness behind `make twin-smoke`: it runs
// the deterministic traffic twin against real pcschedd daemons.
//
// Part 1 (adaptation): the same seeded flash-crowd scenario is driven
// against an adaptive daemon (-adapt) and a static one with identical
// capacity. The adaptive daemon browns out under the crowd and sheds with
// Retry-After hints instead of letting the queue rot, so its goodput
// fraction must be at least the static baseline's.
//
// Part 2 (determinism): a tape recorded against a fresh static daemon is
// replayed against two more fresh static daemons; both replays must report
// zero mismatches and byte-identical summaries. That is the `-adapt` off
// bit-identity regression: the disarmed control plane may not perturb
// responses.
func TestTwinSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon twin smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pcschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pcschedd: %v\n%s", err, out)
	}

	// Identical capacity for every daemon: the only variable is -adapt. The
	// queue is kept short so the flash crowd genuinely overflows admission
	// rather than parking in a deep buffer.
	capacityArgs := []string{"-addr", "127.0.0.1:0", "-quiet", "-workers", "2", "-queue", "4", "-cache", "64"}

	flash := twin.Scenario{
		Name: "smoke-flash",
		Seed: 20260807,
		Phases: []twin.Phase{
			{Name: "warm", DurMS: 300, RatePerS: 30},
			{Name: "flash", DurMS: 1800, RatePerS: 160},
			{Name: "cool", DurMS: 500, RatePerS: 30},
		},
		// ~24 ms per cache-miss solve: 2 workers saturate near 80/s, so the
		// 160/s flash is ~2× capacity.
		Workloads: []twin.Workload{
			{Name: "CoMD", Ranks: 8, Iters: 8, Seed: 1, Scale: 0.5},
			{Name: "SP", Ranks: 8, Iters: 8, Seed: 2, Scale: 0.5},
		},
		// A wide cap universe with mild skew: some cache hits, mostly misses,
		// so the flash crowd is real LP work.
		Caps:        capRange(40, 70, 0.5),
		ZipfS:       0.4,
		RealizeFrac: 0.3,
		TimeoutMS:   2000,
		Retry:       twin.RetryPolicy{MaxRetries: 2, DelayMS: 50, HonorRetryAfter: true},
	}

	adaptDaemon := append([]string{"-adapt", "-epoch", "100ms"}, capacityArgs...)
	adaptive := runAgainstDaemon(t, bin, flash, adaptDaemon)
	static := runAgainstDaemon(t, bin, flash, capacityArgs)
	t.Logf("adaptive: %s", adaptive)
	t.Logf("static:   %s", static)
	if adaptive.GoodFrac() < static.GoodFrac() {
		t.Errorf("adaptive goodput fraction %.3f below static baseline %.3f",
			adaptive.GoodFrac(), static.GoodFrac())
	}
	if adaptive.CapViolations != 0 || static.CapViolations != 0 {
		t.Errorf("cap violations under load: adaptive %d, static %d",
			adaptive.CapViolations, static.CapViolations)
	}

	// Part 2: record once, replay twice, byte-identical summaries.
	regression := twin.Scenario{
		Name:      "smoke-regression",
		Seed:      7,
		Phases:    []twin.Phase{{Name: "serial", DurMS: 150, RatePerS: 100}},
		Workloads: flash.Workloads,
		Caps:      []float64{50, 55, 60},
		ZipfS:     1.0,
	}
	base, stop := spawnDaemon(t, bin, capacityArgs)
	tape, err := twin.Record(base, regression)
	stop()
	if err != nil {
		t.Fatalf("recording regression tape: %v", err)
	}
	if len(tape.Entries) == 0 {
		t.Fatal("empty regression tape")
	}
	summaries := make([]string, 2)
	for i := range summaries {
		base, stop := spawnDaemon(t, bin, capacityArgs)
		rep, err := tape.Replay(base)
		stop()
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if rep.Mismatches != 0 {
			t.Fatalf("replay %d diverged from recording: %s", i, rep.First)
		}
		summaries[i] = rep.Summary()
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("replay summaries not byte-identical:\n  %s\n  %s", summaries[0], summaries[1])
	}
	t.Logf("replay: %s", summaries[0])
}

func capRange(lo, hi, step float64) []float64 {
	var caps []float64
	for c := lo; c <= hi; c += step {
		caps = append(caps, c)
	}
	return caps
}

// runAgainstDaemon spawns a daemon, drives the scenario against it, and
// tears it down.
func runAgainstDaemon(t *testing.T, bin string, sc twin.Scenario, args []string) *twin.Result {
	t.Helper()
	base, stop := spawnDaemon(t, bin, args)
	defer stop()
	// MaxInflight must exceed the daemon's workers+queue, or the client
	// throttles itself and admission never overflows.
	return twin.Run(base, sc, twin.RunOptions{MaxInflight: 24})
}

// spawnDaemon starts the built binary, waits for its listening line, and
// returns the base URL plus a stop func that SIGTERMs and reaps it.
func spawnDaemon(t *testing.T, bin string, args []string) (string, func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = url
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no listening line from pcschedd; stderr:\n%s", stderr.String())
	}
	// Wait for readiness so the first twin request is not racing startup.
	for i := 0; ; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if i > 100 {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var once bool
	stop := func() {
		if once {
			return
		}
		once = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("pcschedd exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("pcschedd did not exit after SIGTERM")
		}
	}
	t.Cleanup(stop)
	return base, stop
}
