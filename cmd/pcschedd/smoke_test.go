package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end smoke harness behind `make serve-smoke`:
// it builds the real pcschedd binary, starts it on a random port, fires a
// solve, a cache-hit repeat, and a cancelled (expired-deadline) request,
// asserts the /metrics counters reflect all three, then SIGTERMs the daemon
// and requires a clean exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pcschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pcschedd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its bound address on stdout.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = url
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line from pcschedd; stderr:\n%s", stderr.String())
	}

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	solveReq := `{"workload":{"name":"CoMD","ranks":2,"iters":3,"seed":1,"scale":0.1},"cap_per_socket_w":55}`
	if code, body := post(solveReq); code != http.StatusOK {
		t.Fatalf("solve: status %d (%s)", code, body)
	}
	if code, body := post(solveReq); code != http.StatusOK {
		t.Fatalf("repeat solve: status %d (%s)", code, body)
	} else if !strings.Contains(body, `"cached":true`) {
		t.Fatalf("repeat solve not served from cache: %s", body)
	}
	cancelReq := `{"workload":{"name":"BT","ranks":16,"iters":10,"seed":1,"scale":1},"cap_per_socket_w":60,"timeout_ms":0.001}`
	if code, body := post(cancelReq); code != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline solve: status %d (%s), want 504", code, body)
	}

	m := fetchMetrics(t, base)
	for name, want := range map[string]float64{
		"pcschedd_requests_total":     3,
		"pcschedd_solves_total":       1,
		"pcschedd_cache_hits_total":   1,
		"pcschedd_cache_misses_total": 1,
		"pcschedd_canceled_total":     1,
	} {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	// Graceful termination: SIGTERM must produce exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcschedd exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pcschedd did not exit after SIGTERM")
	}
}

func fetchMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			m[fields[0]] = v
		}
	}
	return m
}
