package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"powercap/internal/obs"
	"powercap/internal/service"
)

// sigquitMarker is how the indented stderr dump tags itself.
const sigquitMarker = `"reason": "sigquit"`

// syncBuffer lets the test poll the daemon's stderr while the exec copier
// goroutine is still appending to it (plain bytes.Buffer would race).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFlightRecorderSmoke is the forensics half of `make obs-smoke`: a real
// pcschedd with the adaptive control plane armed, a PCSCHEDD_FAULTS-induced
// lp-stall window, and an aggressive latency SLO. It asserts the flight
// recorder reconstructs the incident — wide events naming the brownout rung
// and the descent trail, admission-time SLO burn spiking — that the
// pcschedd_lp_* / pcschedd_slo_* metric families carry the incident, and
// that SIGQUIT dumps the ring to stderr without stopping the daemon.
func TestFlightRecorderSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pcschedd")
	// Race-instrumented daemon: the lock-free record path and the SIGQUIT
	// dump goroutine run under the detector with real traffic.
	if out, err := exec.Command("go", "build", "-race", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pcschedd: %v\n%s", err, out)
	}

	// Every pivot loop stalls, so every fresh solve rides the ladder down;
	// the 1ns latency objective makes every request burn.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-quiet",
		"-adapt", "-epoch", "50ms",
		"-slo-latency", "1ns",
		"-flight-dir", t.TempDir(),
	)
	cmd.Env = append(cmd.Environ(), "PCSCHEDD_FAULTS=seed=11,lp-stall=1.0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = url
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line from pcschedd; stderr:\n%s", stderr.String())
	}

	// Ten distinct caps: every one is a cache miss and a fresh (stalled,
	// degraded) solve. Under the armed control plane later requests may be
	// shed with 429 — those still leave wide events; we need at least one
	// 200 to anchor the causal-chain assertions.
	var okResp service.SolveResponse
	requests := 0
	for cap := 50; cap < 60; cap++ {
		body := fmt.Sprintf(
			`{"workload":{"name":"CoMD","ranks":2,"iters":3,"seed":1,"scale":0.1},"cap_per_socket_w":%d}`, cap)
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		requests++
		if resp.StatusCode == http.StatusOK && okResp.RequestID == "" {
			if err := json.Unmarshal(raw, &okResp); err != nil {
				t.Fatalf("bad solve response: %v (%s)", err, raw)
			}
		}
		time.Sleep(10 * time.Millisecond) // let SLO buckets and adapt epochs advance
	}
	if okResp.RequestID == "" {
		t.Fatal("no solve succeeded during the fault window")
	}
	if !okResp.Degraded {
		t.Error("all-stall solve was not degraded; PCSCHEDD_FAULTS inert?")
	}

	// The flight dump reconstructs the incident.
	fr, err := http.Get(base + "/debug/flightrecorder?n=0")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total  uint64          `json:"total_recorded"`
		Events []obs.WideEvent `json:"events"`
	}
	err = json.NewDecoder(fr.Body).Decode(&dump)
	fr.Body.Close()
	if err != nil {
		t.Fatalf("bad flight dump: %v", err)
	}
	if dump.Total < uint64(requests) {
		t.Errorf("flight recorder saw %d events, want >= %d", dump.Total, requests)
	}
	var anchor *obs.WideEvent
	burnSeen := false
	for i := range dump.Events {
		ev := &dump.Events[i]
		if ev.RequestID == okResp.RequestID {
			anchor = ev
		}
		if ev.SLOFastBurn > 0 {
			burnSeen = true
		}
	}
	if anchor == nil {
		t.Fatalf("dump lacks the anchored solve %s (%d events)", okResp.RequestID, len(dump.Events))
	}
	if anchor.Rung == "" || !anchor.Degraded {
		t.Errorf("anchored event rung %q degraded=%v, want a named brownout rung", anchor.Rung, anchor.Degraded)
	}
	if anchor.RungAttempts[0] == 0 {
		t.Errorf("anchored event rung attempts %v: no descent trail", anchor.RungAttempts)
	}
	if !burnSeen {
		t.Error("no wide event carries an SLO burn spike")
	}

	// The incident is visible in the metric families.
	m := fetchMetrics(t, base)
	if m[`pcschedd_slo_fast_burn{objective="latency"}`] <= 0 {
		t.Error("latency fast burn not spiking in /metrics")
	}
	if m[`pcschedd_slo_window_total{objective="availability",window="fast"}`] <= 0 {
		t.Error("availability fast window empty in /metrics")
	}
	if m["pcschedd_flightrecorder_events_total"] < float64(requests) {
		t.Errorf("flightrecorder_events_total = %v, want >= %d",
			m["pcschedd_flightrecorder_events_total"], requests)
	}
	// The lp-stall window never completes an LP solve, so the numerical-
	// health counters stay at zero — but the families must still be
	// scrapeable mid-incident (zero-valued, not absent).
	for _, fam := range []string{
		"pcschedd_lp_refactorizations_total",
		"pcschedd_lp_nan_recoveries_total",
		"pcschedd_lp_max_eta_len",
	} {
		if _, ok := m[fam]; !ok {
			t.Errorf("family %s absent from /metrics during the incident", fam)
		}
	}

	// SIGQUIT: live forensics dump, daemon keeps serving.
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		hz, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("daemon died after SIGQUIT: %v", err)
		}
		io.Copy(io.Discard, hz.Body)
		hz.Body.Close()
		// The dump goroutine races this probe; poll stderr until it lands.
		if strings.Contains(stderr.String(), sigquitMarker) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcschedd exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pcschedd did not exit after SIGTERM")
	}
	log := stderr.String()
	if !strings.Contains(log, "FAULT INJECTION ARMED") {
		t.Error("no loud fault-injection warning on stderr")
	}
	if !strings.Contains(log, sigquitMarker) {
		t.Errorf("SIGQUIT flight dump missing from stderr:\n%.2000s", log)
	}
	// The dump on stderr is itself valid wide-event JSON: round-trip it.
	if i := strings.Index(log, sigquitMarker); i >= 0 {
		i = strings.LastIndex(log[:i], "{")
		var qd struct {
			Events []obs.WideEvent `json:"events"`
		}
		dec := json.NewDecoder(strings.NewReader(log[i:]))
		if err := dec.Decode(&qd); err != nil {
			t.Errorf("SIGQUIT dump is not valid JSON: %v", err)
		} else if len(qd.Events) == 0 {
			t.Error("SIGQUIT dump carries no events")
		}
	}
}
