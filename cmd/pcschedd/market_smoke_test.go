package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMarketSmoke drives the cluster power market end-to-end against a real
// daemon: build pcschedd, start it on a random port, fire one /v1/cluster
// allocation (market policy, heterogeneous pair), assert convergence and
// budget feasibility, verify the per-job schedule cache seeding with a
// follow-up /v1/solve at a granted cap, check the pcschedd_cluster_*
// /metrics counters, then SIGTERM and require a clean exit. This is the
// `make market-smoke` daemon half; the allocator properties themselves are
// covered race-detected in internal/market.
func TestMarketSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pcschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pcschedd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = url
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line from pcschedd; stderr:\n%s", stderr.String())
	}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	clusterReq := `{
		"jobs": [
			{"name": "comd-0", "workload": {"name":"CoMD","ranks":2,"iters":3,"seed":1,"scale":0.1}},
			{"name": "sp-0",   "workload": {"name":"SP","ranks":2,"iters":3,"seed":2,"scale":0.15}}
		],
		"budget_w": 130,
		"policy": "market"
	}`
	code, body := post("/v1/cluster", clusterReq)
	if code != http.StatusOK {
		t.Fatalf("cluster: status %d (%s)", code, body)
	}
	var resp struct {
		Converged bool `json:"converged"`
		Jobs      []struct {
			Name        string  `json:"name"`
			CapW        float64 `json:"cap_w"`
			ScheduleKey string  `json:"schedule_key"`
		} `json:"jobs"`
		BudgetW float64 `json:"budget_w"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding cluster response: %v (%s)", err, body)
	}
	if !resp.Converged {
		t.Errorf("market did not converge: %s", body)
	}
	var sum float64
	for _, j := range resp.Jobs {
		sum += j.CapW
		if j.ScheduleKey == "" {
			t.Errorf("job %s: no schedule_key", j.Name)
		}
	}
	if len(resp.Jobs) != 2 || sum > resp.BudgetW+1e-6 {
		t.Fatalf("bad allocation (sum %.3f of %.0f W): %s", sum, resp.BudgetW, body)
	}

	// A repeat allocation is a cluster-level cache hit.
	if code, body := post("/v1/cluster", clusterReq); code != http.StatusOK {
		t.Fatalf("repeat cluster: status %d (%s)", code, body)
	} else if !strings.Contains(body, `"cached":true`) {
		t.Fatalf("repeat cluster not served from cache: %s", body)
	}

	// The allocation parked each job's schedule under its whole-graph solve
	// key: fetching comd-0's schedule at the granted cap is a cache hit.
	solveReq, _ := json.Marshal(map[string]any{
		"workload":  map[string]any{"name": "CoMD", "ranks": 2, "iters": 3, "seed": 1, "scale": 0.1},
		"job_cap_w": resp.Jobs[0].CapW,
		"whole":     true,
	})
	if code, body := post("/v1/solve", string(solveReq)); code != http.StatusOK {
		t.Fatalf("follow-up solve: status %d (%s)", code, body)
	} else if !strings.Contains(body, `"cached":true`) {
		t.Fatalf("follow-up solve at granted cap not a cache hit: %s", body)
	}

	m := fetchMetrics(t, base)
	for name, want := range map[string]float64{
		"pcschedd_cluster_allocations_total":    1,
		"pcschedd_cluster_jobs_allocated_total": 2,
		"pcschedd_cluster_converged_total":      1,
		"pcschedd_cluster_iterations_count":     1,
		"pcschedd_cluster_degraded_jobs_total":  0,
		"pcschedd_cluster_infeasible_total":     0,
	} {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if m["pcschedd_cluster_moved_watts_total"] <= 0 {
		t.Errorf("pcschedd_cluster_moved_watts_total = %v, want > 0",
			m["pcschedd_cluster_moved_watts_total"])
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcschedd exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pcschedd did not exit after SIGTERM")
	}
}
