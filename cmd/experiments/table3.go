package main

import (
	"fmt"
	"math"
	"sort"

	"powercap/internal/conductor"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/policy"
	"powercap/internal/workloads"
)

// runTable3 reproduces Table 3: task characteristics of one LULESH
// iteration at an average of 50 W per socket, for Static, Conductor, and
// the LP — median time, power standard deviation, thread counts, and
// median frequency relative to the maximum clock.
func runTable3(cfg config) error {
	header("Table 3 — LULESH task characteristics at 50 W/socket",
		"Long-running tasks of a single post-exploration iteration")
	const perSocket = 50.0
	w := workloads.LULESH(workloads.Params{Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale})
	m := machine.Default()
	jobCap := perSocket * float64(cfg.ranks)
	longTask := 0.8 * cfg.scale // paper: ≥ 1 s at full scale

	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		return err
	}
	slice := slices[4] // a steady-state iteration past exploration

	type row struct {
		durs    []float64
		pows    []float64
		threads map[int]bool
		freqs   []float64
	}
	newRow := func() *row { return &row{threads: map[int]bool{}} }
	add := func(r *row, d, p float64, c machine.Config) {
		if d < longTask {
			return
		}
		r.durs = append(r.durs, d)
		r.pows = append(r.pows, p)
		r.threads[c.Threads] = true
		r.freqs = append(r.freqs, c.FreqGHz/m.FreqMaxGHz)
	}

	// Static.
	stRow := newRow()
	st := policy.NewStatic(m, w.EffScale)
	stPts := st.Points(slice.Graph, perSocket)
	for tid, task := range slice.Graph.Tasks {
		if task.Kind != dag.Compute || task.Work <= 0 {
			continue
		}
		r := m.CapConfig(task.Shape, m.Cores, perSocket, w.EffScale[task.Rank])
		// Duty modulation reduces the effective clock below the nominal
		// state; report the effective relative frequency as the paper's
		// "median frequency" does.
		c := r.Config
		c.FreqGHz *= r.Duty
		add(stRow, stPts[tid].Duration, stPts[tid].PowerW, c)
	}

	// Conductor: run the whole app, then read the slice's choices.
	cd := conductor.New(m, w.EffScale)
	cres, err := cd.Run(w.Graph, jobCap)
	if err != nil {
		return err
	}
	cdRow := newRow()
	for i, origID := range slice.TaskMap {
		task := slice.Graph.Tasks[i]
		if task.Kind != dag.Compute || task.Work <= 0 {
			continue
		}
		add(cdRow, cres.Points[origID].Duration, cres.Points[origID].PowerW, cres.Configs[origID])
	}

	// LP: solve the slice, use discrete rounding for thread/freq columns.
	lps := lpSolverFor(w)
	sched, err := lps.Solve(slice.Graph, jobCap)
	if err != nil {
		return err
	}
	lpRow := newRow()
	for tid, task := range slice.Graph.Tasks {
		if task.Kind != dag.Compute || task.Work <= 0 {
			continue
		}
		ch := sched.Choices[tid]
		add(lpRow, ch.DurationS, ch.PowerW, ch.Discrete)
	}

	fmt.Printf("%-12s%14s%16s%12s%18s\n", "Method", "Median time", "Std.dev power", "Threads", "Median rel. freq")
	print := func(name string, r *row) {
		if len(r.durs) == 0 {
			fmt.Printf("%-12s no long-running tasks\n", name)
			return
		}
		fmt.Printf("%-12s%14.3f%16.3f%12s%18.4f\n",
			name, median(r.durs), stddev(r.pows), threadsRange(r.threads), median(r.freqs))
	}
	print("Static", stRow)
	print("Conductor", cdRow)
	print("LP", lpRow)
	fmt.Println("\npaper: Static 4.889s/0.009/8/0.8834; Conductor 3.614s/0.118/5/0.9942; LP 3.611s/0.125/4-5/1.0")
	return nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)-1))
}

func threadsRange(ts map[int]bool) string {
	if len(ts) == 0 {
		return "-"
	}
	var list []int
	for t := range ts {
		list = append(list, t)
	}
	sort.Ints(list)
	if len(list) == 1 {
		return fmt.Sprintf("%d", list[0])
	}
	return fmt.Sprintf("%d-%d", list[0], list[len(list)-1])
}
