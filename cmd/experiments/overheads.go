package main

import (
	"fmt"

	"powercap/internal/conductor"
	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/replay"
	"powercap/internal/workloads"
)

// runOverheads reproduces the Sec. 6.2 overhead accounting: profiling cost
// per MPI call, DVFS transition cost per task during schedule replay, and
// power-reallocation cost per Conductor invocation.
func runOverheads(cfg config) error {
	header("Section 6.2 — Overheads", "")
	const (
		profilerPerCallS = 34e-6  // paper: median measurement overhead per MPI call
		dvfsPerTaskS     = 145e-6 // paper: median per-task replay overhead
		reallocPerCallS  = 566e-6 // paper: average per reallocation invocation
	)
	w := workloads.CoMD(workloads.Params{Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale})
	m := machine.Default()
	jobCap := 50.0 * float64(cfg.ranks)

	// Profiler overhead: one instrumented event per MPI call (vertex),
	// per participating rank.
	calls := 0
	for _, v := range w.Graph.Vertices {
		if v.Rank == dag.AllRanks {
			calls += w.Graph.NumRanks
		} else {
			calls++
		}
	}
	sched, err := core.NewSolver(m, w.EffScale).SolveIterations(w.Graph, jobCap)
	if err != nil {
		return err
	}
	// Profiling is per rank and concurrent; the makespan impact is the
	// per-rank call count times the per-call cost.
	perRankCalls := float64(calls) / float64(w.Graph.NumRanks)
	profOverhead := perRankCalls * profilerPerCallS
	fmt.Printf("profiler: %d instrumented MPI calls; %.0f per rank × 34 µs = %.2f ms over a %.2f s run (%.3f%%; paper: <0.05%%)\n",
		calls, perRankCalls, profOverhead*1e3, sched.MakespanS, profOverhead/sched.MakespanS*100)

	// DVFS transitions during schedule replay.
	opts := replay.DefaultOptions(m, w.EffScale)
	opts.SwitchOverheadS = dvfsPerTaskS
	rep, err := replay.Run(w.Graph, sched, opts)
	if err != nil {
		return err
	}
	nCompute := len(w.Graph.ComputeTasks())
	fmt.Printf("replay:   %d configuration switches over %d tasks (%d suppressed by the 1 ms threshold); %.2f ms total at 145 µs each (%.3f%% of %.2f s)\n",
		rep.Switches, nCompute, rep.Suppressed,
		float64(rep.Switches)*dvfsPerTaskS*1e3,
		float64(rep.Switches)*dvfsPerTaskS/rep.MakespanS*100, rep.MakespanS)

	// Conductor reallocation invocations.
	cd := conductor.New(m, w.EffScale)
	cres, err := cd.Run(w.Graph, jobCap)
	if err != nil {
		return err
	}
	fmt.Printf("conductor: %d reallocation invocations × 566 µs = %.2f ms, amortized over %d iterations (decisions every %d iterations; paper: every 5-10)\n",
		cres.Reallocations, float64(cres.Reallocations)*reallocPerCallS*1e3,
		len(cres.IterTimesS), cd.ReallocPeriod)
	return nil
}
