package main

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/core"
	"powercap/internal/flowilp"
	"powercap/internal/machine"
)

// runFig8 compares the flow ILP against the fixed-vertex-order LP on a
// two-process asynchronous message exchange across a fine sweep of total
// power limits (paper Fig. 8: 106 caps; agreement within 1.9% beyond the
// tightest limits).
func runFig8(cfg config) error {
	header("Figure 8 — Flow vs. Fixed-Vertex Order",
		"Two-process asynchronous message exchange; schedule time vs total power")
	g := fig2Graph(cfg.scale)
	m := machine.Default()
	fixed := core.NewSolver(m, nil)
	flow := flowilp.NewSolver(m, nil)

	// 106 total-power limits, like the paper. Our sockets draw 13.5–92 W
	// each, so the interesting band for two processes is ~30–120 W.
	const nCaps = 106
	lo, hi := 30.0, 120.0

	fmt.Printf("%-12s%14s%14s%10s\n", "power(W)", "fixed(s)", "flow(s)", "gap(%)")
	worstGap, worstAt := 0.0, 0.0
	agreeCount, total := 0, 0
	for i := 0; i < nCaps; i++ {
		capW := lo + (hi-lo)*float64(i)/float64(nCaps-1)
		fres, ferr := flow.Solve(g, capW)
		lres, lerr := fixed.Solve(g, capW)
		switch {
		case ferr != nil && lerr != nil:
			fmt.Printf("%-12.2f%14s%14s%10s\n", capW, "infeas", "infeas", "-")
			continue
		case ferr != nil:
			if errors.Is(ferr, flowilp.ErrInfeasible) {
				fmt.Printf("%-12.2f%14.4f%14s%10s\n", capW, lres.MakespanS, "infeas", "-")
				continue
			}
			return ferr
		case lerr != nil:
			fmt.Printf("%-12.2f%14s%14.4f%10s\n", capW, "infeas", fres.MakespanS, "-")
			continue
		}
		gap := (lres.MakespanS - fres.MakespanS) / fres.MakespanS * 100
		total++
		if gap <= 1.9 {
			agreeCount++
		}
		if gap > worstGap {
			worstGap, worstAt = gap, capW
		}
		fmt.Printf("%-12.2f%14.4f%14.4f%10.2f\n", capW, lres.MakespanS, fres.MakespanS, gap)
	}
	fmt.Printf("\n%d/%d caps agree within 1.9%% (paper: all but 3 of 106); worst gap %.2f%% at %.1f W\n",
		agreeCount, total, worstGap, worstAt)

	// How much extra power closes the worst gap? (Paper: "less than a
	// watt of additional power".)
	if worstGap > 0 {
		fres, err1 := flow.Solve(g, worstAt)
		if err1 == nil {
			extra := math.NaN()
			for dw := 0.1; dw <= 5.0; dw += 0.1 {
				lres, err := fixed.Solve(g, worstAt+dw)
				if err == nil && lres.MakespanS <= fres.MakespanS*1.001 {
					extra = dw
					break
				}
			}
			fmt.Printf("additional power for fixed-order to match flow at %.1f W: %.1f W\n", worstAt, extra)
		}
	}
	_ = machine.Default()
	return nil
}
