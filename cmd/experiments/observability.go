package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"powercap"
	"powercap/internal/obs"
	"powercap/internal/slo"
)

// The "observability" exhibit measures the tracing layer of DESIGN.md §11
// against its two budget claims. First, completeness: a traced solve of the
// full pipeline must produce a Chrome trace-event document that survives a
// JSON round-trip, passes strict nesting validation, and whose top-level
// spans cover ≥95% of the pipeline wall time (nothing substantial runs
// untraced). Second, cost: with no trace armed, an instrumentation site is
// one atomic load — the measured per-site cost times the number of sites a
// solve executes must stay under 2% of the solve's wall time, and the
// direct enabled-vs-disabled wall-time comparison is reported alongside.
//
// Third, the always-on forensics path (DESIGN.md §16): the hypothesis is
// that recording one wide event into the flight recorder plus one SLO
// observation — the fixed per-request cost the recorder adds to EVERY
// request, traced or not — stays under 2% of even a fast solve's wall time
// and allocates nothing. Both are measured directly (ns/op and allocs/op)
// and gated.
//
// With -benchjson the measurements are written as BENCH_observability.json.

// spanCount is one span name's occurrence count in the traced run.
type spanCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// observabilityReport is the BENCH_observability.json document.
type observabilityReport struct {
	Workload      string  `json:"workload"`
	Ranks         int     `json:"ranks"`
	Iters         int     `json:"iters"`
	CapPerSocketW float64 `json:"cap_per_socket_w"`

	// Traced-run completeness.
	Spans        int         `json:"spans"`
	DroppedSpans int         `json:"dropped_spans"`
	SpanNames    []spanCount `json:"span_names"`
	TracedWallMS float64     `json:"traced_wall_ms"`
	CoveragePct  float64     `json:"coverage_pct"` // root's children vs root duration
	NestingOK    bool        `json:"nesting_ok"`

	// Disabled-path budget.
	DisabledNSPerSite   float64 `json:"disabled_ns_per_site"`
	SteadySpanSites     int     `json:"steady_span_sites"`
	DisabledWallMS      float64 `json:"disabled_wall_ms"`
	EnabledWallMS       float64 `json:"enabled_wall_ms"`
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"` // per-site cost × sites / disabled wall
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`  // measured enabled vs disabled wall
	Trials              int     `json:"trials_per_mode"`

	// Always-on forensics budget (DESIGN.md §16).
	FlightRecordNSPerEvent float64 `json:"flight_record_ns_per_event"`
	FlightRecordAllocs     int64   `json:"flight_record_allocs_per_event"`
	SLOObserveNSPerSample  float64 `json:"slo_observe_ns_per_sample"`
	ForensicsOverheadPct   float64 `json:"forensics_overhead_pct"` // (record + observe) / disabled solve wall

	Generated string `json:"generated"`
}

func runObservability(cfg config) error {
	header("Observability", "span coverage, disabled-path overhead, and the always-on forensics budget (DESIGN.md §11, §16)")

	const perSocketW = 55.0
	w, err := powercap.WorkloadByName("CoMD", powercap.WorkloadParams{
		Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale,
	})
	if err != nil {
		return err
	}
	jobCap := perSocketW * float64(cfg.ranks)
	solve := func(ctx context.Context, sys *powercap.System) error {
		_, _, err := sys.SolveRealizedCtx(ctx, w.Graph, jobCap, false, powercap.RealizeDown)
		return err
	}

	// --- Completeness: one traced solve on a fresh System, so every stage
	// (frontier and IR construction included) runs and records.
	sys := powercap.SystemFor(w, nil)
	tr := obs.NewTrace(0)
	ctx, root := obs.Start(obs.WithTrace(context.Background(), tr), "solve.pipeline")
	t0 := time.Now()
	serr := solve(ctx, sys)
	root.End()
	tracedWall := time.Since(t0)
	recs := tr.Snapshot()
	dropped := tr.Dropped()
	tr.Release()
	if serr != nil {
		return serr
	}

	var rootRec *obs.SpanRecord
	byName := map[string]int{}
	for i := range recs {
		byName[recs[i].Name]++
		if recs[i].Name == "solve.pipeline" {
			rootRec = &recs[i]
		}
	}
	if rootRec == nil {
		return fmt.Errorf("observability: root span missing from trace")
	}
	var childNS int64
	for _, r := range recs {
		if r.Parent == rootRec.ID {
			childNS += r.DurNS
		}
	}
	coverage := 100 * float64(childNS) / float64(rootRec.DurNS)

	// The document must survive a JSON round-trip (what pcsched -trace
	// writes and chrome://tracing loads) with its nesting intact.
	doc := obs.Document{TraceEvents: obs.ChromeEvents(recs), DisplayTimeUnit: "ms", DroppedSpans: dropped}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	var round obs.Document
	if err := json.Unmarshal(data, &round); err != nil {
		return err
	}
	nestErr := obs.CheckNesting(round.TraceEvents)

	names := make([]spanCount, 0, len(byName))
	for n, c := range byName {
		names = append(names, spanCount{Name: n, Count: c})
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name < names[j].Name })

	fmt.Printf("traced solve: %s ranks=%d cap=%.0f W/socket — %d spans, %.1f ms wall\n",
		w.Name, cfg.ranks, perSocketW, len(recs), ms(tracedWall))
	fmt.Printf("%-22s%8s\n", "span", "count")
	for _, n := range names {
		fmt.Printf("%-22s%8d\n", n.Name, n.Count)
	}
	fmt.Printf("root coverage: %.2f%% of pipeline wall time under top-level spans (budget ≥95%%)\n", coverage)
	if nestErr != nil {
		fmt.Printf("nesting: FAIL (%v)\n", nestErr)
	} else {
		fmt.Printf("nesting: ok (%d events, strict containment)\n", len(round.TraceEvents))
	}

	// --- Disabled-path budget. Per-site cost with no trace armed …
	if obs.Enabled() {
		return fmt.Errorf("observability: tracing still armed before disabled benchmark")
	}
	bctx := context.Background()
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, sp := obs.Start(bctx, "bench.site")
			sp.End()
		}
	})
	nsPerSite := float64(br.NsPerOp())

	// … times the sites a steady-state solve executes, against its wall
	// time. Interleaved min-of-trials on a warmed System keeps the
	// comparison cache-neutral.
	sysT := powercap.SystemFor(w, nil)
	if err := solve(context.Background(), sysT); err != nil {
		return err
	}
	const trials = 3
	minDisabled, minEnabled := time.Duration(0), time.Duration(0)
	steadySites := 0
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		if err := solve(context.Background(), sysT); err != nil {
			return err
		}
		if d := time.Since(t0); minDisabled == 0 || d < minDisabled {
			minDisabled = d
		}

		ttr := obs.NewTrace(0)
		tctx, troot := obs.Start(obs.WithTrace(context.Background(), ttr), "solve.pipeline")
		t0 = time.Now()
		err := solve(tctx, sysT)
		troot.End()
		if d := time.Since(t0); minEnabled == 0 || d < minEnabled {
			minEnabled = d
		}
		steadySites = len(ttr.Snapshot()) + ttr.Dropped()
		ttr.Release()
		if err != nil {
			return err
		}
	}
	disabledPct := 100 * nsPerSite * float64(steadySites) / float64(minDisabled.Nanoseconds())
	enabledPct := 100 * (float64(minEnabled-minDisabled) / float64(minDisabled))

	fmt.Printf("\ndisabled site cost: %.1f ns/site (one atomic load), %d sites per solve\n", nsPerSite, steadySites)
	fmt.Printf("disabled overhead:  %.4f%% of %.1f ms solve (budget ≤2%%)\n", disabledPct, ms(minDisabled))
	fmt.Printf("enabled overhead:   %.2f%% (%.1f ms traced vs %.1f ms untraced, min of %d)\n",
		enabledPct, ms(minEnabled), ms(minDisabled), trials)

	// --- Always-on forensics budget: one wide-event record plus one SLO
	// observation per request, measured against the same solve wall time.
	fr := obs.NewFlightRecorder(0)
	ev := obs.WideEvent{
		TimeUnixNS: 1, RequestID: "bench-0123456789abcdef", Path: "/v1/solve",
		Status: 200, DurMS: 12.5, Workload: w.Name, CapW: jobCap,
		Cache: "miss", CacheKey: "0123456789abcdef0123456789abcdef", Rung: "sparse",
		DeadlineMS: 60000, SolveMS: 12.1, AdaptRung: "full", Pressure: 0.25,
		SLOFastBurn: 0.4, SLOSlowBurn: 0.1,
		Kernel: obs.KernelHealth{Solves: 4, SimplexPivots: 900, Refactorizations: 2, MaxEtaLen: 64},
	}
	recBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fr.Record(ev)
		}
	})
	recNS := float64(recBench.NsPerOp())
	recAllocs := recBench.AllocsPerOp()

	eng := slo.New(slo.Config{})
	now := time.Now()
	sloBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Observe(now, 200, 10*time.Millisecond)
		}
	})
	sloNS := float64(sloBench.NsPerOp())
	forensicsPct := 100 * (recNS + sloNS) / float64(minDisabled.Nanoseconds())

	fmt.Printf("\nflight record:      %.1f ns/event, %d allocs/event (budget: 0)\n", recNS, recAllocs)
	fmt.Printf("slo observe:        %.1f ns/sample\n", sloNS)
	fmt.Printf("forensics overhead: %.5f%% of %.1f ms solve (budget ≤2%%)\n", forensicsPct, ms(minDisabled))

	report := observabilityReport{
		Workload: w.Name, Ranks: cfg.ranks, Iters: cfg.iters, CapPerSocketW: perSocketW,
		Spans: len(recs), DroppedSpans: dropped, SpanNames: names,
		TracedWallMS: ms(tracedWall), CoveragePct: coverage, NestingOK: nestErr == nil,
		DisabledNSPerSite: nsPerSite, SteadySpanSites: steadySites,
		DisabledWallMS: ms(minDisabled), EnabledWallMS: ms(minEnabled),
		DisabledOverheadPct: disabledPct, EnabledOverheadPct: enabledPct,
		Trials:                 trials,
		FlightRecordNSPerEvent: recNS, FlightRecordAllocs: recAllocs,
		SLOObserveNSPerSample: sloNS, ForensicsOverheadPct: forensicsPct,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	if cfg.benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}

	switch {
	case nestErr != nil:
		return fmt.Errorf("observability: nesting check failed: %w", nestErr)
	case coverage < 95:
		return fmt.Errorf("observability: span coverage %.2f%% below the 95%% budget", coverage)
	case disabledPct > 2:
		return fmt.Errorf("observability: disabled overhead %.4f%% exceeds the 2%% budget", disabledPct)
	case recAllocs > 0:
		return fmt.Errorf("observability: flight record allocates %d per event, want 0", recAllocs)
	case forensicsPct > 2:
		return fmt.Errorf("observability: forensics overhead %.5f%% exceeds the 2%% budget", forensicsPct)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
