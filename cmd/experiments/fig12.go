package main

import (
	"fmt"
	"math"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/policy"
	"powercap/internal/workloads"
)

// runFig12 reproduces the CoMD task-characteristics scatter: duration vs
// power of long-running tasks at an average per-socket constraint of 30 W,
// for LP schedules vs Static (paper Fig. 12).
func runFig12(cfg config) error {
	header("Figure 12 — CoMD task characteristics at 30 W/socket",
		"Duration vs power of long-running force tasks; LP reallocates power across ranks, Static cannot")
	const perSocket = 30.0
	w := workloads.CoMD(workloads.Params{Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale})
	jobCap := perSocket * float64(cfg.ranks)
	longTask := 0.5 * cfg.scale // paper: > 0.5 s at WorkScale 1

	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		return err
	}
	lps := lpSolverFor(w)
	st := policy.NewStatic(lps.Model, w.EffScale)

	type pt struct{ power, dur float64 }
	var lpPts, stPts []pt
	for i := 3; i < len(slices); i++ {
		sl := slices[i]
		sched, err := lps.Solve(sl.Graph, jobCap)
		if err != nil {
			return err
		}
		stRes, err := st.Run(sl.Graph, perSocket)
		if err != nil {
			return err
		}
		stPoints := st.Points(sl.Graph, perSocket)
		for tid, task := range sl.Graph.Tasks {
			if task.Kind != dag.Compute || task.Work <= 0 {
				continue
			}
			if ch := sched.Choices[tid]; ch.DurationS > longTask {
				lpPts = append(lpPts, pt{ch.PowerW, ch.DurationS})
			}
			if d := stRes.End[tid] - stRes.Start[tid]; d > longTask {
				stPts = append(stPts, pt{stPoints[tid].PowerW, d})
			}
		}
	}

	describe := func(name string, pts []pt) {
		if len(pts) == 0 {
			fmt.Printf("  %-8s no long-running tasks\n", name)
			return
		}
		minP, maxP := math.Inf(1), math.Inf(-1)
		durs := make([]float64, 0, len(pts))
		for _, p := range pts {
			minP = math.Min(minP, p.power)
			maxP = math.Max(maxP, p.power)
			durs = append(durs, p.dur)
		}
		sort.Float64s(durs)
		fmt.Printf("  %-8s %4d tasks  power %5.1f–%5.1f W  duration median %.3f s  p95 %.3f s  max %.3f s\n",
			name, len(pts), minP, maxP, durs[len(durs)/2], durs[int(float64(len(durs))*0.95)], durs[len(durs)-1])
	}
	describe("LP", lpPts)
	describe("Static", stPts)
	fmt.Printf("  limit: %.0f W/socket uniform (Static); LP tasks may exceed it individually while the job stays under %.0f W total\n",
		perSocket, jobCap)

	over := 0
	for _, p := range lpPts {
		if p.power > perSocket {
			over++
		}
	}
	fmt.Printf("  LP tasks above the %.0f W uniform limit: %d of %d (the paper's \"many tasks use more than 30 watts\")\n",
		perSocket, over, len(lpPts))

	fmt.Println("\n  sample scatter rows (power W, duration s):")
	sample := func(name string, pts []pt) {
		step := len(pts)/10 + 1
		fmt.Printf("   %s:", name)
		for i := 0; i < len(pts); i += step {
			fmt.Printf(" (%.1f, %.3f)", pts[i].power, pts[i].dur)
		}
		fmt.Println()
	}
	sample("LP", lpPts)
	sample("Static", stPts)
	return nil
}
