package main

import (
	"fmt"
	"sort"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/pareto"
	"powercap/internal/sim"
	"powercap/internal/workloads"
)

// comdForceTaskShape extracts the CoMD force-kernel shape used by Figures
// 1 and 12 (one representative task, as in the paper).
func comdForceTaskShape(cfg config) (machine.Shape, float64) {
	w := workloads.CoMD(workloads.Params{Ranks: 2, Iterations: 1, Seed: cfg.seed, WorkScale: cfg.scale})
	for _, t := range w.Graph.Tasks {
		if t.Class == "force" {
			return t.Shape, t.Work
		}
	}
	return machine.DefaultShape(), 1
}

// runFig1 prints the time-vs-power configuration cloud of one CoMD task
// with its convex Pareto frontier (paper Fig. 1).
func runFig1(cfg config) error {
	header("Figure 1 — Normalized Time vs. Power",
		"One CoMD task across all (threads, DVFS) configurations; * marks the convex Pareto frontier")
	m := machine.Default()
	shape, work := comdForceTaskShape(cfg)

	cfgs := m.Configs()
	cloud := make([]pareto.Point, len(cfgs))
	maxTime := 0.0
	for i, c := range cfgs {
		cloud[i] = pareto.Point{
			PowerW: m.Power(shape, c, 1),
			TimeS:  m.Duration(work, shape, c),
			Index:  i,
		}
		if cloud[i].TimeS > maxTime {
			maxTime = cloud[i].TimeS
		}
	}
	hull := pareto.ConvexFrontier(cloud)
	onHull := map[int]bool{}
	for _, h := range hull {
		onHull[h.Index] = true
	}

	fmt.Printf("%-12s%10s%12s%16s%10s\n", "config", "power(W)", "time(s)", "normalized", "frontier")
	sorted := append([]pareto.Point(nil), cloud...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PowerW < sorted[j].PowerW })
	for _, p := range sorted {
		mark := ""
		if onHull[p.Index] {
			mark = "*"
		}
		fmt.Printf("%-12s%10.1f%12.4f%16.3f%10s\n",
			cfgs[p.Index].String(), p.PowerW, p.TimeS, p.TimeS/maxTime, mark)
	}
	fmt.Printf("\n%d configurations, %d on the convex Pareto frontier\n", len(cloud), len(hull))
	return nil
}

// runTable1 prints the frontier sample of Table 1.
func runTable1(cfg config) error {
	header("Table 1 — Pareto-efficient configurations",
		"Convex frontier of the Fig. 1 task, fastest first (paper's Ci,1 ... Ci,19)")
	m := machine.Default()
	shape, work := comdForceTaskShape(cfg)

	cfgs := m.Configs()
	cloud := make([]pareto.Point, len(cfgs))
	for i, c := range cfgs {
		cloud[i] = pareto.Point{PowerW: m.Power(shape, c, 1), TimeS: m.Duration(work, shape, c), Index: i}
	}
	hull := pareto.ConvexFrontier(cloud)

	fmt.Printf("%-16s%12s%10s%12s%12s\n", "Configuration", "Freq (GHz)", "Threads", "Power (W)", "Time (s)")
	for i := len(hull) - 1; i >= 0; i-- {
		p := hull[i]
		c := cfgs[p.Index]
		fmt.Printf("C_i,%-12d%12.1f%10d%12.1f%12.4f\n", len(hull)-i, c.FreqGHz, c.Threads, p.PowerW, p.TimeS)
	}
	return nil
}

// fig2Graph builds the paper's Fig. 2 example: a two-rank exchange with
// Isend/Wait on rank 0 and Recv on rank 1.
func fig2Graph(scale float64) *dag.Graph {
	sh := machine.DefaultShape()
	b := dag.NewBuilder(2)
	b.Compute(0, 0.8*scale, sh, "A1")
	b.Isend(0, 1, 1<<20)
	b.Compute(0, 0.6*scale, sh, "A2")
	b.Wait(0)
	b.Compute(0, 0.4*scale, sh, "A3")
	b.Compute(1, 1.0*scale, sh, "A4")
	b.Recv(1, 0)
	b.Compute(1, 0.5*scale, sh, "A5")
	return b.Finalize()
}

// runFig2 prints the example task graph and its timeline (paper Fig. 2).
func runFig2(cfg config) error {
	header("Figure 2 — Example task graph and timeline", "")
	g := fig2Graph(cfg.scale)
	m := machine.Default()

	fmt.Println("Vertices (MPI calls):")
	for _, v := range g.Vertices {
		rank := "all"
		if v.Rank != dag.AllRanks {
			rank = fmt.Sprintf("r%d", v.Rank)
		}
		fmt.Printf("  V%-3d %-10s %-5s %s\n", v.ID, v.Kind, rank, v.Label)
	}
	fmt.Println("Edges (tasks and messages):")
	for _, t := range g.Tasks {
		switch t.Kind {
		case dag.Compute:
			fmt.Printf("  %-4s r%d  V%d → V%-3d work=%.2fs\n", t.Class, t.Rank, t.Src, t.Dst, t.Work)
		case dag.Message:
			fmt.Printf("  msg  r%d→ V%d → V%-3d %dB (%.4fs)\n", t.Rank, t.Src, t.Dst, t.Bytes, t.FixedDur)
		}
	}

	pts := sim.Points(g)
	for i, t := range g.Tasks {
		if t.Kind == dag.Compute {
			pts[i] = sim.TaskPoint{
				Duration: m.Duration(t.Work, t.Shape, m.MaxConfig()),
				PowerW:   m.Power(t.Shape, m.MaxConfig(), 1),
			}
		}
	}
	res, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
	if err != nil {
		return err
	}
	fmt.Println("Timeline (maximum configuration):")
	for r := 0; r < g.NumRanks; r++ {
		fmt.Printf("  r%d: ", r)
		for _, t := range g.Tasks {
			if t.Kind == dag.Compute && t.Rank == r && t.Work > 0 {
				fmt.Printf("[%s %.3f–%.3f] ", t.Class, res.Start[t.ID], res.End[t.ID])
			}
		}
		fmt.Println()
	}
	fmt.Printf("  makespan %.3f s\n", res.Makespan)
	return nil
}

// runFig3 demonstrates the co-scheduling problem: slowing one task changes
// which tasks overlap in time (paper Fig. 3).
func runFig3(cfg config) error {
	header("Figure 3 — Task overlap shifts when a task is slowed",
		"Slowing task a changes the set of tasks co-scheduled at b's start")
	sh := machine.DefaultShape()
	scale := cfg.scale
	b := dag.NewBuilder(2)
	b.Compute(0, 1.0*scale, sh, "a") // then b on rank 0
	b.Send(0, 1, 1024)
	b.Compute(0, 1.0*scale, sh, "b")
	b.Compute(1, 2.0*scale, sh, "c") // then d on rank 1
	b.Recv(1, 0)
	b.Compute(1, 1.0*scale, sh, "d")
	g := b.Finalize()
	m := machine.Default()

	evaluate := func(slowA bool) (*sim.Result, error) {
		pts := sim.Points(g)
		for i, t := range g.Tasks {
			if t.Kind != dag.Compute {
				continue
			}
			c := m.MaxConfig()
			if slowA && t.Class == "a" {
				c = machine.Config{FreqGHz: m.FreqMinGHz, Threads: m.Cores}
			}
			pts[i] = sim.TaskPoint{Duration: m.Duration(t.Work, t.Shape, c), PowerW: m.Power(t.Shape, c, 1)}
		}
		return sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
	}

	for _, slow := range []bool{false, true} {
		res, err := evaluate(slow)
		if err != nil {
			return err
		}
		label := "a at maximum configuration"
		if slow {
			label = "a slowed to the DVFS floor"
		}
		// Which rank-1 task is running midway through b?
		var bStart, bMid float64
		for _, t := range g.Tasks {
			if t.Class == "b" {
				bStart = res.Start[t.ID]
				bMid = (res.Start[t.ID] + res.End[t.ID]) / 2
			}
		}
		overlap := "none"
		for _, t := range g.Tasks {
			if t.Kind == dag.Compute && t.Rank == 1 && t.Work > 0 &&
				res.Start[t.ID] <= bMid && bMid < res.End[t.ID] {
				overlap = t.Class
			}
		}
		fmt.Printf("  %-32s b starts at %.3fs, co-scheduled rank-1 task: %s\n", label+":", bStart, overlap)
	}
	return nil
}

// lpSolverFor builds a core solver for a workload.
func lpSolverFor(w *workloads.Workload) *core.Solver {
	return core.NewSolver(machine.Default(), w.EffScale)
}

// sliceAll returns the per-iteration subgraphs of a workload.
func sliceAll(w *workloads.Workload) ([]*dag.Graph, error) {
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		return nil, err
	}
	out := make([]*dag.Graph, len(slices))
	for i, s := range slices {
		out[i] = s.Graph
	}
	return out, nil
}
