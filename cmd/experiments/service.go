package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"powercap/internal/service"
)

// The "service" exhibit benchmarks pcschedd's serving layer in-process:
// throughput and latency of POST /v1/solve at 1, 4, and 16 concurrent
// clients, cold (every request a distinct cap, forcing a backend solve)
// versus cached (the same caps again, served from the content-addressed
// LRU). With -benchjson the measurements are written as BENCH_service.json.

// servicePhase is one (concurrency, cold|cached) measurement.
type servicePhase struct {
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
}

// serviceLevel is one concurrency level's cold and cached phases.
type serviceLevel struct {
	Clients int          `json:"clients"`
	Cold    servicePhase `json:"cold"`
	Cached  servicePhase `json:"cached"`
}

// serviceReport is the BENCH_service.json document.
type serviceReport struct {
	Workload  string         `json:"workload"`
	Ranks     int            `json:"ranks"`
	Iters     int            `json:"iters"`
	Workers   int            `json:"workers"`
	Levels    []serviceLevel `json:"levels"`
	Generated string         `json:"generated"`
}

func runService(cfg config) error {
	header("Service", "pcschedd solve throughput: cold vs content-addressed cache at 1/4/16 clients")

	// Bounded problem size: the exhibit measures the serving layer, not
	// the solver, so a mid-size workload keeps the full run to seconds.
	ranks := cfg.ranks
	if ranks > 8 {
		ranks = 8
	}
	const iters = 6
	workers := runtime.GOMAXPROCS(0)

	svc := service.New(service.Config{Workers: workers, CacheSize: 4096})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	const perPhase = 48 // divisible by every client count
	report := serviceReport{
		Workload: "CoMD", Ranks: ranks, Iters: iters, Workers: workers,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("%8s%10s%14s%10s%10s\n", "clients", "phase", "req/sec", "p50(ms)", "p99(ms)")
	for li, clients := range []int{1, 4, 16} {
		// A per-level seed gives each level its own efficiency scales and
		// therefore its own cache keys: every level's cold phase is cold.
		bodies := make([][]byte, perPhase)
		for i := range bodies {
			body, err := json.Marshal(service.SolveRequest{
				Workload: &service.WorkloadSpec{
					Name: "CoMD", Ranks: ranks, Iters: iters,
					Seed: int64(100 + li), Scale: cfg.scale,
				},
				CapPerSocketW: 70 - 0.5*float64(i), // 48 distinct caps, 70 → 46.5 W
			})
			if err != nil {
				return err
			}
			bodies[i] = body
		}

		fmt.Fprintf(os.Stderr, "  %d client(s): cold...\n", clients)
		cold, err := runServicePhase(client, ts.URL, bodies, clients)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  %d client(s): cached...\n", clients)
		cached, err := runServicePhase(client, ts.URL, bodies, clients)
		if err != nil {
			return err
		}

		report.Levels = append(report.Levels, serviceLevel{Clients: clients, Cold: cold, Cached: cached})
		fmt.Printf("%8d%10s%14.1f%10.2f%10.2f\n", clients, "cold", cold.ReqPerSec, cold.P50MS, cold.P99MS)
		fmt.Printf("%8d%10s%14.1f%10.2f%10.2f\n", clients, "cached", cached.ReqPerSec, cached.P50MS, cached.P99MS)
	}

	m := svc.Metrics()
	fmt.Printf("\nbackend solves %d, cache hits %d (of %d requests)\n",
		m.Solves.Load(), m.CacheHits.Load(), m.Requests.Load())

	if cfg.benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	return nil
}

// runServicePhase fires every body once, spread over the given number of
// concurrent clients, and reduces the per-request latencies.
func runServicePhase(client *http.Client, base string, bodies [][]byte, clients int) (servicePhase, error) {
	work := make(chan int)
	latencies := make([]time.Duration, len(bodies))
	errs := make(chan error, clients)
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("solve request %d: status %d", i, resp.StatusCode)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	for i := range bodies {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return servicePhase{}, err
	default:
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	n := len(latencies)
	return servicePhase{
		Requests:  n,
		ReqPerSec: float64(n) / wall.Seconds(),
		P50MS:     float64(latencies[n/2]) / float64(time.Millisecond),
		P99MS:     float64(latencies[min(n-1, n*99/100)]) / float64(time.Millisecond),
	}, nil
}
