package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// The "kernel" exhibit benchmarks the LP kernel itself (DESIGN.md §14):
// the engine × pricing grid on warm-started cap sweeps at 64-rank scale
// with lu/steepest scale-up rows to 256 ranks, the numerical-breakdown
// frontier ladder on synthetic long-chain traces (new default vs the
// legacy eta/Dantzig kernel), and a past-the-frontier windowed run that
// must need zero numerical rescues. With -benchjson the measurements are
// written as BENCH_kernel.json.
//
// Every run is single-threaded and the runs execute strictly one after
// another — the reference host is a 1-CPU container, so concurrent
// measurement would corrupt the walls. Speedups here are algorithmic
// (pivot counts, factorization sparsity), not parallelism.

// kernelSizes parameterizes the exhibit so the smoke test can shrink it.
type kernelSizes struct {
	gridRanks    int     // rank count for the full engine×pricing sweep grid
	scaleRanks   []int   // extra lu/steepest-only sweep rows (scale-up)
	sweepIters   int     // SP iterations (the sweep solves one slice)
	ladderRanks  int     // ranks for the synthetic frontier traces
	ladder       []int   // frontier ladder event counts, ascending
	ladderPerW   float64 // per-socket cap on the frontier traces
	pointBudgetS float64 // wall budget per monolithic frontier attempt
	windowEvents int     // past-the-frontier windowed run size
	coarsenEps   float64
}

func defaultKernelSizes() kernelSizes {
	return kernelSizes{
		gridRanks:    64,
		scaleRanks:   []int{128, 256},
		sweepIters:   4,
		ladderRanks:  4,
		ladder:       []int{250, 400, 500, 750, 1000, 1250, 1500},
		ladderPerW:   50,
		pointBudgetS: 120,
		windowEvents: 2500,
		coarsenEps:   2e-3,
	}
}

// kernelCombo is one engine×pricing configuration under measurement.
type kernelCombo struct {
	engine  lp.Engine
	pricing lp.Pricing
}

func (c kernelCombo) String() string {
	return c.engine.String() + "/" + c.pricing.String()
}

// kernelSweepRow is one configuration's aggregate over a warm cap sweep.
type kernelSweepRow struct {
	Ranks      int     `json:"ranks"`
	Engine     string  `json:"engine"`
	Pricing    string  `json:"pricing"`
	WallS      float64 `json:"wall_s"`
	Solves     int     `json:"solves"`
	Pivots     int     `json:"pivots"`
	DualPivots int     `json:"dual_pivots"`
	WarmStarts int     `json:"warm_starts"`
}

// kernelFrontierPoint is one monolithic solve attempt on the ladder.
type kernelFrontierPoint struct {
	Events    int     `json:"events"`
	Outcome   string  `json:"outcome"`
	WallS     float64 `json:"wall_s"`
	Pivots    int     `json:"pivots,omitempty"`
	MakespanS float64 `json:"makespan_s,omitempty"`
}

// kernelFrontierRow is one kernel configuration's breakdown frontier.
type kernelFrontierRow struct {
	Engine         string                `json:"engine"`
	Pricing        string                `json:"pricing"`
	Points         []kernelFrontierPoint `json:"points"`
	FrontierEvents int                   `json:"frontier_events"`
	FailOutcome    string                `json:"fail_outcome,omitempty"`
	FailEvents     int                   `json:"fail_events,omitempty"`
}

// kernelReport is the BENCH_kernel.json document.
type kernelReport struct {
	SingleThreaded bool                `json:"single_threaded"`
	HostNote       string              `json:"host_note"`
	GridRanks      int                 `json:"grid_ranks"`
	CapsPerW       []float64           `json:"caps_per_socket_w"`
	Sweeps         []kernelSweepRow    `json:"sweeps"`
	WarmSpeedupX   float64             `json:"warm_sweep_speedup_vs_legacy"`
	LadderRanks    int                 `json:"ladder_ranks"`
	LadderPerW     float64             `json:"ladder_cap_per_socket_w"`
	Frontier       []kernelFrontierRow `json:"frontier"`
	FrontierGainX  float64             `json:"frontier_gain_vs_legacy"`
	WindowEvents   int                 `json:"window_events"`
	WindowWallS    float64             `json:"window_wall_s"`
	WindowRescues  int                 `json:"window_numerical_rescues"`
	Generated      string              `json:"generated"`
}

// kernelDefault/kernelLegacy bracket the refactor: the shipped default
// (sparse LU + steepest edge) against the pre-refactor kernel (eta file +
// full Dantzig scans, bit-compatible with the seed's pivot sequences).
var (
	kernelDefault = kernelCombo{lp.EngineLU, lp.PricingSteepest}
	kernelLegacy  = kernelCombo{lp.EngineEta, lp.PricingDantzig}
)

// Monolithic frontier outcomes beyond scale.go's: the legacy kernel does
// not always fail loudly — past its numerical limits the Dantzig phase-1
// can also wander into declaring a solvable instance infeasible.
const monoFalseInfeasible = "false-infeasible"

func runKernel(cfg config) error {
	return runKernelSized(cfg, defaultKernelSizes())
}

func runKernelSized(cfg config, sz kernelSizes) error {
	header("LP kernel", "engine×pricing warm sweeps, breakdown frontier, and zero-rescue check (DESIGN.md §14; single-threaded, runs serialized for the 1-CPU host)")
	report := kernelReport{
		SingleThreaded: true,
		HostNote:       "1-CPU container; every run is serialized, speedups are algorithmic not parallel",
		GridRanks:      sz.gridRanks,
		LadderRanks:    sz.ladderRanks,
		LadderPerW:     sz.ladderPerW,
	}

	// --- Warm cap sweeps: the engine×pricing grid, then scale-up rows. ---
	for per := 70.0; per >= 30; per -= 10 {
		report.CapsPerW = append(report.CapsPerW, per)
	}
	sweep := func(ranks int, combo kernelCombo) (kernelSweepRow, error) {
		w := workloads.SP(workloads.Params{Ranks: ranks, Iterations: sz.sweepIters, Seed: cfg.seed, WorkScale: cfg.scale})
		slices, err := dag.SliceAll(w.Graph)
		if err != nil {
			return kernelSweepRow{}, err
		}
		si := 2
		if si >= len(slices) {
			si = len(slices) - 1
		}
		g := slices[si].Graph
		var caps []float64
		for _, per := range report.CapsPerW {
			caps = append(caps, per*float64(ranks))
		}
		s := core.NewSolver(machine.Default(), w.EffScale)
		s.Engine, s.Pricing = combo.engine, combo.pricing
		var st core.Stats
		start := time.Now()
		pts, err := s.SolveSweep(g, caps)
		if err != nil {
			return kernelSweepRow{}, err
		}
		for _, pt := range pts {
			if pt.Err != nil {
				return kernelSweepRow{}, pt.Err
			}
			st.Add(pt.Schedule.Stats)
		}
		return kernelSweepRow{
			Ranks:      ranks,
			Engine:     combo.engine.String(),
			Pricing:    combo.pricing.String(),
			WallS:      time.Since(start).Seconds(),
			Solves:     st.Solves,
			Pivots:     st.SimplexIter,
			DualPivots: st.DualIter,
			WarmStarts: st.WarmStarts,
		}, nil
	}

	grid := []kernelCombo{
		kernelDefault,
		{lp.EngineLU, lp.PricingDantzig},
		{lp.EngineEta, lp.PricingSteepest},
		kernelLegacy,
	}
	for _, combo := range grid {
		fmt.Fprintf(os.Stderr, "  warm sweep: %d ranks, %s...\n", sz.gridRanks, combo)
		row, err := sweep(sz.gridRanks, combo)
		if err != nil {
			return fmt.Errorf("sweep %d ranks %s: %w", sz.gridRanks, combo, err)
		}
		report.Sweeps = append(report.Sweeps, row)
	}
	// Scale-up rows run the default kernel only: at these sizes the legacy
	// combinations are 1-2 orders of magnitude slower (see the grid rows),
	// so sweeping them again would dominate the exhibit's wall clock
	// without adding information.
	if len(sz.scaleRanks) > 0 {
		fmt.Fprintf(os.Stderr, "  scale-up rows measure %s only (legacy combos skipped for wall-clock budget)\n", kernelDefault)
	}
	for _, ranks := range sz.scaleRanks {
		fmt.Fprintf(os.Stderr, "  warm sweep: %d ranks, %s...\n", ranks, kernelDefault)
		row, err := sweep(ranks, kernelDefault)
		if err != nil {
			return fmt.Errorf("sweep %d ranks %s: %w", ranks, kernelDefault, err)
		}
		report.Sweeps = append(report.Sweeps, row)
	}

	fmt.Printf("%7s%15s%10s%8s%10s%8s%8s\n", "ranks", "kernel", "wall(s)", "solves", "pivots", "dual", "warm")
	var wallDefault, wallLegacy float64
	for _, r := range report.Sweeps {
		fmt.Printf("%7d%15s%10.2f%8d%10d%8d%8d\n",
			r.Ranks, r.Engine+"/"+r.Pricing, r.WallS, r.Solves, r.Pivots, r.DualPivots, r.WarmStarts)
		if r.Ranks == sz.gridRanks {
			if r.Engine == kernelDefault.engine.String() && r.Pricing == kernelDefault.pricing.String() {
				wallDefault = r.WallS
			}
			if r.Engine == kernelLegacy.engine.String() && r.Pricing == kernelLegacy.pricing.String() {
				wallLegacy = r.WallS
			}
		}
	}
	if wallDefault > 0 {
		report.WarmSpeedupX = wallLegacy / wallDefault
	}
	fmt.Printf("\nat %d ranks the %s kernel sweeps %.1fx faster than the legacy %s kernel (acceptance: >= 2x)\n",
		sz.gridRanks, kernelDefault, report.WarmSpeedupX, kernelLegacy)

	// --- Breakdown frontier: monolithic solves on long-chain traces. ---
	frontier := func(combo kernelCombo) (kernelFrontierRow, error) {
		row := kernelFrontierRow{Engine: combo.engine.String(), Pricing: combo.pricing.String()}
		for _, events := range sz.ladder {
			w := workloads.Synthetic(workloads.SynthParams{
				Ranks: sz.ladderRanks, Events: events, Seed: cfg.seed, WorkScale: cfg.scale,
			})
			s := core.NewSolver(machine.Default(), w.EffScale)
			s.Engine, s.Pricing = combo.engine, combo.pricing
			fmt.Fprintf(os.Stderr, "  frontier: %s at %d events...\n", combo, events)
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(sz.pointBudgetS*float64(time.Second)))
			t0 := time.Now()
			sched, err := s.SolveCtx(ctx, w.Graph, sz.ladderPerW*float64(sz.ladderRanks))
			cancel()
			pt := kernelFrontierPoint{Events: events, WallS: time.Since(t0).Seconds()}
			var numErr *lp.NumericalError
			switch {
			case err == nil:
				pt.Outcome = monoOK
				pt.Pivots = sched.Stats.SimplexIter
				pt.MakespanS = sched.MakespanS
			case errors.As(err, &numErr):
				pt.Outcome = monoBreakdown
			case errors.Is(err, context.DeadlineExceeded):
				pt.Outcome = monoBudget
			case errors.Is(err, core.ErrInfeasible):
				// The same trace and cap solve fine on the other kernels:
				// an infeasible verdict here is numerical failure
				// masquerading as a status, and counts against the
				// frontier just like an explicit breakdown.
				pt.Outcome = monoFalseInfeasible
			default:
				return row, fmt.Errorf("frontier %s at %d events: %w", combo, events, err)
			}
			row.Points = append(row.Points, pt)
			if pt.Outcome != monoOK {
				row.FailOutcome = pt.Outcome
				row.FailEvents = events
				break
			}
			row.FrontierEvents = events
		}
		return row, nil
	}

	for _, combo := range []kernelCombo{kernelDefault, {lp.EngineEta, lp.PricingSteepest}, kernelLegacy} {
		row, err := frontier(combo)
		if err != nil {
			return err
		}
		report.Frontier = append(report.Frontier, row)
	}

	fmt.Printf("\n%15s%12s%22s      per-size outcomes\n", "kernel", "frontier", "first failure")
	var frontDefault, frontLegacy int
	for _, row := range report.Frontier {
		fail := "-"
		if row.FailOutcome != "" {
			fail = fmt.Sprintf("%s @%d", row.FailOutcome, row.FailEvents)
		}
		var outs string
		for _, pt := range row.Points {
			outs += fmt.Sprintf(" %d:%s", pt.Events, pt.Outcome)
		}
		fmt.Printf("%15s%12d%22s     %s\n", row.Engine+"/"+row.Pricing, row.FrontierEvents, fail, outs)
		if row.Engine == kernelDefault.engine.String() && row.Pricing == kernelDefault.pricing.String() {
			frontDefault = row.FrontierEvents
		}
		if row.Engine == kernelLegacy.engine.String() && row.Pricing == kernelLegacy.pricing.String() {
			frontLegacy = row.FrontierEvents
		}
	}
	if frontLegacy > 0 {
		report.FrontierGainX = float64(frontDefault) / float64(frontLegacy)
	}
	fmt.Printf("\nbreakdown frontier: %s reaches %d events vs legacy %s at %d (%.1fx; acceptance: >= 1000 events and >= 2x)\n",
		kernelDefault, frontDefault, kernelLegacy, frontLegacy, report.FrontierGainX)

	// --- Zero-rescue check: windowed solve past every mono frontier. ---
	w := workloads.Synthetic(workloads.SynthParams{
		Ranks: sz.ladderRanks, Events: sz.windowEvents, Seed: cfg.seed, WorkScale: cfg.scale,
	})
	s := core.NewSolver(machine.Default(), w.EffScale)
	fmt.Fprintf(os.Stderr, "  windowed zero-rescue run: %d events on %s...\n", sz.windowEvents, kernelDefault)
	t0 := time.Now()
	ws, err := s.SolveWindowed(w.Graph, sz.ladderPerW*float64(sz.ladderRanks), core.WindowedOptions{
		Windows: scaleWindows(len(w.Graph.Vertices)), OverlapEvents: -1, CoarsenEps: sz.coarsenEps,
	})
	if err != nil {
		return fmt.Errorf("windowed zero-rescue run: %w", err)
	}
	report.WindowEvents = sz.windowEvents
	report.WindowWallS = time.Since(t0).Seconds()
	report.WindowRescues = ws.NumericalFallbacks()
	fmt.Printf("windowed run at %d events (past every monolithic frontier): %.1fs, %d numerical rescues (acceptance: 0)\n",
		report.WindowEvents, report.WindowWallS, report.WindowRescues)

	if cfg.benchJSON != "" {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	return nil
}
