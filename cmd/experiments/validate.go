package main

import (
	"errors"
	"fmt"
	"os"

	"powercap/internal/conductor"
	"powercap/internal/core"
	"powercap/internal/machine"
	"powercap/internal/policy"
	"powercap/internal/replay"
	"powercap/internal/workloads"
)

// runValidate reproduces the Sec. 6.1 validation across all workloads:
// replay every LP schedule (continuous and discrete modes) on the
// simulator and report realized makespans and power-constraint compliance.
func runValidate(cfg config) error {
	header("Section 6.1 — Schedule validation by replay",
		"LP schedules replayed with switch overheads and the 1 ms threshold")
	fmt.Printf("%-8s%10s%14s%14s%14s%12s%12s%12s\n",
		"bench", "W/socket", "LP bound(s)", "cont.(s)", "disc.(s)", "contΔW", "discΔW", "switches")
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, workloads.Params{Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale})
		if err != nil {
			return err
		}
		m := machine.Default()
		lps := core.NewSolver(m, w.EffScale)
		for _, perSocket := range []float64{40, 60} {
			fmt.Fprintf(os.Stderr, "  validating %s @ %.0f W...\n", name, perSocket)
			sched, err := lps.SolveIterations(w.Graph, perSocket*float64(cfg.ranks))
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					fmt.Printf("%-8s%10.0f%14s\n", name, perSocket, "infeasible")
					continue
				}
				return err
			}
			contOpts := replay.DefaultOptions(m, w.EffScale)
			contOpts.Mode = replay.Continuous
			cont, err := replay.Run(w.Graph, sched, contOpts)
			if err != nil {
				return err
			}
			disc, err := replay.Run(w.Graph, sched, replay.DefaultOptions(m, w.EffScale))
			if err != nil {
				return err
			}
			fmt.Printf("%-8s%10.0f%14.3f%14.3f%14.3f%12.3f%12.3f%12d\n",
				name, perSocket, sched.MakespanS, cont.MakespanS, disc.MakespanS,
				cont.CapViolationW, disc.CapViolationW, disc.Switches)
		}
	}
	fmt.Println("\ncontΔW / discΔW = maximum instantaneous excess over the job constraint.")
	fmt.Println("Continuous replays of collective-synchronized traces are exact (0); on")
	fmt.Println("point-to-point-rich traces (SP) the ASAP replay can shift event order")
	fmt.Println("relative to the LP's fixed order and overlap a few extra watts — the very")
	fmt.Println("hazard Eqs. 12-13 exist to exclude *inside* the LP. Discrete rounding adds")
	fmt.Println("a few watts more. The paper's hardware replays likewise verify rather than")
	fmt.Println("prove compliance.")
	return nil
}

// runConfigSel reproduces the Sec. 6 observation about configuration
// selection without power reallocation.
func runConfigSel(cfg config) error {
	header("Section 6 — Configuration selection without reallocation",
		"\"less overhead than Conductor, but also lower performance due to the use of uniform power allocation\"")
	fmt.Printf("%-8s%10s%14s%16s%14s\n", "bench", "W/socket", "Static(s)", "config-only(s)", "Conductor(s)")
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, workloads.Params{Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale})
		if err != nil {
			return err
		}
		m := machine.Default()
		st := policy.NewStatic(m, w.EffScale)
		for _, perSocket := range []float64{40} {
			fmt.Fprintf(os.Stderr, "  config-selection %s @ %.0f W...\n", name, perSocket)
			jobCap := perSocket * float64(cfg.ranks)
			full, err := conductor.New(m, w.EffScale).Run(w.Graph, jobCap)
			if err != nil {
				return err
			}
			cfgOnly, err := conductor.NewConfigOnly(m, w.EffScale).Run(w.Graph, jobCap)
			if err != nil {
				return err
			}
			staticS, err := measuredStaticTotal(w, st, perSocket, full.ExploreSkipped)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s%10.0f%14.3f%16.3f%14.3f\n", name, perSocket, staticS, cfgOnly.MeasuredS, full.MeasuredS)
		}
	}
	return nil
}

// measuredStaticTotal sums Static's per-iteration makespans over the
// measured (post-exploration) slices.
func measuredStaticTotal(w *workloads.Workload, st *policy.Static, perSocket float64, skip int) (float64, error) {
	slices, err := sliceAll(w)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i, sl := range slices {
		if i < skip {
			continue
		}
		r, err := st.Run(sl, perSocket)
		if err != nil {
			return 0, err
		}
		total += r.Makespan
	}
	return total, nil
}
