package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"powercap"
	"powercap/internal/workloads"
)

// The "market" exhibit evaluates the cluster power market (DESIGN.md §13):
// one site-wide budget divided across a fleet of jobs by three policies —
// uniform (the site-wide analogue of Static capping), proportional to
// saturation demand, and the shadow-price market that moves watts from
// flat power–time curves to steep ones until marginal values equalize.
//
// Hypothesis: market ≤ proportional ≤ uniform in total makespan on
// heterogeneous mixes (different curve shapes give the market trades to
// make), with all three tying on the homogeneous control (identical curves
// mean uniform is already the equal-marginal point). The exhibit states
// CONFIRMED or FALSIFIED against measured totals. With -benchjson the
// measurements are written as BENCH_market.json.

// marketSizes parameterizes the exhibit so the smoke test can shrink it.
type marketSizes struct {
	ranks int // per job
	iters int
	scale float64
	mixes []string
	// budgetFrac places the budget between the fleet's floor sum (0) and
	// demand sum (1): deep enough in the constrained regime that curves
	// are steep, far enough from the floors that trades have room.
	budgetFrac float64
	tolSecPerW float64
}

func defaultMarketSizes() marketSizes {
	return marketSizes{
		ranks:      4,
		iters:      3,
		scale:      0.3,
		mixes:      workloads.MixNames(),
		budgetFrac: 0.4,
		tolSecPerW: 1e-3,
	}
}

// marketPolicyResult is one policy's allocation on one mix.
type marketPolicyResult struct {
	TotalMakespanS     float64 `json:"total_makespan_s"`
	MaxMakespanS       float64 `json:"max_makespan_s"`
	Iterations         int     `json:"iterations"`
	Converged          bool    `json:"converged"`
	FinalSpreadSecPerW float64 `json:"final_spread_s_per_w"`
	MovedW             float64 `json:"moved_w"`
	Solves             int     `json:"solves"`
	WarmStarts         int     `json:"warm_starts"`
	WallS              float64 `json:"wall_s"`
}

// marketMixResult is one mix's three-policy comparison.
type marketMixResult struct {
	Mix           string                        `json:"mix"`
	Heterogeneous bool                          `json:"heterogeneous"`
	Jobs          []string                      `json:"jobs"`
	BudgetW       float64                       `json:"budget_w"`
	FloorSumW     float64                       `json:"floor_sum_w"`
	DemandSumW    float64                       `json:"demand_sum_w"`
	Policies      map[string]marketPolicyResult `json:"policies"`
	// MarketGainVsUniformPct is the market's total-makespan improvement
	// over uniform (positive = market faster).
	MarketGainVsUniformPct      float64 `json:"market_gain_vs_uniform_pct"`
	MarketGainVsProportionalPct float64 `json:"market_gain_vs_proportional_pct"`
}

// marketReport is the BENCH_market.json document.
type marketReport struct {
	RanksPerJob   int               `json:"ranks_per_job"`
	Iters         int               `json:"iters"`
	Scale         float64           `json:"scale"`
	BudgetFrac    float64           `json:"budget_frac"`
	TolSecPerW    float64           `json:"tolerance_s_per_w"`
	Mixes         []marketMixResult `json:"mixes"`
	Hypothesis    string            `json:"hypothesis"`
	Confirmed     bool              `json:"confirmed"`
	HetMarketWins int               `json:"het_market_wins"`
	Generated     string            `json:"generated"`
}

const marketHypothesis = "market <= proportional <= uniform total makespan on heterogeneous mixes; ties on homogeneous"

func runMarket(cfg config) error {
	sz := defaultMarketSizes()
	if cfg.ranks != 0 && cfg.ranks < sz.ranks {
		sz.ranks = cfg.ranks // smoke configs may shrink, never grow
	}
	return runMarketSized(cfg, sz)
}

func runMarketSized(cfg config, sz marketSizes) error {
	fmt.Println("=== Cluster power market: total makespan by allocation policy ===")
	fmt.Printf("hypothesis: %s\n", marketHypothesis)
	fmt.Printf("%d ranks/job, %d iters, scale %.2f, budget at %.0f%% of floor→demand span\n\n",
		sz.ranks, sz.iters, sz.scale, sz.budgetFrac*100)

	ctx := context.Background()
	report := marketReport{
		RanksPerJob: sz.ranks,
		Iters:       sz.iters,
		Scale:       sz.scale,
		BudgetFrac:  sz.budgetFrac,
		TolSecPerW:  sz.tolSecPerW,
		Hypothesis:  marketHypothesis,
	}

	fmt.Printf("%-11s%6s%11s%11s%13s%11s%9s%7s%6s\n",
		"mix", "jobs", "budget(W)", "uniform(s)", "proportnl(s)", "market(s)", "gain(%)", "iters", "conv")
	for _, mix := range sz.mixes {
		res, err := runMarketMix(ctx, mix, sz)
		if err != nil {
			return fmt.Errorf("mix %s: %w", mix, err)
		}
		report.Mixes = append(report.Mixes, *res)
		m := res.Policies["market"]
		fmt.Printf("%-11s%6d%11.1f%11.3f%13.3f%11.3f%9.2f%7d%6v\n",
			res.Mix, len(res.Jobs), res.BudgetW,
			res.Policies["uniform"].TotalMakespanS,
			res.Policies["proportional"].TotalMakespanS,
			m.TotalMakespanS, res.MarketGainVsUniformPct, m.Iterations, m.Converged)
	}

	// Verdict: on every heterogeneous mix the market must not lose to
	// either baseline beyond tolerance, and it must strictly win against
	// uniform on at least two of them; the homogeneous control must tie.
	const losTolPct = 0.01 // "never loses" slack, percent
	const winTolPct = 0.05 // "strictly beats" threshold, percent
	const tieTolPct = 0.5  // homogeneous tie slack, percent
	confirmed := true
	var verdicts []string
	for _, res := range report.Mixes {
		gU, gP := res.MarketGainVsUniformPct, res.MarketGainVsProportionalPct
		switch {
		case !res.Heterogeneous:
			if gU < -tieTolPct {
				confirmed = false
				verdicts = append(verdicts, fmt.Sprintf("%s: market LOST the homogeneous tie by %.2f%%", res.Mix, -gU))
			} else {
				verdicts = append(verdicts, fmt.Sprintf("%s: homogeneous control ties (gain %.2f%%)", res.Mix, gU))
			}
		default:
			if gU < -losTolPct || gP < -losTolPct {
				confirmed = false
				verdicts = append(verdicts, fmt.Sprintf("%s: market LOSES (vs uniform %.2f%%, vs proportional %.2f%%)", res.Mix, gU, gP))
				continue
			}
			if gU > winTolPct {
				report.HetMarketWins++
				verdicts = append(verdicts, fmt.Sprintf("%s: market beats uniform by %.2f%% (vs proportional %+.2f%%)", res.Mix, gU, gP))
			} else {
				verdicts = append(verdicts, fmt.Sprintf("%s: market ~ties uniform (%.2f%%)", res.Mix, gU))
			}
			// The middle of the hypothesized chain (proportional <= uniform)
			// can fail: demand-proportional splits overfeed jobs with large
			// saturation demand but shallow curves. Report it — the market
			// claim stands on its own.
			if u, p := res.Policies["uniform"].TotalMakespanS, res.Policies["proportional"].TotalMakespanS; p > u*(1+losTolPct/100) {
				verdicts = append(verdicts, fmt.Sprintf("%s: note: proportional loses to uniform by %.2f%% (chain middle falsified)", res.Mix, 100*(p-u)/u))
			}
		}
	}
	if report.HetMarketWins < 2 {
		confirmed = false
		verdicts = append(verdicts, fmt.Sprintf("market strictly beat uniform on only %d heterogeneous mixes (need >= 2)", report.HetMarketWins))
	}
	report.Confirmed = confirmed

	fmt.Println()
	for _, v := range verdicts {
		fmt.Println("  " + v)
	}
	if confirmed {
		fmt.Printf("\nhypothesis CONFIRMED: market strictly beats uniform on %d heterogeneous mixes and never loses\n", report.HetMarketWins)
	} else {
		fmt.Println("\nhypothesis FALSIFIED — see verdicts above")
	}

	if cfg.benchJSON != "" {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.benchJSON)
	}
	return nil
}

// runMarketMix compares the three policies on one named mix. The budget is
// placed a fixed fraction of the way from the fleet's floor sum to its
// demand sum; both sums come from a probe allocation (uniform policy, very
// generous budget) so the placement is measured, not guessed.
func runMarketMix(ctx context.Context, mix string, sz marketSizes) (*marketMixResult, error) {
	mjobs, err := workloads.Mix(mix, workloads.Params{
		Ranks: sz.ranks, Iterations: sz.iters, Seed: 2, WorkScale: sz.scale,
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]powercap.ClusterJob, len(mjobs))
	names := make([]string, len(mjobs))
	for i, mj := range mjobs {
		jobs[i] = powercap.ClusterJob{Name: mj.Name, Graph: mj.Workload.Graph, EffScale: mj.Workload.EffScale}
		names[i] = mj.Name
	}
	opts := powercap.ClusterOptions{ToleranceSecPerW: sz.tolSecPerW}

	// Probe: generous budget, uniform split — only the per-job floors and
	// saturation demands matter.
	opts.Policy = powercap.PolicyUniform
	probe, err := powercap.AllocateCluster(ctx, jobs, 500*float64(len(jobs)*sz.ranks), nil, opts)
	if err != nil {
		return nil, fmt.Errorf("probe: %w", err)
	}
	var floorSum, demandSum float64
	for _, ja := range probe.Jobs {
		floorSum += ja.FloorW
		demandSum += ja.DemandW
	}
	budget := floorSum + sz.budgetFrac*(demandSum-floorSum)

	res := &marketMixResult{
		Mix:           mix,
		Heterogeneous: mix != "hom-sp",
		Jobs:          names,
		BudgetW:       budget,
		FloorSumW:     floorSum,
		DemandSumW:    demandSum,
		Policies:      map[string]marketPolicyResult{},
	}
	for _, pol := range []powercap.ClusterPolicy{
		powercap.PolicyUniform, powercap.PolicyProportional, powercap.PolicyMarket,
	} {
		opts.Policy = pol
		start := time.Now()
		alloc, err := powercap.AllocateCluster(ctx, jobs, budget, nil, opts)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol, err)
		}
		res.Policies[string(pol)] = marketPolicyResult{
			TotalMakespanS:     alloc.TotalMakespanS,
			MaxMakespanS:       alloc.MaxMakespanS,
			Iterations:         alloc.Iterations,
			Converged:          alloc.Converged,
			FinalSpreadSecPerW: alloc.FinalSpreadSecPerW,
			MovedW:             alloc.MovedW,
			Solves:             alloc.Solves,
			WarmStarts:         alloc.Stats.WarmStarts,
			WallS:              time.Since(start).Seconds(),
		}
	}
	u := res.Policies["uniform"].TotalMakespanS
	p := res.Policies["proportional"].TotalMakespanS
	m := res.Policies["market"].TotalMakespanS
	res.MarketGainVsUniformPct = 100 * (u - m) / u
	res.MarketGainVsProportionalPct = 100 * (p - m) / p
	return res, nil
}
