package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// The "solver" exhibit measures the solver engine itself (DESIGN.md
// "Solver engine architecture"): the cost of a power-cap sweep under the
// dense baseline (cold solves, the seed behaviour), the sparse revised
// simplex (cold), and the warm-started sparse sweep. With -benchjson the
// measurements are also written as machine-readable JSON.

// solverRun is one strategy's aggregate over the sweep.
type solverRun struct {
	Name       string  `json:"name"`
	Engine     string  `json:"engine,omitempty"`
	Pricing    string  `json:"pricing,omitempty"`
	WallS      float64 `json:"wall_s"`
	Solves     int     `json:"solves"`
	Pivots     int     `json:"pivots"`
	DualPivots int     `json:"dual_pivots"`
	WarmStarts int     `json:"warm_starts"`
}

// solverReport is the BENCH_solver.json document.
type solverReport struct {
	Workload  string      `json:"workload"`
	Ranks     int         `json:"ranks"`
	CapsPerW  []float64   `json:"caps_per_socket_w"`
	Runs      []solverRun `json:"runs"`
	SpeedupX  float64     `json:"speedup_warm_sparse_vs_dense_cold"`
	Generated string      `json:"generated"`
}

func runSolver(cfg config) error {
	header("Solver engine", "power-cap sweep cost: dense cold vs sparse cold vs sparse warm (one SP iteration slice)")
	w := workloads.SP(workloads.Params{Ranks: cfg.ranks, Iterations: 4, Seed: cfg.seed, WorkScale: cfg.scale})
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		return err
	}
	si := 2
	if si >= len(slices) {
		si = len(slices) - 1
	}
	g := slices[si].Graph

	var perCaps []float64
	var caps []float64
	for per := 70.0; per >= 30; per -= 10 {
		perCaps = append(perCaps, per)
		caps = append(caps, per*float64(cfg.ranks))
	}

	measure := func(name string, backend lp.Backend, eng lp.Engine, pri lp.Pricing, warm bool) (solverRun, error) {
		s := core.NewSolver(machine.Default(), w.EffScale)
		s.Backend = backend
		s.Engine, s.Pricing = eng, pri
		var st core.Stats
		start := time.Now()
		if warm {
			pts, err := s.SolveSweep(g, caps)
			if err != nil {
				return solverRun{}, err
			}
			for _, pt := range pts {
				if pt.Err != nil {
					return solverRun{}, pt.Err
				}
				st.Add(pt.Schedule.Stats)
			}
		} else {
			for _, c := range caps {
				sched, err := s.Solve(g, c)
				if err != nil {
					return solverRun{}, err
				}
				st.Add(sched.Stats)
			}
		}
		run := solverRun{
			Name:       name,
			WallS:      time.Since(start).Seconds(),
			Solves:     st.Solves,
			Pivots:     st.SimplexIter,
			DualPivots: st.DualIter,
			WarmStarts: st.WarmStarts,
		}
		if backend == lp.BackendSparse {
			run.Engine, run.Pricing = eng.String(), pri.String()
		}
		return run, nil
	}

	// The sparse rows run both the shipped kernel (LU + steepest edge) and
	// the legacy one (eta file + Dantzig) so the engine/pricing columns show
	// what the kernel refactor buys at this scale; the "kernel" exhibit
	// measures the full grid at 64-256 ranks.
	var runs []solverRun
	for _, spec := range []struct {
		name    string
		backend lp.Backend
		engine  lp.Engine
		pricing lp.Pricing
		warm    bool
	}{
		{"dense-cold", lp.BackendDense, lp.EngineAuto, lp.PricingAuto, false},
		{"sparse-cold", lp.BackendSparse, lp.EngineLU, lp.PricingSteepest, false},
		{"sparse-cold-legacy", lp.BackendSparse, lp.EngineEta, lp.PricingDantzig, false},
		{"sparse-warm", lp.BackendSparse, lp.EngineLU, lp.PricingSteepest, true},
		{"sparse-warm-legacy", lp.BackendSparse, lp.EngineEta, lp.PricingDantzig, true},
	} {
		fmt.Fprintf(os.Stderr, "  sweeping %s...\n", spec.name)
		r, err := measure(spec.name, spec.backend, spec.engine, spec.pricing, spec.warm)
		if err != nil {
			return err
		}
		runs = append(runs, r)
	}

	fmt.Printf("%-20s%8s%10s%10s%8s%10s%8s%8s\n", "strategy", "engine", "pricing", "wall(s)", "solves", "pivots", "dual", "warm")
	for _, r := range runs {
		eng, pri := r.Engine, r.Pricing
		if eng == "" {
			eng, pri = "-", "-"
		}
		fmt.Printf("%-20s%8s%10s%10.2f%8d%10d%8d%8d\n", r.Name, eng, pri, r.WallS, r.Solves, r.Pivots, r.DualPivots, r.WarmStarts)
	}
	speedup := 0.0
	if runs[3].WallS > 0 {
		speedup = runs[0].WallS / runs[3].WallS
	}
	fmt.Printf("\nwarm sparse sweep is %.1fx faster than the dense cold baseline\n", speedup)

	if cfg.benchJSON != "" {
		report := solverReport{
			Workload:  w.Name,
			Ranks:     cfg.ranks,
			CapsPerW:  perCaps,
			Runs:      runs,
			SpeedupX:  speedup,
			Generated: time.Now().UTC().Format(time.RFC3339),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	return nil
}
