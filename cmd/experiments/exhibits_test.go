package main

import "testing"

// tinyConfig keeps exhibit smoke tests fast.
func tinyConfig() config {
	return config{ranks: 4, iters: 6, seed: 1, scale: 0.25}
}

// TestExhibitsRun smoke-tests every exhibit at a tiny instance size: each
// must complete without error (regression guard for the harness itself —
// the numeric fidelity is covered by package tests and EXPERIMENTS.md).
func TestExhibitsRun(t *testing.T) {
	cases := map[string]func(config) error{
		"fig1":      runFig1,
		"table1":    runTable1,
		"fig2":      runFig2,
		"fig3":      runFig3,
		"fig12":     runFig12,
		"table3":    runTable3,
		"overheads": runOverheads,
		"configsel": runConfigSel,
	}
	for name, fn := range cases {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			if err := fn(tinyConfig()); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestSweepExhibitsRun covers the cross-benchmark sweeps at a single tiny
// point by pre-seeding the memo so they don't run the whole grid.
func TestSweepExhibitsRun(t *testing.T) {
	cfg := tinyConfig()
	if err := runBenchFigure(cfg, "CoMD", "Figure 11 (smoke)"); err != nil {
		t.Fatal(err)
	}
	// The memoized CoMD points make summary/fig9/fig10 partially cached;
	// they still solve the remaining benchmarks, so keep this to the
	// per-benchmark figure only at tiny scale.
}

func TestCapsForCoversAllWorkloads(t *testing.T) {
	for _, name := range []string{"CoMD", "BT", "SP", "LULESH", "unknown"} {
		caps := capsFor(name)
		if len(caps) < 3 {
			t.Fatalf("%s: %d caps", name, len(caps))
		}
		for i := 1; i < len(caps); i++ {
			if caps[i] <= caps[i-1] {
				t.Fatalf("%s: caps not increasing", name)
			}
		}
	}
	if len(allCaps()) < 6 {
		t.Fatalf("allCaps too small: %v", allCaps())
	}
}

func TestFig2GraphValidates(t *testing.T) {
	g := fig2Graph(1.0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 6 { // 5 computes + 1 message
		t.Fatalf("fig2 graph has %d tasks, want 6", len(g.Tasks))
	}
}

// TestScaleExhibitSmoke runs the windowed-scaling exhibit at a tiny size:
// one ladder point plus a small headline point, the monolithic LP given
// its budget, and a two-worker thread sweep.
func TestScaleExhibitSmoke(t *testing.T) {
	cfg := tinyConfig()
	sz := scaleSizes{
		ranks:        2,
		ladder:       []int{300},
		large:        800,
		threadEvents: 800,
		threads:      []int{1, 2},
		perSocketW:   50,
		coarsenEps:   2e-3,
		monoBudgetX:  10,
		minBudgetS:   60,
	}
	if err := runScaleSized(cfg, sz); err != nil {
		t.Fatal(err)
	}
}

// TestKernelExhibitSmoke runs the LP-kernel exhibit at a tiny size: the
// engine×pricing grid on an 4-rank sweep, one extra scale row, a two-point
// frontier ladder, and a small windowed zero-rescue run.
func TestKernelExhibitSmoke(t *testing.T) {
	cfg := tinyConfig()
	sz := kernelSizes{
		gridRanks:    4,
		scaleRanks:   []int{8},
		sweepIters:   4,
		ladderRanks:  2,
		ladder:       []int{200, 300},
		ladderPerW:   50,
		pointBudgetS: 60,
		windowEvents: 800,
		coarsenEps:   2e-3,
	}
	if err := runKernelSized(cfg, sz); err != nil {
		t.Fatal(err)
	}
}

// TestMarketExhibitSmoke runs the cluster-market exhibit on one small
// heterogeneous mix. The verdict (CONFIRMED/FALSIFIED) is informational at
// this size — the smoke test only guards the harness; the allocation
// properties themselves are covered by internal/market's tests.
func TestMarketExhibitSmoke(t *testing.T) {
	cfg := tinyConfig()
	sz := marketSizes{
		ranks:      2,
		iters:      2,
		scale:      0.2,
		mixes:      []string{"het-bt-sp"},
		budgetFrac: 0.4,
		tolSecPerW: 1e-3,
	}
	if err := runMarketSized(cfg, sz); err != nil {
		t.Fatal(err)
	}
}
