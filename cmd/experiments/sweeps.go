package main

import (
	"fmt"
	"os"
	"sort"

	"powercap"
)

// capsFor returns each benchmark's per-socket power sweep, matching the
// paper's figure axes (SP and LULESH were not schedulable/plotted at 30 W;
// BT's figure stops at 70 W).
func capsFor(name string) []float64 {
	switch name {
	case "CoMD":
		return []float64{30, 40, 50, 60, 70, 80}
	case "BT":
		return []float64{30, 40, 50, 60, 70}
	case "SP", "LULESH":
		return []float64{40, 50, 60, 70, 80}
	default:
		return []float64{30, 40, 50, 60, 70, 80}
	}
}

// sweepKey memoizes Compare results across exhibits in one invocation.
type sweepKey struct {
	name string
	cap  float64
}

var sweepMemo = map[sweepKey]*powercap.Comparison{}

// compareAt runs (or recalls) the three-way comparison for one benchmark
// at one per-socket cap.
func compareAt(cfg config, name string, capW float64) (*powercap.Comparison, error) {
	key := sweepKey{name, capW}
	if c, ok := sweepMemo[key]; ok {
		return c, nil
	}
	w, err := powercap.WorkloadByName(name, powercap.WorkloadParams{
		Ranks: cfg.ranks, Iterations: cfg.iters, Seed: cfg.seed, WorkScale: cfg.scale,
	})
	if err != nil {
		return nil, err
	}
	sys := powercap.SystemFor(w, nil)
	fmt.Fprintf(os.Stderr, "  solving %s @ %.0f W/socket...\n", name, capW)
	cmp, err := sys.Compare(w, capW)
	if err != nil {
		return nil, err
	}
	sweepMemo[key] = cmp
	return cmp, nil
}

// allCaps returns the union of the benchmarks' sweeps, sorted.
func allCaps() []float64 {
	set := map[float64]bool{}
	for _, name := range powercap.WorkloadNames() {
		for _, c := range capsFor(name) {
			set[c] = true
		}
	}
	var out []float64
	for c := range set {
		out = append(out, c)
	}
	sort.Float64s(out)
	return out
}

// runFig9 prints LP-vs-Static potential improvement for all benchmarks.
func runFig9(cfg config) error {
	header("Figure 9 — LP vs Static", "Potential speedup of LP-derived schedules vs. Static (%)")
	return runCrossBenchmark(cfg, func(c *powercap.Comparison) (float64, bool) {
		return c.LPvsStaticPct, !c.LPInfeasible
	})
}

// runFig10 prints LP-vs-Conductor potential improvement for all benchmarks.
func runFig10(cfg config) error {
	header("Figure 10 — LP vs Conductor", "Potential speedup of LP-derived schedules vs. Conductor (%)")
	return runCrossBenchmark(cfg, func(c *powercap.Comparison) (float64, bool) {
		return c.LPvsConductorPct, !c.LPInfeasible
	})
}

func runCrossBenchmark(cfg config, metric func(*powercap.Comparison) (float64, bool)) error {
	names := []string{"BT", "CoMD", "LULESH", "SP"}
	fmt.Printf("%-10s", "W/socket")
	for _, n := range names {
		fmt.Printf("%10s", n)
	}
	fmt.Println()
	for _, capW := range allCaps() {
		fmt.Printf("%-10.0f", capW)
		for _, n := range names {
			inRange := false
			for _, c := range capsFor(n) {
				if c == capW {
					inRange = true
				}
			}
			if !inRange {
				fmt.Printf("%10s", "-")
				continue
			}
			cmp, err := compareAt(cfg, n, capW)
			if err != nil {
				return err
			}
			v, ok := metric(cmp)
			if !ok {
				fmt.Printf("%10s", "infeas")
				continue
			}
			fmt.Printf("%10.1f", v)
		}
		fmt.Println()
	}
	return nil
}

// runBenchFigure prints one benchmark's LP and Conductor improvement over
// Static (Figures 11, 13, 14, 15).
func runBenchFigure(cfg config, name, figure string) error {
	header(fmt.Sprintf("%s — %s improvement vs Static", figure, name),
		"Improvement (%) of LP (potential) and Conductor (demonstrated) over Static")
	fmt.Printf("%-10s%12s%12s%14s%14s%14s\n", "W/socket", "LP(%)", "Conductor(%)",
		"Static(s)", "Conductor(s)", "LPbound(s)")
	for _, capW := range capsFor(name) {
		cmp, err := compareAt(cfg, name, capW)
		if err != nil {
			return err
		}
		lpStr := "infeas"
		lpBound := "-"
		if !cmp.LPInfeasible {
			lpStr = fmt.Sprintf("%.1f", cmp.LPvsStaticPct)
			lpBound = fmt.Sprintf("%.3f", cmp.LPBoundS)
		}
		fmt.Printf("%-10.0f%12s%12.1f%14.3f%14.3f%14s\n",
			capW, lpStr, cmp.ConductorVsStaticPct, cmp.StaticS, cmp.ConductorS, lpBound)
	}
	return nil
}

// runSummary prints the paper's headline numbers from the full sweep.
func runSummary(cfg config) error {
	header("Summary — headline numbers",
		"Paper: Static trails LP by up to 74.9%; Conductor trails LP by up to 41.1%;\n"+
			"Conductor improves on Static by 6.7% on average vs the LP's 10.8% potential.")
	maxLPvsStatic, maxLPvsCond := 0.0, 0.0
	var maxLPvsStaticAt, maxLPvsCondAt string
	var sumCond, sumLP float64
	n := 0
	for _, name := range powercap.WorkloadNames() {
		for _, capW := range capsFor(name) {
			cmp, err := compareAt(cfg, name, capW)
			if err != nil {
				return err
			}
			if cmp.LPInfeasible {
				continue
			}
			if cmp.LPvsStaticPct > maxLPvsStatic {
				maxLPvsStatic = cmp.LPvsStaticPct
				maxLPvsStaticAt = fmt.Sprintf("%s @ %.0f W", name, capW)
			}
			if cmp.LPvsConductorPct > maxLPvsCond {
				maxLPvsCond = cmp.LPvsConductorPct
				maxLPvsCondAt = fmt.Sprintf("%s @ %.0f W", name, capW)
			}
			sumCond += cmp.ConductorVsStaticPct
			sumLP += cmp.LPvsStaticPct
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("no feasible points")
	}
	fmt.Printf("Static trails LP by up to     %6.1f%%  (%s; paper: 74.9%%)\n", maxLPvsStatic, maxLPvsStaticAt)
	fmt.Printf("Conductor trails LP by up to  %6.1f%%  (%s; paper: 41.1%%)\n", maxLPvsCond, maxLPvsCondAt)
	fmt.Printf("Mean Conductor gain vs Static %6.1f%%  (paper: 6.7%%)\n", sumCond/float64(n))
	fmt.Printf("Mean LP potential vs Static   %6.1f%%  (paper: 10.8%%)\n", sumLP/float64(n))
	return nil
}
