package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"powercap"
	"powercap/internal/adapt"
	"powercap/internal/service"
	"powercap/internal/twin"
)

// The "twin" exhibit drives pcschedd with the deterministic traffic twin
// (internal/twin) and tests the adaptive overload control plane of DESIGN.md
// §15 against stated hypotheses. Each scenario prints its hypothesis up
// front and a CONFIRMED/FALSIFIED verdict from the measured outcome; with
// -benchjson the full measurements land in BENCH_twin.json.
//
// All daemons are in-process (httptest) so fault windows can arm the
// process-global fault injector, and they run serially: one scenario, one
// daemon at a time — this exhibit is sized for a single-CPU host.

// twinRun is one daemon configuration's classified result.
type twinRun struct {
	Config string       `json:"config"`
	Result *twin.Result `json:"result"`
}

// twinScenarioReport is one scenario of the BENCH_twin.json document.
type twinScenarioReport struct {
	Name       string    `json:"name"`
	Hypothesis string    `json:"hypothesis"`
	Verdict    string    `json:"verdict"` // "CONFIRMED" or "FALSIFIED"
	Detail     string    `json:"detail"`
	Runs       []twinRun `json:"runs,omitempty"`
	Replay     []string  `json:"replay_summaries,omitempty"`
}

type twinReport struct {
	Scenarios []twinScenarioReport `json:"scenarios"`
	Generated string               `json:"generated"`
}

// twinCapacity is the shared daemon sizing: small enough that a flash crowd
// genuinely overflows admission on one CPU.
func twinCapacity() service.Config {
	return service.Config{
		Workers:    2,
		QueueDepth: 4,
		CacheSize:  64,
		Resilience: powercap.ResilienceConfig{
			BackoffBase:     100 * time.Microsecond,
			BreakerCooldown: 50 * time.Millisecond,
		},
	}
}

// twinDaemon starts an in-process daemon; the caller must call the returned
// cleanup even on error paths.
func twinDaemon(cfg service.Config) (base string, svc *service.Server, cleanup func()) {
	svc = service.New(cfg)
	stopAdapt := svc.StartAdapt()
	ts := httptest.NewServer(svc)
	return ts.URL, svc, func() { ts.Close(); stopAdapt() }
}

var twinHeavy = []twin.Workload{
	// ~24 ms per cache-miss solve: two workers saturate near 80/s.
	{Name: "CoMD", Ranks: 8, Iters: 8, Seed: 1, Scale: 0.5},
	{Name: "SP", Ranks: 8, Iters: 8, Seed: 2, Scale: 0.5},
}

var twinLight = []twin.Workload{
	// ~8 ms per cache-miss solve: comfortable at diurnal rates.
	{Name: "CoMD", Ranks: 4, Iters: 6, Seed: 1, Scale: 0.3},
	{Name: "SP", Ranks: 4, Iters: 6, Seed: 2, Scale: 0.3},
}

func runTwin(cfg config) error {
	header("Twin", "deterministic traffic twin vs the adaptive overload control plane: hypotheses and verdicts per scenario")

	report := twinReport{Generated: time.Now().UTC().Format(time.RFC3339)}
	confirmed := 0
	add := func(s twinScenarioReport) {
		report.Scenarios = append(report.Scenarios, s)
		if s.Verdict == "CONFIRMED" {
			confirmed++
		}
		fmt.Printf("  %s: %s\n\n", s.Verdict, s.Detail)
	}

	if s, err := twinDiurnal(); err != nil {
		return err
	} else {
		add(s)
	}
	if s, err := twinFlashCrowd(); err != nil {
		return err
	} else {
		add(s)
	}
	if s, err := twinRetryStorm(); err != nil {
		return err
	} else {
		add(s)
	}
	if s, err := twinFaultBrownout(); err != nil {
		return err
	} else {
		add(s)
	}
	if s, err := twinReplayRegression(); err != nil {
		return err
	} else {
		add(s)
	}

	fmt.Printf("%d/%d hypotheses confirmed\n", confirmed, len(report.Scenarios))

	if cfg.benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	if confirmed != len(report.Scenarios) {
		return fmt.Errorf("%d of %d twin hypotheses falsified",
			len(report.Scenarios)-confirmed, len(report.Scenarios))
	}
	return nil
}

// twinDiurnal: moderate load must not trip the brownout ladder.
func twinDiurnal() (twinScenarioReport, error) {
	s := twinScenarioReport{
		Name: "diurnal",
		Hypothesis: "a diurnal ramp well inside capacity never triggers brownout: " +
			"every request is answered at full fidelity, zero sheds",
	}
	fmt.Printf("[diurnal] hypothesis: %s\n", s.Hypothesis)

	sc := twin.Scenario{
		Name: "diurnal",
		Seed: 101,
		Phases: []twin.Phase{
			{Name: "night", DurMS: 700, RatePerS: 15},
			{Name: "peak", DurMS: 900, RatePerS: 45},
			{Name: "evening", DurMS: 700, RatePerS: 15},
		},
		Workloads: twinLight,
		Caps:      []float64{45, 50, 55, 60, 65},
		ZipfS:     1.0,
	}

	cfgAdapt := twinCapacity()
	cfgAdapt.Adapt = adapt.Config{Enabled: true, Epoch: 100 * time.Millisecond}
	base, _, cleanup := twinDaemon(cfgAdapt)
	res := twin.Run(base, sc, twin.RunOptions{MaxInflight: 24})
	cleanup()
	fmt.Printf("  %s\n", res)

	s.Runs = []twinRun{{Config: "adaptive", Result: res}}
	if res.OK == res.Requests && res.Browned == 0 && res.Rej429 == 0 {
		s.Verdict = "CONFIRMED"
	} else {
		s.Verdict = "FALSIFIED"
	}
	s.Detail = fmt.Sprintf("%d/%d full answers, %d browned, %d rejected under the diurnal ramp",
		res.OK, res.Requests, res.Browned, res.Rej429)
	return s, nil
}

// twinFlashCrowd: the acceptance hypothesis — adaptive goodput beats every
// static sizing on the same flash crowd.
func twinFlashCrowd() (twinScenarioReport, error) {
	s := twinScenarioReport{
		Name: "flash-crowd",
		Hypothesis: "on a 2x-capacity flash crowd with an 800 ms deadline, the adaptive " +
			"daemon answers a larger fraction of requests than every static sizing " +
			"(default, deep-queue, extra-workers)",
	}
	fmt.Printf("[flash-crowd] hypothesis: %s\n", s.Hypothesis)

	sc := twin.Scenario{
		Name: "flash-crowd",
		Seed: 202,
		Phases: []twin.Phase{
			{Name: "warm", DurMS: 300, RatePerS: 30},
			{Name: "flash", DurMS: 1500, RatePerS: 160},
			{Name: "cool", DurMS: 400, RatePerS: 30},
		},
		Workloads:   twinHeavy,
		Caps:        capRangeTwin(40, 70, 0.5),
		ZipfS:       0.4,
		RealizeFrac: 0.3,
		TimeoutMS:   800,
		Retry:       twin.RetryPolicy{MaxRetries: 2, DelayMS: 50, HonorRetryAfter: true},
	}

	configs := []struct {
		label string
		mod   func(*service.Config)
	}{
		{"adaptive", func(c *service.Config) {
			c.Adapt = adapt.Config{Enabled: true, Epoch: 100 * time.Millisecond}
		}},
		{"static-default", func(c *service.Config) {}},
		{"static-deep-queue", func(c *service.Config) { c.QueueDepth = 32 }},
		{"static-extra-workers", func(c *service.Config) { c.Workers = 4 }},
	}
	for _, cc := range configs {
		cfg := twinCapacity()
		cc.mod(&cfg)
		base, _, cleanup := twinDaemon(cfg)
		res := twin.Run(base, sc, twin.RunOptions{MaxInflight: 24})
		cleanup()
		fmt.Printf("  %-21s %s\n", cc.label+":", res)
		s.Runs = append(s.Runs, twinRun{Config: cc.label, Result: res})
	}

	adaptiveRes := s.Runs[0].Result
	bestStatic, bestLabel := -1.0, ""
	violations := 0
	for _, r := range s.Runs {
		violations += r.Result.CapViolations
		if r.Config == "adaptive" {
			continue
		}
		if f := r.Result.GoodFrac(); f > bestStatic {
			bestStatic, bestLabel = f, r.Config
		}
	}
	if adaptiveRes.GoodFrac() >= bestStatic && violations == 0 {
		s.Verdict = "CONFIRMED"
	} else {
		s.Verdict = "FALSIFIED"
	}
	s.Detail = fmt.Sprintf("adaptive answered %.1f%% vs best static %.1f%% (%s); %d cap violations anywhere",
		100*adaptiveRes.GoodFrac(), 100*bestStatic, bestLabel, violations)
	return s, nil
}

// twinRetryStorm: impatient clients that retry fast and ignore hints.
func twinRetryStorm() (twinScenarioReport, error) {
	s := twinScenarioReport{
		Name: "retry-storm",
		Hypothesis: "under a storm of impatient clients (4 fast retries, hints ignored), " +
			"the retry budget plus brownout drain the storm instead of letting it stretch: " +
			"higher goodput per second and a shorter storm than the static daemon, which " +
			"only survives by queueing the backlog out in time",
	}
	fmt.Printf("[retry-storm] hypothesis: %s\n", s.Hypothesis)

	sc := twin.Scenario{
		Name: "retry-storm",
		Seed: 303,
		Phases: []twin.Phase{
			{Name: "storm", DurMS: 1500, RatePerS: 120},
			{Name: "after", DurMS: 500, RatePerS: 20},
		},
		Workloads: twinHeavy,
		Caps:      capRangeTwin(40, 70, 1),
		ZipfS:     0.4,
		Retry:     twin.RetryPolicy{MaxRetries: 4, DelayMS: 10, HonorRetryAfter: false},
	}

	var runs []*twin.Result
	for _, adaptive := range []bool{true, false} {
		cfg := twinCapacity()
		label := "static"
		if adaptive {
			cfg.Adapt = adapt.Config{Enabled: true, Epoch: 100 * time.Millisecond}
			label = "adaptive"
		}
		base, _, cleanup := twinDaemon(cfg)
		res := twin.Run(base, sc, twin.RunOptions{MaxInflight: 24})
		cleanup()
		fmt.Printf("  %-9s %s\n", label+":", res)
		s.Runs = append(s.Runs, twinRun{Config: label, Result: res})
		runs = append(runs, res)
	}
	adaptiveRes, staticRes := runs[0], runs[1]
	if adaptiveRes.GoodputPerS >= staticRes.GoodputPerS && adaptiveRes.WallS <= staticRes.WallS {
		s.Verdict = "CONFIRMED"
	} else {
		s.Verdict = "FALSIFIED"
	}
	s.Detail = fmt.Sprintf("adaptive %.1f good/s over %.1fs vs static %.1f good/s over %.1fs",
		adaptiveRes.GoodputPerS, adaptiveRes.WallS, staticRes.GoodputPerS, staticRes.WallS)
	return s, nil
}

// twinFaultBrownout: injected solver stalls must brown the service out, not
// fail it, and the controller must climb back after the window.
func twinFaultBrownout() (twinScenarioReport, error) {
	s := twinScenarioReport{
		Name: "fault-brownout",
		Hypothesis: "a window of injected LP stalls degrades fidelity instead of availability " +
			"(zero 5xx, zero cap violations, every request answered) and after the window " +
			"the controller returns to full fidelity with the primary solve path's breaker " +
			"re-closed and none left open",
	}
	fmt.Printf("[fault-brownout] hypothesis: %s\n", s.Hypothesis)

	sc := twin.Scenario{
		Name: "fault-brownout",
		Seed: 404,
		Phases: []twin.Phase{
			{Name: "calm", DurMS: 500, RatePerS: 40},
			{Name: "stormy", DurMS: 1200, RatePerS: 40},
			{Name: "recovery", DurMS: 1000, RatePerS: 40},
		},
		Workloads: twinLight,
		// A wide cap universe so the stall window keeps seeing cache
		// misses: warm LRU entries must not absorb the whole fault.
		Caps:  capRangeTwin(40, 70, 1),
		ZipfS: 0.3,
		Faults: []twin.FaultWindow{
			{Class: "lp-stall", Prob: 1.0, StartMS: 500, EndMS: 1700},
		},
	}

	cfg := twinCapacity()
	cfg.Adapt = adapt.Config{Enabled: true, Epoch: 100 * time.Millisecond}
	base, _, cleanup := twinDaemon(cfg)
	defer cleanup()
	res := twin.Run(base, sc, twin.RunOptions{MaxInflight: 24})
	fmt.Printf("  %s\n", res)
	s.Runs = []twinRun{{Config: "adaptive+faults", Result: res}}

	// After the run, probe until the daemon reports full fidelity with the
	// sparse (primary) breaker re-closed and no breaker open. Deeper rungs
	// may report half-open indefinitely: once the sparse path works again
	// they never see another request, so there is nothing to close them
	// with — half-open means "ready to probe", which is recovered.
	rung, breakers, probes, recovered := "", "", 0, false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		probes++
		body, _ := json.Marshal(map[string]any{
			"workload":         twinLight[probes%len(twinLight)],
			"cap_per_socket_w": 44 + float64(probes),
		})
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		hr, err := http.Get(base + "/healthz")
		if err != nil {
			return s, err
		}
		var hz struct {
			Breakers map[string]string `json:"breakers"`
			Adapt    struct {
				Rung string `json:"rung"`
			} `json:"adapt"`
		}
		err = json.NewDecoder(hr.Body).Decode(&hz)
		hr.Body.Close()
		if err != nil {
			return s, err
		}
		rung = hz.Adapt.Rung
		ok := hz.Breakers["sparse"] == "closed"
		for _, st := range hz.Breakers {
			if st == "open" {
				ok = false
			}
		}
		breakers = fmt.Sprintf("sparse=%s", hz.Breakers["sparse"])
		if rung == "full" && ok {
			recovered = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	if res.Err5xx == 0 && res.CapViolations == 0 && res.OK == res.Requests && recovered {
		s.Verdict = "CONFIRMED"
	} else {
		s.Verdict = "FALSIFIED"
	}
	s.Detail = fmt.Sprintf("%d/%d answered through the stall window (%d browned/degraded), %d 5xx; rung %q, breakers %s after %d probes",
		res.OK, res.Requests, res.Browned+res.Degraded, res.Err5xx, rung, breakers, probes)
	return s, nil
}

// twinReplayRegression: the -adapt=off bit-identity contract.
func twinReplayRegression() (twinScenarioReport, error) {
	s := twinScenarioReport{
		Name: "replay-regression",
		Hypothesis: "a tape recorded with the control plane off replays with zero mismatches " +
			"and byte-identical summaries against two fresh daemons: the disarmed " +
			"control plane cannot perturb responses",
	}
	fmt.Printf("[replay-regression] hypothesis: %s\n", s.Hypothesis)

	sc := twin.Scenario{
		Name:        "replay",
		Seed:        505,
		Phases:      []twin.Phase{{Name: "serial", DurMS: 200, RatePerS: 120}},
		Workloads:   twinLight,
		Caps:        []float64{48, 52, 56, 60},
		ZipfS:       1.0,
		RealizeFrac: 0.25,
	}

	base, _, cleanup := twinDaemon(twinCapacity())
	tape, err := twin.Record(base, sc)
	cleanup()
	if err != nil {
		return s, err
	}

	var summaries []string
	mismatches := 0
	for i := 0; i < 2; i++ {
		base, _, cleanup := twinDaemon(twinCapacity())
		rep, err := tape.Replay(base)
		cleanup()
		if err != nil {
			return s, err
		}
		mismatches += rep.Mismatches
		summaries = append(summaries, rep.Summary())
		fmt.Printf("  replay %d: %s\n", i+1, rep.Summary())
	}
	s.Replay = summaries
	if mismatches == 0 && summaries[0] == summaries[1] && len(tape.Entries) > 0 {
		s.Verdict = "CONFIRMED"
	} else {
		s.Verdict = "FALSIFIED"
	}
	s.Detail = fmt.Sprintf("%d entries, %d mismatches, summaries identical: %v",
		len(tape.Entries), mismatches, summaries[0] == summaries[1])
	return s, nil
}

func capRangeTwin(lo, hi, step float64) []float64 {
	var caps []float64
	for c := lo; c <= hi; c += step {
		caps = append(caps, c)
	}
	return caps
}
