package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/schedule"
	"powercap/internal/workloads"
)

// The "realization" exhibit quantifies the realization gap (DESIGN.md §9):
// how much of the LP's theoretical bound survives when the fractional
// solution is rounded (nearest / down) or replayed with mid-task switching,
// with every candidate validated on the simulator. It also measures the
// speedup a shared problem IR buys a power-cap sweep: the cap enters only
// through constraint right-hand sides, so the IR (events, activity sets,
// frontier columns) is built once and reused across every cap.

// realizationPoint is one (workload, cap, strategy) realization outcome.
type realizationPoint struct {
	Workload      string  `json:"workload"`
	CapPerW       float64 `json:"cap_per_socket_w"`
	LPBoundS      float64 `json:"lp_bound_s"`
	Strategy      string  `json:"strategy"`
	RealizedS     float64 `json:"realized_s"`
	BoundGapPct   float64 `json:"bound_gap_pct"`
	Repairs       int     `json:"repairs"`
	Switches      int     `json:"switches"`
	CapViolationW float64 `json:"cap_violation_w"`
}

// reuseRun is one workload's IR-reuse timing comparison. ReuseSpeedupX
// isolates IR construction reuse (cold solves either way); SweepSpeedupX is
// the full benefit the cap-independent IR enables — one build, then
// warm-started resolves where only the cap RHS changes.
type reuseRun struct {
	Workload      string  `json:"workload"`
	FreshWallS    float64 `json:"fresh_solver_per_cap_wall_s"`
	SharedWallS   float64 `json:"shared_ir_cold_wall_s"`
	WarmWallS     float64 `json:"shared_ir_warm_sweep_wall_s"`
	ReuseSpeedupX float64 `json:"ir_reuse_speedup_x"`
	SweepSpeedupX float64 `json:"ir_warm_sweep_speedup_x"`
}

// realizationReport is the BENCH_realization.json document.
type realizationReport struct {
	Ranks          int                `json:"ranks"`
	CapsPerW       []float64          `json:"caps_per_socket_w"`
	Points         []realizationPoint `json:"points"`
	Reuse          []reuseRun         `json:"ir_reuse"`
	MaxBoundGapPct float64            `json:"max_bound_gap_pct"`
	Generated      string             `json:"generated"`
}

func runRealization(cfg config) error {
	header("Realization gap", "LP bound vs realizable schedules (nearest / down / replay), plus IR-reuse sweep speedup")

	var perCaps []float64
	for per := 70.0; per >= 30; per -= 10 {
		perCaps = append(perCaps, per)
	}

	report := realizationReport{Ranks: cfg.ranks, CapsPerW: perCaps}
	for _, name := range []string{"SP", "CG", "FT"} {
		w, err := workloads.ByName(name, workloads.Params{
			Ranks: cfg.ranks, Iterations: 4, Seed: cfg.seed, WorkScale: cfg.scale,
		})
		if err != nil {
			return err
		}
		slices, err := dag.SliceAll(w.Graph)
		if err != nil {
			return err
		}
		si := 2
		if si >= len(slices) {
			si = len(slices) - 1
		}
		g := slices[si].Graph

		caps := make([]float64, len(perCaps))
		for i, per := range perCaps {
			caps[i] = per * float64(cfg.ranks)
		}

		fmt.Fprintf(os.Stderr, "  %s: measuring IR reuse...\n", name)
		// Fresh solver per cap: the problem IR (events, activity sets,
		// frontier columns) is rebuilt for every solve — the pre-refactor
		// sweep behaviour.
		start := time.Now()
		for _, c := range caps {
			s := core.NewSolver(machine.Default(), w.EffScale)
			if _, err := s.Solve(g, c); err != nil && !errors.Is(err, core.ErrInfeasible) {
				return err
			}
		}
		fresh := time.Since(start).Seconds()

		// One solver, cold solves: the IR is built once and reused; only
		// the cap RHS changes. Isolates IR reuse from warm starting.
		shared := core.NewSolver(machine.Default(), w.EffScale)
		start = time.Now()
		for _, c := range caps {
			if _, err := shared.Solve(g, c); err != nil && !errors.Is(err, core.ErrInfeasible) {
				return err
			}
		}
		sharedWall := time.Since(start).Seconds()

		// Warm-started sweep on the same solver: IR reuse plus basis reuse.
		start = time.Now()
		pts, err := shared.SolveSweep(g, caps)
		if err != nil {
			return err
		}
		warmWall := time.Since(start).Seconds()

		speedup, sweepSpeedup := 0.0, 0.0
		if sharedWall > 0 {
			speedup = fresh / sharedWall
		}
		if warmWall > 0 {
			sweepSpeedup = fresh / warmWall
		}
		report.Reuse = append(report.Reuse, reuseRun{
			Workload: name, FreshWallS: fresh, SharedWallS: sharedWall,
			WarmWallS: warmWall, ReuseSpeedupX: speedup, SweepSpeedupX: sweepSpeedup,
		})

		ir, err := shared.IR(g)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d ranks, iteration slice, %d tasks)\n", name, cfg.ranks, len(g.Tasks))
		fmt.Printf("%10s%12s%10s%12s%10s%9s%9s\n",
			"W/socket", "LP(s)", "strategy", "realized(s)", "gap(%)", "repairs", "switch")
		for i, pt := range pts {
			if pt.Err != nil {
				if errors.Is(pt.Err, core.ErrInfeasible) {
					fmt.Printf("%10.0f%12s\n", perCaps[i], "infeasible")
					continue
				}
				return pt.Err
			}
			for _, strat := range schedule.Strategies {
				r, err := schedule.Realize(ir, pt.Schedule, strat, schedule.DefaultOptions())
				if err != nil {
					fmt.Printf("%10.0f%12.3f%10s  %v\n", perCaps[i], pt.Schedule.MakespanS, strat, err)
					continue
				}
				fmt.Printf("%10.0f%12.3f%10s%12.3f%10.2f%9d%9d\n",
					perCaps[i], pt.Schedule.MakespanS, r.Strategy, r.MakespanS,
					r.BoundGapPct, r.Repairs, r.Switches)
				report.Points = append(report.Points, realizationPoint{
					Workload: name, CapPerW: perCaps[i], LPBoundS: pt.Schedule.MakespanS,
					Strategy: string(r.Strategy), RealizedS: r.MakespanS,
					BoundGapPct: r.BoundGapPct, Repairs: r.Repairs,
					Switches: r.Switches, CapViolationW: r.CapViolationW,
				})
				if r.BoundGapPct > report.MaxBoundGapPct {
					report.MaxBoundGapPct = r.BoundGapPct
				}
			}
		}
		fmt.Printf("IR reuse: fresh-per-cap %.2f s, shared-IR cold %.2f s (%.1fx), warm sweep %.2f s (%.1fx)\n\n",
			fresh, sharedWall, speedup, warmWall, sweepSpeedup)
	}

	fmt.Printf("max bound gap across all cap-clean realizations: %.2f%%\n", report.MaxBoundGapPct)

	if cfg.benchJSON != "" {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	return nil
}
