// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the exhibit index).
//
// Usage:
//
//	experiments [flags] <exhibit>...
//	experiments -ranks 32 all
//
// Exhibits: fig1 table1 fig2 fig3 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 table3 validate configsel overheads solver kernel service
// realization resilience observability scale market twin summary all.
//
// Absolute numbers depend on the simulated machine model; the shapes (who
// wins, by how much, where the crossovers fall) are the reproduction
// target. EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type config struct {
	ranks     int
	iters     int
	seed      int64
	scale     float64
	ilpFig    bool
	benchJSON string
}

func main() {
	cfg := config{}
	flag.IntVar(&cfg.ranks, "ranks", 16, "MPI ranks / sockets (paper: 32; default reduced for solve time)")
	flag.IntVar(&cfg.iters, "iters", 12, "application iterations per run (first 3 discarded)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload generation seed")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "task work scale (1.0 ≈ paper-like second-long iterations)")
	flag.StringVar(&cfg.benchJSON, "benchjson", "", "write the solver/service/realization/resilience exhibit's measurements to this JSON file (e.g. BENCH_solver.json, BENCH_resilience.json)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	exhibits := map[string]func(config) error{
		"fig1":          runFig1,
		"table1":        runTable1,
		"fig2":          runFig2,
		"fig3":          runFig3,
		"fig8":          runFig8,
		"fig9":          runFig9,
		"fig10":         runFig10,
		"fig11":         func(c config) error { return runBenchFigure(c, "CoMD", "Figure 11") },
		"fig13":         func(c config) error { return runBenchFigure(c, "BT", "Figure 13") },
		"fig14":         func(c config) error { return runBenchFigure(c, "SP", "Figure 14") },
		"fig15":         func(c config) error { return runBenchFigure(c, "LULESH", "Figure 15") },
		"fig12":         runFig12,
		"table3":        runTable3,
		"overheads":     runOverheads,
		"summary":       runSummary,
		"validate":      runValidate,
		"configsel":     runConfigSel,
		"solver":        runSolver,
		"service":       runService,
		"realization":   runRealization,
		"resilience":    runResilience,
		"observability": runObservability,
		"scale":         runScale,
		"market":        runMarket,
		"kernel":        runKernel,
		"twin":          runTwin,
	}
	order := []string{"fig1", "table1", "fig2", "fig3", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "table3", "validate", "configsel", "overheads", "solver", "kernel", "service", "realization", "resilience", "observability", "scale", "market", "twin", "summary"}

	var todo []string
	for _, a := range args {
		a = strings.ToLower(a)
		if a == "all" {
			todo = append(todo, order...)
			continue
		}
		if _, ok := exhibits[a]; !ok {
			fmt.Fprintf(os.Stderr, "unknown exhibit %q; known: %s all\n", a, strings.Join(order, " "))
			os.Exit(2)
		}
		todo = append(todo, a)
	}

	for _, name := range todo {
		if err := exhibits[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// header prints a boxed exhibit title.
func header(title, subtitle string) {
	fmt.Printf("=== %s ===\n", title)
	if subtitle != "" {
		fmt.Printf("%s\n", subtitle)
	}
}
