package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"powercap/internal/core"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// The "scale" exhibit measures the windowed large-trace path (DESIGN.md
// §12) on synthetic Zipf traces. Three regimes:
//
//   - a gap ladder at sizes where the monolithic sparse LP still solves,
//     reporting the signed windowed-vs-monolithic gap (two-sided once
//     coarsening removes interior rows; acceptance is |gap| <= 2%);
//   - sizes where the monolithic LP stops being an option — on these
//     long-chain programs the sparse backend suffers numerical breakdown
//     (singular basis at refactorization) well before memory is a concern,
//     and the dense backend is orders of magnitude too slow — while the
//     windowed path, whose per-window LPs stay small and well-conditioned,
//     keeps solving;
//   - a speculative-worker sweep showing the phase-A thread scaling.
//
// With -benchjson the measurements are written as BENCH_scale.json.

// scaleSizes parameterizes the exhibit so the smoke test can shrink it.
type scaleSizes struct {
	ranks        int
	ladder       []int // event counts to measure (mono attempted at each)
	large        int   // headline trace size
	threadEvents int   // trace size for the worker sweep
	threads      []int // speculative worker counts
	perSocketW   float64
	coarsenEps   float64
	monoBudgetX  float64 // monolithic wall budget, × windowed wall
	minBudgetS   float64 // ...but never below this many seconds
}

func defaultScaleSizes() scaleSizes {
	return scaleSizes{
		ranks:        4,
		ladder:       []int{200, 300, 400, 1000},
		large:        100000,
		threadEvents: 20000,
		threads:      []int{1, 2, 4, 8},
		perSocketW:   50,
		coarsenEps:   2e-3,
		monoBudgetX:  10,
		minBudgetS:   30,
	}
}

// scaleWindows picks the window count so cores hold a few hundred events —
// small enough that every window LP stays cheap and well-conditioned,
// large enough that the overlap (a quarter core) amortizes.
func scaleWindows(vertices int) int {
	w := vertices / 600
	if w < 2 {
		w = 2
	}
	return w
}

// Monolithic attempt outcomes.
const (
	monoOK        = "ok"
	monoBreakdown = "numerical-breakdown"
	monoBudget    = "budget-exhausted"
)

// scalePoint is one trace size's measurement.
type scalePoint struct {
	Events            int     `json:"events"`
	Vertices          int     `json:"vertices"`
	Tasks             int     `json:"tasks"`
	Windows           int     `json:"windows"`
	CoarsenEps        float64 `json:"coarsen_eps"`
	MergedTasks       int     `json:"merged_tasks"`
	WindowedWallS     float64 `json:"windowed_wall_s"`
	WindowedMakespanS float64 `json:"windowed_makespan_s"`
	WarmStartRate     float64 `json:"warm_start_rate"`
	SpeculativeSolves int     `json:"speculative_solves"`
	CommitSolves      int     `json:"commit_solves"`
	Escalations       int     `json:"escalations"`
	NumericalRescues  int     `json:"numerical_rescues"`
	SeamViolationW    float64 `json:"seam_violation_w"`
	MonoOutcome       string  `json:"mono_outcome"`
	MonoWallS         float64 `json:"mono_wall_s"`
	MonoBudgetS       float64 `json:"mono_budget_s"`
	MonoMakespanS     float64 `json:"mono_makespan_s,omitempty"`
	GapPct            float64 `json:"gap_pct"` // signed, only when MonoOutcome == ok
}

// scaleThreadPoint is one speculative-worker setting.
type scaleThreadPoint struct {
	Parallel int     `json:"parallel"`
	WallS    float64 `json:"wall_s"`
	SpeedupX float64 `json:"speedup_x"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	Ranks         int                `json:"ranks"`
	CapPerSocketW float64            `json:"cap_per_socket_w"`
	CoarsenEps    float64            `json:"coarsen_eps"`
	Points        []scalePoint       `json:"points"`
	ThreadEvents  int                `json:"thread_events"`
	Threads       []scaleThreadPoint `json:"threads"`
	WorstGapPct   float64            `json:"worst_abs_gap_pct"`
	Generated     string             `json:"generated"`
}

func runScale(cfg config) error {
	return runScaleSized(cfg, defaultScaleSizes())
}

func runScaleSized(cfg config, sz scaleSizes) error {
	header("Windowed scaling", "synthetic Zipf traces: windowed decomposition vs the monolithic LP (DESIGN.md §12)")
	capW := sz.perSocketW * float64(sz.ranks)
	report := scaleReport{Ranks: sz.ranks, CapPerSocketW: sz.perSocketW, CoarsenEps: sz.coarsenEps}

	synth := func(events int) *workloads.Workload {
		return workloads.Synthetic(workloads.SynthParams{
			Ranks: sz.ranks, Events: events, Seed: cfg.seed, WorkScale: cfg.scale,
		})
	}

	solveOne := func(events int) (scalePoint, error) {
		w := synth(events)
		g := w.Graph
		s := core.NewSolver(machine.Default(), w.EffScale)
		pt := scalePoint{
			Events:     events,
			Vertices:   len(g.Vertices),
			Tasks:      len(g.Tasks),
			CoarsenEps: sz.coarsenEps,
		}

		fmt.Fprintf(os.Stderr, "  %d events: windowed solve (%d windows)...\n",
			events, scaleWindows(len(g.Vertices)))
		t0 := time.Now()
		ws, err := s.SolveWindowed(g, capW, core.WindowedOptions{
			Windows: scaleWindows(len(g.Vertices)), OverlapEvents: -1, CoarsenEps: sz.coarsenEps,
		})
		if err != nil {
			return pt, fmt.Errorf("windowed solve at %d events: %w", events, err)
		}
		pt.WindowedWallS = time.Since(t0).Seconds()
		pt.Windows = ws.Windows
		pt.WindowedMakespanS = ws.MakespanS
		pt.MergedTasks = ws.MergedTasks
		pt.WarmStartRate = ws.WarmStartRate()
		pt.SpeculativeSolves = ws.SpeculativeSolves
		pt.CommitSolves = ws.CommitSolves
		pt.Escalations = ws.Escalations
		pt.NumericalRescues = ws.NumericalFallbacks()
		pt.SeamViolationW = ws.SeamViolationW

		// The monolithic LP gets a generous wall budget relative to the
		// windowed wall; past it (or past its numerical limits) the point
		// is made — the decomposition is the only practical path.
		budget := time.Duration(sz.monoBudgetX * pt.WindowedWallS * float64(time.Second))
		if min := time.Duration(sz.minBudgetS * float64(time.Second)); budget < min {
			budget = min
		}
		pt.MonoBudgetS = budget.Seconds()
		fmt.Fprintf(os.Stderr, "  %d events: monolithic solve (budget %.0fs)...\n", events, budget.Seconds())
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		t1 := time.Now()
		mono, merr := s.SolveCtx(ctx, g, capW)
		cancel()
		pt.MonoWallS = time.Since(t1).Seconds()
		var numErr *lp.NumericalError
		switch {
		case merr == nil:
			pt.MonoOutcome = monoOK
			pt.MonoMakespanS = mono.MakespanS
			pt.GapPct = (ws.MakespanS/mono.MakespanS - 1) * 100
		case errors.Is(merr, context.DeadlineExceeded):
			pt.MonoOutcome = monoBudget
		case errors.As(merr, &numErr):
			pt.MonoOutcome = monoBreakdown
		default:
			return pt, fmt.Errorf("monolithic solve at %d events: %w", events, merr)
		}
		return pt, nil
	}

	for _, events := range append(append([]int{}, sz.ladder...), sz.large) {
		pt, err := solveOne(events)
		if err != nil {
			return err
		}
		report.Points = append(report.Points, pt)
	}

	fmt.Printf("%9s%10s%9s%9s%12s%14s%22s%9s\n",
		"events", "vertices", "windows", "merged", "win wall(s)", "mono wall(s)", "monolithic", "warm(%)")
	for _, pt := range report.Points {
		gap := pt.MonoOutcome
		if pt.MonoOutcome == monoOK {
			gap = fmt.Sprintf("gap %+.3f%%", pt.GapPct)
		}
		fmt.Printf("%9d%10d%9d%9d%12.2f%14.2f%22s%9.0f\n",
			pt.Events, pt.Vertices, pt.Windows, pt.MergedTasks, pt.WindowedWallS,
			pt.MonoWallS, gap, pt.WarmStartRate*100)
		if g := abs(pt.GapPct); pt.MonoOutcome == monoOK && g > report.WorstGapPct {
			report.WorstGapPct = g
		}
	}
	fmt.Printf("\nworst |gap| where the monolithic LP ran: %.3f%% (acceptance: <= 2%%)\n", report.WorstGapPct)
	large := report.Points[len(report.Points)-1]
	switch large.MonoOutcome {
	case monoBudget:
		fmt.Printf("at %d events the monolithic LP did not finish within %.0fx the windowed wall (%.0fs); the windowed path took %.1fs\n",
			large.Events, sz.monoBudgetX, large.MonoBudgetS, large.WindowedWallS)
	case monoBreakdown:
		fmt.Printf("at %d events the monolithic sparse LP broke down numerically after %.1fs; the windowed path took %.1fs\n",
			large.Events, large.MonoWallS, large.WindowedWallS)
	default:
		fmt.Printf("at %d events the monolithic LP finished in %.1fs vs windowed %.1fs (%.1fx)\n",
			large.Events, large.MonoWallS, large.WindowedWallS, large.MonoWallS/large.WindowedWallS)
	}

	// Thread scaling: same trace, speculative worker pool clamped. A
	// warm-up solve populates the solver's IR and window-plan caches so the
	// sweep isolates the solve phases (phase A is the parallel part; phase
	// B commits are inherently serial, so Amdahl caps the speedup).
	w := synth(sz.threadEvents)
	s := core.NewSolver(machine.Default(), w.EffScale)
	wopts := core.WindowedOptions{
		Windows: scaleWindows(len(w.Graph.Vertices)), OverlapEvents: -1, CoarsenEps: sz.coarsenEps,
	}
	fmt.Fprintf(os.Stderr, "  thread sweep warm-up (%d events)...\n", sz.threadEvents)
	if _, err := s.SolveWindowed(w.Graph, capW, wopts); err != nil {
		return fmt.Errorf("thread sweep warm-up: %w", err)
	}
	report.ThreadEvents = sz.threadEvents
	fmt.Printf("\n%10s%12s%10s      (%d events, plan cached)\n", "workers", "wall(s)", "speedup", sz.threadEvents)
	var base float64
	for _, p := range sz.threads {
		fmt.Fprintf(os.Stderr, "  thread sweep: %d workers...\n", p)
		o := wopts
		o.Parallel = p
		t0 := time.Now()
		if _, err := s.SolveWindowed(w.Graph, capW, o); err != nil {
			return fmt.Errorf("thread sweep at %d workers: %w", p, err)
		}
		wall := time.Since(t0).Seconds()
		if base == 0 {
			base = wall
		}
		tp := scaleThreadPoint{Parallel: p, WallS: wall, SpeedupX: base / wall}
		report.Threads = append(report.Threads, tp)
		fmt.Printf("%10d%12.2f%9.2fx\n", tp.Parallel, tp.WallS, tp.SpeedupX)
	}

	if cfg.benchJSON != "" {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.benchJSON)
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
