package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"powercap"
	"powercap/internal/faultinject"
	"powercap/internal/service"
)

// The "resilience" exhibit measures the fallback ladder of DESIGN.md §10
// under deterministic fault injection: one fresh pcschedd instance per fault
// class, a fixed sweep of solve requests against it, and a report of how
// often the ladder descended, how far, how many retries it spent, and how
// much makespan the degraded rungs gave up relative to the clean LP bound.
// The faults-off scenario doubles as the regression guard: its fallback rate
// must be exactly zero. With -benchjson the measurements are written as
// BENCH_resilience.json.

// resilienceScenario is one fault class's aggregate over the request sweep.
type resilienceScenario struct {
	Class         string  `json:"class"`
	Rate          float64 `json:"rate"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Contained500s int     `json:"contained_500s"`
	Timeouts      int     `json:"timeouts_504"`
	Degraded      int     `json:"degraded"`
	FallbackPct   float64 `json:"fallback_pct"`
	Dense         uint64  `json:"fallback_dense"`
	Heuristic     uint64  `json:"fallback_heuristic"`
	Static        uint64  `json:"fallback_static"`
	Retries       uint64  `json:"solve_retries"`
	Panics        uint64  `json:"panics"`
	CacheBypasses uint64  `json:"cache_bypasses"`
	MeanGapPct    float64 `json:"mean_degraded_gap_pct"`
	MaxGapPct     float64 `json:"max_degraded_gap_pct"`
}

// resilienceReport is the BENCH_resilience.json document.
type resilienceReport struct {
	Workload  string               `json:"workload"`
	Ranks     int                  `json:"ranks"`
	Iters     int                  `json:"iters"`
	CapsPerW  []float64            `json:"caps_per_socket_w"`
	Scenarios []resilienceScenario `json:"scenarios"`
	Generated string               `json:"generated"`
}

func runResilience(cfg config) error {
	header("Resilience", "fallback ladder under injected faults: descent rate, retries, degraded-vs-LP gap per fault class")

	// Bounded problem size, like the service exhibit: the subject here is
	// the failure path, not solve throughput.
	ranks := cfg.ranks
	if ranks > 8 {
		ranks = 8
	}
	const iters = 4

	var caps []float64
	for i := 0; i < 16; i++ {
		caps = append(caps, 70-1.5*float64(i)) // 70 → 47.5 W/socket, all feasible
	}

	type scenario struct {
		name      string
		class     faultinject.Class
		rate      float64
		timeoutMS float64
		slowDelay time.Duration
	}
	scenarios := []scenario{
		// Faults off first: it both records the clean LP baseline the gap
		// columns compare against and asserts a zero fallback rate.
		{name: "none"},
		{name: "lp-nan", class: faultinject.LPNaN, rate: 0.3},
		{name: "lp-stall", class: faultinject.LPStall, rate: 1.0},
		{name: "cache-error", class: faultinject.CacheError, rate: 1.0},
		{name: "worker-panic", class: faultinject.WorkerPanic, rate: 0.2},
		// SlowSolve only bites when the request carries a deadline: a delay
		// larger than the sparse and dense rung slices forces a
		// deterministic descent to the (LP-free) heuristic rung.
		{name: "slow-solve", class: faultinject.SlowSolve, rate: 1.0,
			timeoutMS: 200, slowDelay: 150 * time.Millisecond},
	}

	report := resilienceReport{
		Workload: "CoMD", Ranks: ranks, Iters: iters, CapsPerW: caps,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	baseline := make(map[float64]float64) // cap → clean LP makespan

	fmt.Printf("%14s%7s%6s%6s%7s%8s%9s%8s%8s%16s\n",
		"class", "rate", "req", "ok", "degr", "fb(%)", "retries", "panics", "bypass", "gap avg/max(%)")
	for si, sc := range scenarios {
		svc := service.New(service.Config{
			Workers:   runtime.GOMAXPROCS(0),
			CacheSize: 1024,
			Resilience: powercap.ResilienceConfig{
				BackoffBase:     100 * time.Microsecond,
				BreakerCooldown: 50 * time.Millisecond,
			},
		})
		ts := httptest.NewServer(svc)

		faultinject.Disable()
		if sc.rate > 0 {
			faultinject.Configure(uint64(1000+si), map[faultinject.Class]float64{sc.class: sc.rate})
			if sc.slowDelay > 0 {
				faultinject.SetSlowDelay(sc.slowDelay)
			}
		}

		row := resilienceScenario{Class: sc.name, Rate: sc.rate}
		var gapSum float64
		for _, capW := range caps {
			body, err := json.Marshal(service.SolveRequest{
				Workload: &service.WorkloadSpec{
					Name: "CoMD", Ranks: ranks, Iters: iters,
					Seed: cfg.seed, Scale: cfg.scale,
				},
				CapPerSocketW: capW,
				TimeoutMS:     sc.timeoutMS,
			})
			if err != nil {
				ts.Close()
				return err
			}
			row.Requests++
			resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				ts.Close()
				return err
			}
			respBody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				ts.Close()
				return err
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var sr service.SolveResponse
				if err := json.Unmarshal(respBody, &sr); err != nil {
					ts.Close()
					return fmt.Errorf("scenario %s cap %g: bad response: %v", sc.name, capW, err)
				}
				row.OK++
				if sc.name == "none" {
					baseline[capW] = sr.MakespanS
				}
				if sr.Degraded {
					row.Degraded++
					if base := baseline[capW]; base > 0 {
						gap := (sr.MakespanS - base) / base * 100
						gapSum += gap
						if gap > row.MaxGapPct {
							row.MaxGapPct = gap
						}
					}
				}
			case http.StatusInternalServerError:
				// A double worker panic: contained (500, counted, daemon
				// alive), but the request is lost.
				row.Contained500s++
			case http.StatusGatewayTimeout:
				// Every rung's deadline slice expired before even the
				// heuristic could answer — possible on a heavily loaded
				// machine in the slow-solve scenario.
				row.Timeouts++
			default:
				ts.Close()
				return fmt.Errorf("scenario %s cap %g: status %d: %s", sc.name, capW, resp.StatusCode, respBody)
			}
		}
		faultinject.Disable()

		m := svc.Metrics()
		row.Dense = m.FallbackDense.Load()
		row.Heuristic = m.FallbackHeuristic.Load()
		row.Static = m.FallbackStatic.Load()
		row.Retries = m.SolveRetries.Load()
		row.Panics = m.Panics.Load()
		row.CacheBypasses = m.CacheErrors.Load()
		row.FallbackPct = 100 * float64(row.Degraded) / float64(row.Requests)
		if row.Degraded > 0 {
			row.MeanGapPct = gapSum / float64(row.Degraded)
		}
		ts.Close()

		if sc.name == "none" && (row.Degraded != 0 || row.OK != row.Requests) {
			return fmt.Errorf("faults off: %d/%d ok with %d degraded, want a clean sweep",
				row.OK, row.Requests, row.Degraded)
		}

		report.Scenarios = append(report.Scenarios, row)
		fmt.Printf("%14s%7.2f%6d%6d%7d%8.1f%9d%8d%8d%11.2f/%.2f\n",
			row.Class, row.Rate, row.Requests, row.OK, row.Degraded, row.FallbackPct,
			row.Retries, row.Panics, row.CacheBypasses, row.MeanGapPct, row.MaxGapPct)
	}

	fmt.Printf("\nfaults off: fallback rate 0.0%%; every degraded result above is simulator-validated cap-clean\n")

	if cfg.benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchJSON)
	}
	return nil
}
