package powercap_test

import (
	"errors"
	"math"
	"testing"

	"powercap"
)

func smallWorkload(t *testing.T, name string) *powercap.Workload {
	t.Helper()
	w, err := powercap.WorkloadByName(name, powercap.WorkloadParams{
		Ranks: 4, Iterations: 6, Seed: 9, WorkScale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicQuickstartFlow(t *testing.T) {
	tb := powercap.NewTrace(2)
	sh := powercap.DefaultShape()
	tb.Compute(0, 1.0, sh, "w")
	tb.Compute(1, 2.0, sh, "w")
	tb.Collective("sync")
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	bound, err := sys.UpperBoundWhole(g, 90)
	if err != nil {
		t.Fatal(err)
	}
	if bound.MakespanS <= 0 {
		t.Fatal("empty bound")
	}
	rep, err := sys.Replay(g, bound, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapViolationW > 1e-6 {
		t.Fatalf("replay violates cap by %v W", rep.CapViolationW)
	}
}

// TestUpperBoundProperty is the reproduction's headline invariant: for
// every workload and power cap, the LP bound is at least as fast as both
// policies over the measured iterations.
func TestUpperBoundProperty(t *testing.T) {
	for _, name := range powercap.WorkloadNames() {
		w := smallWorkload(t, name)
		sys := powercap.SystemFor(w, nil)
		for _, perSocket := range []float64{35, 50, 70} {
			cmp, err := sys.Compare(w, perSocket)
			if err != nil {
				t.Fatalf("%s @ %v W: %v", name, perSocket, err)
			}
			if cmp.LPInfeasible {
				continue
			}
			if cmp.LPBoundS > cmp.StaticS*(1+1e-9) {
				t.Fatalf("%s @ %v W: LP bound %v slower than Static %v", name, perSocket, cmp.LPBoundS, cmp.StaticS)
			}
			if cmp.LPBoundS > cmp.ConductorS*(1+1e-9) {
				t.Fatalf("%s @ %v W: LP bound %v slower than Conductor %v", name, perSocket, cmp.LPBoundS, cmp.ConductorS)
			}
		}
	}
}

func TestCompareFieldsConsistent(t *testing.T) {
	w := smallWorkload(t, "BT")
	sys := powercap.SystemFor(w, nil)
	cmp, err := sys.Compare(w, 40)
	if err != nil {
		t.Fatal(err)
	}
	wantLP := (cmp.StaticS/cmp.LPBoundS - 1) * 100
	if math.Abs(cmp.LPvsStaticPct-wantLP) > 1e-9 {
		t.Fatalf("LPvsStaticPct %v != derived %v", cmp.LPvsStaticPct, wantLP)
	}
	if cmp.JobCapW != 40*float64(w.Graph.NumRanks) {
		t.Fatalf("JobCapW = %v", cmp.JobCapW)
	}
}

func TestFlowILPThroughFacade(t *testing.T) {
	tb := powercap.NewTrace(2)
	sh := powercap.DefaultShape()
	tb.Compute(0, 0.5, sh, "a")
	tb.Send(0, 1, 4096)
	tb.Compute(0, 0.3, sh, "b")
	tb.Compute(1, 0.6, sh, "c")
	tb.Recv(1, 0)
	tb.Compute(1, 0.2, sh, "d")
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	flow, err := sys.FlowILP(g, 80)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := sys.UpperBoundWhole(g, 80)
	if err != nil {
		t.Fatal(err)
	}
	if flow.MakespanS > fixed.MakespanS*(1+1e-6) {
		t.Fatalf("flow %v worse than fixed-order %v", flow.MakespanS, fixed.MakespanS)
	}
}

func TestErrInfeasibleSurfaced(t *testing.T) {
	w := smallWorkload(t, "CoMD")
	sys := powercap.SystemFor(w, nil)
	_, err := sys.UpperBound(w.Graph, 10) // below the per-rank idle floor
	if !errors.Is(err, powercap.ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestFlowTooLargeSurfaced(t *testing.T) {
	w := smallWorkload(t, "SP")
	sys := powercap.SystemFor(w, nil)
	_, err := sys.FlowILP(w.Graph, 1000)
	if !errors.Is(err, powercap.ErrFlowTooLarge) {
		t.Fatalf("expected ErrFlowTooLarge, got %v", err)
	}
}

func TestNewWorkloadPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	powercap.NewWorkload("nonsense", powercap.WorkloadParams{})
}

func TestConductorThroughFacade(t *testing.T) {
	w := smallWorkload(t, "LULESH")
	sys := powercap.SystemFor(w, nil)
	res, err := sys.RunConductor(w.Graph, 45*4)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPowerW > 45*4+1e-6 {
		t.Fatalf("Conductor exceeded the job cap: %v", res.PeakPowerW)
	}
	if res.ExploreSkipped != sys.ExploreIters {
		t.Fatalf("ExploreSkipped = %d, want %d", res.ExploreSkipped, sys.ExploreIters)
	}
}

func TestStaticThroughFacade(t *testing.T) {
	w := smallWorkload(t, "SP")
	sys := powercap.SystemFor(w, nil)
	res, err := sys.RunStatic(w.Graph, 50)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MaxCapViolation(50 * 4); v > 1e-9 {
		t.Fatalf("Static exceeded the job cap by %v", v)
	}
}
