package powercap_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"powercap"
	"powercap/internal/lp"
)

func sweepCaps(w *powercap.Workload) []float64 {
	// Per-socket 70 → 10 W, stepping down into the infeasible regime.
	caps := make([]float64, 0, 13)
	for per := 70.0; per >= 10; per -= 5 {
		caps = append(caps, per*float64(w.Graph.NumRanks))
	}
	return caps
}

func TestSolveSweepMatchesUpperBoundWhole(t *testing.T) {
	w := smallWorkload(t, "SP")
	sys := powercap.SystemFor(w, nil)
	caps := sweepCaps(w)

	pts, err := sys.SolveSweep(w.Graph, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		whole, werr := sys.UpperBoundWhole(w.Graph, caps[i])
		if werr != nil {
			if !errors.Is(werr, powercap.ErrInfeasible) {
				t.Fatal(werr)
			}
			if !errors.Is(pt.Err, powercap.ErrInfeasible) {
				t.Fatalf("cap %v: sweep err %v, want infeasible", caps[i], pt.Err)
			}
			continue
		}
		if pt.Err != nil {
			t.Fatalf("cap %v: %v", caps[i], pt.Err)
		}
		if math.Abs(pt.Schedule.MakespanS-whole.MakespanS) > 1e-9*(1+whole.MakespanS) {
			t.Fatalf("cap %v: sweep %v, individual %v", caps[i], pt.Schedule.MakespanS, whole.MakespanS)
		}
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	w := smallWorkload(t, "LULESH")
	sys := powercap.SystemFor(w, nil)
	caps := sweepCaps(w)

	serial, err := sys.SolveSweep(w.Graph, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 32} {
		par, err := sys.SweepParallel(w.Graph, caps, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].CapW != serial[i].CapW {
				t.Fatalf("workers=%d point %d: cap %v, want %v", workers, i, par[i].CapW, serial[i].CapW)
			}
			if (par[i].Err == nil) != (serial[i].Err == nil) {
				t.Fatalf("workers=%d cap %v: err %v vs serial %v", workers, par[i].CapW, par[i].Err, serial[i].Err)
			}
			if serial[i].Err != nil {
				if !errors.Is(par[i].Err, powercap.ErrInfeasible) {
					t.Fatalf("workers=%d cap %v: err %v, want infeasible", workers, par[i].CapW, par[i].Err)
				}
				continue
			}
			a, b := par[i].Schedule.MakespanS, serial[i].Schedule.MakespanS
			if math.Abs(a-b) > 1e-9*(1+b) {
				t.Fatalf("workers=%d cap %v: makespan %v, serial %v", workers, par[i].CapW, a, b)
			}
		}
	}
}

func TestSweepJobsParallel(t *testing.T) {
	sys := powercap.NewSystem(nil)
	var jobs []powercap.SweepJob
	for _, name := range []string{"SP", "LULESH", "CoMD"} {
		w := smallWorkload(t, name)
		jobs = append(jobs, powercap.SweepJob{Name: name, Graph: w.Graph, CapsW: sweepCaps(w)})
	}
	jobs = append(jobs, powercap.SweepJob{Name: "broken"}) // nil graph

	results := sys.SweepJobsParallel(jobs, 3)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Name != jobs[i].Name {
			t.Fatalf("result %d: name %q, want %q (order not preserved)", i, res.Name, jobs[i].Name)
		}
		if jobs[i].Graph == nil {
			if res.Err == nil {
				t.Fatalf("job %q: nil graph accepted", res.Name)
			}
			continue
		}
		if res.Err != nil {
			t.Fatalf("job %q: %v", res.Name, res.Err)
		}
		feasible := 0
		for _, pt := range res.Points {
			if pt.Err == nil {
				feasible++
				if pt.Schedule.MakespanS <= 0 {
					t.Fatalf("job %q cap %v: empty schedule", res.Name, pt.CapW)
				}
			}
		}
		if feasible == 0 {
			t.Fatalf("job %q: every cap infeasible", res.Name)
		}
	}
}

// TestInfeasibilityChains is the satellite acceptance: one sentinel chain
// from the public facade down to the LP layer, matchable at every level.
func TestInfeasibilityChains(t *testing.T) {
	w := smallWorkload(t, "CoMD")
	sys := powercap.SystemFor(w, nil)
	tiny := 2.0 * float64(w.Graph.NumRanks) // 2 W/socket: below idle floor

	for name, solve := range map[string]func() error{
		"UpperBound":      func() error { _, err := sys.UpperBound(w.Graph, tiny); return err },
		"UpperBoundWhole": func() error { _, err := sys.UpperBoundWhole(w.Graph, tiny); return err },
		"UpperBoundDiscrete": func() error {
			_, err := sys.UpperBoundDiscrete(w.Graph, tiny)
			if errors.Is(err, powercap.ErrDiscreteTooLarge) {
				return nil // size guard fired first; nothing to assert
			}
			return err
		},
	} {
		err := solve()
		if err == nil {
			continue // discrete may be skipped by the size guard
		}
		if !errors.Is(err, powercap.ErrInfeasible) {
			t.Fatalf("%s: error %v does not match powercap.ErrInfeasible", name, err)
		}
		if !errors.Is(err, lp.ErrInfeasible) {
			t.Fatalf("%s: error %v does not chain to lp.ErrInfeasible", name, err)
		}
	}

	// The flow ILP has its own sentinel; it must chain to lp too.
	if !errors.Is(powercap.ErrFlowInfeasible, lp.ErrInfeasible) {
		t.Fatal("ErrFlowInfeasible does not chain to lp.ErrInfeasible")
	}
	// And sweep points carry the same chain.
	pts, err := sys.SolveSweep(w.Graph, []float64{tiny})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(pts[0].Err, powercap.ErrInfeasible) || !errors.Is(pts[0].Err, lp.ErrInfeasible) {
		t.Fatalf("sweep point error %v does not chain through both sentinels", pts[0].Err)
	}
}

// TestParseSweepSpec is the table-driven contract for "hi:lo:step" sweep
// specs: valid specs expand to descending, inclusive cap lists; malformed
// ones are rejected with errors naming the offending field.
func TestParseSweepSpec(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		cases := []struct {
			spec string
			want []float64
		}{
			{"70:30:5", []float64{70, 65, 60, 55, 50, 45, 40, 35, 30}},
			{"60:60:5", []float64{60}},
			{"50:49:0.5", []float64{50, 49.5, 49}},
			{" 60 : 50 : 5 ", []float64{60, 55, 50}},
			{"52:50:1.5", []float64{52, 50.5}}, // lo not hit exactly: stop above it
		}
		for _, c := range cases {
			got, err := powercap.ParseSweepSpec(c.spec)
			if err != nil {
				t.Errorf("spec %q: unexpected error %v", c.spec, err)
				continue
			}
			if len(got) != len(c.want) {
				t.Errorf("spec %q: got %v, want %v", c.spec, got, c.want)
				continue
			}
			for i := range got {
				if math.Abs(got[i]-c.want[i]) > 1e-9 {
					t.Errorf("spec %q: cap[%d] = %v, want %v", c.spec, i, got[i], c.want[i])
				}
			}
		}
	})

	t.Run("rejected", func(t *testing.T) {
		cases := []struct {
			spec    string
			wantSub string
		}{
			{"", "want hi:lo:step"},
			{"70:30", "want hi:lo:step"},
			{"70:30:5:2", "want hi:lo:step"},
			{"70:30:0", "step must be positive"},
			{"70:30:-1", "step must be positive"},
			{"30:70:5", "must be ≥ lo"}, // no silent swapping
			{"abc:30:5", "hi field"},    // errors name the field
			{"70:x:5", "lo field"},
			{"70:30:y", "step field"},
			{"NaN:30:5", "hi field"},
			{"Inf:30:5", "must be finite"},
			{"70:-5:5", "lo must be positive"},
			{"0:0:5", "lo must be positive"},
			{"1e9:1:1e-3", "caps (max"}, // MaxSweepPoints guard
		}
		for _, c := range cases {
			caps, err := powercap.ParseSweepSpec(c.spec)
			if err == nil {
				t.Errorf("spec %q accepted (%d caps), want error", c.spec, len(caps))
				continue
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("spec %q: error %q does not contain %q", c.spec, err, c.wantSub)
			}
		}
	})
}

// MarginalCurve pins the shadow price's two structural properties: it is
// never positive (an extra watt cannot hurt the LP bound), and by convexity
// its magnitude decays monotonically as the cap loosens, reaching ≈ 0 once
// the job saturates.
func TestMarginalCurveSignAndDecay(t *testing.T) {
	w := powercap.NewWorkload("BT", powercap.WorkloadParams{Ranks: 4, Iterations: 3, Seed: 2, WorkScale: 0.3})
	// Descending caps, from a saturating 500 W/socket head down into the
	// infeasible regime.
	caps := append([]float64{500 * float64(w.Graph.NumRanks)}, sweepCaps(w)...)
	curve, err := powercap.SystemFor(w, nil).MarginalCurve(context.Background(), w.Graph, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(caps) {
		t.Fatalf("curve has %d points for %d caps", len(curve), len(caps))
	}
	feasible, infeasible := 0, 0
	prevMag := 0.0 // caps descend, so |marginal| must never shrink
	for i, pt := range curve {
		if pt.CapW != caps[i] {
			t.Fatalf("point %d: CapW %.1f, want %.1f", i, pt.CapW, caps[i])
		}
		if pt.Infeasible {
			infeasible++
			continue
		}
		feasible++
		if pt.MarginalSecPerW > 1e-12 {
			t.Errorf("cap %.0f W: positive shadow price %g (extra watts cannot hurt)", pt.CapW, pt.MarginalSecPerW)
		}
		if mag := -pt.MarginalSecPerW; mag < prevMag-1e-9 {
			t.Errorf("cap %.0f W: |marginal| %.6g shrank from %.6g as the cap tightened — decay toward zero must be monotone in the cap",
				pt.CapW, mag, prevMag)
		} else {
			prevMag = mag
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("sweep should cross the feasibility floor: %d feasible, %d infeasible", feasible, infeasible)
	}
	// At the saturating head cap, power stops mattering: ≈ zero price.
	if m := -curve[0].MarginalSecPerW; m > 1e-6 {
		t.Errorf("saturating cap %.0f W still prices power at %g s/W", curve[0].CapW, m)
	}
}
