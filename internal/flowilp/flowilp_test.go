package flowilp

import (
	"errors"
	"math"
	"testing"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
)

func shape() machine.Shape { return machine.DefaultShape() }

// exchange builds the paper's Fig. 8 instance: a two-process asynchronous
// message exchange.
func exchange() *dag.Graph {
	b := dag.NewBuilder(2)
	b.Compute(0, 0.8, shape(), "A1")
	b.Isend(0, 1, 1<<20)
	b.Compute(0, 0.6, shape(), "A2")
	b.Wait(0)
	b.Compute(0, 0.4, shape(), "A3")
	b.Compute(1, 1.0, shape(), "A4")
	b.Recv(1, 0)
	b.Compute(1, 0.5, shape(), "A5")
	return b.Finalize()
}

func TestSingleTaskMatchesLP(t *testing.T) {
	b := dag.NewBuilder(1)
	b.Compute(0, 1.0, shape(), "only")
	g := b.Finalize()
	m := machine.Default()
	fs := NewSolver(m, nil)
	ls := core.NewSolver(m, nil)
	for _, cap := range []float64{25, 35, 50, 80, 200} {
		fres, err := fs.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		lres, err := ls.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if math.Abs(fres.MakespanS-lres.MakespanS) > 1e-5*lres.MakespanS {
			t.Fatalf("cap %v: flow %v vs fixed %v", cap, fres.MakespanS, lres.MakespanS)
		}
	}
}

func TestUnconstrainedMatchesMaxConfig(t *testing.T) {
	g := exchange()
	m := machine.Default()
	fs := NewSolver(m, nil)
	res, err := fs.Solve(g, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Max-config evaluation.
	pts := sim.Points(g)
	for i, task := range g.Tasks {
		if task.Kind == dag.Compute {
			pts[i] = sim.TaskPoint{
				Duration: m.Duration(task.Work, task.Shape, m.MaxConfig()),
				PowerW:   m.Power(task.Shape, m.MaxConfig(), 1),
			}
		}
	}
	ref, err := sim.Evaluate(g, pts, sim.SlackIdle, m.IdlePower(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MakespanS-ref.Makespan) > 1e-5*ref.Makespan {
		t.Fatalf("unconstrained flow %v vs max-config %v", res.MakespanS, ref.Makespan)
	}
}

func TestFlowNeverWorseThanFixedOrder(t *testing.T) {
	// The flow ILP optimizes over event orders and prices slack at idle,
	// both relaxations of the fixed-order LP's assumptions, so its
	// makespan can never exceed the LP's (Fig. 8: "providing less than a
	// watt of additional power to the fixed-order formulation would allow
	// it to achieve an equivalent schedule").
	g := exchange()
	m := machine.Default()
	fs := NewSolver(m, nil)
	ls := core.NewSolver(m, nil)
	for _, cap := range []float64{40, 45, 50, 60, 80, 120} {
		fres, ferr := fs.Solve(g, cap)
		lres, lerr := ls.Solve(g, cap)
		if ferr != nil {
			if errors.Is(ferr, ErrInfeasible) && lerr != nil {
				continue // both infeasible: consistent
			}
			t.Fatalf("cap %v: flow error %v", cap, ferr)
		}
		if lerr != nil {
			continue // LP infeasible where flow is not: flow is a relaxation
		}
		if fres.MakespanS > lres.MakespanS*(1+1e-6) {
			t.Fatalf("cap %v: flow %v worse than fixed-order %v", cap, fres.MakespanS, lres.MakespanS)
		}
	}
}

func TestAgreementAtModerateCaps(t *testing.T) {
	// Paper Fig. 8: beyond the tightest caps the two formulations agree
	// within 1.9%.
	g := exchange()
	m := machine.Default()
	fs := NewSolver(m, nil)
	ls := core.NewSolver(m, nil)
	for _, cap := range []float64{70, 90, 110, 140} {
		fres, err := fs.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		lres, err := ls.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		gap := (lres.MakespanS - fres.MakespanS) / fres.MakespanS
		if gap > 0.05 {
			t.Fatalf("cap %v: fixed-order trails flow by %.1f%% (flow %v, fixed %v)", cap, gap*100, fres.MakespanS, lres.MakespanS)
		}
	}
}

func TestCapMonotonic(t *testing.T) {
	g := exchange()
	fs := NewSolver(machine.Default(), nil)
	prev := 0.0
	for _, cap := range []float64{200, 120, 80, 60, 50} {
		res, err := fs.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if res.MakespanS < prev-1e-9 {
			t.Fatalf("makespan decreased at tighter cap %v: %v < %v", cap, res.MakespanS, prev)
		}
		prev = res.MakespanS
	}
}

func TestInfeasibleTinyCap(t *testing.T) {
	g := exchange()
	fs := NewSolver(machine.Default(), nil)
	_, err := fs.Solve(g, 5)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestTooLargeRejected(t *testing.T) {
	b := dag.NewBuilder(4)
	for iter := 0; iter < 10; iter++ {
		for r := 0; r < 4; r++ {
			b.Compute(r, 0.1, shape(), "w")
		}
		b.Collective("sync")
	}
	g := b.Finalize()
	fs := NewSolver(machine.Default(), nil)
	_, err := fs.Solve(g, 100)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestSlackHoldTightensSchedule(t *testing.T) {
	// Pricing slack at the task's power (the LP's assumption) can only
	// consume more budget than idle slack, so SlackHold makespans are ≥
	// SlackObserved makespans.
	g := exchange()
	m := machine.Default()
	obs := NewSolver(m, nil)
	hold := NewSolver(m, nil)
	hold.Slack = SlackHold
	for _, cap := range []float64{55, 70, 90} {
		ro, err := obs.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		rh, err := hold.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v (hold): %v", cap, err)
		}
		if rh.MakespanS < ro.MakespanS-1e-9 {
			t.Fatalf("cap %v: slack-hold %v beat slack-observed %v", cap, rh.MakespanS, ro.MakespanS)
		}
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	g := exchange()
	fs := NewSolver(machine.Default(), nil)
	res, err := fs.Solve(g, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Binaries == 0 {
		t.Fatal("expected free sequencing binaries in the exchange instance")
	}
	for tid, task := range g.Tasks {
		if task.Kind == dag.Compute && task.Work > 0 {
			if res.TaskDuration[tid] <= 0 || res.TaskPower[tid] <= 0 {
				t.Fatalf("task %d has empty solution: %v / %v", tid, res.TaskDuration[tid], res.TaskPower[tid])
			}
		}
		if task.Kind == dag.Message && res.TaskDuration[tid] != task.FixedDur {
			t.Fatalf("message duration mangled: %v", res.TaskDuration[tid])
		}
	}
}
