// Package flowilp implements the paper's flow-based integer-linear
// formulation (Sec. 3.4 and the Appendix, Eqs. 14–29).
//
// In contrast to the fixed-vertex-order LP of internal/core, the flow
// formulation lets the solver determine the event order: binary sequencing
// variables x_ij state that task i finishes before task j starts, and a
// power-flow network routes the job's power budget PC forward in time from
// an artificial source edge (before MPI_Init) to an artificial sink edge
// (after MPI_Finalize). A task may hold p_i watts only while flow conserving
// that amount passes through it, so the instantaneous sum of running-task
// powers can never exceed PC.
//
// # Idle-floor reformulation
//
// The Appendix prices slack separately from computation, at the observed
// slack power, by inserting task/slack boundary vertices. We implement that
// semantics through an exact reformulation that keeps instances tractable:
// every rank always draws at least its idle power (running or slacking), so
// the constant Σ_r idle_r is subtracted from the budget and only the
// incremental power p'_i = p_i − idle_rank(i) of *running* compute tasks is
// routed through the flow network. Slack then carries zero incremental
// power and needs no items, boundary vertices, or sequencing variables of
// its own — the instance shrinks from O(2·tasks) items to O(tasks), which
// is what makes the paper's "fewer than 30 DAG edges" regime comfortably
// solvable by branch and bound.
//
// A SlackHold option reproduces the fixed-order LP's slack-holds-task-power
// accounting instead (for the DESIGN.md ablation): each task's incremental
// power is held over its whole source-to-destination window rather than
// just its execution.
//
// Equation (23) is implemented in the standard linear big-M form
// s_j − s_i ≥ d_i − M(1−x_ij), which reduces to the paper's written form
// for constant d_i and stays linear when d_i is a configuration-dependent
// variable. Equation (27)'s min(p_i,p_j)·x_ij upper bound is replaced by
// f_ij ≤ PC′·x_ij: with flow conservation (28–29) and f ≥ 0, the min-bound
// is implied.
package flowilp

import (
	"errors"
	"fmt"
	"sync"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/milp"
	"powercap/internal/problem"
)

// ErrInfeasible reports that no schedule fits under the power constraint.
// It wraps lp.ErrInfeasible, so errors.Is(err, lp.ErrInfeasible) also holds
// for every chain that matches this sentinel.
var ErrInfeasible = fmt.Errorf("flowilp: power constraint infeasible: %w", lp.ErrInfeasible)

// ErrTooLarge guards against instances the flow ILP cannot realistically
// solve (the paper's own limit).
var ErrTooLarge = errors.New("flowilp: instance exceeds the flow formulation's practical size limit")

// MaxEdges is the largest application DAG (task count) accepted, matching
// the paper's observation that flow instances beyond ~30 edges are
// intractable.
const MaxEdges = 30

// SlackPower selects how slack is priced.
type SlackPower int

const (
	// SlackObserved charges idle power during slack, as the paper's ILP
	// does ("assigns a specific power consumption to all slack based on
	// observed slack power on our test system").
	SlackObserved SlackPower = iota
	// SlackHold charges the preceding task's (configuration-dependent)
	// power during its slack, matching the fixed-order LP's assumption;
	// useful to isolate how much of the Fig. 8 gap is slack accounting.
	SlackHold
)

// Solver solves flow ILP instances against a machine model.
type Solver struct {
	Model *machine.Model
	// EffScale is the per-rank power-efficiency multiplier; nil = 1.0.
	EffScale []float64
	// Slack selects the slack pricing model.
	Slack SlackPower
	// MaxNodes bounds branch-and-bound effort (0 = solver default).
	MaxNodes int

	mu sync.Mutex
	fs *problem.FrontierSet
}

// NewSolver returns a flow-ILP solver with paper-default slack pricing.
func NewSolver(model *machine.Model, effScale []float64) *Solver {
	return &Solver{Model: model, EffScale: effScale, Slack: SlackObserved}
}

func (s *Solver) eff(rank int) float64 {
	if s.EffScale == nil || rank < 0 || rank >= len(s.EffScale) {
		return 1
	}
	return s.EffScale[rank]
}

// frontiers returns the lazily created shared frontier cache. The flow ILP
// draws its per-task configuration columns from the same internal/problem
// frontiers as the fixed-order backends, so every formulation prices the
// identical Pareto sets.
func (s *Solver) frontiers() *problem.FrontierSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fs == nil {
		s.fs = problem.NewFrontierSet(s.Model, s.EffScale)
	}
	return s.fs
}

// Result is a solved flow-ILP schedule.
type Result struct {
	// MakespanS is the optimal time of the MPI_Finalize vertex.
	MakespanS float64
	// TaskPower and TaskDuration are per original dag.TaskID. Powers are
	// absolute socket watts (idle floor added back).
	TaskPower    []float64
	TaskDuration []float64
	// VertexTimeS gives the solver-chosen event times.
	VertexTimeS []float64
	// Nodes is the number of branch-and-bound nodes explored, and
	// Binaries the number of free sequencing variables after presolve.
	Nodes    int
	Binaries int
}

// seqState is the presolved value of one ordered sequencing pair.
type seqState int8

const (
	seqFree seqState = iota
	seqZero
	seqOne
)

// cfgVars holds a task's configuration-fraction variables and coefficients.
type cfgVars struct {
	vars []lp.Var
	durs []float64
	pows []float64 // incremental (idle-subtracted) powers
	abs  []float64 // absolute powers, for extraction
}

// instance is the assembled MILP plus extraction handles.
type instance struct {
	prob     *milp.Problem
	vVar     []lp.Var
	finV     int
	cVars    map[dag.TaskID]*cfgVars
	binaries int
}

// Solve builds and solves the flow ILP for g under job power capW.
func (s *Solver) Solve(g *dag.Graph, capW float64) (*Result, error) {
	if len(g.Tasks) > MaxEdges {
		return nil, fmt.Errorf("%w: %d edges > %d", ErrTooLarge, len(g.Tasks), MaxEdges)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	inst, err := s.build(g, capW)
	if err != nil {
		return nil, err
	}
	sol, err := inst.prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case milp.Optimal:
	case milp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	default:
		return nil, fmt.Errorf("flowilp: solver returned %v", sol.Status)
	}

	res := &Result{
		MakespanS:    sol.Value(inst.vVar[inst.finV]),
		TaskPower:    make([]float64, len(g.Tasks)),
		TaskDuration: make([]float64, len(g.Tasks)),
		VertexTimeS:  make([]float64, len(g.Vertices)),
	}
	res.Nodes = sol.Nodes
	res.Binaries = inst.binaries
	for i := range g.Vertices {
		res.VertexTimeS[i] = sol.Value(inst.vVar[i])
	}
	for tid, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
			res.TaskDuration[tid] = t.FixedDur
		case t.Work <= 0:
			res.TaskPower[tid] = s.Model.IdlePower(s.eff(t.Rank))
		default:
			cv := inst.cVars[t.ID]
			d, p := 0.0, 0.0
			for k, v := range cv.vars {
				frac := sol.Value(v)
				d += frac * cv.durs[k]
				p += frac * cv.abs[k]
			}
			res.TaskDuration[tid] = d
			res.TaskPower[tid] = p
		}
	}
	return res, nil
}

func (s *Solver) build(g *dag.Graph, capW float64) (*instance, error) {
	nV := len(g.Vertices)
	finV, initV := -1, -1
	for i := range g.Vertices {
		switch g.Vertices[i].Kind {
		case dag.VFinalize:
			finV = i
		case dag.VInit:
			initV = i
		}
	}

	// Vertex reachability over the application DAG.
	reach := make([][]bool, nV)
	for i := range reach {
		reach[i] = make([]bool, nV)
	}
	for _, t := range g.Tasks {
		reach[t.Src][t.Dst] = true
	}
	for k := 0; k < nV; k++ {
		for i := 0; i < nV; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < nV; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	reachEq := func(a, b dag.VertexID) bool { return a == b || reach[a][b] }

	// Idle floor: every rank draws at least idle power at all times.
	idleFloor := 0.0
	for r := 0; r < g.NumRanks; r++ {
		idleFloor += s.Model.IdlePower(s.eff(r))
	}
	capInc := capW - idleFloor
	if capInc < -1e-9 {
		return nil, fmt.Errorf("%w: cap %.1f W below the %.1f W idle floor", ErrInfeasible, capW, idleFloor)
	}
	if capInc < 0 {
		capInc = 0
	}

	// Items: tunable compute tasks plus artificial source and sink.
	var itemTasks []dag.TaskID
	horizon := 0.0
	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
			horizon += t.FixedDur
		case t.Work > 0:
			itemTasks = append(itemTasks, t.ID)
			horizon += s.Model.Duration(t.Work, t.Shape, machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1})
		}
	}
	n := len(itemTasks) + 2
	src, snk := 0, n-1
	bigM := horizon + 1
	taskOf := func(it int) *dag.Task { return g.Task(itemTasks[it-1]) }

	// Presolve the sequencing matrix (Eqs. 14–22 adapted to the idle-floor
	// item set; see the derivation in the package comment of each rule):
	//   x_ij = 1 when dst(i) ⪯ src(j): i provably finishes before j starts;
	//   x_ij = 0 when src(j) ⪯ src(i): j starts no later than i starts, and
	//            i's execution has positive duration;
	//   x_ij = 0 when dst(j) ⪯ src(i): j (plus slack) completes before i
	//            starts, so i cannot finish first;
	//   SlackHold additionally forbids x_ij when src(j) ≺ dst(i) or
	//   dst(i) = dst(j): the held window ends only at the destination.
	x := make([][]seqState, n)
	for i := range x {
		x[i] = make([]seqState, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				x[i][j] = seqZero // (18)
			case j == src || i == snk:
				x[i][j] = seqZero
			case i == src || j == snk:
				x[i][j] = seqOne
			default:
				ti, tj := taskOf(i), taskOf(j)
				switch {
				case reachEq(ti.Dst, tj.Src):
					x[i][j] = seqOne // (15)
				case reachEq(tj.Src, ti.Src):
					x[i][j] = seqZero // (19)/(21)
				case reachEq(tj.Dst, ti.Src):
					x[i][j] = seqZero // reverse of a forced one (16)
				case s.Slack == SlackHold && (reach[tj.Src][ti.Dst] || ti.Dst == tj.Dst):
					x[i][j] = seqZero // (20)/(22) for held windows
				}
			}
		}
	}

	prob := milp.NewProblem(lp.Minimize)
	if s.MaxNodes > 0 {
		prob.SetMaxNodes(s.MaxNodes)
	}
	// Makespans are O(1)–O(10) seconds; a 1 µs absolute gap is far below
	// any schedule difference of interest and prunes the plateau of
	// equal-makespan event orderings.
	prob.SetGap(1e-6)

	vVar := make([]lp.Var, nV)
	for i := 0; i < nV; i++ {
		obj := 0.0
		if i == finV {
			obj = 1
		}
		vVar[i] = prob.AddVar(fmt.Sprintf("v%d", i), obj)
	}
	prob.MustConstraint("init0", lp.Expr{}.Plus(vVar[initV], 1), lp.EQ, 0)

	// Vertex timing and configuration mixes (Eqs. 3–4, 6–9), over the
	// shared IR frontier columns. The tiebreak must stay well below the
	// branch-and-bound pruning gap, or near-tied orderings differing only
	// in power preference defeat plateau pruning.
	const tiebreak = 1e-9
	cVars := make(map[dag.TaskID]*cfgVars)
	fs := s.frontiers()
	for i := range g.Tasks {
		t := &g.Tasks[i]
		timing := lp.Expr{}.Plus(vVar[t.Dst], 1).Plus(vVar[t.Src], -1)
		switch {
		case t.Kind == dag.Message:
			prob.MustConstraint(fmt.Sprintf("msg%d", t.ID), timing, lp.GE, t.FixedDur)
		case t.Work <= 0:
			prob.MustConstraint(fmt.Sprintf("z%d", t.ID), timing, lp.GE, 0)
		default:
			idle := s.Model.IdlePower(s.eff(t.Rank))
			f := fs.For(t.Shape, t.Rank)
			cv := &cfgVars{}
			var convex lp.Expr
			for _, p := range f.Pts {
				v := prob.AddVar(fmt.Sprintf("c%d_%d", t.ID, p.Index), tiebreak*p.PowerW)
				cv.vars = append(cv.vars, v)
				cv.durs = append(cv.durs, p.TimeS*t.Work)
				cv.pows = append(cv.pows, p.PowerW-idle)
				cv.abs = append(cv.abs, p.PowerW)
				convex = convex.Plus(v, 1)
				timing = timing.Plus(v, -p.TimeS*t.Work)
			}
			prob.MustConstraint(fmt.Sprintf("cvx%d", t.ID), convex, lp.EQ, 1)
			prob.MustConstraint(fmt.Sprintf("dur%d", t.ID), timing, lp.GE, 0)
			cVars[t.ID] = cv
		}
	}

	// Free sequencing binaries (14) + mutual exclusion (16).
	xVar := make(map[[2]int]lp.Var)
	binaries := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if x[i][j] == seqFree {
				xVar[[2]int{i, j}] = prob.AddBinary(fmt.Sprintf("x%d_%d", i, j), 0)
				binaries++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if x[i][j] == seqFree && x[j][i] == seqFree {
				prob.MustConstraint(fmt.Sprintf("mx%d_%d", i, j),
					lp.Expr{}.Plus(xVar[[2]int{i, j}], 1).Plus(xVar[[2]int{j, i}], 1), lp.LE, 1)
			}
		}
	}

	// Transitivity (17): x_ik ≥ x_ij + x_jk − 1, only where not implied.
	xTerm := func(i, j int) (lp.Var, float64, bool) {
		switch x[i][j] {
		case seqOne:
			return 0, 1, false
		case seqZero:
			return 0, 0, false
		default:
			return xVar[[2]int{i, j}], 0, true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			vij, cij, fij := xTerm(i, j)
			if !fij && cij == 0 {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				vjk, cjk, fjk := xTerm(j, k)
				if !fjk && cjk == 0 {
					continue
				}
				vik, cik, fik := xTerm(i, k)
				if !fik && cik == 1 {
					continue
				}
				if !fij && !fjk && !fik {
					if cik < cij+cjk-1 {
						return nil, fmt.Errorf("flowilp: inconsistent presolve at (%d,%d,%d)", i, j, k)
					}
					continue
				}
				var e lp.Expr
				rhs := -1.0
				if fik {
					e = e.Plus(vik, 1)
				}
				if fij {
					e = e.Plus(vij, -1)
				} else {
					rhs += cij
				}
				if fjk {
					e = e.Plus(vjk, -1)
				} else {
					rhs += cjk
				}
				if len(e) == 0 {
					continue
				}
				prob.MustConstraint(fmt.Sprintf("tr%d_%d_%d", i, j, k), e, lp.GE, rhs)
			}
		}
	}

	// endExpr returns item i's finish expressed over the LP variables as
	// (terms, constant): execution end for SlackObserved, destination
	// vertex (task + held slack) for SlackHold.
	endExpr := func(i int) lp.Expr {
		t := taskOf(i)
		if s.Slack == SlackHold {
			return lp.Expr{}.Plus(vVar[t.Dst], 1)
		}
		e := lp.Expr{}.Plus(vVar[t.Src], 1)
		cv := cVars[t.ID]
		for k, v := range cv.vars {
			e = e.Plus(v, cv.durs[k])
		}
		return e
	}

	// Sequenced timing (23): start(j) − end(i) ≥ −M(1−x_ij).
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			if i == j || x[i][j] == seqZero {
				continue
			}
			tj := taskOf(j)
			if x[i][j] == seqOne && reachEq(taskOf(i).Dst, tj.Src) {
				continue // implied by vertex timing
			}
			e := lp.Expr{}.Plus(vVar[tj.Src], 1)
			for _, term := range endExpr(i) {
				e = e.Plus(term.Var, -term.Coef)
			}
			if x[i][j] == seqOne {
				prob.MustConstraint(fmt.Sprintf("sq%d_%d", i, j), e, lp.GE, 0)
			} else {
				e = e.Plus(xVar[[2]int{i, j}], -bigM)
				prob.MustConstraint(fmt.Sprintf("sq%d_%d", i, j), e, lp.GE, -bigM)
			}
		}
	}

	// Power flow (24–29) over incremental powers: source and sink carry
	// the incremental budget PC′ = PC − Σ idle.
	fVar := make(map[[2]int]lp.Var)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || x[i][j] == seqZero {
				continue
			}
			f := prob.AddVar(fmt.Sprintf("f%d_%d", i, j), 0)
			fVar[[2]int{i, j}] = f
			if x[i][j] == seqFree {
				prob.MustConstraint(fmt.Sprintf("fc%d_%d", i, j),
					lp.Expr{}.Plus(f, 1).Plus(xVar[[2]int{i, j}], -capInc), lp.LE, 0)
			} else {
				prob.MustConstraint(fmt.Sprintf("fc%d_%d", i, j),
					lp.Expr{}.Plus(f, 1), lp.LE, capInc)
			}
		}
	}
	// incPowerExpr is item i's incremental power as LP terms (source and
	// sink are the constant capInc).
	addPower := func(e lp.Expr, it int, sign float64) (lp.Expr, float64) {
		if it == src || it == snk {
			return e, capInc * sign
		}
		cv := cVars[taskOf(it).ID]
		for k, v := range cv.vars {
			e = e.Plus(v, -sign*cv.pows[k])
		}
		return e, 0
	}
	// (28): outflow = power, for every item but the sink.
	for i := 0; i < n; i++ {
		if i == snk {
			continue
		}
		var e lp.Expr
		for j := 0; j < n; j++ {
			if f, ok := fVar[[2]int{i, j}]; ok {
				e = e.Plus(f, 1)
			}
		}
		e, c := addPower(e, i, 1)
		prob.MustConstraint(fmt.Sprintf("out%d", i), e, lp.EQ, c)
	}
	// (29): inflow = power, for every item but the source.
	for j := 0; j < n; j++ {
		if j == src {
			continue
		}
		var e lp.Expr
		for i := 0; i < n; i++ {
			if f, ok := fVar[[2]int{i, j}]; ok {
				e = e.Plus(f, 1)
			}
		}
		e, c := addPower(e, j, 1)
		prob.MustConstraint(fmt.Sprintf("in%d", j), e, lp.EQ, c)
	}

	if binaries == 0 {
		// Degenerate but legal: fully ordered instance. milp requires at
		// least one integer variable; add an inert one.
		prob.SetInteger(prob.AddVar("inert", 0))
	}

	return &instance{prob: prob, vVar: vVar, finV: finV, cVars: cVars, binaries: binaries}, nil
}
