package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	if got := f.Snapshot(0); len(got) != 0 {
		t.Fatalf("empty recorder snapshot: %d events", len(got))
	}
	for i := 0; i < 6; i++ {
		f.Record(WideEvent{TimeUnixNS: int64(i), RequestID: fmt.Sprintf("r%d", i)})
	}
	if f.Total() != 6 {
		t.Fatalf("Total = %d, want 6", f.Total())
	}
	got := f.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("full snapshot: %d events, want 4 (ring capacity)", len(got))
	}
	for i, ev := range got {
		if want := fmt.Sprintf("r%d", i+2); ev.RequestID != want {
			t.Errorf("event %d: RequestID = %q, want %q (oldest first)", i, ev.RequestID, want)
		}
	}
	last := f.Snapshot(2)
	if len(last) != 2 || last[0].RequestID != "r4" || last[1].RequestID != "r5" {
		t.Fatalf("Snapshot(2) = %+v, want r4,r5", last)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(WideEvent{RequestID: "only"})
	got := f.Snapshot(0)
	if len(got) != 1 || got[0].RequestID != "only" {
		t.Fatalf("Snapshot = %+v, want the single recorded event", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(WideEvent{TimeUnixNS: int64(g*1000 + i), RequestID: "rq"})
				if i%17 == 0 {
					_ = f.Snapshot(8)
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != 800 {
		t.Fatalf("Total = %d, want 800", f.Total())
	}
	for _, ev := range f.Snapshot(0) {
		if ev.RequestID != "rq" {
			t.Fatalf("torn read: %+v", ev)
		}
	}
}

// TestFlightRecordNoAllocs pins the acceptance criterion: recording a wide
// event while nobody is dumping performs zero allocations.
func TestFlightRecordNoAllocs(t *testing.T) {
	f := NewFlightRecorder(64)
	ev := WideEvent{
		TimeUnixNS: 1, RequestID: "abcd1234", Path: "/v1/solve", Status: 200,
		DurMS: 1.5, Workload: "CoMD", Rung: "sparse", Cache: "miss",
		Kernel: KernelHealth{Solves: 1, SimplexPivots: 40},
	}
	allocs := testing.AllocsPerRun(200, func() { f.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(WideEvent{RequestID: "aa", Status: 200})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf, 0, "test"); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Reason string      `json:"reason"`
		Total  uint64      `json:"total_recorded"`
		Events []WideEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Reason != "test" || d.Total != 1 || len(d.Events) != 1 || d.Events[0].RequestID != "aa" {
		t.Fatalf("dump = %+v", d)
	}
}

func TestFlightSnapshotToDisk(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(4)
	f.Record(WideEvent{RequestID: "zz"})
	path, err := f.SnapshotToDisk(dir, "breaker-open:dense")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("first snapshot was rate-limited")
	}
	if base := filepath.Base(path); strings.ContainsAny(base, ":/ ") {
		t.Fatalf("unsafe snapshot filename %q", base)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d flightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if d.Reason != "breaker-open:dense" || len(d.Events) != 1 {
		t.Fatalf("snapshot = %+v", d)
	}
	// A second snapshot inside the rate-limit window is silently skipped.
	path2, err := f.SnapshotToDisk(dir, "panic")
	if err != nil || path2 != "" {
		t.Fatalf("rate-limited snapshot: path=%q err=%v", path2, err)
	}
}

// TestWideEventJSONRoundTrip is the vet-style schema check: every field of
// WideEvent (recursively) must carry a json tag and survive a
// marshal/unmarshal round trip with a non-zero value. This catches fields
// that JSON cannot represent (funcs, channels, NaN floats), missing tags,
// and duplicate tag names — the dump is only forensically useful if every
// recorded field is actually in the dump.
func TestWideEventJSONRoundTrip(t *testing.T) {
	ev := WideEvent{}
	fillNonZero(t, reflect.ValueOf(&ev).Elem(), "WideEvent")
	checkTags(t, reflect.TypeOf(ev), "WideEvent", map[string]bool{})

	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("marshal fully-populated WideEvent: %v", err)
	}
	var back WideEvent
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ev, back) {
		t.Fatalf("round trip lost data:\n fwd: %+v\nback: %+v", ev, back)
	}
}

// fillNonZero sets every field of a struct value to a distinct non-zero
// value so omitempty cannot hide a non-round-trippable field.
func fillNonZero(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := path + "." + v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.String:
			f.SetString("x" + v.Type().Field(i).Name)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 1))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Struct:
			fillNonZero(t, f, name)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				switch f.Index(j).Kind() {
				case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
					f.Index(j).SetInt(int64(j + 1))
				default:
					t.Fatalf("%s: array element kind %s not handled — extend the vet check", name, f.Index(j).Kind())
				}
			}
		default:
			t.Fatalf("%s has kind %s: wide events must be flat value types (no maps, slices, pointers, funcs)", name, f.Kind())
		}
	}
}

// checkTags requires a json tag on every exported field and rejects
// duplicate tag names across the flattened event.
func checkTags(t *testing.T, typ reflect.Type, path string, seen map[string]bool) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		sf := typ.Field(i)
		tag := sf.Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Errorf("%s.%s has no json tag — it would dump under its Go name or not at all", path, sf.Name)
			continue
		}
		name := strings.Split(tag, ",")[0]
		if sf.Type.Kind() == reflect.Struct {
			checkTags(t, sf.Type, path+"."+sf.Name, map[string]bool{})
			continue
		}
		if seen[name] {
			t.Errorf("%s.%s: duplicate json tag %q", path, sf.Name, name)
		}
		seen[name] = true
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"":                    "dump",
		"sigquit":             "sigquit",
		"breaker-open:dense":  "breaker-open.dense",
		"panic: bad business": "panic..bad.business",
	} {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}
