// Package obs is the repo's zero-dependency tracing layer: wall-clock spans
// that nest through context, collect into a bounded per-request (or global)
// Trace, and export as Chrome trace-event JSON (chrome.go) or collapse into
// the per-stage latency histograms of /metrics.
//
// The design constraint is the same as internal/faultinject's disarmed hook:
// instrumentation sits on the hot solve path (simplex phase loops, the
// per-slice decomposition loop), so with no live Trace anywhere the whole
// Start/End pair must cost one atomic load and a nil check. That is enforced
// by the package-level `armed` counter: it counts unreleased Traces, and
// Start returns (ctx, nil) — with every *Span method nil-safe — before
// touching the context as long as it reads zero.
//
// Span parenting resolves in order: the parent *Span already in ctx (same
// Trace, same track), else a Trace attached with WithTrace (per-request,
// pcschedd), else the process-global Trace (SetGlobal, pcsched -trace).
// Each root span opens a fresh track (Chrome "tid"), so concurrent solves
// in one trace render as parallel rows instead of interleaved garbage.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// armed counts Traces that have been created and not yet Released. It is the
// disarmed-path gate: zero means Start is a single atomic load.
var armed atomic.Int32

// global is the process-wide fallback Trace used by CLI paths where no
// context plumbing exists above main (pcsched -trace).
var global atomic.Pointer[Trace]

// Enabled reports whether any live Trace exists, i.e. whether Start can
// possibly return a non-nil span. Exhibits use it to assert the disarmed
// state before timing baselines.
func Enabled() bool { return armed.Load() != 0 }

// DefaultMaxSpans bounds a Trace when NewTrace is given max <= 0. A 16-rank
// decomposed solve with per-pivot-free span granularity lands well under a
// thousand spans; 4096 leaves headroom for sweeps without letting a
// pathological request hold unbounded memory.
const DefaultMaxSpans = 4096

// SpanRecord is one completed span. StartNS is relative to the Trace epoch
// so records are stable across Snapshot calls and JSON round-trips.
type SpanRecord struct {
	Name    string
	ID      uint64
	Parent  uint64 // 0 for root spans
	TID     uint64 // track: roots get fresh tracks, children inherit
	StartNS int64
	DurNS   int64
	Attrs   map[string]any
}

// Trace is a bounded, goroutine-safe collection of completed spans.
type Trace struct {
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int

	max      int
	epoch    time.Time
	nextID   atomic.Uint64
	nextTID  atomic.Uint64
	released atomic.Bool
}

// NewTrace arms tracing and returns an empty Trace holding at most max
// spans (DefaultMaxSpans if max <= 0). Every NewTrace must be paired with
// Release, or the disarmed fast path stays off for the rest of the process.
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	armed.Add(1)
	return &Trace{max: max, epoch: time.Now()}
}

// Release retires the Trace: spans already recorded stay readable via
// Snapshot, new Starts against it return nil spans, and the armed counter
// drops. Idempotent.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	if t.released.CompareAndSwap(false, true) {
		armed.Add(-1)
	}
}

// Snapshot returns a copy of the completed spans recorded so far.
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns how many completed spans were discarded because the Trace
// was full. Exports surface it so a truncated trace is never mistaken for a
// complete one.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *Trace) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, r)
}

type (
	spanKey  struct{}
	traceKey struct{}
)

// WithTrace attaches tr to the context; spans Started under it (with no
// nearer parent span) become roots of tr. pcschedd gives every request its
// own Trace this way, so concurrent requests never share one.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the Trace the next Start would record into: the
// enclosing span's Trace, else one attached by WithTrace, else nil. The
// process-global fallback is deliberately excluded — callers asking "is
// this request traced?" mean the request, not the process.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && sp != nil {
		return sp.tr
	}
	if tr, ok := ctx.Value(traceKey{}).(*Trace); ok {
		return tr
	}
	return nil
}

// SetGlobal installs (or, with nil, clears) the process-global fallback
// Trace. It does not touch the armed counter: the Trace's own
// NewTrace/Release pair did. CLI-only; the service never sets it.
func SetGlobal(tr *Trace) { global.Store(tr) }

// Span is an open interval of work. All methods are nil-safe, so call sites
// never guard on the disabled path:
//
//	ctx, sp := obs.Start(ctx, "lp.phase1")
//	defer sp.End()
type Span struct {
	tr     *Trace
	name   string
	id     uint64
	parent uint64
	tid    uint64
	start  time.Time
	attrs  map[string]any
	ended  atomic.Bool
}

// Start opens a span named name. With no live Trace anywhere it is one
// atomic load and returns (ctx, nil). Otherwise the span parents onto the
// span already in ctx (inheriting its track), or becomes a root of the
// context's — or failing that the global — Trace on a fresh track.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if armed.Load() == 0 {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		tr          *Trace
		parent, tid uint64
	)
	if ps, ok := ctx.Value(spanKey{}).(*Span); ok && ps != nil {
		tr, parent, tid = ps.tr, ps.id, ps.tid
	} else if t, ok := ctx.Value(traceKey{}).(*Trace); ok && t != nil {
		tr = t
	} else {
		tr = global.Load()
	}
	if tr == nil || tr.released.Load() {
		return ctx, nil
	}
	sp := &Span{
		tr:     tr,
		name:   name,
		id:     tr.nextID.Add(1),
		parent: parent,
		tid:    tid,
		start:  time.Now(),
	}
	if sp.tid == 0 {
		sp.tid = tr.nextTID.Add(1)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SetAttr attaches a key/value to the span. Attributes belong to the
// goroutine running the span; set them before End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.ended.Load() {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End closes the span and records it into its Trace. Idempotent and
// nil-safe; a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	dur := time.Since(s.start)
	s.tr.record(SpanRecord{
		Name:    s.name,
		ID:      s.id,
		Parent:  s.parent,
		TID:     s.tid,
		StartNS: s.start.Sub(s.tr.epoch).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
		Attrs:   s.attrs,
	})
}
