package obs

// Flight recorder: a fixed-size in-memory ring of wide events — one
// structured record per request, always on. Where spans answer "where did
// the time go inside this solve", the wide event answers "why was this
// request slow, browned, or degraded" after the fact: it carries the
// admission-time control state (adapt epoch, pressure, SLO burn), the
// cache/singleflight outcome, the resilience rung that produced the
// schedule, and the kernel's numerical-health counters in one record.
//
// Memory model. The ring is sized to a power of two. Writers claim a slot
// with a single atomic add on the cursor — that is the only cross-writer
// coordination, mirroring the one-atomic-load disarm discipline of Start —
// then copy the event into the slot under that slot's private mutex. The
// mutex exists only to order a writer against a concurrent dumper on the
// same slot (a seqlock would be invisible to the Go race detector and is
// not a defined pattern under the Go memory model); it is uncontended in
// steady state, so the hot path is one atomic add, one uncontended
// lock/unlock, and a flat struct copy. WideEvent deliberately holds no
// maps, slices, or pointers: recording allocates nothing, and a dump while
// a writer lands sees either the old or the new record, never a torn one.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NumLadderRungs is the length of the per-rung attempt counters in a
// WideEvent. The order is the resilience ladder's descent order: sparse,
// sparse-eta, dense, heuristic, static.
const NumLadderRungs = 5

// KernelHealth is the numerical-health slice of a wide event: the LP
// kernel's effort and rescue counters for every solve that served the
// request (summed across windows for windowed solves). All fields are
// plain ints so the struct copies flat into the ring.
type KernelHealth struct {
	Solves           int `json:"solves,omitempty"`
	SimplexPivots    int `json:"simplex_pivots,omitempty"`
	DualPivots       int `json:"dual_pivots,omitempty"`
	WarmStarts       int `json:"warm_starts,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	// MaxEtaLen is the peak product-form update-file length across the
	// request's solves — the eta-growth proxy for basis conditioning.
	MaxEtaLen int `json:"max_eta_len,omitempty"`
	// PivotRejections counts factorization rows skipped by LU threshold
	// (Markowitz-style) pivoting; TauRetries counts whole factorizations
	// that fell back from relaxed to strict partial pivoting.
	PivotRejections int `json:"pivot_rejections,omitempty"`
	FactorTauRetries int `json:"factor_tau_retries,omitempty"`
	// NaNRecoveries counts refactorize-and-retry repairs of non-finite
	// solver state; BlandActivations counts anti-cycling fallbacks.
	NaNRecoveries    int `json:"nan_recoveries,omitempty"`
	BlandActivations int `json:"bland_activations,omitempty"`
	PresolveRows     int `json:"presolve_rows,omitempty"`
	PresolveCols     int `json:"presolve_cols,omitempty"`
}

// WideEvent is one request's forensic record. Every field is a value type
// (no maps, slices, or pointers) so the ring write is a flat copy and the
// record path never allocates. Zero-valued fields are elided from JSON.
type WideEvent struct {
	TimeUnixNS int64   `json:"time_unix_ns"`
	RequestID  string  `json:"request_id"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	DurMS      float64 `json:"dur_ms"`

	// Solve shape as admitted (after any brownout rewrite).
	Workload   string  `json:"workload,omitempty"`
	CapW       float64 `json:"cap_w,omitempty"`
	Whole      bool    `json:"whole,omitempty"`
	Windows    int     `json:"windows,omitempty"`
	CoarsenEps float64 `json:"coarsen_eps,omitempty"`

	// Cache / singleflight outcome: "miss", "hit", "coalesced", "bypass".
	Cache    string `json:"cache,omitempty"`
	CacheKey string `json:"cache_key,omitempty"`
	// ClusterOrigin is the request ID of the /v1/cluster allocation that
	// parked this schedule, when the hit came from a parked entry.
	ClusterOrigin string `json:"cluster_origin,omitempty"`

	// Resilience outcome.
	Rung           string `json:"rung,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Brownout       string `json:"brownout,omitempty"`
	SolveRetries   int    `json:"solve_retries,omitempty"`
	// RungAttempts counts solve attempts per ladder rung in descent order
	// (sparse, sparse-eta, dense, heuristic, static) — the per-rung rescue
	// trail for this request.
	RungAttempts [NumLadderRungs]int32 `json:"rung_attempts"`

	// Deadline budget granted at admission vs solve wall actually spent.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	SolveMS    float64 `json:"solve_ms,omitempty"`

	// Adaptive-controller state at admission.
	AdaptEpoch uint64  `json:"adapt_epoch,omitempty"`
	AdaptRung  string  `json:"adapt_rung,omitempty"`
	Pressure   float64 `json:"pressure,omitempty"`

	// SLO burn rates at admission (fast/slow windows, max over objectives
	// for the scalar feed; per-objective detail lives in /healthz).
	SLOFastBurn float64 `json:"slo_fast_burn,omitempty"`
	SLOSlowBurn float64 `json:"slo_slow_burn,omitempty"`

	Kernel KernelHealth `json:"kernel"`
	Err    string       `json:"err,omitempty"`
}

// DefaultFlightSlots is the default ring capacity.
const DefaultFlightSlots = 256

// snapshotMinInterval rate-limits disk snapshots so a flapping breaker
// cannot turn the recorder into a disk-filling loop.
const snapshotMinInterval = 5 * time.Second

type flightSlot struct {
	mu  sync.Mutex
	ev  WideEvent
	set bool
}

// FlightRecorder is the lock-free-claim ring described in the package
// comment. The zero value is not usable; call NewFlightRecorder.
type FlightRecorder struct {
	mask   uint64
	seq    atomic.Uint64 // total events ever recorded
	slots  []flightSlot
	snapNS atomic.Int64 // unix ns of the last disk snapshot (rate limit)
}

// NewFlightRecorder returns a recorder holding the last n events (n is
// rounded up to a power of two; n <= 0 means DefaultFlightSlots).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSlots
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &FlightRecorder{mask: uint64(size - 1), slots: make([]flightSlot, size)}
}

// Record stores one wide event, overwriting the oldest. Safe for
// concurrent use; never allocates.
func (f *FlightRecorder) Record(ev WideEvent) {
	i := f.seq.Add(1) - 1
	s := &f.slots[i&f.mask]
	s.mu.Lock()
	s.ev = ev
	s.set = true
	s.mu.Unlock()
}

// Total reports how many events have ever been recorded (recorded minus
// ring capacity = overwritten).
func (f *FlightRecorder) Total() uint64 { return f.seq.Load() }

// Snapshot copies out up to n of the most recent events, oldest first.
// n <= 0 means the whole ring.
func (f *FlightRecorder) Snapshot(n int) []WideEvent {
	cap := len(f.slots)
	if n <= 0 || n > cap {
		n = cap
	}
	seq := f.seq.Load()
	if uint64(n) > seq {
		n = int(seq)
	}
	out := make([]WideEvent, 0, n)
	for i := seq - uint64(n); i < seq; i++ {
		s := &f.slots[i&f.mask]
		s.mu.Lock()
		ev, ok := s.ev, s.set
		s.mu.Unlock()
		if ok {
			out = append(out, ev)
		}
	}
	return out
}

// flightDump is the JSON schema of a flight-recorder dump, shared by
// /debug/flightrecorder, SIGQUIT, and disk snapshots.
type flightDump struct {
	Reason     string      `json:"reason,omitempty"`
	TimeUnixNS int64       `json:"time_unix_ns"`
	Total      uint64      `json:"total_recorded"`
	Events     []WideEvent `json:"events"`
}

// WriteJSON writes the last n events (oldest first) as an indented JSON
// dump. reason tags the dump ("sigquit", "panic", "breaker-open:dense", a
// debug-endpoint fetch, ...).
func (f *FlightRecorder) WriteJSON(w io.Writer, n int, reason string) error {
	d := flightDump{
		Reason:     reason,
		TimeUnixNS: time.Now().UnixNano(),
		Total:      f.Total(),
		Events:     f.Snapshot(n),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// SnapshotToDisk writes a full dump into dir (os.TempDir() when empty) and
// returns the file path. Snapshots are rate-limited to one per
// snapshotMinInterval — callers fire-and-forget this from panic recovery
// and breaker-open transitions, and a flapping breaker must not grind the
// disk. A rate-limited call returns ("", nil).
func (f *FlightRecorder) SnapshotToDisk(dir, reason string) (string, error) {
	now := time.Now().UnixNano()
	last := f.snapNS.Load()
	if now-last < int64(snapshotMinInterval) || !f.snapNS.CompareAndSwap(last, now) {
		return "", nil
	}
	if dir == "" {
		dir = os.TempDir()
	}
	name := fmt.Sprintf("flightrecorder-%s-%d.json", sanitizeReason(reason), now)
	path := filepath.Join(dir, name)
	fh, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := f.WriteJSON(fh, 0, reason)
	cerr := fh.Close()
	if werr != nil {
		return "", werr
	}
	return path, cerr
}

// sanitizeReason keeps dump filenames shell- and filesystem-safe.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "dump"
	}
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('.')
		}
	}
	return b.String()
}
