// Chrome trace-event export: SpanRecords become "complete" events (ph "X")
// in the JSON object format, loadable directly in chrome://tracing and
// Perfetto. Timestamps are microseconds from the Trace epoch; the span ID
// and parent ID ride along as top-level "sid"/"parent" fields (viewers
// ignore unknown keys) so nesting stays checkable after a JSON round-trip —
// CheckNesting is what `make obs-smoke` and the observability exhibit run
// against the exported document.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Event is one trace-event in Chrome's JSON object format.
type Event struct {
	Name   string         `json:"name"`
	Phase  string         `json:"ph"`
	TS     float64        `json:"ts"`  // µs from trace epoch
	Dur    float64        `json:"dur"` // µs
	PID    int            `json:"pid"`
	TID    uint64         `json:"tid"`
	ID     uint64         `json:"sid"`
	Parent uint64         `json:"parent,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
}

// Document is the top-level Chrome trace JSON object. DroppedSpans is an
// extension field: non-zero means the Trace hit its span bound and the
// document is incomplete.
type Document struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
	DroppedSpans    int     `json:"droppedSpans,omitempty"`
}

// ChromeEvents converts completed spans to events, ordered by start time
// (parents before their children on ties, which viewers prefer).
func ChromeEvents(recs []SpanRecord) []Event {
	evs := make([]Event, 0, len(recs))
	for _, r := range recs {
		evs = append(evs, Event{
			Name:   r.Name,
			Phase:  "X",
			TS:     float64(r.StartNS) / 1e3,
			Dur:    float64(r.DurNS) / 1e3,
			PID:    1,
			TID:    r.TID,
			ID:     r.ID,
			Parent: r.Parent,
			Args:   r.Attrs,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Dur > evs[j].Dur
	})
	return evs
}

// WriteChrome serializes the Trace's spans as a Chrome trace JSON document.
func WriteChrome(w io.Writer, tr *Trace) error {
	doc := Document{
		TraceEvents:     ChromeEvents(tr.Snapshot()),
		DisplayTimeUnit: "ms",
		DroppedSpans:    tr.Dropped(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// nestEps (µs) absorbs the float rounding of ns→µs conversion when
// comparing span endpoints; well under a nanosecond, so it can never mask a
// real containment violation.
const nestEps = 1e-3

// CheckNesting validates the structural invariants the span layer promises:
// unique span IDs, every non-root's parent present in the document, child on
// the parent's track, and child interval contained in the parent's. It is
// strict — a missing parent (e.g. dropped by the span bound) is an error,
// not a skip.
func CheckNesting(events []Event) error {
	byID := make(map[uint64]Event, len(events))
	for _, e := range events {
		if e.ID == 0 {
			return fmt.Errorf("span %q: zero id", e.Name)
		}
		if prev, dup := byID[e.ID]; dup {
			return fmt.Errorf("duplicate span id %d (%q and %q)", e.ID, prev.Name, e.Name)
		}
		byID[e.ID] = e
	}
	for _, e := range events {
		if e.Parent == 0 {
			continue
		}
		p, ok := byID[e.Parent]
		if !ok {
			return fmt.Errorf("span %q (id %d): parent %d missing from trace", e.Name, e.ID, e.Parent)
		}
		if p.TID != e.TID {
			return fmt.Errorf("span %q (tid %d): parent %q on different track %d", e.Name, e.TID, p.Name, p.TID)
		}
		if e.TS < p.TS-nestEps || e.TS+e.Dur > p.TS+p.Dur+nestEps {
			return fmt.Errorf("span %q [%.3f, %.3f] escapes parent %q [%.3f, %.3f]",
				e.Name, e.TS, e.TS+e.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
	}
	return nil
}
