package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathReturnsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("tracing armed at test start")
	}
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("Start returned a span with no live trace")
	}
	if ctx2 != ctx {
		t.Fatal("Start allocated a new context on the disabled path")
	}
	// All span methods must be nil-safe.
	sp.SetAttr("k", 1)
	sp.End()
	sp.End()
}

func TestSpanNestingAndSnapshot(t *testing.T) {
	tr := NewTrace(0)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	if root == nil {
		t.Fatal("Start returned nil with a live trace in ctx")
	}
	root.SetAttr("cap_w", 50.0)
	cctx, child := Start(ctx, "child")
	_, gchild := Start(cctx, "grandchild")
	time.Sleep(time.Millisecond)
	gchild.End()
	child.End()
	root.End()
	root.End() // idempotent

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: root=%d child.Parent=%d child=%d grandchild.Parent=%d",
			r.ID, c.Parent, c.ID, g.Parent)
	}
	if r.TID == 0 || c.TID != r.TID || g.TID != r.TID {
		t.Errorf("children must inherit the root track: %d/%d/%d", r.TID, c.TID, g.TID)
	}
	if v, ok := r.Attrs["cap_w"]; !ok || v != 50.0 {
		t.Errorf("root attrs = %v", r.Attrs)
	}
	// Containment in ns.
	if g.StartNS < c.StartNS || g.StartNS+g.DurNS > c.StartNS+c.DurNS {
		t.Errorf("grandchild escapes child")
	}
	if c.StartNS < r.StartNS || c.StartNS+c.DurNS > r.StartNS+r.DurNS {
		t.Errorf("child escapes root")
	}
	if g.DurNS < int64(time.Millisecond) {
		t.Errorf("grandchild dur %dns, slept 1ms", g.DurNS)
	}
}

func TestRootsGetFreshTracks(t *testing.T) {
	tr := NewTrace(0)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	a.End()
	b.End()
	recs := tr.Snapshot()
	if len(recs) != 2 || recs[0].TID == recs[1].TID {
		t.Fatalf("independent roots share a track: %+v", recs)
	}
}

func TestGlobalFallback(t *testing.T) {
	tr := NewTrace(0)
	SetGlobal(tr)
	defer func() {
		SetGlobal(nil)
		tr.Release()
	}()
	_, sp := Start(context.Background(), "cli")
	if sp == nil {
		t.Fatal("global trace not picked up")
	}
	sp.End()
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("global trace recorded %d spans, want 1", n)
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext must not report the global fallback")
	}
}

func TestBoundedSpansDrop(t *testing.T) {
	tr := NewTrace(2)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	if n := len(tr.Snapshot()); n != 2 {
		t.Fatalf("kept %d spans, want 2", n)
	}
	if d := tr.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
}

func TestReleaseDisarms(t *testing.T) {
	tr := NewTrace(0)
	ctx := WithTrace(context.Background(), tr)
	_, sp := Start(ctx, "before")
	sp.End()
	tr.Release()
	tr.Release() // idempotent
	if Enabled() {
		t.Fatal("still armed after release")
	}
	if _, sp := Start(ctx, "after"); sp != nil {
		t.Fatal("released trace yielded a span")
	}
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("snapshot after release = %d spans, want 1", n)
	}
}

func TestFromContext(t *testing.T) {
	tr := NewTrace(0)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("WithTrace not visible to FromContext")
	}
	ctx, sp := Start(ctx, "s")
	defer sp.End()
	if FromContext(ctx) != tr {
		t.Fatal("span's trace not visible to FromContext")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil)")
	}
}

// TestConcurrentSpans is the -race target: many goroutines recording into
// one trace, each with its own root track.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace(0)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	const G, N = 8, 50
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rctx, root := Start(ctx, fmt.Sprintf("worker-%d", g))
			for i := 0; i < N; i++ {
				_, sp := Start(rctx, "op")
				sp.SetAttr("i", i)
				sp.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	recs := tr.Snapshot()
	if len(recs) != G*(N+1) {
		t.Fatalf("got %d spans, want %d", len(recs), G*(N+1))
	}
	if err := CheckNesting(ChromeEvents(recs)); err != nil {
		t.Fatalf("nesting: %v", err)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	rctx, root := Start(ctx, "root")
	_, child := Start(rctx, "child")
	child.SetAttr("pivots", 42)
	time.Sleep(200 * time.Microsecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.DroppedSpans != 0 {
		t.Errorf("droppedSpans = %d", doc.DroppedSpans)
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			t.Errorf("event %q phase %q, want X", e.Name, e.Phase)
		}
	}
	if doc.TraceEvents[0].Name != "root" {
		t.Errorf("events not start-ordered: first is %q", doc.TraceEvents[0].Name)
	}
	if err := CheckNesting(doc.TraceEvents); err != nil {
		t.Fatalf("nesting after round trip: %v", err)
	}
}

func TestCheckNestingRejects(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
	}{
		{"missing parent", []Event{{Name: "c", ID: 2, Parent: 99, TID: 1, TS: 0, Dur: 1}}},
		{"zero id", []Event{{Name: "c", TID: 1}}},
		{"duplicate id", []Event{{Name: "a", ID: 1, TID: 1}, {Name: "b", ID: 1, TID: 1}}},
		{"cross-track child", []Event{
			{Name: "p", ID: 1, TID: 1, TS: 0, Dur: 10},
			{Name: "c", ID: 2, Parent: 1, TID: 2, TS: 1, Dur: 1}}},
		{"escaping child", []Event{
			{Name: "p", ID: 1, TID: 1, TS: 0, Dur: 10},
			{Name: "c", ID: 2, Parent: 1, TID: 1, TS: 5, Dur: 50}}},
	}
	for _, c := range cases {
		if err := CheckNesting(c.evs); err == nil {
			t.Errorf("%s: CheckNesting accepted a broken trace", c.name)
		}
	}
	ok := []Event{
		{Name: "p", ID: 1, TID: 1, TS: 0, Dur: 10},
		{Name: "c", ID: 2, Parent: 1, TID: 1, TS: 2, Dur: 5},
	}
	if err := CheckNesting(ok); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// BenchmarkStartEndDisabled measures the disarmed fast path — the cost every
// instrumented call site pays when tracing is off. The observability exhibit
// multiplies this by the span count of a traced solve to bound overhead.
func BenchmarkStartEndDisabled(b *testing.B) {
	if Enabled() {
		b.Fatal("tracing armed")
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	tr := NewTrace(1) // bound of 1: everything past the first drops, no growth
	defer tr.Release()
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}
