package policy

import (
	"math"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

func TestStaticRespectsPerSocketCap(t *testing.T) {
	w := workloads.CoMD(workloads.Params{Ranks: 4, Iterations: 2, Seed: 3, WorkScale: 0.2})
	s := NewStatic(machine.Default(), w.EffScale)
	for _, cap := range []float64{30, 40, 60, 80} {
		res, err := s.Run(w.Graph, cap)
		if err != nil {
			t.Fatal(err)
		}
		jobCap := cap * float64(w.Graph.NumRanks)
		// RAPL may sit fractionally above the cap only at the duty floor;
		// at these caps the DVFS ladder suffices.
		if v := res.MaxCapViolation(jobCap); v > 1e-9 {
			t.Fatalf("cap %v: job power exceeded by %v W", cap, v)
		}
		if res.Makespan <= 0 {
			t.Fatalf("cap %v: empty makespan", cap)
		}
	}
}

func TestStaticTighterCapSlower(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 2, Seed: 3, WorkScale: 0.2})
	s := NewStatic(machine.Default(), w.EffScale)
	prev := 0.0
	for _, cap := range []float64{80, 60, 45, 35, 28, 22} {
		res, err := s.Run(w.Graph, cap)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < prev-1e-9 {
			t.Fatalf("makespan decreased at tighter cap %v", cap)
		}
		prev = res.Makespan
	}
}

func TestStaticUsesAllCores(t *testing.T) {
	// Static pins threads to the core count; its per-task power must match
	// the RAPL result for 8 threads.
	m := machine.Default()
	w := workloads.CoMD(workloads.Params{Ranks: 2, Iterations: 1, Seed: 3, WorkScale: 0.2})
	s := NewStatic(m, nil)
	pts := s.Points(w.Graph, 40)
	for i, task := range w.Graph.Tasks {
		if task.Kind != dag.Compute || task.Work <= 0 {
			continue
		}
		r := m.CapConfig(task.Shape, m.Cores, 40, 1)
		if math.Abs(pts[i].PowerW-r.PowerW) > 1e-9 {
			t.Fatalf("task %d power %v, want RAPL %v", i, pts[i].PowerW, r.PowerW)
		}
	}
}

func TestRunJobCapDividesUniformly(t *testing.T) {
	w := workloads.SP(workloads.Params{Ranks: 4, Iterations: 2, Seed: 3, WorkScale: 0.2})
	s := NewStatic(machine.Default(), w.EffScale)
	a, err := s.Run(w.Graph, 45)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunJobCap(w.Graph, 45*4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("RunJobCap mismatch: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestStaticThreadsOverride(t *testing.T) {
	w := workloads.CoMD(workloads.Params{Ranks: 2, Iterations: 1, Seed: 3, WorkScale: 0.2})
	s := NewStatic(machine.Default(), nil)
	s.Threads = 4
	res4, err := s.Run(w.Graph, 60)
	if err != nil {
		t.Fatal(err)
	}
	s.Threads = 0 // all cores
	res8, err := s.Run(w.Graph, 60)
	if err != nil {
		t.Fatal(err)
	}
	// CoMD has no contention: 8 threads at 60 W must beat 4 threads.
	if res8.Makespan >= res4.Makespan {
		t.Fatalf("8 threads (%v) not faster than 4 (%v) at 60 W", res8.Makespan, res4.Makespan)
	}
}
