// Package policy implements the Static baseline of Sec. 4.1: application
// power divided equally between sockets, enforced by the RAPL firmware
// emulation, with the thread count pinned to the full core count.
//
// "The simplest method to allocate per-node power is to distribute
// application-level power equally between the nodes … this method has been
// used effectively in production clusters within the U.S. Department of
// Energy. … Because RAPL is implemented in firmware, it is unable to change
// application concurrency levels." Static therefore always runs 8 threads
// and lets the DVFS/duty controller squeeze under the per-socket cap.
package policy

import (
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
)

// Static is the fixed, uniform power allocation baseline.
type Static struct {
	Model *machine.Model
	// EffScale is the per-rank socket power-efficiency multiplier;
	// nil = 1.0. Inefficient sockets land in lower DVFS states under the
	// same cap — the paper observes RAPL pushing some processors to 22%
	// of maximum clock while others cruise.
	EffScale []float64
	// Threads fixes the concurrency level; 0 means all cores ("to
	// maximize performance for most applications, we fix the thread
	// concurrency level at eight per processor").
	Threads int
}

// NewStatic returns the baseline policy over a model.
func NewStatic(model *machine.Model, effScale []float64) *Static {
	return &Static{Model: model, EffScale: effScale}
}

func (s *Static) eff(rank int) float64 {
	if s.EffScale == nil || rank < 0 || rank >= len(s.EffScale) {
		return 1
	}
	return s.EffScale[rank]
}

func (s *Static) threads() int {
	if s.Threads > 0 {
		return s.Threads
	}
	return s.Model.Cores
}

// Points chooses every compute task's operating point under a uniform
// per-socket cap: the RAPL controller picks the DVFS state (or duty cycle)
// for the fixed thread count.
func (s *Static) Points(g *dag.Graph, perSocketCapW float64) []sim.TaskPoint {
	pts := sim.Points(g)
	for i, t := range g.Tasks {
		if t.Kind != dag.Compute {
			continue
		}
		if t.Work <= 0 {
			pts[i] = sim.TaskPoint{Duration: 0, PowerW: s.Model.IdlePower(s.eff(t.Rank))}
			continue
		}
		r := s.Model.CapConfig(t.Shape, s.threads(), perSocketCapW, s.eff(t.Rank))
		pts[i] = sim.TaskPoint{
			Duration: s.Model.DurationDuty(t.Work, t.Shape, r.Config, r.Duty),
			PowerW:   r.PowerW,
		}
	}
	return pts
}

// Run evaluates the whole graph under Static at the given per-socket cap.
func (s *Static) Run(g *dag.Graph, perSocketCapW float64) (*sim.Result, error) {
	return sim.Evaluate(g, s.Points(g, perSocketCapW), sim.SlackHoldsTaskPower, 0)
}

// RunJobCap evaluates Static at a job-level cap by dividing it uniformly
// across sockets — the conversion the paper's figures use ("average power
// per processor socket").
func (s *Static) RunJobCap(g *dag.Graph, jobCapW float64) (*sim.Result, error) {
	return s.Run(g, jobCapW/float64(g.NumRanks))
}
