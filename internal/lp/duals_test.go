package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsKnownInstance(t *testing.T) {
	// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → duals 0, 1.5, 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.MustConstraint("c1", Expr{}.Plus(x, 1), LE, 4)
	p.MustConstraint("c2", Expr{}.Plus(y, 2), LE, 12)
	p.MustConstraint("c3", Expr{}.Plus(x, 3).Plus(y, 2), LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if math.Abs(sol.DualOf(i)-w) > 1e-8 {
			t.Fatalf("dual %d = %v, want %v (all: %v)", i, sol.DualOf(i), w, sol.Dual)
		}
	}
}

func TestDualsMinimizationWithGE(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 4, x >= 1. Optimum: x=4... check: put all
	// weight on x (cheaper): x=4, y=0, obj 8. Dual of first row: 2 (the
	// binding resource priced at x's cost); second row slack → 0.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.MustConstraint("demand", Expr{}.Plus(x, 1).Plus(y, 1), GE, 4)
	p.MustConstraint("xmin", Expr{}.Plus(x, 1), GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-8) > 1e-8 {
		t.Fatalf("objective = %v, want 8", sol.Objective)
	}
	if math.Abs(sol.DualOf(0)-2) > 1e-8 {
		t.Fatalf("dual(demand) = %v, want 2", sol.DualOf(0))
	}
	if math.Abs(sol.DualOf(1)) > 1e-8 {
		t.Fatalf("dual(xmin) = %v, want 0 (non-binding)", sol.DualOf(1))
	}
}

func TestDualsEqualityRow(t *testing.T) {
	// min x + 2y  s.t. x + y = 3. Optimum x=3: dual = 1 (cost of the
	// cheapest variable feeding the row).
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.MustConstraint("bal", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.DualOf(0)-1) > 1e-8 {
		t.Fatalf("dual = %v, want 1", sol.DualOf(0))
	}
}

func TestDualsNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2 is x ≥ 2; min x → obj 2. Sensitivity to the rhs as STATED:
	// raising −2 to −1 relaxes to x ≥ 1 → objective falls by 1 ⇒ dual +1.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	p.MustConstraint("neg", Expr{}.Plus(x, -1), LE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("objective = %v", sol.Objective)
	}
	// Verify numerically against a perturbed solve.
	p2 := NewProblem(Minimize)
	x2 := p2.AddVar("x", 1)
	p2.MustConstraint("neg", Expr{}.Plus(x2, -1), LE, -2+0.25)
	sol2, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	numeric := (sol2.Objective - sol.Objective) / 0.25
	if math.Abs(sol.DualOf(0)-numeric) > 1e-6 {
		t.Fatalf("dual = %v, finite difference = %v", sol.DualOf(0), numeric)
	}
}

// TestPropertyStrongDuality: on random feasible bounded LPs, the dual
// objective yᵀb must equal the primal objective (strong duality), and
// complementary slackness must hold row-wise.
func TestPropertyStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		costs := make([]float64, n)
		for i := range vars {
			costs[i] = rng.Float64() * 10
			vars[i] = p.AddVar("", costs[i]) // nonnegative costs → bounded min
		}
		type rowRec struct {
			coef []float64
			rel  Rel
			rhs  float64
		}
		var rows []rowRec
		for r := 0; r < 1+rng.Intn(4); r++ {
			coef := make([]float64, n)
			var e Expr
			any := false
			for i := range vars {
				c := float64(rng.Intn(5))
				coef[i] = c
				if c != 0 {
					e = e.Plus(vars[i], c)
					any = true
				}
			}
			if !any {
				continue
			}
			// ≥ rows with nonneg coefficients keep the problem feasible.
			rhs := rng.Float64() * 8
			p.MustConstraint("", e, GE, rhs)
			rows = append(rows, rowRec{coef, GE, rhs})
		}
		if len(rows) == 0 {
			continue
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		checked++
		dualObj := 0.0
		for i, r := range rows {
			y := sol.Dual[i]
			if y < -1e-7 {
				t.Fatalf("trial %d: negative dual %v on a ≥ row of a minimization", trial, y)
			}
			dualObj += y * r.rhs
			// Complementary slackness: y_i > 0 ⇒ row binding.
			lhs := 0.0
			for j, c := range r.coef {
				lhs += c * sol.X[j]
			}
			if y > 1e-6 && lhs > r.rhs+1e-6*(1+math.Abs(r.rhs)) {
				t.Fatalf("trial %d: dual %v on slack row (lhs %v > rhs %v)", trial, y, lhs, r.rhs)
			}
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: dual objective %v != primal %v (duals %v)", trial, dualObj, sol.Objective, sol.Dual)
		}
		// Dual feasibility: Aᵀy ≤ c for a min problem with ≥ rows.
		for j := range vars {
			sum := 0.0
			for i, r := range rows {
				sum += sol.Dual[i] * r.coef[j]
			}
			if sum > costs[j]+1e-6 {
				t.Fatalf("trial %d: dual infeasible at var %d: %v > %v", trial, j, sum, costs[j])
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}
