package lp

import (
	"fmt"
	"math"
)

// Numerical-failure guards (DESIGN.md §10). Both simplex backends watch for
// non-finite state — NaN/±Inf in the basic values or the phase objective —
// at the same checkpoints where they poll for cancellation. The sparse
// backend first attempts recovery by rebuilding its basis inverse from
// scratch (reinversion recomputes xB = B⁻¹b from the clean standard form, so
// drift or a corrupted working vector is genuinely repaired); the dense
// tableau has no factored form to rebuild and reports the breakdown
// directly. Breakdowns surface to callers as a typed *NumericalError, so the
// fallback ladder can distinguish "bad problem" (Infeasible/Unbounded, a
// statement about the LP) from "bad luck" (a solve attempt that went
// numerically wrong and may succeed on another backend).

// NumericalError reports a solve abandoned because the backend's working
// state went numerically bad (non-finite values, a singular basis at
// reinversion, or an FTRAN/BTRAN disagreement). It makes no statement about
// the problem: retrying, switching backends, or falling back to a heuristic
// are all legitimate responses, which is exactly what internal/resilience
// does.
type NumericalError struct {
	// Backend names the implementation that broke down ("dense", "sparse").
	Backend string
	// Reason is a short machine-readable description of the breakdown.
	Reason string
	// Pivots is how many pivots were spent before the breakdown.
	Pivots int
}

// Error implements error.
func (e *NumericalError) Error() string {
	return fmt.Sprintf("lp: %s backend numerical breakdown after %d pivots: %s",
		e.Backend, e.Pivots, e.Reason)
}

// statusNumerical is the backends' internal "numerically stuck" outcome. It
// never escapes the package: solveDense and solveSparse convert it into a
// *NumericalError before returning.
const statusNumerical Status = -1

// maxNaNRetries bounds refactorization-and-retry attempts per solve; a
// breakdown that survives this many reinversions is reported, not fought.
const maxNaNRetries = 3

// finiteAll reports whether every value is finite.
func finiteAll(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// finite reports whether x is a finite float.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
