package lp

import (
	"math"
	"testing"
)

// Satellite regression: on a classic degenerate-cycling instance, forcing
// the Dantzig→Bland stall threshold to its minimum must activate Bland's
// rule in BOTH backends, and both must still terminate at the optimum
// within a finite pivot budget (no cycling).

// bealeProblem is Beale's example, the canonical LP on which textbook
// Dantzig pricing cycles forever. Optimum: x = (1/25, 0, 1, 0), obj −1/20.
func bealeProblem() *Problem {
	p := NewProblem(Minimize)
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.MustConstraint("", Expr{}.Plus(x1, 0.25).Plus(x2, -60).Plus(x3, -0.04).Plus(x4, 9), LE, 0)
	p.MustConstraint("", Expr{}.Plus(x1, 0.5).Plus(x2, -90).Plus(x3, -0.02).Plus(x4, 3), LE, 0)
	p.MustConstraint("", Expr{}.Plus(x3, 1), LE, 1)
	return p
}

func TestDegenerateCyclingBlandActivation(t *testing.T) {
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		t.Run(backend.String(), func(t *testing.T) {
			p := bealeProblem()
			// StallWindow 1 means the very first non-improving (degenerate)
			// pivot flips the solver into Bland's rule; the tight MaxIters
			// budget makes any cycling show up as IterLimit instead of a
			// hung test.
			sol, err := Solve(p,
				WithBackend(backend),
				WithStallWindow(1),
				WithMaxIters(500))
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status %v, want optimal (cycled or stuck?)", sol.Status)
			}
			if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
				t.Fatalf("objective %v, want -0.05", sol.Objective)
			}
			if !sol.Stats.BlandActivated {
				t.Fatalf("Bland's rule never activated despite StallWindow=1 on a degenerate instance")
			}
			if sol.Iters > 500 {
				t.Fatalf("iteration budget exceeded: %d", sol.Iters)
			}
		})
	}
}

// TestDegenerateSteepestEdgeNoCycling pins the anti-cycling story for the
// steepest-edge pricer across both basis engines: when Bland's rule engages
// it refreshes reduced costs exactly every iteration (first-negative over
// exact d[]), so the finite-termination guarantee survives the incremental
// pricing layer. Beale's instance must terminate at the optimum under every
// engine×pricing combination, with and without a forced Bland flip.
func TestDegenerateSteepestEdgeNoCycling(t *testing.T) {
	for _, eng := range []Engine{EngineEta, EngineLU} {
		for _, pr := range []Pricing{PricingDantzig, PricingSteepest} {
			t.Run(eng.String()+"/"+pr.String(), func(t *testing.T) {
				for _, forceBland := range []bool{false, true} {
					opts := []Option{
						WithBackend(BackendSparse),
						WithEngine(eng),
						WithPricing(pr),
						WithMaxIters(500),
					}
					if forceBland {
						opts = append(opts, WithStallWindow(1))
					}
					sol, err := Solve(bealeProblem(), opts...)
					if err != nil {
						t.Fatalf("forceBland=%v: %v", forceBland, err)
					}
					if sol.Status != Optimal {
						t.Fatalf("forceBland=%v: status %v, want optimal (cycled?)", forceBland, sol.Status)
					}
					if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
						t.Fatalf("forceBland=%v: objective %v, want -0.05", forceBland, sol.Objective)
					}
					if forceBland && !sol.Stats.BlandActivated {
						t.Fatalf("Bland's rule never activated despite StallWindow=1")
					}
					if sol.Stats.Engine != eng.String() || sol.Stats.Pricing != pr.String() {
						t.Fatalf("stats report engine=%q pricing=%q, want %q/%q",
							sol.Stats.Engine, sol.Stats.Pricing, eng, pr)
					}
				}
			})
		}
	}
}

// TestDegenerateDefaultStallWindow makes sure the default configuration
// also solves the cycling instance (the stall heuristic engages on its
// own if needed — either way termination and the optimum are required).
func TestDegenerateDefaultStallWindow(t *testing.T) {
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		t.Run(backend.String(), func(t *testing.T) {
			sol, err := Solve(bealeProblem(), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status %v, want optimal", sol.Status)
			}
			if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
				t.Fatalf("objective %v, want -0.05", sol.Objective)
			}
		})
	}
}
