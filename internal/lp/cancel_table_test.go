package lp

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// TestCancellationTable drives both backends into context expiry at tight,
// medium, and loose pivot deadlines and asserts the contract from DESIGN.md
// §10: an expired context always surfaces as Status Canceled with a zeroed
// primal point and a NaN objective — never a partial or NaN-laced solution.
// The countdownCtx expires after a fixed number of Err polls; the loops poll
// once per cancelCheckEvery pivots, so an N-pivot deadline allows at most
// N/cancelCheckEvery+1 polls before dying.
func TestCancellationTable(t *testing.T) {
	p := bigRandomLP(6)
	full, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("baseline status = %v", full.Status)
	}

	for _, deadline := range []int{1, 10, 100} {
		polls := deadline/cancelCheckEvery + 1
		if full.Iters <= polls*cancelCheckEvery {
			t.Fatalf("test LP too easy for a %d-pivot deadline: %d pivots total", deadline, full.Iters)
		}
		for _, backend := range []Backend{BackendDense, BackendSparse} {
			t.Run(fmt.Sprintf("%v/%d-pivots", backend, deadline), func(t *testing.T) {
				ctx := &countdownCtx{Context: context.Background(), remaining: polls}
				sol, err := Solve(p, WithBackend(backend), WithContext(ctx))
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != Canceled {
					t.Fatalf("status = %v, want Canceled", sol.Status)
				}
				if sol.Iters > polls*cancelCheckEvery {
					t.Fatalf("canceled after %d pivots, deadline allowed at most %d",
						sol.Iters, polls*cancelCheckEvery)
				}
				if !math.IsNaN(sol.Objective) {
					t.Fatalf("canceled solve leaked objective %v", sol.Objective)
				}
				for j, x := range sol.X {
					if x != 0 {
						t.Fatalf("canceled solve leaked partial X[%d] = %v", j, x)
					}
					if math.IsNaN(x) || math.IsInf(x, 0) {
						t.Fatalf("canceled solve leaked non-finite X[%d]", j)
					}
				}
			})
		}
	}
}

// TestCancellationTableWarmStart covers the same contract on the
// warm-started dual-simplex path, at deadlines tight enough that the dual
// repair cannot finish first (a unit RHS shift forces a few dozen dual
// pivots; 100-pivot deadlines would let the repair complete legitimately).
func TestCancellationTableWarmStart(t *testing.T) {
	p := bigRandomLP(8)
	sol, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("baseline status = %v", sol.Status)
	}
	for r := 0; r < p.NumConstraints(); r++ {
		p.SetRHS(r, p.RHS(r)-1)
	}
	repair, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(sol.Basis))
	if err != nil {
		t.Fatal(err)
	}
	if !repair.Stats.WarmStarted || repair.Stats.DualIters == 0 {
		t.Fatalf("perturbation produced no dual repair (warm=%v dual=%d)",
			repair.Stats.WarmStarted, repair.Stats.DualIters)
	}
	for _, deadline := range []int{1, 10} {
		polls := deadline/cancelCheckEvery + 1
		if repair.Iters <= polls*cancelCheckEvery {
			t.Fatalf("repair too short (%d pivots) for a %d-pivot deadline", repair.Iters, deadline)
		}
		t.Run(fmt.Sprintf("%d-pivots", deadline), func(t *testing.T) {
			ctx := &countdownCtx{Context: context.Background(), remaining: polls}
			warm, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(sol.Basis), WithContext(ctx))
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != Canceled {
				t.Fatalf("status = %v, want Canceled", warm.Status)
			}
			if !math.IsNaN(warm.Objective) {
				t.Fatalf("canceled warm solve leaked objective %v", warm.Objective)
			}
			for j, x := range warm.X {
				if x != 0 {
					t.Fatalf("canceled warm solve leaked partial X[%d] = %v", j, x)
				}
			}
		})
	}
}
