package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Presolve round-trip property test (PR 8 satellite): on randomized
// problems seeded with exactly the structures presolve eliminates —
// duplicate rows, canceling (empty) rows, singleton equality rows, and
// zero-cost slack-direction singleton columns — a presolved solve must
// agree with a direct (WithoutPresolve) solve on BOTH backends: statuses
// exactly, objectives and duals to 1e-9, and the postsolved primal point
// must satisfy the original constraints. Infeasible and unbounded problems
// round-trip their statuses too.

const rtTol = 1e-9

// randPresolvableProblem builds a bounded random LP and sprinkles in
// presolve-target structures. Duplicate rows are made STRICTLY looser than
// their originals so the dual on the dropped row is uniquely zero (exact
// duplicates have an ambiguous dual split and would flake the comparison).
func randPresolvableProblem(rng *rand.Rand) *Problem {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	n := 2 + rng.Intn(5)
	vars := make([]Var, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVar("", rng.NormFloat64())
	}
	// Box rows keep everything bounded so Optimal dominates the sample.
	for j := 0; j < n; j++ {
		p.MustConstraint("", Expr{}.Plus(vars[j], 1), LE, 1+9*rng.Float64())
	}
	m := 1 + rng.Intn(2*n)
	for i := 0; i < m; i++ {
		var e Expr
		for t := 0; t <= rng.Intn(3); t++ {
			e = e.Plus(vars[rng.Intn(n)], rng.NormFloat64())
		}
		rel := Rel(rng.Intn(3))
		rhs := 8 * rng.Float64()
		if rel == GE {
			rhs = -2 * rng.Float64() // loose lower bounds stay feasible
		}
		if rel == EQ {
			continue // free-form equalities infeasible too often; injected below
		}
		p.MustConstraint("", e, rel, rhs)
	}

	// A canceling row: terms accumulate to zero, so presolve sees an empty
	// satisfied row.
	v := vars[rng.Intn(n)]
	p.MustConstraint("", Expr{}.Plus(v, 2.5).Plus(v, -2.5), LE, rng.Float64())

	// A strictly-looser proportional duplicate of an existing row.
	if len(p.rows) > 0 {
		src := p.rows[rng.Intn(len(p.rows))]
		lambda := []float64{0.5, 2, 4}[rng.Intn(3)]
		var e Expr
		for _, t := range src.terms {
			e = e.Plus(t.Var, t.Coef*lambda)
		}
		loosen := 0.5 + rng.Float64()
		switch src.rel {
		case LE:
			p.MustConstraint("", e, LE, src.rhs*lambda+loosen)
		case GE:
			p.MustConstraint("", e, GE, src.rhs*lambda-loosen)
		case EQ:
			p.MustConstraint("", e, EQ, src.rhs*lambda)
		}
	}

	// A singleton equality pinning one variable.
	if rng.Intn(2) == 0 {
		a := 0.5 + 1.5*rng.Float64()
		if rng.Intn(2) == 0 {
			a = -a
		}
		val := 0.5 * rng.Float64()
		p.MustConstraint("", Expr{}.Plus(vars[rng.Intn(n)], a), EQ, a*val)
	}

	// A zero-cost column appearing only in one equality row: the column is
	// that row's slack in disguise.
	if rng.Intn(2) == 0 {
		s := p.AddVar("slacklike", 0)
		e := Expr{}.Plus(vars[rng.Intn(n)], 1+rng.Float64()).Plus(s, 1)
		p.MustConstraint("", e, EQ, 2+4*rng.Float64())
	}
	return p
}

func solveBoth(t *testing.T, p *Problem, backend Backend) (*Solution, *Solution) {
	t.Helper()
	pre, err := Solve(p, WithBackend(backend))
	if err != nil {
		t.Fatalf("presolved solve: %v", err)
	}
	direct, err := Solve(p, WithBackend(backend), WithoutPresolve())
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	return pre, direct
}

func checkRoundTrip(t *testing.T, p *Problem, pre, direct *Solution) {
	t.Helper()
	if pre.Status != direct.Status {
		t.Fatalf("status mismatch: presolved %v, direct %v", pre.Status, direct.Status)
	}
	if pre.Status != Optimal {
		return
	}
	scale := math.Max(1, math.Abs(direct.Objective))
	if math.Abs(pre.Objective-direct.Objective) > rtTol*scale {
		t.Fatalf("objective mismatch: presolved %.15g, direct %.15g", pre.Objective, direct.Objective)
	}
	if len(pre.Dual) != len(direct.Dual) {
		t.Fatalf("dual length %d, want %d", len(pre.Dual), len(direct.Dual))
	}
	for i := range pre.Dual {
		ds := math.Max(1, math.Abs(direct.Dual[i]))
		if math.Abs(pre.Dual[i]-direct.Dual[i]) > rtTol*ds {
			t.Fatalf("dual[%d] mismatch: presolved %.15g, direct %.15g\nproblem:\n%s",
				i, pre.Dual[i], direct.Dual[i], p)
		}
	}
	// The postsolved point must satisfy the ORIGINAL rows.
	for i, r := range p.rows {
		lhs := 0.0
		for _, term := range r.terms {
			lhs += term.Coef * pre.X[term.Var]
		}
		viol := 0.0
		switch r.rel {
		case LE:
			viol = lhs - r.rhs
		case GE:
			viol = r.rhs - lhs
		case EQ:
			viol = math.Abs(lhs - r.rhs)
		}
		if viol > 1e-6 {
			t.Fatalf("row %d violated by %g at postsolved point", i, viol)
		}
	}
	for j, v := range pre.X {
		if v < -1e-7 {
			t.Fatalf("x[%d] = %g negative after postsolve", j, v)
		}
	}
}

func TestPresolveRoundTripProperty(t *testing.T) {
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		t.Run(backend.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(8021))
			optimal := 0
			for trial := 0; trial < 150; trial++ {
				p := randPresolvableProblem(rng)
				pre, direct := solveBoth(t, p, backend)
				checkRoundTrip(t, p, pre, direct)
				if pre.Status == Optimal {
					optimal++
					if backend == BackendSparse && len(pre.Basis) > 0 {
						// The mapped basis must warm start the original
						// problem back to the same optimum.
						warm, err := Solve(p, WithBackend(backend), WithWarmBasis(pre.Basis))
						if err != nil {
							t.Fatalf("trial %d: warm restart: %v", trial, err)
						}
						if warm.Status != Optimal ||
							math.Abs(warm.Objective-pre.Objective) > rtTol*math.Max(1, math.Abs(pre.Objective)) {
							t.Fatalf("trial %d: warm restart from mapped basis: status %v obj %.15g, want optimal %.15g",
								trial, warm.Status, warm.Objective, pre.Objective)
						}
					}
				}
			}
			if optimal < 100 {
				t.Fatalf("only %d/150 trials optimal; generator drifted, property under-exercised", optimal)
			}
		})
	}
}

// TestPresolveRoundTripInfeasible covers infeasibility both where presolve
// itself proves it (inconsistent singleton, conflicting duplicates, bad
// empty row) and where only the backend can (crossed bounds).
func TestPresolveRoundTripInfeasible(t *testing.T) {
	cases := map[string]func() *Problem{
		"singleton-negative": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			p.MustConstraint("", Expr{}.Plus(x, 2), EQ, -6) // x = −3 < 0
			return p
		},
		"duplicate-conflict": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 2), EQ, 4)
			p.MustConstraint("", Expr{}.Plus(x, 2).Plus(y, 4), EQ, 9) // = 2·row0 but rhs ≠ 8
			return p
		},
		"empty-row": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(x, -1), GE, 3) // 0 ≥ 3
			return p
		},
		"crossed-bounds": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1), LE, 1)
			p.MustConstraint("", Expr{}.Plus(x, 1), GE, 2)
			return p
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			for _, backend := range []Backend{BackendDense, BackendSparse} {
				pre, direct := solveBoth(t, build(), backend)
				if pre.Status != Infeasible || direct.Status != Infeasible {
					t.Fatalf("%s: presolved %v, direct %v, want infeasible/infeasible",
						backend, pre.Status, direct.Status)
				}
			}
		})
	}
}

// TestPresolveRoundTripUnbounded covers the unbounded status, including the
// all-rows-eliminated path where the hook itself must detect the ray.
func TestPresolveRoundTripUnbounded(t *testing.T) {
	cases := map[string]func() *Problem{
		"free-improving-var": func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 1)
			p.MustConstraint("", Expr{}.Plus(y, 1), LE, 5)
			_ = x // x unbounded above, improving
			return p
		},
		"rows-all-eliminated": func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", -1) // improving without limit
			y := p.AddVar("y", 2)
			p.MustConstraint("", Expr{}.Plus(y, 1), EQ, 3)                 // fixes y, row removed
			p.MustConstraint("", Expr{}.Plus(x, 0.5).Plus(x, -0.5), LE, 1) // cancels to empty
			return p
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			for _, backend := range []Backend{BackendDense, BackendSparse} {
				pre, direct := solveBoth(t, build(), backend)
				if pre.Status != Unbounded || direct.Status != Unbounded {
					t.Fatalf("%s: presolved %v, direct %v, want unbounded/unbounded",
						backend, pre.Status, direct.Status)
				}
			}
		})
	}
}

// TestPresolveFullyEliminated exercises OutcomeSolved: every variable
// pinned, every row consumed, solution assembled purely from the journal.
func TestPresolveFullyEliminated(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", -2)
	p.MustConstraint("", Expr{}.Plus(x, 2), EQ, 5)   // x = 2.5
	p.MustConstraint("", Expr{}.Plus(y, -1), EQ, -4) // y = 4
	p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 1), LE, 20)

	for _, backend := range []Backend{BackendDense, BackendSparse} {
		pre, direct := solveBoth(t, p, backend)
		checkRoundTrip(t, p, pre, direct)
		if pre.Status != Optimal {
			t.Fatalf("%s: status %v", backend, pre.Status)
		}
		if math.Abs(pre.Objective-(-0.5)) > rtTol {
			t.Fatalf("%s: objective %g, want -0.5", backend, pre.Objective)
		}
		if math.Abs(pre.X[0]-2.5) > rtTol || math.Abs(pre.X[1]-4) > rtTol {
			t.Fatalf("%s: X = %v, want [2.5 4]", backend, pre.X)
		}
	}
}
