package lp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"powercap/internal/faultinject"
	"powercap/internal/obs"
)

// This file defines the pluggable solver engine: a Solver interface over
// interchangeable simplex backends, an options pattern for selecting and
// tuning them, and the problem-space basis encoding that lets one solve warm
// start the next (see DESIGN.md "Solver engine architecture").

// ErrInfeasible is the package-level infeasibility sentinel. Solve itself
// reports infeasibility through Solution.Status (a malformed problem is the
// only error condition), but higher layers wrap this sentinel so that
// errors.Is(err, lp.ErrInfeasible) holds through core, flowilp, and the
// public powercap API.
var ErrInfeasible = errors.New("lp: infeasible")

// Backend selects a simplex implementation.
type Backend int

const (
	// BackendDense is the full-tableau two-phase primal simplex
	// (simplex.go): O(m·n) memory and per-pivot work, numerically simple,
	// the reference implementation.
	BackendDense Backend = iota
	// BackendSparse is the revised simplex over sparse column storage with
	// a product-form basis inverse (revised.go): per-pivot work scales
	// with the nonzero count, and it accepts warm-start bases, repairing
	// primal infeasibility after RHS changes with dual simplex pivots.
	BackendSparse
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Engine selects the sparse backend's basis-inverse implementation (see
// internal/lp/basis). The dense backend ignores it.
type Engine int

const (
	// EngineAuto picks the default engine (currently the sparse LU).
	EngineAuto Engine = iota
	// EngineLU is the Markowitz-ordered sparse LU factorization with
	// eta-on-LU pivot updates — the default.
	EngineLU
	// EngineEta is the original product-form-of-the-inverse eta file,
	// retained as the reference engine and the resilience-ladder fallback.
	EngineEta
)

// resolve maps EngineAuto to the concrete default.
func (e Engine) resolve() Engine {
	if e == EngineAuto {
		return EngineLU
	}
	return e
}

// String names the engine.
func (e Engine) String() string {
	switch e.resolve() {
	case EngineLU:
		return "lu"
	case EngineEta:
		return "eta"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name as accepted by CLI -engine flags.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "lu":
		return EngineLU, nil
	case "eta":
		return EngineEta, nil
	default:
		return 0, fmt.Errorf("lp: unknown engine %q (want auto, lu, or eta)", s)
	}
}

// Pricing selects the sparse backend's entering-variable rule. The dense
// backend ignores it.
type Pricing int

const (
	// PricingAuto picks the default rule (currently steepest edge).
	PricingAuto Pricing = iota
	// PricingSteepest is projected steepest edge (devex-style reference
	// weights, reset on refactorization) with partial pricing and
	// incremental reduced costs — the default.
	PricingSteepest
	// PricingDantzig is the classic full most-negative-reduced-cost scan,
	// recomputing duals every pivot. Retained as the reference rule; it
	// reproduces the pre-engine pivot sequences exactly.
	PricingDantzig
)

// resolve maps PricingAuto to the concrete default.
func (p Pricing) resolve() Pricing {
	if p == PricingAuto {
		return PricingSteepest
	}
	return p
}

// String names the pricing rule.
func (p Pricing) String() string {
	switch p.resolve() {
	case PricingSteepest:
		return "steepest"
	case PricingDantzig:
		return "dantzig"
	default:
		return fmt.Sprintf("Pricing(%d)", int(p))
	}
}

// ParsePricing parses a pricing-rule name as accepted by CLI -pricing flags.
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "", "auto":
		return PricingAuto, nil
	case "steepest", "se":
		return PricingSteepest, nil
	case "dantzig":
		return PricingDantzig, nil
	default:
		return 0, fmt.Errorf("lp: unknown pricing rule %q (want auto, steepest, or dantzig)", s)
	}
}

// Options collects per-solve settings. Construct via Option functions.
type Options struct {
	// Backend selects the simplex implementation (default dense).
	Backend Backend
	// Engine selects the sparse backend's basis-inverse engine
	// (default EngineAuto → LU).
	Engine Engine
	// Pricing selects the sparse backend's entering rule
	// (default PricingAuto → steepest edge).
	Pricing Pricing
	// MaxIters overrides the pivot budget (0 = automatic, proportional to
	// problem size; Problem.SetMaxIters applies when this is 0).
	MaxIters int
	// StallWindow is how many non-improving Dantzig iterations are
	// tolerated before switching to Bland's anti-cycling rule
	// (0 = default 200).
	StallWindow int
	// NoPresolve disables the presolve/scaling pass (internal/lp/presolve)
	// and solves the stated problem directly. Intended for tests and
	// A/B instrumentation; presolve is semantically invisible otherwise.
	NoPresolve bool
	// WarmBasis is a starting basis from a previous Solution.Basis for a
	// problem with the same variables and a prefix of the same rows
	// (RHS values and appended rows may differ). Backends that cannot
	// exploit it (dense) ignore it; the sparse backend falls back to a
	// cold solve if the basis is unusable, so a stale or mismatched basis
	// costs time, never correctness.
	WarmBasis []int
	// Ctx, when non-nil, lets the caller abandon a solve mid-pivot: the
	// pivot loops poll ctx.Err() every cancelCheckEvery iterations and
	// return Status Canceled once it is non-nil. Long-running services
	// thread per-request deadlines through here so an abandoned request
	// stops burning simplex pivots.
	Ctx context.Context
	// SpanCtx, when non-nil, carries obs span parentage only — it never
	// feeds cancellation. Callers that want both pass the same context to
	// WithContext and WithSpanContext; callers that must preserve the
	// "background context means no cancel polling" fast path (internal/core)
	// can trace without arming the polls.
	SpanCtx context.Context
}

// Option mutates Options.
type Option func(*Options)

// WithBackend selects the simplex backend.
func WithBackend(b Backend) Option { return func(o *Options) { o.Backend = b } }

// WithEngine selects the sparse backend's basis-inverse engine.
func WithEngine(e Engine) Option { return func(o *Options) { o.Engine = e } }

// WithPricing selects the sparse backend's entering-variable rule.
func WithPricing(p Pricing) Option { return func(o *Options) { o.Pricing = p } }

// WithMaxIters overrides the pivot budget for this solve.
func WithMaxIters(n int) Option { return func(o *Options) { o.MaxIters = n } }

// WithStallWindow overrides the Dantzig→Bland stall threshold.
func WithStallWindow(n int) Option { return func(o *Options) { o.StallWindow = n } }

// WithoutPresolve disables the presolve/scaling pass for this solve.
func WithoutPresolve() Option { return func(o *Options) { o.NoPresolve = true } }

// WithWarmBasis supplies a starting basis from a previous Solution.Basis.
func WithWarmBasis(basis []int) Option { return func(o *Options) { o.WarmBasis = basis } }

// WithContext makes the solve cancelable: when ctx is canceled or its
// deadline passes, the pivot loops stop at their next poll and the solve
// returns Status Canceled.
func WithContext(ctx context.Context) Option { return func(o *Options) { o.Ctx = ctx } }

// WithSpanContext supplies the context obs spans parent onto, without
// enabling cancellation polling. With tracing disarmed this costs nothing.
func WithSpanContext(ctx context.Context) Option { return func(o *Options) { o.SpanCtx = ctx } }

// spanContext resolves where backend spans should parent: the explicit span
// context if set, else the cancellation context. May be nil (obs.Start
// accepts nil and falls back to the global trace).
func (o *Options) spanContext() context.Context {
	if o.SpanCtx != nil {
		return o.SpanCtx
	}
	return o.Ctx
}

// cancelCheckEvery is how many pivots pass between context polls. Polling
// is one atomic load inside ctx.Err(), but scheduling-LP pivots can be
// microseconds, so the loops amortize the check.
const cancelCheckEvery = 32

// cancelFunc converts an Options context into a poll closure for the
// backends (nil when no context was supplied).
func (o *Options) cancelFunc() func() bool {
	if o.Ctx == nil {
		return nil
	}
	ctx := o.Ctx
	return func() bool { return ctx.Err() != nil }
}

// Solver is the pluggable engine interface: anything that can solve a
// Problem. The package-level Solve function is the default implementation;
// custom engines (instrumented, remote, cached) can wrap it.
type Solver interface {
	Solve(p *Problem, opts ...Option) (*Solution, error)
}

// SolveStats instruments one Solve call.
type SolveStats struct {
	// Backend names the implementation that produced the solution.
	Backend string
	// Engine names the basis-inverse engine ("eta" or "lu"; sparse backend
	// only, empty for dense).
	Engine string `json:",omitempty"`
	// Pricing names the entering rule ("dantzig" or "steepest"; sparse
	// backend only, empty for dense).
	Pricing string `json:",omitempty"`
	// Phase1Iters and Phase2Iters count primal simplex pivots per phase;
	// DualIters counts dual simplex pivots (warm starts only).
	Phase1Iters int
	Phase2Iters int
	DualIters   int
	// Refactorizations counts basis reinversions (sparse backend).
	Refactorizations int
	// PresolveRows and PresolveCols count the rows/columns the presolve
	// pass eliminated before the backend ran.
	PresolveRows int `json:",omitempty"`
	PresolveCols int `json:",omitempty"`
	// WarmStarted reports whether a supplied warm basis was actually used
	// (false when it was absent, unusable, or the backend ignored it).
	WarmStarted bool
	// BlandActivated reports whether the anti-cycling fallback engaged;
	// BlandActivations counts how many times it switched on (it can engage,
	// relax on objective progress, and re-engage within one solve).
	BlandActivated   bool
	BlandActivations int `json:",omitempty"`
	// MaxEtaLen is the peak basis-update (eta) file length — the growth
	// proxy for basis conditioning (sparse backend).
	MaxEtaLen int `json:",omitempty"`
	// PivotRejections counts factorization rows the LU engine's threshold
	// (Markowitz-tie-broken) pivoting rejected; FactorTauRetries counts
	// factorizations retried under strict partial pivoting after the
	// relaxed threshold hit a vanishing pivot.
	PivotRejections  int `json:",omitempty"`
	FactorTauRetries int `json:",omitempty"`
	// NaNRecoveries counts refactorize-and-retry repairs of non-finite
	// working state (see revised.recoverNumerical).
	NaNRecoveries int `json:",omitempty"`
	// RowNormMax and RowNormMin are the extreme row norms (max-abs per row)
	// of the constraint matrix handed to the backend after presolve
	// scaling; their ratio is the scaling condition proxy.
	RowNormMax float64 `json:",omitempty"`
	RowNormMin float64 `json:",omitempty"`
	// Wall is the end-to-end solve time.
	Wall time.Duration
}

// RowNormRatio is the scaling condition proxy: max/min row norm of the
// matrix the backend actually factorized (0 when unknown).
func (s SolveStats) RowNormRatio() float64 {
	if s.RowNormMin <= 0 {
		return 0
	}
	return s.RowNormMax / s.RowNormMin
}

// Pivots is the total pivot count across phases.
func (s SolveStats) Pivots() int { return s.Phase1Iters + s.Phase2Iters + s.DualIters }

// Basis encoding: Solution.Basis has one entry per constraint row, naming
// the variable basic in that row in problem space:
//
//   - an entry v < NumVars() is the structural variable v;
//   - an entry NumVars()+r is row r's canonical auxiliary variable (the
//     slack of a ≤ row, the surplus of a ≥ row, the artificial of an = row).
//
// The encoding is stable under appending rows (existing entries keep their
// meaning), which is what lets branch-and-bound warm start child nodes from
// the parent basis: rows added for branches simply take their own auxiliary
// as the initial basic variable.

// funcSolver adapts a function to the Solver interface.
type funcSolver func(p *Problem, opts ...Option) (*Solution, error)

func (f funcSolver) Solve(p *Problem, opts ...Option) (*Solution, error) { return f(p, opts...) }

// DefaultSolver is the package's own engine as a Solver value.
var DefaultSolver Solver = funcSolver(Solve)

// Solve runs the selected backend on p. The returned error is non-nil only
// for malformed problems; infeasibility and unboundedness are reported
// through Solution.Status.
func Solve(p *Problem, opts ...Option) (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrNoVariables
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if o.MaxIters == 0 {
		o.MaxIters = p.maxIters
	}
	if o.StallWindow == 0 {
		o.StallWindow = stallWindow
	}
	if faultinject.Armed() && faultinject.Fire(faultinject.SlowSolve) {
		sleepSlow(o.Ctx)
	}

	sctx, span := obs.Start(o.spanContext(), "lp.solve")
	defer span.End()
	span.SetAttr("backend", o.Backend.String())
	if o.Backend == BackendSparse {
		span.SetAttr("engine", o.Engine.String())
	}
	span.SetAttr("vars", p.NumVars())
	span.SetAttr("rows", p.NumConstraints())
	o.SpanCtx = sctx // backends parent their phase spans under lp.solve

	start := time.Now()
	var sol *Solution
	var err error
	if o.NoPresolve {
		sol, err = dispatchBackend(p, &o)
	} else {
		sol, err = solvePresolved(p, &o)
	}
	if err != nil {
		return nil, err
	}
	sol.Stats.Backend = o.Backend.String()
	sol.Stats.Wall = time.Since(start)
	span.SetAttr("status", sol.Status.String())
	span.SetAttr("pivots", sol.Stats.Pivots())
	return sol, nil
}

// dispatchBackend routes a (possibly presolve-reduced) problem to the
// selected simplex implementation.
func dispatchBackend(p *Problem, o *Options) (*Solution, error) {
	switch o.Backend {
	case BackendDense:
		return solveDense(p, o)
	case BackendSparse:
		return solveSparse(p, o)
	default:
		return nil, fmt.Errorf("lp: unknown backend %v", o.Backend)
	}
}

// sleepSlow implements the SlowSolve fault: a context-aware delay of the
// configured duration, injected before the backend runs so per-rung deadline
// slices in internal/resilience get exercised.
func sleepSlow(ctx context.Context) {
	d := faultinject.SlowDelay()
	if d <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// finishSolution fills the sense-dependent fields shared by all backends:
// the objective in the problem's own sense (from the extracted primal
// point) and the dual sign flip for maximization problems.
func finishSolution(p *Problem, sol *Solution) {
	obj := 0.0
	for j, c := range p.obj {
		obj += c * sol.X[j]
	}
	sol.Objective = obj
	if p.sense == Maximize {
		// Backends minimize internally; undo the cost negation on duals.
		for i := range sol.Dual {
			sol.Dual[i] = -sol.Dual[i]
		}
	}
}
