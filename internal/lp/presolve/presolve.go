// Package presolve implements an LP presolve and scaling layer over a
// solver-neutral problem representation (DESIGN.md §14).
//
// The pass runs before either simplex backend and has two jobs:
//
//   - Eliminations (Mode Full): drop empty and duplicate rows, fix variables
//     pinned by singleton equality rows, and remove or re-slack zero-cost
//     singleton columns. Every elimination is journaled so Postsolve can
//     restore the primal point, the dual vector, and the basis of the
//     ORIGINAL problem exactly — shadow prices (core.MarginalCurve) are
//     unchanged by presolve.
//
//   - Scaling (both modes): geometric-mean equilibration of rows then
//     columns, with every factor rounded to a power of two so the scaled
//     coefficients are bit-exact transforms of the originals (no rounding
//     error enters or leaves the solve). Scaling only engages when the
//     coefficient magnitudes actually spread past a threshold; well-scaled
//     problems pass through bit-identical, preserving pivot-for-pivot
//     reproducibility of the unscaled trajectories.
//
// Mode ScaleOnly skips the eliminations; warm-started solves use it because
// a warm basis is indexed by the original rows and columns, and scaling is
// the only transform that preserves both index spaces.
package presolve

import "math"

// Rel mirrors the constraint relations of the lp package without importing
// it (presolve must stay import-free of its consumer).
type Rel int8

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

// Row is one constraint a·x Rel RHS in sparse form.
type Row struct {
	Cols []int
	Vals []float64
	Rel  Rel
	RHS  float64
}

// Problem is the neutral LP snapshot handed to Run. Cost is in the
// problem's own sense; presolve only ever tests costs against zero and
// feeds them through the (sense-invariant) dual recovery identity, so the
// sense itself never needs to be known here.
type Problem struct {
	NumVars int
	Cost    []float64
	Rows    []Row
}

// Mode selects how aggressive the pass is.
type Mode int

const (
	// ScaleOnly applies equilibration but no eliminations; row and column
	// index spaces are preserved (required under warm starts).
	ScaleOnly Mode = iota
	// Full applies eliminations then scaling.
	Full
)

// Outcome reports what Run concluded.
type Outcome int

const (
	// OutcomeReduced means the reduced problem should be solved and the
	// solution mapped back through Postsolve*.
	OutcomeReduced Outcome = iota
	// OutcomeInfeasible means presolve proved the problem infeasible
	// (an inconsistent empty/duplicate row or a fixed variable forced
	// negative); no solve is needed.
	OutcomeInfeasible
	// OutcomeSolved means eliminations consumed the entire problem: every
	// variable is fixed and every row accounted for. PostsolvePrimal /
	// PostsolveDual / MapBasis on empty inputs yield the full solution.
	OutcomeSolved
)

// Feasibility and merge tolerances, aligned with the solver's own epsFeas.
const (
	epsFeas  = 1e-7
	epsMerge = 1e-9
)

// scaleSpread is the max/min coefficient-magnitude ratio above which
// equilibration engages. Below it the matrix is already well conditioned
// and identity scaling preserves the historical pivot trajectories exactly.
const scaleSpread = 1 << 12

// step kinds in the elimination journal.
type stepKind int8

const (
	stepFixVar   stepKind = iota // singleton EQ row fixed col at val; row removed
	stepDropRow                  // redundant row removed; its dual is 0
	stepFreeCol                  // redundant zero-cost slack-direction col removed; x = 0
	stepSlackCol                 // zero-cost singleton col turned an EQ row into LE/GE; x = row slack
)

// step is one journal entry. Fields are in ORIGINAL row/column indices and
// original (unscaled) numbers.
type step struct {
	kind stepKind
	row  int
	col  int
	val  float64 // stepFixVar: the fixed value
	coef float64 // stepFixVar / stepSlackCol: the pivotal coefficient a_rj
	cost float64 // stepFixVar: original cost of col

	// stepFixVar: the column of col over the ORIGINAL rows (for dual
	// recovery of the removed row).
	colRows []int
	colVals []float64

	// stepSlackCol: snapshot of the converted row (terms excluding col,
	// with the RHS as of conversion time) for primal slack recovery. The
	// snapshot is self-consistent under later substitutions: a term fixed
	// later contributes coef·X exactly where the later substitution would
	// have moved coef·val into the RHS.
	rowCols []int
	rowVals []float64
	rhs     float64
}

// Reduction is the output of Run: the reduced problem plus everything
// needed to map a reduced solution back to the original index spaces.
type Reduction struct {
	Outcome Outcome
	P       *Problem // reduced and scaled (nil unless OutcomeReduced)

	// RowScale/ColScale are the power-of-two equilibration factors, per
	// REDUCED row/column (all 1 when scaling did not engage).
	RowScale []float64
	ColScale []float64

	// RowMap/VarMap translate reduced indices to original ones.
	RowMap []int
	VarMap []int

	OrigVars int
	OrigRows int

	// RowsRemoved/ColsRemoved count eliminations (for SolveStats).
	RowsRemoved int
	ColsRemoved int
	// Scaled reports whether equilibration engaged.
	Scaled bool
	// RowNormMax/RowNormMin are the extreme max-abs row norms of the final
	// reduced matrix (post-scaling when scaling engaged) — the scaling
	// condition proxy surfaced in SolveStats. Zero when the reduced
	// problem has no nonzero rows.
	RowNormMax float64
	RowNormMin float64

	steps []step
}

// workRow is a mutable row during elimination.
type workRow struct {
	cols  []int
	vals  []float64
	rel   Rel
	rhs   float64
	alive bool
}

// Run presolves p. The input is never mutated.
func Run(p *Problem, mode Mode) *Reduction {
	r := &Reduction{
		Outcome:  OutcomeReduced,
		OrigVars: p.NumVars,
		OrigRows: len(p.Rows),
	}

	// Working copy with duplicate terms accumulated and zeros dropped,
	// mirroring how both backends ingest rows.
	rows := make([]workRow, len(p.Rows))
	acc := map[int]float64{}
	for i, row := range p.Rows {
		clear(acc)
		for k, c := range row.Cols {
			acc[c] += row.Vals[k]
		}
		w := workRow{rel: row.Rel, rhs: row.RHS, alive: true}
		for c := range acc {
			if acc[c] != 0 {
				w.cols = append(w.cols, c)
			}
		}
		sortIntsWith(w.cols)
		w.vals = make([]float64, len(w.cols))
		for k, c := range w.cols {
			w.vals[k] = acc[c]
		}
		rows[i] = w
	}
	colAlive := make([]bool, p.NumVars)
	for j := range colAlive {
		colAlive[j] = true
	}

	if mode == Full {
		if !r.eliminate(p, rows, colAlive) {
			r.Outcome = OutcomeInfeasible
			return r
		}
	}

	// Assemble the reduced problem over surviving rows and columns.
	r.VarMap = r.VarMap[:0]
	colNew := make([]int, p.NumVars)
	for j := range colNew {
		colNew[j] = -1
	}
	for j, alive := range colAlive {
		if alive {
			colNew[j] = len(r.VarMap)
			r.VarMap = append(r.VarMap, j)
		}
	}
	for i := range rows {
		if rows[i].alive {
			r.RowMap = append(r.RowMap, i)
		}
	}
	if len(r.VarMap) == 0 {
		// Everything eliminated (every surviving row would need a column).
		r.Outcome = OutcomeSolved
		return r
	}

	rp := &Problem{NumVars: len(r.VarMap), Cost: make([]float64, len(r.VarMap))}
	for jn, jo := range r.VarMap {
		rp.Cost[jn] = p.Cost[jo]
	}
	rp.Rows = make([]Row, 0, len(r.RowMap))
	for _, io := range r.RowMap {
		w := &rows[io]
		nr := Row{Rel: w.rel, RHS: w.rhs,
			Cols: make([]int, len(w.cols)), Vals: make([]float64, len(w.cols))}
		for k, c := range w.cols {
			nr.Cols[k] = colNew[c]
			nr.Vals[k] = w.vals[k]
		}
		rp.Rows = append(rp.Rows, nr)
	}
	r.P = rp
	r.scale()
	return r
}

// eliminate applies the Full-mode reductions to fixpoint. Returns false on
// proven infeasibility.
func (r *Reduction) eliminate(p *Problem, rows []workRow, colAlive []bool) bool {
	// Original column index, captured before any substitution, for the
	// dual recovery of removed singleton rows.
	origColRows := make([][]int, p.NumVars)
	origColVals := make([][]float64, p.NumVars)
	for i := range rows {
		for k, c := range rows[i].cols {
			origColRows[c] = append(origColRows[c], i)
			origColVals[c] = append(origColVals[c], rows[i].vals[k])
		}
	}

	for pass := 0; pass < 16; pass++ {
		changed := false

		// Empty rows and singleton equality rows.
		for i := range rows {
			w := &rows[i]
			if !w.alive {
				continue
			}
			switch len(w.cols) {
			case 0:
				if !emptyRowFeasible(w.rel, w.rhs) {
					return false
				}
				w.alive = false
				r.RowsRemoved++
				r.steps = append(r.steps, step{kind: stepDropRow, row: i})
				changed = true
			case 1:
				if w.rel != EQ {
					continue
				}
				j, a := w.cols[0], w.vals[0]
				v := w.rhs / a
				if v < -epsFeas {
					return false
				}
				if v < 0 {
					v = 0
				}
				r.steps = append(r.steps, step{
					kind: stepFixVar, row: i, col: j, val: v, coef: a,
					cost:    p.Cost[j],
					colRows: origColRows[j], colVals: origColVals[j],
				})
				colAlive[j] = false
				w.alive = false
				r.RowsRemoved++
				r.ColsRemoved++
				substitute(rows, j, v)
				changed = true
			}
		}

		// Duplicate (exactly proportional, same-relation) rows.
		dupChanged, feasible := dropDuplicates(rows, r)
		if !feasible {
			return false
		}
		if dupChanged {
			changed = true
		}

		// Zero-cost singleton columns: slack-direction ones are redundant
		// (drop, x = 0); on an equality row the column IS the row's slack,
		// so the row relaxes to an inequality and the column goes away.
		count := make([]int, p.NumVars)
		where := make([]int, p.NumVars)
		for i := range rows {
			if !rows[i].alive {
				continue
			}
			for _, c := range rows[i].cols {
				count[c]++
				where[c] = i
			}
		}
		for j := range colAlive {
			if !colAlive[j] || p.Cost[j] != 0 || count[j] != 1 {
				continue
			}
			i := where[j]
			w := &rows[i]
			k := indexOf(w.cols, j)
			a := w.vals[k]
			switch {
			case (w.rel == LE && a > 0) || (w.rel == GE && a < 0):
				// An extra slack (LE) / surplus (GE): x = 0 extends any
				// reduced optimum, and the dual constraint of the column
				// holds with the row's own dual sign.
				r.steps = append(r.steps, step{kind: stepFreeCol, col: j})
				colAlive[j] = false
				r.ColsRemoved++
				removeTerm(w, k)
				changed = true
			case w.rel == EQ:
				// a·x_j + rest = b, x_j ≥ 0 ⇔ rest ≤ b (a > 0) or
				// rest ≥ b (a < 0); x_j is recovered as the slack.
				st := step{kind: stepSlackCol, row: i, col: j, coef: a, rhs: w.rhs}
				for t, c := range w.cols {
					if c == j {
						continue
					}
					st.rowCols = append(st.rowCols, c)
					st.rowVals = append(st.rowVals, w.vals[t])
				}
				r.steps = append(r.steps, st)
				colAlive[j] = false
				r.ColsRemoved++
				removeTerm(w, k)
				if a > 0 {
					w.rel = LE
				} else {
					w.rel = GE
				}
				changed = true
			}
		}

		if !changed {
			break
		}
	}
	return true
}

// substitute removes variable j (fixed at v) from every live row.
func substitute(rows []workRow, j int, v float64) {
	for i := range rows {
		w := &rows[i]
		if !w.alive {
			continue
		}
		if k := indexOf(w.cols, j); k >= 0 {
			w.rhs -= w.vals[k] * v
			removeTerm(w, k)
		}
	}
}

// dropDuplicates merges exactly-proportional same-relation row pairs,
// keeping the tighter of the two. Reports whether anything changed and
// whether the system stayed consistent (an equality pair with conflicting
// right-hand sides proves infeasibility).
func dropDuplicates(rows []workRow, r *Reduction) (bool, bool) {
	type sig struct {
		rel   Rel
		n     int
		c0    int
		ratio float64 // vals[1]/vals[0], 0 for singletons
	}
	changed := false
	buckets := map[sig][]int{}
	for i := range rows {
		w := &rows[i]
		if !w.alive || len(w.cols) == 0 {
			continue
		}
		s := sig{rel: w.rel, n: len(w.cols), c0: w.cols[0]}
		if len(w.vals) > 1 {
			s.ratio = w.vals[1] / w.vals[0]
		}
		candidates := buckets[s]
		merged := false
		for t, i2 := range candidates {
			w2 := &rows[i2]
			lambda, ok := proportional(w2, w)
			if !ok {
				continue
			}
			// w = λ·w2 coefficient-wise, λ > 0; b is w's bound in w2's
			// normalization. The LOOSER row is dropped (its slack is
			// strictly positive whenever the pair separates, so zero is its
			// complementary dual); the binding bound must stay on the row
			// that owns it or its shadow price lands on the wrong index.
			b := w.rhs / lambda
			drop := i // default: w is redundant
			switch w.rel {
			case LE:
				if b < w2.rhs {
					drop = i2
				}
			case GE:
				if b > w2.rhs {
					drop = i2
				}
			case EQ:
				if math.Abs(b-w2.rhs) > epsMerge*math.Max(1, math.Abs(w2.rhs)) {
					return changed, false
				}
			}
			rows[drop].alive = false
			r.RowsRemoved++
			r.steps = append(r.steps, step{kind: stepDropRow, row: drop})
			if drop == i2 {
				candidates[t] = i // the survivor represents the bucket now
			}
			changed = true
			merged = true
			break
		}
		if !merged {
			buckets[s] = append(candidates, i)
		}
	}
	return changed, true
}

// proportional reports whether b = λ·a for some λ > 0 (exact float
// equality per coefficient, so only true duplicates merge).
func proportional(a, b *workRow) (float64, bool) {
	if len(a.cols) != len(b.cols) {
		return 0, false
	}
	lambda := b.vals[0] / a.vals[0]
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return 0, false
	}
	for k := range a.cols {
		if a.cols[k] != b.cols[k] || a.vals[k]*lambda != b.vals[k] {
			return 0, false
		}
	}
	return lambda, true
}

// emptyRowFeasible checks 0 Rel rhs under the solver's feasibility slack.
func emptyRowFeasible(rel Rel, rhs float64) bool {
	switch rel {
	case LE:
		return rhs >= -epsFeas
	case GE:
		return rhs <= epsFeas
	default:
		return math.Abs(rhs) <= epsFeas
	}
}

// scale equilibrates the reduced matrix with power-of-two factors when the
// coefficient spread warrants it. RowScale/ColScale are always populated.
func (r *Reduction) scale() {
	p := r.P
	r.RowScale = ones(len(p.Rows))
	r.ColScale = ones(p.NumVars)

	minA, maxA := math.Inf(1), 0.0
	for i := range p.Rows {
		for _, v := range p.Rows[i].Vals {
			a := math.Abs(v)
			if a < minA {
				minA = a
			}
			if a > maxA {
				maxA = a
			}
		}
	}
	if maxA == 0 || !finite(maxA) || !finite(minA) || maxA/minA <= scaleSpread {
		r.measureRowNorms()
		return
	}
	r.Scaled = true

	// Geometric-mean row pass, then column pass, each rounded to 2^k.
	for i := range p.Rows {
		r.RowScale[i] = pow2Inverse(geomean(p.Rows[i].Vals))
	}
	logSum := make([]float64, p.NumVars)
	cnt := make([]int, p.NumVars)
	for i := range p.Rows {
		for k, c := range p.Rows[i].Cols {
			a := math.Abs(p.Rows[i].Vals[k]) * r.RowScale[i]
			if a > 0 && finite(a) {
				logSum[c] += math.Log2(a)
				cnt[c]++
			}
		}
	}
	for j := 0; j < p.NumVars; j++ {
		if cnt[j] > 0 {
			r.ColScale[j] = math.Exp2(-math.Round(logSum[j] / float64(cnt[j])))
		}
	}

	for i := range p.Rows {
		row := &p.Rows[i]
		rs := r.RowScale[i]
		for k, c := range row.Cols {
			row.Vals[k] *= rs * r.ColScale[c]
		}
		row.RHS *= rs
	}
	for j := range p.Cost {
		p.Cost[j] *= r.ColScale[j]
	}
	r.measureRowNorms()
}

// measureRowNorms records the scaling condition proxy — the extreme
// max-abs row norms of the matrix exactly as the backend will factorize it
// (after any equilibration). A wide max/min ratio survives power-of-two
// scaling only when the spread lives inside single rows, which is where
// threshold pivoting starts rejecting rows and eta growth accelerates.
func (r *Reduction) measureRowNorms() {
	lo, hi := math.Inf(1), 0.0
	for i := range r.P.Rows {
		n := 0.0
		for _, v := range r.P.Rows[i].Vals {
			if a := math.Abs(v); a > n {
				n = a
			}
		}
		if n == 0 || !finite(n) {
			continue
		}
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi > 0 && finite(lo) {
		r.RowNormMax, r.RowNormMin = hi, lo
	}
}

// geomean returns the geometric mean of the nonzero magnitudes of vals.
func geomean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		a := math.Abs(v)
		if a > 0 && finite(a) {
			s += math.Log2(a)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp2(s / float64(n))
}

// pow2Inverse returns the power of two nearest to 1/g.
func pow2Inverse(g float64) float64 {
	if !(g > 0) || !finite(g) {
		return 1
	}
	return math.Exp2(-math.Round(math.Log2(g)))
}

func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func removeTerm(w *workRow, k int) {
	w.cols = append(w.cols[:k], w.cols[k+1:]...)
	w.vals = append(w.vals[:k], w.vals[k+1:]...)
}

// sortIntsWith is insertion sort (rows are short; avoids the sort package
// closure allocation in the hot conversion path).
func sortIntsWith(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
