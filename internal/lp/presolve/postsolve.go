package presolve

// Postsolve: map a reduced solution back to the original problem exactly.
//
// Primal recovery is order-free for fixed variables (their values are
// constants) and uses conversion-time row snapshots for slack-recovered
// columns, so it runs in two simple passes. Dual recovery walks the journal
// in REVERSE elimination order: the dual of a removed singleton row r that
// fixed column j is forced by the complementary-slackness identity
//
//	c_j − Σ_{i≠r} y_i·a_ij = y_r·a_rj
//
// over j's ORIGINAL column, and every row in that column other than r was
// either never removed (dual already mapped) or removed LATER (already
// recovered by the reverse walk) — earlier-removed rows were singletons in
// variables fixed before j and cannot contain j.

// PostsolvePrimal maps the reduced primal point xRed (len = reduced vars)
// to the original variable space, undoing column scaling and replaying the
// elimination journal.
func (r *Reduction) PostsolvePrimal(xRed []float64) []float64 {
	x := make([]float64, r.OrigVars)
	for jn, jo := range r.VarMap {
		x[jo] = xRed[jn] * r.ColScale[jn]
	}
	// Constant recoveries first (fixed and dropped-redundant columns), so
	// the slack recoveries below see every term of their row snapshots.
	for _, st := range r.steps {
		switch st.kind {
		case stepFixVar:
			x[st.col] = st.val
		case stepFreeCol:
			x[st.col] = 0
		}
	}
	for _, st := range r.steps {
		if st.kind != stepSlackCol {
			continue
		}
		resid := st.rhs
		for k, c := range st.rowCols {
			resid -= st.rowVals[k] * x[c]
		}
		v := resid / st.coef
		if v < 0 && v > -epsFeas {
			v = 0 // solver-tolerance slack noise; the variable is nonnegative
		}
		x[st.col] = v
	}
	return x
}

// PostsolveDual maps the reduced dual vector yRed (len = reduced rows, in
// the problem's own sense) to the original rows. Dropped redundant rows
// price at zero; removed singleton rows get the exact complementary value.
func (r *Reduction) PostsolveDual(yRed []float64) []float64 {
	y := make([]float64, r.OrigRows)
	for in, io := range r.RowMap {
		y[io] = yRed[in] * r.RowScale[in]
	}
	for k := len(r.steps) - 1; k >= 0; k-- {
		st := r.steps[k]
		if st.kind != stepFixVar {
			continue
		}
		sum := 0.0
		for t, i := range st.colRows {
			if i != st.row {
				sum += y[i] * st.colVals[t]
			}
		}
		y[st.row] = (st.cost - sum) / st.coef
	}
	return y
}

// MapBasis maps a reduced-space basis (the lp package's problem-space
// encoding: entry < reduced NumVars is a structural column, reduced
// NumVars+r is reduced row r's auxiliary) to the original encoding, filling
// the rows presolve removed: a row that fixed a variable takes that
// variable as basic (it sits at its fixed value, possibly degenerately at
// zero); a dropped redundant row takes its own auxiliary. numVarsRed is the
// reduced problem's variable count.
func (r *Reduction) MapBasis(basisRed []int, numVarsRed int) []int {
	out := make([]int, r.OrigRows)
	for i := range out {
		out[i] = r.OrigVars + i // default: own auxiliary
	}
	for in, e := range basisRed {
		io := r.RowMap[in]
		if e < numVarsRed {
			out[io] = r.VarMap[e]
		} else {
			out[io] = r.OrigVars + r.RowMap[e-numVarsRed]
		}
	}
	for _, st := range r.steps {
		if st.kind == stepFixVar {
			out[st.row] = st.col
		}
	}
	return out
}
