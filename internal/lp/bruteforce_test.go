package lp

// Brute-force LP verification used by the property-based tests: for small
// instances, the optimum of an LP (if bounded and feasible) is attained at a
// vertex of the feasible polyhedron. Vertices are intersections of n
// linearly independent active constraints drawn from the rows plus the
// nonnegativity bounds. Enumerating every such intersection and filtering by
// feasibility yields the exact optimum to compare against the simplex.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseRow materializes a constraint as a dense coefficient vector.
func denseRow(n int, terms []Term) []float64 {
	row := make([]float64, n)
	for _, t := range terms {
		row[t.Var] += t.Coef
	}
	return row
}

// solveSquare solves an n×n dense linear system via Gaussian elimination
// with partial pivoting. Returns nil when singular.
func solveSquare(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[best][col]) {
				best = r
			}
		}
		if math.Abs(m[best][col]) < 1e-10 {
			return nil
		}
		m[col], m[best] = m[best], m[col]
		pv := m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x
}

// bruteForceLP exhaustively enumerates candidate vertices. Returns
// (objective, found); found is false when no feasible vertex exists (either
// infeasible or the only feasible set is unbounded with no vertex, which the
// property generator avoids by bounding every variable).
func bruteForceLP(p *Problem) (float64, bool) {
	n := len(p.names)
	// Active-set candidates: each problem row as equality, plus x_i = 0.
	type cand struct {
		row []float64
		rhs float64
	}
	var cands []cand
	for _, r := range p.rows {
		cands = append(cands, cand{denseRow(n, r.terms), r.rhs})
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		cands = append(cands, cand{row, 0})
	}

	feasible := func(x []float64) bool {
		for _, v := range x {
			if v < -1e-7 {
				return false
			}
		}
		for _, r := range p.rows {
			lhs := 0.0
			for _, t := range r.terms {
				lhs += t.Coef * x[t.Var]
			}
			switch r.rel {
			case LE:
				if lhs > r.rhs+1e-7 {
					return false
				}
			case GE:
				if lhs < r.rhs-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(lhs-r.rhs) > 1e-7 {
					return false
				}
			}
		}
		return true
	}

	best := math.Inf(1)
	if p.sense == Maximize {
		best = math.Inf(-1)
	}
	found := false

	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			a := make([][]float64, n)
			b := make([]float64, n)
			for i, ci := range idx {
				a[i] = cands[ci].row
				b[i] = cands[ci].rhs
			}
			x := solveSquare(a, b)
			if x == nil || !feasible(x) {
				return
			}
			obj := 0.0
			for j, c := range p.obj {
				obj += c * x[j]
			}
			if p.sense == Minimize {
				if obj < best {
					best = obj
				}
			} else if obj > best {
				best = obj
			}
			found = true
			return
		}
		for i := start; i < len(cands); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// randomBoundedLP generates a random LP in which every variable has an
// explicit upper bound row, guaranteeing a bounded feasible region whenever
// it is nonempty (so brute force and simplex must agree exactly).
func randomBoundedLP(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(3) // 1..3 variables keeps brute force fast
	m := 1 + rng.Intn(3)
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = p.AddVar("", float64(rng.Intn(11)-5))
	}
	for i := range vars {
		p.MustConstraint("", Expr{}.Plus(vars[i], 1), LE, float64(1+rng.Intn(10)))
	}
	for r := 0; r < m; r++ {
		var e Expr
		for i := range vars {
			c := float64(rng.Intn(7) - 3)
			if c != 0 {
				e = e.Plus(vars[i], c)
			}
		}
		if len(e) == 0 {
			continue
		}
		rel := Rel(rng.Intn(3))
		rhs := float64(rng.Intn(21) - 5)
		p.MustConstraint("", e, rel, rhs)
	}
	return p
}

func TestPropertySimplexMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	seed := int64(0)
	property := func() bool {
		seed++
		rng := rand.New(rand.NewSource(seed))
		p := randomBoundedLP(rng)
		sol, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: solve error %v", seed, err)
			return false
		}
		bfObj, bfFound := bruteForceLP(p)
		switch sol.Status {
		case Optimal:
			if !bfFound {
				t.Logf("seed %d: simplex optimal %v but brute force found no vertex\n%s", seed, sol.Objective, p)
				return false
			}
			if math.Abs(sol.Objective-bfObj) > 1e-6*(1+math.Abs(bfObj)) {
				t.Logf("seed %d: simplex %v vs brute force %v\n%s", seed, sol.Objective, bfObj, p)
				return false
			}
			// Simplex solution must itself be feasible.
			return simplexSolutionFeasible(p, sol)
		case Infeasible:
			if bfFound {
				t.Logf("seed %d: simplex infeasible but brute force found %v\n%s", seed, bfObj, p)
				return false
			}
			return true
		case Unbounded:
			// Every variable is upper-bounded, so unbounded must not occur.
			t.Logf("seed %d: unexpected unbounded status\n%s", seed, p)
			return false
		default:
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func simplexSolutionFeasible(p *Problem, sol *Solution) bool {
	for _, v := range sol.X {
		if v < -1e-7 {
			return false
		}
	}
	for _, r := range p.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * sol.X[t.Var]
		}
		switch r.rel {
		case LE:
			if lhs > r.rhs+1e-6 {
				return false
			}
		case GE:
			if lhs < r.rhs-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func TestPropertyLargerRandomFeasibleLPs(t *testing.T) {
	// Larger random instances where we only check internal consistency:
	// reported optimal solutions must be feasible and must not beat the
	// objective of any random feasible point we can construct (spot check
	// with the origin-scaled interior points of the box).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = p.AddVar("", rng.Float64()*10-5)
		}
		for i := range vars {
			p.MustConstraint("", Expr{}.Plus(vars[i], 1), LE, 1+rng.Float64()*9)
		}
		for r := 0; r < 3+rng.Intn(6); r++ {
			var e Expr
			for i := range vars {
				if rng.Intn(2) == 0 {
					e = e.Plus(vars[i], rng.Float64()*6-3)
				}
			}
			if len(e) == 0 {
				continue
			}
			// Only ≤ rows with positive rhs: origin stays feasible, so the
			// instance is always feasible and bounded.
			p.MustConstraint("", e, LE, rng.Float64()*10)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (origin is feasible)", trial, sol.Status)
		}
		if !simplexSolutionFeasible(p, sol) {
			t.Fatalf("trial %d: reported optimum infeasible", trial)
		}
		if sol.Objective > 1e-7 {
			// The origin is feasible with objective 0; a minimum above 0
			// would be suboptimal.
			t.Fatalf("trial %d: objective %v > 0 but origin feasible", trial, sol.Objective)
		}
	}
}
