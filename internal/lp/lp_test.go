package lp

import (
	"math"
	"testing"
)

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSolveEmptyProblem(t *testing.T) {
	p := NewProblem(Minimize)
	if _, err := p.Solve(); err != ErrNoVariables {
		t.Fatalf("expected ErrNoVariables, got %v", err)
	}
}

func TestSimpleMinimize(t *testing.T) {
	// min x + y  s.t.  x + y >= 2, x >= 0, y >= 0  → obj 2
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.MustConstraint("lb", Expr{}.Plus(x, 1).Plus(y, 1), GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, 2, 1e-8) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 at (2,6)
	p := NewProblem(Maximize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.MustConstraint("c1", Expr{}.Plus(x, 1), LE, 4)
	p.MustConstraint("c2", Expr{}.Plus(y, 2), LE, 12)
	p.MustConstraint("c3", Expr{}.Plus(x, 3).Plus(y, 2), LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, 36, 1e-8) {
		t.Fatalf("objective = %v, want 36", sol.Objective)
	}
	if !approxEq(sol.Value(x), 2, 1e-8) || !approxEq(sol.Value(y), 6, 1e-8) {
		t.Fatalf("solution = (%v,%v), want (2,6)", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min 2x + 3y  s.t. x + y = 4, x - y = 0 → x=y=2, obj 10
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.MustConstraint("sum", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 4)
	p.MustConstraint("diff", Expr{}.Plus(x, 1).Plus(y, -1), EQ, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, 10, 1e-8) {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 3 cannot both hold.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	p.MustConstraint("lo", Expr{}.Plus(x, 1), GE, 5)
	p.MustConstraint("hi", Expr{}.Plus(x, 1), LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	p.MustConstraint("lo", Expr{}.Plus(x, 1), GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -2  is  x + y >= 2.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.MustConstraint("neg", Expr{}.Plus(x, -1).Plus(y, -1), LE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	// Cheapest way to reach x+y >= 2 is x = 2.
	if !approxEq(sol.Objective, 2, 1e-8) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// x + x <= 4  ⇒ x <= 2.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 1)
	p.MustConstraint("dup", Expr{}.Plus(x, 1).Plus(x, 1), LE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 2, 1e-8) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate instance (Beale's cycling example under naive
	// Dantzig). The Bland fallback must terminate at the optimum −0.05.
	p := NewProblem(Minimize)
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.MustConstraint("r1", Expr{}.Plus(x1, 0.25).Plus(x2, -60).Plus(x3, -0.04).Plus(x4, 9), LE, 0)
	p.MustConstraint("r2", Expr{}.Plus(x1, 0.5).Plus(x2, -90).Plus(x3, -0.02).Plus(x4, 3), LE, 0)
	p.MustConstraint("r3", Expr{}.Plus(x3, 1), LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, -0.05, 1e-8) {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the
	// redundant row must be neutralized, not declared infeasible.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.MustConstraint("e1", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 3)
	p.MustConstraint("e2", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 3)
	p.MustConstraint("e3", Expr{}.Plus(x, 2).Plus(y, 2), EQ, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, 3, 1e-8) {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem: any point with x+y=1 works, objective 0.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0)
	y := p.AddVar("y", 0)
	p.MustConstraint("e", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Value(x)+sol.Value(y), 1, 1e-8) {
		t.Fatalf("x+y = %v, want 1", sol.Value(x)+sol.Value(y))
	}
}

func TestConvexCombinationStructure(t *testing.T) {
	// Mimics the paper's configuration rows (Eqs. 6–9): pick a convex
	// combination of (duration, power) points minimizing duration subject
	// to a power cap. Points: (10s, 20w), (6s, 30w), (4s, 45w).
	// Cap 36w → mix of the 30w and 45w points: λ·30+(1−λ)·45 = 36 ⇒ λ=0.6,
	// duration = 0.6·6 + 0.4·4 = 5.2.
	p := NewProblem(Minimize)
	c1 := p.AddVar("c1", 10)
	c2 := p.AddVar("c2", 6)
	c3 := p.AddVar("c3", 4)
	p.MustConstraint("convex", Expr{}.Plus(c1, 1).Plus(c2, 1).Plus(c3, 1), EQ, 1)
	p.MustConstraint("power", Expr{}.Plus(c1, 20).Plus(c2, 30).Plus(c3, 45), LE, 36)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approxEq(sol.Objective, 5.2, 1e-8) {
		t.Fatalf("objective = %v, want 5.2", sol.Objective)
	}
}

func TestVarNameAndString(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("speed", 1)
	if p.VarName(x) != "speed" {
		t.Fatalf("VarName = %q", p.VarName(x))
	}
	if p.VarName(Var(99)) == "speed" {
		t.Fatal("out-of-range VarName should not resolve")
	}
	p.MustConstraint("cap", Expr{}.Plus(x, 2), LE, 10)
	s := p.String()
	if s == "" {
		t.Fatal("String() empty")
	}
}

func TestAddConstraintRejectsUnknownVar(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVar("x", 1)
	err := p.AddConstraint("bad", Expr{{Var: 5, Coef: 1}}, LE, 1)
	if err == nil {
		t.Fatal("expected error for undeclared variable")
	}
}

func TestSetObjCoef(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0)
	if err := p.SetObjCoef(x, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjCoef(Var(7), 1); err == nil {
		t.Fatal("expected range error")
	}
	p.MustConstraint("lo", Expr{}.Plus(x, 1), GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sol.Objective, 6, 1e-8) {
		t.Fatalf("objective = %v, want 6", sol.Objective)
	}
}

func TestMediumRandomInstanceAgainstKnown(t *testing.T) {
	// Transportation-style LP with known optimum.
	// min Σ cost·ship  s.t. supply rows =, demand rows =.
	// 2 plants (supply 30, 25) → 3 markets (demand 15, 20, 20).
	// costs: p1: 4,6,8 ; p2: 5,3,7.
	p := NewProblem(Minimize)
	x := make([]Var, 6)
	costs := []float64{4, 6, 8, 5, 3, 7}
	for i := range x {
		x[i] = p.AddVar("", costs[i])
	}
	p.MustConstraint("s1", Expr{}.Plus(x[0], 1).Plus(x[1], 1).Plus(x[2], 1), EQ, 30)
	p.MustConstraint("s2", Expr{}.Plus(x[3], 1).Plus(x[4], 1).Plus(x[5], 1), EQ, 25)
	p.MustConstraint("d1", Expr{}.Plus(x[0], 1).Plus(x[3], 1), EQ, 15)
	p.MustConstraint("d2", Expr{}.Plus(x[1], 1).Plus(x[4], 1), EQ, 20)
	p.MustConstraint("d3", Expr{}.Plus(x[2], 1).Plus(x[5], 1), EQ, 20)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	// Optimal: x11=15,x13=15 (cost 60+120), x22=20,x23=5 (60+35) = 275.
	if !approxEq(sol.Objective, 275, 1e-7) {
		t.Fatalf("objective = %v, want 275", sol.Objective)
	}
}
