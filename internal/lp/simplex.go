package lp

import (
	"context"
	"math"

	"powercap/internal/faultinject"
	"powercap/internal/obs"
)

// Numerical tolerances for the dense simplex. The scheduling LPs produced by
// internal/core are well scaled (seconds and watts, both O(1)–O(100)), so
// fixed absolute tolerances are adequate.
const (
	epsPivot    = 1e-9  // minimum magnitude for a usable pivot element
	epsReduced  = 1e-9  // reduced-cost optimality tolerance
	epsFeas     = 1e-7  // phase-1 residual treated as feasible
	stallWindow = 200   // Dantzig iterations without improvement → Bland
	epsImprove  = 1e-12 // objective delta counted as progress
)

// tableau is the dense working form of a Problem: Ax = b with x ≥ 0, b ≥ 0,
// kept in canonical form with respect to the current basis.
type tableau struct {
	m, n int // constraint rows, total columns (vars + slacks + artificials)

	nOrig int // columns corresponding to user variables
	nReal int // columns excluding artificials (vars + slacks)

	a     []float64 // m×n row-major constraint matrix
	b     []float64 // m right-hand sides (kept ≥ 0 by pivoting invariants)
	cost  []float64 // n current-phase objective coefficients
	basis []int     // basis[i] = column basic in row i

	// objRow caches the reduced costs of the current phase, updated
	// incrementally by pivots (classic full-tableau z-row). It is rebuilt
	// from cost and the basis at each phase start.
	objRow []float64

	// nzbuf is scratch space for the pivot row's nonzero column indices;
	// scheduling tableaus stay sparse, so iterating only nonzeros makes
	// the Gauss–Jordan sweep several times faster than a dense pass.
	nzbuf []int32

	artificial []bool // per-column: is an artificial variable
	blocked    []bool // per-column: excluded from entering (artificials in phase 2)

	// Dual-recovery bookkeeping (see duals): per row, the auxiliary
	// column whose reduced cost exposes the row's dual value, the sign of
	// that column's coefficient, and the normalization sign applied to
	// the row.
	auxCol  []int
	auxSign []float64
	rowSign []float64

	// colOwner maps every auxiliary column to the row that created it
	// (-1 for structural columns), for problem-space basis export.
	colOwner []int

	maxIters  int
	stallWin  int    // Dantzig iterations without improvement → Bland
	bland     bool   // anti-cycling fallback engaged at least once
	numReason string // set when iterate returns statusNumerical

	// cancel, when non-nil, is polled every cancelCheckEvery pivots; a
	// true return abandons the solve with Status Canceled.
	cancel func() bool

	// sctx parents the per-phase obs spans (nil is fine: disabled path).
	sctx context.Context
}

func (t *tableau) at(i, j int) float64     { return t.a[i*t.n+j] }
func (t *tableau) set(i, j int, v float64) { t.a[i*t.n+j] = v }

// duals recovers the dual values y = c_B·B⁻¹ for every constraint row from
// the final reduced-cost row. In the canonical tableau the reduced cost of
// an auxiliary column with original coefficient ±e_i is ∓y_i plus its own
// (zero, in phase 2) cost:
//
//	slack of a ≤ row:     objRow = −y_i          ⇒ y_i = −objRow
//	surplus of a ≥ row:   objRow = +y_i          ⇒ y_i = +objRow
//	artificial of a = row: objRow = −y_i          ⇒ y_i = −objRow
//
// rowSign carries the normalization applied when a negative right-hand
// side flipped the row, so duals are reported for the rows as the caller
// stated them. Requires objRow to be valid for the phase-2 costs.
func (t *tableau) duals() []float64 {
	y := make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		col := t.auxCol[i]
		if col < 0 {
			continue
		}
		// auxSign is +1 when the column's tableau coefficient was +e_i
		// (slack, artificial), −1 for a surplus column (−e_i).
		y[i] = -t.objRow[col] * t.auxSign[i] * t.rowSign[i]
	}
	return y
}

// newTableau converts a Problem to standard computational form:
//
//   - every row is normalized so its right-hand side is nonnegative,
//   - ≤ rows gain a slack column, ≥ rows a surplus column,
//   - rows whose slack cannot serve as an initial basic variable gain an
//     artificial column,
//
// yielding an immediately feasible basis for phase 1.
func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	nOrig := len(p.names)

	// Count auxiliary columns.
	slacks := 0
	arts := 0
	for _, r := range p.rows {
		rhs := r.rhs
		rel := r.rel
		if rhs < 0 {
			rel = flipRel(rel)
		}
		switch rel {
		case LE:
			slacks++ // slack enters the basis directly
		case GE:
			slacks++ // surplus column
			arts++
		case EQ:
			arts++
		}
	}
	n := nOrig + slacks + arts

	t := &tableau{
		m: m, n: n,
		nOrig:      nOrig,
		nReal:      nOrig + slacks,
		a:          make([]float64, m*n),
		b:          make([]float64, m),
		cost:       make([]float64, n),
		basis:      make([]int, m),
		artificial: make([]bool, n),
		blocked:    make([]bool, n),
		auxCol:     make([]int, m),
		auxSign:    make([]float64, m),
		rowSign:    make([]float64, m),
		colOwner:   make([]int, n),
		maxIters:   p.maxIters,
		stallWin:   stallWindow,
	}
	if t.maxIters == 0 {
		t.maxIters = 200 * (m + n + 10)
	}
	for j := range t.colOwner {
		t.colOwner[j] = -1
	}

	slackCol := nOrig
	artCol := nOrig + slacks
	for i, r := range p.rows {
		sign := 1.0
		rel := r.rel
		if r.rhs < 0 {
			sign = -1
			rel = flipRel(rel)
		}
		for _, term := range r.terms {
			t.a[i*n+int(term.Var)] += sign * term.Coef
		}
		t.b[i] = sign * r.rhs

		t.rowSign[i] = sign
		switch rel {
		case LE:
			t.set(i, slackCol, 1)
			t.basis[i] = slackCol
			t.auxCol[i], t.auxSign[i] = slackCol, 1
			t.colOwner[slackCol] = i
			slackCol++
		case GE:
			t.set(i, slackCol, -1)
			t.auxCol[i], t.auxSign[i] = slackCol, -1
			t.colOwner[slackCol] = i
			slackCol++
			t.set(i, artCol, 1)
			t.artificial[artCol] = true
			t.basis[i] = artCol
			t.colOwner[artCol] = i
			artCol++
		case EQ:
			t.set(i, artCol, 1)
			t.artificial[artCol] = true
			t.basis[i] = artCol
			t.auxCol[i], t.auxSign[i] = artCol, 1
			t.colOwner[artCol] = i
			artCol++
		}
	}

	// Phase-2 objective, stored for later; phase 1 installs its own costs.
	for j := 0; j < nOrig; j++ {
		c := p.obj[j]
		if p.sense == Maximize {
			c = -c
		}
		t.cost[j] = c
	}
	return t
}

func flipRel(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solve runs both simplex phases and reports the outcome plus per-phase
// pivot counts.
func (t *tableau) solve() (st Status, phase1, phase2 int) {
	needPhase1 := false
	for _, bj := range t.basis {
		if t.artificial[bj] {
			needPhase1 = true
			break
		}
	}

	phase2Cost := make([]float64, t.n)
	copy(phase2Cost, t.cost)

	if needPhase1 {
		for j := range t.cost {
			if t.artificial[j] {
				t.cost[j] = 1
			} else {
				t.cost[j] = 0
			}
		}
		t.recomputeObjRow()
		_, sp := obs.Start(t.sctx, "lp.phase1")
		st, phase1 = t.iterate()
		sp.SetAttr("pivots", phase1)
		sp.SetAttr("status", st.String())
		sp.End()
		if st == IterLimit || st == Canceled || st == statusNumerical {
			return st, phase1, 0
		}
		if t.phaseObjective() > epsFeas {
			return Infeasible, phase1, 0
		}
		t.evictArtificials()
		for j := range t.blocked {
			if t.artificial[j] {
				t.blocked[j] = true
			}
		}
	}

	copy(t.cost, phase2Cost)
	t.recomputeObjRow()
	_, sp := obs.Start(t.sctx, "lp.phase2")
	st, phase2 = t.iterate()
	sp.SetAttr("pivots", phase2)
	sp.SetAttr("status", st.String())
	sp.End()
	return st, phase1, phase2
}

// recomputeObjRow rebuilds the reduced-cost row from scratch for the
// current phase: objRow[j] = cost[j] − Σᵢ cost[basis[i]]·a[i][j].
func (t *tableau) recomputeObjRow() {
	if t.objRow == nil {
		t.objRow = make([]float64, t.n)
	}
	copy(t.objRow, t.cost)
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i*t.n : i*t.n+t.n]
		for j, v := range row {
			if v != 0 {
				t.objRow[j] -= cb * v
			}
		}
	}
}

// phaseObjective evaluates the current phase's objective at the basic
// solution.
func (t *tableau) phaseObjective() float64 {
	obj := 0.0
	for i, bj := range t.basis {
		obj += t.cost[bj] * t.b[i]
	}
	return obj
}

// evictArtificials pivots artificial variables that remain basic (at value
// zero after a feasible phase 1) out of the basis wherever a real column has
// a usable pivot in their row. Rows that are entirely zero across real
// columns are redundant and are neutralized by leaving the artificial basic
// at zero with its column blocked — it can never re-enter, so it stays zero.
func (t *tableau) evictArtificials() {
	for i, bj := range t.basis {
		if !t.artificial[bj] {
			continue
		}
		for j := 0; j < t.nReal; j++ {
			if math.Abs(t.at(i, j)) > epsPivot {
				t.pivot(i, j)
				break
			}
		}
	}
}

// iterate performs simplex pivots with Dantzig pricing, falling back to
// Bland's rule after stallWindow iterations without objective improvement.
// A pivot-count watchdog pins Bland on permanently once half the budget is
// spent — a solve that deep into its budget is cycling or near it, and
// finite termination matters more than pricing speed.
func (t *tableau) iterate() (Status, int) {
	iters := 0
	bland := false
	stall := 0
	lastObj := t.phaseObjective()
	watchdog := t.maxIters / 2

	for ; iters < t.maxIters; iters++ {
		if iters%cancelCheckEvery == 0 {
			// Cancellation is checked before anything else so a dead
			// context always surfaces as Canceled, never as a numerical
			// artifact of a half-finished pivot.
			if t.cancel != nil && t.cancel() {
				return Canceled, iters
			}
			if faultinject.Armed() {
				if faultinject.Fire(faultinject.LPStall) {
					return IterLimit, iters
				}
				if faultinject.Fire(faultinject.LPNaN) {
					t.b[0] = math.NaN()
				}
			}
			if !finiteAll(t.b) || !finite(t.phaseObjective()) {
				// The dense tableau has no factored form to rebuild;
				// report the breakdown and let the caller pick a fallback.
				t.numReason = "non-finite basic values or objective"
				return statusNumerical, iters
			}
		}
		if iters >= watchdog && !bland {
			bland = true
			t.bland = true
		}
		// Refresh the incrementally maintained reduced costs occasionally
		// to shed accumulated floating-point drift.
		if iters > 0 && iters%512 == 0 {
			t.recomputeObjRow()
		}
		enter := t.chooseEntering(bland)
		if enter < 0 {
			return Optimal, iters
		}
		leave := t.chooseLeaving(enter, bland)
		if leave < 0 {
			return Unbounded, iters
		}
		t.pivot(leave, enter)

		obj := t.phaseObjective()
		if lastObj-obj > epsImprove {
			stall = 0
			bland = false
		} else {
			stall++
			if stall >= t.stallWin {
				bland = true
				t.bland = true
			}
		}
		lastObj = obj
	}
	return IterLimit, iters
}

// chooseEntering returns the entering column index, or -1 at optimality,
// reading the incrementally maintained reduced-cost row.
func (t *tableau) chooseEntering(bland bool) int {
	best := -1
	bestVal := -epsReduced
	for j := 0; j < t.n; j++ {
		if t.blocked[j] {
			continue
		}
		r := t.objRow[j]
		if bland {
			if r < -epsReduced {
				return j
			}
			continue
		}
		if r < bestVal {
			bestVal = r
			best = j
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test on the entering column,
// breaking ties toward the smallest basic variable index (a lexicographic
// nudge that combines well with the Bland fallback). A largest-pivot
// tie-break was tried and measurably *increased* degenerate pivot chains on
// the 32-rank scheduling LPs, so the index rule stays.
func (t *tableau) chooseLeaving(enter int, bland bool) int {
	_ = bland // same rule in both modes; parameter kept for experimentation
	leave := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aij := t.at(i, enter)
		if aij <= epsPivot {
			continue
		}
		ratio := t.b[i] / aij
		if ratio < bestRatio-epsPivot ||
			(ratio < bestRatio+epsPivot && (leave < 0 || t.basis[i] < t.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	return leave
}

// pivot makes column enter basic in row leave via Gauss–Jordan elimination,
// keeping the reduced-cost row in sync.
func (t *tableau) pivot(leave, enter int) {
	n := t.n
	prow := t.a[leave*n : leave*n+n]
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	t.b[leave] *= inv

	if t.nzbuf == nil {
		t.nzbuf = make([]int32, 0, n)
	}
	nz := t.nzbuf[:0]
	for j, v := range prow {
		if v != 0 {
			nz = append(nz, int32(j))
		}
	}
	t.nzbuf = nz

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.at(i, enter)
		if f == 0 {
			continue
		}
		row := t.a[i*n : i*n+n]
		for _, j := range nz {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -epsFeas {
			t.b[i] = 0
		}
	}
	if t.objRow != nil {
		if f := t.objRow[enter]; f != 0 {
			for _, j := range nz {
				t.objRow[j] -= f * prow[j]
			}
			t.objRow[enter] = 0 // exact
		}
	}
	t.basis[leave] = enter
}

// extract copies the values of the original user variables out of the basic
// solution.
func (t *tableau) extract(x []float64) {
	for j := range x {
		x[j] = 0
	}
	for i, bj := range t.basis {
		if bj < t.nOrig {
			x[bj] = t.b[i]
		}
	}
}

// exportBasis translates the internal column basis to the problem-space
// encoding of Solution.Basis: structural columns keep their index,
// auxiliary columns become NumVars + owning row.
func (t *tableau) exportBasis() []int {
	out := make([]int, t.m)
	for i, bj := range t.basis {
		if bj < t.nOrig {
			out[i] = bj
		} else {
			out[i] = t.nOrig + t.colOwner[bj]
		}
	}
	return out
}

// solveDense is the dense-tableau backend behind Solve. Warm bases are
// ignored (the full tableau cannot skip its canonicalization), so every
// dense solve is a cold solve.
func solveDense(p *Problem, o *Options) (*Solution, error) {
	t := newTableau(p)
	if o.MaxIters > 0 {
		t.maxIters = o.MaxIters
	}
	t.stallWin = o.StallWindow
	t.cancel = o.cancelFunc()
	t.sctx = o.spanContext()
	st, n1, n2 := t.solve()
	if st == statusNumerical {
		return nil, &NumericalError{Backend: "dense", Reason: t.numReason, Pivots: n1 + n2}
	}
	sol := &Solution{Status: st, Iters: n1 + n2, X: make([]float64, len(p.names))}
	sol.Stats.Phase1Iters = n1
	sol.Stats.Phase2Iters = n2
	sol.Stats.BlandActivated = t.bland
	if st != Optimal {
		sol.Objective = math.NaN()
		return sol, nil
	}
	t.extract(sol.X)
	sol.Dual = t.duals()
	sol.Basis = t.exportBasis()
	finishSolution(p, sol)
	return sol, nil
}
