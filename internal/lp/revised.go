package lp

import (
	"context"
	"math"

	"powercap/internal/faultinject"
	"powercap/internal/obs"
)

// Revised simplex over sparse columns with a product-form basis inverse
// (PFI). The basis inverse is maintained as a sequence of eta matrices:
// each pivot appends one eta; FTRAN applies them forward, BTRAN transposed
// in reverse. The eta file is rebuilt from scratch (reinversion with
// partial row pivoting) every refactorEvery updates to bound fill-in and
// floating-point drift — a product-form cousin of the Bartels–Golub update.
//
// The backend runs three pivot loops over the same machinery:
//
//   - primal phase 1 (artificial costs) from the all-slack/artificial basis,
//   - primal phase 2 (real costs),
//   - dual simplex, used to warm start: after an RHS-only change (a power
//     cap sweep step) or appended rows (branch-and-bound children), the
//     previous optimal basis stays dual feasible, and a handful of dual
//     pivots restore primal feasibility — the incremental re-optimization
//     the sweep layers in internal/core and internal/milp rely on.
//
// Any warm-start trouble (singular basis, lost dual feasibility, iteration
// budget) falls back to a cold solve, so warm starts never cost correctness.

const (
	// refactorEvery bounds the eta file growth between reinversions.
	refactorEvery = 64
	// epsDualFeas is the reduced-cost tolerance below which a warm basis
	// no longer counts as dual feasible and the warm start is abandoned.
	epsDualFeas = 1e-7
	// epsFactor is the minimum acceptable pivot magnitude during
	// reinversion; below it the basis is declared singular.
	epsFactor = 1e-8
)

// eta is one PFI update: the basis changed by pivoting column values
// (pivot at row r, off-pivot nonzeros in nzRows/nzVals).
type eta struct {
	r      int
	pivot  float64
	nzRows []int32
	nzVals []float64
}

// revised is the working state of one revised-simplex solve.
type revised struct {
	f *spForm

	basis   []int  // per row: basic column
	isBasic []bool // per column
	blocked []bool // per column: excluded from entering
	etas    []eta
	updates int // etas appended since the last factorization

	xB   []float64 // basic variable values per row
	cost []float64 // current-phase costs

	// Dense scratch vectors, reused across iterations.
	alpha []float64
	y     []float64
	rho   []float64

	maxIters    int
	stallWindow int
	cancel      func() bool // polled every cancelCheckEvery pivots
	stats       SolveStats

	nanRetries int    // refactorization-and-retry attempts spent on NaN/Inf
	numReason  string // set when a pivot loop returns statusNumerical

	// sctx parents obs spans; the phase wrappers in solveCold/solveWarm
	// repoint it at their own span so refactorizations nest under the phase
	// that triggered them.
	sctx context.Context
}

func newRevised(f *spForm, o *Options) *revised {
	rv := &revised{
		f:           f,
		basis:       make([]int, f.m),
		isBasic:     make([]bool, f.n),
		blocked:     make([]bool, f.n),
		xB:          make([]float64, f.m),
		cost:        make([]float64, f.n),
		alpha:       make([]float64, f.m),
		y:           make([]float64, f.m),
		rho:         make([]float64, f.m),
		maxIters:    f.maxIters,
		stallWindow: o.StallWindow,
	}
	if o.MaxIters > 0 {
		rv.maxIters = o.MaxIters
	}
	if rv.stallWindow <= 0 {
		rv.stallWindow = stallWindow
	}
	rv.cancel = o.cancelFunc()
	rv.sctx = o.spanContext()
	return rv
}

// phase wraps one pivot-loop phase in an obs span named name, nesting any
// refactorizations it triggers under that span. iters counts the pivots the
// phase consumed (for the span attribute).
func (rv *revised) phase(name string, iters *int, run func() Status) Status {
	before := *iters
	pctx, sp := obs.Start(rv.sctx, name)
	old := rv.sctx
	rv.sctx = pctx
	st := run()
	rv.sctx = old
	sp.SetAttr("pivots", *iters-before)
	sp.SetAttr("status", st.String())
	sp.End()
	return st
}

// ftran solves B·x = v in place (v dense, length m).
func (rv *revised) ftran(v []float64) {
	for k := range rv.etas {
		e := &rv.etas[k]
		t := v[e.r]
		if t == 0 {
			continue
		}
		t /= e.pivot
		for i, r := range e.nzRows {
			v[r] -= e.nzVals[i] * t
		}
		v[e.r] = t
	}
}

// btran solves Bᵀ·y = v in place (v dense, length m).
func (rv *revised) btran(v []float64) {
	for k := len(rv.etas) - 1; k >= 0; k-- {
		e := &rv.etas[k]
		t := v[e.r]
		for i, r := range e.nzRows {
			t -= e.nzVals[i] * v[r]
		}
		v[e.r] = t / e.pivot
	}
}

// appendEta records the pivot (row r, column values alpha) as a new eta.
func (rv *revised) appendEta(r int, alpha []float64) {
	e := eta{r: r, pivot: alpha[r]}
	for i, v := range alpha {
		if i != r && v != 0 {
			e.nzRows = append(e.nzRows, int32(i))
			e.nzVals = append(e.nzVals, v)
		}
	}
	rv.etas = append(rv.etas, e)
	rv.updates++
}

// factorize rebuilds the eta file for the given basis columns, reassigning
// rows by partial pivoting. Returns false when the column set is singular.
// On success rv.basis holds the (re-rowed) basis and rv.xB the basic values.
func (rv *revised) factorize(cols []int) bool {
	_, sp := obs.Start(rv.sctx, "lp.refactorize")
	defer sp.End()
	f := rv.f
	rv.etas = rv.etas[:0]
	rv.updates = 0
	rv.stats.Refactorizations++
	rowUsed := make([]bool, f.m)
	newBasis := make([]int, f.m)
	for _, j := range cols {
		for i := range rv.alpha {
			rv.alpha[i] = 0
		}
		f.scatterCol(j, rv.alpha)
		rv.ftran(rv.alpha)
		best, bestAbs := -1, epsFactor
		for i := 0; i < f.m; i++ {
			if rowUsed[i] {
				continue
			}
			if a := math.Abs(rv.alpha[i]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			return false
		}
		rv.appendEta(best, rv.alpha)
		rowUsed[best] = true
		newBasis[best] = j
	}
	rv.updates = 0 // reinversion etas don't count toward the refactor budget
	copy(rv.basis, newBasis)
	for j := range rv.isBasic {
		rv.isBasic[j] = false
	}
	for _, j := range rv.basis {
		rv.isBasic[j] = true
	}
	rv.computeXB()
	return true
}

// computeXB recomputes the basic values xB = B⁻¹ b.
func (rv *revised) computeXB() {
	copy(rv.xB, rv.f.b)
	rv.ftran(rv.xB)
}

// refactorIfDue reinverts once the eta file outgrows its budget. A false
// return means the basis went singular — a numerical breakdown, recorded in
// numReason for the statusNumerical paths.
func (rv *revised) refactorIfDue() bool {
	if rv.updates < refactorEvery {
		return true
	}
	cols := append([]int(nil), rv.basis...)
	if !rv.factorize(cols) {
		rv.numReason = "singular basis at refactorization"
		return false
	}
	return true
}

// stateFinite reports whether the working state (basic values and phase
// objective) is numerically sound.
func (rv *revised) stateFinite() bool {
	return finiteAll(rv.xB) && finite(rv.phaseObjective())
}

// recoverNumerical attempts to repair non-finite working state by rebuilding
// the basis inverse from scratch: reinversion recomputes xB = B⁻¹b from the
// clean standard form, so a corrupted working vector or accumulated eta
// drift is genuinely repaired. Bounded by maxNaNRetries per solve.
func (rv *revised) recoverNumerical() bool {
	for rv.nanRetries < maxNaNRetries {
		rv.nanRetries++
		if !rv.factorize(append([]int(nil), rv.basis...)) {
			return false
		}
		if rv.stateFinite() {
			return true
		}
	}
	return false
}

// checkpoint runs the per-cancelCheckEvery guards shared by the primal and
// dual pivot loops. Cancellation is checked before anything else so a dead
// context always surfaces as Canceled — never as a numerical artifact. The
// returned status is meaningful only when ok is false.
func (rv *revised) checkpoint() (st Status, ok bool) {
	if rv.cancel != nil && rv.cancel() {
		return Canceled, false
	}
	if faultinject.Armed() {
		if faultinject.Fire(faultinject.LPStall) {
			return IterLimit, false
		}
		if faultinject.Fire(faultinject.LPNaN) {
			rv.xB[0] = math.NaN()
		}
	}
	if !rv.stateFinite() {
		if !rv.recoverNumerical() {
			if rv.numReason == "" {
				rv.numReason = "non-finite basic values or objective"
			}
			return statusNumerical, false
		}
	}
	return Optimal, true
}

// computeY fills rv.y with the current-phase duals y = B⁻ᵀ c_B.
func (rv *revised) computeY() {
	for i := range rv.y {
		rv.y[i] = rv.cost[rv.basis[i]]
	}
	rv.btran(rv.y)
}

// phaseObjective evaluates the current phase's objective at xB.
func (rv *revised) phaseObjective() float64 {
	obj := 0.0
	for i, bj := range rv.basis {
		obj += rv.cost[bj] * rv.xB[i]
	}
	return obj
}

// priceEntering scans reduced costs and returns the entering column
// (Dantzig most-negative, or first-negative under Bland), or -1 at
// optimality. Requires rv.y to be current.
func (rv *revised) priceEntering(bland bool) int {
	f := rv.f
	best := -1
	bestVal := -epsReduced
	for j := 0; j < f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		d := rv.cost[j] - f.colDot(j, rv.y)
		if bland {
			if d < -epsReduced {
				return j
			}
			continue
		}
		if d < bestVal {
			bestVal = d
			best = j
		}
	}
	return best
}

// primal runs primal simplex pivots with the current costs, from the
// current factorized basis, until optimality, unboundedness, or the pivot
// budget runs out. iters is shared across phases via the pointer.
func (rv *revised) primal(iters *int) Status {
	f := rv.f
	bland := false
	stall := 0
	lastObj := rv.phaseObjective()
	// Pivot-count watchdog: a solve that has burned half its budget without
	// terminating is likely cycling or creeping; pin Bland's rule on for the
	// remainder, which guarantees finite termination.
	watchdog := rv.maxIters / 2

	for ; *iters < rv.maxIters; *iters++ {
		if *iters%cancelCheckEvery == 0 {
			if st, ok := rv.checkpoint(); !ok {
				return st
			}
			// Refresh in case a NaN recovery rebuilt xB; bitwise a no-op
			// otherwise (same state, same deterministic sum).
			lastObj = rv.phaseObjective()
		}
		if *iters >= watchdog && !bland {
			bland = true
			rv.stats.BlandActivated = true
		}
		rv.computeY()
		enter := rv.priceEntering(bland)
		if enter < 0 {
			return Optimal
		}

		for i := range rv.alpha {
			rv.alpha[i] = 0
		}
		f.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)

		// Minimum-ratio test; ties break toward the smallest basic column
		// index (the same lexicographic nudge as the dense backend).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < f.m; i++ {
			a := rv.alpha[i]
			if a <= epsPivot {
				continue
			}
			ratio := rv.xB[i] / a
			if ratio < bestRatio-epsPivot ||
				(ratio < bestRatio+epsPivot && (leave < 0 || rv.basis[i] < rv.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}

		rv.pivotUpdate(leave, enter)
		if !rv.refactorIfDue() {
			return statusNumerical
		}

		obj := rv.phaseObjective()
		if lastObj-obj > epsImprove {
			stall = 0
			bland = false
		} else {
			stall++
			if stall >= rv.stallWindow {
				bland = true
				rv.stats.BlandActivated = true
			}
		}
		lastObj = obj
	}
	return IterLimit
}

// pivotUpdate applies the pivot (leave row, enter column) to xB, the basis,
// and the eta file. rv.alpha must hold B⁻¹·a_enter.
func (rv *revised) pivotUpdate(leave, enter int) {
	theta := rv.xB[leave] / rv.alpha[leave]
	for i := range rv.xB {
		if i == leave {
			continue
		}
		rv.xB[i] -= theta * rv.alpha[i]
		if rv.xB[i] < 0 && rv.xB[i] > -epsFeas {
			rv.xB[i] = 0
		}
	}
	rv.xB[leave] = theta
	rv.isBasic[rv.basis[leave]] = false
	rv.isBasic[enter] = true
	rv.appendEta(leave, rv.alpha)
	rv.basis[leave] = enter
}

// evictArtificials pivots still-basic artificials (at value zero after a
// feasible phase 1) out wherever a real column has a usable pivot in their
// row; rows with none are redundant and keep the artificial basic at zero
// with its column blocked.
func (rv *revised) evictArtificials() bool {
	f := rv.f
	for r := 0; r < f.m; r++ {
		if !f.artificial[rv.basis[r]] {
			continue
		}
		for i := range rv.rho {
			rv.rho[i] = 0
		}
		rv.rho[r] = 1
		rv.btran(rv.rho)
		for j := 0; j < f.nReal; j++ {
			if rv.isBasic[j] {
				continue
			}
			if math.Abs(f.colDot(j, rv.rho)) <= epsPivot {
				continue
			}
			for i := range rv.alpha {
				rv.alpha[i] = 0
			}
			f.scatterCol(j, rv.alpha)
			rv.ftran(rv.alpha)
			if math.Abs(rv.alpha[r]) <= epsPivot {
				continue
			}
			rv.pivotUpdate(r, j)
			if !rv.refactorIfDue() {
				return false
			}
			break
		}
	}
	return true
}

// dual runs dual simplex pivots from a dual-feasible basis until primal
// feasibility (Optimal), proven primal infeasibility (Infeasible), or the
// budget runs out (IterLimit — callers fall back to a cold solve).
func (rv *revised) dual(iters *int) Status {
	f := rv.f
	bland := false
	stall := 0
	lastInfeas := rv.primalInfeasibility()
	watchdog := rv.maxIters / 2

	for ; *iters < rv.maxIters; *iters++ {
		if *iters%cancelCheckEvery == 0 {
			if st, ok := rv.checkpoint(); !ok {
				return st
			}
			lastInfeas = rv.primalInfeasibility()
		}
		if *iters >= watchdog && !bland {
			bland = true
			rv.stats.BlandActivated = true
		}
		// Leaving row: most negative basic value (smallest row index under
		// the anti-cycling fallback).
		leave := -1
		worst := -epsFeas
		for i := 0; i < f.m; i++ {
			if rv.xB[i] < worst {
				worst = rv.xB[i]
				leave = i
				if bland {
					break
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		rv.stats.DualIters++

		// Pivot row of B⁻¹A and fresh reduced costs for the ratio test.
		rv.computeY()
		for i := range rv.rho {
			rv.rho[i] = 0
		}
		rv.rho[leave] = 1
		rv.btran(rv.rho)

		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < f.n; j++ {
			if rv.isBasic[j] || rv.blocked[j] {
				continue
			}
			arj := f.colDot(j, rv.rho)
			if arj >= -epsPivot {
				continue
			}
			d := rv.cost[j] - f.colDot(j, rv.y)
			if d < 0 {
				d = 0 // dual feasibility holds up to drift; clamp
			}
			ratio := d / -arj
			if ratio < bestRatio-epsReduced ||
				(ratio < bestRatio+epsReduced && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			// The row demands Σ a_j x_j = xB[leave] < 0 with every usable
			// coefficient ≥ 0: primal infeasible.
			return Infeasible
		}

		for i := range rv.alpha {
			rv.alpha[i] = 0
		}
		f.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)
		if math.Abs(rv.alpha[leave]) <= epsPivot {
			rv.numReason = "ftran/btran pivot mismatch"
			return statusNumerical
		}
		rv.pivotUpdate(leave, enter)
		if !rv.refactorIfDue() {
			return statusNumerical
		}

		infeas := rv.primalInfeasibility()
		if lastInfeas-infeas > epsImprove {
			stall = 0
			bland = false
		} else {
			stall++
			if stall >= rv.stallWindow {
				bland = true
				rv.stats.BlandActivated = true
			}
		}
		lastInfeas = infeas
	}
	return IterLimit
}

// primalInfeasibility sums the magnitude of negative basic values.
func (rv *revised) primalInfeasibility() float64 {
	s := 0.0
	for _, v := range rv.xB {
		if v < 0 {
			s -= v
		}
	}
	return s
}

// extract builds the Solution from an optimal terminal state.
func (rv *revised) extract(p *Problem, iters int) *Solution {
	f := rv.f
	sol := &Solution{Status: Optimal, Iters: iters, X: make([]float64, f.nOrig)}
	for i, bj := range rv.basis {
		if bj < f.nOrig {
			v := rv.xB[i]
			if v < 0 && v > -epsFeas {
				v = 0
			}
			sol.X[bj] = v
		}
	}
	// Duals y = c_Bᵀ B⁻¹ on the normalized rows, mapped back to the rows
	// as the caller stated them via rowSign (see tableau.duals for the
	// dense equivalent).
	rv.computeY()
	sol.Dual = make([]float64, f.m)
	for i := range sol.Dual {
		sol.Dual[i] = rv.y[i] * f.rowSign[i]
	}
	sol.Basis = make([]int, f.m)
	for i, bj := range rv.basis {
		if bj < f.nOrig {
			sol.Basis[i] = bj
		} else {
			sol.Basis[i] = f.nOrig + f.colOwner[bj]
		}
	}
	sol.Stats = rv.stats
	finishSolution(p, sol)
	return sol
}

// solveSparse is the sparse revised-simplex backend behind Solve.
func solveSparse(p *Problem, o *Options) (*Solution, error) {
	f := newSpForm(p)
	if len(o.WarmBasis) > 0 {
		rv := newRevised(f, o)
		if sol, ok := rv.solveWarm(p, o.WarmBasis); ok {
			return sol, nil
		}
		// Unusable warm basis: fall through to a cold solve on fresh state.
	}
	rv := newRevised(f, o)
	sol := rv.solveCold(p)
	if sol.Status == statusNumerical {
		return nil, &NumericalError{Backend: "sparse", Reason: rv.numReason, Pivots: sol.Iters}
	}
	return sol, nil
}

// solveCold runs two-phase primal simplex from the slack/artificial basis.
func (rv *revised) solveCold(p *Problem) *Solution {
	f := rv.f
	iters := 0
	if !rv.factorize(f.initBasis) {
		// The initial basis is triangular (±1 diagonals) and cannot be
		// singular; failure here means the inputs are numerically rotten.
		rv.numReason = "initial basis singular"
		return &Solution{Status: statusNumerical, Objective: math.NaN(), X: make([]float64, f.nOrig), Stats: rv.stats}
	}

	needPhase1 := false
	for _, bj := range rv.basis {
		if f.artificial[bj] {
			needPhase1 = true
			break
		}
	}

	if needPhase1 {
		for j := range rv.cost {
			if f.artificial[j] {
				rv.cost[j] = 1
			} else {
				rv.cost[j] = 0
			}
		}
		st := rv.phase("lp.phase1", &iters, func() Status { return rv.primal(&iters) })
		rv.stats.Phase1Iters = iters
		if st == IterLimit || st == Canceled || st == statusNumerical {
			return &Solution{Status: st, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		if rv.phaseObjective() > epsFeas {
			return &Solution{Status: Infeasible, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		if !rv.evictArtificials() {
			return &Solution{Status: statusNumerical, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		for j := range rv.blocked {
			if f.artificial[j] {
				rv.blocked[j] = true
			}
		}
	}

	copy(rv.cost, f.cost)
	st := rv.phase("lp.phase2", &iters, func() Status { return rv.primal(&iters) })
	rv.stats.Phase2Iters = iters - rv.stats.Phase1Iters
	if st != Optimal {
		return &Solution{Status: st, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
	}
	return rv.extract(p, iters)
}

// solveWarm attempts a warm-started solve from a problem-space basis.
// Returns ok=false when the basis is unusable (wrong shape, singular, dual
// infeasible, or the dual/primal repair exceeds the budget) — the caller
// then falls back to a cold solve. A returned solution is always a
// trustworthy terminal status (Optimal or Unbounded); infeasibility
// detected by the dual simplex is deliberately re-verified cold.
func (rv *revised) solveWarm(p *Problem, warm []int) (*Solution, bool) {
	f := rv.f
	if len(warm) > f.m {
		return nil, false
	}
	cols := make([]int, f.m)
	used := make([]bool, f.n)
	for r := 0; r < f.m; r++ {
		var col int
		if r < len(warm) {
			e := warm[r]
			switch {
			case e < 0 || e >= f.nOrig+f.m:
				return nil, false
			case e < f.nOrig:
				col = e
			default:
				col = f.auxCol[e-f.nOrig]
			}
		} else {
			// Rows appended after the basis was exported start with their
			// own canonical auxiliary basic (see the encoding notes).
			col = f.auxCol[r]
		}
		if used[col] {
			return nil, false
		}
		used[col] = true
		cols[r] = col
	}
	if !rv.factorize(cols) {
		return nil, false
	}

	copy(rv.cost, f.cost)
	for j := range rv.blocked {
		if f.artificial[j] {
			rv.blocked[j] = true
		}
	}

	// The warm basis must still be dual feasible (it is after RHS-only
	// changes and row appends; arbitrary edits void it).
	rv.computeY()
	for j := 0; j < f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		if rv.cost[j]-f.colDot(j, rv.y) < -epsDualFeas {
			return nil, false
		}
	}
	rv.stats.WarmStarted = true

	iters := 0
	switch rv.phase("lp.dual", &iters, func() Status { return rv.dual(&iters) }) {
	case Optimal:
		// Fall through to a primal polish (usually zero pivots).
	case Canceled:
		// Abandoned by the caller: falling back to a cold solve would burn
		// exactly the pivots cancellation is meant to save.
		return &Solution{Status: Canceled, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	case Infeasible, IterLimit, statusNumerical:
		// Numerical trouble on a warm basis is not worth fighting: the cold
		// solve starts from a pristine triangular basis.
		return nil, false
	}
	st := rv.phase("lp.phase2", &iters, func() Status { return rv.primal(&iters) })
	rv.stats.Phase2Iters = iters - rv.stats.DualIters
	switch st {
	case Optimal:
		return rv.extract(p, iters), true
	case Unbounded:
		return &Solution{Status: Unbounded, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	case Canceled:
		return &Solution{Status: Canceled, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	default:
		return nil, false
	}
}
