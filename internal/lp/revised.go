package lp

import (
	"context"
	"math"
	"sync"

	"powercap/internal/faultinject"
	"powercap/internal/lp/basis"
	"powercap/internal/obs"
)

// Revised simplex over sparse columns. The basis inverse lives behind the
// basis.Engine interface (internal/lp/basis): the original product-form eta
// file and the sparse Markowitz LU factorization are interchangeable, and
// either is rebuilt (reinversion) once enough pivot updates accumulate to
// bound fill-in and floating-point drift.
//
// The backend runs three pivot loops over the same machinery:
//
//   - primal phase 1 (artificial costs) from the all-slack/artificial basis,
//   - primal phase 2 (real costs),
//   - dual simplex, used to warm start: after an RHS-only change (a power
//     cap sweep step) or appended rows (branch-and-bound children), the
//     previous optimal basis stays dual feasible, and a handful of dual
//     pivots restore primal feasibility — the incremental re-optimization
//     the sweep layers in internal/core and internal/milp rely on.
//
// Any warm-start trouble (singular basis, lost dual feasibility, iteration
// budget) falls back to a cold solve, so warm starts never cost correctness.

// epsDualFeas is the reduced-cost tolerance below which a warm basis
// no longer counts as dual feasible and the warm start is abandoned.
const epsDualFeas = 1e-7

// revised is the working state of one revised-simplex solve.
type revised struct {
	f   *spForm
	eng basis.Engine
	pr  *pricer // nil under Dantzig pricing (the legacy exact scans)

	factorEpoch int // bumped on every successful factorize

	basis   []int  // per row: basic column
	isBasic []bool // per column
	blocked []bool // per column: excluded from entering

	xB   []float64 // basic variable values per row
	cost []float64 // current-phase costs

	// Dense scratch vectors, reused across iterations.
	alpha []float64
	y     []float64
	rho   []float64

	maxIters    int
	stallWindow int
	cancel      func() bool // polled every cancelCheckEvery pivots
	stats       SolveStats

	nanRetries int    // refactorization-and-retry attempts spent on NaN/Inf
	numReason  string // set when a pivot loop returns statusNumerical

	// sctx parents obs spans; the phase wrappers in solveCold/solveWarm
	// repoint it at their own span so refactorizations nest under the phase
	// that triggered them.
	sctx context.Context
}

// rvPool recycles revised-state arenas across solves. A power-cap sweep
// solves hundreds of similarly-sized LPs back to back; pooling keeps the
// pivot-loop scratch (dense work vectors, engine factor storage, pricer
// state) warm instead of reallocating ~10 slices per solve. Every slice is
// resized capacity-retaining in reset, so a pooled arena serves any shape.
var rvPool = sync.Pool{New: func() any { return new(revised) }}

func newRevised(f *spForm, o *Options) *revised {
	rv := rvPool.Get().(*revised)
	rv.reset(f, o)
	return rv
}

// release returns the arena to the pool. The caller must be done with every
// slice reachable from rv (Solutions copy what they keep, so extract's
// results survive the release).
func (rv *revised) release() {
	rv.f = nil
	rv.cancel = nil
	rv.sctx = nil
	rvPool.Put(rv)
}

// reset rebinds a (possibly pooled) arena to a fresh solve, growing the
// scratch only when the problem outgrew the previous tenant's capacity.
func (rv *revised) reset(f *spForm, o *Options) {
	rv.f = f
	rv.basis = growInts(rv.basis, f.m)
	rv.isBasic = growBools(rv.isBasic, f.n)
	rv.blocked = growBools(rv.blocked, f.n)
	rv.xB = growFloats(rv.xB, f.m)
	rv.cost = growFloats(rv.cost, f.n)
	rv.alpha = growFloats(rv.alpha, f.m)
	rv.y = growFloats(rv.y, f.m)
	rv.rho = growFloats(rv.rho, f.m)
	for j := range rv.isBasic {
		rv.isBasic[j] = false
	}
	for j := range rv.blocked {
		rv.blocked[j] = false
	}
	rv.factorEpoch = 0
	rv.nanRetries = 0
	rv.numReason = ""
	rv.stats = SolveStats{}

	switch o.Engine.resolve() {
	case EngineEta:
		if e, ok := rv.eng.(*basis.Eta); ok {
			e.Reset(f.m)
		} else {
			rv.eng = basis.NewEta(f.m)
		}
	default:
		if e, ok := rv.eng.(*basis.LU); ok {
			e.Reset(f.m)
		} else {
			rv.eng = basis.NewLU(f.m)
		}
	}
	rv.stats.Engine = rv.eng.Name()
	// Engines are pooled and never clear their own health counters (their
	// Reset runs inside mid-solve reinversions too); the solve boundary is
	// here.
	rv.eng.Health().Clear()
	if o.Pricing.resolve() == PricingSteepest {
		if rv.pr == nil {
			rv.pr = newPricer(f)
		} else {
			rv.pr.reset(f)
		}
	} else {
		rv.pr = nil
	}
	rv.stats.Pricing = o.Pricing.String()

	rv.maxIters = f.maxIters
	if o.MaxIters > 0 {
		rv.maxIters = o.MaxIters
	}
	rv.stallWindow = o.StallWindow
	if rv.stallWindow <= 0 {
		rv.stallWindow = stallWindow
	}
	rv.cancel = o.cancelFunc()
	rv.sctx = o.spanContext()
}

// growInts resizes s to n, reusing capacity (contents unspecified).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// phase wraps one pivot-loop phase in an obs span named name, nesting any
// refactorizations it triggers under that span. iters counts the pivots the
// phase consumed (for the span attribute).
func (rv *revised) phase(name string, iters *int, run func() Status) Status {
	before := *iters
	pctx, sp := obs.Start(rv.sctx, name)
	old := rv.sctx
	rv.sctx = pctx
	st := run()
	rv.sctx = old
	sp.SetAttr("pivots", *iters-before)
	sp.SetAttr("status", st.String())
	sp.End()
	return st
}

// ftran solves B·x = v in place (v dense, length m).
func (rv *revised) ftran(v []float64) { rv.eng.Ftran(v) }

// btran solves Bᵀ·y = v in place (v dense, length m).
func (rv *revised) btran(v []float64) { rv.eng.Btran(v) }

// factorize rebuilds the basis factorization for the given basis columns
// (the engine may reassign columns to rows). Returns false when the column
// set is singular. On success rv.basis holds the engine's slot assignment
// and rv.xB the basic values.
func (rv *revised) factorize(cols []int) bool {
	_, sp := obs.Start(rv.sctx, "lp.refactorize")
	defer sp.End()
	rv.stats.Refactorizations++
	slots, ok := rv.eng.Factorize(rv.f, cols)
	if !ok {
		return false
	}
	copy(rv.basis, slots)
	for j := range rv.isBasic {
		rv.isBasic[j] = false
	}
	for _, j := range rv.basis {
		rv.isBasic[j] = true
	}
	rv.factorEpoch++ // pricer refreshes (and resets its γ framework) lazily
	rv.computeXB()
	return true
}

// computeXB recomputes the basic values xB = B⁻¹ b.
func (rv *revised) computeXB() {
	copy(rv.xB, rv.f.b)
	rv.ftran(rv.xB)
}

// refactorIfDue reinverts once the engine's update file outgrows its budget.
// A false return means the basis went singular — a numerical breakdown,
// recorded in numReason for the statusNumerical paths.
func (rv *revised) refactorIfDue() bool {
	if !rv.eng.Due() {
		return true
	}
	return rv.reinvert()
}

// reinvert rebuilds the basis inverse from the current basis columns,
// recording the singular-basis reason on failure.
func (rv *revised) reinvert() bool {
	if !rv.factorize(append([]int(nil), rv.basis...)) {
		rv.numReason = "singular basis at refactorization"
		return false
	}
	return true
}

// stateFinite reports whether the working state (basic values and phase
// objective) is numerically sound.
func (rv *revised) stateFinite() bool {
	return finiteAll(rv.xB) && finite(rv.phaseObjective())
}

// recoverNumerical attempts to repair non-finite working state by rebuilding
// the basis inverse from scratch: reinversion recomputes xB = B⁻¹b from the
// clean standard form, so a corrupted working vector or accumulated eta
// drift is genuinely repaired. Bounded by maxNaNRetries per solve.
func (rv *revised) recoverNumerical() bool {
	for rv.nanRetries < maxNaNRetries {
		rv.nanRetries++
		if !rv.factorize(append([]int(nil), rv.basis...)) {
			return false
		}
		if rv.stateFinite() {
			return true
		}
	}
	return false
}

// checkpoint runs the per-cancelCheckEvery guards shared by the primal and
// dual pivot loops. Cancellation is checked before anything else so a dead
// context always surfaces as Canceled — never as a numerical artifact. The
// returned status is meaningful only when ok is false.
func (rv *revised) checkpoint() (st Status, ok bool) {
	if rv.cancel != nil && rv.cancel() {
		return Canceled, false
	}
	if faultinject.Armed() {
		if faultinject.Fire(faultinject.LPStall) {
			return IterLimit, false
		}
		if faultinject.Fire(faultinject.LPNaN) {
			rv.xB[0] = math.NaN()
		}
	}
	if !rv.stateFinite() {
		if !rv.recoverNumerical() {
			if rv.numReason == "" {
				rv.numReason = "non-finite basic values or objective"
			}
			return statusNumerical, false
		}
	}
	return Optimal, true
}

// computeY fills rv.y with the current-phase duals y = B⁻ᵀ c_B.
func (rv *revised) computeY() {
	for i := range rv.y {
		rv.y[i] = rv.cost[rv.basis[i]]
	}
	rv.btran(rv.y)
}

// phaseObjective evaluates the current phase's objective at xB.
func (rv *revised) phaseObjective() float64 {
	obj := 0.0
	for i, bj := range rv.basis {
		obj += rv.cost[bj] * rv.xB[i]
	}
	return obj
}

// priceEntering scans reduced costs and returns the entering column
// (Dantzig most-negative, or first-negative under Bland), or -1 at
// optimality. Requires rv.y to be current.
func (rv *revised) priceEntering(bland bool) int {
	f := rv.f
	best := -1
	bestVal := -epsReduced
	for j := 0; j < f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		d := rv.cost[j] - f.colDot(j, rv.y)
		if bland {
			if d < -epsReduced {
				return j
			}
			continue
		}
		if d < bestVal {
			bestVal = d
			best = j
		}
	}
	return best
}

// primal runs primal simplex pivots with the current costs, from the
// current factorized basis, until optimality, unboundedness, or the pivot
// budget runs out. iters is shared across phases via the pointer.
func (rv *revised) primal(iters *int) Status {
	f := rv.f
	bland := false
	stall := 0
	lastObj := rv.phaseObjective()
	// Pivot-count watchdog: a solve that has burned half its budget without
	// terminating is likely cycling or creeping; pin Bland's rule on for the
	// remainder, which guarantees finite termination.
	watchdog := rv.maxIters / 2
	if rv.pr != nil {
		rv.pr.invalidate() // phase costs changed (or eviction pivoted behind us)
	}

	for ; *iters < rv.maxIters; *iters++ {
		if *iters%cancelCheckEvery == 0 {
			if st, ok := rv.checkpoint(); !ok {
				return st
			}
			// Refresh in case a NaN recovery rebuilt xB; bitwise a no-op
			// otherwise (same state, same deterministic sum).
			lastObj = rv.phaseObjective()
		}
		if *iters >= watchdog && !bland {
			bland = true
			rv.stats.BlandActivated = true
			rv.stats.BlandActivations++
		}
		var enter int
		if rv.pr != nil {
			enter = rv.pr.priceEntering(rv, bland)
		} else {
			rv.computeY()
			enter = rv.priceEntering(bland)
		}
		if enter < 0 {
			return Optimal
		}

		for i := range rv.alpha {
			rv.alpha[i] = 0
		}
		f.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)

		// Minimum-ratio test. The Dantzig path breaks ties toward the
		// smallest basic column index (the same lexicographic nudge as the
		// dense backend). The steepest-edge path instead takes the LARGEST
		// pivot element among near-tied ratios (a Harris-style second pass):
		// SE's aggressive entering choices otherwise walk through strings of
		// barely-admissible ~epsPivot pivots whose accumulated ill-conditioning
		// the LU refactorization then rejects as singular.
		leave := -1
		bestRatio := math.Inf(1)
		if rv.pr != nil {
			for i := 0; i < f.m; i++ {
				a := rv.alpha[i]
				if a <= epsPivot {
					continue
				}
				if ratio := rv.xB[i] / a; ratio < bestRatio {
					bestRatio = ratio
				}
			}
			bestA := 0.0
			for i := 0; i < f.m; i++ {
				a := rv.alpha[i]
				if a <= epsPivot {
					continue
				}
				if rv.xB[i]/a <= bestRatio+epsPivot && a > bestA {
					bestA = a
					leave = i
				}
			}
		} else {
			for i := 0; i < f.m; i++ {
				a := rv.alpha[i]
				if a <= epsPivot {
					continue
				}
				ratio := rv.xB[i] / a
				if ratio < bestRatio-epsPivot ||
					(ratio < bestRatio+epsPivot && (leave < 0 || rv.basis[i] < rv.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			if rv.pr != nil {
				// The candidate came from incremental reduced costs; verify
				// the ray is genuinely improving before declaring the whole
				// problem unbounded.
				rv.pr.refresh(rv)
				if rv.pr.d[enter] >= -epsReduced {
					continue
				}
			}
			return Unbounded
		}

		leaveCol := rv.basis[leave]
		if rv.pr != nil {
			rv.pr.preparePivotRow(rv, leave)
		}
		rv.pivotUpdate(leave, enter)
		if rv.pr != nil {
			rv.pr.applyPivot(enter, leaveCol, rv.alpha[leave])
		}
		if !rv.refactorIfDue() {
			return statusNumerical
		}

		obj := rv.phaseObjective()
		if lastObj-obj > epsImprove {
			stall = 0
			bland = false
		} else {
			stall++
			if stall >= rv.stallWindow {
				bland = true
				rv.stats.BlandActivated = true
				rv.stats.BlandActivations++
			}
		}
		lastObj = obj
	}
	return IterLimit
}

// pivotUpdate applies the pivot (leave row, enter column) to xB, the basis,
// and the eta file. rv.alpha must hold B⁻¹·a_enter.
func (rv *revised) pivotUpdate(leave, enter int) {
	theta := rv.xB[leave] / rv.alpha[leave]
	for i := range rv.xB {
		if i == leave {
			continue
		}
		rv.xB[i] -= theta * rv.alpha[i]
		if rv.xB[i] < 0 && rv.xB[i] > -epsFeas {
			rv.xB[i] = 0
		}
	}
	rv.xB[leave] = theta
	rv.isBasic[rv.basis[leave]] = false
	rv.isBasic[enter] = true
	rv.eng.Update(leave, rv.alpha)
	rv.basis[leave] = enter
}

// evictArtificials pivots still-basic artificials (at value zero after a
// feasible phase 1) out wherever a real column has a usable pivot in their
// row; rows with none are redundant and keep the artificial basic at zero
// with its column blocked.
func (rv *revised) evictArtificials() bool {
	f := rv.f
	for r := 0; r < f.m; r++ {
		if !f.artificial[rv.basis[r]] {
			continue
		}
		for i := range rv.rho {
			rv.rho[i] = 0
		}
		rv.rho[r] = 1
		rv.btran(rv.rho)
		for j := 0; j < f.nReal; j++ {
			if rv.isBasic[j] {
				continue
			}
			if math.Abs(f.colDot(j, rv.rho)) <= epsPivot {
				continue
			}
			for i := range rv.alpha {
				rv.alpha[i] = 0
			}
			f.scatterCol(j, rv.alpha)
			rv.ftran(rv.alpha)
			if math.Abs(rv.alpha[r]) <= epsPivot {
				continue
			}
			rv.pivotUpdate(r, j)
			if !rv.refactorIfDue() {
				return false
			}
			break
		}
	}
	return true
}

// dual runs dual simplex pivots from a dual-feasible basis until primal
// feasibility (Optimal), proven primal infeasibility (Infeasible), or the
// budget runs out (IterLimit — callers fall back to a cold solve).
func (rv *revised) dual(iters *int) Status {
	f := rv.f
	bland := false
	stall := 0
	lastInfeas := rv.primalInfeasibility()
	watchdog := rv.maxIters / 2
	if rv.pr != nil {
		rv.pr.invalidate()
	}

	for ; *iters < rv.maxIters; *iters++ {
		if *iters%cancelCheckEvery == 0 {
			if st, ok := rv.checkpoint(); !ok {
				return st
			}
			lastInfeas = rv.primalInfeasibility()
		}
		if *iters >= watchdog && !bland {
			bland = true
			rv.stats.BlandActivated = true
			rv.stats.BlandActivations++
		}
		// Leaving row: most negative basic value (smallest row index under
		// the anti-cycling fallback).
		leave := -1
		worst := -epsFeas
		for i := 0; i < f.m; i++ {
			if rv.xB[i] < worst {
				worst = rv.xB[i]
				leave = i
				if bland {
					break
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		rv.stats.DualIters++

		// Pivot row of B⁻¹A and reduced costs for the ratio test. The
		// Dantzig path recomputes duals and dots every column; the pricer
		// path keeps d[] incrementally exact-on-refactorize and assembles
		// only the pivot row's touched columns.
		if rv.pr != nil {
			if bland {
				rv.pr.refresh(rv)
			} else {
				rv.pr.ensureFresh(rv)
			}
		} else {
			rv.computeY()
		}
		for i := range rv.rho {
			rv.rho[i] = 0
		}
		rv.rho[leave] = 1
		rv.btran(rv.rho)

		enter := -1
		bestRatio := math.Inf(1)
		if rv.pr != nil {
			// Same Harris-style pivot-size protection as the primal SE path:
			// find the minimum ratio, then the largest |a_rj| among near-ties.
			rv.pr.rowCombine(f, rv.rho)
			for _, j := range rv.pr.accCols {
				if rv.isBasic[j] || rv.blocked[j] {
					continue
				}
				arj := rv.pr.accVal[j]
				if arj >= -epsPivot {
					continue
				}
				d := rv.pr.d[j]
				if d < 0 {
					d = 0 // dual feasibility holds up to drift; clamp
				}
				if ratio := d / -arj; ratio < bestRatio {
					bestRatio = ratio
				}
			}
			bestA := 0.0
			for _, j := range rv.pr.accCols {
				if rv.isBasic[j] || rv.blocked[j] {
					continue
				}
				arj := rv.pr.accVal[j]
				if arj >= -epsPivot {
					continue
				}
				d := rv.pr.d[j]
				if d < 0 {
					d = 0
				}
				if d/-arj <= bestRatio+epsReduced && -arj > bestA {
					bestA = -arj
					enter = j
				}
			}
		} else {
			for j := 0; j < f.n; j++ {
				if rv.isBasic[j] || rv.blocked[j] {
					continue
				}
				arj := f.colDot(j, rv.rho)
				if arj >= -epsPivot {
					continue
				}
				d := rv.cost[j] - f.colDot(j, rv.y)
				if d < 0 {
					d = 0 // dual feasibility holds up to drift; clamp
				}
				ratio := d / -arj
				if ratio < bestRatio-epsReduced ||
					(ratio < bestRatio+epsReduced && (enter < 0 || j < enter)) {
					bestRatio = ratio
					enter = j
				}
			}
		}
		if enter < 0 {
			// The row demands Σ a_j x_j = xB[leave] < 0 with every usable
			// coefficient ≥ 0: primal infeasible. (The decision depends only
			// on the pivot row's signs, never on the maintained d[].)
			return Infeasible
		}

		for i := range rv.alpha {
			rv.alpha[i] = 0
		}
		f.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)
		if math.Abs(rv.alpha[leave]) <= epsPivot {
			// The pivot row (BTRAN) and pivot column (FTRAN) disagree. On
			// an update-laden factorization that is almost always
			// accumulated update drift, which a reinversion genuinely
			// repairs — rebuild and retry the iteration. Disagreement on a
			// fresh factorization is a real breakdown.
			if rv.eng.Updates() > 0 && rv.reinvert() {
				continue
			}
			if rv.numReason == "" {
				rv.numReason = "ftran/btran pivot mismatch"
			}
			return statusNumerical
		}
		leaveCol := rv.basis[leave]
		rv.pivotUpdate(leave, enter)
		if rv.pr != nil {
			rv.pr.applyPivot(enter, leaveCol, rv.alpha[leave])
		}
		if !rv.refactorIfDue() {
			return statusNumerical
		}

		infeas := rv.primalInfeasibility()
		if lastInfeas-infeas > epsImprove {
			stall = 0
			bland = false
		} else {
			stall++
			if stall >= rv.stallWindow {
				bland = true
				rv.stats.BlandActivated = true
				rv.stats.BlandActivations++
			}
		}
		lastInfeas = infeas
	}
	return IterLimit
}

// primalInfeasibility sums the magnitude of negative basic values.
func (rv *revised) primalInfeasibility() float64 {
	s := 0.0
	for _, v := range rv.xB {
		if v < 0 {
			s -= v
		}
	}
	return s
}

// extract builds the Solution from an optimal terminal state.
func (rv *revised) extract(p *Problem, iters int) *Solution {
	f := rv.f
	sol := &Solution{Status: Optimal, Iters: iters, X: make([]float64, f.nOrig)}
	for i, bj := range rv.basis {
		if bj < f.nOrig {
			v := rv.xB[i]
			if v < 0 && v > -epsFeas {
				v = 0
			}
			sol.X[bj] = v
		}
	}
	// Duals y = c_Bᵀ B⁻¹ on the normalized rows, mapped back to the rows
	// as the caller stated them via rowSign (see tableau.duals for the
	// dense equivalent).
	rv.computeY()
	sol.Dual = make([]float64, f.m)
	for i := range sol.Dual {
		sol.Dual[i] = rv.y[i] * f.rowSign[i]
	}
	sol.Basis = make([]int, f.m)
	for i, bj := range rv.basis {
		if bj < f.nOrig {
			sol.Basis[i] = bj
		} else {
			sol.Basis[i] = f.nOrig + f.colOwner[bj]
		}
	}
	sol.Stats = rv.stats
	finishSolution(p, sol)
	return sol
}

// solveSparse is the sparse revised-simplex backend behind Solve. One pooled
// arena serves the whole call: a failed warm attempt resets the same scratch
// for the cold fallback instead of allocating a second working set.
func solveSparse(p *Problem, o *Options) (*Solution, error) {
	f := newSpForm(p)
	rv := newRevised(f, o)
	defer rv.release()
	if len(o.WarmBasis) > 0 {
		if sol, ok := rv.solveWarm(p, o.WarmBasis); ok {
			rv.harvestHealth(&sol.Stats)
			return sol, nil
		}
		// Unusable warm basis: reset the arena and solve cold.
		rv.reset(f, o)
	}
	sol := rv.solveCold(p)
	rv.harvestHealth(&sol.Stats)
	if sol.Status == statusNumerical {
		return nil, &NumericalError{Backend: "sparse", Reason: rv.numReason, Pivots: sol.Iters}
	}
	return sol, nil
}

// harvestHealth folds the basis engine's health counters (cleared at reset,
// accumulated across every factorization and pivot of this solve) and the
// NaN-recovery count into a finished solution's stats. It runs after the
// terminal Solution exists so every exit path — extract, infeasible,
// iteration limit, cancellation — carries the same forensic counters.
func (rv *revised) harvestHealth(st *SolveStats) {
	h := rv.eng.Health()
	st.MaxEtaLen = h.MaxEtaLen
	st.PivotRejections = h.PivotRejections
	st.FactorTauRetries = h.TauRetries
	st.NaNRecoveries = rv.nanRetries
}

// solveCold runs two-phase primal simplex from the slack/artificial basis.
func (rv *revised) solveCold(p *Problem) *Solution {
	f := rv.f
	iters := 0
	if !rv.factorize(f.initBasis) {
		// The initial basis is triangular (±1 diagonals) and cannot be
		// singular; failure here means the inputs are numerically rotten.
		rv.numReason = "initial basis singular"
		return &Solution{Status: statusNumerical, Objective: math.NaN(), X: make([]float64, f.nOrig), Stats: rv.stats}
	}

	needPhase1 := false
	for _, bj := range rv.basis {
		if f.artificial[bj] {
			needPhase1 = true
			break
		}
	}

	if needPhase1 {
		for j := range rv.cost {
			if f.artificial[j] {
				rv.cost[j] = 1
			} else {
				rv.cost[j] = 0
			}
		}
		st := rv.phase("lp.phase1", &iters, func() Status { return rv.primal(&iters) })
		rv.stats.Phase1Iters = iters
		if st == IterLimit || st == Canceled || st == statusNumerical {
			return &Solution{Status: st, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		if rv.phaseObjective() > epsFeas {
			return &Solution{Status: Infeasible, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		if !rv.evictArtificials() {
			return &Solution{Status: statusNumerical, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
		}
		for j := range rv.blocked {
			if f.artificial[j] {
				rv.blocked[j] = true
			}
		}
	}

	copy(rv.cost, f.cost)
	st := rv.phase("lp.phase2", &iters, func() Status { return rv.primal(&iters) })
	rv.stats.Phase2Iters = iters - rv.stats.Phase1Iters
	if st != Optimal {
		return &Solution{Status: st, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}
	}
	return rv.extract(p, iters)
}

// solveWarm attempts a warm-started solve from a problem-space basis.
// Returns ok=false when the basis is unusable (wrong shape, singular, dual
// infeasible, or the dual/primal repair exceeds the budget) — the caller
// then falls back to a cold solve. A returned solution is always a
// trustworthy terminal status (Optimal or Unbounded); infeasibility
// detected by the dual simplex is deliberately re-verified cold.
func (rv *revised) solveWarm(p *Problem, warm []int) (*Solution, bool) {
	f := rv.f
	if len(warm) > f.m {
		return nil, false
	}
	cols := make([]int, f.m)
	used := make([]bool, f.n)
	for r := 0; r < f.m; r++ {
		var col int
		if r < len(warm) {
			e := warm[r]
			switch {
			case e < 0 || e >= f.nOrig+f.m:
				return nil, false
			case e < f.nOrig:
				col = e
			default:
				col = f.auxCol[e-f.nOrig]
			}
		} else {
			// Rows appended after the basis was exported start with their
			// own canonical auxiliary basic (see the encoding notes).
			col = f.auxCol[r]
		}
		if used[col] {
			return nil, false
		}
		used[col] = true
		cols[r] = col
	}
	if !rv.factorize(cols) {
		return nil, false
	}

	copy(rv.cost, f.cost)
	for j := range rv.blocked {
		if f.artificial[j] {
			rv.blocked[j] = true
		}
	}

	// The warm basis must still be dual feasible (it is after RHS-only
	// changes and row appends; arbitrary edits void it).
	rv.computeY()
	for j := 0; j < f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		if rv.cost[j]-f.colDot(j, rv.y) < -epsDualFeas {
			return nil, false
		}
	}
	rv.stats.WarmStarted = true

	iters := 0
	switch rv.phase("lp.dual", &iters, func() Status { return rv.dual(&iters) }) {
	case Optimal:
		// Fall through to a primal polish (usually zero pivots).
	case Canceled:
		// Abandoned by the caller: falling back to a cold solve would burn
		// exactly the pivots cancellation is meant to save.
		return &Solution{Status: Canceled, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	case Infeasible, IterLimit, statusNumerical:
		// Numerical trouble on a warm basis is not worth fighting: the cold
		// solve starts from a pristine triangular basis.
		return nil, false
	}
	st := rv.phase("lp.phase2", &iters, func() Status { return rv.primal(&iters) })
	rv.stats.Phase2Iters = iters - rv.stats.DualIters
	switch st {
	case Optimal:
		return rv.extract(p, iters), true
	case Unbounded:
		return &Solution{Status: Unbounded, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	case Canceled:
		return &Solution{Status: Canceled, Objective: math.NaN(), Iters: iters, X: make([]float64, f.nOrig), Stats: rv.stats}, true
	default:
		return nil, false
	}
}
