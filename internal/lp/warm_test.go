package lp

import (
	"math"
	"math/rand"
	"testing"
)

func randomBoundedLPSeed(seed int64) *Problem {
	return randomBoundedLP(rand.New(rand.NewSource(seed)))
}

// Warm-start tests: a basis exported by one solve must speed up — and never
// change — the result of the next solve after an RHS change or appended
// rows. Every assertion compares the warm result against an independent
// cold solve of the same modified problem.

// sweepLikeLP builds a small LP shaped like core's power-capped scheduling
// program: convex mixes with a shared capacity row whose RHS is the cap.
// Returns the problem and the index of the capacity row.
func sweepLikeLP() (*Problem, int) {
	p := NewProblem(Minimize)
	// Three tasks, two configurations each: fast/hungry vs slow/frugal.
	times := [3][2]float64{{4, 9}, {6, 11}, {3, 8}}
	power := [3][2]float64{{50, 20}, {55, 25}, {45, 15}}
	capRow := -1
	capExpr := Expr{}
	for ti := range times {
		a := p.AddVar("", times[ti][0])
		b := p.AddVar("", times[ti][1])
		p.MustConstraint("", Expr{}.Plus(a, 1).Plus(b, 1), EQ, 1)
		capExpr = capExpr.Plus(a, power[ti][0]).Plus(b, power[ti][1])
	}
	p.MustConstraint("cap", capExpr, LE, 150)
	capRow = p.NumConstraints() - 1
	return p, capRow
}

func TestWarmStartRHSSweep(t *testing.T) {
	p, capRow := sweepLikeLP()

	var basis []int
	warmPivots, coldPivots := 0, 0
	for _, cap := range []float64{150, 130, 110, 90, 75, 62} {
		if err := p.SetRHS(capRow, cap); err != nil {
			t.Fatal(err)
		}

		cold, err := Solve(p, WithBackend(BackendSparse))
		if err != nil {
			t.Fatal(err)
		}

		opts := []Option{WithBackend(BackendSparse)}
		if basis != nil {
			opts = append(opts, WithWarmBasis(basis))
		}
		warm, err := Solve(p, opts...)
		if err != nil {
			t.Fatal(err)
		}

		if warm.Status != cold.Status {
			t.Fatalf("cap %v: warm status %v, cold %v", cap, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
				t.Fatalf("cap %v: warm objective %v, cold %v", cap, warm.Objective, cold.Objective)
			}
			if basis != nil && !warm.Stats.WarmStarted {
				t.Fatalf("cap %v: warm basis supplied but not used", cap)
			}
			basis = warm.Basis
			warmPivots += warm.Stats.Pivots()
			coldPivots += cold.Stats.Pivots()
		}
	}
	// The whole point: warm-started sweeps pivot less than cold ones.
	if warmPivots >= coldPivots {
		t.Fatalf("warm sweep took %d pivots, cold %d — warm starting saved nothing", warmPivots, coldPivots)
	}
}

func TestWarmStartSweepToInfeasible(t *testing.T) {
	p, capRow := sweepLikeLP()
	sol, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Below the frugal-most total power (20+25+15=60) the cap is infeasible.
	if err := p.SetRHS(capRow, 45); err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(sol.Basis))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", warm.Status)
	}
}

func TestWarmStartAppendedRows(t *testing.T) {
	// Branch-and-bound shape: solve a relaxation, then append a bound row
	// (as milp does for x ≤ floor / x ≥ ceil branches) and warm start the
	// child from the parent basis.
	p, _ := sweepLikeLP()
	parent, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if parent.Status != Optimal {
		t.Fatalf("parent status %v", parent.Status)
	}

	child := p.Clone()
	child.MustConstraint("branch", Expr{}.Plus(Var(0), 1), LE, 0.25)
	child.MustConstraint("branch2", Expr{}.Plus(Var(2), 1), GE, 0.5)

	cold, err := Solve(child, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(child, WithBackend(BackendSparse), WithWarmBasis(parent.Basis))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("warm status %v, cold %v", warm.Status, cold.Status)
	}
	if cold.Status == Optimal {
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("warm objective %v, cold %v", warm.Objective, cold.Objective)
		}
	}
}

func TestWarmStartGarbageBasisFallsBack(t *testing.T) {
	p, _ := sweepLikeLP()
	cold, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	for _, garbage := range [][]int{
		{0, 0, 0, 0},             // duplicates
		{-1, 1, 2, 3},            // out of range (negative)
		{1000, 1001, 1002, 1003}, // out of range (too large)
		{0, 1, 2, 3, 4, 5, 6, 7}, // longer than the row count
	} {
		warm, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(garbage))
		if err != nil {
			t.Fatalf("basis %v: %v", garbage, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("basis %v: status %v", garbage, warm.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("basis %v: objective %v, cold %v", garbage, warm.Objective, cold.Objective)
		}
		if warm.Stats.WarmStarted {
			t.Fatalf("basis %v: unusable basis reported as warm-started", garbage)
		}
	}
}

func TestWarmStartRandomizedAgainstCold(t *testing.T) {
	// Property: for random bounded LPs, perturbing every RHS and warm
	// starting from the original basis always matches a cold solve.
	for seed := int64(1); seed <= 150; seed++ {
		p := randomBoundedLPSeed(seed)
		first, err := Solve(p, WithBackend(BackendSparse))
		if err != nil || first.Status != Optimal {
			continue
		}
		for r := 0; r < p.NumConstraints(); r++ {
			p.SetRHS(r, p.RHS(r)+float64((seed%5))-2)
		}
		cold, err := Solve(p, WithBackend(BackendSparse))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(first.Basis))
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm %v cold %v\n%s", seed, warm.Status, cold.Status, p)
		}
		if cold.Status == Optimal &&
			math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("seed %d: warm obj %v cold %v\n%s", seed, warm.Objective, cold.Objective, p)
		}
	}
}
