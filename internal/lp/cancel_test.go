package lp

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// bigRandomLP builds an always-feasible minimization with enough columns
// and rows that both backends need well over cancelCheckEvery pivots.
func bigRandomLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	const n = 120
	p := NewProblem(Minimize)
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = p.AddVar("", rng.Float64()*10-5)
	}
	for i := range vars {
		p.MustConstraint("", Expr{}.Plus(vars[i], 1), LE, 1+rng.Float64()*9)
	}
	for r := 0; r < 90; r++ {
		var e Expr
		for i := range vars {
			if rng.Intn(3) == 0 {
				e = e.Plus(vars[i], rng.Float64()*6-3)
			}
		}
		if len(e) == 0 {
			continue
		}
		p.MustConstraint("", e, GE, -rng.Float64()*10)
	}
	return p
}

// countdownCtx is a context.Context whose Err becomes non-nil after a fixed
// number of Err calls — a deterministic stand-in for a deadline expiring
// mid-solve, since the backends poll Err once per cancelCheckEvery pivots.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.DeadlineExceeded
	}
	c.remaining--
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestSolveCanceledBeforeFirstPivot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := bigRandomLP(1)
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		sol, err := Solve(p, WithBackend(backend), WithContext(ctx))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if sol.Status != Canceled {
			t.Fatalf("%v: status = %v, want Canceled", backend, sol.Status)
		}
		if sol.Iters != 0 {
			t.Fatalf("%v: %d pivots spent on a dead context, want 0", backend, sol.Iters)
		}
	}
}

func TestSolveCanceledMidPivotLoop(t *testing.T) {
	p := bigRandomLP(2)
	// Establish the uncancelled pivot count first, so the mid-solve
	// cancellation provably stopped early.
	full, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("baseline status = %v", full.Status)
	}
	if full.Iters <= 2*cancelCheckEvery {
		t.Fatalf("test LP too easy: %d pivots, need > %d", full.Iters, 2*cancelCheckEvery)
	}

	for _, backend := range []Backend{BackendDense, BackendSparse} {
		ctx := &countdownCtx{Context: context.Background(), remaining: 2}
		sol, err := Solve(p, WithBackend(backend), WithContext(ctx))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if sol.Status != Canceled {
			t.Fatalf("%v: status = %v, want Canceled", backend, sol.Status)
		}
		if sol.Iters == 0 || sol.Iters > 3*cancelCheckEvery {
			t.Fatalf("%v: canceled after %d pivots, want in (0, %d]", backend, sol.Iters, 3*cancelCheckEvery)
		}
	}
}

// TestSolveWarmStartCanceled covers the warm-start dual-simplex path: a
// canceled warm repair must report Canceled rather than silently falling
// back to a cold solve.
func TestSolveWarmStartCanceled(t *testing.T) {
	p := bigRandomLP(3)
	sol, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("baseline status = %v", sol.Status)
	}
	// Perturb every RHS so the dual repair has real work to do, then hand
	// it a dead context.
	for r := 0; r < p.NumConstraints(); r++ {
		p.SetRHS(r, p.RHS(r)*0.5)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	warm, err := Solve(p, WithBackend(BackendSparse), WithWarmBasis(sol.Basis), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Canceled {
		t.Fatalf("warm status = %v, want Canceled", warm.Status)
	}
}

// TestSolveWithLiveContextUnaffected asserts a never-canceled context does
// not change the solution.
func TestSolveWithLiveContextUnaffected(t *testing.T) {
	p := bigRandomLP(4)
	plain, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Solve(p, WithBackend(BackendSparse), WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != withCtx.Status || plain.Objective != withCtx.Objective {
		t.Fatalf("context changed the solve: %v/%v vs %v/%v",
			plain.Status, plain.Objective, withCtx.Status, withCtx.Objective)
	}
}
