package lp

// Sparse standard computational form shared by the revised simplex backend.
// The conversion mirrors newTableau exactly — rows normalized to b ≥ 0,
// slack/surplus/artificial columns in the same layout — so the two backends
// solve literally the same standard-form program and their optimal
// objectives are comparable to floating-point accuracy.

// spForm is a Problem in sparse column (CSC) standard form: A x = b, x ≥ 0,
// b ≥ 0, minimize cᵀx.
type spForm struct {
	m, n  int // rows, total columns (vars + slacks + artificials)
	nOrig int // structural (user) columns
	nReal int // columns excluding artificials

	colPtr []int // n+1 offsets into rowIdx/vals
	rowIdx []int
	vals   []float64

	// CSR mirror of the same matrix, built on demand (ensureCSR) for the
	// pricing layer's sparse pivot-row assembly.
	rowPtr  []int
	colIdx  []int32
	rowVals []float64

	b    []float64 // right-hand sides, ≥ 0
	cost []float64 // minimize-sense phase-2 costs

	artificial []bool    // per column
	auxCol     []int     // per row: canonical auxiliary column
	auxSign    []float64 // per row: sign of that column's coefficient
	rowSign    []float64 // per row: normalization sign vs. the stated row
	colOwner   []int     // per column: owning row for aux columns, -1 otherwise
	initBasis  []int     // phase-1 starting basis (slack or artificial per row)

	maxIters int
}

// col returns column j's nonzero rows and values.
func (f *spForm) col(j int) ([]int, []float64) {
	lo, hi := f.colPtr[j], f.colPtr[j+1]
	return f.rowIdx[lo:hi], f.vals[lo:hi]
}

// ensureCSR transposes the CSC storage into row-major form. Only the
// steepest-edge pricer needs row access, so the transpose is deferred until
// a pricer is attached.
func (f *spForm) ensureCSR() {
	if f.rowPtr != nil {
		return
	}
	f.rowPtr = make([]int, f.m+1)
	for _, r := range f.rowIdx {
		f.rowPtr[r+1]++
	}
	for i := 0; i < f.m; i++ {
		f.rowPtr[i+1] += f.rowPtr[i]
	}
	f.colIdx = make([]int32, len(f.rowIdx))
	f.rowVals = make([]float64, len(f.vals))
	next := append([]int(nil), f.rowPtr[:f.m]...)
	for j := 0; j < f.n; j++ {
		lo, hi := f.colPtr[j], f.colPtr[j+1]
		for k := lo; k < hi; k++ {
			r := f.rowIdx[k]
			f.colIdx[next[r]] = int32(j)
			f.rowVals[next[r]] = f.vals[k]
			next[r]++
		}
	}
}

// NumRows implements basis.Columns.
func (f *spForm) NumRows() int { return f.m }

// Col implements basis.Columns.
func (f *spForm) Col(j int) ([]int, []float64) { return f.col(j) }

// scatterCol expands column j into the dense vector x (which must be
// zeroed by the caller where required).
func (f *spForm) scatterCol(j int, x []float64) {
	rows, vals := f.col(j)
	for k, r := range rows {
		x[r] = vals[k]
	}
}

// colDot returns the dot product of column j with the dense vector y.
func (f *spForm) colDot(j int, y []float64) float64 {
	rows, vals := f.col(j)
	s := 0.0
	for k, r := range rows {
		s += vals[k] * y[r]
	}
	return s
}

// newSpForm converts a Problem to sparse standard form.
func newSpForm(p *Problem) *spForm {
	m := len(p.rows)
	nOrig := len(p.names)

	slacks, arts := 0, 0
	for _, r := range p.rows {
		rel := r.rel
		if r.rhs < 0 {
			rel = flipRel(rel)
		}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	n := nOrig + slacks + arts

	f := &spForm{
		m: m, n: n,
		nOrig:      nOrig,
		nReal:      nOrig + slacks,
		b:          make([]float64, m),
		cost:       make([]float64, n),
		artificial: make([]bool, n),
		auxCol:     make([]int, m),
		auxSign:    make([]float64, m),
		rowSign:    make([]float64, m),
		colOwner:   make([]int, n),
		initBasis:  make([]int, m),
		maxIters:   p.maxIters,
	}
	if f.maxIters == 0 {
		f.maxIters = 200 * (m + n + 10)
	}
	for j := range f.colOwner {
		f.colOwner[j] = -1
	}

	// Accumulate structural entries column-wise (duplicate terms in a row
	// are summed, matching the dense ingestion).
	type rowVal struct {
		row int
		val float64
	}
	structural := make([][]rowVal, nOrig)
	slackCol := nOrig
	artCol := nOrig + slacks
	rowAcc := map[int]float64{}
	for i, r := range p.rows {
		sign := 1.0
		rel := r.rel
		if r.rhs < 0 {
			sign = -1
			rel = flipRel(rel)
		}
		clear(rowAcc)
		for _, term := range r.terms {
			rowAcc[int(term.Var)] += sign * term.Coef
		}
		for v, c := range rowAcc {
			if c != 0 {
				structural[v] = append(structural[v], rowVal{row: i, val: c})
			}
		}
		f.b[i] = sign * r.rhs
		f.rowSign[i] = sign

		switch rel {
		case LE:
			f.auxCol[i], f.auxSign[i] = slackCol, 1
			f.colOwner[slackCol] = i
			f.initBasis[i] = slackCol
			slackCol++
		case GE:
			f.auxCol[i], f.auxSign[i] = slackCol, -1
			f.colOwner[slackCol] = i
			slackCol++
			f.artificial[artCol] = true
			f.colOwner[artCol] = i
			f.initBasis[i] = artCol
			artCol++
		case EQ:
			f.auxCol[i], f.auxSign[i] = artCol, 1
			f.artificial[artCol] = true
			f.colOwner[artCol] = i
			f.initBasis[i] = artCol
			artCol++
		}
	}

	// Assemble CSC: structural columns carry their accumulated rows;
	// every auxiliary column is a single ±e_row entry.
	nnz := 0
	for _, c := range structural {
		nnz += len(c)
	}
	nnz += slacks + arts
	f.colPtr = make([]int, n+1)
	f.rowIdx = make([]int, 0, nnz)
	f.vals = make([]float64, 0, nnz)
	for j := 0; j < nOrig; j++ {
		f.colPtr[j] = len(f.rowIdx)
		for _, rv := range structural[j] {
			f.rowIdx = append(f.rowIdx, rv.row)
			f.vals = append(f.vals, rv.val)
		}
	}
	for j := nOrig; j < n; j++ {
		f.colPtr[j] = len(f.rowIdx)
		i := f.colOwner[j]
		v := 1.0
		if !f.artificial[j] && f.auxCol[i] == j {
			v = f.auxSign[i] // −1 for a surplus column
		}
		f.rowIdx = append(f.rowIdx, i)
		f.vals = append(f.vals, v)
	}
	f.colPtr[n] = len(f.rowIdx)

	// Structural columns may have unsorted row order from map iteration;
	// sort each for deterministic numerics.
	for j := 0; j < nOrig; j++ {
		lo, hi := f.colPtr[j], f.colPtr[j+1]
		insertionSortByRow(f.rowIdx[lo:hi], f.vals[lo:hi])
	}

	// Phase-2 costs, minimize-normalized.
	for j := 0; j < nOrig; j++ {
		c := p.obj[j]
		if p.sense == Maximize {
			c = -c
		}
		f.cost[j] = c
	}
	return f
}

// insertionSortByRow co-sorts (rows, vals) by row index; columns are short,
// so insertion sort beats the allocation cost of sort.Slice.
func insertionSortByRow(rows []int, vals []float64) {
	for i := 1; i < len(rows); i++ {
		r, v := rows[i], vals[i]
		j := i - 1
		for j >= 0 && rows[j] > r {
			rows[j+1], vals[j+1] = rows[j], vals[j]
			j--
		}
		rows[j+1], vals[j+1] = r, v
	}
}
