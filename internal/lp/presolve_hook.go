package lp

// Glue between Solve and the internal/lp/presolve pass: convert a Problem
// to the neutral presolve representation, solve the reduced problem on the
// selected backend, and map the solution back to the original index spaces.
// Presolve runs under every solve path; warm-started solves drop to
// ScaleOnly because a warm basis is indexed by the original rows/columns.

import (
	"math"

	"powercap/internal/lp/presolve"
)

// neutralize snapshots p in the presolve package's representation. Nothing
// is shared mutably: presolve copies what it rewrites.
func neutralize(p *Problem) *presolve.Problem {
	np := &presolve.Problem{NumVars: len(p.names), Cost: p.obj}
	np.Rows = make([]presolve.Row, len(p.rows))
	for i, r := range p.rows {
		nr := presolve.Row{
			Rel:  presolve.Rel(r.rel),
			RHS:  r.rhs,
			Cols: make([]int, len(r.terms)),
			Vals: make([]float64, len(r.terms)),
		}
		for k, t := range r.terms {
			nr.Cols[k] = int(t.Var)
			nr.Vals[k] = t.Coef
		}
		np.Rows[i] = nr
	}
	return np
}

// reducedProblem realizes the reduced neutral problem as an lp.Problem,
// carrying over the sense, pivot budget, and the surviving names.
func reducedProblem(p *Problem, red *presolve.Reduction) *Problem {
	rp := &Problem{
		sense:    p.sense,
		maxIters: p.maxIters,
		names:    make([]string, red.P.NumVars),
		obj:      append([]float64(nil), red.P.Cost...),
		rows:     make([]constraint, len(red.P.Rows)),
	}
	for jn, jo := range red.VarMap {
		rp.names[jn] = p.names[jo]
	}
	for in, row := range red.P.Rows {
		terms := make([]Term, len(row.Cols))
		for k, c := range row.Cols {
			terms[k] = Term{Var: Var(c), Coef: row.Vals[k]}
		}
		rp.rows[in] = constraint{
			name:  p.rows[red.RowMap[in]].name,
			terms: terms,
			rel:   Rel(row.Rel),
			rhs:   row.RHS,
		}
	}
	return rp
}

// emptySolution is the non-optimal terminal shape shared by the presolve
// short circuits (status carries the verdict; X is zeroed at original size).
func emptySolution(p *Problem, st Status) *Solution {
	return &Solution{Status: st, Objective: math.NaN(), X: make([]float64, len(p.names))}
}

// solvePresolved runs presolve, dispatches the reduced problem to the
// selected backend, and postsolves the answer back onto p.
func solvePresolved(p *Problem, o *Options) (*Solution, error) {
	mode := presolve.Full
	if len(o.WarmBasis) > 0 {
		mode = presolve.ScaleOnly
	}
	red := presolve.Run(neutralize(p), mode)

	switch red.Outcome {
	case presolve.OutcomeInfeasible:
		return emptySolution(p, Infeasible), nil
	case presolve.OutcomeSolved:
		// Eliminations consumed the whole problem; the journal IS the
		// solution.
		sol := &Solution{
			Status: Optimal,
			X:      red.PostsolvePrimal(nil),
			Dual:   red.PostsolveDual(nil),
			Basis:  red.MapBasis(nil, 0),
		}
		finishObjective(p, red, sol)
		return sol, nil
	}

	if len(red.P.Rows) == 0 {
		// Unconstrained surviving columns: the optimum pins them at zero
		// unless one improves the objective without limit.
		for jn := range red.P.Cost {
			c := red.P.Cost[jn]
			if (p.sense == Minimize && c < 0) || (p.sense == Maximize && c > 0) {
				return emptySolution(p, Unbounded), nil
			}
		}
		sol := &Solution{
			Status: Optimal,
			X:      red.PostsolvePrimal(make([]float64, red.P.NumVars)),
			Dual:   red.PostsolveDual(nil),
			Basis:  red.MapBasis(nil, red.P.NumVars),
		}
		finishObjective(p, red, sol)
		return sol, nil
	}

	rp := reducedProblem(p, red)
	sol, err := dispatchBackend(rp, o)
	if err != nil || sol == nil {
		return sol, err
	}
	sol.Stats.PresolveRows = red.RowsRemoved
	sol.Stats.PresolveCols = red.ColsRemoved
	sol.Stats.RowNormMax = red.RowNormMax
	sol.Stats.RowNormMin = red.RowNormMin
	if sol.Status != Optimal {
		out := emptySolution(p, sol.Status)
		out.Iters = sol.Iters
		out.Stats = sol.Stats
		return out, nil
	}
	out := &Solution{
		Status: Optimal,
		X:      red.PostsolvePrimal(sol.X),
		Dual:   red.PostsolveDual(sol.Dual),
		Iters:  sol.Iters,
		Stats:  sol.Stats,
	}
	if len(sol.Basis) > 0 {
		out.Basis = red.MapBasis(sol.Basis, red.P.NumVars)
	}
	finishObjective(p, red, out)
	return out, nil
}

// finishObjective evaluates the original objective at the postsolved point.
// (finishSolution is NOT reused here: the backend already own-sensed the
// reduced duals, and PostsolveDual preserves that sense.)
func finishObjective(p *Problem, _ *presolve.Reduction, sol *Solution) {
	obj := 0.0
	for j, c := range p.obj {
		obj += c * sol.X[j]
	}
	sol.Objective = obj
}
