// Package lp implements a dense two-phase primal simplex solver for linear
// programs over nonnegative variables:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ   for each constraint i
//	            x ≥ 0
//
// The solver is self-contained (standard library only) and produces exact
// optimal basic solutions, which is what the paper's upper-bound argument
// requires. Upper bounds on variables, when needed, are expressed as explicit
// ≤ constraints by the caller; the power-scheduling LPs built in
// internal/core never need them because configuration fractions are bounded
// by their convexity rows (Σ c = 1, c ≥ 0).
//
// Degenerate scheduling LPs can cycle under Dantzig pricing, so the solver
// switches to Bland's anti-cycling rule after an iteration stall (see
// DESIGN.md §5.4).
package lp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Rel is the relational operator of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Sense selects the optimization direction of a Problem.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota
	Maximize
)

// Status reports the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution with x ≥ 0.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterLimit means the pivot limit was exhausted before convergence.
	IterLimit
	// Canceled means the solve was abandoned mid-pivot because the
	// context supplied via WithContext was canceled or its deadline
	// passed. No statement about the problem is implied.
	Canceled
)

// String describes the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Var identifies a decision variable within a Problem.
type Var int

// Term is a coefficient applied to a variable inside a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Expr is a linear expression: a sum of terms. Duplicate variables are
// permitted; their coefficients are accumulated when the row is ingested.
type Expr []Term

// Plus returns e extended with the term coef·v.
func (e Expr) Plus(v Var, coef float64) Expr {
	return append(e, Term{Var: v, Coef: coef})
}

// constraint is one ingested row.
type constraint struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	sense    Sense
	names    []string
	obj      []float64
	rows     []constraint
	maxIters int
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// SetMaxIters overrides the simplex pivot limit. Zero (the default) selects
// an automatic limit proportional to the problem size.
func (p *Problem) SetMaxIters(n int) { p.maxIters = n }

// NumVars reports how many variables have been declared.
func (p *Problem) NumVars() int { return len(p.names) }

// NumConstraints reports how many constraint rows have been added.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddVar declares a new nonnegative variable with the given objective
// coefficient and returns its handle.
func (p *Problem) AddVar(name string, objCoef float64) Var {
	if name == "" {
		name = fmt.Sprintf("x%d", len(p.names))
	}
	p.names = append(p.names, name)
	p.obj = append(p.obj, objCoef)
	return Var(len(p.names) - 1)
}

// SetObjCoef replaces the objective coefficient of v.
func (p *Problem) SetObjCoef(v Var, coef float64) error {
	if int(v) < 0 || int(v) >= len(p.obj) {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.obj[v] = coef
	return nil
}

// VarName reports the name a variable was declared with.
func (p *Problem) VarName(v Var) string {
	if int(v) < 0 || int(v) >= len(p.names) {
		return fmt.Sprintf("<bad var %d>", v)
	}
	return p.names[v]
}

// AddConstraint appends the row  expr rel rhs. Terms referencing undeclared
// variables are rejected.
func (p *Problem) AddConstraint(name string, expr Expr, rel Rel, rhs float64) error {
	for _, t := range expr {
		if int(t.Var) < 0 || int(t.Var) >= len(p.names) {
			return fmt.Errorf("lp: constraint %q references undeclared variable %d", name, t.Var)
		}
	}
	if name == "" {
		name = fmt.Sprintf("r%d", len(p.rows))
	}
	terms := make([]Term, len(expr))
	copy(terms, expr)
	p.rows = append(p.rows, constraint{name: name, terms: terms, rel: rel, rhs: rhs})
	return nil
}

// MustConstraint is AddConstraint that panics on malformed input. It is
// intended for programmatically generated rows where an error indicates a
// bug in the generator, not bad user input.
func (p *Problem) MustConstraint(name string, expr Expr, rel Rel, rhs float64) {
	if err := p.AddConstraint(name, expr, rel, rhs); err != nil {
		panic(err)
	}
}

// SetRHS replaces the right-hand side of the row'th constraint. Power-cap
// sweeps re-solve the same constraint matrix under a family of right-hand
// sides; mutating the RHS in place (and warm starting from the previous
// basis) avoids rebuilding the problem per sweep point.
func (p *Problem) SetRHS(row int, rhs float64) error {
	if row < 0 || row >= len(p.rows) {
		return fmt.Errorf("lp: row %d out of range", row)
	}
	p.rows[row].rhs = rhs
	return nil
}

// RHS reports the current right-hand side of the row'th constraint.
func (p *Problem) RHS(row int) float64 {
	if row < 0 || row >= len(p.rows) {
		return math.NaN()
	}
	return p.rows[row].rhs
}

// Clone returns an independent deep copy of the problem. Mutating the clone
// (adding variables, rows, or changing objective coefficients) never affects
// the original; internal/milp relies on this to build branch-and-bound node
// relaxations.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		sense:    p.sense,
		names:    append([]string(nil), p.names...),
		obj:      append([]float64(nil), p.obj...),
		rows:     make([]constraint, len(p.rows)),
		maxIters: p.maxIters,
	}
	for i, r := range p.rows {
		c.rows[i] = constraint{
			name:  r.name,
			terms: append([]Term(nil), r.terms...),
			rel:   r.rel,
			rhs:   r.rhs,
		}
	}
	return c
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64   // objective value in the problem's own sense
	X         []float64 // one value per declared variable
	Iters     int       // simplex pivots performed across both phases

	// Dual holds one dual value (shadow price) per constraint row, in the
	// problem's own sense: the rate of change of the optimal objective
	// per unit increase of the row's right-hand side. Only populated at
	// Optimal. For degenerate optima the dual is one valid member of the
	// dual face.
	Dual []float64

	// Basis is the optimal basis in problem space (see the encoding notes
	// in solver.go): one entry per constraint row, each either a
	// structural variable index (< NumVars) or NumVars+r for row r's
	// canonical auxiliary variable. Pass it to a subsequent Solve via
	// WithWarmBasis after an RHS change or row append. Only populated at
	// Optimal.
	Basis []int

	// Stats instruments the solve (backend, per-phase pivots, wall time).
	Stats SolveStats
}

// DualOf returns the shadow price of the i'th constraint added to the
// problem (NaN when unavailable).
func (s *Solution) DualOf(row int) float64 {
	if s == nil || row < 0 || row >= len(s.Dual) {
		return math.NaN()
	}
	return s.Dual[row]
}

// Value returns the optimal value of v.
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.X) {
		return math.NaN()
	}
	return s.X[v]
}

// ErrNoVariables is returned when Solve is called on a problem with no
// declared variables.
var ErrNoVariables = errors.New("lp: problem has no variables")

// Solve runs the default (dense two-phase primal simplex) backend and
// returns the solution. The returned error is non-nil only for malformed
// problems; infeasibility and unboundedness are reported through
// Solution.Status. Use the package-level Solve with options to select
// another backend or warm start.
func (p *Problem) Solve() (*Solution, error) {
	return Solve(p)
}

// String renders the problem in a human-readable LP-file-like format,
// useful in tests and debugging.
func (p *Problem) String() string {
	var b strings.Builder
	if p.sense == Minimize {
		b.WriteString("min ")
	} else {
		b.WriteString("max ")
	}
	first := true
	for j, c := range p.obj {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g %s", c, p.names[j])
		first = false
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\ns.t.\n")
	for _, r := range p.rows {
		fmt.Fprintf(&b, "  %s: ", r.name)
		for i, t := range r.terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%g %s", t.Coef, p.names[t.Var])
		}
		fmt.Fprintf(&b, " %s %g\n", r.rel, r.rhs)
	}
	return b.String()
}
