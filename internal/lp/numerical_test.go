package lp

import (
	"context"
	"errors"
	"math"
	"testing"

	"powercap/internal/faultinject"
)

// smallLP is an always-feasible minimization that solves in well under one
// checkpoint window (cancelCheckEvery pivots), so a rate-1.0 NaN injection
// fires exactly once — at the iteration-0 checkpoint — and a single
// refactorization recovery must carry the solve to optimality.
func smallLP() *Problem {
	p := NewProblem(Minimize)
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -2)
	z := p.AddVar("z", 1)
	p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 1), LE, 4)
	p.MustConstraint("", Expr{}.Plus(x, 1).Plus(z, 2), LE, 6)
	p.MustConstraint("", Expr{}.Plus(y, 1).Plus(z, -1), LE, 3)
	return p
}

// TestInjectedNaNSparseRecovers: one injected NaN must be repaired by
// reinversion, and because reinversion rebuilds exactly the state the solve
// already had, the objective must match the fault-free solve bit for bit.
func TestInjectedNaNSparseRecovers(t *testing.T) {
	p := smallLP()
	clean, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Status != Optimal {
		t.Fatalf("baseline status = %v", clean.Status)
	}
	if clean.Iters >= cancelCheckEvery {
		t.Fatalf("test LP too hard: %d pivots, need < %d for a single injection", clean.Iters, cancelCheckEvery)
	}

	faultinject.Configure(11, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
	defer faultinject.Disable()
	sol, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatalf("sparse solve with one recoverable NaN: %v", err)
	}
	if faultinject.Count(faultinject.LPNaN) == 0 {
		t.Fatal("fault never fired; test exercises nothing")
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want Optimal after NaN recovery", sol.Status)
	}
	if math.Float64bits(sol.Objective) != math.Float64bits(clean.Objective) {
		t.Fatalf("objective %v != clean %v after recovery", sol.Objective, clean.Objective)
	}
	if sol.Stats.Refactorizations <= clean.Stats.Refactorizations {
		t.Fatalf("recovery left no reinversion trace: %d <= %d",
			sol.Stats.Refactorizations, clean.Stats.Refactorizations)
	}
}

// TestInjectedNaNSparseExhaustsRetries: a NaN at every checkpoint outlives
// the maxNaNRetries budget on a long solve and must surface as a typed
// *NumericalError, not as a NaN-laced solution or a bare IterLimit.
func TestInjectedNaNSparseExhaustsRetries(t *testing.T) {
	p := bigRandomLP(1)
	clean, err := Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Iters <= (maxNaNRetries+1)*cancelCheckEvery {
		t.Fatalf("test LP too easy: %d pivots, need > %d to exhaust retries",
			clean.Iters, (maxNaNRetries+1)*cancelCheckEvery)
	}

	faultinject.Configure(12, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
	defer faultinject.Disable()
	sol, err := Solve(p, WithBackend(BackendSparse))
	if err == nil {
		t.Fatalf("want *NumericalError, got status %v", sol.Status)
	}
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("error %T is not *NumericalError: %v", err, err)
	}
	if ne.Backend != "sparse" {
		t.Fatalf("Backend = %q, want sparse", ne.Backend)
	}
	if ne.Reason == "" {
		t.Fatal("empty Reason")
	}
}

// TestInjectedNaNDenseErrorsTyped: the dense tableau has no factored form to
// rebuild, so an injected NaN must surface directly as *NumericalError.
func TestInjectedNaNDenseErrorsTyped(t *testing.T) {
	faultinject.Configure(13, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
	defer faultinject.Disable()
	sol, err := Solve(bigRandomLP(2), WithBackend(BackendDense))
	if err == nil {
		t.Fatalf("want *NumericalError, got status %v", sol.Status)
	}
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("error %T is not *NumericalError: %v", err, err)
	}
	if ne.Backend != "dense" {
		t.Fatalf("Backend = %q, want dense", ne.Backend)
	}
}

// TestInjectedStallSurfacesIterLimit: the LPStall fault reports budget
// exhaustion through the normal IterLimit status, no error — the ladder
// treats it as a transient, like a genuinely hard solve.
func TestInjectedStallSurfacesIterLimit(t *testing.T) {
	faultinject.Configure(14, map[faultinject.Class]float64{faultinject.LPStall: 1.0})
	defer faultinject.Disable()
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		sol, err := Solve(bigRandomLP(3), WithBackend(backend))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if sol.Status != IterLimit {
			t.Fatalf("%v: status = %v, want IterLimit", backend, sol.Status)
		}
		if !math.IsNaN(sol.Objective) {
			t.Fatalf("%v: stalled solve leaked objective %v", backend, sol.Objective)
		}
	}
}

// TestCancellationBeatsInjectedFaults: a dead context must surface as
// Canceled even when every checkpoint would also inject a fault — the
// checkpoint ordering guarantees cancellation is never masked.
func TestCancellationBeatsInjectedFaults(t *testing.T) {
	faultinject.Configure(15, map[faultinject.Class]float64{
		faultinject.LPNaN:   1.0,
		faultinject.LPStall: 1.0,
	})
	defer faultinject.Disable()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		sol, err := Solve(bigRandomLP(4), WithBackend(backend), WithContext(ctx))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if sol.Status != Canceled {
			t.Fatalf("%v: status = %v, want Canceled", backend, sol.Status)
		}
	}
}

// TestFaultsOffBitIdentical: arming and disarming the registry must leave no
// residue — a disarmed solve after a chaos run is bit-identical to one from
// a pristine process state, on both backends.
func TestFaultsOffBitIdentical(t *testing.T) {
	p := bigRandomLP(5)
	type res struct {
		status Status
		obj    uint64
		iters  int
	}
	solve := func(b Backend) res {
		sol, err := Solve(p, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		return res{sol.Status, math.Float64bits(sol.Objective), sol.Iters}
	}
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		before := solve(backend)
		faultinject.Configure(16, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
		if _, err := Solve(p, WithBackend(backend)); err == nil && backend == BackendDense {
			t.Fatal("armed dense solve unexpectedly survived rate-1.0 NaN injection")
		}
		faultinject.Disable()
		after := solve(backend)
		if before != after {
			t.Fatalf("%v: disarmed solve changed: %+v vs %+v", backend, before, after)
		}
	}
}
