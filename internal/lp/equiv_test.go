package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Backend equivalence harness (see ISSUE: both simplex backends must agree
// on every instance — statuses exactly, objectives within 1e-9). The corpus
// covers the named instances the dense backend was originally validated on,
// and the randomized sweep reuses the bounded-LP generator from the
// brute-force property tests.

const equivObjTol = 1e-9

// equivInstance is one named LP for the cross-backend corpus.
type equivInstance struct {
	name  string
	build func() *Problem
}

func equivCorpus() []equivInstance {
	return []equivInstance{
		{"simple-minimize", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 2)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 1), GE, 4)
			p.MustConstraint("", Expr{}.Plus(x, 1), LE, 3)
			return p
		}},
		{"simple-maximize", func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 3)
			y := p.AddVar("y", 5)
			p.MustConstraint("", Expr{}.Plus(x, 1), LE, 4)
			p.MustConstraint("", Expr{}.Plus(y, 2), LE, 12)
			p.MustConstraint("", Expr{}.Plus(x, 3).Plus(y, 2), LE, 18)
			return p
		}},
		{"equality-rows", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 1)
			z := p.AddVar("z", 4)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 1).Plus(z, 1), EQ, 10)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, -1), EQ, 2)
			return p
		}},
		{"infeasible", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1), GE, 5)
			p.MustConstraint("", Expr{}.Plus(x, 1), LE, 3)
			return p
		}},
		{"unbounded", func() *Problem {
			p := NewProblem(Maximize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, -1), LE, 1)
			return p
		}},
		{"negative-rhs-normalization", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 2)
			y := p.AddVar("y", 3)
			p.MustConstraint("", Expr{}.Plus(x, -1).Plus(y, -1), LE, -4)
			p.MustConstraint("", Expr{}.Plus(x, -1), GE, -3)
			return p
		}},
		{"duplicate-terms", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(x, 1).Plus(x, 1), GE, 9)
			return p
		}},
		{"degenerate-beale", func() *Problem {
			// Beale's cycling example: degenerate under naive Dantzig.
			p := NewProblem(Minimize)
			x1 := p.AddVar("x1", -0.75)
			x2 := p.AddVar("x2", 150)
			x3 := p.AddVar("x3", -0.02)
			x4 := p.AddVar("x4", 6)
			p.MustConstraint("", Expr{}.Plus(x1, 0.25).Plus(x2, -60).Plus(x3, -0.04).Plus(x4, 9), LE, 0)
			p.MustConstraint("", Expr{}.Plus(x1, 0.5).Plus(x2, -90).Plus(x3, -0.02).Plus(x4, 3), LE, 0)
			p.MustConstraint("", Expr{}.Plus(x3, 1), LE, 1)
			return p
		}},
		{"redundant-equality-rows", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 1)
			y := p.AddVar("y", 2)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 6)
			p.MustConstraint("", Expr{}.Plus(x, 2).Plus(y, 2), EQ, 12) // same hyperplane
			p.MustConstraint("", Expr{}.Plus(x, 1), GE, 1)
			return p
		}},
		{"transportation", func() *Problem {
			// 2 supplies × 3 demands, balanced.
			p := NewProblem(Minimize)
			cost := [2][3]float64{{4, 6, 9}, {5, 3, 8}}
			supply := [2]float64{30, 25}
			demand := [3]float64{15, 20, 20}
			var x [2][3]Var
			for i := range x {
				for j := range x[i] {
					x[i][j] = p.AddVar("", cost[i][j])
				}
			}
			for i := range supply {
				e := Expr{}
				for j := range demand {
					e = e.Plus(x[i][j], 1)
				}
				p.MustConstraint("", e, LE, supply[i])
			}
			for j := range demand {
				e := Expr{}
				for i := range supply {
					e = e.Plus(x[i][j], 1)
				}
				p.MustConstraint("", e, GE, demand[j])
			}
			return p
		}},
		{"convex-combination", func() *Problem {
			// The shape core builds: per-task convex mixes under a budget.
			p := NewProblem(Minimize)
			t1a := p.AddVar("t1a", 10)
			t1b := p.AddVar("t1b", 6)
			t2a := p.AddVar("t2a", 8)
			t2b := p.AddVar("t2b", 5)
			p.MustConstraint("", Expr{}.Plus(t1a, 1).Plus(t1b, 1), EQ, 1)
			p.MustConstraint("", Expr{}.Plus(t2a, 1).Plus(t2b, 1), EQ, 1)
			p.MustConstraint("", Expr{}.Plus(t1b, 40).Plus(t2b, 35), LE, 50)
			return p
		}},
		{"zero-objective", func() *Problem {
			p := NewProblem(Minimize)
			x := p.AddVar("x", 0)
			y := p.AddVar("y", 0)
			p.MustConstraint("", Expr{}.Plus(x, 1).Plus(y, 2), EQ, 7)
			p.MustConstraint("", Expr{}.Plus(x, 1), GE, 1)
			return p
		}},
	}
}

// assertBackendsAgree solves p with both backends and cross-checks the
// results; returns the two solutions for extra per-case assertions.
func assertBackendsAgree(t *testing.T, name string, p *Problem) (dense, sparse *Solution) {
	t.Helper()
	dense, err := Solve(p, WithBackend(BackendDense))
	if err != nil {
		t.Fatalf("%s: dense solve error: %v", name, err)
	}
	sparse, err = Solve(p, WithBackend(BackendSparse))
	if err != nil {
		t.Fatalf("%s: sparse solve error: %v", name, err)
	}
	if dense.Status != sparse.Status {
		t.Fatalf("%s: status mismatch: dense %v, sparse %v\n%s", name, dense.Status, sparse.Status, p)
	}
	if dense.Status == Optimal {
		tol := equivObjTol * (1 + math.Abs(dense.Objective))
		if math.Abs(dense.Objective-sparse.Objective) > tol {
			t.Fatalf("%s: objective mismatch: dense %.15g, sparse %.15g (tol %g)\n%s",
				name, dense.Objective, sparse.Objective, tol, p)
		}
		if !simplexSolutionFeasible(p, dense) {
			t.Fatalf("%s: dense optimum infeasible\n%s", name, p)
		}
		if !simplexSolutionFeasible(p, sparse) {
			t.Fatalf("%s: sparse optimum infeasible\n%s", name, p)
		}
	}
	if dense.Stats.Backend != "dense" || sparse.Stats.Backend != "sparse" {
		t.Fatalf("%s: stats backend labels %q/%q", name, dense.Stats.Backend, sparse.Stats.Backend)
	}
	return dense, sparse
}

func TestBackendEquivalenceCorpus(t *testing.T) {
	for _, inst := range equivCorpus() {
		t.Run(inst.name, func(t *testing.T) {
			assertBackendsAgree(t, inst.name, inst.build())
		})
	}
}

func TestBackendEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomBoundedLP(rng)
		assertBackendsAgree(t, "", p)
	}
}

// TestBackendEquivalenceLargerRandom covers instances wider than the
// brute-forceable ones: always-feasible ≤ systems with mixed-sign costs.
func TestBackendEquivalenceLargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(10)
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = p.AddVar("", rng.Float64()*10-5)
		}
		for i := range vars {
			p.MustConstraint("", Expr{}.Plus(vars[i], 1), LE, 1+rng.Float64()*9)
		}
		for r := 0; r < 4+rng.Intn(8); r++ {
			var e Expr
			for i := range vars {
				if rng.Intn(2) == 0 {
					e = e.Plus(vars[i], rng.Float64()*6-3)
				}
			}
			if len(e) == 0 {
				continue
			}
			p.MustConstraint("", e, LE, rng.Float64()*10)
		}
		assertBackendsAgree(t, "", p)
	}
}

// TestSparseDualsStrongDuality mirrors the dense strong-duality property on
// the sparse backend: yᵀb equals the primal objective at optimum.
func TestSparseDualsStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = p.AddVar("", rng.Float64()*10)
		}
		var rhs []float64
		for r := 0; r < 1+rng.Intn(4); r++ {
			var e Expr
			any := false
			for i := range vars {
				c := float64(rng.Intn(5))
				if c != 0 {
					e = e.Plus(vars[i], c)
					any = true
				}
			}
			if !any {
				continue
			}
			b := rng.Float64() * 8
			p.MustConstraint("", e, GE, b)
			rhs = append(rhs, b)
		}
		if len(rhs) == 0 {
			continue
		}
		sol, err := Solve(p, WithBackend(BackendSparse))
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		checked++
		dualObj := 0.0
		for i, b := range rhs {
			y := sol.Dual[i]
			if y < -1e-7 {
				t.Fatalf("trial %d: negative dual %v on a ≥ row of a minimization", trial, y)
			}
			dualObj += y * b
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: strong duality violated: primal %v dual %v", trial, sol.Objective, dualObj)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instances reached optimality; generator broken?", checked)
	}
}
