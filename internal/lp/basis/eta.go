package basis

import "math"

// Eta is the product-form-of-the-inverse engine: the basis inverse is the
// eta file itself. Reinversion rebuilds the file from scratch, FTRANing each
// basis column through the etas appended so far and claiming the largest
// remaining row as its pivot (partial row pivoting) — a product-form cousin
// of the Bartels–Golub update. This is the engine the solver originally
// shipped with; it is retained verbatim behind the Engine interface as the
// reference implementation and the resilience ladder's LU fallback.
type Eta struct {
	file    ef
	updates int
	health  Stats

	alpha   []float64
	rowUsed []bool
	slots   []int
}

// ef aliases etaFile so Eta and LU can embed distinct files while sharing
// the implementation.
type ef = etaFile

// NewEta returns an Eta engine for m constraint rows.
func NewEta(m int) *Eta {
	e := &Eta{}
	e.Reset(m)
	return e
}

// Reset prepares the engine for a problem with m rows, retaining allocated
// capacity (engines are pooled across solves).
func (e *Eta) Reset(m int) {
	e.file.reset()
	e.updates = 0
	if cap(e.alpha) < m {
		e.alpha = make([]float64, m)
		e.rowUsed = make([]bool, m)
		e.slots = make([]int, m)
	}
	e.alpha = e.alpha[:m]
	e.rowUsed = e.rowUsed[:m]
	e.slots = e.slots[:m]
}

// Name implements Engine.
func (e *Eta) Name() string { return "eta" }

// Factorize implements Engine: incremental PFI reinversion with partial row
// pivoting. Columns are assigned to whichever row still holds their largest
// FTRANed magnitude, so the returned slot assignment generally permutes the
// input.
func (e *Eta) Factorize(a Columns, cols []int) ([]int, bool) {
	m := a.NumRows()
	e.file.reset()
	e.updates = 0
	for i := 0; i < m; i++ {
		e.rowUsed[i] = false
	}
	for _, j := range cols {
		for i := range e.alpha {
			e.alpha[i] = 0
		}
		rows, vals := a.Col(j)
		for k, r := range rows {
			e.alpha[r] = vals[k]
		}
		e.file.ftran(e.alpha)
		best, bestAbs := -1, epsFactor
		for i := 0; i < m; i++ {
			if e.rowUsed[i] {
				continue
			}
			if v := math.Abs(e.alpha[i]); v > bestAbs {
				best, bestAbs = i, v
			}
		}
		if best < 0 {
			return nil, false
		}
		e.file.append(best, e.alpha)
		e.rowUsed[best] = true
		e.slots[best] = j
	}
	// PFI reinversion rebuilds the inverse as etas, so the file length
	// itself (m etas) is this engine's baseline "growth".
	e.health.noteEta(e.file.len())
	return e.slots, true
}

// Ftran implements Engine.
func (e *Eta) Ftran(v []float64) { e.file.ftran(v) }

// Btran implements Engine.
func (e *Eta) Btran(v []float64) { e.file.btran(v) }

// Update implements Engine.
func (e *Eta) Update(r int, alpha []float64) {
	e.file.append(r, alpha)
	e.updates++
	e.health.noteEta(e.file.len())
}

// Updates implements Engine.
func (e *Eta) Updates() int { return e.updates }

// Due implements Engine.
func (e *Eta) Due() bool { return e.updates >= refactorEvery }

// Health implements Engine.
func (e *Eta) Health() *Stats { return &e.health }
