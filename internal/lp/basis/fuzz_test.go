package basis

import (
	"math"
	"testing"
)

// fuzzMatrix decodes fuzz bytes into an m×m basis fixture. Byte 0 picks m
// (2..24); each following 3-byte triple (r, c, v) adds entry v′ = (v−128)/16
// at (r mod m, c mod m). A scaled identity keeps the fixture mostly
// nonsingular so the fuzzer spends its budget inside the factorization
// rather than on trivially rejected bases.
func fuzzMatrix(data []byte) (*colMatrix, []int) {
	if len(data) == 0 {
		return nil, nil
	}
	m := 2 + int(data[0])%23
	dense := make([]float64, m*m)
	for i := 0; i < m; i++ {
		dense[i*m+i] = 1 + float64(i%3)
	}
	for p := 1; p+2 < len(data); p += 3 {
		r := int(data[p]) % m
		c := int(data[p+1]) % m
		dense[r*m+c] += (float64(data[p+2]) - 128) / 16
	}
	a := &colMatrix{m: m}
	cols := make([]int, m)
	for j := 0; j < m; j++ {
		var rows []int
		var vals []float64
		for i := 0; i < m; i++ {
			if v := dense[i*m+j]; v != 0 {
				rows = append(rows, i)
				vals = append(vals, v)
			}
		}
		a.add(rows, vals)
		cols[j] = j
	}
	return a, cols
}

// proxySeed builds a seed byte string shaped like the solver's real basis
// matrices for the SP/BT/CG workload proxies: a bidiagonal event-order
// chain, block convexity rows, and a dense power row — the structures
// emitted by internal/core's LP builder.
func proxySeed(m, blocks int, powerRow bool) []byte {
	seed := []byte{byte(m)}
	add := func(r, c int, v float64) {
		seed = append(seed, byte(r), byte(c), byte(128+int(v*16)))
	}
	for i := 1; i < m; i++ { // event-order chain: -1 below the diagonal
		add(i, i-1, -1)
	}
	if blocks > 0 { // convexity rows: a few columns share each row
		w := m / blocks
		if w < 1 {
			w = 1
		}
		for b := 0; b < blocks; b++ {
			r := (b * w) % m
			for k := 0; k < w; k++ {
				add(r, (b*w+k)%m, 0.5)
			}
		}
	}
	if powerRow { // dense power-cap row
		for c := 0; c < m; c++ {
			add(m-1, c, 2)
		}
	}
	return seed
}

// FuzzLU drives the Markowitz LU engine against the dense reference:
// factor, FTRAN/BTRAN fuzz-derived vectors, compare at a residual-scaled
// tolerance. Seeds mimic the SP/BT/CG proxy basis structure.
func FuzzLU(f *testing.F) {
	f.Add(proxySeed(8, 0, false)) // SP-like pure chain
	f.Add(proxySeed(16, 4, true)) // BT-like chain + convexity + power row
	f.Add(proxySeed(24, 8, true)) // CG-like wider blocks
	f.Add(proxySeed(5, 2, false))
	f.Add([]byte{12, 0, 0, 200, 3, 3, 10, 7, 2, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, cols := fuzzMatrix(data)
		if a == nil {
			return
		}
		m := a.m
		d, denseOK := denseFactorize(a, cols)
		lu := NewLU(m)
		slots, ok := lu.Factorize(a, cols)
		if !ok {
			// The engine may reject bases the dense reference squeaks
			// through near the pivot tolerance; it must not accept less
			// than the dense code rejects, and rejecting is always safe.
			return
		}
		if !denseOK {
			// Dense declared (near-)singular but LU factored it: verify the
			// factorization actually reproduces B·x = v below.
			d = nil
		}
		for i := range slots {
			if slots[i] != cols[i] {
				t.Fatalf("LU reassigned slot %d: %d != %d", i, slots[i], cols[i])
			}
		}

		// Fuzz-derived probe vector.
		v := make([]float64, m)
		for i := range v {
			v[i] = float64((i*7)%5) - 2
			if len(data) > i+1 {
				v[i] += float64(data[i+1]%16) / 8
			}
		}

		x := append([]float64(nil), v...)
		lu.Ftran(x)
		// Residual check B·x = v (always available, even without dense).
		resid := append([]float64(nil), v...)
		for slot, j := range slots {
			rows, vals := a.Col(j)
			for k, r := range rows {
				resid[r] -= vals[k] * x[slot]
			}
		}
		norm := 1.0
		for _, xv := range x {
			if av := math.Abs(xv); av > norm {
				norm = av
			}
		}
		for i, rv := range resid {
			if math.Abs(rv) > 1e-6*norm {
				t.Fatalf("ftran residual row %d: %g (norm %g)", i, rv, norm)
			}
		}
		if d != nil {
			want := d.solve(v)
			for i := range want {
				if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
					t.Fatalf("ftran vs dense slot %d: got %g want %g", i, x[i], want[i])
				}
			}
		}

		y := append([]float64(nil), v...)
		lu.Btran(y)
		residT := append([]float64(nil), v...)
		for slot, j := range slots {
			rows, vals := a.Col(j)
			dot := 0.0
			for k, r := range rows {
				dot += vals[k] * y[r]
			}
			residT[slot] -= dot
		}
		norm = 1.0
		for _, yv := range y {
			if av := math.Abs(yv); av > norm {
				norm = av
			}
		}
		for i, rv := range residT {
			if math.Abs(rv) > 1e-6*norm {
				t.Fatalf("btran residual slot %d: %g (norm %g)", i, rv, norm)
			}
		}
	})
}
