// Package basis implements pluggable basis-inverse engines for the revised
// simplex (DESIGN.md §14). The pivot loops in internal/lp never touch a
// factorization directly: they see the Engine interface — factorize a basis,
// FTRAN/BTRAN against it, absorb one pivot per Update — so the product-form
// eta file the solver grew up with and the sparse LU engine that replaced it
// as the default are interchangeable, selectable per solve, and pinned
// against each other by the engine-equivalence tests.
//
// Two engines are provided:
//
//   - Eta: the original product-form-of-the-inverse (PFI) engine. The basis
//     inverse is a sequence of eta matrices; reinversion rebuilds the file
//     column by column with partial row pivoting.
//   - LU: a sparse LU factorization in the style of Gilbert–Peierls /
//     Markowitz codes — columns processed in a static Markowitz (fewest
//     nonzeros first) order, each solved against the partial L with
//     value-skipping sparse triangular solves, rows chosen by threshold
//     partial pivoting with a row-count (Markowitz) tie-break. Pivot updates
//     are absorbed as eta matrices on top of the fixed LU factors
//     ("eta-on-LU", the product-form cousin of Forrest–Tomlin), so a warm
//     basis survives refactorization-free across a run of pivots.
//
// Both engines store eta nonzeros in one flat append-only arena, so a pivot
// costs zero allocations once the arena has warmed up.
package basis

// Columns is the engine's read-only view of the constraint matrix: column j
// as parallel (row, value) slices. internal/lp's sparse standard form
// implements it.
type Columns interface {
	// NumRows reports the number of constraint rows m.
	NumRows() int
	// Col returns column j's nonzero rows and values. The engine must not
	// mutate the returned slices.
	Col(j int) (rows []int, vals []float64)
}

// Engine maintains a factorization of the m×m basis matrix B whose slot-i
// column is the constraint column basic in row slot i.
type Engine interface {
	// Name identifies the engine in stats and error reasons.
	Name() string

	// Factorize rebuilds the factorization for the basis whose columns are
	// cols (one constraint-column index per row slot, in slot order). It
	// returns the slot assignment actually used — the Eta engine reassigns
	// columns to slots by partial pivoting, the LU engine keeps the given
	// order — or ok=false when the column set is numerically singular.
	// A successful Factorize discards all pending updates.
	Factorize(a Columns, cols []int) (slots []int, ok bool)

	// Ftran solves B·x = v in place: v enters in row space and leaves in
	// slot space (x[i] is the value of the slot-i basic column).
	Ftran(v []float64)

	// Btran solves Bᵀ·y = v in place: v enters in slot space and leaves in
	// row space.
	Btran(v []float64)

	// Update absorbs the pivot "alpha's column becomes basic in slot r",
	// where alpha is this engine's own Ftran of the entering column.
	Update(r int, alpha []float64)

	// Updates reports how many pivots have been absorbed since the last
	// Factorize.
	Updates() int

	// Due reports that enough updates accumulated that the caller should
	// refactorize (to bound fill-in and floating-point drift).
	Due() bool

	// Health exposes the engine's numerical-health counters. The returned
	// pointer stays valid for the engine's lifetime; see Stats for the
	// clearing contract.
	Health() *Stats
}

// Stats counts numerical-health events inside an engine: the forensic
// counters the solver surfaces per solve. Engines are pooled across solves
// and Factorize resets the factors internally (including mid-solve
// reinversions), so Reset and Factorize deliberately do NOT clear these —
// the solver calls Clear at solve start and harvests at solve end, and the
// counters therefore span every factorization attempt within one solve.
type Stats struct {
	// MaxEtaLen is the peak eta-file length observed — the growth proxy
	// for update-file conditioning (a long file means many pivots absorbed
	// since the factors were last clean).
	MaxEtaLen int
	// PivotRejections counts candidate rows rejected by the LU threshold
	// test during factorization: sparsity-driven (Markowitz-tie-broken)
	// pivoting skipping numerically admissible-but-small rows.
	PivotRejections int
	// TauRetries counts factorizations that hit a vanishing pivot under
	// relaxed threshold pivoting and fell back to strict partial pivoting.
	TauRetries int
}

// Clear zeroes the counters; called by the solver at solve start.
func (s *Stats) Clear() { *s = Stats{} }

// noteEta records an eta-file length observation.
func (s *Stats) noteEta(n int) {
	if n > s.MaxEtaLen {
		s.MaxEtaLen = n
	}
}

// refactorEvery bounds eta growth between reinversions for both engines.
// The LU engine could tolerate a longer leash (its base factors do not
// drift), but a shared budget keeps the engines' pivot-for-pivot behavior
// comparable in the equivalence harness.
const refactorEvery = 64

// epsFactor is the minimum acceptable pivot magnitude during factorization;
// below it the basis is declared singular.
const epsFactor = 1e-8

// etaFile is a product-form update file: each eta records one pivot (row r,
// pivot value, off-pivot nonzeros). Nonzeros live in flat shared arenas so
// appending an eta allocates only when the arena itself must grow.
type etaFile struct {
	r     []int32
	pivot []float64
	ptr   []int32 // len(r)+1 offsets into rows/vals
	rows  []int32
	vals  []float64
}

func (e *etaFile) reset() {
	e.r = e.r[:0]
	e.pivot = e.pivot[:0]
	e.rows = e.rows[:0]
	e.vals = e.vals[:0]
	if len(e.ptr) == 0 {
		e.ptr = append(e.ptr, 0)
	}
	e.ptr = e.ptr[:1]
}

func (e *etaFile) len() int { return len(e.r) }

// append records the pivot (row r, column values alpha) as a new eta.
func (e *etaFile) append(r int, alpha []float64) {
	e.r = append(e.r, int32(r))
	e.pivot = append(e.pivot, alpha[r])
	for i, v := range alpha {
		if i != r && v != 0 {
			e.rows = append(e.rows, int32(i))
			e.vals = append(e.vals, v)
		}
	}
	e.ptr = append(e.ptr, int32(len(e.rows)))
}

// ftran applies the eta inverses in append order: v ← Eₖ⁻¹…E₁⁻¹ v.
func (e *etaFile) ftran(v []float64) {
	for k := range e.r {
		r := e.r[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t /= e.pivot[k]
		lo, hi := e.ptr[k], e.ptr[k+1]
		for i := lo; i < hi; i++ {
			v[e.rows[i]] -= e.vals[i] * t
		}
		v[r] = t
	}
}

// btran applies the transposed eta inverses in reverse order:
// v ← E₁⁻ᵀ…Eₖ⁻ᵀ v.
func (e *etaFile) btran(v []float64) {
	for k := len(e.r) - 1; k >= 0; k-- {
		r := e.r[k]
		t := v[r]
		lo, hi := e.ptr[k], e.ptr[k+1]
		for i := lo; i < hi; i++ {
			t -= e.vals[i] * v[e.rows[i]]
		}
		v[r] = t / e.pivot[k]
	}
}
