package basis

import (
	"math"
	"sort"
)

// LU is the sparse LU basis engine. Factorization is left-looking in the
// Gilbert–Peierls style: columns are processed in a static Markowitz order
// (fewest nonzeros first), each new column is solved against the partial L
// with value-skipping sparse triangular work, and its pivot row is chosen by
// threshold partial pivoting (any row within tauLU of the largest magnitude
// qualifies) with a Markowitz row-count tie-break, trading a bounded loss of
// stability for sparsity in L and U. Should the threshold ordering still hit
// a vanishing pivot, Factorize retries once with pure partial pivoting
// (tau = 1) before declaring the basis singular.
//
// Simplex pivots are absorbed as eta matrices layered on the fixed LU
// factors (eta-on-LU): FTRAN solves through L and U and then applies the
// etas in append order, BTRAN applies transposed etas in reverse and then
// solves the transposed factors. The LU factors themselves never drift —
// refactorization both compacts the eta file and rebuilds from the clean
// column data, which is what pushes the numerical breakdown frontier past
// the pure product-form engine's.
type LU struct {
	m int

	p    []int32 // step -> original row pivoted there
	pinv []int32 // original row -> step (-1 while unpivoted)
	ord  []int32 // step -> row slot processed there

	// L: unit lower triangular, sub-diagonal entries per step column, rows
	// in original row space.
	lPtr []int32
	lRow []int32
	lVal []float64
	// U: upper triangular, off-diagonal entries per step column, rows in
	// step space (t < k); diagonal kept separately.
	uPtr  []int32
	uRow  []int32
	uVal  []float64
	uDiag []float64

	file    ef
	updates int
	health  Stats

	// Scratch.
	w       []float64
	z       []float64
	inw     []bool
	touched []int32
	rowCnt  []int32
	order   []int32
}

// tauLU is the threshold-pivoting relaxation: a row qualifies as pivot when
// its magnitude is within this factor of the column maximum.
const tauLU = 0.1

// NewLU returns an LU engine for m constraint rows.
func NewLU(m int) *LU {
	e := &LU{}
	e.Reset(m)
	return e
}

// Reset prepares the engine for a problem with m rows, retaining capacity.
func (e *LU) Reset(m int) {
	e.m = m
	e.file.reset()
	e.updates = 0
	if cap(e.p) < m {
		e.p = make([]int32, m)
		e.pinv = make([]int32, m)
		e.ord = make([]int32, m)
		e.uDiag = make([]float64, m)
		e.w = make([]float64, m)
		e.z = make([]float64, m)
		e.inw = make([]bool, m)
		e.rowCnt = make([]int32, m)
		e.order = make([]int32, m)
	}
	e.p = e.p[:m]
	e.pinv = e.pinv[:m]
	e.ord = e.ord[:m]
	e.uDiag = e.uDiag[:m]
	e.w = e.w[:m]
	e.z = e.z[:m]
	e.inw = e.inw[:m]
	e.rowCnt = e.rowCnt[:m]
	e.order = e.order[:m]
	if len(e.lPtr) == 0 {
		e.lPtr = append(e.lPtr, 0)
		e.uPtr = append(e.uPtr, 0)
	}
	e.lPtr = e.lPtr[:1]
	e.uPtr = e.uPtr[:1]
	e.lRow = e.lRow[:0]
	e.lVal = e.lVal[:0]
	e.uRow = e.uRow[:0]
	e.uVal = e.uVal[:0]
	e.touched = e.touched[:0]
}

// Name implements Engine.
func (e *LU) Name() string { return "lu" }

// Factorize implements Engine. The slot order is preserved: slots[i] is
// always cols[i]; permutations stay inside the factors.
func (e *LU) Factorize(a Columns, cols []int) ([]int, bool) {
	m := a.NumRows()
	e.Reset(m)
	if m == 0 {
		return cols, true
	}

	// Static Markowitz data: row counts over the basis columns, and the
	// column processing order (fewest nonzeros first, slot index ties).
	for i := range e.rowCnt {
		e.rowCnt[i] = 0
	}
	for _, j := range cols {
		rows, _ := a.Col(j)
		for _, r := range rows {
			e.rowCnt[r]++
		}
	}
	for i := range e.order {
		e.order[i] = int32(i)
	}
	sort.Slice(e.order, func(x, y int) bool {
		sx, sy := e.order[x], e.order[y]
		rx, _ := a.Col(cols[sx])
		ry, _ := a.Col(cols[sy])
		if len(rx) != len(ry) {
			return len(rx) < len(ry)
		}
		return sx < sy
	})

	if e.factorizeTau(a, cols, tauLU) {
		return cols, true
	}
	// Threshold pivoting chased sparsity into a vanishing pivot; retry with
	// pure partial pivoting before giving up.
	e.health.TauRetries++
	if e.factorizeTau(a, cols, 1.0) {
		return cols, true
	}
	return nil, false
}

// factorizeTau runs one left-looking factorization pass with the given
// pivot threshold. On failure the factors are left in an undefined state;
// the caller either retries (which resets) or reports the basis singular.
func (e *LU) factorizeTau(a Columns, cols []int, tau float64) bool {
	m := e.m
	e.lPtr = e.lPtr[:1]
	e.uPtr = e.uPtr[:1]
	e.lRow = e.lRow[:0]
	e.lVal = e.lVal[:0]
	e.uRow = e.uRow[:0]
	e.uVal = e.uVal[:0]
	e.file.reset()
	e.updates = 0
	for i := 0; i < m; i++ {
		e.pinv[i] = -1
		e.w[i] = 0
		e.inw[i] = false
	}
	e.touched = e.touched[:0]

	for k := 0; k < m; k++ {
		slot := e.order[k]
		rows, vals := a.Col(cols[slot])
		for i, r := range rows {
			if !e.inw[r] {
				e.inw[r] = true
				e.touched = append(e.touched, int32(r))
			}
			e.w[r] += vals[i]
		}

		// Solve L·x = column against the partial factors, skipping steps
		// whose pivot row carries a zero (the hyper-sparse fast path: aux
		// columns are single entries, so most steps are skipped outright).
		for t := 0; t < k; t++ {
			c := e.w[e.p[t]]
			if c == 0 {
				continue
			}
			lo, hi := e.lPtr[t], e.lPtr[t+1]
			for i := lo; i < hi; i++ {
				r := e.lRow[i]
				if !e.inw[r] {
					e.inw[r] = true
					e.touched = append(e.touched, r)
				}
				e.w[r] -= e.lVal[i] * c
			}
		}

		// Threshold partial pivoting with a Markowitz row-count tie-break.
		maxAbs := 0.0
		for _, r := range e.touched {
			if e.pinv[r] >= 0 {
				continue
			}
			if v := math.Abs(e.w[r]); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs <= epsFactor {
			return false
		}
		piv, pivCnt := int32(-1), int32(0)
		thresh := tau * maxAbs
		for _, r := range e.touched {
			if e.pinv[r] >= 0 {
				continue
			}
			if math.Abs(e.w[r]) < thresh {
				e.health.PivotRejections++
				continue
			}
			if piv < 0 || e.rowCnt[r] < pivCnt || (e.rowCnt[r] == pivCnt && r < piv) {
				piv, pivCnt = r, e.rowCnt[r]
			}
		}
		d := e.w[piv]

		// Record U (pivoted rows, step space) and L (unpivoted rows over
		// the pivot) columns, then clear the work vector.
		for _, r := range e.touched {
			v := e.w[r]
			e.w[r] = 0
			e.inw[r] = false
			if v == 0 || r == piv {
				continue
			}
			if t := e.pinv[r]; t >= 0 {
				e.uRow = append(e.uRow, t)
				e.uVal = append(e.uVal, v)
			} else {
				e.lRow = append(e.lRow, r)
				e.lVal = append(e.lVal, v/d)
			}
		}
		e.touched = e.touched[:0]
		e.uPtr = append(e.uPtr, int32(len(e.uRow)))
		e.lPtr = append(e.lPtr, int32(len(e.lRow)))
		e.uDiag[k] = d
		e.p[k] = piv
		e.pinv[piv] = int32(k)
		e.ord[k] = slot
	}
	return true
}

// Ftran implements Engine: v enters in row space, leaves in slot space.
func (e *LU) Ftran(v []float64) {
	m := e.m
	// L solve in row space (value-skipping).
	for k := 0; k < m; k++ {
		c := v[e.p[k]]
		if c == 0 {
			continue
		}
		lo, hi := e.lPtr[k], e.lPtr[k+1]
		for i := lo; i < hi; i++ {
			v[e.lRow[i]] -= e.lVal[i] * c
		}
	}
	// Gather into step space and backsolve U column-wise.
	z := e.z
	for k := 0; k < m; k++ {
		z[k] = v[e.p[k]]
	}
	for k := m - 1; k >= 0; k-- {
		x := z[k]
		if x != 0 {
			x /= e.uDiag[k]
			lo, hi := e.uPtr[k], e.uPtr[k+1]
			for i := lo; i < hi; i++ {
				z[e.uRow[i]] -= e.uVal[i] * x
			}
		}
		z[k] = x
	}
	for k := 0; k < m; k++ {
		v[e.ord[k]] = z[k]
	}
	e.file.ftran(v)
}

// Btran implements Engine: v enters in slot space, leaves in row space.
func (e *LU) Btran(v []float64) {
	e.file.btran(v)
	m := e.m
	z := e.z
	for k := 0; k < m; k++ {
		z[k] = v[e.ord[k]]
	}
	// Uᵀ forward solve (column-wise gather).
	for k := 0; k < m; k++ {
		g := z[k]
		lo, hi := e.uPtr[k], e.uPtr[k+1]
		for i := lo; i < hi; i++ {
			g -= e.uVal[i] * z[e.uRow[i]]
		}
		z[k] = g / e.uDiag[k]
	}
	// Lᵀ backward solve: L column k's rows pivot at later steps.
	for k := m - 1; k >= 0; k-- {
		g := z[k]
		lo, hi := e.lPtr[k], e.lPtr[k+1]
		for i := lo; i < hi; i++ {
			g -= e.lVal[i] * z[e.pinv[e.lRow[i]]]
		}
		z[k] = g
	}
	for k := 0; k < m; k++ {
		v[e.p[k]] = z[k]
	}
}

// Update implements Engine (eta-on-LU).
func (e *LU) Update(r int, alpha []float64) {
	e.file.append(r, alpha)
	e.updates++
	e.health.noteEta(e.file.len())
}

// Updates implements Engine.
func (e *LU) Updates() int { return e.updates }

// Due implements Engine.
func (e *LU) Due() bool { return e.updates >= refactorEvery }

// Health implements Engine.
func (e *LU) Health() *Stats { return &e.health }
