package basis

import (
	"math"
	"math/rand"
	"testing"
)

// colMatrix is a simple Columns fixture: column j as parallel slices.
type colMatrix struct {
	m    int
	rows [][]int
	vals [][]float64
}

func (c *colMatrix) NumRows() int                 { return c.m }
func (c *colMatrix) Col(j int) ([]int, []float64) { return c.rows[j], c.vals[j] }
func (c *colMatrix) add(rows []int, vals []float64) {
	c.rows = append(c.rows, rows)
	c.vals = append(c.vals, vals)
}
func (c *colMatrix) n() int { return len(c.rows) }

// denseFactor is the reference implementation: dense LU with partial
// pivoting over the basis matrix whose slot-i column is cols[i].
type denseFactor struct {
	m   int
	a   []float64 // row-major
	piv []int
}

func denseFactorize(a Columns, cols []int) (*denseFactor, bool) {
	m := a.NumRows()
	d := &denseFactor{m: m, a: make([]float64, m*m), piv: make([]int, m)}
	for i, j := range cols {
		rows, vals := a.Col(j)
		for k, r := range rows {
			d.a[r*m+i] += vals[k]
		}
	}
	for k := 0; k < m; k++ {
		best, bestAbs := k, math.Abs(d.a[k*m+k])
		for i := k + 1; i < m; i++ {
			if v := math.Abs(d.a[i*m+k]); v > bestAbs {
				best, bestAbs = i, v
			}
		}
		if bestAbs < 1e-11 {
			return nil, false
		}
		d.piv[k] = best
		if best != k {
			for j := 0; j < m; j++ {
				d.a[k*m+j], d.a[best*m+j] = d.a[best*m+j], d.a[k*m+j]
			}
		}
		pv := d.a[k*m+k]
		for i := k + 1; i < m; i++ {
			f := d.a[i*m+k] / pv
			d.a[i*m+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < m; j++ {
				d.a[i*m+j] -= f * d.a[k*m+j]
			}
		}
	}
	return d, true
}

// solve returns x with B·x = b (x in slot space).
func (d *denseFactor) solve(b []float64) []float64 {
	m := d.m
	x := append([]float64(nil), b...)
	for k := 0; k < m; k++ { // x = P·b
		x[k], x[d.piv[k]] = x[d.piv[k]], x[k]
	}
	for k := 0; k < m; k++ { // L forward (unit diagonal)
		for i := k + 1; i < m; i++ {
			x[i] -= d.a[i*m+k] * x[k]
		}
	}
	for k := m - 1; k >= 0; k-- {
		for j := k + 1; j < m; j++ {
			x[k] -= d.a[k*m+j] * x[j]
		}
		x[k] /= d.a[k*m+k]
	}
	return x
}

// solveT returns y with Bᵀ·y = b (b in slot space, y in row space).
func (d *denseFactor) solveT(b []float64) []float64 {
	m := d.m
	y := append([]float64(nil), b...)
	for k := 0; k < m; k++ { // Uᵀ forward
		for j := 0; j < k; j++ {
			y[k] -= d.a[j*m+k] * y[j]
		}
		y[k] /= d.a[k*m+k]
	}
	for k := m - 1; k >= 0; k-- { // Lᵀ backward (unit diagonal)
		for i := k + 1; i < m; i++ {
			y[k] -= d.a[i*m+k] * y[i]
		}
	}
	for k := m - 1; k >= 0; k-- { // y = Pᵀ·w
		y[k], y[d.piv[k]] = y[d.piv[k]], y[k]
	}
	return y
}

// randMatrix builds a standard-form-shaped matrix: m slack-like singleton
// columns plus extra structural columns with a few nonzeros each.
func randMatrix(rng *rand.Rand, m, extra int) *colMatrix {
	a := &colMatrix{m: m}
	for i := 0; i < m; i++ {
		a.add([]int{i}, []float64{1 + rng.Float64()})
	}
	for j := 0; j < extra; j++ {
		maxNNZ := 4
		if maxNNZ > m {
			maxNNZ = m
		}
		nnz := 1 + rng.Intn(maxNNZ)
		seen := map[int]bool{}
		var rows []int
		var vals []float64
		for len(rows) < nnz {
			r := rng.Intn(m)
			if seen[r] {
				continue
			}
			seen[r] = true
			rows = append(rows, r)
			v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(3)-1))
			if v == 0 {
				v = 1
			}
			vals = append(vals, v)
		}
		a.add(rows, vals)
	}
	return a
}

// randBasis builds a dense-verified nonsingular basis: start from the
// singleton (slack-like) identity and greedily swap in random structural
// columns wherever the replacement keeps the basis nonsingular.
func randBasis(rng *rand.Rand, a *colMatrix) []int {
	m := a.m
	cols := make([]int, m)
	for i := range cols {
		cols[i] = i
	}
	inBasis := make([]bool, a.n())
	for _, j := range cols {
		inBasis[j] = true
	}
	for tries := 0; tries < 4*m; tries++ {
		j := m + rng.Intn(a.n()-m)
		if inBasis[j] {
			continue
		}
		slot := rng.Intn(m)
		old := cols[slot]
		cols[slot] = j
		if _, ok := denseFactorize(a, cols); ok {
			inBasis[old] = false
			inBasis[j] = true
		} else {
			cols[slot] = old
		}
	}
	if _, ok := denseFactorize(a, cols); !ok {
		return nil
	}
	return cols
}

const eqTol = 1e-9

// checkAgainstDense verifies one engine's Ftran/Btran against the dense
// reference for the engine's own slot assignment.
func checkAgainstDense(t *testing.T, e Engine, a Columns, slots []int, rng *rand.Rand) {
	t.Helper()
	m := a.NumRows()
	d, ok := denseFactorize(a, slots)
	if !ok {
		t.Fatalf("%s: dense reference factorization failed", e.Name())
	}
	for trial := 0; trial < 3; trial++ {
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := append([]float64(nil), b...)
		e.Ftran(got)
		want := d.solve(b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > eqTol*(1+math.Abs(want[i])) {
				t.Fatalf("%s ftran slot %d: got %g want %g", e.Name(), i, got[i], want[i])
			}
		}
		got = append(got[:0], b...)
		e.Btran(got)
		want = d.solveT(b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > eqTol*(1+math.Abs(want[i])) {
				t.Fatalf("%s btran row %d: got %g want %g", e.Name(), i, got[i], want[i])
			}
		}
	}
}

// checkEnginesAgree compares two engines holding the same basis column SET
// under possibly different slot assignments: Ftran coefficients must agree
// per column, Btran outputs (row space) must agree for per-column inputs.
func checkEnginesAgree(t *testing.T, e1, e2 Engine, a Columns, s1, s2 []int, rng *rand.Rand) {
	t.Helper()
	m := a.NumRows()
	inv2 := map[int]int{}
	for i, j := range s2 {
		inv2[j] = i
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	e1.Ftran(x1)
	e2.Ftran(x2)
	for i, j := range s1 {
		k, okc := inv2[j]
		if !okc {
			t.Fatalf("engines disagree on basis columns: %d missing", j)
		}
		if math.Abs(x1[i]-x2[k]) > eqTol*(1+math.Abs(x2[k])) {
			t.Fatalf("ftran col %d: %s=%g %s=%g", j, e1.Name(), x1[i], e2.Name(), x2[k])
		}
	}
	// Per-column weights c: v[i] = c[slots[i]] makes Btran arrangement-free.
	c := make(map[int]float64, m)
	for _, j := range s1 {
		c[j] = rng.NormFloat64()
	}
	v1 := make([]float64, m)
	v2 := make([]float64, m)
	for i, j := range s1 {
		v1[i] = c[j]
	}
	for i, j := range s2 {
		v2[i] = c[j]
	}
	e1.Btran(v1)
	e2.Btran(v2)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > eqTol*(1+math.Abs(v2[i])) {
			t.Fatalf("btran row %d: %s=%g %s=%g", i, e1.Name(), v1[i], e2.Name(), v2[i])
		}
	}
}

func TestEnginesMatchDenseOnRandomBases(t *testing.T) {
	for _, m := range []int{3, 8, 25, 60} {
		rng := rand.New(rand.NewSource(int64(1000 + m)))
		for trial := 0; trial < 5; trial++ {
			a := randMatrix(rng, m, 2*m)
			cols := randBasis(rng, a)
			if cols == nil {
				t.Fatalf("m=%d: no nonsingular basis found", m)
			}
			for _, e := range []Engine{NewEta(m), NewLU(m)} {
				slots, ok := e.Factorize(a, cols)
				if !ok {
					t.Fatalf("m=%d %s: factorize failed on nonsingular basis", m, e.Name())
				}
				checkAgainstDense(t, e, a, slots, rng)
			}
		}
	}
}

func TestEngineCrossEquivalenceOnRandomBases(t *testing.T) {
	for _, m := range []int{4, 12, 40} {
		rng := rand.New(rand.NewSource(int64(77 + m)))
		for trial := 0; trial < 5; trial++ {
			a := randMatrix(rng, m, 2*m)
			cols := randBasis(rng, a)
			if cols == nil {
				t.Fatalf("m=%d: no nonsingular basis found", m)
			}
			eta, lu := NewEta(m), NewLU(m)
			sE, ok1 := eta.Factorize(a, cols)
			sL, ok2 := lu.Factorize(a, cols)
			if !ok1 || !ok2 {
				t.Fatalf("m=%d: factorize eta=%v lu=%v", m, ok1, ok2)
			}
			checkEnginesAgree(t, eta, lu, a, sE, sL, rng)
		}
	}
}

// TestEnginePivotSequence replays a recorded pivot sequence — entering
// column and leaving COLUMN chosen once, mapped to each engine's own slot —
// and pins both engines against the dense reference and each other after
// every update, through a refactorization boundary.
func TestEnginePivotSequence(t *testing.T) {
	const m = 20
	rng := rand.New(rand.NewSource(4242))
	a := randMatrix(rng, m, 3*m)
	cols := randBasis(rng, a)
	if cols == nil {
		t.Fatal("no nonsingular basis found")
	}
	eta, lu := NewEta(m), NewLU(m)
	sE, ok1 := eta.Factorize(a, append([]int(nil), cols...))
	sL, ok2 := lu.Factorize(a, append([]int(nil), cols...))
	if !ok1 || !ok2 {
		t.Fatalf("initial factorize eta=%v lu=%v", ok1, ok2)
	}
	sE = append([]int(nil), sE...)
	sL = append([]int(nil), sL...)

	inBasis := func(s []int, j int) bool {
		for _, c := range s {
			if c == j {
				return true
			}
		}
		return false
	}
	pivots := 0
	for attempt := 0; attempt < 400 && pivots < 3*refactorEvery/2; attempt++ {
		q := rng.Intn(a.n())
		if inBasis(sE, q) {
			continue
		}
		// Engine-specific alpha = Ftran(column q); the coefficient of any
		// particular basis COLUMN is arrangement-independent, so a leaving
		// column viable in one engine is viable in the other.
		alphaE := make([]float64, m)
		rows, vals := a.Col(q)
		for k, r := range rows {
			alphaE[r] = vals[k]
		}
		alphaL := append([]float64(nil), alphaE...)
		eta.Ftran(alphaE)
		lu.Ftran(alphaL)
		leave := -1
		for i := range sE {
			if math.Abs(alphaE[i]) > 0.1 {
				leave = i
				break
			}
		}
		if leave < 0 {
			continue
		}
		leaveCol := sE[leave]
		rL := -1
		for i, c := range sL {
			if c == leaveCol {
				rL = i
				break
			}
		}
		// Verify the replacement basis stays dense-nonsingular before
		// committing the pivot to either engine.
		next := append([]int(nil), sE...)
		next[leave] = q
		if _, ok := denseFactorize(a, next); !ok {
			continue
		}
		eta.Update(leave, alphaE)
		lu.Update(rL, alphaL)
		sE[leave] = q
		sL[rL] = q
		pivots++

		checkAgainstDense(t, eta, a, sE, rng)
		checkAgainstDense(t, lu, a, sL, rng)
		checkEnginesAgree(t, eta, lu, a, sE, sL, rng)

		if eta.Due() != lu.Due() || eta.Updates() != lu.Updates() {
			t.Fatalf("update accounting diverged: eta %d/%v lu %d/%v",
				eta.Updates(), eta.Due(), lu.Updates(), lu.Due())
		}
		if eta.Due() {
			sE2, ok1 := eta.Factorize(a, sE)
			sL2, ok2 := lu.Factorize(a, sL)
			if !ok1 || !ok2 {
				t.Fatalf("refactorize after %d pivots: eta=%v lu=%v", pivots, ok1, ok2)
			}
			sE = append(sE[:0], sE2...)
			sL = append(sL[:0], sL2...)
			if eta.Updates() != 0 || lu.Updates() != 0 {
				t.Fatal("factorize did not clear pending updates")
			}
		}
	}
	if pivots < refactorEvery {
		t.Fatalf("pivot sequence too short to cross refactorization: %d", pivots)
	}
}

func TestSingularBasisRejected(t *testing.T) {
	const m = 6
	a := &colMatrix{m: m}
	for i := 0; i < m; i++ {
		a.add([]int{i}, []float64{1})
	}
	// Duplicate of column 0 and an all-zero-ish column.
	a.add([]int{0}, []float64{1})
	a.add([]int{2}, []float64{1e-12})

	dup := []int{0, 1, 2, 3, 4, 6}  // cols 0 and 6 identical
	tiny := []int{0, 1, 7, 3, 4, 5} // col 7 below epsFactor
	for _, e := range []Engine{NewEta(m), NewLU(m)} {
		if _, ok := e.Factorize(a, dup); ok {
			t.Errorf("%s: accepted duplicate-column basis", e.Name())
		}
		if _, ok := e.Factorize(a, tiny); ok {
			t.Errorf("%s: accepted near-zero column basis", e.Name())
		}
		// Engines must stay usable after a rejected factorization.
		if _, ok := e.Factorize(a, []int{0, 1, 2, 3, 4, 5}); !ok {
			t.Errorf("%s: rejected the identity basis after failure", e.Name())
		}
	}
}

// TestLUKeepsSlotOrder pins the LU contract revised-simplex warm starts
// rely on: the slot assignment passed in is the one returned.
func TestLUKeepsSlotOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 10, 20)
	cols := randBasis(rng, a)
	lu := NewLU(10)
	slots, ok := lu.Factorize(a, cols)
	if !ok {
		t.Fatal("factorize failed")
	}
	for i := range cols {
		if slots[i] != cols[i] {
			t.Fatalf("slot %d reassigned: got %d want %d", i, slots[i], cols[i])
		}
	}
}

// TestLUThresholdRetry builds a basis the sparsity-chasing threshold pass
// mangles (huge off-diagonal magnitudes) and checks the pure partial
// pivoting retry still factors it accurately.
func TestLUThresholdRetry(t *testing.T) {
	const m = 8
	a := &colMatrix{m: m}
	for j := 0; j < m; j++ {
		rows := []int{j}
		vals := []float64{1e-6}
		if j+1 < m {
			rows = append(rows, j+1)
			vals = append(vals, 1e6)
		}
		a.add(rows, vals)
	}
	cols := make([]int, m)
	for i := range cols {
		cols[i] = i
	}
	if _, ok := denseFactorize(a, cols); !ok {
		t.Skip("fixture unexpectedly dense-singular")
	}
	lu := NewLU(m)
	slots, ok := lu.Factorize(a, cols)
	if !ok {
		t.Fatal("LU failed on ill-scaled but nonsingular basis")
	}
	checkAgainstDense(t, lu, a, slots, rand.New(rand.NewSource(5)))
}
