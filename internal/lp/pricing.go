package lp

// Steepest-edge pricing layer for the sparse revised simplex (DESIGN.md §14).
//
// The legacy Dantzig rule recomputes the full dual vector and scans every
// column's reduced cost on every pivot — O(nnz(A)) per iteration regardless
// of how little the basis changed. The pricer instead maintains reduced
// costs d[] incrementally from the pivot row of B⁻¹A (assembled sparsely
// via the CSR mirror), prices entering candidates from projected
// steepest-edge reference weights γ[] (devex), and scans candidates in
// rotating partial-pricing sections rather than the whole column range.
//
// Exactness discipline: the incremental d[] drifts with floating-point
// error, so it is recomputed exactly (and the γ reference framework reset
// to the current basis) on every refactorization, whenever Bland's
// anti-cycling rule is driving, and — critically — before Optimal or
// Unbounded is ever returned. The pivot loops therefore terminate on
// exactly the same optimality certificate as the Dantzig path; the
// incremental state only decides the order pivots happen in.

// pricer holds the incremental pricing state for one solve phase.
type pricer struct {
	d     []float64 // reduced costs per column (0 for basic)
	gamma []float64 // devex reference weights, ≥ 1

	// Sparse pivot-row accumulator: acc[j] = Σ_i rho_i·a_ij over the rows
	// in rho's support, epoch-stamped so clearing is O(touched).
	accVal   []float64
	accMark  []int64
	accEpoch int64
	accCols  []int

	cursor    int // partial-pricing rotating cursor
	lastEpoch int // rv.factorEpoch the last exact refresh saw
}

func newPricer(f *spForm) *pricer {
	f.ensureCSR()
	p := &pricer{}
	p.reset(f)
	return p
}

// reset sizes the pricer for f, retaining capacity (pricers are pooled
// alongside the rest of the solve scratch).
func (p *pricer) reset(f *spForm) {
	f.ensureCSR()
	if cap(p.d) < f.n {
		p.d = make([]float64, f.n)
		p.gamma = make([]float64, f.n)
		p.accVal = make([]float64, f.n)
		p.accMark = make([]int64, f.n)
		p.accCols = make([]int, 0, f.n)
	}
	p.d = p.d[:f.n]
	p.gamma = p.gamma[:f.n]
	p.accVal = p.accVal[:f.n]
	p.accMark = p.accMark[:f.n]
	p.accCols = p.accCols[:0]
	p.accEpoch = 0
	for j := range p.accMark {
		p.accMark[j] = 0
	}
	p.cursor = 0
	p.invalidate()
}

// invalidate forces an exact refresh at the next pricing decision. Called at
// phase boundaries (costs change) and after pivots made behind the pricer's
// back (artificial eviction).
func (p *pricer) invalidate() { p.lastEpoch = -1 }

// refresh recomputes d[] exactly from the current basis (one BTRAN plus a
// full column scan) and resets the steepest-edge reference framework γ ← 1.
func (p *pricer) refresh(rv *revised) {
	rv.computeY()
	f := rv.f
	for j := 0; j < f.n; j++ {
		if rv.isBasic[j] {
			p.d[j] = 0
		} else {
			p.d[j] = rv.cost[j] - f.colDot(j, rv.y)
		}
		p.gamma[j] = 1
	}
	p.lastEpoch = rv.factorEpoch
}

// ensureFresh refreshes when a refactorization (or invalidate) happened
// since the last exact recompute.
func (p *pricer) ensureFresh(rv *revised) {
	if p.lastEpoch != rv.factorEpoch {
		p.refresh(rv)
	}
}

// rowCombine assembles the pivot row acc[j] = Σ_i rho_i·a_ij sparsely: only
// CSR rows in rho's support are walked, and only touched columns appear in
// accCols. rho is typically B⁻ᵀe_r, so acc is row r of B⁻¹A.
func (p *pricer) rowCombine(f *spForm, rho []float64) {
	p.accEpoch++
	p.accCols = p.accCols[:0]
	for i, rv := range rho {
		if rv == 0 {
			continue
		}
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(f.colIdx[k])
			if p.accMark[j] != p.accEpoch {
				p.accMark[j] = p.accEpoch
				p.accVal[j] = 0
				p.accCols = append(p.accCols, j)
			}
			p.accVal[j] += f.rowVals[k] * rv
		}
	}
}

// applyPivot folds the pivot "column q enters, column leaveCol leaves, pivot
// element alphaR" into d[] and γ[]. rowCombine must hold the pivot row.
// Touched columns get the textbook updates
//
//	d_j ← d_j − (d_q/α_r)·α_rj    γ_j ← max(γ_j, (α_rj/α_r)²·γ_q)
//
// and the leaving column re-enters the nonbasic pool with d = −d_q/α_r,
// γ = max(γ_q/α_r², 1). Untouched columns have α_rj = 0 and keep both.
func (p *pricer) applyPivot(q, leaveCol int, alphaR float64) {
	thetaD := p.d[q] / alphaR
	gq := p.gamma[q]
	inv2 := 1 / (alphaR * alphaR)
	for _, j := range p.accCols {
		if j == q {
			continue
		}
		aj := p.accVal[j]
		p.d[j] -= thetaD * aj
		if g := aj * aj * inv2 * gq; g > p.gamma[j] {
			p.gamma[j] = g
		}
	}
	p.d[leaveCol] = -thetaD
	if g := gq * inv2; g > 1 {
		p.gamma[leaveCol] = g
	} else {
		p.gamma[leaveCol] = 1
	}
	p.d[q] = 0
	p.gamma[q] = 1
}

// preparePivotRow computes rho = B⁻ᵀe_leave into rv.rho and assembles the
// pivot row. The primal loop calls it before pivotUpdate (the dual loop
// already owns rho from its ratio test and calls rowCombine directly).
func (p *pricer) preparePivotRow(rv *revised, leave int) {
	for i := range rv.rho {
		rv.rho[i] = 0
	}
	rv.rho[leave] = 1
	rv.btran(rv.rho)
	p.rowCombine(rv.f, rv.rho)
}

// priceEntering picks the entering column for the primal loop. Under Bland
// it refreshes and takes the first negative reduced cost (exact, finite
// termination). Otherwise it partial-prices by steepest-edge score; an
// apparently optimal scan triggers an exact refresh and one full scan, so
// -1 (optimality) is always certified on exact reduced costs.
func (p *pricer) priceEntering(rv *revised, bland bool) int {
	if bland {
		p.refresh(rv)
		return p.firstNegative(rv)
	}
	p.ensureFresh(rv)
	if e := p.sectionScan(rv); e >= 0 {
		return e
	}
	p.refresh(rv)
	return p.bestFull(rv)
}

// firstNegative is Bland's rule over exact reduced costs.
func (p *pricer) firstNegative(rv *revised) int {
	for j := 0; j < rv.f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		if p.d[j] < -epsReduced {
			return j
		}
	}
	return -1
}

// sectionScan walks rotating partial-pricing sections and returns the best
// steepest-edge candidate in the first section that has one.
func (p *pricer) sectionScan(rv *revised) int {
	n := rv.f.n
	sec := n / 8
	if sec < 32 {
		sec = 32
	}
	for scanned := 0; scanned < n; {
		if p.cursor >= n {
			p.cursor = 0
		}
		end := p.cursor + sec
		if end > n {
			end = n
		}
		best, bestScore := -1, 0.0
		for j := p.cursor; j < end; j++ {
			if rv.isBasic[j] || rv.blocked[j] {
				continue
			}
			dj := p.d[j]
			if dj >= -epsReduced {
				continue
			}
			if score := dj * dj / p.gamma[j]; score > bestScore {
				bestScore, best = score, j
			}
		}
		scanned += end - p.cursor
		p.cursor = end
		if best >= 0 {
			return best
		}
	}
	return -1
}

// bestFull scans every column for the best steepest-edge score.
func (p *pricer) bestFull(rv *revised) int {
	best, bestScore := -1, 0.0
	for j := 0; j < rv.f.n; j++ {
		if rv.isBasic[j] || rv.blocked[j] {
			continue
		}
		dj := p.d[j]
		if dj >= -epsReduced {
			continue
		}
		if score := dj * dj / p.gamma[j]; score > bestScore {
			bestScore, best = score, j
		}
	}
	return best
}
