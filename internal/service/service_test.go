package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"powercap"
	"powercap/internal/trace"
)

// fastWL is a workload whose solve takes a few ms — timing-independent
// tests. slowWL takes hundreds of ms (seconds under -race), long enough
// that polling-based synchronization against it cannot race.
var (
	fastWL = &WorkloadSpec{Name: "CoMD", Ranks: 2, Iters: 3, Seed: 1, Scale: 0.1}
	slowWL = &WorkloadSpec{Name: "BT", Ranks: 16, Iters: 10, Seed: 1, Scale: 1}
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// metricsMap fetches /metrics and parses every "name value" line.
func metricsMap(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q", sc.Text())
		}
		m[fields[0]] = v
	}
	return m
}

func healthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSolveSingleflight64 is the load-test acceptance criterion: 64
// concurrent identical solve requests must produce exactly one backend
// solve; the other 63 are cache hits (coalesced onto the flight or served
// from the LRU), all verified through /metrics.
func TestSolveSingleflight64(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 55}

	const n = 64
	var wg sync.WaitGroup
	codes := make([]int, n)
	resps := make([]SolveResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, ts.URL+"/v1/solve", req)
			codes[i] = code
			json.Unmarshal(body, &resps[i])
		}(i)
	}
	wg.Wait()

	cached := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if resps[i].MakespanS <= 0 {
			t.Fatalf("request %d: no makespan in %+v", i, resps[i])
		}
		if resps[i].MakespanS != resps[0].MakespanS {
			t.Fatalf("request %d: makespan %v differs from %v", i, resps[i].MakespanS, resps[0].MakespanS)
		}
		if resps[i].Cached {
			cached++
		}
	}
	if cached != n-1 {
		t.Errorf("%d responses marked cached, want %d", cached, n-1)
	}

	m := metricsMap(t, ts.URL)
	if got := m["pcschedd_solves_total"]; got != 1 {
		t.Errorf("solves_total = %v, want exactly 1", got)
	}
	if got := m["pcschedd_cache_hits_total"]; got != n-1 {
		t.Errorf("cache_hits_total = %v, want %d", got, n-1)
	}
	if got := m["pcschedd_cache_misses_total"]; got != 1 {
		t.Errorf("cache_misses_total = %v, want 1", got)
	}
	if got := m["pcschedd_requests_total"]; got != n {
		t.Errorf("requests_total = %v, want %d", got, n)
	}
}

// TestSolveExpiredDeadline: a request whose deadline has already passed
// must return promptly with 504 — the cancellation surfacing from the LP
// pivot loop — without a completed backend solve.
func TestSolveExpiredDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: slowWL, CapPerSocketW: 60, TimeoutMS: 0.001}

	start := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/solve", req)
	elapsed := time.Since(start)

	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", code, body)
	}
	if !strings.Contains(string(body), "canceled") && !strings.Contains(string(body), "deadline") {
		t.Errorf("error body %q does not mention cancellation", body)
	}
	// A full solve of slowWL takes hundreds of ms (more under -race); the
	// canceled request must come back in a fraction of that. The workload
	// generation itself (~tens of ms) dominates the observed latency.
	if elapsed > 30*time.Second {
		t.Errorf("canceled request took %v", elapsed)
	}

	m := metricsMap(t, ts.URL)
	if got := m["pcschedd_solves_total"]; got != 0 {
		t.Errorf("solves_total = %v after expired-deadline request, want 0", got)
	}
	if got := m["pcschedd_canceled_total"]; got != 1 {
		t.Errorf("canceled_total = %v, want 1", got)
	}
}

// TestDrainGraceful: with one solve in flight, Drain must let it finish and
// respond, reject newly arriving work, and return once idle.
func TestDrainGraceful(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	type result struct {
		code int
		body []byte
	}
	inFlight := make(chan result, 1)
	go func() {
		code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: slowWL, CapPerSocketW: 60})
		inFlight <- result{code, body}
	}()
	waitUntil(t, 30*time.Second, func() bool {
		return s.metrics.Inflight.Load() >= 1
	})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitUntil(t, 5*time.Second, func() bool {
		return healthz(t, ts.URL)["status"] == "draining"
	})

	// New work is refused while draining.
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d (%s), want 503", code, body)
	}

	// The in-flight solve still completes and gets its response.
	res := <-inFlight
	if res.code != http.StatusOK {
		t.Fatalf("in-flight solve: status %d (%s), want 200", res.code, res.body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(res.body, &sr); err != nil || sr.MakespanS <= 0 {
		t.Fatalf("in-flight solve returned no schedule: %s", res.body)
	}

	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	// Observability endpoints survive the drain.
	if h := healthz(t, ts.URL); h["status"] != "draining" {
		t.Errorf("healthz after drain = %v", h["status"])
	}
	if m := metricsMap(t, ts.URL); m["pcschedd_rejected_total"] != 1 {
		t.Errorf("rejected_total = %v, want 1", m["pcschedd_rejected_total"])
	}
}

// TestQueueFullRejects: with one worker and a zero-depth queue, a second
// distinct request arriving mid-solve gets 429 backpressure.
func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})

	done := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: slowWL, CapPerSocketW: 60})
		done <- code
	}()
	waitUntil(t, 30*time.Second, func() bool {
		h := healthz(t, ts.URL)
		used, _ := h["queue_used"].(float64)
		return used >= 1
	})

	// Different cap → different key → would need its own backend solve.
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: slowWL, CapPerSocketW: 61})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", code, body)
	}
	m := metricsMap(t, ts.URL)
	if m["pcschedd_rejected_total"] != 1 {
		t.Errorf("rejected_total = %v, want 1", m["pcschedd_rejected_total"])
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", got)
	}
}

func TestSolveCacheRepeat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 55}

	var first, second SolveResponse
	code, body := postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("first solve: %d (%s)", code, body)
	}
	json.Unmarshal(body, &first)
	code, body = postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("second solve: %d (%s)", code, body)
	}
	json.Unmarshal(body, &second)

	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	if first.MakespanS != second.MakespanS || first.Key != second.Key {
		t.Errorf("cached response differs: %+v vs %+v", first, second)
	}
	m := metricsMap(t, ts.URL)
	if m["pcschedd_solves_total"] != 1 || m["pcschedd_cache_hits_total"] != 1 {
		t.Errorf("solves=%v hits=%v, want 1 and 1",
			m["pcschedd_solves_total"], m["pcschedd_cache_hits_total"])
	}
}

// TestSolveRealize: ?realize= (or the Realize body field) attaches a
// simulator-validated realizable schedule to the solve response. The
// realized makespan can never beat the LP bound, must carry zero cap
// violation, and the rounding mode must be part of the cache key so an
// LP-only solve and a realized solve never collide.
func TestSolveRealize(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55, Realize: "best"})
	if code != http.StatusOK {
		t.Fatalf("realized solve: %d (%s)", code, body)
	}
	var realized SolveResponse
	json.Unmarshal(body, &realized)
	if realized.Realized == nil {
		t.Fatal("realized solve: response has no realized block")
	}
	r := realized.Realized
	if r.CapViolationW != 0 {
		t.Errorf("realized cap violation = %v W, want 0", r.CapViolationW)
	}
	if r.MakespanS < realized.MakespanS*(1-1e-9) {
		t.Errorf("realized makespan %v beats the LP bound %v", r.MakespanS, realized.MakespanS)
	}
	if r.LPMakespanS != realized.MakespanS {
		t.Errorf("realized LP bound %v != solve makespan %v", r.LPMakespanS, realized.MakespanS)
	}

	// The query parameter overrides the body field, and the strategy is
	// part of the content address: distinct key, no realized block leaking
	// into the plain solve.
	code, body = postJSON(t, ts.URL+"/v1/solve?realize=down", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("realize=down solve: %d (%s)", code, body)
	}
	var down SolveResponse
	json.Unmarshal(body, &down)
	if down.Realized == nil || down.Realized.Strategy != "down" {
		t.Fatalf("realize=down: got %+v", down.Realized)
	}
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("plain solve: %d (%s)", code, body)
	}
	var plain SolveResponse
	json.Unmarshal(body, &plain)
	if plain.Realized != nil {
		t.Error("plain solve unexpectedly carries a realized schedule")
	}
	keys := map[string]bool{realized.Key: true, down.Key: true, plain.Key: true}
	if len(keys) != 3 {
		t.Errorf("cache keys collide across realize modes: %v %v %v", realized.Key, down.Key, plain.Key)
	}

	if code, body := postJSON(t, ts.URL+"/v1/solve?realize=sideways", SolveRequest{Workload: fastWL, CapPerSocketW: 55}); code != http.StatusBadRequest {
		t.Errorf("unknown realize strategy: %d (%s), want 400", code, body)
	}
}

// TestSolveInlineTrace: a trace posted inline (the schema pctrace gen
// emits) must solve to the same schedule as the workload it was taken
// from.
func TestSolveInlineTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	wl, err := powercap.WorkloadByName(fastWL.Name, powercap.WorkloadParams{
		Ranks: fastWL.Ranks, Iterations: fastWL.Iters, Seed: fastWL.Seed, WorkScale: fastWL.Scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	tf := trace.Encode("comd-trace", wl.Graph, wl.EffScale)

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Trace: tf, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("trace solve: %d (%s)", code, body)
	}
	var got SolveResponse
	json.Unmarshal(body, &got)
	if got.GraphDigest != powercap.GraphDigest(wl.Graph) {
		t.Errorf("decoded trace digest %s != source graph digest", got.GraphDigest)
	}

	sys := powercap.SystemFor(wl, nil)
	want, err := sys.UpperBound(wl.Graph, 55*float64(wl.Graph.NumRanks))
	if err != nil {
		t.Fatal(err)
	}
	if got.MakespanS != want.MakespanS {
		t.Errorf("trace solve makespan %v != direct solve %v", got.MakespanS, want.MakespanS)
	}
	if got.Workload != "comd-trace" {
		t.Errorf("workload name = %q, want comd-trace", got.Workload)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Workload: fastWL, Spec: "60:50:5"})
	if code != http.StatusOK {
		t.Fatalf("sweep: %d (%s)", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(resp.Points))
	}
	for i, pt := range resp.Points {
		if pt.Error != "" || pt.Infeasible {
			t.Fatalf("point %d failed: %+v", i, pt)
		}
		if pt.MakespanS <= 0 {
			t.Fatalf("point %d has no makespan", i)
		}
		// Caps descend, so the bound can only get worse.
		if i > 0 && pt.MakespanS < resp.Points[i-1].MakespanS-1e-9 {
			t.Errorf("makespan improved as the cap dropped: %v after %v",
				pt.MakespanS, resp.Points[i-1].MakespanS)
		}
	}
	if resp.Stats == nil || resp.Stats.WarmStarts < 1 {
		t.Errorf("sweep reports no warm starts: %+v", resp.Stats)
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := CompareRequest{
		Workload:      &WorkloadSpec{Name: "CoMD", Ranks: 2, Iters: 6, Seed: 1, Scale: 0.1},
		CapPerSocketW: 55,
	}
	code, body := postJSON(t, ts.URL+"/v1/compare", req)
	if code != http.StatusOK {
		t.Fatalf("compare: %d (%s)", code, body)
	}
	var resp CompareResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	c := resp.Comparison
	if c.StaticS <= 0 || c.ConductorS <= 0 || c.LPBoundS <= 0 {
		t.Fatalf("comparison has empty times: %+v", c)
	}
	if c.LPBoundS > c.StaticS {
		t.Errorf("LP bound %v worse than Static %v", c.LPBoundS, c.StaticS)
	}
	if resp.Cached {
		t.Error("first compare marked cached")
	}

	code, body = postJSON(t, ts.URL+"/v1/compare", req)
	if code != http.StatusOK {
		t.Fatalf("repeat compare: %d (%s)", code, body)
	}
	var again CompareResponse
	json.Unmarshal(body, &again)
	if !again.Cached {
		t.Error("identical compare not served from cache")
	}
	if again.Comparison != c {
		t.Errorf("cached comparison differs: %+v vs %+v", again.Comparison, c)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"no source", "/v1/solve", SolveRequest{CapPerSocketW: 50}},
		{"both sources", "/v1/solve", SolveRequest{
			Workload: fastWL, Trace: &trace.File{Version: 1, NumRanks: 1}, CapPerSocketW: 50}},
		{"no cap", "/v1/solve", SolveRequest{Workload: fastWL}},
		{"both caps", "/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50, JobCapW: 100}},
		{"unknown workload", "/v1/solve", SolveRequest{
			Workload: &WorkloadSpec{Name: "HPL"}, CapPerSocketW: 50}},
		{"unknown field", "/v1/solve", map[string]any{"workload": fastWL, "watts": 50}},
		{"bad sweep spec", "/v1/sweep", SweepRequest{Workload: fastWL, Spec: "50:60:5"}},
		{"sweep no caps", "/v1/sweep", SweepRequest{Workload: fastWL}},
		{"compare trace-less", "/v1/compare", CompareRequest{CapPerSocketW: 50}},
	}
	for _, c := range cases {
		code, body := postJSON(t, ts.URL+c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, code, body)
		}
	}
	m := metricsMap(t, ts.URL)
	if got := m["pcschedd_bad_requests_total"]; got != float64(len(cases)) {
		t.Errorf("bad_requests_total = %v, want %d", got, len(cases))
	}
	if m["pcschedd_solves_total"] != 0 {
		t.Errorf("bad requests triggered %v solves", m["pcschedd_solves_total"])
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond) // 1ms..100ms
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %v, want within [10ms, 100ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 0.25 {
		t.Errorf("p99 = %v (p50 %v)", p99, p50)
	}

	var buf bytes.Buffer
	writeHistogram(&buf, "x_seconds", &h)
	out := buf.String()
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 100`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count 100") {
		t.Errorf("missing count:\n%s", out)
	}
}

// The Prometheus exposition conformance test for the full /metrics output
// lives in metrics_test.go (TestMetricsConformance), along with the
// Histogram boundary tests.

// TestSolveWindowed: windows > 1 (body field or ?windows=) routes the
// solve through the windowed decomposition, returns the diagnostics block,
// keys the cache separately from the monolithic solve, and shows up on
// /metrics as windowed counters.
func TestSolveWindowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55, Windows: 3})
	if code != http.StatusOK {
		t.Fatalf("windowed solve: %d (%s)", code, body)
	}
	var windowed SolveResponse
	json.Unmarshal(body, &windowed)
	if windowed.Windowed == nil {
		t.Fatal("windowed solve: response has no windowed block")
	}
	wb := windowed.Windowed
	if wb.Windows < 1 || wb.SpeculativeSolves < 1 {
		t.Errorf("implausible windowed diagnostics: %+v", wb)
	}
	if wb.SeamViolationW > 1e-6 {
		t.Errorf("seam cap violation %v W", wb.SeamViolationW)
	}
	if windowed.MakespanS <= 0 {
		t.Errorf("windowed makespan %v", windowed.MakespanS)
	}

	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("plain solve: %d (%s)", code, body)
	}
	var plain SolveResponse
	json.Unmarshal(body, &plain)
	if plain.Windowed != nil {
		t.Error("plain solve unexpectedly carries a windowed block")
	}
	if plain.Key == windowed.Key {
		t.Error("windowed and monolithic solves share a cache key")
	}
	// The windowed makespan upper-bounds the monolithic one (DESIGN.md §12).
	if windowed.MakespanS < plain.MakespanS*(1-1e-9) {
		t.Errorf("windowed makespan %v beats monolithic %v", windowed.MakespanS, plain.MakespanS)
	}

	// Query parameter form, equal to the body form (same key → cache hit).
	code, body = postJSON(t, ts.URL+"/v1/solve?windows=3", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("?windows=3 solve: %d (%s)", code, body)
	}
	var viaQuery SolveResponse
	json.Unmarshal(body, &viaQuery)
	if viaQuery.Key != windowed.Key {
		t.Errorf("?windows=3 key %s != body-form key %s", viaQuery.Key, windowed.Key)
	}
	if !viaQuery.Cached {
		t.Error("identical windowed request missed the cache")
	}

	m := metricsMap(t, ts.URL)
	if m["pcschedd_windowed_solves_total"] != 1 {
		t.Errorf("windowed_solves_total = %v, want 1", m["pcschedd_windowed_solves_total"])
	}
	if m["pcschedd_windows_solved_total"] < float64(wb.Windows) {
		t.Errorf("windows_solved_total = %v, want >= %d", m["pcschedd_windows_solved_total"], wb.Windows)
	}

	if code, body := postJSON(t, ts.URL+"/v1/solve?windows=lots", SolveRequest{Workload: fastWL, CapPerSocketW: 55}); code != http.StatusBadRequest {
		t.Errorf("bad windows value: %d (%s), want 400", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/solve?coarsen_eps=-1", SolveRequest{Workload: fastWL, CapPerSocketW: 55}); code != http.StatusBadRequest {
		t.Errorf("negative coarsen_eps: %d (%s), want 400", code, body)
	}
}
