package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"powercap"
	"powercap/internal/adapt"
)

// Adaptive overload control plane (DESIGN.md §15). The Server owns an
// adapt.Controller when Config.Adapt.Enabled is set; once per epoch the
// runtime samples the metrics the service already keeps (free signals:
// rejections, queue occupancy, solve latency, breaker states) and applies
// the controller's decision:
//
//   - admission capacity and worker count, by *parking* tokens in the
//     existing sem/queue channels (tokens are fungible, so acquire() and
//     release() are untouched — with nothing parked the channels behave
//     exactly as before, which is what keeps the disarmed path
//     bit-identical);
//   - the schedule-LRU capacity (cache.Resize);
//   - the resilience ladder's per-rung deadline slices (SetDeadlineFracs
//     on every pooled System);
//   - the brownout rung consulted by handleSolve;
//   - the retry-budget token bucket's refill rate (the observed solve
//     completion rate).
//
// With Adapt.Enabled false, s.adaptState stays nil and every hot-path
// touch point is a single atomic pointer load that fails its nil check —
// the same disarmed-path idiom as internal/obs and internal/faultinject.

// adaptSample is the counter snapshot one epoch's deltas are taken from.
type adaptSample struct {
	requests, rejected, shed uint64
	solves, hits, misses     uint64
	panics, retries          uint64
	solveSumNS               int64
	solveCount               uint64
}

// adaptRuntime owns the controller, the retry-budget bucket, and the epoch
// loop. All epoch work serializes on mu, so the ticker loop and a manual
// adaptEpoch call (tests) can never interleave a sample with an apply.
type adaptRuntime struct {
	ctrl   *adapt.Controller
	bucket *adapt.TokenBucket

	mu       sync.Mutex
	last     adaptSample
	lastTime time.Time

	loopOnce sync.Once
	stopOnce sync.Once
	loopStop chan struct{}
	loopDone chan struct{}
}

func newAdaptRuntime(cfg adapt.Config) *adaptRuntime {
	ctrl := adapt.New(cfg)
	eff := ctrl.Config()
	return &adaptRuntime{
		ctrl:     ctrl,
		bucket:   adapt.NewTokenBucket(eff.RetryBurst, 0),
		loopStop: make(chan struct{}),
		loopDone: make(chan struct{}),
	}
}

// StartAdapt launches the controller's epoch loop. It is a no-op (and
// returns a no-op stop) when the control plane is disabled. The returned
// stop function halts the loop and waits for it; Drain calls it implicitly.
func (s *Server) StartAdapt() (stop func()) {
	rt := s.adaptRT
	if rt == nil {
		return func() {}
	}
	rt.loopOnce.Do(func() {
		epoch := rt.ctrl.Config().Epoch
		go func() {
			defer close(rt.loopDone)
			t := time.NewTicker(epoch)
			defer t.Stop()
			for {
				select {
				case <-rt.loopStop:
					return
				case now := <-t.C:
					s.adaptEpoch(now)
				}
			}
		}()
	})
	return rt.stopLoop
}

// stopLoop halts the epoch loop (idempotent) and waits for it to exit. A
// runtime whose loop never started just closes its channels.
func (rt *adaptRuntime) stopLoop() {
	rt.stopOnce.Do(func() { close(rt.loopStop) })
	rt.loopOnce.Do(func() { close(rt.loopDone) }) // loop never ran
	<-rt.loopDone
}

// adaptEpoch runs one controller epoch: sample signals, step the state
// machine, publish and apply the decision. Exposed to tests via
// (*Server).AdaptEpoch.
func (s *Server) adaptEpoch(now time.Time) *adapt.State {
	rt := s.adaptRT
	rt.mu.Lock()
	defer rt.mu.Unlock()

	sig := rt.sampleLocked(s, now)
	st, trans := rt.ctrl.Step(sig)
	s.adaptState.Store(st)
	s.applyAdapt(st, sig)

	s.metrics.AdaptEpochs.Add(1)
	for _, tr := range trans {
		s.metrics.AdaptTransitions.Add(1)
		if s.logger != nil {
			s.logger.Info("brownout transition",
				"epoch", tr.Epoch, "from", tr.From.String(), "to", tr.To.String(), "why", tr.Why)
		}
	}
	return st
}

// AdaptEpoch forces one controller epoch now (tests and the twin drive the
// control plane synchronously through this instead of waiting on the
// ticker). Returns nil when the control plane is disabled.
func (s *Server) AdaptEpoch() *adapt.State {
	if s.adaptRT == nil {
		return nil
	}
	return s.adaptEpoch(time.Now())
}

// sampleLocked reads the epoch's signal deltas. Callers hold rt.mu.
func (rt *adaptRuntime) sampleLocked(s *Server, now time.Time) adapt.Signals {
	m := &s.metrics
	cur := adaptSample{
		requests:   m.Requests.Load(),
		rejected:   m.Rejected.Load(),
		shed:       m.ShedDeadline.Load() + m.ShedRetryBudget.Load(),
		solves:     m.Solves.Load(),
		hits:       m.CacheHits.Load(),
		misses:     m.CacheMisses.Load(),
		panics:     m.Panics.Load(),
		retries:    m.SolveRetries.Load(),
		solveSumNS: m.SolveLatency.sumNS.Load(),
		solveCount: m.SolveLatency.count.Load(),
	}
	epochS := rt.ctrl.Config().Epoch.Seconds()
	if !rt.lastTime.IsZero() {
		if d := now.Sub(rt.lastTime).Seconds(); d > 0 {
			epochS = d
		}
	}
	prev := rt.last
	rt.last, rt.lastTime = cur, now

	var avgSolveS float64
	if dc := cur.solveCount - prev.solveCount; dc > 0 {
		avgSolveS = float64(cur.solveSumNS-prev.solveSumNS) / float64(dc) / 1e9
	}
	open := 0
	for _, st := range s.breakerStates() {
		if st == "open" {
			open++
		}
	}
	parked := int(s.parkedQueue.Load())
	// The SLO engine's fast-window burn replaces the raw p95 term in the
	// controller's pressure when samples exist (adapt.Signals doc): pressure
	// becomes "error-budget burn", so a brownout decision is explainable
	// from the flight recorder's admission-time burn fields alone.
	burn, sloSamples := s.slo.ControlBurn(now)
	return adapt.Signals{
		Requests:     cur.requests - prev.requests,
		Rejected:     cur.rejected - prev.rejected,
		Shed:         cur.shed - prev.shed,
		Solves:       cur.solves - prev.solves,
		CacheHits:    cur.hits - prev.hits,
		CacheMisses:  cur.misses - prev.misses,
		Panics:       cur.panics - prev.panics,
		Retries:      cur.retries - prev.retries,
		QueueLen:     s.queueUsed(),
		QueueCap:     cap(s.queue) - parked,
		Inflight:     int(m.Inflight.Load()),
		BreakersOpen: open,
		AvgSolveS:    avgSolveS,
		ReqP95S:      m.RequestLatency.Quantile(0.95),
		SLOBurn:      burn,
		SLOSamples:   sloSamples,
		EpochS:       epochS,
	}
}

// applyAdapt pushes one published State into the running service.
func (s *Server) applyAdapt(st *adapt.State, sig adapt.Signals) {
	s.cache.Resize(st.CacheSize)
	s.applyParking(st)

	// Ladder deadline slices, on every pooled System (systems created
	// later pick the table up next epoch).
	for _, sys := range s.pooledSystems() {
		sys.Ladder().SetDeadlineFracs(st.DeadlineFracs)
	}

	// Retry budget refills at the observed completion rate.
	if sig.EpochS > 0 {
		s.adaptRT.bucket.SetRate(float64(sig.Solves) / sig.EpochS)
	}
}

// applyParking moves the effective admission and worker capacity toward
// the controller's targets by parking/unparking tokens in the existing
// channels. Tokens are fungible with request tokens, so acquire/release
// need no changes; a full channel just defers the parking to a later
// epoch.
func (s *Server) applyParking(st *adapt.State) {
	targetQ := (s.workers + s.queueDepth) - (st.Workers + st.QueueDepth)
	park(s.queue, &s.parkedQueue, targetQ)
	park(s.sem, &s.parkedSem, s.workers-st.Workers)
}

// park moves the channel's parked-token count toward target. Parking is
// best-effort (a channel full of real work defers to a later epoch);
// unparking never blocks because ≥ parked tokens in the channel are
// unmatched by any request.
func park(ch chan struct{}, parked *atomic.Int64, target int) {
	if target < 0 {
		target = 0
	}
	for int(parked.Load()) < target {
		select {
		case ch <- struct{}{}:
			parked.Add(1)
		default:
			return
		}
	}
	for int(parked.Load()) > target {
		<-ch
		parked.Add(-1)
	}
}

// unparkAll returns every parked token (drain wants full capacity for the
// in-flight work it is waiting out).
func (s *Server) unparkAll() {
	for s.parkedQueue.Load() > 0 {
		<-s.queue
		s.parkedQueue.Add(-1)
	}
	for s.parkedSem.Load() > 0 {
		<-s.sem
		s.parkedSem.Add(-1)
	}
}

// queueUsed is the number of admission tokens held by actual requests
// (parked controller tokens excluded).
func (s *Server) queueUsed() int {
	u := len(s.queue) - int(s.parkedQueue.Load())
	if u < 0 {
		u = 0
	}
	return u
}

// noteCompletion feeds the queue-drain-rate estimator: an EWMA (¾ old, ¼
// new) of the interval between solve completions, maintained with two
// atomics so it costs nothing measurable per solve. Retry-After hints on
// 429s divide the queue length by this rate.
func (s *Server) noteCompletion() {
	now := time.Now().UnixNano()
	last := s.drainLastNS.Swap(now)
	if last == 0 {
		return
	}
	iv := now - last
	if iv <= 0 {
		iv = 1
	}
	old := s.drainGapNS.Load()
	if old == 0 {
		s.drainGapNS.Store(iv)
	} else {
		s.drainGapNS.Store((old*3 + iv) / 4)
	}
}

// retryAfterSeconds estimates how long a rejected client should wait for
// the queue ahead of it to drain: (queued+1) × inter-completion gap,
// clamped to [1, max]. Before any completion has been observed it answers
// the 1-second floor.
func (s *Server) retryAfterSeconds() int {
	maxS := 30
	if rt := s.adaptRT; rt != nil {
		maxS = rt.ctrl.Config().MaxRetryAfterS
	}
	gap := s.drainGapNS.Load()
	if gap <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(s.queueUsed()+1) * float64(gap) / 1e9))
	if secs < 1 {
		secs = 1
	}
	if secs > maxS {
		secs = maxS
	}
	return secs
}

// errShedDeadline is the deadline-aware admission rejection: given the queue
// ahead of it and the controller's solve-time estimate, this request could
// not have finished inside its remaining deadline, so it is turned away
// before occupying a slot (429 + Retry-After, like a queue-full rejection).
var errShedDeadline = errors.New("service: shed, cannot finish before deadline")

// shedCheck rejects a solve that has no realistic chance of completing
// before its context deadline. Only consulted when the controller has
// entered its shedding regime; requests with no deadline always pass.
func (s *Server) shedCheck(ctx context.Context, st *adapt.State) error {
	if st.EstSolveS <= 0 {
		return nil
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	workers := st.Workers
	if workers < 1 {
		workers = 1
	}
	// Everything queued ahead must drain, then this solve must run.
	waitS := (float64(s.queueUsed())/float64(workers) + 1) * st.EstSolveS
	if remaining := time.Until(dl).Seconds(); remaining < waitS {
		return errShedDeadline
	}
	return nil
}

// queueOccupancy is queueUsed over the effective (unparked) capacity, the
// gauge the controller itself steers on.
func (s *Server) queueOccupancy() float64 {
	capQ := cap(s.queue) - int(s.parkedQueue.Load())
	if capQ <= 0 {
		return 0
	}
	return float64(s.queueUsed()) / float64(capQ)
}

// brownoutPlan is the solve-mode override a brownout rung applies to one
// request: what to substitute, never how well to price (the LP pricing
// rule is not part of the ladder).
type brownoutPlan struct {
	rung       adapt.Rung
	realize    string
	coarsenEps float64
	windows    int
	heuristic  bool
}

// brownoutFor decides whether (and how) to brown out one solve request.
// Guardrail precedence: a nil State (controller off), full fidelity,
// drain, or `?degraded=forbid` all beat every rung — the answer is nil
// and the request runs exactly as asked. A plan that would change nothing
// (e.g. realize-down on a request that asked for no realization) is also
// nil, so such requests keep their cacheable full-fidelity flights.
func brownoutFor(st *adapt.State, degradedPolicy string, req *SolveRequest) *brownoutPlan {
	if st == nil || st.Rung == adapt.RungFull || st.Draining || degradedPolicy == "forbid" {
		return nil
	}
	p := &brownoutPlan{rung: st.Rung}
	changed := false
	if st.Rung >= adapt.RungRealizeDown && req.Realize != "" && req.Realize != "down" {
		p.realize = "down"
		changed = true
	}
	if st.Rung >= adapt.RungCoarsen && st.CoarsenEps > req.CoarsenEps {
		p.coarsenEps = st.CoarsenEps
		changed = true
	}
	if st.Rung >= adapt.RungWindowed && st.Windows > req.Windows {
		p.windows = st.Windows
		changed = true
	}
	if st.Rung >= adapt.RungHeuristic {
		p.heuristic = true
		changed = true
	}
	if !changed {
		return nil
	}
	return p
}

// apply rewrites the request copy the browned flight will solve.
func (p *brownoutPlan) apply(req *SolveRequest) {
	if p.realize != "" {
		req.Realize = p.realize
	}
	if p.coarsenEps > 0 {
		req.CoarsenEps = p.coarsenEps
	}
	if p.windows > 0 {
		req.Windows = p.windows
	}
}

// pooledSystems snapshots the System pool for epoch-time updates.
func (s *Server) pooledSystems() []*powercap.System {
	s.sysMu.Lock()
	defer s.sysMu.Unlock()
	out := make([]*powercap.System, 0, len(s.sysPool))
	for _, sys := range s.sysPool {
		out = append(out, sys)
	}
	return out
}
