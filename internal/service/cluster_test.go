package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden response files")

// clusterReq is the fixed heterogeneous request the cluster tests share:
// two small jobs with distinct power–time curves under one tight budget.
func clusterReq(policy string) ClusterRequest {
	return ClusterRequest{
		Jobs: []ClusterJobSpec{
			{Name: "comd-0", Workload: &WorkloadSpec{Name: "CoMD", Ranks: 2, Iters: 3, Seed: 1, Scale: 0.1}},
			{Name: "sp-0", Workload: &WorkloadSpec{Name: "SP", Ranks: 2, Iters: 3, Seed: 2, Scale: 0.15}},
		},
		BudgetW: 130,
		Policy:  policy,
	}
}

// Volatile response fields: the request identity, wall-clock timing, and
// the cache disposition. Everything else must be bit-stable.
var (
	reqIDRe   = regexp.MustCompile(`"request_id":"[0-9a-f-]+"`)
	elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)
	cachedRe  = regexp.MustCompile(`"cached":(true|false)`)
)

func normalizeCluster(b []byte) []byte {
	b = reqIDRe.ReplaceAll(b, []byte(`"request_id":"STABLE"`))
	b = elapsedRe.ReplaceAll(b, []byte(`"elapsed_ms":0`))
	b = cachedRe.ReplaceAll(b, []byte(`"cached":false`))
	return b
}

// TestClusterEndpoint: the market allocation end-to-end through HTTP —
// request-order jobs, a converged market run on a heterogeneous pair, and
// per-job cache reuse (a follow-up whole-graph /v1/solve at a granted cap
// is served from the LRU without a backend solve).
func TestClusterEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	code, body := postJSON(t, ts.URL+"/v1/cluster", clusterReq("market"))
	if code != http.StatusOK {
		t.Fatalf("cluster: %d (%s)", code, body)
	}
	var resp ClusterResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Infeasible {
		t.Fatalf("unexpected infeasible response: %s", body)
	}
	if len(resp.Jobs) != 2 || resp.Jobs[0].Name != "comd-0" || resp.Jobs[1].Name != "sp-0" {
		t.Fatalf("job order not preserved: %s", body)
	}
	if !resp.Converged {
		t.Errorf("market did not converge: spread %g after %d iterations", resp.FinalSpreadSecPerW, resp.Iterations)
	}
	var sum float64
	for _, j := range resp.Jobs {
		if j.MakespanS <= 0 || j.CapW < j.FloorW {
			t.Errorf("job %s: makespan %g cap %g floor %g", j.Name, j.MakespanS, j.CapW, j.FloorW)
		}
		if j.ScheduleKey == "" {
			t.Errorf("job %s: no schedule cache key", j.Name)
		}
		sum += j.CapW
	}
	if sum > resp.BudgetW+1e-6 {
		t.Errorf("allocated %.3f W over the %.0f W budget", sum, resp.BudgetW)
	}
	if got := srv.metrics.ClusterAllocations.Load(); got != 1 {
		t.Errorf("ClusterAllocations = %d, want 1", got)
	}
	if got := srv.metrics.ClusterIterations.Count(); got != 1 {
		t.Errorf("ClusterIterations observations = %d, want 1", got)
	}

	// Per-job cache reuse: the allocation parked each job's final schedule
	// under its whole-graph solve key, so this /v1/solve is a pure LRU hit.
	solves := srv.metrics.Solves.Load()
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Workload: clusterReq("market").Jobs[0].Workload,
		JobCapW:  resp.Jobs[0].CapW,
		Whole:    true,
	})
	if code != http.StatusOK {
		t.Fatalf("follow-up solve: %d (%s)", code, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Errorf("follow-up solve at granted cap %.3f W was not a cache hit", resp.Jobs[0].CapW)
	}
	if sr.Key != resp.Jobs[0].ScheduleKey {
		t.Errorf("solve key %s != advertised schedule_key %s", sr.Key, resp.Jobs[0].ScheduleKey)
	}
	if got := srv.metrics.Solves.Load(); got != solves {
		t.Errorf("follow-up solve ran a backend solve (%d → %d)", solves, got)
	}
	if sr.MakespanS != resp.Jobs[0].MakespanS {
		t.Errorf("cached makespan %.12f != allocation makespan %.12f", sr.MakespanS, resp.Jobs[0].MakespanS)
	}

	// A repeat cluster request is a cluster-level cache hit.
	code, body = postJSON(t, ts.URL+"/v1/cluster", clusterReq("market"))
	if code != http.StatusOK {
		t.Fatalf("repeat cluster: %d (%s)", code, body)
	}
	var again ClusterResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat cluster request was not served from cache")
	}
	if got := srv.metrics.ClusterAllocations.Load(); got != 1 {
		t.Errorf("repeat ran the allocator again (ClusterAllocations = %d)", got)
	}
}

// TestClusterGoldenResponse pins the full response JSON byte-for-byte
// (volatile fields normalized): any schema drift, float formatting change,
// or nondeterministic ordering shows up as a golden diff. Run with -update
// to rewrite the golden after an intentional change.
func TestClusterGoldenResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := postJSON(t, ts.URL+"/v1/cluster", clusterReq("market"))
	if code != http.StatusOK {
		t.Fatalf("cluster: %d (%s)", code, body)
	}
	got := normalizeCluster(body)

	golden := filepath.Join("testdata", "cluster_market.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response diverges from golden %s (rerun with -update after intentional changes)\n got: %s\nwant: %s",
			golden, got, want)
	}

	// Determinism across server instances: a fresh daemon answering the
	// same request produces byte-identical normalized JSON — stable job
	// ordering, no map iteration order leaking into the schema.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	code, body2 := postJSON(t, ts2.URL+"/v1/cluster", clusterReq("market"))
	if code != http.StatusOK {
		t.Fatalf("second instance: %d (%s)", code, body2)
	}
	if got2 := normalizeCluster(body2); !bytes.Equal(got, got2) {
		t.Errorf("two fresh instances disagree on the same request:\n a: %s\n b: %s", got, got2)
	}
}

// TestClusterBudgetInfeasible: a budget below the floor sum answers 200
// with the in-band infeasibility proof naming every job's floor,
// largest first.
func TestClusterBudgetInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := clusterReq("market")
	req.BudgetW = 10
	code, body := postJSON(t, ts.URL+"/v1/cluster", req)
	if code != http.StatusOK {
		t.Fatalf("infeasible cluster: %d (%s)", code, body)
	}
	var resp ClusterResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Infeasible {
		t.Fatalf("expected infeasible response: %s", body)
	}
	if resp.FloorSumW <= req.BudgetW {
		t.Errorf("floor_sum_w %g should exceed budget %g", resp.FloorSumW, req.BudgetW)
	}
	if len(resp.Floors) != 2 {
		t.Fatalf("floors should name both jobs: %s", body)
	}
	if resp.Floors[0].FloorW < resp.Floors[1].FloorW {
		t.Errorf("floors not sorted largest-first: %s", body)
	}
	if len(resp.Jobs) != 0 {
		t.Errorf("infeasible response should carry no job allocations: %s", body)
	}
}

// TestClusterBadRequests: structural validation answers 400.
func TestClusterBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	wl := &WorkloadSpec{Name: "CoMD", Ranks: 2, Iters: 3, Seed: 1, Scale: 0.1}
	cases := []struct {
		name string
		req  ClusterRequest
	}{
		{"no jobs", ClusterRequest{BudgetW: 100}},
		{"no budget", ClusterRequest{Jobs: []ClusterJobSpec{{Name: "a", Workload: wl}}}},
		{"both budgets", ClusterRequest{Jobs: []ClusterJobSpec{{Name: "a", Workload: wl}}, BudgetW: 100, BudgetPerSocketW: 50}},
		{"unnamed job", ClusterRequest{Jobs: []ClusterJobSpec{{Workload: wl}}, BudgetW: 100}},
		{"dup names", ClusterRequest{Jobs: []ClusterJobSpec{{Name: "a", Workload: wl}, {Name: "a", Workload: wl}}, BudgetW: 100}},
		{"no graph", ClusterRequest{Jobs: []ClusterJobSpec{{Name: "a"}}, BudgetW: 100}},
		{"bad policy", func() ClusterRequest { r := clusterReq("vickrey"); return r }()},
		{"bad workload", ClusterRequest{Jobs: []ClusterJobSpec{{Name: "a", Workload: &WorkloadSpec{Name: "nope"}}}, BudgetW: 100}},
	}
	before := srv.metrics.BadRequests.Load()
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/v1/cluster", tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", tc.name, code, body)
		}
	}
	if got := srv.metrics.BadRequests.Load() - before; got != uint64(len(cases)) {
		t.Errorf("BadRequests counted %d of %d", got, len(cases))
	}
}

// TestClusterPolicies: every policy answers through the endpoint, and the
// market total never exceeds the uniform total on the heterogeneous pair.
func TestClusterPolicies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	totals := map[string]float64{}
	for _, pol := range []string{"uniform", "proportional", "market", "auction"} {
		code, body := postJSON(t, ts.URL+"/v1/cluster", clusterReq(pol))
		if code != http.StatusOK {
			t.Fatalf("%s: %d (%s)", pol, code, body)
		}
		var resp ClusterResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Policy != pol {
			t.Errorf("policy echoed as %q, want %q", resp.Policy, pol)
		}
		totals[pol] = resp.TotalMakespanS
	}
	if totals["market"] > totals["uniform"]*(1+1e-9) {
		t.Errorf("market total %.6f worse than uniform %.6f", totals["market"], totals["uniform"])
	}
}
