package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"powercap"
	"powercap/internal/faultinject"
	"powercap/internal/obs"
	"powercap/internal/slo"
)

// Solve forensics (DESIGN.md §16): the always-on flight recorder, the
// /debug/flightrecorder endpoint, and the request-ID correlation between
// /v1/cluster allocations and their parked per-job schedules.

// flightDumpJSON mirrors the dump schema for decoding in tests.
type flightDumpJSON struct {
	Reason string          `json:"reason"`
	Total  uint64          `json:"total_recorded"`
	Events []obs.WideEvent `json:"events"`
}

func fetchFlightDump(t *testing.T, url string) flightDumpJSON {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder fetch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("flight recorder content type %q", ct)
	}
	var d flightDumpJSON
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("bad flight dump: %v", err)
	}
	return d
}

// postJSONHeaders is postJSON with request headers (for X-Request-Id).
func postJSONHeaders(t *testing.T, url string, body any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// TestFlightRecorderEndpoint: every request leaves one wide event; the dump
// reconstructs the cache story (miss then hit), carries the solve shape and
// kernel effort on the flight that ran the solve, and the ?n= bound and
// validation behave.
func TestFlightRecorderEndpoint(t *testing.T) {
	faultinject.Disable()
	_, ts := newTestServer(t, Config{Workers: 2})

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50})
	if code != http.StatusOK {
		t.Fatalf("solve: %d (%s)", code, body)
	}
	var first SolveResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50}); code != http.StatusOK {
		t.Fatalf("repeat solve: %d", code)
	}

	d := fetchFlightDump(t, ts.URL+"/debug/flightrecorder?n=10")
	if d.Reason != "debug-endpoint" {
		t.Errorf("dump reason %q", d.Reason)
	}
	if d.Total < 2 || len(d.Events) < 2 {
		t.Fatalf("dump has %d events (total %d), want >= 2", len(d.Events), d.Total)
	}
	var miss, hit *obs.WideEvent
	for i := range d.Events {
		ev := &d.Events[i]
		if ev.Path != "/v1/solve" {
			continue
		}
		switch ev.Cache {
		case "miss":
			miss = ev
		case "hit":
			hit = ev
		}
	}
	if miss == nil || hit == nil {
		t.Fatalf("dump lacks a miss and a hit event: %+v", d.Events)
	}
	if miss.RequestID != first.RequestID {
		t.Errorf("miss event request ID %q, response said %q", miss.RequestID, first.RequestID)
	}
	if miss.Workload != "CoMD" || miss.CapW != 100 {
		t.Errorf("miss event solve shape: workload %q cap %g", miss.Workload, miss.CapW)
	}
	if miss.Rung == "" {
		t.Error("miss event has no resilience rung")
	}
	if miss.Kernel.Solves == 0 || miss.Kernel.SimplexPivots == 0 {
		t.Errorf("miss event kernel health empty: %+v", miss.Kernel)
	}
	sum := 0
	for _, a := range miss.RungAttempts {
		sum += int(a)
	}
	if sum == 0 {
		t.Error("miss event has no rung attempts")
	}
	if miss.DeadlineMS <= 0 {
		t.Errorf("miss event deadline budget %g", miss.DeadlineMS)
	}
	if miss.Status != http.StatusOK || miss.DurMS <= 0 || miss.TimeUnixNS == 0 {
		t.Errorf("miss event outcome: status %d dur %g t %d", miss.Status, miss.DurMS, miss.TimeUnixNS)
	}
	// The hit spent no kernel effort of its own.
	if hit.Kernel.Solves != 0 {
		t.Errorf("hit event charged kernel effort: %+v", hit.Kernel)
	}
	if hit.CacheKey != miss.CacheKey {
		t.Errorf("hit/miss cache keys diverge: %q vs %q", hit.CacheKey, miss.CacheKey)
	}

	// ?n=1 truncates to the newest event; a bad n is a 400.
	if d := fetchFlightDump(t, ts.URL+"/debug/flightrecorder?n=1"); len(d.Events) != 1 {
		t.Errorf("?n=1 returned %d events", len(d.Events))
	}
	resp, err := http.Get(ts.URL + "/debug/flightrecorder?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?n=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestWideEventCausalChain: for a fault-injected degraded solve the wide
// event alone reconstructs the causal chain — the rung that served it, the
// per-rung attempt trail of the descent, the machine-readable reason — and
// subsequent admissions see the SLO burn the incident caused.
func TestWideEventCausalChain(t *testing.T) {
	faultinject.Disable()
	_, ts := newTestServer(t, Config{
		Workers: 2,
		// A 1ns latency threshold makes every request "slow", so the
		// latency objective's burn spikes immediately.
		SLO: slo.Config{LatencyThreshold: time.Nanosecond},
		Resilience: powercap.ResilienceConfig{
			BackoffBase: 100 * time.Microsecond,
		},
	})
	faultinject.Configure(11, map[faultinject.Class]float64{faultinject.LPStall: 1.0})
	defer faultinject.Disable()

	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 60})
	if code != http.StatusOK {
		t.Fatalf("degraded solve: %d (%s)", code, body)
	}
	var resp SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("all-stall solve was not degraded; fault injection inert?")
	}
	// A second request admits after the first one's outcome was classified.
	if code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 61}); code != http.StatusOK {
		t.Fatalf("second solve: %d", code)
	}

	d := fetchFlightDump(t, ts.URL+"/debug/flightrecorder?n=0")
	var degraded, second *obs.WideEvent
	for i := range d.Events {
		ev := &d.Events[i]
		if ev.RequestID == resp.RequestID {
			degraded = ev
		} else if ev.Path == "/v1/solve" {
			second = ev
		}
	}
	if degraded == nil || second == nil {
		t.Fatalf("dump lacks the degraded and follow-up events (%d events)", len(d.Events))
	}
	if !degraded.Degraded || degraded.Rung != resp.DegradedRung || degraded.Rung == "" {
		t.Errorf("degraded event rung %q (degraded=%v), response said %q",
			degraded.Rung, degraded.Degraded, resp.DegradedRung)
	}
	if degraded.DegradedReason == "" {
		t.Error("degraded event carries no descent reason")
	}
	// The descent trail: the sparse rung was attempted (and failed) before
	// the ladder fell to the serving rung.
	if degraded.RungAttempts[0] == 0 {
		t.Errorf("degraded event rung attempts %v: sparse rung never attempted", degraded.RungAttempts)
	}
	if second.SLOFastBurn <= 0 {
		t.Errorf("follow-up admission burn %g, want > 0 after the slow/degraded request", second.SLOFastBurn)
	}
}

// TestClusterRequestIDEcho: a client-supplied X-Request-Id is adopted and
// echoed (header and body), the /v1/cluster allocation parks its per-job
// schedules tagged with that ID, and the follow-up /v1/solve that hits a
// parked entry reports the allocation as its cluster origin — the full
// cross-endpoint forensic correlation.
func TestClusterRequestIDEcho(t *testing.T) {
	faultinject.Disable()
	_, ts := newTestServer(t, Config{Workers: 2})

	const clusterID = "test-cluster-1"
	code, body, hdr := postJSONHeaders(t, ts.URL+"/v1/cluster", ClusterRequest{
		Jobs:    []ClusterJobSpec{{Name: "a", Workload: fastWL}},
		BudgetW: 120,
	}, map[string]string{"X-Request-Id": clusterID})
	if code != http.StatusOK {
		t.Fatalf("cluster: %d (%s)", code, body)
	}
	if got := hdr.Get("X-Request-Id"); got != clusterID {
		t.Errorf("header echo %q, want %q", got, clusterID)
	}
	var cresp ClusterResponse
	if err := json.Unmarshal(body, &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.RequestID != clusterID {
		t.Errorf("body echo %q, want %q", cresp.RequestID, clusterID)
	}
	if len(cresp.Jobs) != 1 || cresp.Jobs[0].ScheduleKey == "" {
		t.Fatalf("cluster parked no schedule: %+v", cresp.Jobs)
	}

	// The follow-up fetch of the job's schedule hits the parked entry and
	// names the allocation that granted the cap.
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Workload: fastWL, JobCapW: cresp.Jobs[0].CapW, Whole: true,
	})
	if code != http.StatusOK {
		t.Fatalf("follow-up solve: %d (%s)", code, body)
	}
	var sresp SolveResponse
	if err := json.Unmarshal(body, &sresp); err != nil {
		t.Fatal(err)
	}
	if !sresp.Cached {
		t.Error("follow-up solve missed the parked entry")
	}
	if sresp.ClusterOrigin != clusterID {
		t.Errorf("cluster origin %q, want %q", sresp.ClusterOrigin, clusterID)
	}
	if sresp.Key != cresp.Jobs[0].ScheduleKey {
		t.Errorf("follow-up key %q != parked key %q", sresp.Key, cresp.Jobs[0].ScheduleKey)
	}

	// The wide event for the follow-up carries the same correlation.
	d := fetchFlightDump(t, ts.URL+"/debug/flightrecorder?n=0")
	found := false
	for _, ev := range d.Events {
		if ev.RequestID == sresp.RequestID {
			found = true
			if ev.ClusterOrigin != clusterID {
				t.Errorf("wide event cluster origin %q, want %q", ev.ClusterOrigin, clusterID)
			}
		}
	}
	if !found {
		t.Error("follow-up solve left no wide event")
	}

	// Unsafe client identifiers are rejected and replaced.
	code, _, hdr = postJSONHeaders(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50},
		map[string]string{"X-Request-Id": "bad id with spaces!"})
	if code != http.StatusOK {
		t.Fatalf("solve with bad id: %d", code)
	}
	if got := hdr.Get("X-Request-Id"); got == "bad id with spaces!" || got == "" {
		t.Errorf("unsafe request ID adopted or lost: %q", got)
	}
}

// TestHealthzSLOBlock: /healthz reports per-objective burn status.
func TestHealthzSLOBlock(t *testing.T) {
	faultinject.Disable()
	_, ts := newTestServer(t, Config{Workers: 1})
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		SLO []slo.ObjectiveStatus `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.SLO) != 2 || body.SLO[0].Name != "availability" || body.SLO[1].Name != "latency" {
		t.Fatalf("healthz slo block: %+v", body.SLO)
	}
	if body.SLO[0].FastTotal == 0 {
		t.Error("availability objective saw no samples after a solve")
	}
}
