package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"powercap"
	"powercap/internal/adapt"
	"powercap/internal/faultinject"
	"powercap/internal/slo"
)

// Service-level tests of the adaptive overload control plane: brownout
// guardrail precedence, the never-cache-brownout rule, Retry-After hints,
// the deadline and retry-budget shed paths, capacity parking, and the
// drain checkpoint. The controller's own hysteresis behavior is covered by
// the table tests in internal/adapt; here the controller is mostly driven
// by storing synthetic States directly.

// adaptServer builds a control-plane-enabled test server.
func adaptServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Adapt.Enabled = true
	s, ts := newTestServer(t, cfg)
	return s, ts.URL
}

// postWithHeaders is postJSON plus request headers, returning the response
// so tests can read Retry-After.
func postWithHeaders(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestBrownoutPlanGuardrails(t *testing.T) {
	base := func(r adapt.Rung) *adapt.State {
		return &adapt.State{Rung: r, CoarsenEps: 0.002, Windows: 4}
	}
	cases := []struct {
		name   string
		st     *adapt.State
		policy string
		req    SolveRequest
		want   *brownoutPlan
	}{
		{name: "controller off", st: nil, req: SolveRequest{Realize: "best"}, want: nil},
		{name: "full fidelity", st: &adapt.State{Rung: adapt.RungFull}, req: SolveRequest{Realize: "best"}, want: nil},
		{name: "draining beats every rung",
			st:   &adapt.State{Rung: adapt.RungHeuristic, Draining: true},
			req:  SolveRequest{Realize: "best"},
			want: nil},
		{name: "degraded=forbid beats every rung",
			st: base(adapt.RungHeuristic), policy: "forbid",
			req:  SolveRequest{Realize: "best"},
			want: nil},
		{name: "realize-down downgrades an expensive strategy",
			st:   base(adapt.RungRealizeDown),
			req:  SolveRequest{Realize: "best"},
			want: &brownoutPlan{rung: adapt.RungRealizeDown, realize: "down"}},
		{name: "realize-down no-op when nothing to downgrade",
			st:   base(adapt.RungRealizeDown),
			req:  SolveRequest{},
			want: nil},
		{name: "realize-down no-op when already down",
			st:   base(adapt.RungRealizeDown),
			req:  SolveRequest{Realize: "down"},
			want: nil},
		{name: "coarsen raises the epsilon",
			st:   base(adapt.RungCoarsen),
			req:  SolveRequest{},
			want: &brownoutPlan{rung: adapt.RungCoarsen, coarsenEps: 0.002}},
		{name: "coarsen never lowers a client epsilon",
			st:   base(adapt.RungCoarsen),
			req:  SolveRequest{CoarsenEps: 0.005},
			want: nil},
		{name: "windowed adds the decomposition",
			st:   base(adapt.RungWindowed),
			req:  SolveRequest{},
			want: &brownoutPlan{rung: adapt.RungWindowed, coarsenEps: 0.002, windows: 4}},
		{name: "heuristic rung",
			st:   base(adapt.RungHeuristic),
			req:  SolveRequest{},
			want: &brownoutPlan{rung: adapt.RungHeuristic, coarsenEps: 0.002, windows: 4, heuristic: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := brownoutFor(tc.st, tc.policy, &tc.req)
			switch {
			case got == nil && tc.want == nil:
			case got == nil || tc.want == nil:
				t.Fatalf("plan = %+v, want %+v", got, tc.want)
			case *got != *tc.want:
				t.Fatalf("plan = %+v, want %+v", *got, *tc.want)
			}
		})
	}
}

func TestBrownoutNeverCached(t *testing.T) {
	s, base := adaptServer(t, Config{Workers: 2})
	full := s.adaptState.Load() // the initial full-fidelity state

	s.adaptState.Store(&adapt.State{Rung: adapt.RungHeuristic, CoarsenEps: 0.002, Windows: 4})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 50}
	code, resp := solveJSON(t, base+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("browned solve: status %d", code)
	}
	if resp.Brownout != "heuristic" || !resp.Degraded || resp.DegradedReason != "brownout:heuristic" {
		t.Fatalf("browned solve = brownout %q degraded %v reason %q",
			resp.Brownout, resp.Degraded, resp.DegradedReason)
	}
	if resp.Cached {
		t.Fatal("browned solve claims to be cached")
	}
	if n := s.metrics.BrownoutSolves.Load(); n != 1 {
		t.Fatalf("BrownoutSolves = %d, want 1", n)
	}

	// Recovery: the browned result must not have poisoned the cache — the
	// same request now runs a fresh full-fidelity solve.
	s.adaptState.Store(full)
	code, resp = solveJSON(t, base+"/v1/solve", req)
	if code != http.StatusOK || resp.Degraded || resp.Brownout != "" {
		t.Fatalf("post-recovery solve: status %d degraded %v brownout %q", code, resp.Degraded, resp.Brownout)
	}
	if resp.Cached {
		t.Fatal("full-fidelity solve after brownout served from cache: brownout result was cached")
	}
	// And the full-fidelity result does cache.
	if _, resp = solveJSON(t, base+"/v1/solve", req); !resp.Cached {
		t.Fatal("repeat full-fidelity solve not cached")
	}
}

func TestBrownoutPrefersCachedFullFidelity(t *testing.T) {
	s, base := adaptServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 55}
	if code, _ := solveJSON(t, base+"/v1/solve", req); code != http.StatusOK {
		t.Fatalf("warmup solve failed: %d", code)
	}

	// Under the deepest brownout, a request whose full-fidelity answer is
	// already in the LRU gets that answer, not a heuristic schedule.
	s.adaptState.Store(&adapt.State{Rung: adapt.RungHeuristic, CoarsenEps: 0.002, Windows: 4})
	code, resp := solveJSON(t, base+"/v1/solve", req)
	if code != http.StatusOK || !resp.Cached || resp.Brownout != "" || resp.Degraded {
		t.Fatalf("cached hit under brownout: status %d cached %v brownout %q degraded %v",
			code, resp.Cached, resp.Brownout, resp.Degraded)
	}
}

func TestBrownoutForbidPrecedence(t *testing.T) {
	s, base := adaptServer(t, Config{Workers: 2})
	s.adaptState.Store(&adapt.State{Rung: adapt.RungHeuristic, CoarsenEps: 0.002, Windows: 4})

	// ?degraded=forbid beats every rung: the request runs full fidelity.
	code, resp := solveJSON(t, base+"/v1/solve?degraded=forbid",
		SolveRequest{Workload: fastWL, CapPerSocketW: 60})
	if code != http.StatusOK {
		t.Fatalf("forbid solve under brownout: status %d", code)
	}
	if resp.Degraded || resp.Brownout != "" {
		t.Fatalf("forbid solve browned anyway: degraded %v brownout %q", resp.Degraded, resp.Brownout)
	}
	if n := s.metrics.BrownoutSolves.Load(); n != 0 {
		t.Fatalf("BrownoutSolves = %d under degraded=forbid, want 0", n)
	}
}

func TestRetryAfterOnQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy every admission token so the next solve is rejected.
	for i := 0; i < cap(s.queue); i++ {
		s.queue <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.queue); i++ {
			<-s.queue
		}
	}()

	resp, body := postWithHeaders(t, ts.URL+"/v1/solve",
		SolveRequest{Workload: fastWL, CapPerSocketW: 50}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}
}

func TestRetryBudgetGate(t *testing.T) {
	cfg := Config{Workers: 2}
	cfg.Adapt = adapt.Config{Enabled: true, RetryBurst: 2}
	s, ts := newTestServer(t, cfg)

	// Warm the cache so budgeted retries are cheap hits.
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 50}
	if code, _ := solveJSON(t, ts.URL+"/v1/solve", req); code != http.StatusOK {
		t.Fatal("warmup failed")
	}

	// The bucket holds RetryBurst tokens and refills at the observed solve
	// completion rate — zero until an epoch ticks, so exactly two declared
	// retries pass and the third is shed.
	hdr := map[string]string{"X-Retry-Attempt": "1"}
	for i := 0; i < 2; i++ {
		if resp, body := postWithHeaders(t, ts.URL+"/v1/solve", req, hdr); resp.StatusCode != http.StatusOK {
			t.Fatalf("budgeted retry %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := postWithHeaders(t, ts.URL+"/v1/solve", req, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget retry: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-budget 429 lacks Retry-After")
	}
	if n := s.metrics.ShedRetryBudget.Load(); n != 1 {
		t.Fatalf("ShedRetryBudget = %d, want 1", n)
	}

	// Non-retry traffic is never gated by the budget.
	if resp, body := postWithHeaders(t, ts.URL+"/v1/solve", req, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first-attempt request gated: status %d (%s)", resp.StatusCode, body)
	}
}

func TestDeadlineShed(t *testing.T) {
	s, base := adaptServer(t, Config{Workers: 2})
	// Sheddding armed with an estimate no request deadline can cover.
	s.adaptState.Store(&adapt.State{Rung: adapt.RungRealizeDown, Shedding: true, EstSolveS: 3600, Workers: 2})

	resp, body := postWithHeaders(t, base+"/v1/solve",
		SolveRequest{Workload: fastWL, CapPerSocketW: 65, TimeoutMS: 1000}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed solve: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 lacks Retry-After")
	}
	if n := s.metrics.ShedDeadline.Load(); n != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", n)
	}

	// A request whose deadline covers the estimate is admitted.
	s.adaptState.Store(&adapt.State{Rung: adapt.RungRealizeDown, Shedding: true, EstSolveS: 0.001, Workers: 2})
	if code, _ := solveJSON(t, base+"/v1/solve",
		SolveRequest{Workload: fastWL, CapPerSocketW: 65}); code != http.StatusOK {
		t.Fatalf("viable solve shed: status %d", code)
	}
}

func TestParkingAndOccupancy(t *testing.T) {
	s, _ := adaptServer(t, Config{Workers: 4, QueueDepth: 4})
	if got := s.queueOccupancy(); got != 0 {
		t.Fatalf("idle occupancy %g", got)
	}

	// Shrink to 2 workers + 2 queue slots: 4 of 8 admission tokens and 2 of
	// 4 worker slots get parked.
	s.applyParking(&adapt.State{Workers: 2, QueueDepth: 2})
	if pq, ps := s.parkedQueue.Load(), s.parkedSem.Load(); pq != 4 || ps != 2 {
		t.Fatalf("parked queue %d sem %d, want 4 and 2", pq, ps)
	}
	if used := s.queueUsed(); used != 0 {
		t.Fatalf("queueUsed %d with only parked tokens, want 0", used)
	}

	// A request still gets through at the reduced capacity, and its token
	// is not confused with a parked one.
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire under parking: %v", err)
	}
	if used := s.queueUsed(); used != 1 {
		t.Fatalf("queueUsed %d with one request, want 1", used)
	}
	if got := s.queueOccupancy(); got != 0.25 {
		t.Fatalf("occupancy %g, want 0.25 (1 of 4 effective)", got)
	}
	release()

	// Restore: every parked token comes back out (unpark never blocks).
	s.applyParking(&adapt.State{Workers: 4, QueueDepth: 4})
	if pq, ps := s.parkedQueue.Load(), s.parkedSem.Load(); pq != 0 || ps != 0 {
		t.Fatalf("parked queue %d sem %d after restore, want 0 and 0", pq, ps)
	}
	if n := len(s.queue) + len(s.sem); n != 0 {
		t.Fatalf("%d stray channel tokens after restore", n)
	}
}

func TestDrainCheckpointSnapsUp(t *testing.T) {
	s, base := adaptServer(t, Config{Workers: 2, QueueDepth: 4})
	rt := s.adaptRT

	// Walk the controller down two rungs with synthetic saturated epochs,
	// and park some capacity, as a loaded controller would have.
	hot := adapt.Signals{Requests: 100, Rejected: 100, EpochS: 1}
	for i := 0; i < 4; i++ {
		st, _ := rt.ctrl.Step(hot)
		s.adaptState.Store(st)
		s.applyParking(st)
	}
	if st := s.adaptState.Load(); st.Rung != adapt.RungCoarsen {
		t.Fatalf("setup rung %v, want coarsen", st.Rung)
	}
	if s.parkedQueue.Load() == 0 {
		t.Fatal("setup parked nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Drain snapped the ladder up to full fidelity, pinned it there, and
	// returned every parked token.
	st := s.adaptState.Load()
	if st.Rung != adapt.RungFull || !st.Draining {
		t.Fatalf("post-drain state rung %v draining %v, want full/true", st.Rung, st.Draining)
	}
	if pq, ps := s.parkedQueue.Load(), s.parkedSem.Load(); pq != 0 || ps != 0 {
		t.Fatalf("parked queue %d sem %d after drain, want 0 and 0", pq, ps)
	}
	// Further saturated epochs must not descend while draining.
	for i := 0; i < 6; i++ {
		st, trans := rt.ctrl.Step(hot)
		if st.Rung != adapt.RungFull || len(trans) != 0 {
			t.Fatalf("draining controller descended: rung %v trans %v", st.Rung, trans)
		}
	}
	// And the API refuses new work.
	if code, _ := postJSON(t, base+"/v1/solve",
		SolveRequest{Workload: fastWL, CapPerSocketW: 50}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve status %d, want 503", code)
	}
}

func TestAdaptOffNilState(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if s.adaptState.Load() != nil || s.adaptRT != nil {
		t.Fatal("disabled control plane left state behind")
	}
	if _, ok := healthz(t, ts.URL)["adapt"]; ok {
		t.Fatal("healthz reports adapt block with the control plane off")
	}
	stop := s.StartAdapt() // must be a no-op
	stop()
	m := metricsMap(t, ts.URL)
	if m["pcschedd_adapt_workers"] != 2 || m["pcschedd_brownout_rung"] != 0 {
		t.Fatalf("disarmed gauges: workers %g rung %g", m["pcschedd_adapt_workers"], m["pcschedd_brownout_rung"])
	}
}

// TestTwinChaosRecovery is the chaos-smoke extension for the control plane:
// under an lp-nan + worker-panic fault storm the controller must descend
// (open breakers saturate pressure), and once the faults clear it must walk
// back to full fidelity — with the breakers re-closed — within a bounded
// number of epochs.
func TestTwinChaosRecovery(t *testing.T) {
	faultinject.Disable()
	cfg := Config{
		Workers: 2,
		Resilience: powercap.ResilienceConfig{
			BackoffBase:     100 * time.Microsecond,
			BreakerCooldown: 50 * time.Millisecond,
		},
	}
	cfg.Adapt = adapt.Config{Enabled: true}
	// The twin compresses hours of traffic into milliseconds, so the SLO
	// windows feeding the controller must compress with it: a wall-clock
	// 5m fast window would hold the storm's errors for the whole test and
	// pin the burn-driven pressure high long after the faults clear.
	cfg.SLO = slo.Config{FastWindow: 50 * time.Millisecond, SlowWindow: 500 * time.Millisecond, Buckets: 10}
	s, ts := newTestServer(t, cfg)

	// NaNs alone are repaired in place by the solver's refactorization
	// rescue; stalls are what actually fail a rung and charge its breaker.
	faultinject.Configure(7, map[faultinject.Class]float64{
		faultinject.LPNaN:       0.5,
		faultinject.LPStall:     1.0,
		faultinject.WorkerPanic: 0.2,
	})
	defer faultinject.Disable()

	// Storm: every LP pivot loop stalls out, so the ladder descends to its
	// heuristic and the sparse/dense breakers open; each epoch the
	// controller sees open breakers (pressure 1) and walks the brownout
	// ladder down.
	for i := 0; i < 10; i++ {
		code, _ := postJSON(t, ts.URL+"/v1/solve",
			SolveRequest{Workload: fastWL, CapPerSocketW: 50 + float64(i)})
		if code != http.StatusOK && code != http.StatusInternalServerError &&
			code != http.StatusTooManyRequests {
			t.Fatalf("storm solve %d: unexpected status %d", i, code)
		}
		s.AdaptEpoch()
	}
	stormSt := s.adaptState.Load()
	if stormSt.Rung == adapt.RungFull {
		t.Fatalf("controller never descended under the fault storm (pressure %g)", stormSt.Pressure)
	}
	if br := s.breakerStates(); br["sparse"] == "closed" {
		t.Fatal("sparse breaker still closed after an all-NaN storm")
	}
	t.Logf("storm: rung %v after 10 epochs, breakers %v", stormSt.Rung, s.breakerStates())

	// Recovery: faults off, cooldown elapses, and calm epochs (each with a
	// fresh successful solve) must re-close the breakers and return the
	// ladder to full fidelity within 30 epochs.
	faultinject.Disable()
	time.Sleep(60 * time.Millisecond) // past BreakerCooldown
	recovered := -1
	for i := 0; i < 30; i++ {
		// Let the compressed SLO window rotate between epochs, so the
		// storm's errors age out the way hours do in production.
		time.Sleep(5 * time.Millisecond)
		code, _ := postJSON(t, ts.URL+"/v1/solve",
			SolveRequest{Workload: fastWL, CapPerSocketW: 100 + float64(i)})
		if code != http.StatusOK {
			t.Fatalf("recovery solve %d: status %d", i, code)
		}
		st := s.AdaptEpoch()
		if st.Rung == adapt.RungFull && s.breakerStates()["sparse"] == "closed" {
			recovered = i + 1
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("no recovery within 30 epochs: rung %v breakers %v",
			s.adaptState.Load().Rung, s.breakerStates())
	}
	t.Logf("recovered to full fidelity with closed breakers after %d calm epochs", recovered)

	// Fully recovered service serves clean full-fidelity schedules.
	code, resp := solveJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 200})
	if code != http.StatusOK || resp.Degraded || resp.Brownout != "" {
		t.Fatalf("post-recovery solve: status %d degraded %v brownout %q", code, resp.Degraded, resp.Brownout)
	}
}
