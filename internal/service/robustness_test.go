package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"powercap/internal/trace"
)

// Satellite regression tests: malformed DAG JSON that used to reach graph
// construction (and could panic deep in the problem build) must come back as
// a 400 and leave the daemon fully alive.

// computeRec builds a compute TaskRec with a valid shape.
func computeRec(id, rank, src, dst int) trace.TaskRec {
	return trace.TaskRec{
		ID: id, Kind: "compute", Rank: rank, Src: src, Dst: dst,
		Work: 0.1, Class: "w",
		Shape: &trace.ShapeRec{SerialFrac: 0.05, MemFrac: 0.3, MemSatThreads: 8, ContentionCoef: 0.01, Intensity: 1},
	}
}

// unmatchedSendTrace has a Send vertex with no message edge leaving it — the
// trace-level analogue of a program that exited with a send in flight.
func unmatchedSendTrace() *trace.File {
	return &trace.File{
		Version: trace.FormatVersion, NumRanks: 2,
		Vertices: []trace.VertexRec{
			{ID: 0, Kind: "init", Rank: -1},
			{ID: 1, Kind: "send", Rank: 0},
			{ID: 2, Kind: "finalize", Rank: -1},
		},
		Tasks: []trace.TaskRec{
			computeRec(0, 0, 0, 1),
			computeRec(1, 0, 1, 2),
			computeRec(2, 1, 0, 2),
		},
	}
}

// selfSendTrace carries a message edge whose sender and receiver are the
// same rank.
func selfSendTrace() *trace.File {
	return &trace.File{
		Version: trace.FormatVersion, NumRanks: 2,
		Vertices: []trace.VertexRec{
			{ID: 0, Kind: "init", Rank: -1},
			{ID: 1, Kind: "send", Rank: 0},
			{ID: 2, Kind: "recv", Rank: 0},
			{ID: 3, Kind: "finalize", Rank: -1},
		},
		Tasks: []trace.TaskRec{
			computeRec(0, 0, 0, 1),
			{ID: 1, Kind: "message", Rank: 0, Src: 1, Dst: 2, Bytes: 64, FixedDur: 1e-6},
			computeRec(2, 0, 2, 3),
			computeRec(3, 1, 0, 3),
		},
	}
}

// cycleTrace contains a dependency cycle.
func cycleTrace() *trace.File {
	return &trace.File{
		Version: trace.FormatVersion, NumRanks: 1,
		Vertices: []trace.VertexRec{
			{ID: 0, Kind: "init", Rank: -1},
			{ID: 1, Kind: "collective", Rank: -1},
			{ID: 2, Kind: "finalize", Rank: -1},
		},
		Tasks: []trace.TaskRec{
			computeRec(0, 0, 0, 1),
			computeRec(1, 0, 1, 0), // back edge
			computeRec(2, 0, 1, 2),
		},
	}
}

func TestMalformedTraceRejectedDaemonSurvives(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	cases := []struct {
		name string
		tf   *trace.File
	}{
		{"unmatched-send", unmatchedSendTrace()},
		{"self-send", selfSendTrace()},
		{"cycle", cycleTrace()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Trace: tc.tf, CapPerSocketW: 55})
			if code != http.StatusBadRequest {
				t.Fatalf("malformed trace got status %d, body %s", code, body)
			}
		})
	}

	// The daemon must still solve real work and must not have counted any
	// panic: malformed input is a client error, not a contained crash.
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusOK {
		t.Fatalf("clean solve after malformed traces: status %d, body %s", code, body)
	}
	m := metricsMap(t, ts.URL)
	if m["pcschedd_panics_total"] != 0 {
		t.Fatalf("malformed traces were handled by panic recovery (%v), want plain 400s", m["pcschedd_panics_total"])
	}
	if m["pcschedd_bad_requests_total"] != 3 {
		t.Fatalf("bad_requests_total = %v, want 3", m["pcschedd_bad_requests_total"])
	}
}

// TestHandlerPanicContained proves the api() middleware recovery: a handler
// that panics yields a 500 with the panic counted, and the server keeps
// serving.
func TestHandlerPanicContained(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.mux.HandleFunc("POST /v1/boom", s.api(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))

	code, body := postJSON(t, ts.URL+"/v1/boom", struct{}{})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, body %s", code, body)
	}
	var e map[string]any
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("500 body is not JSON: %s", body)
	}
	if m := s.metrics.Panics.Load(); m != 1 {
		t.Fatalf("panics_total = %d, want 1", m)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55}); code != http.StatusOK {
		t.Fatalf("server dead after contained panic: status %d", code)
	}
}
