package service

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Prometheus exposition conformance: parse the full /metrics output of a
// live server line by line and hold it to the text-format contract — every
// family announced with # HELP and # TYPE before its samples, legal metric
// and label names, parseable values, cumulative bucket monotonicity, and
// _sum/_count consistency for every histogram series.
// ---------------------------------------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$`)
)

// sample is one parsed non-comment exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

func parseSample(t *testing.T, line string) sample {
	t.Helper()
	s := sample{labels: map[string]string{}, line: line}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			t.Fatalf("malformed label block in %q", line)
		}
		s.name = line[:i]
		for _, pair := range strings.Split(line[i+1:j], ",") {
			if !labelRe.MatchString(pair) {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			eq := strings.IndexByte(pair, '=')
			s.labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q is not \"name value\"", line)
		}
		s.name, rest = fields[0], fields[1]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("illegal metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	s.value = v
	return s
}

// family strips the histogram sample suffixes so a _bucket/_sum/_count line
// maps back to the declared metric family.
func family(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func TestMetricsConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Exercise enough of the service that every dynamic family renders:
	// a traced solve (stage histograms + traced counter), a repeat (cache
	// hit), a bad request, and a cluster allocation (cluster counters, the
	// iteration count histogram, and the moved-watts float counter).
	if code, body := postJSON(t, ts.URL+"/v1/solve?trace=1",
		SolveRequest{Workload: fastWL, CapPerSocketW: 50}); code != http.StatusOK {
		t.Fatalf("solve: %d (%s)", code, body)
	}
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 50})
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL})
	if code, body := postJSON(t, ts.URL+"/v1/cluster", ClusterRequest{
		Jobs: []ClusterJobSpec{
			{Name: "a", Workload: fastWL},
			{Name: "b", Workload: &WorkloadSpec{Name: "SP", Ranks: 2, Iters: 3, Seed: 2, Scale: 0.15}},
		},
		BudgetW: 130,
	}); code != http.StatusOK {
		t.Fatalf("cluster: %d (%s)", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	helps := map[string]string{} // family -> help
	types := map[string]string{} // family -> counter|gauge|histogram
	var samples []sample
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("illegal family name in %q", line)
			}
			switch fields[1] {
			case "HELP":
				if _, dup := helps[name]; dup {
					t.Fatalf("duplicate HELP for %s", name)
				}
				helps[name] = fields[3]
			case "TYPE":
				if _, dup := types[name]; dup {
					t.Fatalf("duplicate TYPE for %s", name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("unknown type in %q", line)
				}
				types[name] = fields[3]
			}
			continue
		}
		samples = append(samples, parseSample(t, line))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Every sample belongs to a family declared with both HELP and TYPE;
	// every declared family has at least one sample.
	seen := map[string]bool{}
	for _, s := range samples {
		fam := family(s.name, types)
		if _, ok := types[fam]; !ok {
			t.Errorf("sample %q has no # TYPE", s.line)
		}
		if _, ok := helps[fam]; !ok {
			t.Errorf("sample %q has no # HELP", s.line)
		}
		if types[fam] != "histogram" && s.name != fam {
			t.Errorf("sample %q does not match its family name %q", s.line, fam)
		}
		if s.value < 0 || math.IsNaN(s.value) {
			t.Errorf("negative or NaN sample %q", s.line)
		}
		seen[fam] = true
	}
	for fam := range types {
		if !seen[fam] {
			t.Errorf("family %s declared but has no samples", fam)
		}
		if _, ok := helps[fam]; !ok {
			t.Errorf("family %s has TYPE but no HELP", fam)
		}
	}
	for fam := range helps {
		if _, ok := types[fam]; !ok {
			t.Errorf("family %s has HELP but no TYPE", fam)
		}
	}
	for _, fam := range []string{
		"pcschedd_requests_total", "pcschedd_solves_total",
		"pcschedd_traced_requests_total", "pcschedd_inflight_requests",
		"pcschedd_request_latency_seconds", "pcschedd_stage_latency_seconds",
		"pcschedd_goroutines", "pcschedd_cache_entries", "pcschedd_build_info",
		"pcschedd_cluster_allocations_total", "pcschedd_cluster_jobs_allocated_total",
		"pcschedd_cluster_converged_total", "pcschedd_cluster_iterations",
		"pcschedd_cluster_moved_watts_total",
		"pcschedd_shed_total", "pcschedd_queue_occupancy",
		"pcschedd_adapt_epochs_total", "pcschedd_adapt_transitions_total",
		"pcschedd_brownout_solves_total", "pcschedd_brownout_rung",
		"pcschedd_adapt_workers", "pcschedd_adapt_queue_depth",
		"pcschedd_retry_budget_tokens",
		"pcschedd_lp_refactorizations_total", "pcschedd_lp_pivot_rejections_total",
		"pcschedd_lp_factor_tau_retries_total", "pcschedd_lp_nan_recoveries_total",
		"pcschedd_lp_bland_activations_total", "pcschedd_lp_presolve_rows_total",
		"pcschedd_lp_presolve_cols_total", "pcschedd_lp_max_eta_len",
		"pcschedd_lp_row_norm_ratio_max",
		"pcschedd_slo_fast_burn", "pcschedd_slo_slow_burn",
		"pcschedd_slo_window_good", "pcschedd_slo_window_total",
		"pcschedd_flightrecorder_events_total",
	} {
		if !seen[fam] {
			t.Errorf("expected family %s missing from /metrics", fam)
		}
	}

	// Histogram invariants per series (name + labels minus le): cumulative
	// buckets monotone in le order, a +Inf bucket equal to _count, and a
	// _sum consistent with the observation count.
	type series struct {
		buckets []sample // in exposition order
		sum     *sample
		count   *sample
	}
	seriesKey := func(s sample) string {
		var parts []string
		for k, v := range s.labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		return family(s.name, types) + "|" + strings.Join(parts, ",")
	}
	hists := map[string]*series{}
	for _, s := range samples {
		fam := family(s.name, types)
		if types[fam] != "histogram" {
			continue
		}
		key := seriesKey(s)
		sr := hists[key]
		if sr == nil {
			sr = &series{}
			hists[key] = sr
		}
		s := s
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if _, ok := s.labels["le"]; !ok {
				t.Fatalf("bucket sample without le label: %q", s.line)
			}
			sr.buckets = append(sr.buckets, s)
		case strings.HasSuffix(s.name, "_sum"):
			sr.sum = &s
		case strings.HasSuffix(s.name, "_count"):
			sr.count = &s
		default:
			t.Errorf("histogram sample %q is not _bucket/_sum/_count", s.line)
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series found")
	}
	parseLE := func(le string) float64 {
		if le == "+Inf" {
			return math.Inf(1)
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q", le)
		}
		return v
	}
	for key, sr := range hists {
		if len(sr.buckets) == 0 || sr.sum == nil || sr.count == nil {
			t.Errorf("series %s incomplete: %d buckets, sum=%v count=%v",
				key, len(sr.buckets), sr.sum != nil, sr.count != nil)
			continue
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		for _, b := range sr.buckets {
			le := parseLE(b.labels["le"])
			if le <= prevLE {
				t.Errorf("series %s: le bounds not increasing at %q", key, b.line)
			}
			if b.value < prevCum {
				t.Errorf("series %s: cumulative count decreases at %q", key, b.line)
			}
			prevLE, prevCum = le, b.value
		}
		last := sr.buckets[len(sr.buckets)-1]
		if !math.IsInf(parseLE(last.labels["le"]), 1) {
			t.Errorf("series %s: last bucket %q is not +Inf", key, last.line)
		}
		if last.value != sr.count.value {
			t.Errorf("series %s: +Inf bucket %v != count %v", key, last.value, sr.count.value)
		}
		if sr.count.value > 0 && sr.sum.value < 0 {
			t.Errorf("series %s: negative sum %v", key, sr.sum.value)
		}
	}

	// The per-stage histograms must include the core pipeline stages the
	// traced solve went through.
	stageSeen := map[string]bool{}
	for _, s := range samples {
		if family(s.name, types) == "pcschedd_stage_latency_seconds" {
			stageSeen[s.labels["stage"]] = true
		}
	}
	for _, stage := range []string{"resilience.ladder", "core.solve", "lp.solve", "problem.build"} {
		if !stageSeen[stage] {
			t.Errorf("stage histogram for %q missing (have %v)", stage, stageSeen)
		}
	}

	// The SLO families must break out both objectives and both windows
	// unconditionally — a scrape before traffic still sees every series.
	sloObj := map[string]bool{}
	sloWin := map[string]bool{}
	for _, s := range samples {
		if s.name == "pcschedd_slo_fast_burn" {
			sloObj[s.labels["objective"]] = true
		}
		if s.name == "pcschedd_slo_window_total" {
			sloWin[s.labels["window"]] = true
		}
	}
	for _, obj := range []string{"availability", "latency"} {
		if !sloObj[obj] {
			t.Errorf("pcschedd_slo_fast_burn missing objective %q", obj)
		}
	}
	for _, win := range []string{"fast", "slow"} {
		if !sloWin[win] {
			t.Errorf("pcschedd_slo_window_total missing window %q", win)
		}
	}
}

// ---------------------------------------------------------------------------
// Histogram boundary behavior.
// ---------------------------------------------------------------------------

// TestHistogramBoundaryBuckets: Observe is inclusive at the upper bound —
// a duration exactly equal to latencyBounds[i] lands in bucket i, and one
// just above it lands in bucket i+1.
func TestHistogramBoundaryBuckets(t *testing.T) {
	for i, b := range latencyBounds {
		var h Histogram
		exact := time.Duration(math.Round(b * float64(time.Second)))
		if exact.Seconds() != b {
			t.Fatalf("bound %g is not representable as a duration", b)
		}
		h.Observe(exact)
		if got := h.counts[i].Load(); got != 1 {
			t.Errorf("bound %g: exact observation not in bucket %d", b, i)
		}
		h.Observe(exact + time.Nanosecond)
		if got := h.counts[i+1].Load(); got != 1 {
			t.Errorf("bound %g: bound+1ns observation not in bucket %d", b, i+1)
		}
		if h.Count() != 2 {
			t.Errorf("bound %g: count = %d, want 2", b, h.Count())
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("zero-value count = %d", h.Count())
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond) // inside the (2.5ms, 5ms] bucket
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 0.0025 || got > 0.005 {
			t.Errorf("Quantile(%v) = %v, want within [2.5ms, 5ms]", q, got)
		}
	}
}

// TestHistogramInfBucket: observations beyond the last finite bound land in
// the +Inf bucket, and quantiles falling there report the last finite bound
// (the histogram cannot resolve further).
func TestHistogramInfBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour)
	if got := h.counts[len(latencyBounds)].Load(); got != 1 {
		t.Fatalf("+Inf bucket count = %d", got)
	}
	top := latencyBounds[len(latencyBounds)-1]
	if got := h.Quantile(0.99); got != top {
		t.Errorf("Quantile in +Inf bucket = %v, want floor %v", got, top)
	}
	var buf strings.Builder
	writeHistogram(&buf, "x_seconds", &h)
	out := buf.String()
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf bucket line missing:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf(`x_seconds_bucket{le="%g"} 0`, top)) {
		t.Errorf("last finite bucket should be empty:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_sum 3600") {
		t.Errorf("sum missing or wrong:\n%s", out)
	}
}

// TestObserveStageLabels: stage observations render as one labeled family,
// sorted by stage name, and concurrent first observations of the same stage
// collapse into one histogram.
func TestObserveStageLabels(t *testing.T) {
	var m Metrics
	m.ObserveStage("lp.solve", time.Millisecond)
	m.ObserveStage("core.solve", 2*time.Millisecond)
	m.ObserveStage("lp.solve", 3*time.Millisecond)
	if got := m.StageNames(); len(got) != 2 || got[0] != "core.solve" || got[1] != "lp.solve" {
		t.Fatalf("StageNames = %v", got)
	}
	var buf strings.Builder
	m.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, `pcschedd_stage_latency_seconds_count{stage="lp.solve"} 2`) {
		t.Errorf("lp.solve stage count missing:\n%s", out)
	}
	if !strings.Contains(out, `pcschedd_stage_latency_seconds_bucket{stage="core.solve",le="+Inf"} 1`) {
		t.Errorf("core.solve stage buckets missing:\n%s", out)
	}
	if strings.Count(out, "# TYPE pcschedd_stage_latency_seconds histogram") != 1 {
		t.Errorf("stage family TYPE not declared exactly once:\n%s", out)
	}
}
