package service

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"powercap"
	"powercap/internal/faultinject"
)

// solveJSON posts a solve request and decodes the response.
func solveJSON(t *testing.T, url string, req SolveRequest) (int, SolveResponse) {
	t.Helper()
	code, body := postJSON(t, url, req)
	var resp SolveResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad solve response %s: %v", body, err)
		}
	}
	return code, resp
}

// TestDegradedServedTaggedAndUncached: with both LP backends stalled, a
// solve comes back 200 from the heuristic rung, tagged with its descent
// chain and cap-clean realization — and is NOT cached, so the same key
// re-solves at the top rung once the fault clears.
func TestDegradedServedTaggedAndUncached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 55}

	faultinject.Configure(31, map[faultinject.Class]float64{faultinject.LPStall: 1.0})
	defer faultinject.Disable()

	code, resp := solveJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("degraded solve: status %d", code)
	}
	if !resp.Degraded || resp.DegradedRung != "heuristic" {
		t.Fatalf("degraded=%v rung=%q, want true/heuristic", resp.Degraded, resp.DegradedRung)
	}
	if resp.DegradedReason == "" {
		t.Fatal("degraded response carries no reason chain")
	}
	if resp.Realized == nil || resp.Realized.CapViolationW != 0 {
		t.Fatalf("degraded response not certified cap-clean: %+v", resp.Realized)
	}

	// forbid policy refuses the same degraded result with 503.
	code, _ = solveJSON(t, ts.URL+"/v1/solve?degraded=forbid", req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("?degraded=forbid on a degraded solve: status %d, want 503", code)
	}

	faultinject.Disable()
	code, resp = solveJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("post-fault solve: status %d", code)
	}
	if resp.Degraded {
		t.Fatalf("degraded outcome was cached and replayed: %+v", resp)
	}
	if resp.Cached {
		t.Fatal("degraded outcome entered the LRU")
	}

	m := metricsMap(t, ts.URL)
	if m["pcschedd_degraded_total"] < 1 || m["pcschedd_fallback_heuristic_total"] < 1 {
		t.Fatalf("fallback counters not incremented: %v / %v",
			m["pcschedd_degraded_total"], m["pcschedd_fallback_heuristic_total"])
	}
}

func TestDegradedPolicyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, _ := postJSON(t, ts.URL+"/v1/solve?degraded=maybe", SolveRequest{Workload: fastWL, CapPerSocketW: 55})
	if code != http.StatusBadRequest {
		t.Fatalf("bogus degraded policy: status %d, want 400", code)
	}
}

// TestWorkerPanicIsolated: with every worker attempt panicking, the request
// fails 500 (after one clean retry), the panics are counted, and the daemon
// keeps serving once the fault clears.
func TestWorkerPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 60}

	faultinject.Configure(32, map[faultinject.Class]float64{faultinject.WorkerPanic: 1.0})
	defer faultinject.Disable()

	code, _ := postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking worker: status %d, want 500", code)
	}
	if p := s.metrics.Panics.Load(); p != 2 {
		t.Fatalf("panics_total = %d, want 2 (attempt + retry)", p)
	}

	faultinject.Disable()
	if code, _ := postJSON(t, ts.URL+"/v1/solve", req); code != http.StatusOK {
		t.Fatalf("server did not recover after worker panics: status %d", code)
	}
}

// TestWorkerPanicRetrySucceeds: a one-shot panic (rate chosen so the first
// draw fires and the retry's draws do not) is absorbed by the in-handler
// retry — the client still gets its schedule.
func TestWorkerPanicRetrySucceeds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 65}

	// Find a seed whose first WorkerPanic draw fires and next several do
	// not, making the retry deterministic.
	seed := uint64(0)
	for cand := uint64(1); cand < 10000; cand++ {
		faultinject.Configure(cand, map[faultinject.Class]float64{faultinject.WorkerPanic: 0.5})
		first := faultinject.Fire(faultinject.WorkerPanic)
		clean := true
		for i := 0; i < 8; i++ {
			if faultinject.Fire(faultinject.WorkerPanic) {
				clean = false
				break
			}
		}
		if first && clean {
			seed = cand
			break
		}
	}
	if seed == 0 {
		t.Fatal("no suitable seed found")
	}
	faultinject.Configure(seed, map[faultinject.Class]float64{faultinject.WorkerPanic: 0.5})
	defer faultinject.Disable()

	code, resp := solveJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("retry after one-shot panic: status %d", code)
	}
	if resp.Degraded || resp.MakespanS <= 0 {
		t.Fatalf("retried solve returned %+v", resp)
	}
	if p := s.metrics.Panics.Load(); p != 1 {
		t.Fatalf("panics_total = %d, want exactly 1", p)
	}
}

// TestCacheErrorBypass: injected cache faults force direct solves; the
// responses stay correct and bit-identical, and the bypasses are counted.
func TestCacheErrorBypass(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Workload: fastWL, CapPerSocketW: 70}

	faultinject.Disable()
	code, base := solveJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("baseline solve: status %d", code)
	}

	faultinject.Configure(33, map[faultinject.Class]float64{faultinject.CacheError: 1.0})
	defer faultinject.Disable()
	for i := 0; i < 2; i++ {
		code, resp := solveJSON(t, ts.URL+"/v1/solve", req)
		if code != http.StatusOK {
			t.Fatalf("bypass solve %d: status %d", i, code)
		}
		if resp.Cached {
			t.Fatalf("bypass solve %d claimed a cache hit", i)
		}
		if math.Float64bits(resp.MakespanS) != math.Float64bits(base.MakespanS) {
			t.Fatalf("bypass makespan %v != cached-path %v", resp.MakespanS, base.MakespanS)
		}
	}
	m := metricsMap(t, ts.URL)
	if m["pcschedd_cache_errors_total"] != 2 {
		t.Fatalf("cache_errors_total = %v, want 2", m["pcschedd_cache_errors_total"])
	}
}

// TestHealthzBreakers: /healthz reports per-rung breaker state, worst-state
// aggregated across pooled Systems.
func TestHealthzBreakers(t *testing.T) {
	faultinject.Disable()
	_, ts := newTestServer(t, Config{
		Workers:    2,
		Resilience: powercap.ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: time.Hour},
	})

	h := healthz(t, ts.URL)
	br, ok := h["breakers"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no breakers map: %v", h)
	}
	for _, rung := range []string{"sparse", "sparse-eta", "dense", "heuristic", "static"} {
		if br[rung] != "closed" {
			t.Fatalf("breaker %s = %v on a fresh server", rung, br[rung])
		}
	}

	// Stall the LP rungs once: with threshold 1 all three LP breakers trip
	// open.
	faultinject.Configure(34, map[faultinject.Class]float64{faultinject.LPStall: 1.0})
	defer faultinject.Disable()
	if code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Workload: fastWL, CapPerSocketW: 55}); code != http.StatusOK {
		t.Fatalf("degraded solve failed")
	}
	br = healthz(t, ts.URL)["breakers"].(map[string]any)
	if br["sparse"] != "open" || br["sparse-eta"] != "open" || br["dense"] != "open" {
		t.Fatalf("breakers after stalled solve: %v, want sparse/sparse-eta/dense open", br)
	}
}
