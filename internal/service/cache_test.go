package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	ctx := context.Background()
	put := func(key, val string) {
		t.Helper()
		if _, _, err := c.Do(ctx, key, func() (any, error) { return val, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "A")
	put("b", "B")
	put("c", "C") // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %q missing", k)
		}
	}
	// Touching b makes c the eviction victim.
	c.Get("b")
	put("d", "D")
	if _, ok := c.Get("c"); ok {
		t.Fatal("recency order ignored: c should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently used entry b was evicted")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newCache(8)
	var calls atomic.Int64
	gate := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	miss := atomic.Int64{}
	coalesced := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, how, err := c.Do(context.Background(), "k", func() (any, error) {
				calls.Add(1)
				<-gate // hold the flight open until all waiters joined
				return "V", nil
			})
			if err != nil || val.(string) != "V" {
				t.Errorf("Do = %v, %v", val, err)
			}
			switch how {
			case hitMiss:
				miss.Add(1)
			case hitCoalesced:
				coalesced.Add(1)
			}
		}()
	}
	// Wait until one leader is registered, then release it. Late arrivals
	// that land after completion become LRU hits — still not misses.
	for c.Len() == 0 && calls.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want exactly 1", got)
	}
	if miss.Load() != 1 {
		t.Fatalf("got %d misses, want 1 (the leader)", miss.Load())
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newCache(4)
	boom := errors.New("boom")
	calls := 0
	fn := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	val, how, err := c.Do(context.Background(), "k", fn)
	if err != nil || val.(string) != "ok" || how != hitMiss {
		t.Fatalf("retry = %v, %v, %v; want ok, miss, nil", val, how, err)
	}
}

func TestCacheWaiterCanceled(t *testing.T) {
	c := newCache(4)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), "k", func() (any, error) {
			<-gate
			return "V", nil
		})
	}()
	// Wait for the leader's flight to register.
	waitUntil(t, time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (any, error) {
		t.Error("waiter must not become a second leader")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got err = %v, want context.Canceled", err)
	}

	// The leader is unaffected and its result lands in the LRU.
	close(gate)
	<-leaderDone
	if v, ok := c.Get("k"); !ok || v.(string) != "V" {
		t.Fatalf("leader result missing after waiter cancellation: %v, %v", v, ok)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestCachePanicReleasesWaiters: a leader whose fn panics must fail its
// coalesced waiters (errSolvePanic) and remove the inflight entry, so the
// key is solvable again — and the panic must still reach the leader's
// caller.
func TestCachePanicReleasesWaiters(t *testing.T) {
	c := newCache(4)
	gate := make(chan struct{})

	waiterErr := make(chan error, 1)
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.Do(context.Background(), "k", func() (any, error) {
			<-gate
			panic("leader bug")
		})
	}()
	waitUntil(t, time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (any, error) {
			t.Error("waiter must not become a second leader")
			return nil, nil
		})
		waiterErr <- err
	}()
	// Give the waiter time to join the flight, then spring the panic.
	time.Sleep(2 * time.Millisecond)
	close(gate)

	if err := <-waiterErr; !errors.Is(err, errSolvePanic) {
		t.Fatalf("waiter err = %v, want errSolvePanic", err)
	}
	if p := <-leaderPanicked; p == nil {
		t.Fatal("panic was swallowed instead of resuming on the leader")
	}
	c.mu.Lock()
	stuck := len(c.inflight)
	c.mu.Unlock()
	if stuck != 0 {
		t.Fatalf("%d inflight entries leaked after leader panic", stuck)
	}
	// The key works again.
	val, how, err := c.Do(context.Background(), "k", func() (any, error) { return "ok", nil })
	if err != nil || val.(string) != "ok" || how != hitMiss {
		t.Fatalf("post-panic Do = %v, %v, %v", val, how, err)
	}
}

// TestCacheDoMaybeUncacheable: a non-cacheable value is returned to its
// caller (and any coalesced waiter) but never enters the LRU.
func TestCacheDoMaybeUncacheable(t *testing.T) {
	c := newCache(4)
	calls := 0
	fn := func() (any, bool, error) {
		calls++
		return "degraded", false, nil
	}
	for i := 0; i < 2; i++ {
		val, how, err := c.DoMaybe(context.Background(), "k", fn)
		if err != nil || val.(string) != "degraded" || how != hitMiss {
			t.Fatalf("DoMaybe %d = %v, %v, %v", i, val, how, err)
		}
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (no caching)", calls)
	}
	if c.Len() != 0 {
		t.Fatal("uncacheable value entered the LRU")
	}
}
