// Package service implements pcschedd's HTTP/JSON scheduling service: a
// concurrent front end over the powercap.System facade that accepts
// solve/sweep/compare requests (inline trace JSON or named workload
// proxies), executes them on a bounded worker pool, deduplicates identical
// work through a content-addressed schedule cache, and exposes its behavior
// through /metrics and /healthz.
//
// Three properties define the design:
//
//   - Content addressing. A request's cache key is System.ScheduleKey — a
//     SHA-256 digest of the canonical DAG serialization, machine model
//     fingerprint, efficiency scales, and cap — so identical LPs are solved
//     exactly once regardless of how many clients ask, concurrently or not
//     (singleflight coalescing plus an LRU of finished schedules).
//
//   - Admission control and lifecycle. A worker-slot semaphore bounds
//     concurrent solves, a queue bound rejects excess load with 429 rather
//     than letting latency collapse, per-request deadlines are threaded
//     into the LP pivot loops (an abandoned request stops solving within
//     cancelCheckEvery pivots), and Drain performs a graceful shutdown:
//     in-flight solves complete and respond, new work is refused.
//
//   - Observability. Atomic counters and latency histograms (queue wait,
//     solve, full request, and per-pipeline-stage) are rendered at /metrics
//     with full # HELP/# TYPE metadata. Every API request runs under a
//     bounded obs trace whose spans are harvested into the stage histograms
//     after the handler returns; ?trace=1 additionally inlines the Chrome
//     trace-event document in the JSON response. Each request gets a
//     generated request ID — echoed in the X-Request-Id header, the
//     response body, and the one structured (log/slog) access-log line it
//     emits — and /debug/pprof exposes the runtime profiles.
package service

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"powercap"
	"powercap/internal/adapt"
	"powercap/internal/faultinject"
	"powercap/internal/obs"
	"powercap/internal/slo"
	"powercap/internal/trace"
)

// Config sizes a Server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// Model is the socket model solves run against (nil = DefaultModel).
	Model *powercap.Model
	// Workers bounds concurrent backend solves (default GOMAXPROCS).
	Workers int
	// QueueDepth is how many requests beyond the busy workers may wait
	// for a slot before new arrivals get 429 (default 64).
	QueueDepth int
	// CacheSize is the schedule LRU capacity in entries (default 256).
	CacheSize int
	// DefaultTimeout caps a request that names no deadline (default 60s);
	// MaxTimeout clamps client-supplied deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Resilience tunes the fallback ladder every pooled System solves
	// through (zero value = defaults: see resilience.Config).
	Resilience powercap.ResilienceConfig
	// TraceSpanLimit bounds the spans a single request's trace retains
	// before dropping (default obs.DefaultMaxSpans); droppedSpans in the
	// inline document and pcschedd_trace_spans_dropped_total report the
	// overflow.
	TraceSpanLimit int
	// Adapt configures the overload control plane (DESIGN.md §15). With
	// Adapt.Enabled false (the default) the service behaves bit-identically
	// to a build without the control plane. The Workers/QueueDepth/
	// CacheSize baselines are taken from this Config, not from Adapt.
	Adapt adapt.Config
	// SLO configures the burn-rate engine (DESIGN.md §16); the zero value
	// selects the defaults (99% availability, 95% of requests under 2s).
	// The engine is always on — it feeds /healthz, /metrics, the flight
	// recorder, and (when the control plane is enabled) the controller's
	// pressure signal.
	SLO slo.Config
	// FlightSlots sizes the always-on flight-recorder ring (default
	// obs.DefaultFlightSlots); FlightSnapshotDir is where panic and
	// breaker-open dumps land (default os.TempDir()).
	FlightSlots       int
	FlightSnapshotDir string
	// Log receives one structured line per request (nil = discard).
	Log *slog.Logger
}

// Server is the scheduling service; it implements http.Handler and is safe
// for concurrent use.
type Server struct {
	model          *powercap.Model
	workers        int
	queueDepth     int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	resilience     powercap.ResilienceConfig
	traceSpanLimit int
	logger         *slog.Logger

	metrics Metrics
	cache   *cache
	sem     chan struct{} // worker slots
	queue   chan struct{} // admission tokens: workers + queue depth
	mux     *http.ServeMux

	// flight is the always-on wide-event ring (DESIGN.md §16): one record
	// per API request, dumpable at /debug/flightrecorder and snapshotted to
	// flightDir on panics and breaker-open transitions. slo is the
	// burn-rate engine every request's outcome feeds.
	flight    *obs.FlightRecorder
	slo       *slo.Engine
	flightDir string

	// draining flips before drainMu is write-locked, so a request either
	// sees the flag or holds a read lock Drain waits on — never neither.
	draining atomic.Bool
	drainMu  sync.RWMutex

	// sysPool shares one powercap.System per efficiency-scale vector, so
	// requests against the same workload reuse the System's solver — and
	// with it the digest-keyed problem-IR cache and frontier cache —
	// instead of rebuilding the problem skeleton per request.
	sysMu   sync.Mutex
	sysPool map[string]*powercap.System

	// adaptState is the control plane's published decision; nil means the
	// controller is off and every knob sits at its configured static
	// value (the one-atomic-load disarmed path). adaptRT owns the
	// controller and its epoch loop. parkedQueue/parkedSem count the
	// admission/worker tokens the controller has parked to shrink
	// effective capacity — zero when disarmed, so acquire() semantics are
	// untouched.
	adaptState  atomic.Pointer[adapt.State]
	adaptRT     *adaptRuntime
	parkedQueue atomic.Int64
	parkedSem   atomic.Int64

	// drainLastNS/drainGapNS estimate the queue drain rate (EWMA of the
	// interval between solve completions) for Retry-After hints on 429s.
	drainLastNS atomic.Int64
	drainGapNS  atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.Model == nil {
		cfg.Model = powercap.DefaultModel()
	}
	if cfg.TraceSpanLimit <= 0 {
		cfg.TraceSpanLimit = obs.DefaultMaxSpans
	}
	s := &Server{
		model:          cfg.Model,
		workers:        cfg.Workers,
		queueDepth:     cfg.QueueDepth,
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     cfg.MaxTimeout,
		resilience:     cfg.Resilience,
		traceSpanLimit: cfg.TraceSpanLimit,
		logger:         cfg.Log,
		cache:          newCache(cfg.CacheSize),
		sem:            make(chan struct{}, cfg.Workers),
		queue:          make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		flight:         obs.NewFlightRecorder(cfg.FlightSlots),
		slo:            slo.New(cfg.SLO),
		flightDir:      cfg.FlightSnapshotDir,
	}
	if cfg.Adapt.Enabled {
		// The controller adapts around the service's configured
		// baselines, whatever the Adapt sub-config says.
		acfg := cfg.Adapt
		acfg.Workers = cfg.Workers
		acfg.QueueDepth = cfg.QueueDepth
		acfg.CacheSize = cfg.CacheSize
		s.adaptRT = newAdaptRuntime(acfg)
		s.adaptState.Store(s.adaptRT.ctrl.State())
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.api(s.handleSolve))
	s.mux.HandleFunc("POST /v1/sweep", s.api(s.handleSweep))
	s.mux.HandleFunc("POST /v1/compare", s.api(s.handleCompare))
	s.mux.HandleFunc("POST /v1/cluster", s.api(s.handleCluster))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	// Runtime profiles on the service mux (the daemon does not use
	// http.DefaultServeMux, so the net/http/pprof side-effect registration
	// alone would be unreachable). Index serves the named profiles (heap,
	// goroutine, block, …) under the subtree.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the server's counters (for tests and the bench harness).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Flight exposes the wide-event flight recorder (for the daemon's SIGQUIT
// dump and tests).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// SLO exposes the burn-rate engine (for tests and the bench harness).
func (s *Server) SLO() *slo.Engine { return s.slo }

// Drain gracefully shuts the API down: new requests are rejected with 503
// while every request already past admission runs to completion and gets
// its response. Returns nil once the server is idle, or ctx.Err() if the
// deadline expires first (in-flight solves keep their own deadlines either
// way). /healthz and /metrics stay up for observability.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if rt := s.adaptRT; rt != nil {
		// Stop the epoch loop, then pin the controller at full fidelity:
		// drain only ever snaps *up*, and no brownout transition may
		// happen while draining. The final adaptive epoch is checkpointed
		// to the log so an operator can see what state the controller
		// died in.
		rt.stopLoop()
		ck := rt.ctrl.BeginDrain()
		s.adaptState.Store(rt.ctrl.State())
		s.unparkAll()
		if s.logger != nil {
			s.logger.Info("adapt drain checkpoint",
				"epoch", ck.Epoch,
				"rung", ck.RungName,
				"transitions", ck.Transitions,
				"est_solve_ms", ck.EstSolveS*1e3,
				"pressure", ck.Pressure)
		}
	}
	idle := make(chan struct{})
	go func() {
		// Write-locking waits for every in-flight reader (= request).
		s.drainMu.Lock()
		s.drainMu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// systemFor returns the pooled System for an efficiency-scale vector,
// creating it on first use. Sharing the System shares its solver's
// problem-IR and frontier caches across requests; the pool is bounded and
// reset on overflow (each System's own caches are per graph digest, so a
// reset only costs warm state, never correctness).
func (s *Server) systemFor(eff []float64) *powercap.System {
	key := make([]byte, 8*len(eff))
	for i, e := range eff {
		binary.LittleEndian.PutUint64(key[8*i:], math.Float64bits(e))
	}
	s.sysMu.Lock()
	defer s.sysMu.Unlock()
	if s.sysPool == nil || len(s.sysPool) > 128 {
		s.sysPool = make(map[string]*powercap.System)
	}
	if sys, ok := s.sysPool[string(key)]; ok {
		return sys
	}
	sys := powercap.NewSystem(s.model)
	sys.EffScale = eff
	sys.Resilience = s.resilience
	// A rung's breaker tripping open is exactly the moment an operator
	// wants the recent request history preserved: snapshot the flight
	// recorder off the solve goroutine (the notify contract forbids
	// blocking; SnapshotToDisk rate-limits itself against flapping).
	sys.Ladder().SetBreakerNotify(func(rung string) {
		go s.flight.SnapshotToDisk(s.flightDir, "breaker-open-"+rung)
	})
	s.sysPool[string(key)] = sys
	return sys
}

// statusRecorder captures the response code for logging and latency
// classification, and whether anything was written yet (so the panic
// recovery layer knows if a 500 can still be sent).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// requestIDKey carries the generated request ID in the request context.
type requestIDKey struct{}

// reqSeq backs newRequestID if the system entropy source ever fails.
var reqSeq atomic.Uint64

// newRequestID returns a fresh 16-hex-digit request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// requestIDToken reports whether an inbound X-Request-Id is safe to adopt:
// a short token of URL- and log-safe characters. Anything else is ignored
// and a fresh ID generated — client identifiers are convenience, never a
// header-injection vector.
func requestIDToken(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// wideEventKey carries the request's in-progress wide event so handlers can
// fill solve-level fields; api() completes and records it.
type wideEventKey struct{}

// wideEventFrom returns the request's wide event. Outside an api-wrapped
// handler it returns a discarded scratch event, so fills are always safe.
func wideEventFrom(ctx context.Context) *obs.WideEvent {
	if ev, ok := ctx.Value(wideEventKey{}).(*obs.WideEvent); ok {
		return ev
	}
	return &obs.WideEvent{}
}

// RequestIDFrom returns the request ID generated for this request, or ""
// outside an api-wrapped handler.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// api wraps an API handler with lifecycle tracking, drain rejection, panic
// containment, request identity, per-request tracing, request metrics, and
// the structured access log.
func (s *Server) api(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Requests.Add(1)
		if s.draining.Load() {
			s.metrics.Rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "service is draining")
			return
		}
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		if s.draining.Load() {
			// Drain began between the flag check and the read lock.
			s.metrics.Rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable, "service is draining")
			return
		}
		// Retry budget: requests that declare themselves retries spend a
		// token from a bucket refilled at the observed completion rate, so
		// a retry storm cannot amplify an overload. Armed only with the
		// control plane on (one atomic load when off); draining exempts —
		// every remaining request is a goodbye.
		if st := s.adaptState.Load(); st != nil && !st.Draining {
			if a := r.Header.Get("X-Retry-Attempt"); a != "" && a != "0" {
				if !s.adaptRT.bucket.TakeAt(time.Now()) {
					s.metrics.ShedRetryBudget.Add(1)
					s.writeTooBusy(w, "retry budget exhausted; honor Retry-After")
					return
				}
			}
		}
		s.metrics.Inflight.Add(1)
		defer s.metrics.Inflight.Add(-1)

		// Request identity: attached to the context, echoed in the response
		// header (so even error responses carry it) and in the JSON body,
		// and stamped on the access line. A client-supplied X-Request-Id is
		// adopted when it is a safe token, so cross-service forensics (a
		// /v1/cluster allocation and the follow-up per-job solves) correlate
		// under the caller's identifier; otherwise one is generated.
		reqID := r.Header.Get("X-Request-Id")
		if !requestIDToken(reqID) {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)

		// The wide event travels with the request: handlers fill the solve
		// fields, api() stamps outcome/latency and records it. Admission-time
		// control state is captured here so a browned request's record shows
		// the pressure and burn that caused the rerouting.
		ev := &obs.WideEvent{RequestID: reqID, Path: r.URL.Path}
		if st := s.adaptState.Load(); st != nil {
			ev.AdaptEpoch = st.Epoch
			ev.AdaptRung = st.Rung.String()
			ev.Pressure = st.Pressure
		}
		for _, ob := range s.slo.Status(start) {
			if ob.FastBurn > ev.SLOFastBurn {
				ev.SLOFastBurn = ob.FastBurn
			}
			if ob.SlowBurn > ev.SLOSlowBurn {
				ev.SLOSlowBurn = ob.SlowBurn
			}
		}
		ctx = context.WithValue(ctx, wideEventKey{}, ev)

		// Every request solves under a bounded trace; the spans feed the
		// per-stage latency histograms once the handler returns, and
		// ?trace=1 responses inline the document. Coalesced waiters share
		// the leader's solve, so only the leader's trace sees solve spans.
		tr := obs.NewTrace(s.traceSpanLimit)
		ctx = obs.WithTrace(ctx, tr)
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
		func() {
			// Contain handler panics: the request gets a 500 (when no bytes
			// were written yet), the counter records it, and the daemon —
			// including the drain bookkeeping deferred above — lives on.
			defer func() {
				if p := recover(); p != nil {
					s.metrics.Panics.Add(1)
					rec.status = http.StatusInternalServerError
					ev.Err = fmt.Sprintf("panic: %v", p)
					if s.logger != nil {
						s.logger.Error("panic recovered",
							"request_id", reqID,
							"panic", fmt.Sprint(p),
							"stack", string(debug.Stack()))
					}
					if !rec.wrote {
						writeError(rec, http.StatusInternalServerError,
							fmt.Sprintf("internal error: %v", p))
					}
					// Preserve the request history that led here (rate-limited,
					// best-effort; the panic is already contained).
					if path, serr := s.flight.SnapshotToDisk(s.flightDir, "panic"); serr == nil && path != "" && s.logger != nil {
						s.logger.Info("flight recorder snapshot", "reason", "panic", "path", path)
					}
				}
			}()
			h(rec, r)
		}()

		// Harvest the request's spans into the per-stage histograms. The
		// leader's fn runs on this goroutine (cache.DoMaybe), so no solve
		// can still be writing spans here; Release after harvesting restores
		// the obs disabled fast path once no other request is in flight.
		for _, sr := range tr.Snapshot() {
			s.metrics.ObserveStage(sr.Name, time.Duration(sr.DurNS))
		}
		if d := tr.Dropped(); d > 0 {
			s.metrics.TraceSpansDropped.Add(uint64(d))
		}
		tr.Release()

		dur := time.Since(start)
		s.metrics.RequestLatency.Observe(dur)

		// Close out the forensic record: outcome, latency, and the SLO
		// sample. 429s are deliberate backpressure — the engine excludes
		// them — so shedding under overload cannot amplify its own burn.
		s.slo.Observe(time.Now(), rec.status, dur)
		ev.TimeUnixNS = start.UnixNano()
		ev.Status = rec.status
		ev.DurMS = float64(dur) / float64(time.Millisecond)
		s.flight.Record(*ev)
		if s.logger != nil {
			s.logger.Info("request",
				"request_id", reqID,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"dur_ms", float64(dur)/float64(time.Millisecond),
				"remote", r.RemoteAddr)
		}
	}
}

// errQueueFull is the admission-control rejection: both the worker pool and
// its bounded queue are occupied.
var errQueueFull = errors.New("service: all workers busy and admission queue full")

// acquire claims a worker slot, waiting in the bounded queue if all workers
// are busy. A free slot is taken even when ctx is already done: the
// cancellation is then observed authoritatively inside the LP pivot loop,
// which is both where the work is and where it is counted.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, errQueueFull
	}
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			<-s.queue
			return nil, ctx.Err()
		}
	}
	s.metrics.QueueWait.Observe(time.Since(start))
	return func() { <-s.sem; <-s.queue; s.noteCompletion() }, nil
}

// writeTooBusy answers 429 with the Retry-After hint every rejection
// carries: how long the current queue should take to drain.
func (s *Server) writeTooBusy(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, msg)
}

// requestCtx derives the per-request deadline: the client's timeout_ms
// clamped to MaxTimeout, or DefaultTimeout when absent. It inherits
// r.Context() so a disconnected client also cancels the solve.
func (s *Server) requestCtx(r *http.Request, timeoutMS float64) (context.Context, context.CancelFunc) {
	d := s.defaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS * float64(time.Millisecond))
		if d > s.maxTimeout {
			d = s.maxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// WorkloadSpec names one of the built-in benchmark proxies in a request.
type WorkloadSpec struct {
	Name  string  `json:"name"`
	Ranks int     `json:"ranks,omitempty"`
	Iters int     `json:"iters,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// SolveRequest asks for the LP bound of one application under one cap.
// Exactly one of Trace (inline trace JSON, the schema pctrace gen emits)
// or Workload must be set, and exactly one of JobCapW or CapPerSocketW.
type SolveRequest struct {
	Trace         *trace.File   `json:"trace,omitempty"`
	Workload      *WorkloadSpec `json:"workload,omitempty"`
	CapPerSocketW float64       `json:"cap_per_socket_w,omitempty"`
	JobCapW       float64       `json:"job_cap_w,omitempty"`
	// Whole solves one LP over the entire graph instead of decomposing at
	// iteration boundaries.
	Whole bool `json:"whole,omitempty"`
	// Realize additionally converts the LP solution into a realizable
	// schedule ("nearest", "down", "replay", or "best") validated on the
	// simulator; the ?realize= query parameter sets the same field. The
	// strategy is part of the cache key.
	Realize string `json:"realize,omitempty"`
	// Windows > 1 (or CoarsenEps > 0) routes the solve through the windowed
	// large-trace decomposition (overlapping event windows, speculative
	// parallel solves, warm-started commits) instead of the monolithic LP;
	// the ?windows= and ?coarsen_eps= query parameters set the same fields.
	// Both are part of the cache key — a windowed schedule is a different
	// (upper-bounding) artifact than the monolithic one.
	Windows    int     `json:"windows,omitempty"`
	CoarsenEps float64 `json:"coarsen_eps,omitempty"`
	TimeoutMS  float64 `json:"timeout_ms,omitempty"`
}

// StatsJSON mirrors SolverStats for responses: solver effort plus the
// numerical-health counters (eta growth, pivot rejections, rescue counts,
// presolve eliminations, scaling proxy) DESIGN.md §16 describes.
type StatsJSON struct {
	Solves           int `json:"solves"`
	SimplexPivots    int `json:"simplex_pivots"`
	DualPivots       int `json:"dual_pivots"`
	WarmStarts       int `json:"warm_starts"`
	Refactorizations int `json:"refactorizations"`

	MaxEtaLen        int     `json:"max_eta_len,omitempty"`
	PivotRejections  int     `json:"pivot_rejections,omitempty"`
	FactorTauRetries int     `json:"factor_tau_retries,omitempty"`
	NaNRecoveries    int     `json:"nan_recoveries,omitempty"`
	BlandActivations int     `json:"bland_activations,omitempty"`
	PresolveRows     int     `json:"presolve_rows,omitempty"`
	PresolveCols     int     `json:"presolve_cols,omitempty"`
	RowNormRatio     float64 `json:"row_norm_ratio,omitempty"`
}

// NewStatsJSON converts solver stats to the response schema (shared with
// pcsched -json so CLI and service report identical effort numbers).
func NewStatsJSON(st powercap.SolverStats) *StatsJSON {
	return &StatsJSON{
		Solves:           st.Solves,
		SimplexPivots:    st.SimplexIter,
		DualPivots:       st.DualIter,
		WarmStarts:       st.WarmStarts,
		Refactorizations: st.Refactorizations,
		MaxEtaLen:        st.MaxEtaLen,
		PivotRejections:  st.PivotRejections,
		FactorTauRetries: st.FactorTauRetries,
		NaNRecoveries:    st.NaNRecoveries,
		BlandActivations: st.BlandActivations,
		PresolveRows:     st.PresolveRows,
		PresolveCols:     st.PresolveCols,
		RowNormRatio:     st.RowNormRatio,
	}
}

// kernelHealthFrom maps solver stats onto the wide event's kernel slice.
func kernelHealthFrom(st powercap.SolverStats) obs.KernelHealth {
	return obs.KernelHealth{
		Solves:           st.Solves,
		SimplexPivots:    st.SimplexIter,
		DualPivots:       st.DualIter,
		WarmStarts:       st.WarmStarts,
		Refactorizations: st.Refactorizations,
		MaxEtaLen:        st.MaxEtaLen,
		PivotRejections:  st.PivotRejections,
		FactorTauRetries: st.FactorTauRetries,
		NaNRecoveries:    st.NaNRecoveries,
		BlandActivations: st.BlandActivations,
		PresolveRows:     st.PresolveRows,
		PresolveCols:     st.PresolveCols,
	}
}

// countLPStats folds one finished solve's numerical-health counters into the
// pcschedd_lp_* metric families.
func (s *Server) countLPStats(st powercap.SolverStats) {
	m := &s.metrics
	m.LPRefactorizations.Add(uint64(st.Refactorizations))
	m.LPPivotRejections.Add(uint64(st.PivotRejections))
	m.LPTauRetries.Add(uint64(st.FactorTauRetries))
	m.LPNaNRecoveries.Add(uint64(st.NaNRecoveries))
	m.LPBlandActivations.Add(uint64(st.BlandActivations))
	m.LPPresolveRows.Add(uint64(st.PresolveRows))
	m.LPPresolveCols.Add(uint64(st.PresolveCols))
	m.LPMaxEtaLen.StoreMax(float64(st.MaxEtaLen))
	m.LPRowNormRatio.StoreMax(st.RowNormRatio)
}

// RealizedJSON reports a realized schedule's validation in responses.
type RealizedJSON struct {
	Strategy      string  `json:"strategy"`
	MakespanS     float64 `json:"makespan_s"`
	LPMakespanS   float64 `json:"lp_makespan_s"`
	BoundGapPct   float64 `json:"bound_gap_pct"`
	CapViolationW float64 `json:"cap_violation_w"`
	Repairs       int     `json:"repairs"`
	Switches      int     `json:"switches"`
}

// NewRealizedJSON converts a realized schedule to the response schema.
func NewRealizedJSON(r *powercap.RealizedSchedule) *RealizedJSON {
	return &RealizedJSON{
		Strategy:      string(r.Strategy),
		MakespanS:     r.MakespanS,
		LPMakespanS:   r.LPMakespanS,
		BoundGapPct:   r.BoundGapPct,
		CapViolationW: r.CapViolationW,
		Repairs:       r.Repairs,
		Switches:      r.Switches,
	}
}

// WindowedJSON reports the windowed decomposition's diagnostics in
// responses: the realized window count, coarsening effect, solver-effort
// split (speculative vs commit solves, warm-start hit rate), and the two
// stitching validations (seam cap excess, simulated makespan).
type WindowedJSON struct {
	Windows           int     `json:"windows"`
	CoarsenEps        float64 `json:"coarsen_eps,omitempty"`
	CoarseVertices    int     `json:"coarse_vertices"`
	MergedTasks       int     `json:"merged_tasks"`
	SpeculativeSolves int     `json:"speculative_solves"`
	CommitSolves      int     `json:"commit_solves"`
	WarmStartHits     int     `json:"warm_start_hits"`
	WarmStartRate     float64 `json:"warm_start_rate"`
	Escalations       int     `json:"escalations,omitempty"`
	NumericalRescues  int     `json:"numerical_rescues,omitempty"`
	SeamViolationW    float64 `json:"seam_violation_w"`
	SimMakespanS      float64 `json:"sim_makespan_s"`
}

// NewWindowedJSON converts a windowed schedule's diagnostics to the
// response schema (shared with pcsched -windows -json).
func NewWindowedJSON(ws *powercap.WindowedSchedule) *WindowedJSON {
	return &WindowedJSON{
		Windows:           ws.Windows,
		CoarsenEps:        ws.CoarsenEps,
		CoarseVertices:    ws.CoarseVertices,
		MergedTasks:       ws.MergedTasks,
		SpeculativeSolves: ws.SpeculativeSolves,
		CommitSolves:      ws.CommitSolves,
		WarmStartHits:     ws.WarmStartHits,
		WarmStartRate:     ws.WarmStartRate(),
		Escalations:       ws.Escalations,
		NumericalRescues:  ws.NumericalFallbacks(),
		SeamViolationW:    ws.SeamViolationW,
		SimMakespanS:      ws.SimMakespanS,
	}
}

// SolveResponse reports one solved (or provably infeasible) schedule.
type SolveResponse struct {
	// RequestID is the server-generated identifier for this request, also
	// sent as the X-Request-Id response header and logged on the access
	// line — quote it when reporting a problem.
	RequestID   string  `json:"request_id,omitempty"`
	Key         string  `json:"key"`
	GraphDigest string  `json:"graph_digest"`
	Workload    string  `json:"workload,omitempty"`
	JobCapW     float64 `json:"job_cap_w"`

	Infeasible         bool       `json:"infeasible,omitempty"`
	MakespanS          float64    `json:"makespan_s,omitempty"`
	MarginalSecPerW    float64    `json:"marginal_s_per_w,omitempty"`
	IterationMakespans []float64  `json:"iteration_makespans,omitempty"`
	Stats              *StatsJSON `json:"stats,omitempty"`
	// Realized reports the validated realizable schedule when the request
	// named a realization strategy (or, for degraded results, the ladder's
	// own simulator certification).
	Realized *RealizedJSON `json:"realized,omitempty"`
	// Windowed reports the decomposition diagnostics when the request asked
	// for a windowed solve (windows > 1 or coarsen_eps > 0).
	Windowed *WindowedJSON `json:"windowed,omitempty"`

	// Degraded marks a schedule produced below the fallback ladder's top
	// rung; DegradedRung names the rung that served it and DegradedReason
	// carries the machine-readable descent chain. SolveRetries counts the
	// ladder's backoff retries on numerical failures.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedRung   string `json:"degraded_rung,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	SolveRetries   int    `json:"solve_retries,omitempty"`
	// Brownout names the adaptive control plane's rung when this solve was
	// rerouted onto a cheaper mode under overload ("" otherwise). Browned
	// results are served but never cached.
	Brownout string `json:"brownout,omitempty"`

	// Cached is true when the response came from the LRU or an in-flight
	// identical solve rather than a fresh backend run. ClusterOrigin, set
	// on hits against a schedule parked by /v1/cluster, is that
	// allocation's request ID — the forensic link from a job's follow-up
	// solve back to the market run that granted its cap.
	Cached        bool    `json:"cached"`
	ClusterOrigin string  `json:"cluster_origin,omitempty"`
	ElapsedMS     float64 `json:"elapsed_ms"`

	// Trace is the request's Chrome trace-event document, inlined when the
	// request asked for it with ?trace=1; load it in chrome://tracing or
	// Perfetto. Its droppedSpans field is non-zero when the span bound
	// truncated it. Cache hits carry few or no spans (there was no solve).
	Trace *obs.Document `json:"trace,omitempty"`
}

// solveOutcome is the cached value for a solve key: a schedule (with its
// realization when requested) or a proof of infeasibility — all pure
// functions of the key. Degraded outcomes are served but never cached: the
// key's true value is the top-rung schedule, which a later request may get.
type solveOutcome struct {
	sched      *powercap.Schedule
	realized   *powercap.RealizedSchedule
	windowed   *powercap.WindowedSchedule
	infeasible bool
	degraded   bool
	rung       string
	reason     string
	retries    int
	// brownout names the control-plane rung that rerouted this solve onto a
	// cheaper mode ("" for a full-fidelity solve). Browned outcomes are never
	// cacheable regardless of degraded.
	brownout string
	// rungAttempts is the per-rung solve-attempt trail (ladder descent
	// order) the flight recorder stores with the request.
	rungAttempts [obs.NumLadderRungs]int32
	// clusterOrigin is the request ID of the /v1/cluster allocation that
	// parked this entry ("" for entries from /v1/solve itself).
	clusterOrigin string
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	g, eff, name, err := resolveGraph(r.Context(), req.Trace, req.Workload)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	jobCap, err := resolveCap(req.JobCapW, req.CapPerSocketW, g.NumRanks)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if q := r.URL.Query().Get("realize"); q != "" {
		req.Realize = q
	}
	if req.Realize != "" && !slices.Contains(powercap.RealizeStrategies(), req.Realize) {
		s.badRequest(w, fmt.Errorf("unknown realize strategy %q (want one of %v)",
			req.Realize, powercap.RealizeStrategies()))
		return
	}
	if q := r.URL.Query().Get("windows"); q != "" {
		n, perr := strconv.Atoi(q)
		if perr != nil || n < 0 {
			s.badRequest(w, fmt.Errorf("bad windows %q (want a non-negative integer)", q))
			return
		}
		req.Windows = n
	}
	if q := r.URL.Query().Get("coarsen_eps"); q != "" {
		v, perr := strconv.ParseFloat(q, 64)
		if perr != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			s.badRequest(w, fmt.Errorf("bad coarsen_eps %q (want a non-negative number of seconds)", q))
			return
		}
		req.CoarsenEps = v
	}
	degradedPolicy := r.URL.Query().Get("degraded")
	switch degradedPolicy {
	case "", "allow", "forbid":
	default:
		s.badRequest(w, fmt.Errorf("unknown degraded policy %q (want allow or forbid)", degradedPolicy))
		return
	}
	sys := s.systemFor(eff)
	key := sys.ScheduleKey(g, jobCap, req.Whole, req.Realize, req.Windows, req.CoarsenEps)

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	ev := wideEventFrom(r.Context())
	ev.Workload = name
	ev.CapW = jobCap
	ev.Whole = req.Whole
	if dl, ok := ctx.Deadline(); ok {
		ev.DeadlineMS = float64(time.Until(dl)) / float64(time.Millisecond)
	}

	// Brownout (adaptive control plane, DESIGN.md §15): under sustained
	// pressure the request may be rerouted onto a cheaper solve mode. A
	// `?degraded=forbid` request is never browned (guardrail precedence),
	// a full-fidelity result already in the LRU is always preferred over
	// a browned solve, and a browned flight runs under a rung-scoped key
	// with cacheable=false — brownout results never enter the cache and
	// never coalesce with full-fidelity flights.
	adaptSt := s.adaptState.Load()
	bo := brownoutFor(adaptSt, degradedPolicy, &req)
	breq := req
	flightKey := key
	if bo != nil {
		if _, ok := s.cache.Get(key); ok {
			bo = nil // serve the cached full-fidelity artifact instead
		} else {
			bo.apply(&breq)
			flightKey = key + "|brownout=" + bo.rung.String()
		}
	}

	fn := func() (any, bool, error) {
		if adaptSt != nil && adaptSt.Shedding {
			// Deadline-aware shedding: work that cannot finish inside its
			// remaining budget is turned away before it occupies a slot.
			// Only the miss path sheds — a cache hit never gets here.
			if err := s.shedCheck(ctx, adaptSt); err != nil {
				return nil, false, err
			}
		}
		out, err := s.solveWorker(ctx, sys, g, jobCap, &breq, bo != nil && bo.heuristic)
		if err != nil && errors.Is(err, errSolvePanic) {
			// The panic is already contained and counted; the request gets
			// one clean retry before failing.
			out, err = s.solveWorker(ctx, sys, g, jobCap, &breq, bo != nil && bo.heuristic)
		}
		if err != nil {
			return nil, false, err
		}
		if bo != nil {
			out.brownout = bo.rung.String()
			s.metrics.BrownoutSolves.Add(1)
		}
		return out, !out.degraded && bo == nil, nil
	}
	// Solve shape as admitted (after any brownout rewrite) — what actually
	// ran, which is what forensics wants.
	ev.Windows = breq.Windows
	ev.CoarsenEps = breq.CoarsenEps
	ev.CacheKey = flightKey

	tSolve := time.Now()
	var val any
	var how hitKind
	bypass := false
	if faultinject.Armed() && faultinject.Fire(faultinject.CacheError) {
		// Injected cache-backend failure: bypass the cache and solve
		// directly. Correctness never depends on the cache.
		s.metrics.CacheErrors.Add(1)
		how = hitMiss
		bypass = true
		val, _, err = fn()
	} else {
		val, how, err = s.cache.DoMaybe(ctx, flightKey, fn)
	}
	ev.SolveMS = msSince(tSolve)
	ev.Cache = hitKindString(how, bypass)
	if err != nil {
		ev.Err = err.Error()
		s.solveError(w, err)
		return
	}
	s.countHit(how)

	out := val.(*solveOutcome)
	ev.Rung = out.rung
	ev.Degraded = out.degraded
	ev.DegradedReason = out.reason
	ev.Brownout = out.brownout
	ev.SolveRetries = out.retries
	ev.ClusterOrigin = out.clusterOrigin
	if how == hitMiss && out.sched != nil {
		// Kernel health belongs to the flight that ran the solve; hits and
		// coalesced waiters spent no kernel effort of their own.
		ev.Kernel = kernelHealthFrom(out.sched.Stats)
		ev.RungAttempts = out.rungAttempts
	}
	if out.degraded && degradedPolicy == "forbid" {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("degraded schedule (%s) refused by ?degraded=forbid", out.reason))
		return
	}
	resp := &SolveResponse{
		RequestID:     RequestIDFrom(r.Context()),
		Key:           key,
		GraphDigest:   powercap.GraphDigest(g),
		Workload:      name,
		JobCapW:       jobCap,
		Cached:        how != hitMiss,
		ClusterOrigin: out.clusterOrigin,
		ElapsedMS:     msSince(start),
	}
	if out.infeasible {
		resp.Infeasible = true
	} else {
		resp.MakespanS = out.sched.MakespanS
		resp.MarginalSecPerW = out.sched.MarginalSecPerW
		resp.IterationMakespans = out.sched.IterationMakespans
		resp.Stats = NewStatsJSON(out.sched.Stats)
		resp.Degraded = out.degraded
		resp.DegradedRung = out.rung
		resp.DegradedReason = out.reason
		resp.SolveRetries = out.retries
		resp.Brownout = out.brownout
		if out.realized != nil {
			resp.Realized = NewRealizedJSON(out.realized)
		}
		if out.windowed != nil {
			resp.Windowed = NewWindowedJSON(out.windowed)
		}
	}
	resp.Trace = s.inlineTrace(r)
	writeJSON(w, http.StatusOK, resp)
}

// inlineTrace builds the Chrome trace document for a ?trace=1 request (nil
// otherwise). Snapshot is a copy, so the harvest in api() still sees every
// span.
func (s *Server) inlineTrace(r *http.Request) *obs.Document {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
	default:
		return nil
	}
	tr := obs.FromContext(r.Context())
	if tr == nil {
		return nil
	}
	s.metrics.TracedRequests.Add(1)
	return &obs.Document{
		TraceEvents:     obs.ChromeEvents(tr.Snapshot()),
		DisplayTimeUnit: "ms",
		DroppedSpans:    tr.Dropped(),
	}
}

// solveWorker runs one resilient solve on a worker slot. A panic anywhere in
// the solve path is recovered here — counted, turned into errSolvePanic, and
// the worker slot released cleanly — so a poisoned request can never take
// the daemon (or a pooled worker) down with it.
func (s *Server) solveWorker(ctx context.Context, sys *powercap.System, g *powercap.Graph, jobCap float64, req *SolveRequest, heuristic bool) (out *solveOutcome, err error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() {
		if p := recover(); p != nil {
			s.metrics.Panics.Add(1)
			if s.logger != nil {
				s.logger.Error("solve panic recovered",
					"request_id", RequestIDFrom(ctx),
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
			}
			out, err = nil, fmt.Errorf("%w: %v", errSolvePanic, p)
		}
	}()
	if faultinject.Armed() && faultinject.Fire(faultinject.WorkerPanic) {
		panic("faultinject: worker panic")
	}

	t0 := time.Now()
	if heuristic {
		// Deepest brownout rung: the slack-aware heuristic alone, no LP.
		// Breaker state is neither consulted nor charged — a brownout is a
		// capacity decision, not a backend failure.
		res, serr := sys.HeuristicOutcomeCtx(ctx, g, jobCap)
		s.metrics.SolveLatency.Observe(time.Since(t0))
		if serr != nil {
			return nil, serr
		}
		s.metrics.Solves.Add(1)
		s.metrics.Degraded.Add(1)
		s.metrics.FallbackHeuristic.Add(1)
		out = &solveOutcome{
			sched:    res.Schedule,
			realized: res.Realized,
			degraded: true,
			rung:     res.Rung.String(),
			reason:   res.Reason,
		}
		out.rungAttempts = rungAttempts32(res.RungAttempts)
		return out, nil
	}
	if req.Windows > 1 || req.CoarsenEps > 0 {
		return s.solveWindowed(ctx, sys, g, jobCap, req, t0)
	}
	res, serr := sys.UpperBoundResilientCtx(ctx, g, jobCap, req.Whole)
	s.metrics.SolveLatency.Observe(time.Since(t0))
	if serr != nil {
		if errors.Is(serr, powercap.ErrInfeasible) {
			s.metrics.Solves.Add(1)
			s.metrics.Infeasible.Add(1)
			return &solveOutcome{infeasible: true}, nil
		}
		return nil, serr
	}
	out = &solveOutcome{
		sched:    res.Schedule,
		realized: res.Realized,
		degraded: res.Degraded,
		rung:     res.Rung.String(),
		reason:   res.Reason,
		retries:  res.Retries,
	}
	out.rungAttempts = rungAttempts32(res.RungAttempts)
	if req.Realize != "" && !res.Degraded {
		out.realized, serr = sys.RealizeScheduleCtx(ctx, g, res.Schedule, req.Realize)
		if serr != nil {
			return nil, serr
		}
	}
	s.metrics.Solves.Add(1)
	s.metrics.SolveRetries.Add(uint64(res.Retries))
	s.metrics.WarmStarts.Add(uint64(res.Schedule.Stats.WarmStarts))
	s.metrics.Pivots.Add(uint64(res.Schedule.Stats.SimplexIter))
	s.countLPStats(res.Schedule.Stats)
	if res.Degraded {
		s.metrics.Degraded.Add(1)
		switch res.Rung {
		case powercap.RungDense:
			s.metrics.FallbackDense.Add(1)
		case powercap.RungHeuristic:
			s.metrics.FallbackHeuristic.Add(1)
		case powercap.RungStatic:
			s.metrics.FallbackStatic.Add(1)
		}
	}
	return out, nil
}

// solveWindowed runs the windowed large-trace decomposition for a request
// with windows > 1 or coarsen_eps > 0. The windowed path carries its own
// escalation ladder (infeasible windows widen toward the monolithic
// formulation), so it bypasses the resilience ladder; its per-window spans
// (window.build, window.solve, window.stitch) feed the stage-latency
// histograms like any other pipeline stage.
func (s *Server) solveWindowed(ctx context.Context, sys *powercap.System, g *powercap.Graph, jobCap float64, req *SolveRequest, t0 time.Time) (*solveOutcome, error) {
	ws, serr := sys.SolveWindowedCtx(ctx, g, jobCap, powercap.WindowedOptions{
		Windows:       req.Windows,
		OverlapEvents: -1,
		CoarsenEps:    req.CoarsenEps,
	})
	s.metrics.SolveLatency.Observe(time.Since(t0))
	if serr != nil {
		if errors.Is(serr, powercap.ErrInfeasible) {
			s.metrics.Solves.Add(1)
			s.metrics.Infeasible.Add(1)
			return &solveOutcome{infeasible: true}, nil
		}
		return nil, serr
	}
	out := &solveOutcome{sched: ws.Schedule, windowed: ws}
	if req.Realize != "" {
		var rerr error
		out.realized, rerr = sys.RealizeScheduleCtx(ctx, g, ws.Schedule, req.Realize)
		if rerr != nil {
			return nil, rerr
		}
	}
	s.metrics.Solves.Add(1)
	s.metrics.WindowedSolves.Add(1)
	s.metrics.WindowsSolved.Add(uint64(ws.Windows))
	s.metrics.WindowWarmStartHits.Add(uint64(ws.WarmStartHits))
	s.metrics.WindowCommitSolves.Add(uint64(ws.CommitSolves))
	s.metrics.WindowEscalations.Add(uint64(ws.Escalations))
	s.metrics.WindowSeamViolationW.StoreMax(ws.SeamViolationW)
	if ws.SimMakespanS > 0 {
		s.metrics.WindowStitchGapPct.StoreMax((ws.MakespanS/ws.SimMakespanS - 1) * 100)
	}
	s.metrics.WarmStarts.Add(uint64(ws.Stats.WarmStarts))
	s.metrics.Pivots.Add(uint64(ws.Stats.SimplexIter))
	s.countLPStats(ws.Stats)
	return out, nil
}

// rungAttempts32 narrows the ladder's per-rung attempt counts to the wide
// event's flat int32 array (the counts are tiny; the narrower type keeps
// the always-on ring compact).
func rungAttempts32(a [obs.NumLadderRungs]int) [obs.NumLadderRungs]int32 {
	var out [obs.NumLadderRungs]int32
	for i, v := range a {
		out[i] = int32(v)
	}
	return out
}

// SweepRequest asks for the LP bound across a family of per-socket caps,
// given either an explicit list or a "hi:lo:step" spec (watts per socket).
type SweepRequest struct {
	Trace          *trace.File   `json:"trace,omitempty"`
	Workload       *WorkloadSpec `json:"workload,omitempty"`
	Spec           string        `json:"spec,omitempty"`
	CapsPerSocketW []float64     `json:"caps_per_socket_w,omitempty"`
	TimeoutMS      float64       `json:"timeout_ms,omitempty"`
}

// SweepPointJSON is one cap's result in a SweepResponse.
type SweepPointJSON struct {
	PerSocketW      float64 `json:"per_socket_w"`
	JobCapW         float64 `json:"job_cap_w"`
	MakespanS       float64 `json:"makespan_s,omitempty"`
	MarginalSecPerW float64 `json:"marginal_s_per_w,omitempty"`
	Infeasible      bool    `json:"infeasible,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// SweepResponse reports a warm-started sweep.
type SweepResponse struct {
	RequestID   string           `json:"request_id,omitempty"`
	Workload    string           `json:"workload,omitempty"`
	GraphDigest string           `json:"graph_digest"`
	Points      []SweepPointJSON `json:"points"`
	Stats       *StatsJSON       `json:"stats,omitempty"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	// Trace is inlined for ?trace=1 requests (see SolveResponse.Trace).
	Trace *obs.Document `json:"trace,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	g, eff, name, err := resolveGraph(r.Context(), req.Trace, req.Workload)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	perSocket := req.CapsPerSocketW
	if req.Spec != "" {
		if len(perSocket) != 0 {
			s.badRequest(w, errors.New("give either spec or caps_per_socket_w, not both"))
			return
		}
		perSocket, err = powercap.ParseSweepSpec(req.Spec)
		if err != nil {
			s.badRequest(w, err)
			return
		}
	}
	if len(perSocket) == 0 {
		s.badRequest(w, errors.New("sweep needs spec or caps_per_socket_w"))
		return
	}
	jobCaps := make([]float64, len(perSocket))
	for i, c := range perSocket {
		if c <= 0 {
			s.badRequest(w, fmt.Errorf("cap %g W must be positive", c))
			return
		}
		jobCaps[i] = c * float64(g.NumRanks)
	}
	sys := s.systemFor(eff)

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		s.solveError(w, err)
		return
	}
	t0 := time.Now()
	pts, err := sys.SolveSweepCtx(ctx, g, jobCaps)
	release()
	s.metrics.SolveLatency.Observe(time.Since(t0))
	if err != nil {
		s.solveError(w, err)
		return
	}
	if err := ctx.Err(); err != nil {
		// The sweep was abandoned mid-family; partial points are not
		// worth a misleading 200.
		s.metrics.Canceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, "sweep canceled: "+err.Error())
		return
	}

	resp := &SweepResponse{
		RequestID:   RequestIDFrom(r.Context()),
		Workload:    name,
		GraphDigest: powercap.GraphDigest(g),
	}
	var agg powercap.SolverStats
	for i, pt := range pts {
		pj := SweepPointJSON{PerSocketW: perSocket[i], JobCapW: pt.CapW}
		switch {
		case pt.Err != nil && errors.Is(pt.Err, powercap.ErrInfeasible):
			pj.Infeasible = true
			s.metrics.Solves.Add(1)
			s.metrics.Infeasible.Add(1)
		case pt.Err != nil:
			pj.Error = pt.Err.Error()
		default:
			pj.MakespanS = pt.Schedule.MakespanS
			pj.MarginalSecPerW = pt.Schedule.MarginalSecPerW
			agg.Add(pt.Schedule.Stats)
			s.metrics.Solves.Add(1)
		}
		resp.Points = append(resp.Points, pj)
	}
	s.metrics.WarmStarts.Add(uint64(agg.WarmStarts))
	s.metrics.Pivots.Add(uint64(agg.SimplexIter))
	s.countLPStats(agg)
	ev := wideEventFrom(r.Context())
	ev.Workload = name
	ev.Kernel = kernelHealthFrom(agg)
	resp.Stats = NewStatsJSON(agg)
	resp.ElapsedMS = msSince(start)
	resp.Trace = s.inlineTrace(r)
	writeJSON(w, http.StatusOK, resp)
}

// CompareRequest asks for the paper's headline experiment at one cap:
// LP bound vs Static vs Conductor. Only named workloads are accepted —
// the comparison needs the proxy's iteration structure and exploration
// phase, which a bare trace does not carry.
type CompareRequest struct {
	Workload      *WorkloadSpec `json:"workload"`
	CapPerSocketW float64       `json:"cap_per_socket_w"`
	TimeoutMS     float64       `json:"timeout_ms,omitempty"`
}

// CompareResponse wraps a powercap.Comparison; cmd/pcsched -json emits the
// same schema, so service and CLI output are interchangeable.
type CompareResponse struct {
	RequestID  string              `json:"request_id,omitempty"`
	Comparison powercap.Comparison `json:"comparison"`
	Cached     bool                `json:"cached"`
	ElapsedMS  float64             `json:"elapsed_ms"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req CompareRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if req.Workload == nil {
		s.badRequest(w, errors.New("compare needs a named workload"))
		return
	}
	if req.CapPerSocketW <= 0 {
		s.badRequest(w, fmt.Errorf("cap_per_socket_w %g must be positive", req.CapPerSocketW))
		return
	}
	wl, err := workloadFor(req.Workload)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	sys := s.systemFor(wl.EffScale)
	// Compare's result additionally depends on the exploration-iteration
	// count, so extend the schedule key rather than reusing it bare.
	key := fmt.Sprintf("compare|%s|expl=%d",
		sys.ScheduleKey(wl.Graph, req.CapPerSocketW*float64(wl.Graph.NumRanks), false, "", 0, 0),
		sys.ExploreIters)

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	val, how, err := s.cache.Do(ctx, key, func() (any, error) {
		release, err := s.acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		t0 := time.Now()
		cmp, cerr := sys.CompareCtx(ctx, wl, req.CapPerSocketW)
		s.metrics.SolveLatency.Observe(time.Since(t0))
		if cerr != nil {
			return nil, cerr
		}
		s.metrics.Solves.Add(1)
		return cmp, nil
	})
	if err != nil {
		s.solveError(w, err)
		return
	}
	s.countHit(how)
	writeJSON(w, http.StatusOK, &CompareResponse{
		RequestID:  RequestIDFrom(r.Context()),
		Comparison: *val.(*powercap.Comparison),
		Cached:     how != hitMiss,
		ElapsedMS:  msSince(start),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	body := map[string]any{
		"status":      status,
		"workers":     s.workers,
		"queue_depth": s.queueDepth,
		"queue_used":  s.queueUsed(),
		"inflight":    s.metrics.Inflight.Load(),
		"cached":      s.cache.Len(),
		"breakers":    s.breakerStates(),
		"slo":         s.slo.Status(time.Now()),
	}
	if s.adaptRT != nil {
		st := s.adaptState.Load()
		body["adapt"] = map[string]any{
			"enabled":     true,
			"rung":        st.Rung.String(),
			"epoch":       st.Epoch,
			"pressure":    st.Pressure,
			"workers":     st.Workers,
			"queue_depth": st.QueueDepth,
			"draining":    st.Draining,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// breakerStates aggregates circuit-breaker state per ladder rung across the
// pooled Systems, reporting the worst state seen (open > half-open >
// closed): an operator probing /healthz wants to know if *any* workload's
// sparse backend is being skipped.
func (s *Server) breakerStates() map[string]string {
	agg := make(map[string]string, 4)
	for r := powercap.RungSparse; r <= powercap.RungStatic; r++ {
		agg[r.String()] = "closed"
	}
	s.sysMu.Lock()
	defer s.sysMu.Unlock()
	for _, sys := range s.sysPool {
		for rung, st := range sys.Ladder().BreakerStates() {
			if breakerRank(st) > breakerRank(agg[rung]) {
				agg[rung] = st
			}
		}
	}
	return agg
}

func breakerRank(state string) int {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Render(w)
	// Process-level gauges live here rather than in Metrics: they are
	// read from the runtime and the server, not accumulated.
	writeMeta(w, "pcschedd_goroutines", "Live goroutines in the daemon process.", "gauge")
	fmt.Fprintf(w, "pcschedd_goroutines %d\n", runtime.NumGoroutine())
	writeMeta(w, "pcschedd_cache_entries", "Finished schedules resident in the LRU.", "gauge")
	fmt.Fprintf(w, "pcschedd_cache_entries %d\n", s.cache.Len())
	s.sysMu.Lock()
	pooled := len(s.sysPool)
	s.sysMu.Unlock()
	writeMeta(w, "pcschedd_systems_pooled", "powercap.System instances pooled by efficiency-scale vector.", "gauge")
	fmt.Fprintf(w, "pcschedd_systems_pooled %d\n", pooled)
	writeMeta(w, "pcschedd_queue_occupancy", "Fraction of the effective admission queue in use (0-1).", "gauge")
	fmt.Fprintf(w, "pcschedd_queue_occupancy %g\n", s.queueOccupancy())
	rung, aworkers, aqdepth := 0, s.workers, s.queueDepth
	if st := s.adaptState.Load(); st != nil {
		rung, aworkers, aqdepth = int(st.Rung), st.Workers, st.QueueDepth
	}
	var tokens float64
	if rt := s.adaptRT; rt != nil {
		tokens = rt.bucket.TokensAt(time.Now())
	}
	writeMeta(w, "pcschedd_brownout_rung", "Current brownout ladder rung (0 = full fidelity).", "gauge")
	fmt.Fprintf(w, "pcschedd_brownout_rung %d\n", rung)
	writeMeta(w, "pcschedd_adapt_workers", "Effective worker slots after adaptive parking.", "gauge")
	fmt.Fprintf(w, "pcschedd_adapt_workers %d\n", aworkers)
	writeMeta(w, "pcschedd_adapt_queue_depth", "Effective admission queue depth after adaptive parking.", "gauge")
	fmt.Fprintf(w, "pcschedd_adapt_queue_depth %d\n", aqdepth)
	writeMeta(w, "pcschedd_retry_budget_tokens", "Tokens remaining in the retry budget bucket.", "gauge")
	fmt.Fprintf(w, "pcschedd_retry_budget_tokens %g\n", tokens)
	writeMeta(w, "pcschedd_build_info", "Build metadata as labels; the value is always 1.", "gauge")
	fmt.Fprintf(w, "pcschedd_build_info{go_version=%q} 1\n", runtime.Version())

	// SLO burn rates and window counts live on the Server (the engine is
	// not a plain counter), so they render here. Every objective renders
	// unconditionally — the conformance test requires each declared family
	// to carry samples.
	now := time.Now()
	writeMeta(w, "pcschedd_slo_fast_burn", "Error-budget burn rate over the fast window, by objective (1 = exactly sustainable).", "gauge")
	for _, ob := range s.slo.Status(now) {
		fmt.Fprintf(w, "pcschedd_slo_fast_burn{objective=%q} %g\n", ob.Name, ob.FastBurn)
	}
	writeMeta(w, "pcschedd_slo_slow_burn", "Error-budget burn rate over the slow window, by objective.", "gauge")
	for _, ob := range s.slo.Status(now) {
		fmt.Fprintf(w, "pcschedd_slo_slow_burn{objective=%q} %g\n", ob.Name, ob.SlowBurn)
	}
	writeMeta(w, "pcschedd_slo_window_good", "Good events in the sliding SLO windows, by objective and window.", "gauge")
	for _, ob := range s.slo.Status(now) {
		fmt.Fprintf(w, "pcschedd_slo_window_good{objective=%q,window=\"fast\"} %d\n", ob.Name, ob.FastGood)
		fmt.Fprintf(w, "pcschedd_slo_window_good{objective=%q,window=\"slow\"} %d\n", ob.Name, ob.SlowGood)
	}
	writeMeta(w, "pcschedd_slo_window_total", "Classified events in the sliding SLO windows, by objective and window.", "gauge")
	for _, ob := range s.slo.Status(now) {
		fmt.Fprintf(w, "pcschedd_slo_window_total{objective=%q,window=\"fast\"} %d\n", ob.Name, ob.FastTotal)
		fmt.Fprintf(w, "pcschedd_slo_window_total{objective=%q,window=\"slow\"} %d\n", ob.Name, ob.SlowTotal)
	}
	writeMeta(w, "pcschedd_flightrecorder_events_total", "Wide events recorded by the flight recorder since start.", "counter")
	fmt.Fprintf(w, "pcschedd_flightrecorder_events_total %d\n", s.flight.Total())
}

// handleFlightRecorder dumps the last n wide events (?n=, default 64, 0 =
// the whole ring) as indented JSON, newest last.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad n %q (want a non-negative integer; 0 = whole ring)", q))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w, n, "debug-endpoint")
}

// hitKindString names a cache outcome for the wide event.
func hitKindString(how hitKind, bypass bool) string {
	if bypass {
		return "bypass"
	}
	switch how {
	case hitMiss:
		return "miss"
	case hitCoalesced:
		return "coalesced"
	default:
		return "hit"
	}
}

// countHit records the cache outcome of a successful lookup.
func (s *Server) countHit(how hitKind) {
	switch how {
	case hitMiss:
		s.metrics.CacheMisses.Add(1)
	case hitCoalesced:
		s.metrics.CacheHits.Add(1)
		s.metrics.Coalesced.Add(1)
	default:
		s.metrics.CacheHits.Add(1)
	}
}

// solveError maps a backend failure onto an HTTP status and the matching
// counter: queue-full → 429, cancellation → 504, anything else → 500.
func (s *Server) solveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.Rejected.Add(1)
		s.writeTooBusy(w, err.Error())
	case errors.Is(err, errShedDeadline):
		s.metrics.ShedDeadline.Add(1)
		s.writeTooBusy(w, err.Error())
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.metrics.Canceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.metrics.BadRequests.Add(1)
	writeError(w, http.StatusBadRequest, err.Error())
}

// resolveGraph materializes the application graph named by a request:
// inline trace JSON or a workload proxy, but not both and not neither.
// Malformed input that slips past the codec's structural checks and panics
// in graph construction is converted into an error here, so it surfaces as
// a 400 instead of a dead worker.
func resolveGraph(ctx context.Context, tf *trace.File, ws *WorkloadSpec) (g *powercap.Graph, eff []float64, name string, err error) {
	defer func() {
		if p := recover(); p != nil {
			g, eff, name = nil, nil, ""
			err = fmt.Errorf("invalid request graph: %v", p)
		}
	}()
	switch {
	case tf != nil && ws != nil:
		return nil, nil, "", errors.New("give either trace or workload, not both")
	case tf != nil:
		g, eff, err := trace.DecodeCtx(ctx, tf)
		if err != nil {
			return nil, nil, "", err
		}
		name := tf.Name
		if name == "" {
			name = "trace"
		}
		return g, eff, name, nil
	case ws != nil:
		wl, err := workloadFor(ws)
		if err != nil {
			return nil, nil, "", err
		}
		return wl.Graph, wl.EffScale, wl.Name, nil
	default:
		return nil, nil, "", errors.New("request needs a trace or a workload")
	}
}

func workloadFor(ws *WorkloadSpec) (*powercap.Workload, error) {
	return powercap.WorkloadByName(ws.Name, powercap.WorkloadParams{
		Ranks:      ws.Ranks,
		Iterations: ws.Iters,
		Seed:       ws.Seed,
		WorkScale:  ws.Scale,
	})
}

// resolveCap picks the job-level cap from the two ways a request may state
// it.
func resolveCap(jobCapW, perSocketW float64, ranks int) (float64, error) {
	switch {
	case jobCapW > 0 && perSocketW > 0:
		return 0, errors.New("give either job_cap_w or cap_per_socket_w, not both")
	case jobCapW > 0:
		return jobCapW, nil
	case perSocketW > 0:
		return perSocketW * float64(ranks), nil
	default:
		return 0, errors.New("request needs a positive job_cap_w or cap_per_socket_w")
	}
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
