package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powercap"
	"powercap/internal/faultinject"
)

// TestChaosSoak is the fault-injected soak of DESIGN.md §10: with every
// fault class firing at realistic rates, the daemon must keep answering —
// zero crashes, ≥99% of requests served, and never a cap-violating
// schedule. Afterwards, with faults off, results must be bit-identical to a
// never-faulted server and the breakers must recover.
func TestChaosSoak(t *testing.T) {
	faultinject.Disable()
	caps := []float64{50, 55, 60, 65}
	req := func(cap float64) SolveRequest {
		return SolveRequest{Workload: fastWL, CapPerSocketW: cap, Realize: "down"}
	}

	// Baseline: a clean server's makespan per cap, recorded bit-exactly.
	baseline := make(map[float64]uint64)
	func() {
		_, ts := newTestServer(t, Config{Workers: 4})
		for _, c := range caps {
			code, resp := solveJSON(t, ts.URL+"/v1/solve", req(c))
			if code != http.StatusOK || resp.Degraded {
				t.Fatalf("baseline cap %g: status %d degraded %v", c, code, resp.Degraded)
			}
			baseline[c] = math.Float64bits(resp.MakespanS)
		}
	}()

	s, ts := newTestServer(t, Config{
		Workers: 4,
		Resilience: powercap.ResilienceConfig{
			BackoffBase:     100 * time.Microsecond,
			BreakerCooldown: 50 * time.Millisecond,
		},
	})

	faultinject.Configure(42, map[faultinject.Class]float64{
		faultinject.LPNaN:       0.05,
		faultinject.LPStall:     0.03,
		faultinject.CacheError:  0.05,
		faultinject.WorkerPanic: 0.02,
		faultinject.SlowSolve:   0.05,
	})
	faultinject.SetSlowDelay(time.Millisecond)
	defer faultinject.Disable()

	const workers = 8
	const perWorker = 40
	var (
		ok500     atomic.Uint64 // contained failures (double worker panic)
		okValid   atomic.Uint64
		degradedN atomic.Uint64
		wg        sync.WaitGroup
		failMu    sync.Mutex
		failures  []string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		failMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := caps[(w+i)%len(caps)]
				code, body := postJSON(t, ts.URL+"/v1/solve", req(c))
				switch code {
				case http.StatusOK:
					var resp SolveResponse
					if err := json.Unmarshal(body, &resp); err != nil {
						fail("unparseable 200 body: %v", err)
						continue
					}
					if resp.MakespanS <= 0 {
						fail("cap %g: nonpositive makespan %v", c, resp.MakespanS)
						continue
					}
					if resp.Realized == nil || resp.Realized.CapViolationW != 0 {
						fail("cap %g: response without cap-clean realization: %+v", c, resp.Realized)
						continue
					}
					if resp.Degraded {
						degradedN.Add(1)
						if resp.DegradedRung == "" || resp.DegradedReason == "" {
							fail("degraded response lacks rung/reason: %+v", resp)
							continue
						}
					} else if base := math.Float64frombits(baseline[c]); math.Abs(resp.MakespanS-base) > 1e-6*base {
						// A non-degraded result is a top-rung LP solve. A
						// NaN-recovery refactorization may change the pivot
						// path (and the last bits), but never the optimum.
						fail("cap %g: non-degraded makespan %v far from baseline %v", c, resp.MakespanS, base)
						continue
					}
					okValid.Add(1)
				case http.StatusInternalServerError:
					ok500.Add(1) // tolerated if rare; checked below
				default:
					fail("cap %g: unexpected status %d: %s", c, code, body)
				}
			}
		}(w)
	}
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d invalid responses during soak, first: %s", len(failures), failures[0])
	}
	total := uint64(workers * perWorker)
	if okValid.Load()*100 < total*99 {
		t.Fatalf("only %d/%d requests valid (%d contained 500s), want ≥99%%",
			okValid.Load(), total, ok500.Load())
	}
	t.Logf("soak: %d/%d valid, %d degraded, %d contained 500s; fired: nan=%d stall=%d cache=%d panic=%d slow=%d",
		okValid.Load(), total, degradedN.Load(), ok500.Load(),
		faultinject.Count(faultinject.LPNaN), faultinject.Count(faultinject.LPStall),
		faultinject.Count(faultinject.CacheError), faultinject.Count(faultinject.WorkerPanic),
		faultinject.Count(faultinject.SlowSolve))

	// Faults off: the soaked server must converge back to clean top-rung
	// service (breakers recover after their cooldown), and a fresh server
	// must reproduce the baseline bit for bit. The soaked server may serve
	// NaN-recovered solves from its LRU, so only the fresh server is held
	// to bit-identity.
	faultinject.Disable()
	time.Sleep(60 * time.Millisecond) // past BreakerCooldown
	for _, c := range caps {
		code, resp := solveJSON(t, ts.URL+"/v1/solve", req(c))
		if code != http.StatusOK {
			t.Fatalf("post-soak cap %g: status %d", c, code)
		}
		if resp.Degraded {
			t.Fatalf("post-soak cap %g still degraded: %s", c, resp.DegradedReason)
		}
	}
	br := s.breakerStates()
	if br["sparse"] != "closed" {
		t.Fatalf("sparse breaker %q after recovery solves", br["sparse"])
	}

	_, ts2 := newTestServer(t, Config{Workers: 4})
	for _, c := range caps {
		code, resp := solveJSON(t, ts2.URL+"/v1/solve", req(c))
		if code != http.StatusOK || math.Float64bits(resp.MakespanS) != baseline[c] {
			t.Fatalf("fresh server cap %g: status %d makespan %v, want bit-identical baseline",
				c, code, resp.MakespanS)
		}
	}
}
