package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Content-addressed schedule cache. Keys are System.ScheduleKey digests —
// SHA-256 over the canonical DAG serialization, machine fingerprint,
// efficiency scaling, and cap — so two requests share an entry exactly when
// their LPs are identical. A singleflight layer coalesces concurrent misses
// for the same key onto one backend solve: of 64 identical concurrent
// requests, one becomes the leader and solves, the other 63 wait on its
// result and count as cache hits.

// flight is one in-progress backend solve that waiters can join.
type flight struct {
	done chan struct{} // closed once val/err are set
	val  any
	err  error
}

// hitKind classifies how a cache lookup was satisfied.
type hitKind int

const (
	hitMiss      hitKind = iota // caller ran the backend solve
	hitLRU                      // finished schedule found in the LRU
	hitCoalesced                // joined an in-flight identical solve
)

type cacheEntry struct {
	key string
	val any
}

// cache is an LRU keyed by content digest with singleflight dedup. Only
// successful values are cached; errors propagate to every coalesced waiter
// but leave no entry behind (a later retry re-solves).
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// errSolvePanic marks a leader fn that panicked instead of returning; the
// panic is re-raised to the leader's handler (where the recovery middleware
// counts it) while coalesced waiters receive this error.
var errSolvePanic = errors.New("service: solve panicked")

// Do returns the value for key, running fn at most once per key across all
// concurrent callers. The how result reports whether the value came from the
// LRU, an in-flight solve, or a fresh backend run. A waiter whose ctx ends
// before the leader finishes gets ctx.Err() — the leader keeps solving for
// the benefit of the remaining waiters (its own ctx governs it).
func (c *cache) Do(ctx context.Context, key string, fn func() (any, error)) (val any, how hitKind, err error) {
	return c.DoMaybe(ctx, key, func() (any, bool, error) {
		v, err := fn()
		return v, true, err
	})
}

// DoMaybe is Do for values that may be ineligible for caching: fn
// additionally reports whether its (successful) value may enter the LRU.
// Non-cacheable values still coalesce concurrent identical requests — every
// waiter of this flight shares the result — but leave no entry behind, so
// the next request re-solves. Degraded fallback schedules use this: serving
// one under pressure is fine, replaying it from cache after the backend
// recovers is not.
//
// If fn panics, the flight is failed with errSolvePanic (waiters are
// released, the inflight entry is removed) and the panic resumes on the
// leader's goroutine.
func (c *cache) DoMaybe(ctx context.Context, key string, fn func() (val any, cacheable bool, err error)) (val any, how hitKind, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, hitLRU, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, hitCoalesced, f.err
		case <-ctx.Done():
			return nil, hitCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	completed := false
	cacheable := false
	defer func() {
		if !completed {
			f.err = errSolvePanic
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil && cacheable {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, cacheable, f.err = fn()
	completed = true
	return f.val, hitMiss, f.err
}

// Put inserts a finished value directly, bypassing singleflight — used for
// by-product schedules (a cluster allocation's per-job solves) whose keys
// differ from the request that produced them. An in-flight solve for the
// same key is unaffected: it will overwrite this entry when it lands, with
// an identical value (equal keys imply interchangeable results).
func (c *cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val)
}

// Get is a non-coalescing lookup (used by tests and the bench harness).
func (c *cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Resize retargets the LRU capacity, evicting from the cold end if the new
// capacity is below the current population. The adaptive control plane
// calls this once per epoch; in-flight singleflight state is untouched.
func (c *cache) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Cap reports the current LRU capacity.
func (c *cache) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Len reports the number of cached entries.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *cache) insertLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}
