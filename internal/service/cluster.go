package service

// /v1/cluster: the cluster power market over HTTP. A batch request names N
// jobs and one site-wide power budget; the response carries each job's
// granted cap and schedule summary plus the full allocation trace
// (iterations, transfers, convergence). The handler threads the allocator
// through the same machinery every other endpoint uses — pooled Systems
// (so each job's problem IR is cached across requests), the worker-slot
// semaphore (one slot for the whole allocation: the allocator's solves are
// sequential warm re-solves, not parallel work), the content-addressed
// cache (cluster-level entry plus per-job Put of the final schedules, so a
// later /v1/solve at a granted cap is a hit), and obs tracing (the
// market.allocate/market.floor/market.iteration spans land in the stage
// histograms).
//
// Response JSON is deterministic: jobs render in request order, transfers
// in execution order, floors sorted largest-first — no map iteration
// anywhere in the schema.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"powercap"
	"powercap/internal/market"
	"powercap/internal/obs"
	"powercap/internal/trace"
)

// ClusterJobSpec names one job in a cluster request: inline trace JSON or a
// workload proxy (exactly one), plus a cluster-unique name.
type ClusterJobSpec struct {
	Name     string        `json:"name"`
	Trace    *trace.File   `json:"trace,omitempty"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// ClusterRequest asks for one site-wide budget split across jobs. Exactly
// one of BudgetW or BudgetPerSocketW (scaled by the total rank count across
// jobs) must be positive.
type ClusterRequest struct {
	Jobs             []ClusterJobSpec `json:"jobs"`
	BudgetW          float64          `json:"budget_w,omitempty"`
	BudgetPerSocketW float64          `json:"budget_per_socket_w,omitempty"`
	// Policy is uniform, proportional, market, or auction ("" = market).
	Policy string `json:"policy,omitempty"`
	// ToleranceSecPerW, MaxIterations: market convergence controls
	// (0 = allocator defaults).
	ToleranceSecPerW float64 `json:"tolerance_s_per_w,omitempty"`
	MaxIterations    int     `json:"max_iterations,omitempty"`
	TimeoutMS        float64 `json:"timeout_ms,omitempty"`
}

// ClusterJobJSON is one job's slice of the budget in a response.
type ClusterJobJSON struct {
	Name            string  `json:"name"`
	Workload        string  `json:"workload,omitempty"`
	GraphDigest     string  `json:"graph_digest"`
	CapW            float64 `json:"cap_w"`
	FloorW          float64 `json:"floor_w"`
	DemandW         float64 `json:"demand_w"`
	MakespanS       float64 `json:"makespan_s"`
	MarginalSecPerW float64 `json:"marginal_s_per_w"`
	// ScheduleKey is the content-addressed cache key the job's final
	// schedule was stored under; a /v1/solve with whole=true at cap_w
	// returns it without a backend solve.
	ScheduleKey    string `json:"schedule_key,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// ClusterTransferJSON is one market iteration in the allocation trace.
type ClusterTransferJSON struct {
	Iteration      int     `json:"iteration"`
	From           string  `json:"from"`
	To             string  `json:"to"`
	Watts          float64 `json:"watts"`
	SpreadSecPerW  float64 `json:"spread_s_per_w"`
	TotalMakespanS float64 `json:"total_makespan_s"`
	Accepted       bool    `json:"accepted"`
}

// ClusterFloorJSON names one job's feasibility floor in an infeasible
// response (largest floor first — the jobs an operator would shed).
type ClusterFloorJSON struct {
	Name   string  `json:"name"`
	FloorW float64 `json:"floor_w"`
}

// ClusterResponse reports a solved cluster allocation, or — with Infeasible
// set — the proof that no split can schedule every job (the budget is below
// the sum of per-job feasibility floors).
type ClusterResponse struct {
	RequestID string  `json:"request_id,omitempty"`
	Policy    string  `json:"policy"`
	BudgetW   float64 `json:"budget_w"`

	Infeasible bool               `json:"infeasible,omitempty"`
	FloorSumW  float64            `json:"floor_sum_w,omitempty"`
	Floors     []ClusterFloorJSON `json:"floors,omitempty"`

	Jobs           []ClusterJobJSON `json:"jobs,omitempty"`
	TotalMakespanS float64          `json:"total_makespan_s,omitempty"`
	MaxMakespanS   float64          `json:"max_makespan_s,omitempty"`

	Iterations         int                   `json:"iterations"`
	Converged          bool                  `json:"converged"`
	FinalSpreadSecPerW float64               `json:"final_spread_s_per_w"`
	MovedW             float64               `json:"moved_w"`
	Transfers          []ClusterTransferJSON `json:"transfers,omitempty"`

	Solves int        `json:"solves,omitempty"`
	Stats  *StatsJSON `json:"stats,omitempty"`

	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is inlined for ?trace=1 requests (see SolveResponse.Trace).
	Trace *obs.Document `json:"trace,omitempty"`
}

// clusterJob is one resolved job: graph, efficiency scales, and the pooled
// System that will solve it.
type clusterJob struct {
	name     string
	g        *powercap.Graph
	eff      []float64
	workload string
	sys      *powercap.System
}

// clusterOutcome is the cached value for a cluster key: a finished
// allocation (with the per-job schedule cache keys the response needs) or a
// budget infeasibility proof. Allocations containing degraded jobs are
// served but never cached, matching solveOutcome.
type clusterOutcome struct {
	alloc     *powercap.ClusterAllocation
	keys      []string // per-job schedule cache keys, "" for degraded jobs
	budgetErr *powercap.BudgetError
}

// ResolveCluster validates a cluster request and resolves it into the
// facade's inputs: the jobs (name + graph + efficiency scales), each job's
// workload display name, the site budget in watts, and the allocator
// options. It is the shared front half of POST /v1/cluster, also used by
// pcsched -cluster to run the same request schema without a daemon.
func ResolveCluster(ctx context.Context, req *ClusterRequest) (jobs []powercap.ClusterJob, workloadNames []string, budgetW float64, opts powercap.ClusterOptions, err error) {
	if len(req.Jobs) == 0 {
		return nil, nil, 0, opts, errors.New("cluster needs at least one job")
	}
	policy, err := powercap.ParseClusterPolicy(req.Policy)
	if err != nil {
		return nil, nil, 0, opts, err
	}
	jobs = make([]powercap.ClusterJob, len(req.Jobs))
	workloadNames = make([]string, len(req.Jobs))
	totalRanks := 0
	seen := make(map[string]bool, len(req.Jobs))
	for i, spec := range req.Jobs {
		if spec.Name == "" {
			return nil, nil, 0, opts, fmt.Errorf("cluster job %d has no name", i)
		}
		if seen[spec.Name] {
			return nil, nil, 0, opts, fmt.Errorf("duplicate cluster job name %q", spec.Name)
		}
		seen[spec.Name] = true
		g, eff, wname, rerr := resolveGraph(ctx, spec.Trace, spec.Workload)
		if rerr != nil {
			return nil, nil, 0, opts, fmt.Errorf("job %q: %w", spec.Name, rerr)
		}
		jobs[i] = powercap.ClusterJob{Name: spec.Name, Graph: g, EffScale: eff}
		workloadNames[i] = wname
		totalRanks += g.NumRanks
	}
	budgetW, err = resolveClusterBudget(req.BudgetW, req.BudgetPerSocketW, totalRanks)
	if err != nil {
		return nil, nil, 0, opts, err
	}
	opts = powercap.ClusterOptions{
		Policy:           policy,
		ToleranceSecPerW: req.ToleranceSecPerW,
		MaxIterations:    req.MaxIterations,
	}
	return jobs, workloadNames, budgetW, opts, nil
}

// NewClusterResponse renders an allocation — or, with budgetErr set, the
// budget-infeasibility proof — in the /v1/cluster response schema. jobs and
// workloadNames are the resolved request (for display names and graph
// digests); keys, if non-nil, carries each job's schedule cache key. The
// handler and pcsched -cluster share this renderer so CLI and service emit
// identical JSON for identical requests.
func NewClusterResponse(jobs []powercap.ClusterJob, workloadNames []string, budgetW float64, opts powercap.ClusterOptions, alloc *powercap.ClusterAllocation, budgetErr *powercap.BudgetError, keys []string) *ClusterResponse {
	resp := &ClusterResponse{
		Policy:  string(opts.Policy),
		BudgetW: budgetW,
	}
	if budgetErr != nil {
		resp.Infeasible = true
		resp.FloorSumW = budgetErr.FloorSumW
		for _, f := range budgetErr.Floors {
			resp.Floors = append(resp.Floors, ClusterFloorJSON{Name: f.Name, FloorW: f.FloorW})
		}
		return resp
	}
	resp.TotalMakespanS = alloc.TotalMakespanS
	resp.MaxMakespanS = alloc.MaxMakespanS
	resp.Iterations = alloc.Iterations
	resp.Converged = alloc.Converged
	resp.FinalSpreadSecPerW = alloc.FinalSpreadSecPerW
	resp.MovedW = alloc.MovedW
	resp.Solves = alloc.Solves
	resp.Stats = NewStatsJSON(alloc.Stats)
	for i, ja := range alloc.Jobs {
		jj := ClusterJobJSON{
			Name:            ja.Name,
			Workload:        workloadNames[i],
			GraphDigest:     powercap.GraphDigest(jobs[i].Graph),
			CapW:            ja.CapW,
			FloorW:          ja.FloorW,
			DemandW:         ja.DemandW,
			MakespanS:       ja.MakespanS,
			MarginalSecPerW: ja.MarginalSecPerW,
			Degraded:        ja.Degraded,
			DegradedReason:  ja.Reason,
		}
		if keys != nil {
			jj.ScheduleKey = keys[i]
		}
		resp.Jobs = append(resp.Jobs, jj)
	}
	for _, tr := range alloc.Transfers {
		resp.Transfers = append(resp.Transfers, ClusterTransferJSON{
			Iteration:      tr.Iteration,
			From:           tr.From,
			To:             tr.To,
			Watts:          tr.Watts,
			SpreadSecPerW:  tr.SpreadSecPerW,
			TotalMakespanS: tr.TotalMakespanS,
			Accepted:       tr.Accepted,
		})
	}
	return resp
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req ClusterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	cjobs, wnames, budget, opts, err := ResolveCluster(r.Context(), &req)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	jobs := make([]clusterJob, len(cjobs))
	for i, cj := range cjobs {
		jobs[i] = clusterJob{name: cj.Name, g: cj.Graph, eff: cj.EffScale, workload: wnames[i], sys: s.systemFor(cj.EffScale)}
	}
	key := s.clusterKey(jobs, budget, opts)

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	fn := func() (any, bool, error) {
		out, ferr := s.clusterWorker(ctx, jobs, budget, opts)
		if ferr != nil {
			return nil, false, ferr
		}
		degraded := false
		if out.alloc != nil {
			for _, j := range out.alloc.Jobs {
				if j.Degraded {
					degraded = true
					break
				}
			}
		}
		return out, !degraded, nil
	}
	ev := wideEventFrom(r.Context())
	ev.Workload = fmt.Sprintf("cluster[%d]", len(jobs))
	ev.CapW = budget
	ev.CacheKey = key
	if dl, ok := ctx.Deadline(); ok {
		ev.DeadlineMS = float64(time.Until(dl)) / float64(time.Millisecond)
	}

	tSolve := time.Now()
	val, how, err := s.cache.DoMaybe(ctx, key, fn)
	ev.SolveMS = msSince(tSolve)
	ev.Cache = hitKindString(how, false)
	if err != nil {
		ev.Err = err.Error()
		s.solveError(w, err)
		return
	}
	s.countHit(how)

	out := val.(*clusterOutcome)
	if how == hitMiss && out.alloc != nil {
		ev.Kernel = kernelHealthFrom(out.alloc.Stats)
	}
	resp := NewClusterResponse(cjobs, wnames, budget, opts, out.alloc, out.budgetErr, out.keys)
	resp.RequestID = RequestIDFrom(r.Context())
	resp.Cached = how != hitMiss
	resp.ElapsedMS = msSince(start)
	resp.Trace = s.inlineTrace(r)
	writeJSON(w, http.StatusOK, resp)
}

// clusterWorker runs one allocation on a worker slot. The allocator's
// solves are sequential warm re-solves on per-job sessions, so the whole
// batch occupies a single slot. Budget infeasibility is an in-band outcome
// (a pure function of the request), not an error.
func (s *Server) clusterWorker(ctx context.Context, jobs []clusterJob, budget float64, opts powercap.ClusterOptions) (*clusterOutcome, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	t0 := time.Now()
	mjobs := make([]market.Job, len(jobs))
	for i, j := range jobs {
		cs, serr := j.sys.NewCapSession(ctx, j.g)
		if serr != nil {
			return nil, fmt.Errorf("job %q: %w", j.name, serr)
		}
		mjobs[i] = market.Job{Name: j.name, Session: cs}
	}
	alloc, err := market.Allocate(ctx, mjobs, budget, opts)
	s.metrics.SolveLatency.Observe(time.Since(t0))
	if err != nil {
		var be *market.BudgetError
		if errors.As(err, &be) {
			s.metrics.ClusterInfeasible.Add(1)
			return &clusterOutcome{budgetErr: be}, nil
		}
		return nil, err
	}

	out := &clusterOutcome{alloc: alloc, keys: make([]string, len(jobs))}
	for i, ja := range alloc.Jobs {
		if ja.Degraded {
			s.metrics.ClusterDegradedJobs.Add(1)
			continue
		}
		if ja.Schedule == nil {
			continue
		}
		// The job's final schedule is exactly what a whole-graph /v1/solve
		// at the granted cap would compute; park it under that key so the
		// follow-up solve (a client fetching its job's full schedule) is a
		// cache hit. The parked entry remembers which allocation produced
		// it, so the follow-up's response and wide event carry the cluster
		// request ID — the correlation forensics needs.
		k := jobs[i].sys.ScheduleKey(jobs[i].g, ja.CapW, true, "", 0, 0)
		s.cache.Put(k, &solveOutcome{sched: ja.Schedule, clusterOrigin: RequestIDFrom(ctx)})
		out.keys[i] = k
	}
	s.metrics.ClusterAllocations.Add(1)
	s.metrics.ClusterJobsAllocated.Add(uint64(len(jobs)))
	s.metrics.ClusterIterations.Observe(alloc.Iterations)
	s.metrics.ClusterMovedWatts.Add(alloc.MovedW)
	if alloc.Converged {
		s.metrics.ClusterConverged.Add(1)
	}
	s.metrics.Solves.Add(uint64(alloc.Solves))
	s.metrics.WarmStarts.Add(uint64(alloc.Stats.WarmStarts))
	s.metrics.Pivots.Add(uint64(alloc.Stats.SimplexIter))
	s.countLPStats(alloc.Stats)
	return out, nil
}

// clusterKey derives the content-addressed cache key of one cluster
// request: the per-job identities (name + the job's cap-independent
// ScheduleKey at cap 0 — graph digest, model fingerprint, efficiency
// scales) joined with the budget and every allocator option that shapes
// the result.
func (s *Server) clusterKey(jobs []clusterJob, budget float64, opts powercap.ClusterOptions) string {
	parts := make([]string, 0, len(jobs)+1)
	for _, j := range jobs {
		parts = append(parts, j.name+"="+j.sys.ScheduleKey(j.g, 0, true, "", 0, 0))
	}
	parts = append(parts, fmt.Sprintf("b=%g|p=%s|tol=%g|iter=%d",
		budget, opts.Policy, opts.ToleranceSecPerW, opts.MaxIterations))
	return "cluster|" + strings.Join(parts, "|")
}

// resolveClusterBudget picks the site budget from the two ways a request
// may state it.
func resolveClusterBudget(budgetW, perSocketW float64, totalRanks int) (float64, error) {
	switch {
	case budgetW > 0 && perSocketW > 0:
		return 0, errors.New("give either budget_w or budget_per_socket_w, not both")
	case budgetW > 0:
		return budgetW, nil
	case perSocketW > 0:
		return perSocketW * float64(totalRanks), nil
	default:
		return 0, errors.New("cluster needs a positive budget_w or budget_per_socket_w")
	}
}
