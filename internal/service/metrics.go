package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Observability layer: lock-free counters and latency histograms exposed in
// a Prometheus-compatible text format at /metrics (with # HELP/# TYPE
// metadata for every family). Counter and histogram updates are plain
// atomics — the service's hot path (cache hit) must not take a lock to be
// counted; only the per-stage histogram registry (fed off the hot path,
// from harvested obs traces) takes a mutex.

// Metrics aggregates the service's counters and histograms. All fields are
// safe for concurrent use; read them with atomic loads (or Snapshot).
type Metrics struct {
	// Requests counts every API request accepted into a handler
	// (including ones later rejected by admission control).
	Requests atomic.Uint64
	// Solves counts backend LP solves that ran to completion. The
	// singleflight load test's "exactly 1 backend solve for 64 identical
	// requests" asserts on this counter.
	Solves atomic.Uint64
	// CacheHits counts requests served without a backend solve: LRU hits
	// plus requests coalesced onto an in-flight identical solve.
	CacheHits atomic.Uint64
	// CacheMisses counts requests that had to run a backend solve.
	CacheMisses atomic.Uint64
	// Coalesced is the subset of CacheHits that joined an in-flight solve
	// (singleflight) rather than finding a finished schedule.
	Coalesced atomic.Uint64
	// Canceled counts requests abandoned by deadline or client disconnect,
	// observed as a cancellation surfacing from the LP pivot loops.
	Canceled atomic.Uint64
	// Rejected counts admission-control rejections (queue full, draining).
	Rejected atomic.Uint64
	// BadRequests counts malformed requests (400s).
	BadRequests atomic.Uint64
	// Infeasible counts solves that proved the cap infeasible.
	Infeasible atomic.Uint64
	// WarmStarts and Pivots accumulate solver effort across all backend
	// solves (sweep points included).
	WarmStarts atomic.Uint64
	Pivots     atomic.Uint64
	// Panics counts panics recovered anywhere in the service — a solve
	// worker or an HTTP handler. Each one is a contained 500 (or a clean
	// worker retry), never a daemon death.
	Panics atomic.Uint64
	// Degraded counts solve responses served from below the fallback
	// ladder's top rung; the Fallback* counters break them out by the rung
	// that produced the schedule.
	Degraded          atomic.Uint64
	FallbackDense     atomic.Uint64
	FallbackHeuristic atomic.Uint64
	FallbackStatic    atomic.Uint64
	// SolveRetries counts backoff retries the ladder spent on numerical
	// failures before succeeding or descending.
	SolveRetries atomic.Uint64
	// CacheErrors counts cache-backend faults (injected or real) that forced
	// a request to bypass the schedule cache and solve directly.
	CacheErrors atomic.Uint64
	// WindowedSolves counts solves routed through the windowed large-trace
	// decomposition (?windows= / ?coarsen_eps=); WindowsSolved accumulates
	// the realized window counts across them, WindowCommitSolves the
	// phase-B re-solves, WindowWarmStartHits the commit solves that repaired
	// a speculative basis (their ratio is the fleet warm-start hit rate),
	// and WindowEscalations the infeasible windows that had to widen.
	WindowedSolves      atomic.Uint64
	WindowsSolved       atomic.Uint64
	WindowCommitSolves  atomic.Uint64
	WindowWarmStartHits atomic.Uint64
	WindowEscalations   atomic.Uint64
	// WindowSeamViolationW tracks the worst cap excess observed at any
	// window seam (floating-point noise unless stitching is broken);
	// WindowStitchGapPct the worst stitched-vs-simulated makespan gap.
	WindowSeamViolationW FloatMaxGauge
	WindowStitchGapPct   FloatMaxGauge
	// ClusterAllocations counts completed /v1/cluster allocations (cache
	// hits excluded — only fresh allocator runs); ClusterJobsAllocated the
	// jobs they placed; ClusterConverged the allocations that reached the
	// market's marginal-spread tolerance; ClusterDegradedJobs the jobs
	// frozen at a last-good cap after a mid-allocation solver breakdown;
	// ClusterInfeasible the requests whose budget fell below the sum of
	// per-job feasibility floors. ClusterIterations is the distribution of
	// allocator iterations per run, and ClusterMovedWatts accumulates the
	// watt-volume the allocator redistributed away from its starting split.
	ClusterAllocations   atomic.Uint64
	ClusterJobsAllocated atomic.Uint64
	ClusterConverged     atomic.Uint64
	ClusterDegradedJobs  atomic.Uint64
	ClusterInfeasible    atomic.Uint64
	ClusterIterations    CountHistogram
	ClusterMovedWatts    FloatCounter
	// ShedDeadline counts solves rejected by deadline-aware shedding (the
	// controller judged they could not finish inside their deadline);
	// ShedRetryBudget counts retries rejected because the retry-budget
	// token bucket was empty. Both are rendered as pcschedd_shed_total
	// broken out by reason; both answer 429 + Retry-After.
	ShedDeadline    atomic.Uint64
	ShedRetryBudget atomic.Uint64
	// AdaptEpochs counts control-plane epochs stepped; AdaptTransitions the
	// brownout-ladder transitions among them; BrownoutSolves the solves the
	// active rung rerouted onto a cheaper mode.
	AdaptEpochs      atomic.Uint64
	AdaptTransitions atomic.Uint64
	BrownoutSolves   atomic.Uint64
	// LP numerical-health families (DESIGN.md §16), accumulated across
	// every backend solve: basis reinversions, LU threshold-pivoting row
	// rejections, factorizations retried under strict pivoting, NaN/Inf
	// refactorize-and-retry repairs, anti-cycling (Bland) fallbacks, and
	// presolve eliminations. LPMaxEtaLen tracks the worst product-form
	// update-file growth and LPRowNormRatio the worst post-scaling max/min
	// row-norm ratio — the two conditioning proxies.
	LPRefactorizations atomic.Uint64
	LPPivotRejections  atomic.Uint64
	LPTauRetries       atomic.Uint64
	LPNaNRecoveries    atomic.Uint64
	LPBlandActivations atomic.Uint64
	LPPresolveRows     atomic.Uint64
	LPPresolveCols     atomic.Uint64
	LPMaxEtaLen        FloatMaxGauge
	LPRowNormRatio     FloatMaxGauge
	// TracedRequests counts requests that asked for (and got) an inline
	// trace (?trace=1); TraceSpansDropped accumulates spans those traces
	// discarded at their bound, so truncation is visible fleet-wide.
	TracedRequests    atomic.Uint64
	TraceSpansDropped atomic.Uint64
	// Inflight is the number of API requests currently inside a handler.
	Inflight atomic.Int64

	// QueueWait measures time spent waiting for a worker slot;
	// SolveLatency the backend solve alone; RequestLatency the full
	// handler (decode → respond).
	QueueWait      Histogram
	SolveLatency   Histogram
	RequestLatency Histogram

	// stages holds per-pipeline-stage latency histograms keyed by obs span
	// name (lp.phase1, problem.build, resilience.sparse, …), fed by
	// harvesting each traced request's spans after the handler returns.
	// The resilience.<rung> entries double as the per-rung ladder latency
	// histograms.
	stageMu sync.Mutex
	stages  map[string]*Histogram
}

// ObserveStage records one pipeline-stage duration under the stage's span
// name. Stage names become label values, so only obs span names (a fixed,
// code-defined vocabulary) should reach here.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.stageMu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		if m.stages == nil {
			m.stages = make(map[string]*Histogram)
		}
		h = &Histogram{}
		m.stages[stage] = h
	}
	m.stageMu.Unlock()
	h.Observe(d)
}

// StageNames lists the stages observed so far, sorted.
func (m *Metrics) StageNames() []string {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	names := make([]string, 0, len(m.stages))
	for n := range m.stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FloatMaxGauge is a lock-free running-maximum gauge over non-negative
// float64 samples. Non-negative IEEE-754 floats order identically to their
// bit patterns, so the maximum is a plain CompareAndSwap loop on the bits.
// The zero value reads 0.
type FloatMaxGauge struct{ bits atomic.Uint64 }

// StoreMax raises the gauge to v if v exceeds the current maximum.
// Negative samples are clamped to 0 (the gauge tracks violations/gaps,
// where negative means "none").
func (g *FloatMaxGauge) StoreMax(v float64) {
	if v <= 0 {
		return
	}
	nb := math.Float64bits(v)
	for {
		ob := g.bits.Load()
		if ob >= nb || g.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// Load reports the maximum observed so far.
func (g *FloatMaxGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatCounter is a lock-free monotonically increasing float64 counter
// (CompareAndSwap on the bits) for accumulating physical quantities —
// watt-volume, joules — where integer counters lose the fractions.
// The zero value reads 0.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increases the counter by v; non-positive deltas are ignored (the
// counter is monotone by contract).
func (c *FloatCounter) Add(v float64) {
	if v <= 0 || math.IsNaN(v) {
		return
	}
	for {
		ob := c.bits.Load()
		nb := math.Float64bits(math.Float64frombits(ob) + v)
		if c.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// Load reports the accumulated total.
func (c *FloatCounter) Load() float64 { return math.Float64frombits(c.bits.Load()) }

// countBounds are the CountHistogram bucket upper bounds: powers of two
// from 1 to 256, matched to iteration-style counts (a converged market run
// takes a handful to a few dozen transfers; MaxIterations defaults to 64).
var countBounds = [...]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// CountHistogram is a fixed-bucket histogram over small non-negative
// integer observations (allocator iterations, retries) with atomic
// counters. The latency Histogram's seconds-scaled buckets are useless for
// counts; this one buckets at powers of two. The zero value is ready.
type CountHistogram struct {
	counts [len(countBounds) + 1]atomic.Uint64 // +1 for +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one count.
func (h *CountHistogram) Observe(n int) {
	if n < 0 {
		n = 0
	}
	v := float64(n)
	i := 0
	for ; i < len(countBounds); i++ {
		if v <= countBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(uint64(n))
	h.count.Add(1)
}

// Count reports how many observations the histogram holds.
func (h *CountHistogram) Count() uint64 { return h.count.Load() }

// writeCountHistogram renders one count histogram in Prometheus text format.
func writeCountHistogram(w io.Writer, name string, h *CountHistogram) {
	var cum uint64
	for i, b := range countBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.counts[len(countBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// latencyBounds are the histogram bucket upper bounds in seconds,
// log-spaced from 5 µs to 30 s — pipeline stages run from microseconds
// (a cached frontier lookup, one refactorization) through sub-ms cache
// hits up to tens of seconds (32-rank cold solves).
var latencyBounds = [...]float64{
	0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram with atomic counters. The
// zero value is ready to use (buckets are latencyBounds).
type Histogram struct {
	counts [len(latencyBounds) + 1]atomic.Uint64 // +1 for +Inf
	sumNS  atomic.Int64
	count  atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBounds); i++ {
		if s <= latencyBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count reports how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile approximates the q'th quantile (0 < q < 1) by linear
// interpolation within the containing bucket; the +Inf bucket reports its
// lower bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	lower := 0.0
	for i := 0; i <= len(latencyBounds); i++ {
		c := h.counts[i].Load()
		if cum+c > target {
			if i == len(latencyBounds) {
				return lower // open-ended bucket: report its floor
			}
			upper := latencyBounds[i]
			if c == 0 {
				return upper
			}
			frac := float64(target-cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum += c
		if i < len(latencyBounds) {
			lower = latencyBounds[i]
		}
	}
	return lower
}

// writeHistogram renders one histogram series in Prometheus text format.
// labels, when non-empty, is a rendered label pair ("stage=\"lp.solve\"")
// spliced into every sample of the series (alongside le on buckets).
func writeHistogram(w io.Writer, name string, h *Histogram) {
	writeHistogramLabeled(w, name, "", h)
}

func writeHistogramLabeled(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	var cum uint64
	for i, b := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, sep, b, cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, time.Duration(h.sumNS.Load()).Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// writeMeta emits the # HELP / # TYPE preamble of one metric family.
func writeMeta(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// Render writes every counter and histogram in Prometheus text format,
// each family preceded by its # HELP and # TYPE metadata.
func (m *Metrics) Render(w io.Writer) {
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"pcschedd_requests_total", "API requests accepted into a handler.", m.Requests.Load()},
		{"pcschedd_solves_total", "Backend LP solves run to completion.", m.Solves.Load()},
		{"pcschedd_cache_hits_total", "Requests served without a backend solve (LRU hits plus coalesced).", m.CacheHits.Load()},
		{"pcschedd_cache_misses_total", "Requests that ran a backend solve.", m.CacheMisses.Load()},
		{"pcschedd_coalesced_total", "Cache hits that joined an in-flight identical solve.", m.Coalesced.Load()},
		{"pcschedd_canceled_total", "Requests abandoned by deadline or client disconnect.", m.Canceled.Load()},
		{"pcschedd_rejected_total", "Admission-control rejections (queue full or draining).", m.Rejected.Load()},
		{"pcschedd_bad_requests_total", "Malformed requests answered 400.", m.BadRequests.Load()},
		{"pcschedd_infeasible_total", "Solves that proved the power cap infeasible.", m.Infeasible.Load()},
		{"pcschedd_warm_starts_total", "LP solves that reused a prior basis.", m.WarmStarts.Load()},
		{"pcschedd_pivots_total", "Simplex pivots across all backend solves.", m.Pivots.Load()},
		{"pcschedd_panics_total", "Panics recovered in handlers or solve workers.", m.Panics.Load()},
		{"pcschedd_degraded_total", "Solve responses served from below the ladder's top rung.", m.Degraded.Load()},
		{"pcschedd_fallback_dense_total", "Degraded responses produced by the dense LP rung.", m.FallbackDense.Load()},
		{"pcschedd_fallback_heuristic_total", "Degraded responses produced by the slack-aware heuristic rung.", m.FallbackHeuristic.Load()},
		{"pcschedd_fallback_static_total", "Degraded responses produced by the static fair-share rung.", m.FallbackStatic.Load()},
		{"pcschedd_solve_retries_total", "Backoff retries spent on numerical solve failures.", m.SolveRetries.Load()},
		{"pcschedd_cache_errors_total", "Cache faults that forced a request to bypass the schedule cache.", m.CacheErrors.Load()},
		{"pcschedd_traced_requests_total", "Requests that returned an inline trace (?trace=1).", m.TracedRequests.Load()},
		{"pcschedd_trace_spans_dropped_total", "Spans discarded because a request trace hit its span bound.", m.TraceSpansDropped.Load()},
		{"pcschedd_windowed_solves_total", "Solves routed through the windowed large-trace decomposition.", m.WindowedSolves.Load()},
		{"pcschedd_windows_solved_total", "Event windows solved across all windowed solves.", m.WindowsSolved.Load()},
		{"pcschedd_window_commit_solves_total", "Windowed phase-B commit re-solves (boundary-exact windows reuse their speculative solution instead).", m.WindowCommitSolves.Load()},
		{"pcschedd_window_warm_start_hits_total", "Commit solves that repaired a speculative basis with dual pivots.", m.WindowWarmStartHits.Load()},
		{"pcschedd_window_escalations_total", "Infeasible commit windows widened by the escalation ladder.", m.WindowEscalations.Load()},
		{"pcschedd_cluster_allocations_total", "Completed cluster power allocations (fresh allocator runs; cache hits excluded).", m.ClusterAllocations.Load()},
		{"pcschedd_cluster_jobs_allocated_total", "Jobs placed across all cluster allocations.", m.ClusterJobsAllocated.Load()},
		{"pcschedd_cluster_converged_total", "Cluster allocations that reached the marginal-spread tolerance.", m.ClusterConverged.Load()},
		{"pcschedd_cluster_degraded_jobs_total", "Jobs frozen at a last-good cap after a mid-allocation solver breakdown.", m.ClusterDegradedJobs.Load()},
		{"pcschedd_cluster_infeasible_total", "Cluster requests whose budget fell below the sum of per-job feasibility floors.", m.ClusterInfeasible.Load()},
		{"pcschedd_adapt_epochs_total", "Adaptive control-plane epochs stepped.", m.AdaptEpochs.Load()},
		{"pcschedd_adapt_transitions_total", "Brownout-ladder transitions (either direction).", m.AdaptTransitions.Load()},
		{"pcschedd_brownout_solves_total", "Solves rerouted onto a cheaper mode by the active brownout rung.", m.BrownoutSolves.Load()},
		{"pcschedd_lp_refactorizations_total", "Sparse-backend basis reinversions across all solves.", m.LPRefactorizations.Load()},
		{"pcschedd_lp_pivot_rejections_total", "LU threshold-pivoting row rejections during factorization.", m.LPPivotRejections.Load()},
		{"pcschedd_lp_factor_tau_retries_total", "Factorizations that fell back from relaxed to strict partial pivoting.", m.LPTauRetries.Load()},
		{"pcschedd_lp_nan_recoveries_total", "Refactorize-and-retry repairs of non-finite solver state.", m.LPNaNRecoveries.Load()},
		{"pcschedd_lp_bland_activations_total", "Anti-cycling (Bland's rule) fallback engagements.", m.LPBlandActivations.Load()},
		{"pcschedd_lp_presolve_rows_total", "Constraint rows eliminated by presolve across all solves.", m.LPPresolveRows.Load()},
		{"pcschedd_lp_presolve_cols_total", "Columns eliminated by presolve across all solves.", m.LPPresolveCols.Load()},
	}
	for _, c := range counters {
		writeMeta(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}

	// Shed rejections, broken out by reason. Both label values render
	// unconditionally so the family always carries samples (the metrics
	// conformance test requires every declared family to be scrapeable).
	writeMeta(w, "pcschedd_shed_total", "Requests shed by the adaptive control plane, by reason.", "counter")
	fmt.Fprintf(w, "pcschedd_shed_total{reason=\"deadline\"} %d\n", m.ShedDeadline.Load())
	fmt.Fprintf(w, "pcschedd_shed_total{reason=\"retry_budget\"} %d\n", m.ShedRetryBudget.Load())

	writeMeta(w, "pcschedd_inflight_requests", "API requests currently inside a handler.", "gauge")
	fmt.Fprintf(w, "pcschedd_inflight_requests %d\n", m.Inflight.Load())

	writeMeta(w, "pcschedd_window_seam_violation_watts_max", "Worst cap excess observed at any window seam since start.", "gauge")
	fmt.Fprintf(w, "pcschedd_window_seam_violation_watts_max %g\n", m.WindowSeamViolationW.Load())
	writeMeta(w, "pcschedd_window_stitch_gap_pct_max", "Worst stitched-vs-simulated makespan gap (percent) since start.", "gauge")
	fmt.Fprintf(w, "pcschedd_window_stitch_gap_pct_max %g\n", m.WindowStitchGapPct.Load())

	writeMeta(w, "pcschedd_lp_max_eta_len", "Peak basis-update (eta) file length observed across all solves.", "gauge")
	fmt.Fprintf(w, "pcschedd_lp_max_eta_len %g\n", m.LPMaxEtaLen.Load())
	writeMeta(w, "pcschedd_lp_row_norm_ratio_max", "Worst post-scaling max/min row-norm ratio (conditioning proxy).", "gauge")
	fmt.Fprintf(w, "pcschedd_lp_row_norm_ratio_max %g\n", m.LPRowNormRatio.Load())

	writeMeta(w, "pcschedd_cluster_moved_watts_total", "Watt-volume the cluster allocator redistributed away from its starting split.", "counter")
	fmt.Fprintf(w, "pcschedd_cluster_moved_watts_total %g\n", m.ClusterMovedWatts.Load())

	writeMeta(w, "pcschedd_cluster_iterations", "Allocator iterations per cluster allocation.", "histogram")
	writeCountHistogram(w, "pcschedd_cluster_iterations", &m.ClusterIterations)

	writeMeta(w, "pcschedd_queue_wait_seconds", "Time spent waiting for a solve worker slot.", "histogram")
	writeHistogram(w, "pcschedd_queue_wait_seconds", &m.QueueWait)
	writeMeta(w, "pcschedd_solve_latency_seconds", "Backend solve time alone.", "histogram")
	writeHistogram(w, "pcschedd_solve_latency_seconds", &m.SolveLatency)
	writeMeta(w, "pcschedd_request_latency_seconds", "Full handler time, decode to respond.", "histogram")
	writeHistogram(w, "pcschedd_request_latency_seconds", &m.RequestLatency)

	stages := m.StageNames()
	if len(stages) > 0 {
		writeMeta(w, "pcschedd_stage_latency_seconds",
			"Per-pipeline-stage latency by obs span name (resilience.* entries are the per-rung ladder latencies).",
			"histogram")
		for _, name := range stages {
			m.stageMu.Lock()
			h := m.stages[name]
			m.stageMu.Unlock()
			writeHistogramLabeled(w, "pcschedd_stage_latency_seconds", fmt.Sprintf("stage=%q", name), h)
		}
	}
}
