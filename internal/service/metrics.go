package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Observability layer: lock-free counters and latency histograms exposed in
// a Prometheus-compatible text format at /metrics. Everything is plain
// atomics — the service's hot path (cache hit) must not take a lock to be
// counted.

// Metrics aggregates the service's counters and histograms. All fields are
// safe for concurrent use; read them with atomic loads (or Snapshot).
type Metrics struct {
	// Requests counts every API request accepted into a handler
	// (including ones later rejected by admission control).
	Requests atomic.Uint64
	// Solves counts backend LP solves that ran to completion. The
	// singleflight load test's "exactly 1 backend solve for 64 identical
	// requests" asserts on this counter.
	Solves atomic.Uint64
	// CacheHits counts requests served without a backend solve: LRU hits
	// plus requests coalesced onto an in-flight identical solve.
	CacheHits atomic.Uint64
	// CacheMisses counts requests that had to run a backend solve.
	CacheMisses atomic.Uint64
	// Coalesced is the subset of CacheHits that joined an in-flight solve
	// (singleflight) rather than finding a finished schedule.
	Coalesced atomic.Uint64
	// Canceled counts requests abandoned by deadline or client disconnect,
	// observed as a cancellation surfacing from the LP pivot loops.
	Canceled atomic.Uint64
	// Rejected counts admission-control rejections (queue full, draining).
	Rejected atomic.Uint64
	// BadRequests counts malformed requests (400s).
	BadRequests atomic.Uint64
	// Infeasible counts solves that proved the cap infeasible.
	Infeasible atomic.Uint64
	// WarmStarts and Pivots accumulate solver effort across all backend
	// solves (sweep points included).
	WarmStarts atomic.Uint64
	Pivots     atomic.Uint64
	// Panics counts panics recovered anywhere in the service — a solve
	// worker or an HTTP handler. Each one is a contained 500 (or a clean
	// worker retry), never a daemon death.
	Panics atomic.Uint64
	// Degraded counts solve responses served from below the fallback
	// ladder's top rung; the Fallback* counters break them out by the rung
	// that produced the schedule.
	Degraded          atomic.Uint64
	FallbackDense     atomic.Uint64
	FallbackHeuristic atomic.Uint64
	FallbackStatic    atomic.Uint64
	// SolveRetries counts backoff retries the ladder spent on numerical
	// failures before succeeding or descending.
	SolveRetries atomic.Uint64
	// CacheErrors counts cache-backend faults (injected or real) that forced
	// a request to bypass the schedule cache and solve directly.
	CacheErrors atomic.Uint64
	// Inflight is the number of API requests currently inside a handler.
	Inflight atomic.Int64

	// QueueWait measures time spent waiting for a worker slot;
	// SolveLatency the backend solve alone; RequestLatency the full
	// handler (decode → respond).
	QueueWait      Histogram
	SolveLatency   Histogram
	RequestLatency Histogram
}

// latencyBounds are the histogram bucket upper bounds in seconds,
// log-spaced from 100 µs to 30 s — scheduling solves span from sub-ms
// (cache hits) to tens of seconds (32-rank cold solves).
var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram with atomic counters. The
// zero value is ready to use (buckets are latencyBounds).
type Histogram struct {
	counts [len(latencyBounds) + 1]atomic.Uint64 // +1 for +Inf
	sumNS  atomic.Int64
	count  atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBounds); i++ {
		if s <= latencyBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count reports how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile approximates the q'th quantile (0 < q < 1) by linear
// interpolation within the containing bucket; the +Inf bucket reports its
// lower bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	lower := 0.0
	for i := 0; i <= len(latencyBounds); i++ {
		c := h.counts[i].Load()
		if cum+c > target {
			if i == len(latencyBounds) {
				return lower // open-ended bucket: report its floor
			}
			upper := latencyBounds[i]
			if c == 0 {
				return upper
			}
			frac := float64(target-cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum += c
		if i < len(latencyBounds) {
			lower = latencyBounds[i]
		}
	}
	return lower
}

// writeHistogram renders one histogram in Prometheus text format.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	var cum uint64
	for i, b := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(h.sumNS.Load()).Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// Render writes every counter and histogram in Prometheus text format.
func (m *Metrics) Render(w io.Writer) {
	counters := []struct {
		name string
		v    uint64
	}{
		{"pcschedd_requests_total", m.Requests.Load()},
		{"pcschedd_solves_total", m.Solves.Load()},
		{"pcschedd_cache_hits_total", m.CacheHits.Load()},
		{"pcschedd_cache_misses_total", m.CacheMisses.Load()},
		{"pcschedd_coalesced_total", m.Coalesced.Load()},
		{"pcschedd_canceled_total", m.Canceled.Load()},
		{"pcschedd_rejected_total", m.Rejected.Load()},
		{"pcschedd_bad_requests_total", m.BadRequests.Load()},
		{"pcschedd_infeasible_total", m.Infeasible.Load()},
		{"pcschedd_warm_starts_total", m.WarmStarts.Load()},
		{"pcschedd_pivots_total", m.Pivots.Load()},
		{"pcschedd_panics_total", m.Panics.Load()},
		{"pcschedd_degraded_total", m.Degraded.Load()},
		{"pcschedd_fallback_dense_total", m.FallbackDense.Load()},
		{"pcschedd_fallback_heuristic_total", m.FallbackHeuristic.Load()},
		{"pcschedd_fallback_static_total", m.FallbackStatic.Load()},
		{"pcschedd_solve_retries_total", m.SolveRetries.Load()},
		{"pcschedd_cache_errors_total", m.CacheErrors.Load()},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	fmt.Fprintf(w, "pcschedd_inflight_requests %d\n", m.Inflight.Load())
	writeHistogram(w, "pcschedd_queue_wait_seconds", &m.QueueWait)
	writeHistogram(w, "pcschedd_solve_latency_seconds", &m.SolveLatency)
	writeHistogram(w, "pcschedd_request_latency_seconds", &m.RequestLatency)
}
