package coarsen

import (
	"math"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
	"powercap/internal/workloads"
)

// chainGraph builds a single-rank graph whose compute tasks are separated
// by Wait vertices (purely local ordering points), the shape coarsening
// merges through.
func chainGraph(t *testing.T, works []float64, shapes []machine.Shape) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder(1)
	for i, w := range works {
		b.Compute(0, w, shapes[i], "chain")
		if i < len(works)-1 {
			b.Wait(0)
		}
	}
	g := b.Finalize()
	if err := g.Validate(); err != nil {
		t.Fatalf("chain graph invalid: %v", err)
	}
	return g
}

func uniformShapes(n int, s machine.Shape) []machine.Shape {
	out := make([]machine.Shape, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func computeCount(g *dag.Graph) int { return len(g.ComputeTasks()) }

func TestCoarsenEpsilonBoundaries(t *testing.T) {
	base := machine.DefaultShape()
	alt := base
	alt.MemFrac += 0.2

	cases := []struct {
		name         string
		works        []float64
		shapes       []machine.Shape
		eps          float64
		wantComputes int
	}{
		{
			name:  "merges chain below eps",
			works: []float64{1e-3, 1e-3, 1e-3}, shapes: uniformShapes(3, base),
			eps: 3.5e-3, wantComputes: 1,
		},
		{
			name:  "eps boundary is inclusive",
			works: []float64{1e-3, 1e-3, 1e-3}, shapes: uniformShapes(3, base),
			eps: 3e-3, wantComputes: 1,
		},
		{
			name:  "eps just below total merges a prefix only",
			works: []float64{1e-3, 1e-3, 1e-3}, shapes: uniformShapes(3, base),
			eps: 2.5e-3, wantComputes: 2,
		},
		{
			name:  "eps below any pair disables merging",
			works: []float64{1e-3, 1e-3, 1e-3}, shapes: uniformShapes(3, base),
			eps: 1.5e-3, wantComputes: 3,
		},
		{
			name:  "eps zero is identity",
			works: []float64{1e-3, 1e-3}, shapes: uniformShapes(2, base),
			eps: 0, wantComputes: 2,
		},
		{
			name:  "zero-duration tasks merge freely",
			works: []float64{0, 0, 0, 0}, shapes: uniformShapes(4, base),
			eps: 1e-9, wantComputes: 1,
		},
		{
			name:  "zero-work joins a tunable chain",
			works: []float64{1e-3, 0, 1e-3}, shapes: uniformShapes(3, base),
			eps: 2e-3, wantComputes: 1,
		},
		{
			name:  "shape mismatch never merges",
			works: []float64{1e-3, 1e-3}, shapes: []machine.Shape{base, alt},
			eps: 1, wantComputes: 2,
		},
		{
			name:  "zero-work bridges only identical shapes",
			works: []float64{1e-3, 0, 1e-3}, shapes: []machine.Shape{base, base, alt},
			eps: 1, wantComputes: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := chainGraph(t, tc.works, tc.shapes)
			cg, m, err := Coarsen(g, tc.eps)
			if err != nil {
				t.Fatalf("Coarsen: %v", err)
			}
			if got := computeCount(cg); got != tc.wantComputes {
				t.Fatalf("got %d compute tasks, want %d", got, tc.wantComputes)
			}
			// The mapping must partition the original task set exactly.
			seen := make(map[dag.TaskID]bool)
			for _, group := range m.Groups {
				for _, tid := range group {
					if seen[tid] {
						t.Fatalf("task %d appears in two groups", tid)
					}
					seen[tid] = true
				}
			}
			if len(seen) != len(g.Tasks) {
				t.Fatalf("groups cover %d of %d original tasks", len(seen), len(g.Tasks))
			}
			if wantWork, gotWork := totalWork(g), totalWork(cg); math.Abs(wantWork-gotWork) > 1e-15 {
				t.Fatalf("total work changed: %v -> %v", wantWork, gotWork)
			}
		})
	}
}

func totalWork(g *dag.Graph) float64 {
	s := 0.0
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			s += t.Work
		}
	}
	return s
}

// TestCoarsenNeverCrossesMessageEdges: chains spanning a message edge (or
// its Send/Recv endpoints) must never merge, whatever epsilon allows.
func TestCoarsenNeverCrossesMessageEdges(t *testing.T) {
	shape := machine.DefaultShape()
	b := dag.NewBuilder(2)
	b.Compute(0, 1e-4, shape, "pre")
	b.Isend(0, 1, 1024)
	b.Compute(0, 1e-4, shape, "mid")
	b.Wait(0)
	b.Compute(0, 1e-4, shape, "post")
	b.Compute(1, 1e-4, shape, "pre")
	b.Recv(1, 0)
	b.Compute(1, 1e-4, shape, "post")
	g := b.Finalize()
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}

	cg, m, err := Coarsen(g, 1.0) // epsilon far above every chain
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	var msgs int
	for _, task := range cg.Tasks {
		if task.Kind == dag.Message {
			msgs++
		}
	}
	if msgs != 1 {
		t.Fatalf("message edges changed: got %d, want 1", msgs)
	}
	// Rank 0's "mid" and "post" merge through the Wait vertex, but nothing
	// merges across the Isend or Recv vertices.
	for ct, group := range m.Groups {
		if len(group) < 2 {
			continue
		}
		for _, tid := range group[:len(group)-1] {
			dst := g.Tasks[tid].Dst
			if k := g.Vertices[dst].Kind; k != dag.VWait {
				t.Fatalf("coarse task %d merged across a %v vertex", ct, k)
			}
		}
	}
	if got := computeCount(cg); got >= computeCount(g) {
		t.Fatalf("expected the Wait chain to merge (got %d >= %d compute tasks)", got, computeCount(g))
	}
}

// maxConfigPoints fills simulator points with every compute task at the
// machine's maximum configuration — the problem IR's initial schedule.
func maxConfigPoints(model *machine.Model, g *dag.Graph) []sim.TaskPoint {
	pts := sim.Points(g)
	maxCfg := model.MaxConfig()
	for i, task := range g.Tasks {
		if task.Kind != dag.Compute {
			continue
		}
		pts[i] = sim.TaskPoint{
			Duration: model.Duration(task.Work, task.Shape, maxCfg),
			PowerW:   model.Power(task.Shape, maxCfg, 1),
		}
	}
	return pts
}

// TestCoarsenRoundTripMakespan: expand(coarsen(g)) must reproduce the
// simulator makespan of the original graph exactly (durations are linear in
// work within a shape class), and ExpandVertexTimes must land every removed
// interior vertex at its original firing time.
func TestCoarsenRoundTripMakespan(t *testing.T) {
	model := machine.Default()
	for _, wl := range []string{"SP", "LULESH"} {
		w, err := workloads.ByName(wl, workloads.Params{Ranks: 4, Iterations: 3, Seed: 1, WorkScale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		g := w.Graph
		cg, m, err := Coarsen(g, 5e-3)
		if err != nil {
			t.Fatalf("%s: Coarsen: %v", wl, err)
		}
		orig, err := sim.Evaluate(g, maxConfigPoints(model, g), sim.SlackHoldsTaskPower, 0)
		if err != nil {
			t.Fatalf("%s: sim original: %v", wl, err)
		}
		coarse, err := sim.Evaluate(cg, maxConfigPoints(model, cg), sim.SlackHoldsTaskPower, 0)
		if err != nil {
			t.Fatalf("%s: sim coarse: %v", wl, err)
		}
		if d := math.Abs(orig.Makespan - coarse.Makespan); d > 1e-12*math.Max(1, orig.Makespan) {
			t.Fatalf("%s: makespan changed by %g (%v -> %v, merged %d tasks)",
				wl, d, orig.Makespan, coarse.Makespan, m.MergedTasks)
		}
		if m.Identity() {
			continue
		}
		coarseDur := make([]float64, len(cg.Tasks))
		for i := range cg.Tasks {
			coarseDur[i] = coarse.End[i] - coarse.Start[i]
		}
		vt := m.ExpandVertexTimes(coarse.VertexTime, coarseDur)
		for ov := range g.Vertices {
			if math.Abs(vt[ov]-orig.VertexTime[ov]) > 1e-9*math.Max(1, orig.Makespan) {
				t.Fatalf("%s: vertex %d time %v, want %v", wl, ov, vt[ov], orig.VertexTime[ov])
			}
		}
	}
}
