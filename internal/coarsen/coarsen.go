// Package coarsen shrinks application DAGs before the LP sees them: maximal
// chains of short same-rank compute tasks are merged into single tasks when
// their combined work stays below a caller-chosen epsilon, with an exact
// bookkeeping map so solved schedules expand back to the original task
// granularity without approximation.
//
// The merge is exact for everything downstream of the problem IR because a
// task's duration at any frontier configuration is linear in its work
// (Columns.Durs[k] = F.Pts[k].TimeS * work): a merged task of work
// w1 + w2 run at configuration k takes exactly as long as the two
// constituents run back to back at k, provided both constituents share the
// same response shape (and hence the same frontier). Coarsening therefore
// only reduces the LP's *power reallocation resolution* — the merged chain
// must run at one (mixed) operating point instead of re-deciding per
// sub-task — which is precisely the fidelity/size trade the windowed solver
// wants to make on 100k-event traces dominated by sub-epsilon tasks.
//
// Chains never cross message edges, collectives, iteration boundaries, or
// rank changes: a vertex is removable only when it is a purely local
// ordering point (one compute in, one compute out, same rank — in builder
// graphs these are the Wait vertices of already-completed eager sends).
package coarsen

import (
	"fmt"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

// Mapping records how a coarse graph was derived from its original, with
// enough structure to expand any per-coarse-task decision back to original
// task granularity exactly.
type Mapping struct {
	// Orig and Coarse are the two graphs the mapping connects. With
	// epsilon <= 0 (coarsening disabled) Coarse is Orig itself and every
	// map below is the identity.
	Orig   *dag.Graph
	Coarse *dag.Graph
	// EpsWorkS is the epsilon the mapping was built with: the maximum
	// cumulative work (seconds at one thread, max frequency) of a merged
	// chain.
	EpsWorkS float64

	// VertexOrig maps each coarse vertex to the original vertex it kept.
	VertexOrig []dag.VertexID
	// CoarseVertex maps each original vertex to its coarse vertex, or -1
	// for interior vertices removed by a merge.
	CoarseVertex []dag.VertexID
	// Groups lists, per coarse task, the original tasks it stands for in
	// chain order (length 1 for unmerged tasks).
	Groups [][]dag.TaskID
	// Interior lists, per coarse task, the removed original vertices
	// between its constituents in chain order (length len(group)-1).
	Interior [][]dag.VertexID
	// TaskCoarse maps each original task to the coarse task containing it.
	TaskCoarse []dag.TaskID

	// MergedTasks counts original tasks eliminated (original - coarse);
	// MergedVertices counts removed interior vertices.
	MergedTasks    int
	MergedVertices int
}

// Identity reports whether the mapping is a no-op (epsilon disabled or
// nothing merged).
func (m *Mapping) Identity() bool { return m.Coarse == m.Orig }

// Fractions returns each constituent's share of coarse task ct's work, in
// chain order. Shares sum to 1 for groups with positive work; an all-zero
// group (merged degenerate tasks) returns all zeros, consistent with its
// zero duration at every configuration.
func (m *Mapping) Fractions(ct dag.TaskID) []float64 {
	group := m.Groups[ct]
	out := make([]float64, len(group))
	total := 0.0
	for _, tid := range group {
		total += m.Orig.Tasks[tid].Work
	}
	if total <= 0 {
		return out
	}
	for i, tid := range group {
		out[i] = m.Orig.Tasks[tid].Work / total
	}
	return out
}

// ExpandVertexTimes maps coarse vertex times back onto the original graph.
// Kept vertices take their coarse time directly; removed interior vertices
// are reconstructed from the chain's source time plus the work-proportional
// share of the coarse task's chosen duration, which is exact because every
// constituent runs at the merged task's operating point. coarseDur gives
// each coarse task's chosen duration (seconds).
func (m *Mapping) ExpandVertexTimes(coarseVT, coarseDur []float64) []float64 {
	out := make([]float64, len(m.Orig.Vertices))
	for ov := range out {
		out[ov] = -1
	}
	for cv, ov := range m.VertexOrig {
		out[ov] = coarseVT[cv]
	}
	for ct, group := range m.Groups {
		if len(group) < 2 {
			continue
		}
		fracs := m.Fractions(dag.TaskID(ct))
		t := coarseVT[m.Coarse.Tasks[ct].Src]
		for i := 0; i < len(group)-1; i++ {
			t += fracs[i] * coarseDur[ct]
			out[m.Interior[ct][i]] = t
		}
	}
	return out
}

// removable reports whether original vertex v is a purely local ordering
// point its chain may pass through: exactly one incoming and one outgoing
// task, both compute on the vertex's own rank, and the vertex is neither a
// graph terminal nor an iteration boundary the decomposed solver cuts at.
func removable(g *dag.Graph, v dag.VertexID) bool {
	vert := &g.Vertices[v]
	if vert.Kind == dag.VInit || vert.Kind == dag.VFinalize || vert.IterBoundary {
		return false
	}
	in, out := g.TasksInto(v), g.TasksFrom(v)
	if len(in) != 1 || len(out) != 1 {
		return false
	}
	ti, to := g.Task(in[0]), g.Task(out[0])
	return ti.Kind == dag.Compute && to.Kind == dag.Compute &&
		ti.Rank == vert.Rank && to.Rank == vert.Rank
}

// Coarsen merges chains of same-rank compute tasks whose cumulative work is
// at most epsWorkS seconds, returning the coarse graph and the mapping back
// to g. epsWorkS <= 0 disables coarsening (the returned graph is g itself).
// Constituents with positive work must share an identical response shape
// (so the merged frontier is exact); zero-work degenerate tasks merge into
// any chain. The coarse graph preserves relative vertex and task ID order,
// so initial-schedule tiebreaks stay aligned with the original graph.
func Coarsen(g *dag.Graph, epsWorkS float64) (*dag.Graph, *Mapping, error) {
	if epsWorkS <= 0 {
		return g, identityMapping(g), nil
	}

	nT := len(g.Tasks)
	consumed := make([]bool, nT) // true for non-first constituents of a run
	first := make([]bool, nT)    // true for the first task of a multi-task run
	runOf := make(map[dag.TaskID][]dag.TaskID)
	interiorOf := make(map[dag.TaskID][]dag.VertexID)
	removedVert := make([]bool, len(g.Vertices))

	for id := 0; id < nT; id++ {
		t := g.Task(dag.TaskID(id))
		if t.Kind != dag.Compute || consumed[id] {
			continue
		}
		run := []dag.TaskID{t.ID}
		var interior []dag.VertexID
		runWork := t.Work
		runShape := t.Shape
		hasShape := t.Work > 0
		cur := t
		for {
			v := cur.Dst
			if !removable(g, v) {
				break
			}
			next := g.Task(g.TasksFrom(v)[0])
			if consumed[next.ID] || first[next.ID] {
				break
			}
			if runWork+next.Work > epsWorkS {
				break
			}
			if next.Work > 0 {
				if hasShape && next.Shape != runShape {
					break
				}
				if !hasShape {
					runShape = next.Shape
					hasShape = true
				}
			}
			consumed[next.ID] = true
			removedVert[v] = true
			run = append(run, next.ID)
			interior = append(interior, v)
			runWork += next.Work
			cur = next
		}
		if len(run) > 1 {
			first[id] = true
			runOf[t.ID] = run
			interiorOf[t.ID] = interior
		}
	}

	m := &Mapping{
		Orig:         g,
		EpsWorkS:     epsWorkS,
		CoarseVertex: make([]dag.VertexID, len(g.Vertices)),
		TaskCoarse:   make([]dag.TaskID, nT),
	}

	cg := &dag.Graph{NumRanks: g.NumRanks}
	for ov := range g.Vertices {
		if removedVert[ov] {
			m.CoarseVertex[ov] = -1
			m.MergedVertices++
			continue
		}
		cv := dag.VertexID(len(cg.Vertices))
		m.CoarseVertex[ov] = cv
		m.VertexOrig = append(m.VertexOrig, dag.VertexID(ov))
		nv := g.Vertices[ov]
		nv.ID = cv
		cg.Vertices = append(cg.Vertices, nv)
	}

	for id := 0; id < nT; id++ {
		if consumed[id] {
			continue
		}
		t := g.Task(dag.TaskID(id))
		ct := dag.TaskID(len(cg.Tasks))
		nt := *t
		nt.ID = ct
		group := []dag.TaskID{t.ID}
		var interior []dag.VertexID
		if run, ok := runOf[t.ID]; ok {
			group = run
			interior = interiorOf[t.ID]
			last := g.Task(run[len(run)-1])
			nt.Dst = last.Dst
			nt.Work = 0
			nt.Shape, nt.Class = mergedShapeClass(g, run)
			for _, tid := range run {
				nt.Work += g.Tasks[tid].Work
			}
		}
		nt.Src = m.CoarseVertex[nt.Src]
		nt.Dst = m.CoarseVertex[nt.Dst]
		if nt.Src < 0 || nt.Dst < 0 {
			return nil, nil, fmt.Errorf("coarsen: task %d endpoint removed (internal error)", id)
		}
		for _, tid := range group {
			m.TaskCoarse[tid] = ct
		}
		m.Groups = append(m.Groups, group)
		m.Interior = append(m.Interior, interior)
		cg.Tasks = append(cg.Tasks, nt)
	}
	m.MergedTasks = nT - len(cg.Tasks)

	if m.MergedTasks == 0 {
		// Nothing merged: hand back the original graph so digest-keyed
		// caches (solver IR, service schedules) see the identical instance.
		return g, identityMapping(g), nil
	}
	if err := cg.Validate(); err != nil {
		return nil, nil, fmt.Errorf("coarsen: coarse graph invalid: %w", err)
	}
	m.Coarse = cg
	return cg, m, nil
}

// mergedShapeClass picks the merged task's response shape and class: those
// of the first positive-work constituent (all positive-work constituents
// share a shape by the merge rule), falling back to the chain head for
// all-degenerate chains.
func mergedShapeClass(g *dag.Graph, run []dag.TaskID) (machine.Shape, string) {
	for _, tid := range run {
		if g.Tasks[tid].Work > 0 {
			return g.Tasks[tid].Shape, g.Tasks[tid].Class
		}
	}
	return g.Tasks[run[0]].Shape, g.Tasks[run[0]].Class
}

func identityMapping(g *dag.Graph) *Mapping {
	m := &Mapping{
		Orig:         g,
		Coarse:       g,
		VertexOrig:   make([]dag.VertexID, len(g.Vertices)),
		CoarseVertex: make([]dag.VertexID, len(g.Vertices)),
		Groups:       make([][]dag.TaskID, len(g.Tasks)),
		Interior:     make([][]dag.VertexID, len(g.Tasks)),
		TaskCoarse:   make([]dag.TaskID, len(g.Tasks)),
	}
	for i := range g.Vertices {
		m.VertexOrig[i] = dag.VertexID(i)
		m.CoarseVertex[i] = dag.VertexID(i)
	}
	for i := range g.Tasks {
		m.Groups[i] = []dag.TaskID{dag.TaskID(i)}
		m.TaskCoarse[i] = dag.TaskID(i)
	}
	return m
}
