// Package machine models the processor sockets of the paper's test system.
//
// The paper ran on Cab, a cluster of dual-socket Xeon E5-2670 nodes: 8 cores
// per socket, socket-level DVFS over 1.2–2.6 GHz, and RAPL socket power
// capping. None of that hardware is available here, so this package provides
// an analytic stand-in (see DESIGN.md §2) with three pieces:
//
//   - a configuration space: DVFS states × OpenMP thread counts, matching
//     the paper's per-task tunables (Table 1 lists 15 frequency states at
//     0.1 GHz granularity and 1–8 threads);
//   - a time/power model mapping (task shape, work, configuration) to a
//     duration and an average socket power, producing point clouds shaped
//     like the paper's Figure 1;
//   - a RAPL-like firmware controller that, given a socket cap and a thread
//     count, selects the fastest DVFS state fitting under the cap, falling
//     back to duty-cycle clock modulation below the bottom state (the paper
//     observes RAPL pushing sockets to 22% of maximum clock, well below the
//     46% DVFS floor).
//
// All calibration constants are package-level and documented so experiments
// can reference them; they were chosen so that a fully loaded socket draws
// ≈80 W, an idle-ish one ≈12 W, and the paper's 30–80 W cap sweep spans the
// full tradeoff range.
package machine

import (
	"fmt"
	"math"
)

// Config is one runnable configuration of a socket for a computation task:
// a DVFS frequency and an OpenMP thread count (the paper's two tunables).
type Config struct {
	FreqGHz float64
	Threads int
}

// String renders the configuration like "2.6GHz/8t".
func (c Config) String() string {
	return fmt.Sprintf("%.1fGHz/%dt", c.FreqGHz, c.Threads)
}

// Model describes a socket type: its configuration space and its power
// calibration. The zero value is unusable; start from Default.
type Model struct {
	// Cores is the number of physical cores per socket (the paper fixes
	// one multithreaded MPI process per socket, max threads = cores).
	Cores int
	// FreqMinGHz..FreqMaxGHz in steps of FreqStepGHz define the DVFS
	// ladder, highest state first in Configs.
	FreqMinGHz, FreqMaxGHz, FreqStepGHz float64

	// PBaseW is the socket's fixed power floor (uncore, caches, memory
	// controller) drawn regardless of configuration.
	PBaseW float64
	// PStaticCoreW is per-active-core static/leakage power.
	PStaticCoreW float64
	// PDynCoreW is per-core dynamic power at the maximum frequency for a
	// compute-intensity-1.0 task.
	PDynCoreW float64
	// Alpha is the DVFS power exponent: dynamic power scales with
	// (f/fmax)^Alpha. Voltage scaling with frequency makes this
	// superlinear; 2.4 is a common empirical fit.
	Alpha float64
}

// Default returns the E5-2670-like calibration used throughout the
// reproduction: 8 cores, 1.2–2.6 GHz in 0.1 GHz steps (15 states).
func Default() *Model {
	// Calibration notes: a fully loaded socket (8 threads, 2.6 GHz,
	// intensity 1) draws 84 W; the same socket at the 1.2 GHz DVFS floor
	// draws ≈33 W, so a 30 W cap forces RAPL into duty-cycle modulation —
	// the paper observes exactly this ("RAPL causes Static to run some
	// processors at 22% of their maximum clock frequency while using
	// eight threads", Sec. 6.4).
	return &Model{
		Cores:        8,
		FreqMinGHz:   1.2,
		FreqMaxGHz:   2.6,
		FreqStepGHz:  0.1,
		PBaseW:       12.0,
		PStaticCoreW: 1.5,
		PDynCoreW:    7.5,
		Alpha:        2.4,
	}
}

// Fingerprint returns a compact canonical rendering of the model's
// calibration, suitable as a cache-key component: two models with equal
// fingerprints produce identical configuration spaces, durations, and
// powers for any task shape. Floats are rendered with %g at full float64
// precision ('g' with no width prints the shortest exact representation),
// so distinct calibrations cannot alias.
func (m *Model) Fingerprint() string {
	return fmt.Sprintf("cores=%d;f=%g:%g:%g;pbase=%g;pstat=%g;pdyn=%g;alpha=%g",
		m.Cores, m.FreqMinGHz, m.FreqMaxGHz, m.FreqStepGHz,
		m.PBaseW, m.PStaticCoreW, m.PDynCoreW, m.Alpha)
}

// FreqStates lists the DVFS states from highest to lowest frequency.
func (m *Model) FreqStates() []float64 {
	var out []float64
	// Iterate in integer centi-GHz to avoid accumulating float error.
	lo := int(math.Round(m.FreqMinGHz * 100))
	hi := int(math.Round(m.FreqMaxGHz * 100))
	step := int(math.Round(m.FreqStepGHz * 100))
	if step <= 0 {
		step = 10
	}
	for f := hi; f >= lo; f -= step {
		out = append(out, float64(f)/100)
	}
	return out
}

// Configs enumerates the full configuration space: every DVFS state at every
// thread count from Cores down to 1, matching the cloud of points in the
// paper's Figure 1.
func (m *Model) Configs() []Config {
	freqs := m.FreqStates()
	out := make([]Config, 0, len(freqs)*m.Cores)
	for t := m.Cores; t >= 1; t-- {
		for _, f := range freqs {
			out = append(out, Config{FreqGHz: f, Threads: t})
		}
	}
	return out
}

// Shape captures how a computation task's duration and power respond to
// configuration changes. Work is expressed separately (see Duration) so one
// Shape can describe a whole class of tasks of varying sizes.
type Shape struct {
	// SerialFrac is the Amdahl serial fraction of the CPU-bound part.
	SerialFrac float64
	// MemFrac is the fraction of single-thread full-frequency runtime
	// bound by memory, which does not speed up with frequency.
	MemFrac float64
	// MemSatThreads is the thread count at which memory bandwidth
	// saturates; the memory part stops scaling beyond it. Zero means
	// "no saturation" (scales to all cores).
	MemSatThreads int
	// ContentionCoef adds a quadratic-in-threads multiplicative penalty to
	// the CPU part — contention(n) = 1 + coef·(n−1)² — modeling shared-cache
	// thrashing, which grows superlinearly as the aggregate working set
	// overflows the last-level cache. LULESH-like tasks have this high
	// enough that 4–5 threads beat 8 under a power cap (paper Table 3).
	ContentionCoef float64
	// Intensity scales per-core dynamic power: near 1.0 for
	// compute-bound tasks, lower for memory-bound ones (stalled cores
	// draw less switching power).
	Intensity float64
}

// DefaultShape is a generic compute-heavy task: mostly parallel, modest
// memory-bound fraction, no unusual contention.
func DefaultShape() Shape {
	return Shape{
		SerialFrac:     0.03,
		MemFrac:        0.15,
		MemSatThreads:  6,
		ContentionCoef: 0.0,
		Intensity:      1.0,
	}
}

// relFreq returns f normalized to the model's maximum frequency.
func (m *Model) relFreq(freqGHz float64) float64 {
	if m.FreqMaxGHz <= 0 {
		return 1
	}
	return freqGHz / m.FreqMaxGHz
}

// Duration predicts the wall-clock time of a task with the given shape and
// amount of work (seconds at 1 thread, maximum frequency) under cfg.
//
//	t(f,n) = work · [ cpuFrac · amdahl(n) · contention(n) / (f/fmax)
//	               + memFrac  · memScale(n) ]
func (m *Model) Duration(work float64, s Shape, cfg Config) float64 {
	return m.DurationDuty(work, s, cfg, 1.0)
}

// DurationDuty is Duration with a clock-modulation duty factor in (0,1]
// applied below the DVFS floor: the CPU part slows by 1/duty.
func (m *Model) DurationDuty(work float64, s Shape, cfg Config, duty float64) float64 {
	if work <= 0 {
		return 0
	}
	n := float64(clampInt(cfg.Threads, 1, m.Cores))
	cpuFrac := 1 - s.MemFrac
	amdahl := s.SerialFrac + (1-s.SerialFrac)/n
	contention := 1 + s.ContentionCoef*(n-1)*(n-1)
	fEff := m.relFreq(cfg.FreqGHz) * duty
	if fEff < 1e-9 {
		fEff = 1e-9
	}
	cpu := cpuFrac * amdahl * contention / fEff

	memThreads := n
	if s.MemSatThreads > 0 && memThreads > float64(s.MemSatThreads) {
		memThreads = float64(s.MemSatThreads)
	}
	memAmdahl := s.SerialFrac + (1-s.SerialFrac)/memThreads
	mem := s.MemFrac * memAmdahl

	return work * (cpu + mem)
}

// Power predicts the average socket power while running a task of shape s
// under cfg. effScale is the per-socket manufacturing-variation multiplier
// (1.0 nominal): the paper notes that "differences in power efficiency
// between individual processors" create reallocation opportunities.
func (m *Model) Power(s Shape, cfg Config, effScale float64) float64 {
	return m.PowerDuty(s, cfg, effScale, 1.0)
}

// PowerDuty is Power with a clock-modulation duty factor: dynamic power
// scales linearly with duty (the clock is simply gated off part of the
// time).
func (m *Model) PowerDuty(s Shape, cfg Config, effScale float64, duty float64) float64 {
	n := float64(clampInt(cfg.Threads, 1, m.Cores))
	fRel := m.relFreq(cfg.FreqGHz)
	intensity := s.Intensity
	if intensity <= 0 {
		intensity = 1
	}
	dyn := m.PDynCoreW * intensity * math.Pow(fRel, m.Alpha) * duty
	p := m.PBaseW + n*(m.PStaticCoreW+dyn)
	if effScale > 0 {
		p *= effScale
	}
	return p
}

// IdlePower is the socket power while blocked in an MPI call with threads
// parked (used by the flow ILP, which prices slack separately from tasks).
func (m *Model) IdlePower(effScale float64) float64 {
	p := m.PBaseW + m.PStaticCoreW // one core spinning in the MPI library
	if effScale > 0 {
		p *= effScale
	}
	return p
}

// MinPower is the lowest power any configuration with the given thread
// count can draw (bottom DVFS state, duty 1).
func (m *Model) MinPower(s Shape, threads int, effScale float64) float64 {
	return m.Power(s, Config{FreqGHz: m.FreqMinGHz, Threads: threads}, effScale)
}

// CapResult is the operating point a RAPL-like controller settles on for a
// given socket cap.
type CapResult struct {
	Config Config
	// Duty is the clock-modulation duty factor in (0,1]; 1 means pure
	// DVFS was sufficient.
	Duty float64
	// PowerW is the predicted socket power at the operating point.
	PowerW float64
}

// CapConfig emulates the RAPL firmware control loop of Sec. 4.1: with the
// thread count fixed (firmware cannot change application concurrency), pick
// the highest DVFS state whose predicted power fits under capW; if even the
// bottom state exceeds the cap, engage duty-cycle modulation to squeeze
// under it (never below minDuty, matching hardware's modulation floor).
func (m *Model) CapConfig(s Shape, threads int, capW, effScale float64) CapResult {
	const minDuty = 0.125
	threads = clampInt(threads, 1, m.Cores)
	for _, f := range m.FreqStates() {
		cfg := Config{FreqGHz: f, Threads: threads}
		p := m.Power(s, cfg, effScale)
		if p <= capW {
			return CapResult{Config: cfg, Duty: 1, PowerW: p}
		}
	}
	// Below the DVFS floor: scale dynamic power via duty cycle.
	cfg := Config{FreqGHz: m.FreqMinGHz, Threads: threads}
	full := m.PowerDuty(s, cfg, effScale, 1)
	none := m.PowerDuty(s, cfg, effScale, 0) // static + base only
	duty := 1.0
	if full > none {
		duty = (capW - none) / (full - none)
	}
	if duty < minDuty {
		duty = minDuty
	}
	if duty > 1 {
		duty = 1
	}
	return CapResult{Config: cfg, Duty: duty, PowerW: m.PowerDuty(s, cfg, effScale, duty)}
}

// MaxConfig is the unconstrained operating point: all cores at top
// frequency (what a power-unprovisioned system would run).
func (m *Model) MaxConfig() Config {
	return Config{FreqGHz: m.FreqMaxGHz, Threads: m.Cores}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
