package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFreqStates(t *testing.T) {
	m := Default()
	fs := m.FreqStates()
	if len(fs) != 15 {
		t.Fatalf("got %d DVFS states, want 15 (2.6..1.2 by 0.1)", len(fs))
	}
	if fs[0] != 2.6 || fs[len(fs)-1] != 1.2 {
		t.Fatalf("range = [%v..%v], want [2.6..1.2]", fs[0], fs[len(fs)-1])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] >= fs[i-1] {
			t.Fatalf("states not strictly decreasing at %d: %v >= %v", i, fs[i], fs[i-1])
		}
	}
}

func TestConfigSpaceSize(t *testing.T) {
	m := Default()
	cfgs := m.Configs()
	if len(cfgs) != 15*8 {
		t.Fatalf("config space = %d, want 120", len(cfgs))
	}
}

func TestDurationMonotonicInFrequency(t *testing.T) {
	m := Default()
	s := DefaultShape()
	prev := math.Inf(1)
	for _, f := range m.FreqStates() {
		// FreqStates is high→low, so duration must be non-decreasing.
		d := m.Duration(1.0, s, Config{FreqGHz: f, Threads: 8})
		if d < prev-1e-12 {
			// iterating high→low freq means durations should increase
		}
		if d+1e-12 < prev && f != m.FreqMaxGHz {
			_ = d
		}
		prev = d
	}
	dHi := m.Duration(1.0, s, Config{FreqGHz: m.FreqMaxGHz, Threads: 8})
	dLo := m.Duration(1.0, s, Config{FreqGHz: m.FreqMinGHz, Threads: 8})
	if dHi >= dLo {
		t.Fatalf("high freq (%v) not faster than low freq (%v)", dHi, dLo)
	}
}

func TestDurationMonotonicInThreadsWithoutContention(t *testing.T) {
	m := Default()
	s := DefaultShape()
	s.ContentionCoef = 0
	prev := math.Inf(1)
	for n := 1; n <= 8; n++ {
		d := m.Duration(1.0, s, Config{FreqGHz: 2.6, Threads: n})
		if d > prev+1e-12 {
			t.Fatalf("duration increased from %d to %d threads: %v > %v", n-1, n, d, prev)
		}
		prev = d
	}
}

func TestContentionMakesFewerThreadsCompetitive(t *testing.T) {
	// With strong contention, some thread count below 8 should be the
	// fastest at a fixed frequency — the LULESH effect (paper Table 3).
	m := Default()
	s := DefaultShape()
	s.ContentionCoef = 0.035
	best, bestN := math.Inf(1), 0
	for n := 1; n <= 8; n++ {
		d := m.Duration(1.0, s, Config{FreqGHz: 1.6, Threads: n})
		if d < best {
			best, bestN = d, n
		}
	}
	if bestN == 8 {
		t.Fatalf("contention model never favors < 8 threads (best=%d)", bestN)
	}
}

func TestPowerMonotonic(t *testing.T) {
	m := Default()
	s := DefaultShape()
	// More threads at equal frequency draws more power.
	for n := 2; n <= 8; n++ {
		p0 := m.Power(s, Config{FreqGHz: 2.0, Threads: n - 1}, 1)
		p1 := m.Power(s, Config{FreqGHz: 2.0, Threads: n}, 1)
		if p1 <= p0 {
			t.Fatalf("power not increasing with threads: %v <= %v at %d", p1, p0, n)
		}
	}
	// Higher frequency at equal threads draws more power.
	fs := m.FreqStates()
	for i := 1; i < len(fs); i++ {
		pHi := m.Power(s, Config{FreqGHz: fs[i-1], Threads: 8}, 1)
		pLo := m.Power(s, Config{FreqGHz: fs[i], Threads: 8}, 1)
		if pHi <= pLo {
			t.Fatalf("power not increasing with frequency: %v <= %v", pHi, pLo)
		}
	}
}

func TestPowerCalibrationRange(t *testing.T) {
	// The paper sweeps 30–80 W per socket; the model's configuration range
	// must straddle that window for the sweep to be meaningful.
	m := Default()
	s := DefaultShape()
	pMax := m.Power(s, m.MaxConfig(), 1)
	pMin := m.Power(s, Config{FreqGHz: m.FreqMinGHz, Threads: 1}, 1)
	if pMax < 70 || pMax > 100 {
		t.Fatalf("max power %v out of expected 70–100 W band", pMax)
	}
	if pMin > 20 {
		t.Fatalf("min power %v above 20 W", pMin)
	}
}

func TestEffScaleScalesPower(t *testing.T) {
	m := Default()
	s := DefaultShape()
	cfg := Config{FreqGHz: 2.0, Threads: 4}
	base := m.Power(s, cfg, 1.0)
	hot := m.Power(s, cfg, 1.05)
	if math.Abs(hot-1.05*base) > 1e-9 {
		t.Fatalf("effScale not multiplicative: %v vs %v", hot, 1.05*base)
	}
}

func TestCapConfigRespectsCap(t *testing.T) {
	m := Default()
	s := DefaultShape()
	for cap := 15.0; cap <= 90; cap += 2.5 {
		r := m.CapConfig(s, 8, cap, 1)
		if r.PowerW > cap+1e-9 && r.Duty > 0.125+1e-9 {
			t.Fatalf("cap %v: settled at %v W with duty %v", cap, r.PowerW, r.Duty)
		}
		if r.Config.Threads != 8 {
			t.Fatalf("RAPL must not change threads: got %d", r.Config.Threads)
		}
	}
}

func TestCapConfigPicksFastestFit(t *testing.T) {
	m := Default()
	s := DefaultShape()
	r := m.CapConfig(s, 8, 1000, 1) // effectively uncapped
	if r.Config.FreqGHz != m.FreqMaxGHz || r.Duty != 1 {
		t.Fatalf("uncapped RAPL should pick max freq: got %v duty %v", r.Config, r.Duty)
	}
	// A cap below the bottom DVFS state engages duty-cycle modulation.
	pFloor := m.Power(s, Config{FreqGHz: m.FreqMinGHz, Threads: 8}, 1)
	r = m.CapConfig(s, 8, pFloor-3, 1)
	if r.Duty >= 1 {
		t.Fatalf("expected duty-cycle modulation below DVFS floor, duty = %v", r.Duty)
	}
	if r.Config.FreqGHz != m.FreqMinGHz {
		t.Fatalf("modulation must sit at bottom DVFS state, got %v", r.Config.FreqGHz)
	}
}

func TestDutyCycleSlowsCPUPart(t *testing.T) {
	m := Default()
	s := DefaultShape()
	cfg := Config{FreqGHz: m.FreqMinGHz, Threads: 8}
	d1 := m.DurationDuty(1.0, s, cfg, 1.0)
	d2 := m.DurationDuty(1.0, s, cfg, 0.5)
	if d2 <= d1 {
		t.Fatalf("duty 0.5 not slower: %v <= %v", d2, d1)
	}
}

func TestIdlePowerBelowAnyActiveConfig(t *testing.T) {
	m := Default()
	s := DefaultShape()
	idle := m.IdlePower(1)
	for _, cfg := range m.Configs() {
		if m.Power(s, cfg, 1) < idle {
			t.Fatalf("active config %v draws less than idle (%v)", cfg, idle)
		}
	}
}

func TestPropertyDurationPowerTradeoff(t *testing.T) {
	// For random shapes and any two configs, if config A is both faster
	// and lower-power than B, then B is dominated — the model must allow
	// this (no invariant violated), but a config with strictly higher
	// frequency AND more threads must never be slower per the monotone
	// model when contention is zero.
	m := Default()
	cfgCheck := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Shape{
			SerialFrac:     rng.Float64() * 0.2,
			MemFrac:        rng.Float64() * 0.5,
			MemSatThreads:  1 + rng.Intn(8),
			ContentionCoef: 0,
			Intensity:      0.5 + rng.Float64(),
		}
		w := 0.1 + rng.Float64()*2
		fs := m.FreqStates()
		fi := rng.Intn(len(fs) - 1)
		n := 1 + rng.Intn(7)
		faster := Config{FreqGHz: fs[fi], Threads: n + 1}
		slower := Config{FreqGHz: fs[fi+1], Threads: n}
		if m.Duration(w, s, faster) > m.Duration(w, s, slower)+1e-12 {
			return false
		}
		if m.Power(s, faster, 1) < m.Power(s, slower, 1) {
			return false
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWorkZeroDuration(t *testing.T) {
	m := Default()
	if d := m.Duration(0, DefaultShape(), m.MaxConfig()); d != 0 {
		t.Fatalf("zero work should take zero time, got %v", d)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{FreqGHz: 2.6, Threads: 8}
	if c.String() != "2.6GHz/8t" {
		t.Fatalf("String() = %q", c.String())
	}
}
