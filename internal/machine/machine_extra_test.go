package machine

import (
	"math"
	"testing"
)

func TestFreqStatesDegenerateStep(t *testing.T) {
	m := Default()
	m.FreqStepGHz = 0 // must not loop forever; falls back to 0.1 GHz
	fs := m.FreqStates()
	if len(fs) != 15 {
		t.Fatalf("got %d states with zero step, want fallback 15", len(fs))
	}
}

func TestRelFreqZeroMax(t *testing.T) {
	m := Default()
	m.FreqMaxGHz = 0
	// Duration must not divide by zero.
	d := m.Duration(1, DefaultShape(), Config{FreqGHz: 1.2, Threads: 4})
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("degenerate model produced %v", d)
	}
}

func TestThreadClamping(t *testing.T) {
	m := Default()
	s := DefaultShape()
	// Out-of-range thread counts clamp rather than misbehave.
	lo := m.Duration(1, s, Config{FreqGHz: 2.6, Threads: 0})
	one := m.Duration(1, s, Config{FreqGHz: 2.6, Threads: 1})
	if lo != one {
		t.Fatalf("threads=0 not clamped to 1: %v vs %v", lo, one)
	}
	hi := m.Power(s, Config{FreqGHz: 2.6, Threads: 99}, 1)
	eight := m.Power(s, Config{FreqGHz: 2.6, Threads: 8}, 1)
	if hi != eight {
		t.Fatalf("threads=99 not clamped to 8: %v vs %v", hi, eight)
	}
}

func TestIntensityZeroTreatedAsNominal(t *testing.T) {
	m := Default()
	s := DefaultShape()
	s.Intensity = 0
	p0 := m.Power(s, Config{FreqGHz: 2.0, Threads: 4}, 1)
	s.Intensity = 1
	p1 := m.Power(s, Config{FreqGHz: 2.0, Threads: 4}, 1)
	if p0 != p1 {
		t.Fatalf("zero intensity should default to 1: %v vs %v", p0, p1)
	}
}

func TestCapConfigDutyFloor(t *testing.T) {
	m := Default()
	s := DefaultShape()
	// A cap below even the heavily modulated floor pins duty at the
	// hardware minimum rather than going to zero.
	r := m.CapConfig(s, 8, 1, 1)
	if r.Duty != 0.125 {
		t.Fatalf("duty = %v, want the 0.125 modulation floor", r.Duty)
	}
}

func TestMinPowerMatchesBottomState(t *testing.T) {
	m := Default()
	s := DefaultShape()
	for threads := 1; threads <= 8; threads++ {
		got := m.MinPower(s, threads, 1)
		want := m.Power(s, Config{FreqGHz: m.FreqMinGHz, Threads: threads}, 1)
		if got != want {
			t.Fatalf("threads=%d: MinPower %v != bottom state %v", threads, got, want)
		}
	}
}

func TestDurationDutyMemPartUnaffected(t *testing.T) {
	// Clock modulation gates the core clock; the memory-bound part is
	// modeled as unaffected. A fully memory-bound task therefore sees no
	// slowdown from duty.
	m := Default()
	s := Shape{MemFrac: 1.0, MemSatThreads: 8, Intensity: 0.5}
	d1 := m.DurationDuty(1, s, Config{FreqGHz: 1.2, Threads: 8}, 1.0)
	d2 := m.DurationDuty(1, s, Config{FreqGHz: 1.2, Threads: 8}, 0.25)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("memory-bound duration changed under duty: %v vs %v", d1, d2)
	}
}

func TestEffScaleNonPositiveIgnored(t *testing.T) {
	m := Default()
	s := DefaultShape()
	cfg := Config{FreqGHz: 2.0, Threads: 4}
	if m.Power(s, cfg, 0) != m.Power(s, cfg, 1) {
		t.Fatal("non-positive effScale should be treated as nominal")
	}
	if m.IdlePower(-1) != m.IdlePower(1) {
		t.Fatal("non-positive effScale should be treated as nominal for idle")
	}
}
