package resilience

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/faultinject"
	"powercap/internal/machine"
)

// smallGraph: two ranks, mild imbalance, one collective — solves in a
// handful of pivots.
func smallGraph() *dag.Graph {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "phase1")
	b.Compute(1, 1.0, sh, "phase1")
	b.Collective("sync")
	b.Compute(0, 0.4, sh, "phase2")
	b.Compute(1, 0.4, sh, "phase2")
	return b.Finalize()
}

// bigGraph: enough ranks and phases that the LP needs several checkpoint
// windows of pivots, so rate-1.0 NaN injection outlives the sparse
// backend's retry budget.
func bigGraph() *dag.Graph {
	b := dag.NewBuilder(6)
	sh := machine.DefaultShape()
	for phase := 0; phase < 6; phase++ {
		for r := 0; r < 6; r++ {
			b.Compute(r, 0.2+0.1*float64((r+phase)%4), sh, "work")
		}
		b.Collective("sync")
	}
	return b.Finalize()
}

func testSolver() *core.Solver { return core.NewSolver(machine.Default(), nil) }

func noSleep(time.Duration) {}

func TestLadderTopRungMatchesDirectSolve(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	direct, err := sv.SolveCtx(context.Background(), g, 100)
	if err != nil {
		t.Fatal(err)
	}

	l := New(Config{Sleep: noSleep})
	out, err := l.Solve(context.Background(), sv, g, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungSparse || out.Degraded {
		t.Fatalf("clean solve landed on rung %v (degraded=%v)", out.Rung, out.Degraded)
	}
	if out.Reason != "" || out.Realized != nil {
		t.Fatalf("top-rung outcome carries degradation artifacts: reason=%q realized=%v", out.Reason, out.Realized)
	}
	if math.Float64bits(out.Schedule.MakespanS) != math.Float64bits(direct.MakespanS) {
		t.Fatalf("ladder makespan %v != direct %v", out.Schedule.MakespanS, direct.MakespanS)
	}
	if out.Attempts != 1 || out.Retries != 0 {
		t.Fatalf("clean solve spent attempts=%d retries=%d", out.Attempts, out.Retries)
	}
}

// TestLadderNaNRecoveredAtTopRung: on a small LP the sparse backend's
// reinversion repairs every injected NaN within its retry budget, so the
// ladder never descends — resilience starts inside the backend.
func TestLadderNaNRecoveredAtTopRung(t *testing.T) {
	g := smallGraph()
	sv := testSolver()
	faultinject.Configure(21, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
	defer faultinject.Disable()

	l := New(Config{Sleep: noSleep})
	out, err := l.Solve(context.Background(), sv, g, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if faultinject.Count(faultinject.LPNaN) == 0 {
		t.Fatal("fault never fired")
	}
	if out.Rung != RungSparse || out.Degraded {
		t.Fatalf("recoverable NaN descended the ladder: rung %v", out.Rung)
	}
}

// TestLadderStallDescendsToHeuristic: a stall injected into every LP pivot
// loop breaks both LP rungs; the heuristic rung needs no LP and must serve
// a simulator-certified schedule tagged with the full descent chain.
func TestLadderStallDescendsToHeuristic(t *testing.T) {
	g := smallGraph()
	sv := testSolver()
	faultinject.Configure(22, map[faultinject.Class]float64{faultinject.LPStall: 1.0})
	defer faultinject.Disable()

	l := New(Config{Sleep: noSleep})
	out, err := l.Solve(context.Background(), sv, g, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungHeuristic || !out.Degraded {
		t.Fatalf("rung %v degraded=%v, want heuristic/true", out.Rung, out.Degraded)
	}
	if !strings.Contains(out.Reason, "sparse:") || !strings.HasSuffix(out.Reason, "heuristic") {
		t.Fatalf("reason chain %q missing descent steps", out.Reason)
	}
	if out.Realized == nil {
		t.Fatal("degraded outcome lacks simulator validation")
	}
	if out.Realized.CapViolationW != 0 {
		t.Fatalf("served schedule violates cap by %v W", out.Realized.CapViolationW)
	}
	if out.Schedule.MakespanS <= 0 {
		t.Fatalf("degraded makespan %v", out.Schedule.MakespanS)
	}
}

// TestLadderNumericalRetryThenDescend: a persistent NaN storm on a large LP
// exhausts the sparse backend's internal recovery, surfaces as
// *lp.NumericalError, earns a backoff retry, and finally descends with a
// "numerical" reason in the chain.
func TestLadderNumericalRetryThenDescend(t *testing.T) {
	g := bigGraph()
	sv := testSolver()
	faultinject.Disable()
	if direct, err := sv.SolveCtx(context.Background(), g, 300); err != nil {
		t.Fatal(err)
	} else if direct.Stats.SimplexIter <= 4*32 {
		t.Fatalf("test LP too easy: %d pivots", direct.Stats.SimplexIter)
	}

	faultinject.Configure(23, map[faultinject.Class]float64{faultinject.LPNaN: 1.0})
	defer faultinject.Disable()
	l := New(Config{Sleep: noSleep})
	out, err := l.Solve(context.Background(), sv, g, 300, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("persistent NaN storm did not degrade")
	}
	if out.Retries == 0 {
		t.Fatal("numerical failure earned no retry")
	}
	if !strings.Contains(out.Reason, "numerical") {
		t.Fatalf("reason %q does not name the numerical failure", out.Reason)
	}
	if out.Realized == nil || out.Realized.CapViolationW != 0 {
		t.Fatalf("degraded outcome not certified cap-clean: %+v", out.Realized)
	}
}

func TestLadderInfeasiblePropagatesImmediately(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	l := New(Config{Sleep: noSleep})
	out, err := l.Solve(context.Background(), sv, g, 0.5, false)
	if err == nil {
		t.Fatalf("infeasible cap produced outcome %+v", out)
	}
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error %v does not wrap core.ErrInfeasible", err)
	}
}

func TestLadderBreakerSkipsBrokenRung(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	l := New(Config{BreakerThreshold: 2, BreakerCooldown: time.Hour, Sleep: noSleep})
	for i := 0; i < 2; i++ {
		l.breakers[RungSparse].Failure()
	}
	if st := l.BreakerStates()["sparse"]; st != "open" {
		t.Fatalf("sparse breaker state %q after threshold failures", st)
	}

	out, err := l.Solve(context.Background(), sv, g, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungSparseEta || !out.Degraded {
		t.Fatalf("rung %v degraded=%v, want sparse-eta/true", out.Rung, out.Degraded)
	}
	if !strings.Contains(out.Reason, "sparse:breaker-open") {
		t.Fatalf("reason %q does not record the skipped rung", out.Reason)
	}
	if out.Realized == nil || out.Realized.CapViolationW != 0 {
		t.Fatal("sparse-eta-rung outcome not certified cap-clean")
	}
	if st := l.BreakerStates()["sparse-eta"]; st != "closed" {
		t.Fatalf("sparse-eta breaker %q after success", st)
	}
}

func TestLadderBreakerRecoversAfterCooldown(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	l := New(Config{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond, Sleep: noSleep})
	l.breakers[RungSparse].Failure()
	if l.breakers[RungSparse].Allow() {
		t.Fatal("breaker admits requests immediately after tripping")
	}
	time.Sleep(15 * time.Millisecond)

	out, err := l.Solve(context.Background(), sv, g, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungSparse || out.Degraded {
		t.Fatalf("half-open probe did not run the recovered rung: %v", out.Rung)
	}
	if st := l.BreakerStates()["sparse"]; st != "closed" {
		t.Fatalf("sparse breaker %q after successful probe", st)
	}
}

func TestLadderDeadParentContext(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	l := New(Config{Sleep: noSleep})
	if _, err := l.Solve(ctx, sv, g, 100, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap the parent deadline", err)
	}
}

func TestHeuristicRungsCapSafe(t *testing.T) {
	faultinject.Disable()
	sv := testSolver()
	l := New(Config{Sleep: noSleep})
	for _, g := range []*dag.Graph{smallGraph(), bigGraph()} {
		for _, slackAware := range []bool{true, false} {
			sched, realized, err := l.heuristicRung(context.Background(), sv, g, 80*float64(g.NumRanks)/2, slackAware)
			if err != nil {
				t.Fatalf("slackAware=%v: %v", slackAware, err)
			}
			if realized.CapViolationW != 0 {
				t.Fatalf("slackAware=%v: cap violated by %v W", slackAware, realized.CapViolationW)
			}
			if sched.MakespanS != realized.MakespanS || sched.MakespanS <= 0 {
				t.Fatalf("slackAware=%v: makespan %v vs realized %v", slackAware, sched.MakespanS, realized.MakespanS)
			}
		}
	}
}

// TestSetDeadlineFracs: the adaptive control plane swaps the live
// deadline-slice table atomically; nil restores the configured table, and
// non-positive entries keep their configured values.
func TestSetDeadlineFracs(t *testing.T) {
	l := New(Config{Sleep: noSleep})
	base := l.DeadlineFracs()
	if len(base) != NumRungs || base[0] != 0.5 {
		t.Fatalf("default fracs = %v", base)
	}

	l.SetDeadlineFracs([]float64{0.3, 0.3, 0.4, 0.6, 1.0})
	if got := l.DeadlineFracs(); got[0] != 0.3 || got[3] != 0.6 {
		t.Fatalf("swapped fracs = %v", got)
	}

	// Short and zero-padded overrides keep configured values.
	l.SetDeadlineFracs([]float64{0.2, 0})
	if got := l.DeadlineFracs(); got[0] != 0.2 || got[1] != 0.5 || got[4] != 1.0 {
		t.Fatalf("partial override fracs = %v", got)
	}

	l.SetDeadlineFracs(nil)
	if got := l.DeadlineFracs(); got[0] != 0.5 {
		t.Fatalf("restored fracs = %v", got)
	}

	// The live table actually governs rungContext: a tightened top-rung
	// slice yields an earlier deadline than the parent's.
	l.SetDeadlineFracs([]float64{0.1, 0.1, 0.1, 0.1, 0.1})
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	rctx, rcancel := l.rungContext(parent, RungSparse)
	defer rcancel()
	pd, _ := parent.Deadline()
	rd, ok := rctx.Deadline()
	if !ok || !rd.Before(pd) {
		t.Fatalf("rung deadline %v not tightened below parent %v", rd, pd)
	}
}

// TestSolveHeuristicBrownout: the brownout entry point must produce a
// cap-clean, simulator-validated, Degraded-tagged schedule without
// touching the LP rungs or the breaker accounting.
func TestSolveHeuristicBrownout(t *testing.T) {
	faultinject.Disable()
	g := smallGraph()
	sv := testSolver()
	l := New(Config{Sleep: noSleep})

	out, err := l.SolveHeuristic(context.Background(), sv, g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungHeuristic || !out.Degraded {
		t.Fatalf("brownout outcome rung=%v degraded=%v", out.Rung, out.Degraded)
	}
	if out.Reason != "brownout:heuristic" {
		t.Fatalf("brownout reason = %q", out.Reason)
	}
	if out.Realized == nil || out.Realized.CapViolationW != 0 {
		t.Fatalf("brownout result not simulator-certified cap-clean: %+v", out.Realized)
	}
	for rung, st := range l.BreakerStates() {
		if st != "closed" {
			t.Fatalf("brownout touched breaker %s: %s", rung, st)
		}
	}
}
