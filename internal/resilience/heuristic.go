package resilience

import (
	"context"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/problem"
	"powercap/internal/schedule"
)

// heuristicRung builds a discrete schedule without solving an LP, then
// certifies it through the simulator-backed realization/repair loop. With
// slackAware set it mirrors the paper's initial-schedule observation that
// tasks off the critical path can be slowed "as much as possible": any task
// with positive slack in the power-unconstrained initial schedule drops to
// its frontier floor (lowest power), while zero-slack (critical-path) tasks
// take the floor of their fair per-rank power share. Without slackAware it
// is the static last resort: every task at the floor of the uniform fair
// share, the paper's static baseline.
func (l *Ladder) heuristicRung(ctx context.Context, sv *core.Solver, g *dag.Graph, capW float64, slackAware bool) (*core.Schedule, *schedule.Realized, error) {
	ir, err := sv.IRCtx(ctx, g)
	if err != nil {
		return nil, nil, err
	}
	fair := capW
	if g.NumRanks > 0 {
		fair = capW / float64(g.NumRanks)
	}

	sched := &core.Schedule{CapW: capW, Choices: make([]core.TaskChoice, len(g.Tasks))}
	for _, t := range g.Tasks {
		switch ir.Class[t.ID] {
		case problem.Tunable:
			f := ir.Cols[t.ID].F
			target := fair
			if slackAware && taskSlack(ir, t) > slackTolS {
				target = f.Pts[0].PowerW
			}
			k, _ := f.Floor(target)
			sched.Choices[t.ID] = core.TaskChoice{
				PowerW:    f.Pts[k].PowerW,
				DurationS: ir.Cols[t.ID].Durs[k],
			}
		case problem.Fixed:
			sched.Choices[t.ID] = core.TaskChoice{PowerW: ir.FixedPowerW[t.ID]}
		case problem.Message:
			sched.Choices[t.ID] = core.TaskChoice{DurationS: t.FixedDur}
		}
	}

	opts := schedule.DefaultOptions()
	opts.MaxRepairs = l.cfg.MaxRepairs
	realized, err := schedule.RealizeCtx(ctx, ir, sched, schedule.Down, opts)
	if err != nil {
		return nil, nil, err
	}
	// The heuristic has no LP objective; the simulator-validated realized
	// makespan is the schedule's makespan.
	sched.MakespanS = realized.MakespanS
	return sched, realized, nil
}

// slackTolS separates genuinely off-critical tasks from floating-point
// residue in the initial schedule's vertex times.
const slackTolS = 1e-9

// taskSlack is the task's scheduling slack in the power-unconstrained
// initial schedule: the gap between its dependence window and its duration
// there. Positive slack means slowing the task (up to that much) cannot
// move the critical path.
func taskSlack(ir *problem.IR, t dag.Task) float64 {
	window := ir.Init.VertexTime[t.Dst] - ir.Init.VertexTime[t.Src]
	dur := ir.Init.End[t.ID] - ir.Init.Start[t.ID]
	return window - dur
}
