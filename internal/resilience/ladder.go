// Package resilience implements the fallback ladder of DESIGN.md §10: a
// solve request descends through progressively simpler, more robust engines
// until one produces a cap-respecting schedule.
//
//	sparse revised simplex (LU) → sparse on the eta engine → dense tableau →
//	slack-aware heuristic → static
//
// Each rung gets a bounded slice of the request's remaining deadline, a
// small retry budget with exponential backoff for numerical failures, and a
// circuit breaker so a persistently broken backend is skipped without
// burning its slice. Any result produced below the top rung is tagged
// Degraded with a machine-readable reason chain, and is validated on the
// simulator through internal/schedule's realization/repair loop before being
// returned — the ladder never serves a cap-violating schedule.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/obs"
	"powercap/internal/schedule"
)

// Rung identifies one level of the fallback ladder, ordered from the
// preferred engine down to the always-available one.
type Rung int

const (
	// RungSparse is the normal path: the sparse revised simplex LP on the
	// Solver's configured basis engine (the LU factorization by default).
	RungSparse Rung = iota
	// RungSparseEta retries the same sparse LP on the product-form eta
	// engine, which shares the pivot loops but none of the factorization
	// numerics — a breakdown inside the LU often does not reproduce there.
	RungSparseEta
	// RungDense retries the same LP on the dense tableau backend, which
	// shares no simplex machinery with the sparse one at all.
	RungDense
	// RungHeuristic builds a slack-aware discrete schedule without an LP:
	// off-critical tasks at their frontier floor, critical tasks at their
	// fair power share.
	RungHeuristic
	// RungStatic is the last resort: every task at the floor of a uniform
	// fair share, the paper's static baseline policy.
	RungStatic

	numRungs
)

// String names the rung as it appears in Degraded reasons and metrics.
func (r Rung) String() string {
	switch r {
	case RungSparse:
		return "sparse"
	case RungSparseEta:
		return "sparse-eta"
	case RungDense:
		return "dense"
	case RungHeuristic:
		return "heuristic"
	case RungStatic:
		return "static"
	default:
		return fmt.Sprintf("Rung(%d)", int(r))
	}
}

// Rungs lists the ladder top to bottom.
func Rungs() []Rung {
	return []Rung{RungSparse, RungSparseEta, RungDense, RungHeuristic, RungStatic}
}

// Config tunes the ladder. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Retries is how many extra attempts a rung gets after a numerical
	// failure before the ladder descends (default 1).
	Retries int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries (defaults 1ms and 50ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the deterministic backoff jitter.
	JitterSeed uint64
	// BreakerThreshold is the consecutive-failure count that trips a rung's
	// circuit breaker (default 3); BreakerCooldown how long it stays open
	// before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxRepairs bounds the realization repair loop for validated rungs
	// (0 = the natural bound, the sum of frontier sizes).
	MaxRepairs int
	// DeadlineFracs gives each rung's slice as a fraction of the request's
	// *remaining* deadline when the rung starts; a fraction ≥ 1 passes the
	// parent deadline through unchanged. Zero selects the defaults
	// {0.5, 0.5, 0.6, 0.75, 1.0}: early rungs may not starve later ones, and
	// the last rung gets whatever is left.
	DeadlineFracs [numRungs]float64
	// Sleep replaces time.Sleep between retries (tests); nil = time.Sleep.
	Sleep func(time.Duration)
}

// Outcome is a ladder result: which rung produced the schedule and whether
// the caller should treat it as degraded.
type Outcome struct {
	// Schedule is the accepted schedule. For sub-top rungs its MakespanS is
	// the simulator-validated realized makespan.
	Schedule *core.Schedule
	// Realized is the simulator validation attached to every sub-top-rung
	// result (nil for RungSparse, whose callers choose their own
	// realization). Its CapViolationW is always 0.
	Realized *schedule.Realized
	// Rung is the ladder level that produced Schedule.
	Rung Rung
	// Degraded is true for any rung below the top; Reason then carries the
	// machine-readable descent chain, e.g.
	// "sparse:numerical(ftran/btran pivot mismatch)→dense".
	Degraded bool
	Reason   string
	// Attempts counts solve attempts across all rungs; Retries the backoff
	// retries among them.
	Attempts int
	Retries  int
	// RungAttempts and RungRetries break Attempts/Retries down per rung in
	// ladder order (sparse, sparse-eta, dense, heuristic, static) — the
	// per-rung rescue counts the flight recorder stores with each request.
	RungAttempts [NumRungs]int
	RungRetries  [NumRungs]int
}

// NumRungs is the ladder depth, exported for callers sizing DeadlineFracs
// overrides.
const NumRungs = int(numRungs)

// Ladder executes the fallback ladder. Safe for concurrent use; breaker
// state is shared across requests, which is the point.
type Ladder struct {
	cfg      Config
	breakers [numRungs]*Breaker
	jitter   atomic.Uint64
	// fracs is the live per-rung deadline-slice table. It starts as
	// cfg.DeadlineFracs and may be swapped at runtime by the adaptive
	// control plane (SetDeadlineFracs) without disturbing in-flight
	// solves, which read it once per rung.
	fracs atomic.Pointer[[numRungs]float64]
}

// New returns a Ladder over cfg (zero-value fields get defaults).
func New(cfg Config) *Ladder {
	if cfg.Retries <= 0 {
		cfg.Retries = 1
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 50 * time.Millisecond
	}
	var zero [numRungs]float64
	if cfg.DeadlineFracs == zero {
		cfg.DeadlineFracs = [numRungs]float64{0.5, 0.5, 0.6, 0.75, 1.0}
	}
	l := &Ladder{cfg: cfg}
	fr := cfg.DeadlineFracs
	l.fracs.Store(&fr)
	for r := range l.breakers {
		l.breakers[r] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return l
}

// SetDeadlineFracs swaps the live per-rung deadline-slice table. Entries
// beyond NumRungs are ignored; missing or non-positive entries keep their
// configured value. A nil slice restores the configured table.
func (l *Ladder) SetDeadlineFracs(fracs []float64) {
	next := l.cfg.DeadlineFracs
	for i := 0; i < len(fracs) && i < NumRungs; i++ {
		if fracs[i] > 0 {
			next[i] = fracs[i]
		}
	}
	l.fracs.Store(&next)
}

// DeadlineFracs returns a copy of the live deadline-slice table.
func (l *Ladder) DeadlineFracs() []float64 {
	cur := *l.fracs.Load()
	return append([]float64(nil), cur[:]...)
}

// SetBreakerNotify installs fn to be called (outside any breaker lock, on
// the goroutine whose failure tripped it) whenever a rung's breaker
// transitions to open — the flight-recorder snapshot hook.
func (l *Ladder) SetBreakerNotify(fn func(rung string)) {
	for r, b := range l.breakers {
		name := Rung(r).String()
		b.SetNotify(func() { fn(name) })
	}
}

// BreakerStates reports each rung's circuit-breaker state for /healthz.
func (l *Ladder) BreakerStates() map[string]string {
	out := make(map[string]string, numRungs)
	for r, b := range l.breakers {
		out[Rung(r).String()] = b.State()
	}
	return out
}

// Solve runs the ladder for one request. It returns an error only when the
// problem itself is bad (infeasible cap, malformed graph), the parent
// context dies, or every rung — including the static last resort — fails.
func (l *Ladder) Solve(ctx context.Context, sv *core.Solver, g *dag.Graph, capW float64, decompose bool) (*Outcome, error) {
	ctx, span := obs.Start(ctx, "resilience.ladder")
	defer span.End()
	span.SetAttr("cap_w", capW)

	out := &Outcome{}
	var chain []string
	var lastErr error

	for rung := RungSparse; rung < numRungs; rung++ {
		br := l.breakers[rung]
		if !br.Allow() {
			chain = append(chain, rung.String()+":breaker-open")
			continue
		}
		rungCtx, cancel := l.rungContext(ctx, rung)
		sched, realized, err := l.attempt(rungCtx, sv, g, capW, decompose, rung, br, out)
		cancel()
		if err == nil {
			out.Schedule, out.Realized, out.Rung = sched, realized, rung
			if rung > RungSparse {
				out.Degraded = true
				out.Reason = strings.Join(append(chain, rung.String()), "→")
			}
			span.SetAttr("rung", rung.String())
			span.SetAttr("attempts", out.Attempts)
			span.SetAttr("degraded", out.Degraded)
			return out, nil
		}
		if errors.Is(err, core.ErrInfeasible) {
			// A statement about the problem, not the backend: no lower rung
			// can conjure power that does not exist.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("resilience: request deadline exhausted at %s rung: %w", rung, err)
		}
		chain = append(chain, describeFailure(rung, err))
		lastErr = err
	}
	return nil, fmt.Errorf("resilience: every rung failed (%s): %w", strings.Join(chain, "→"), lastErr)
}

// SolveHeuristic runs only the slack-aware heuristic rung — no LP at all.
// It is the service's deepest brownout mode: the result is still
// simulator-validated cap-clean, but it is always tagged Degraded so it is
// never cached and never served to a `degraded=forbid` request. The rung's
// circuit breaker is deliberately not consulted or charged: brownout
// traffic must not perturb the failure accounting of the fallback path.
func (l *Ladder) SolveHeuristic(ctx context.Context, sv *core.Solver, g *dag.Graph, capW float64) (*Outcome, error) {
	ctx, span := obs.Start(ctx, "resilience.brownout")
	defer span.End()
	span.SetAttr("cap_w", capW)

	sched, realized, err := l.heuristicRung(ctx, sv, g, capW, true)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Schedule: sched,
		Realized: realized,
		Rung:     RungHeuristic,
		Degraded: true,
		Reason:   "brownout:heuristic",
		Attempts: 1,
	}
	out.RungAttempts[RungHeuristic] = 1
	return out, nil
}

// attempt runs one rung with its retry budget. Numerical failures are
// retried with backoff; anything else descends immediately.
func (l *Ladder) attempt(ctx context.Context, sv *core.Solver, g *dag.Graph, capW float64, decompose bool, rung Rung, br *Breaker, out *Outcome) (*core.Schedule, *schedule.Realized, error) {
	var lastErr error
	for try := 0; ; try++ {
		out.Attempts++
		out.RungAttempts[rung]++
		actx, sp := obs.Start(ctx, "resilience."+rung.String())
		sp.SetAttr("try", try)
		sp.SetAttr("breaker", br.State())
		sched, realized, err := l.runRung(actx, sv, g, capW, decompose, rung)
		sp.SetAttr("ok", err == nil)
		sp.End()
		if err == nil {
			br.Success()
			return sched, realized, nil
		}
		lastErr = err
		if errors.Is(err, core.ErrInfeasible) || ctx.Err() != nil {
			// Not the backend's fault (or no time left to retry on it):
			// don't poison the breaker.
			return nil, nil, err
		}
		var ne *lp.NumericalError
		if errors.As(err, &ne) && try < l.cfg.Retries {
			out.Retries++
			out.RungRetries[rung]++
			l.sleep(l.backoff(try))
			continue
		}
		br.Failure()
		return nil, nil, lastErr
	}
}

// runRung executes one ladder level. Sub-top rungs validate their schedule
// on the simulator via the Down realization (repairing any cap excess)
// before returning it.
func (l *Ladder) runRung(ctx context.Context, sv *core.Solver, g *dag.Graph, capW float64, decompose bool, rung Rung) (*core.Schedule, *schedule.Realized, error) {
	switch rung {
	case RungSparse:
		sched, err := sv.SolveCtxWith(ctx, g, capW, decompose, lp.BackendSparse)
		return sched, nil, err
	case RungSparseEta:
		sched, err := sv.SolveCtxWithEngine(ctx, g, capW, decompose, lp.BackendSparse, lp.EngineEta)
		if err != nil {
			return nil, nil, err
		}
		realized, err := l.validate(ctx, sv, g, sched)
		if err != nil {
			return nil, nil, err
		}
		return sched, realized, nil
	case RungDense:
		sched, err := sv.SolveCtxWith(ctx, g, capW, decompose, lp.BackendDense)
		if err != nil {
			return nil, nil, err
		}
		realized, err := l.validate(ctx, sv, g, sched)
		if err != nil {
			return nil, nil, err
		}
		return sched, realized, nil
	case RungHeuristic:
		return l.heuristicRung(ctx, sv, g, capW, true)
	case RungStatic:
		return l.heuristicRung(ctx, sv, g, capW, false)
	default:
		return nil, nil, fmt.Errorf("resilience: unknown rung %v", rung)
	}
}

// validate runs the realization/repair loop on an LP schedule and refuses
// any result the simulator cannot certify cap-clean.
func (l *Ladder) validate(ctx context.Context, sv *core.Solver, g *dag.Graph, sched *core.Schedule) (*schedule.Realized, error) {
	ir, err := sv.IRCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	opts := schedule.DefaultOptions()
	opts.MaxRepairs = l.cfg.MaxRepairs
	return schedule.RealizeCtx(ctx, ir, sched, schedule.Down, opts)
}

// rungContext carves the rung's deadline slice out of the parent's
// remaining time. Without a parent deadline the rung inherits ctx as-is.
func (l *Ladder) rungContext(ctx context.Context, rung Rung) (context.Context, context.CancelFunc) {
	frac := l.fracs.Load()[rung]
	deadline, ok := ctx.Deadline()
	if !ok || frac >= 1 {
		return context.WithCancel(ctx)
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return context.WithCancel(ctx)
	}
	slice := time.Duration(float64(remaining) * frac)
	return context.WithDeadline(ctx, time.Now().Add(slice))
}

// backoff computes the delay before retry number try: exponential from
// BackoffBase, capped at BackoffMax, plus a deterministic seeded jitter of
// up to half the base step (decorrelates retry storms across concurrent
// requests without nondeterministic randomness).
func (l *Ladder) backoff(try int) time.Duration {
	d := l.cfg.BackoffBase << uint(try)
	if d > l.cfg.BackoffMax {
		d = l.cfg.BackoffMax
	}
	x := l.cfg.JitterSeed + l.jitter.Add(1)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	jitter := time.Duration(x % uint64(l.cfg.BackoffBase/2+1))
	return d + jitter
}

func (l *Ladder) sleep(d time.Duration) {
	if l.cfg.Sleep != nil {
		l.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// describeFailure renders one rung's failure for the Degraded reason chain.
func describeFailure(rung Rung, err error) string {
	var ne *lp.NumericalError
	switch {
	case errors.As(err, &ne):
		return fmt.Sprintf("%s:numerical(%s)", rung, ne.Reason)
	case errors.Is(err, context.DeadlineExceeded):
		return rung.String() + ":deadline"
	default:
		return rung.String() + ":error"
	}
}
