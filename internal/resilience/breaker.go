package resilience

import (
	"sync"
	"time"
)

// Breaker is a per-backend circuit breaker for the fallback ladder. A rung
// whose backend keeps failing trips its breaker open; subsequent requests
// skip the rung immediately instead of burning their deadline slice on a
// solver that is currently broken. After a cooldown the breaker admits one
// probe (half-open): success closes it, failure re-opens it for another
// cooldown.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures before opening
	cooldown  time.Duration // open duration before a half-open probe
	now       func() time.Time

	failures int
	state    breakerState
	openedAt time.Time
	onOpen   func() // fired outside the lock on a closed→open transition
}

type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// NewBreaker returns a closed breaker that opens after threshold consecutive
// failures and probes again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may attempt the rung. An open breaker past
// its cooldown transitions to half-open and admits this one probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	}
}

// Success records a successful attempt, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = breakerClosed
}

// SetNotify installs fn to be called whenever the breaker transitions to
// open (initial trip or a failed half-open probe). fn runs outside the
// breaker lock, on the goroutine whose Failure tripped it, so it may take
// other locks but must not block for long — the service uses it to snapshot
// the flight recorder.
func (b *Breaker) SetNotify(fn func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onOpen = fn
}

// Failure records a failed attempt: a half-open probe re-opens immediately;
// a closed breaker opens once the consecutive-failure threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	opened := false
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		opened = b.state != breakerOpen
		b.state = breakerOpen
		b.openedAt = b.now()
	}
	notify := b.onOpen
	b.mu.Unlock()
	if opened && notify != nil {
		notify()
	}
}

// State names the breaker's current state for /healthz reporting.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			return "half-open"
		}
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
