// Package milp solves small mixed integer-linear programs by branch and
// bound over the LP relaxation provided by internal/lp.
//
// The paper's flow ILP formulation (Sec. 3.4 and Appendix) is the only
// client; it is "practically limited to solving small (i.e. fewer than 30
// DAG edges) problems", so a straightforward best-bound branch and bound
// with full LP re-solves per node is appropriate. Binary variables are
// branched by appending explicit x ≤ floor / x ≥ ceil rows to copies of the
// relaxation.
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"powercap/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solver outcomes.
const (
	// Optimal means an integer-feasible optimum was proven.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// NodeLimit means the search tree budget was exhausted; Incumbent (if
	// any) is the best integer-feasible solution found so far.
	NodeLimit
)

// String describes the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// intTol is the tolerance within which a relaxation value counts as integral.
const intTol = 1e-6

// Problem augments an lp.Problem with integrality requirements. Build the
// linear part with the embedded methods, then mark variables integer with
// SetInteger.
type Problem struct {
	*lp.Problem
	sense    lp.Sense
	integers map[lp.Var]bool
	maxNodes int
	gap      float64
}

// NewProblem creates an empty MILP with the given sense.
func NewProblem(sense lp.Sense) *Problem {
	return &Problem{
		Problem:  lp.NewProblem(sense),
		sense:    sense,
		integers: make(map[lp.Var]bool),
		maxNodes: 200000,
		gap:      1e-9,
	}
}

// SetMaxNodes bounds the number of branch-and-bound nodes explored.
func (p *Problem) SetMaxNodes(n int) { p.maxNodes = n }

// SetGap sets the absolute optimality gap: subtrees whose relaxation bound
// does not improve on the incumbent by more than gap are pruned. The
// default (1e-9) effectively demands exact optima; raising it trades
// precision for node count on instances with near-tied schedules.
func (p *Problem) SetGap(gap float64) {
	if gap > 0 {
		p.gap = gap
	}
}

// SetInteger marks v as integer-constrained.
func (p *Problem) SetInteger(v lp.Var) { p.integers[v] = true }

// AddBinary declares a fresh variable constrained to {0,1}: nonnegative,
// integer, with an explicit ≤ 1 row.
func (p *Problem) AddBinary(name string, objCoef float64) lp.Var {
	v := p.AddVar(name, objCoef)
	p.MustConstraint(name+"_ub", lp.Expr{}.Plus(v, 1), lp.LE, 1)
	p.SetInteger(v)
	return v
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int // branch-and-bound nodes explored
}

// Value returns the value of v in the incumbent solution.
func (s *Solution) Value(v lp.Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.X) {
		return math.NaN()
	}
	return s.X[v]
}

// branch is one extra bound row appended along a tree path.
type branch struct {
	v   lp.Var
	rel lp.Rel
	rhs float64
}

// node is a live search-tree node.
type node struct {
	bound    float64 // LP relaxation objective (a bound on this subtree)
	branches []branch
	// basis is the parent relaxation's optimal basis. A branch appends one
	// bound row, which leaves the parent basis dual feasible for the child
	// (the appended row's auxiliary starts basic at zero cost), so the
	// child relaxation warm starts with a few dual simplex pivots instead
	// of a cold two-phase solve.
	basis []int
}

func (n *node) depth() int { return len(n.branches) }

// ErrNoIntegers is returned by Solve when no variable was marked integer;
// callers should use the LP solver directly in that case (they probably
// constructed the wrong problem type).
var ErrNoIntegers = errors.New("milp: no integer variables; solve as an LP instead")

// Solve runs best-bound branch and bound. Fractional branching variable
// selection is most-fractional; ties break toward the lowest index to keep
// runs deterministic.
func (p *Problem) Solve() (*Solution, error) {
	if len(p.integers) == 0 {
		return nil, ErrNoIntegers
	}

	intVars := make([]lp.Var, 0, len(p.integers))
	for v := range p.integers {
		intVars = append(intVars, v)
	}
	sort.Slice(intVars, func(i, j int) bool { return intVars[i] < intVars[j] })

	better := func(a, b float64) bool { // does a improve on b by more than the gap
		if p.sense == lp.Minimize {
			return a < b-p.gap
		}
		return a > b+p.gap
	}

	root, err := p.solveRelaxation(nil, nil)
	if err != nil {
		return nil, err
	}
	switch root.Status {
	case lp.Infeasible:
		return &Solution{Status: Infeasible, Objective: math.NaN(), Nodes: 1}, nil
	case lp.Unbounded:
		return &Solution{Status: Unbounded, Objective: math.NaN(), Nodes: 1}, nil
	case lp.IterLimit:
		return nil, errors.New("milp: root relaxation hit iteration limit")
	}

	incumbentObj := math.Inf(1)
	if p.sense == lp.Maximize {
		incumbentObj = math.Inf(-1)
	}
	var incumbentX []float64

	open := []node{{bound: root.Objective, branches: nil, basis: root.Basis}}
	nodes := 0

	for len(open) > 0 {
		if nodes >= p.maxNodes {
			st := NodeLimit
			return &Solution{Status: st, Objective: incumbentObj, X: incumbentX, Nodes: nodes}, nil
		}
		// Best-bound selection with depth tie-breaking: among (near-)tied
		// bounds, prefer the deepest node. Scheduling instances have huge
		// plateaus of equal-makespan orderings, and pure best-bound would
		// wander them breadth-first without ever reaching an integer
		// leaf; diving finds an incumbent fast, after which the plateau
		// prunes wholesale against it.
		bi := 0
		for i := 1; i < len(open); i++ {
			if better(open[i].bound, open[bi].bound) ||
				(!better(open[bi].bound, open[i].bound) && open[i].depth() > open[bi].depth()) {
				bi = i
			}
		}
		cur := open[bi]
		open[bi] = open[len(open)-1]
		open = open[:len(open)-1]

		if incumbentX != nil && !better(cur.bound, incumbentObj) {
			continue // pruned by bound
		}

		rel, err := p.solveRelaxation(cur.branches, cur.basis)
		if err != nil {
			return nil, err
		}
		nodes++
		if rel.Status != lp.Optimal {
			continue // infeasible subtree (or numerically stuck: prune)
		}
		if incumbentX != nil && !better(rel.Objective, incumbentObj) {
			continue
		}

		fracVar, fracVal := mostFractional(rel.X, intVars)
		if fracVar < 0 {
			// Integer feasible: new incumbent.
			incumbentObj = rel.Objective
			incumbentX = append([]float64(nil), rel.X...)
			continue
		}

		lo := math.Floor(fracVal)
		down := append(append([]branch(nil), cur.branches...), branch{fracVar, lp.LE, lo})
		up := append(append([]branch(nil), cur.branches...), branch{fracVar, lp.GE, lo + 1})
		open = append(open, node{bound: rel.Objective, branches: down, basis: rel.Basis})
		open = append(open, node{bound: rel.Objective, branches: up, basis: rel.Basis})
	}

	if incumbentX == nil {
		return &Solution{Status: Infeasible, Objective: math.NaN(), Nodes: nodes}, nil
	}
	// Round integer variables exactly in the reported solution.
	for _, v := range intVars {
		incumbentX[v] = math.Round(incumbentX[v])
	}
	return &Solution{Status: Optimal, Objective: incumbentObj, X: incumbentX, Nodes: nodes}, nil
}

// solveRelaxation rebuilds the base LP plus the branch rows and solves it,
// warm starting from the parent basis when one is available. The lp.Problem
// builder has no row-removal, so each node clones the base; instances are
// small by construction (see package comment).
func (p *Problem) solveRelaxation(branches []branch, warm []int) (*lp.Solution, error) {
	clone := p.Problem.Clone()
	for _, b := range branches {
		clone.MustConstraint("branch", lp.Expr{}.Plus(b.v, 1), b.rel, b.rhs)
	}
	opts := []lp.Option{lp.WithBackend(lp.BackendSparse)}
	if len(warm) > 0 {
		opts = append(opts, lp.WithWarmBasis(warm))
	}
	return lp.Solve(clone, opts...)
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integral, or (-1, 0) when all are integral.
func mostFractional(x []float64, intVars []lp.Var) (lp.Var, float64) {
	best := lp.Var(-1)
	bestDist := intTol
	bestVal := 0.0
	for _, v := range intVars {
		val := x[v]
		dist := math.Abs(val - math.Round(val))
		if dist > bestDist {
			bestDist = dist
			best = v
			bestVal = val
		}
	}
	return best, bestVal
}
