package milp

import (
	"math"
	"math/rand"
	"testing"

	"powercap/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binaries.
	// Best: a+c (weight 5, value 17)? b+c = weight 6, value 20. → 20.
	p := NewProblem(lp.Maximize)
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 13)
	c := p.AddBinary("c", 7)
	p.MustConstraint("cap", lp.Expr{}.Plus(a, 3).Plus(b, 4).Plus(c, 2), lp.LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20", sol.Objective)
	}
	if sol.Value(b) != 1 || sol.Value(c) != 1 || sol.Value(a) != 0 {
		t.Fatalf("solution = (%v,%v,%v), want (0,1,1)", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x  s.t. 2x <= 7, x integer → x = 3 (LP relaxation 3.5).
	p := NewProblem(lp.Maximize)
	x := p.AddVar("x", 1)
	p.SetInteger(x)
	p.MustConstraint("cap", lp.Expr{}.Plus(x, 2), lp.LE, 7)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value(x) != 3 {
		t.Fatalf("got %v x=%v, want optimal x=3", sol.Status, sol.Value(x))
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y  s.t. y >= 1.3 x, y >= 2.6 - 1.3 x, x binary.
	// x=0 → y=2.6; x=1 → y=1.3. Optimal y=1.3.
	p := NewProblem(lp.Minimize)
	x := p.AddBinary("x", 0)
	y := p.AddVar("y", 1)
	p.MustConstraint("c1", lp.Expr{}.Plus(y, 1).Plus(x, -1.3), lp.GE, 0)
	p.MustConstraint("c2", lp.Expr{}.Plus(y, 1).Plus(x, 1.3), lp.GE, 2.6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-1.3) > 1e-6 {
		t.Fatalf("objective = %v, want 1.3", sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x binary, x >= 0.4, x <= 0.6 → LP feasible, no integer point.
	p := NewProblem(lp.Minimize)
	x := p.AddBinary("x", 1)
	p.MustConstraint("lo", lp.Expr{}.Plus(x, 1), lp.GE, 0.4)
	p.MustConstraint("hi", lp.Expr{}.Plus(x, 1), lp.LE, 0.6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x := p.AddVar("x", 1)
	p.SetInteger(x)
	p.MustConstraint("lo", lp.Expr{}.Plus(x, 1), lp.GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoIntegersRejected(t *testing.T) {
	p := NewProblem(lp.Minimize)
	p.AddVar("x", 1)
	if _, err := p.Solve(); err != ErrNoIntegers {
		t.Fatalf("expected ErrNoIntegers, got %v", err)
	}
}

func TestNodeLimit(t *testing.T) {
	// A knapsack big enough to need several nodes, with the node budget
	// forced to 1: must return NodeLimit, not hang.
	p := NewProblem(lp.Maximize)
	var e lp.Expr
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		v := p.AddBinary("", 1+rng.Float64())
		e = e.Plus(v, 1+rng.Float64()*3)
	}
	p.MustConstraint("cap", e, lp.LE, 8)
	p.SetMaxNodes(1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status = %v, want node limit", sol.Status)
	}
}

// bruteForceBinary enumerates all 0/1 assignments of the binary variables,
// treating the instance as pure binary (tests only build such instances),
// and returns the best feasible objective.
func bruteForceBinary(obj []float64, rows []bfRow, sense lp.Sense, n int) (float64, bool) {
	best := math.Inf(1)
	if sense == lp.Maximize {
		best = math.Inf(-1)
	}
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x[i] = 1
			}
		}
		ok := true
		for _, r := range rows {
			lhs := 0.0
			for j, c := range r.coef {
				lhs += c * x[j]
			}
			switch r.rel {
			case lp.LE:
				if lhs > r.rhs+1e-9 {
					ok = false
				}
			case lp.GE:
				if lhs < r.rhs-1e-9 {
					ok = false
				}
			case lp.EQ:
				if math.Abs(lhs-r.rhs) > 1e-9 {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		v := 0.0
		for j, c := range obj {
			v += c * x[j]
		}
		if sense == lp.Minimize {
			if v < best {
				best = v
			}
		} else if v > best {
			best = v
		}
		found = true
	}
	return best, found
}

type bfRow struct {
	coef []float64
	rel  lp.Rel
	rhs  float64
}

func TestPropertyBinaryMILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		sense := lp.Minimize
		if rng.Intn(2) == 0 {
			sense = lp.Maximize
		}
		p := NewProblem(sense)
		obj := make([]float64, n)
		vars := make([]lp.Var, n)
		for i := range vars {
			obj[i] = float64(rng.Intn(21) - 10)
			vars[i] = p.AddBinary("", obj[i])
		}
		var rows []bfRow
		for r := 0; r < 1+rng.Intn(4); r++ {
			coef := make([]float64, n)
			var e lp.Expr
			for i := range vars {
				coef[i] = float64(rng.Intn(9) - 4)
				if coef[i] != 0 {
					e = e.Plus(vars[i], coef[i])
				}
			}
			if len(e) == 0 {
				continue
			}
			rel := lp.Rel(rng.Intn(2)) // LE or GE; EQ too often infeasible
			rhs := float64(rng.Intn(13) - 4)
			p.MustConstraint("", e, rel, rhs)
			rows = append(rows, bfRow{coef, rel, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		bfObj, bfFound := bruteForceBinary(obj, rows, sense, n)
		switch sol.Status {
		case Optimal:
			if !bfFound {
				t.Fatalf("trial %d: MILP optimal %v but brute force infeasible", trial, sol.Objective)
			}
			if math.Abs(sol.Objective-bfObj) > 1e-6 {
				t.Fatalf("trial %d: MILP %v vs brute force %v", trial, sol.Objective, bfObj)
			}
		case Infeasible:
			if bfFound {
				t.Fatalf("trial %d: MILP infeasible but brute force found %v", trial, bfObj)
			}
		default:
			t.Fatalf("trial %d: unexpected status %v", trial, sol.Status)
		}
	}
}

func TestMaximizeMixedInteger(t *testing.T) {
	// max 5x + 4y  s.t. 6x + 4y <= 24, x + 2y <= 6, x integer, y continuous.
	// LP optimum (3, 1.5) → obj 21; x already integral, so MILP = 21.
	p := NewProblem(lp.Maximize)
	x := p.AddVar("x", 5)
	p.SetInteger(x)
	y := p.AddVar("y", 4)
	p.MustConstraint("c1", lp.Expr{}.Plus(x, 6).Plus(y, 4), lp.LE, 24)
	p.MustConstraint("c2", lp.Expr{}.Plus(x, 1).Plus(y, 2), lp.LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-21) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 21", sol.Status, sol.Objective)
	}
}

func TestGapAllowsNearOptimal(t *testing.T) {
	// With a huge gap, any incumbent within the gap is accepted; the
	// solver must still return a feasible integer solution.
	p := NewProblem(lp.Maximize)
	var e lp.Expr
	vals := []float64{5, 4, 3}
	for i, v := range vals {
		b := p.AddBinary("", v)
		e = e.Plus(b, float64(i+2))
	}
	p.MustConstraint("cap", e, lp.LE, 5)
	p.SetGap(100) // prune everything after the first incumbent
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Objective must be a genuinely attainable value.
	if sol.Objective < 0 || sol.Objective > 12 {
		t.Fatalf("objective %v out of attainable range", sol.Objective)
	}
}

func TestSolutionValueOutOfRange(t *testing.T) {
	p := NewProblem(lp.Minimize)
	x := p.AddBinary("x", 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sol.Value(lp.Var(99))) {
		t.Fatal("out-of-range Value should be NaN")
	}
	_ = x
}
