package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"powercap/internal/coarsen"
	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/obs"
	"powercap/internal/problem"
	"powercap/internal/sim"
)

// Windowed LP decomposition (DESIGN.md §12). The monolithic fixed-vertex-
// order LP couples every event to every other only through (a) the event-
// order chain and (b) each task's precedence row — both of which cross a
// window boundary as a *single committed time or duration*, i.e. as a
// right-hand-side constant of the successor window. SolveWindowed exploits
// that: it slices the event order into cores (problem.Plan), solves every
// window speculatively in parallel against estimated boundary constants,
// then commits windows left to right, re-aiming each window's boundary RHS
// at the true committed values and repairing the speculative basis with
// dual simplex pivots — the same warm-start machinery cap sweeps use,
// pointed across space instead of across caps.
//
// Committed vertex times never come from the window LP's (degenerate)
// vertex values: after each commit the canonical earliest event times are
// recomputed by a forward replay of the committed durations under both
// precedence and the event-order chain. The replayed times are the
// component-wise minimal feasible times for the committed configuration
// mix, so the stitched schedule is feasible for the monolithic LP and its
// makespan is a true upper bound on (i.e. never below) the monolithic
// optimum — the decomposition gap reported by the scale exhibit.

// WindowedOptions tunes SolveWindowed.
type WindowedOptions struct {
	// Windows is the target number of event-order cores; <= 1 solves a
	// single window (the monolithic formulation run through the windowed
	// path — used by the equivalence harness). The actual count may come
	// back lower when simultaneous-event groups limit cut positions.
	Windows int
	// OverlapEvents extends each window's program past its core by this
	// many lookahead events (re-optimized and committed by the successor);
	// negative selects a quarter of the mean core size.
	OverlapEvents int
	// CoarsenEps merges same-rank compute chains whose cumulative work is
	// below this many seconds before the problem is built (0 disables; see
	// internal/coarsen).
	CoarsenEps float64
	// Parallel bounds the speculative solve workers; <= 0 uses GOMAXPROCS.
	Parallel int
}

// WindowedSchedule is a stitched windowed solve: a Schedule on the
// original (pre-coarsening) graph plus decomposition diagnostics.
type WindowedSchedule struct {
	*Schedule

	// Windows is the realized window count; CoarsenEps echoes the option.
	Windows    int
	CoarsenEps float64
	// CoarseVertices/CoarseTasks size the problem the LPs actually saw;
	// MergedTasks counts original tasks eliminated by coarsening.
	CoarseVertices int
	CoarseTasks    int
	MergedTasks    int

	// SpeculativeSolves counts phase-A LPs attempted; CommitSolves the
	// phase-B re-solves (windows whose boundary constants were exact reuse
	// the speculative solution and appear in neither); WarmStartHits the
	// commit solves that successfully repaired a speculative basis.
	SpeculativeSolves int
	CommitSolves      int
	WarmStartHits     int
	// Escalations counts infeasible commit windows that were widened (the
	// ladder re-solves [earlier core start, window end] with commitments
	// revoked; the terminal rung is the whole remaining order).
	Escalations int

	// numericalFallbacks counts window solves rescued by the per-window
	// numerical ladder (cold retry, then dense backend); read it with
	// NumericalFallbacks. Updated atomically — phase A solves in parallel.
	numericalFallbacks int64

	// SeamViolationW is the largest LP-semantic cap excess at any window
	// seam event: the committed powers of the tasks active at the first
	// event of each window, summed against the cap. Boundary coupling is
	// exact, so this is floating-point noise unless stitching is broken.
	SeamViolationW float64
	// SimMakespanS is the simulator's makespan for the stitched choices
	// (precedence-only, so at most MakespanS, which also enforces the
	// event-order chain).
	SimMakespanS float64
}

// NumericalFallbacks reports how many window solves needed the numerical
// fallback ladder (cold retry or dense backend) to complete.
func (w *WindowedSchedule) NumericalFallbacks() int {
	return int(atomic.LoadInt64(&w.numericalFallbacks))
}

// WarmStartRate is WarmStartHits / CommitSolves (1 when every commit
// reused a speculative basis; 0 when none did or no commit solves ran).
func (w *WindowedSchedule) WarmStartRate() float64 {
	if w.CommitSolves == 0 {
		return 0
	}
	return float64(w.WarmStartHits) / float64(w.CommitSolves)
}

// SolveWindowed solves the fixed-vertex-order problem by windowed
// decomposition under the job-level power constraint capW.
func (s *Solver) SolveWindowed(g *dag.Graph, capW float64, opts WindowedOptions) (*WindowedSchedule, error) {
	return s.SolveWindowedCtx(context.Background(), g, capW, opts)
}

// SolveWindowedCtx is SolveWindowed with per-request cancellation and obs
// span parentage (window builds, speculative and commit solves, and the
// stitch all record as spans under ctx).
func (s *Solver) SolveWindowedCtx(ctx context.Context, g *dag.Graph, capW float64, opts WindowedOptions) (*WindowedSchedule, error) {
	ctx, span := obs.Start(ctx, "core.windowed")
	defer span.End()
	span.SetAttr("cap_w", capW)
	span.SetAttr("windows_req", opts.Windows)

	_, csp := obs.Start(ctx, "dag.coarsen")
	cg, mapping, err := coarsen.Coarsen(g, opts.CoarsenEps)
	csp.SetAttr("eps_s", opts.CoarsenEps)
	if err != nil {
		csp.End()
		return nil, err
	}
	csp.SetAttr("merged_tasks", mapping.MergedTasks)
	csp.End()

	ir, err := s.IRCtx(ctx, cg)
	if err != nil {
		return nil, err
	}
	plan := s.planCtx(ctx, cg, ir, opts.Windows, opts.OverlapEvents)
	span.SetAttr("windows", len(plan.Windows))
	span.SetAttr("coarse_tasks", len(cg.Tasks))

	ws := &WindowedSchedule{
		Windows:        len(plan.Windows),
		CoarsenEps:     opts.CoarsenEps,
		CoarseVertices: len(cg.Vertices),
		CoarseTasks:    len(cg.Tasks),
		MergedTasks:    mapping.MergedTasks,
	}
	coarse := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(cg.Tasks)),
		VertexTimeS: make([]float64, len(cg.Vertices)),
	}

	if err := s.solveWindows(ctx, plan, capW, opts, ws, coarse); err != nil {
		return nil, err
	}

	_, ssp := obs.Start(ctx, "window.stitch")
	sched := s.expandSchedule(mapping, coarse)
	ws.Schedule = sched
	ws.SeamViolationW = seamViolation(plan, capW, coarse)
	ssp.SetAttr("seam_violation_w", ws.SeamViolationW)
	ssp.End()

	// Simulator validation of the stitched schedule on the original graph.
	pts := sim.Points(g)
	for i, t := range g.Tasks {
		if t.Kind != dag.Compute {
			continue
		}
		pts[i] = sim.TaskPoint{Duration: sched.Choices[i].DurationS, PowerW: sched.Choices[i].PowerW}
	}
	res, err := sim.EvaluateCtx(ctx, g, pts, sim.SlackHoldsTaskPower, 0)
	if err != nil {
		return nil, fmt.Errorf("core: stitched schedule failed simulation: %w", err)
	}
	ws.SimMakespanS = res.Makespan
	if res.Makespan > sched.MakespanS*(1+1e-6)+1e-9 {
		return nil, fmt.Errorf("core: stitched makespan %v below simulated %v (stitch bug)", sched.MakespanS, res.Makespan)
	}
	return ws, nil
}

// planKey keys the window-plan cache: same graph, same slicing. A
// defaulted overlap request is normalized to −1 so equivalent requests
// share an entry.
type planKey struct {
	digest  [32]byte
	windows int
	overlap int
}

// planCtx returns the (digest, windows, overlap)-cached window plan,
// building it on first use. A defaulted overlap (< 0) resolves to a
// quarter of the mean core size.
func (s *Solver) planCtx(ctx context.Context, g *dag.Graph, ir *problem.IR, windows, overlap int) *problem.Plan {
	key := planKey{digest: dag.Digest(g), windows: windows, overlap: overlap}
	if overlap < 0 {
		key.overlap = -1
	}
	s.mu.Lock()
	if p, ok := s.planCache[key]; ok {
		s.mu.Unlock()
		_, sp := obs.Start(ctx, "window.plan")
		sp.SetAttr("cached", true)
		sp.End()
		return p
	}
	s.mu.Unlock()

	_, sp := obs.Start(ctx, "window.plan")
	sp.SetAttr("cached", false)
	if overlap < 0 {
		if windows < 1 {
			windows = 1
		}
		overlap = len(ir.EventOrder) / windows / 4
	}
	p := ir.Windowize(windows, overlap)
	sp.SetAttr("windows", len(p.Windows))
	sp.End()

	s.mu.Lock()
	if s.planCache == nil {
		s.planCache = make(map[planKey]*problem.Plan)
	}
	if prior, ok := s.planCache[key]; ok {
		p = prior
	} else {
		s.planCache[key] = p
	}
	s.mu.Unlock()
	return p
}

// committedState carries phase B's left-to-right commitments: canonical
// event times for every committed position, and the chosen duration and
// power of every committed task.
type committedState struct {
	T []float64 // per coarse vertex, valid for positions < commitPos
	D []float64 // per coarse task, valid when committed
	P []float64
}

// estimates are phase A's stand-ins for not-yet-committed boundary
// constants: initial-schedule times, and each task at the highest frontier
// point not exceeding a fair per-socket share of the cap (a far better
// guess of cap-constrained operating points than the max-configuration
// initial schedule).
func (s *Solver) windowEstimates(ir *problem.IR, capW float64) *committedState {
	g := ir.G
	est := &committedState{
		T: ir.Init.VertexTime,
		D: make([]float64, len(g.Tasks)),
		P: make([]float64, len(g.Tasks)),
	}
	fair := capW
	if g.NumRanks > 0 {
		fair = capW / float64(g.NumRanks)
	}
	for _, t := range g.Tasks {
		switch ir.Class[t.ID] {
		case problem.Message:
			est.D[t.ID] = t.FixedDur
		case problem.Fixed:
			est.P[t.ID] = ir.FixedPowerW[t.ID]
		case problem.Tunable:
			cols := ir.Cols[t.ID]
			k, ok := cols.F.Floor(fair)
			if !ok {
				k = 0
			}
			est.D[t.ID] = cols.Durs[k]
			est.P[t.ID] = cols.F.Pts[k].PowerW
		}
	}
	return est
}

// solveWindows runs phase A (parallel speculative solves) and phase B
// (sequential commits with warm-started repairs), filling the coarse
// schedule.
func (s *Solver) solveWindows(ctx context.Context, plan *problem.Plan, capW float64, opts WindowedOptions, ws *WindowedSchedule, out *Schedule) error {
	ir := plan.IR
	nW := len(plan.Windows)
	est := s.windowEstimates(ir, capW)

	// Phase A: build every window's LP and solve it speculatively against
	// estimated boundary constants, in parallel.
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nW {
		workers = nW
	}
	built := make([]*windowLP, nW)
	specSol := make([]*lp.Solution, nW)
	specStats := make([]Stats, nW)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for w := 0; w < nW; w++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(w int) {
			defer wg.Done()
			defer func() { <-sem }()
			bctx, bsp := obs.Start(ctx, "window.build")
			bsp.SetAttr("window", w)
			b := s.buildWindowLP(plan, plan.Windows[w])
			bsp.End()
			built[w] = b
			b.aim(ir, capW, est)
			if b.constExcess(capW, est) > feasTol {
				return // speculative estimates already over the cap; commit solve decides
			}
			sctx, ssp := obs.Start(bctx, "window.solve")
			ssp.SetAttr("window", w)
			ssp.SetAttr("speculative", true)
			sol, err := s.solveWindowResilient(sctx, b, nil, &specStats[w], ws)
			ssp.End()
			if err == nil {
				specSol[w] = sol
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: windowed solve canceled: %w", err)
	}
	for w := range built {
		if built[w] == nil { // canceled before build, or speculative floor check bailed
			built[w] = s.buildWindowLP(plan, plan.Windows[w])
		}
		ws.SpeculativeSolves += specStats[w].Solves
		out.Stats.Add(specStats[w])
	}

	// Phase B: commit left to right.
	st := &committedState{
		T: make([]float64, len(ir.G.Vertices)),
		D: make([]float64, len(ir.G.Tasks)),
		P: make([]float64, len(ir.G.Tasks)),
	}
	for w := 0; w < nW; w++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: windowed solve canceled: %w", err)
		}
		b := built[w]
		var sol *lp.Solution
		if !b.boundaryCoupled() && specSol[w] != nil {
			// Boundary-free window (the first one, or a single-window
			// plan): the speculative solution is already exact.
			sol = specSol[w]
		} else {
			b.aim(ir, capW, st)
			infeasible := b.constExcess(capW, st) > feasTol
			if !infeasible {
				var basis []int
				if specSol[w] != nil {
					basis = specSol[w].Basis
				}
				sctx, ssp := obs.Start(ctx, "window.solve")
				ssp.SetAttr("window", w)
				ssp.SetAttr("speculative", false)
				var err error
				preWarm := out.Stats.WarmStarts
				ws.CommitSolves++
				sol, err = s.solveWindowResilient(sctx, b, basis, &out.Stats, ws)
				ssp.End()
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						return err
					}
					infeasible = true
				} else if out.Stats.WarmStarts > preWarm {
					ws.WarmStartHits++
				}
			}
			if infeasible {
				var err error
				sol, b, err = s.escalate(ctx, plan, capW, st, w, ws, out)
				if err != nil {
					return err
				}
			}
		}
		s.commitWindow(plan, b, sol, st, out)
	}

	for i := range ir.G.Vertices {
		out.VertexTimeS[i] = st.T[i]
	}
	out.MakespanS = finalizeTime(ir.G, out.VertexTimeS)
	return nil
}

// escalate handles an infeasible commit window: earlier commitments are
// progressively revoked by widening the window's core start back across
// previously committed windows (doubling the span each rung), rebuilding
// and re-solving cold. The terminal rung spans the whole event order and
// is exactly the monolithic program over the remaining decisions, so a
// genuinely feasible cap always terminates here; a genuinely infeasible
// one surfaces as ErrInfeasible.
func (s *Solver) escalate(ctx context.Context, plan *problem.Plan, capW float64, st *committedState, w int, ws *WindowedSchedule, out *Schedule) (*lp.Solution, *windowLP, error) {
	ir := plan.IR
	win := plan.Windows[w]
	back := 1
	for {
		prev := w - back
		if prev < 0 {
			prev = 0
		}
		wide := problem.Window{
			Index:     win.Index,
			CoreStart: plan.Windows[prev].CoreStart,
			CoreEnd:   win.CoreEnd,
			ExtEnd:    win.ExtEnd,
		}
		ws.Escalations++
		bctx, bsp := obs.Start(ctx, "window.build")
		bsp.SetAttr("window", w)
		bsp.SetAttr("escalated_from", wide.CoreStart)
		b := s.buildWindowLP(plan, wide)
		bsp.End()
		b.aim(ir, capW, st)
		if b.constExcess(capW, st) <= feasTol {
			sctx, ssp := obs.Start(bctx, "window.solve")
			ssp.SetAttr("window", w)
			ssp.SetAttr("escalated", true)
			ws.CommitSolves++
			sol, err := s.solveWindowResilient(sctx, b, nil, &out.Stats, ws)
			ssp.End()
			if err == nil {
				return sol, b, nil
			}
			if !errors.Is(err, ErrInfeasible) {
				return nil, nil, err
			}
		}
		if wide.CoreStart == 0 && wide.ExtEnd == len(ir.EventOrder) {
			return nil, nil, fmt.Errorf("%w: cap %.1f W (windowed, after full escalation)", ErrInfeasible, capW)
		}
		if wide.CoreStart == 0 {
			// Out of history to revoke: take the rest of the order too.
			win.ExtEnd = len(ir.EventOrder)
			win.CoreEnd = win.ExtEnd
			continue
		}
		back *= 2
	}
}

// commitWindow extracts the solved window's decisions for its core-owned
// tasks into the committed state and the coarse schedule, then replays the
// canonical event times across the committed span.
func (s *Solver) commitWindow(plan *problem.Plan, b *windowLP, sol *lp.Solution, st *committedState, out *Schedule) {
	ir := plan.IR
	for _, tid := range plan.TasksWithSrcIn(b.win.CoreStart, b.win.CoreEnd) {
		t := &ir.G.Tasks[tid]
		var choice TaskChoice
		switch ir.Class[tid] {
		case problem.Message:
			choice.DurationS = t.FixedDur
		case problem.Fixed:
			choice.PowerW = ir.FixedPowerW[tid]
			choice.DiscretePowerW = ir.FixedPowerW[tid]
			choice.Discrete = machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1}
		case problem.Tunable:
			choice = tunableChoice(b.tv[tid], sol)
		}
		out.Choices[tid] = choice
		st.D[tid] = choice.DurationS
		st.P[tid] = choice.PowerW
	}
	// Makespan sensitivity: duals of the committed core's power rows.
	for _, pr := range b.powerRefs {
		if pr.pos >= b.win.CoreStart && pr.pos < b.win.CoreEnd {
			out.MarginalSecPerW += sol.DualOf(pr.row)
		}
	}
	replayRange(plan, st, b.win.CoreStart, b.win.CoreEnd)
}

// tunableChoice reads one tunable task's configuration mix out of a window
// solution (the windowed counterpart of extractInto's tunable arm).
func tunableChoice(v *taskLPVars, sol *lp.Solution) TaskChoice {
	choice := TaskChoice{}
	f := v.cols.F
	const fracTol = 1e-9
	for k, cv := range v.cs {
		frac := sol.Value(cv)
		if frac <= fracTol {
			continue
		}
		choice.Mix = append(choice.Mix, MixEntry{
			Config:    f.Cfgs[k],
			Frac:      frac,
			DurationS: v.cols.Durs[k],
			PowerW:    f.Pts[k].PowerW,
		})
		choice.DurationS += frac * v.cols.Durs[k]
		choice.PowerW += frac * f.Pts[k].PowerW
	}
	if idx, ok := f.Nearest(choice.PowerW); ok {
		choice.Discrete = f.Cfgs[idx]
		choice.DiscreteDurationS = v.cols.Durs[idx]
		choice.DiscretePowerW = f.Pts[idx].PowerW
	}
	return choice
}

// replayRange advances the canonical earliest event times over positions
// [from, to): each simultaneous group fires at the maximum of the previous
// event's time (the order chain) and its members' precedence completions
// under the committed durations. Both boundaries are core cuts, so no
// simultaneous group straddles them.
func replayRange(plan *problem.Plan, st *committedState, from, to int) {
	ir := plan.IR
	order := ir.EventOrder
	p := from
	for p < to {
		q := p + 1
		for q < to && ir.Simultaneous(order[q-1], order[q]) {
			q++
		}
		t := 0.0
		if p > 0 {
			t = st.T[order[p-1]]
		}
		for i := p; i < q; i++ {
			for _, tid := range ir.G.TasksInto(order[i]) {
				src := ir.G.Tasks[tid].Src
				if plan.Pos[src] >= p {
					continue // intra-group edges are zero-duration by construction
				}
				if c := st.T[src] + st.D[tid]; c > t {
					t = c
				}
			}
		}
		for i := p; i < q; i++ {
			st.T[order[i]] = t
		}
		p = q
	}
}

// seamViolation reports the largest cap excess at any window seam event
// under the committed task powers — the LP-semantic check the stitching
// property test pins near zero.
func seamViolation(plan *problem.Plan, capW float64, coarse *Schedule) float64 {
	ir := plan.IR
	worst := 0.0
	for _, w := range plan.Windows[1:] {
		vi := ir.EventOrder[w.CoreStart]
		total := 0.0
		for _, tid := range ir.Active[vi] {
			total += coarse.Choices[tid].PowerW
		}
		if ex := total - capW; ex > worst {
			worst = ex
		}
	}
	return worst
}

// expandSchedule maps a coarse schedule back to the original graph through
// the coarsening bookkeeping: merged choices split work-proportionally
// (exact — constituents share the frontier), interior vertex times are
// reconstructed from the chain source plus cumulative constituent
// durations, and degenerate constituents take the idle draw the monolithic
// extractor assigns Fixed tasks.
func (s *Solver) expandSchedule(m *coarsen.Mapping, coarse *Schedule) *Schedule {
	if m.Identity() {
		return coarse
	}
	g := m.Orig
	out := &Schedule{
		CapW:            coarse.CapW,
		MakespanS:       coarse.MakespanS,
		Choices:         make([]TaskChoice, len(g.Tasks)),
		MarginalSecPerW: coarse.MarginalSecPerW,
		Stats:           coarse.Stats,
	}
	coarseDur := make([]float64, len(m.Coarse.Tasks))
	for ct := range m.Coarse.Tasks {
		coarseDur[ct] = coarse.Choices[ct].DurationS
	}
	out.VertexTimeS = m.ExpandVertexTimes(coarse.VertexTimeS, coarseDur)

	for ct, group := range m.Groups {
		ch := coarse.Choices[ct]
		if len(group) == 1 {
			out.Choices[group[0]] = ch
			continue
		}
		fracs := m.Fractions(dag.TaskID(ct))
		for i, tid := range group {
			t := &g.Tasks[tid]
			if t.Work <= 0 {
				idle := s.Model.IdlePower(s.eff(t.Rank))
				out.Choices[tid] = TaskChoice{
					PowerW:         idle,
					DiscretePowerW: idle,
					Discrete:       machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1},
				}
				continue
			}
			scaled := TaskChoice{
				DurationS:         ch.DurationS * fracs[i],
				PowerW:            ch.PowerW,
				Discrete:          ch.Discrete,
				DiscreteDurationS: ch.DiscreteDurationS * fracs[i],
				DiscretePowerW:    ch.DiscretePowerW,
			}
			for _, e := range ch.Mix {
				scaled.Mix = append(scaled.Mix, MixEntry{
					Config:    e.Config,
					Frac:      e.Frac,
					DurationS: e.DurationS * fracs[i],
					PowerW:    e.PowerW,
				})
			}
			out.Choices[tid] = scaled
		}
	}
	return out
}
