package core

import (
	"context"
	"fmt"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/problem"
)

// This file turns the shared problem IR (internal/problem) into concrete
// fixed-vertex-order programs. The emitters below are the single source of
// the formulation's rows; buildLP (continuous), SolveDiscrete (binary), and
// SolveSlackAware (enlarged event set) all assemble from them, so the five
// backends differ only in variable domains and event/power accounting —
// never in how the skeleton is derived from the graph.

// taskLPVars are the configuration-fraction variables of one tunable task,
// over its IR frontier columns.
type taskLPVars struct {
	cols *problem.Columns
	cs   []lp.Var
}

// powerRow records one event-power constraint: its row index in the LP and
// the fixed power already deducted from the cap on its right-hand side
// (rhs = capW − deduct).
type powerRow struct {
	row    int
	deduct float64
	vertex int
}

// builtLP is a fixed-vertex-order LP built once per graph. The power cap
// capW enters the program only through the right-hand sides of the event
// power rows (Eq. 11), so one builtLP serves a whole cap sweep: each sweep
// point mutates the power-row RHS values in place (Problem.SetRHS) and
// re-solves, warm starting from the previous point's basis.
type builtLP struct {
	ir   *problem.IR
	prob *lp.Problem
	vVar []lp.Var
	tv   map[dag.TaskID]*taskLPVars

	powerRows []powerRow

	// Events with no tunable task generate no row; the largest fixed draw
	// among them is a hard feasibility floor checked against each cap.
	fixedFloorW      float64
	fixedFloorVertex int
}

// emitSkeleton emits the rows every fixed-vertex-order program shares:
// vertex-time variables with the Init pin (Eqs. 1–2), configuration
// variables over the IR's frontier columns with their convexity rows
// (Eqs. 6–9), and task precedence rows (Eqs. 3–4). addCfgVar creates each
// configuration variable, letting the MILP substitute binaries (Eq. 5)
// without duplicating the skeleton.
func emitSkeleton(ir *problem.IR, prob *lp.Problem, addCfgVar func(name string, powerW float64) lp.Var) ([]lp.Var, map[dag.TaskID]*taskLPVars) {
	g := ir.G

	vVar := make([]lp.Var, len(g.Vertices))
	for i := range g.Vertices {
		obj := 0.0
		if g.Vertices[i].Kind == dag.VFinalize {
			obj = 1
		}
		vVar[i] = prob.AddVar(fmt.Sprintf("v%d", i), obj)
		if g.Vertices[i].Kind == dag.VInit {
			prob.MustConstraint("init0", lp.Expr{}.Plus(vVar[i], 1), lp.EQ, 0)
		}
	}

	tv := make(map[dag.TaskID]*taskLPVars)
	for _, t := range g.Tasks {
		if ir.Class[t.ID] != problem.Tunable {
			continue
		}
		cols := ir.Cols[t.ID]
		v := &taskLPVars{cols: cols, cs: make([]lp.Var, len(cols.F.Pts))}
		var convex lp.Expr
		for k, p := range cols.F.Pts {
			v.cs[k] = addCfgVar(fmt.Sprintf("c%d_%d", t.ID, k), p.PowerW)
			convex = convex.Plus(v.cs[k], 1)
		}
		prob.MustConstraint(fmt.Sprintf("cvx%d", t.ID), convex, lp.EQ, 1)
		tv[t.ID] = v
	}

	// Task precedence (Eqs. 3–4 with s and d substituted):
	// v_dst − v_src ≥ Σ_k d_{i,k} c_{i,k}  (or the fixed duration).
	for _, t := range g.Tasks {
		expr := lp.Expr{}.Plus(vVar[t.Dst], 1).Plus(vVar[t.Src], -1)
		rhs := 0.0
		switch ir.Class[t.ID] {
		case problem.Message:
			rhs = t.FixedDur
		case problem.Fixed:
			// ≥ 0: ordering only.
		case problem.Tunable:
			v := tv[t.ID]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.cols.Durs[k])
			}
		}
		prob.MustConstraint(fmt.Sprintf("prec%d", t.ID), expr, lp.GE, rhs)
	}
	return vVar, tv
}

// emitEventOrder emits the fixed event order (Eqs. 12–13): the IR's
// vertices chained in initial-time order, simultaneous events pinned equal.
func emitEventOrder(ir *problem.IR, prob *lp.Problem, vVar []lp.Var) {
	for i := 1; i < len(ir.EventOrder); i++ {
		prev, cur := ir.EventOrder[i-1], ir.EventOrder[i]
		expr := lp.Expr{}.Plus(vVar[cur], 1).Plus(vVar[prev], -1)
		if ir.Simultaneous(prev, cur) {
			prob.MustConstraint(fmt.Sprintf("eq%d", i), expr, lp.EQ, 0)
		} else {
			prob.MustConstraint(fmt.Sprintf("ord%d", i), expr, lp.GE, 0)
		}
	}
}

// emitPowerRows emits one event-power row per vertex with a tunable active
// task (Eqs. 10–11 with P_j substituted): the powers of the active tasks
// sum to at most PC, with constant draws of degenerate tasks moved to the
// right-hand side. Rows are emitted at their deduction-only baseline
// (cap 0); callers aim them at a concrete cap through SetRHS. Events with
// only fixed draws yield no row; the largest such draw is returned as the
// feasibility floor every cap must clear.
func emitPowerRows(ir *problem.IR, prob *lp.Problem, tv map[dag.TaskID]*taskLPVars) (rows []powerRow, floorW float64, floorVertex int) {
	floorVertex = -1
	for vi := range ir.G.Vertices {
		var expr lp.Expr
		deduct := 0.0
		for _, tid := range ir.Active[vi] {
			if v, ok := tv[tid]; ok {
				for k := range v.cs {
					expr = expr.Plus(v.cs[k], v.cols.F.Pts[k].PowerW)
				}
			} else {
				deduct += ir.FixedPowerW[tid]
			}
		}
		if len(expr) == 0 {
			if deduct > floorW {
				floorW = deduct
				floorVertex = vi
			}
			continue
		}
		rows = append(rows, powerRow{
			row:    prob.NumConstraints(),
			deduct: deduct,
			vertex: vi,
		})
		prob.MustConstraint(fmt.Sprintf("pow%d", vi), expr, lp.LE, -deduct)
	}
	return rows, floorW, floorVertex
}

// buildLP constructs the cap-independent LP for graph g: variables,
// precedence, event-order, and event-power rows, with the power-row RHS
// values left at their deduction-only baseline (cap 0). ctx carries obs
// span parentage only.
func (s *Solver) buildLP(ctx context.Context, g *dag.Graph) (*builtLP, error) {
	ir, err := s.IRCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	return s.buildFromIR(ir), nil
}

// buildFromIR emits the continuous LP from an already-built IR.
func (s *Solver) buildFromIR(ir *problem.IR) *builtLP {
	b := &builtLP{ir: ir, prob: lp.NewProblem(lp.Minimize)}
	// Configuration-fraction variables carry the power tiebreak on the
	// objective (see Solver.PowerTiebreak).
	b.vVar, b.tv = emitSkeleton(ir, b.prob, func(name string, powerW float64) lp.Var {
		return b.prob.AddVar(name, s.PowerTiebreak*powerW)
	})
	emitEventOrder(ir, b.prob, b.vVar)
	b.powerRows, b.fixedFloorW, b.fixedFloorVertex = emitPowerRows(ir, b.prob, b.tv)
	return b
}

// solveBuilt re-aims the built LP at capW and solves it, warm starting from
// warmBasis when one is supplied (sparse backend only). Solver effort is
// accumulated into st. The returned solution is always Optimal; infeasible
// caps surface as ErrInfeasible, and a canceled ctx as an error wrapping
// ctx.Err() (so errors.Is against context.Canceled/DeadlineExceeded works).
func (s *Solver) solveBuilt(ctx context.Context, b *builtLP, capW float64, warmBasis []int, backend lp.Backend, eng lp.Engine, st *Stats) (*lp.Solution, error) {
	if b.fixedFloorW > capW {
		return nil, fmt.Errorf("%w: fixed idle power exceeds cap %.1f W at event %d", ErrInfeasible, capW, b.fixedFloorVertex)
	}
	for _, pr := range b.powerRows {
		if err := b.prob.SetRHS(pr.row, capW-pr.deduct); err != nil {
			return nil, err
		}
	}

	opts := []lp.Option{
		lp.WithBackend(backend),
		lp.WithEngine(eng),
		lp.WithPricing(s.Pricing),
		lp.WithSpanContext(ctx),
	}
	if len(warmBasis) > 0 {
		opts = append(opts, lp.WithWarmBasis(warmBasis))
	}
	if ctx != nil && ctx != context.Background() {
		opts = append(opts, lp.WithContext(ctx))
	}
	sol, err := lp.Solve(b.prob, opts...)
	if err != nil {
		return nil, err
	}
	st.AddSolve(b.prob.NumVars(), b.prob.NumConstraints(), sol)

	switch sol.Status {
	case lp.Optimal:
		return sol, nil
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	case lp.Canceled:
		cause := context.Canceled
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
		}
		return nil, fmt.Errorf("core: solve canceled after %d pivots: %w", sol.Iters, cause)
	default:
		return nil, fmt.Errorf("core: LP solver returned %v (cap %.1f W)", sol.Status, capW)
	}
}

// extractInto reads an Optimal solution back into schedule fields: vertex
// times, the power shadow price, and per-task choices (through taskMap).
func (s *Solver) extractInto(b *builtLP, sol *lp.Solution, out *Schedule, taskMap []dag.TaskID, vt []float64) {
	g := b.ir.G
	for i := range g.Vertices {
		vt[i] = sol.Value(b.vVar[i])
	}
	// Raising PC relaxes every event-power row at once, so the makespan
	// sensitivity is the sum of their duals.
	for _, pr := range b.powerRows {
		out.MarginalSecPerW += sol.DualOf(pr.row)
	}

	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch b.ir.Class[t.ID] {
		case problem.Message:
			choice.DurationS = t.FixedDur
		case problem.Fixed:
			choice.PowerW = b.ir.FixedPowerW[t.ID]
			choice.DiscretePowerW = b.ir.FixedPowerW[t.ID]
			choice.Discrete = machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1}
		case problem.Tunable:
			v := b.tv[t.ID]
			f := v.cols.F
			const fracTol = 1e-9
			for k, cv := range v.cs {
				frac := sol.Value(cv)
				if frac <= fracTol {
					continue
				}
				choice.Mix = append(choice.Mix, MixEntry{
					Config:    f.Cfgs[k],
					Frac:      frac,
					DurationS: v.cols.Durs[k],
					PowerW:    f.Pts[k].PowerW,
				})
				choice.DurationS += frac * v.cols.Durs[k]
				choice.PowerW += frac * f.Pts[k].PowerW
			}
			// Discrete rounding: nearest frontier point by power.
			if idx, ok := f.Nearest(choice.PowerW); ok {
				choice.Discrete = f.Cfgs[idx]
				choice.DiscreteDurationS = v.cols.Durs[idx]
				choice.DiscretePowerW = f.Pts[idx].PowerW
			}
		}
		out.Choices[taskMap[t.ID]] = choice
	}
}

// solveInto builds and solves the LP for graph g under capW, writing task
// choices through taskMap into out.Choices and vertex times into vt.
func (s *Solver) solveInto(ctx context.Context, g *dag.Graph, capW float64, backend lp.Backend, eng lp.Engine, out *Schedule, taskMap []dag.TaskID, vt []float64) error {
	b, err := s.buildLP(ctx, g)
	if err != nil {
		return err
	}
	sol, err := s.solveBuilt(ctx, b, capW, nil, backend, eng, &out.Stats)
	if err != nil {
		return err
	}
	s.extractInto(b, sol, out, taskMap, vt)
	return nil
}
