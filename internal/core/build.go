package core

import (
	"context"
	"fmt"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/pareto"
	"powercap/internal/sim"
)

// initialSchedule computes the power-unconstrained schedule (every task at
// the maximum configuration) that fixes the event order and the activity
// sets R_j (Sec. 3.3).
func (s *Solver) initialSchedule(g *dag.Graph) (*sim.Result, error) {
	pts := sim.Points(g)
	maxCfg := s.Model.MaxConfig()
	for i, t := range g.Tasks {
		if t.Kind != dag.Compute {
			continue
		}
		pts[i] = sim.TaskPoint{
			Duration: s.Model.Duration(t.Work, t.Shape, maxCfg),
			PowerW:   s.Model.Power(t.Shape, maxCfg, s.eff(t.Rank)),
		}
	}
	return sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
}

// activitySets computes, for every vertex/event, the set of compute tasks
// active there: per rank, the task whose occupancy window — from its start
// until the rank's next task starts (task + its slack, which holds the
// task's power) — contains the event time. Events exactly at a window
// boundary belong to the newly starting task ("tasks are considered active
// at an event if they start at or are running at the time of the event").
func activitySets(g *dag.Graph, init *sim.Result) [][]dag.TaskID {
	byRank := make([][]dag.TaskID, g.NumRanks)
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			byRank[t.Rank] = append(byRank[t.Rank], t.ID)
		}
	}
	for r := range byRank {
		ids := byRank[r]
		sort.Slice(ids, func(i, j int) bool {
			if init.Start[ids[i]] != init.Start[ids[j]] {
				return init.Start[ids[i]] < init.Start[ids[j]]
			}
			return ids[i] < ids[j]
		})
	}

	active := make([][]dag.TaskID, len(g.Vertices))
	for vi := range g.Vertices {
		tj := init.VertexTime[vi]
		for r := 0; r < g.NumRanks; r++ {
			ids := byRank[r]
			if len(ids) == 0 {
				continue
			}
			// Last task whose start ≤ tj; ties in start resolved to the
			// later task ID (the one actually about to run).
			k := sort.Search(len(ids), func(k int) bool { return init.Start[ids[k]] > tj }) - 1
			if k < 0 {
				k = 0 // event precedes the rank's first task: charge it
			}
			active[vi] = append(active[vi], ids[k])
		}
	}
	return active
}

// taskLPVars are the configuration-fraction variables of one tunable task.
type taskLPVars struct {
	f    *frontier
	durs []float64 // per frontier point, scaled by task work
	cs   []lp.Var
}

// powerRow records one event-power constraint: its row index in the LP and
// the fixed power already deducted from the cap on its right-hand side
// (rhs = capW − deduct).
type powerRow struct {
	row    int
	deduct float64
	vertex int
}

// builtLP is a fixed-vertex-order LP built once per graph. The power cap
// capW enters the program only through the right-hand sides of the event
// power rows (Eq. 11), so one builtLP serves a whole cap sweep: each sweep
// point mutates the power-row RHS values in place (Problem.SetRHS) and
// re-solves, warm starting from the previous point's basis.
type builtLP struct {
	g          *dag.Graph
	prob       *lp.Problem
	vVar       []lp.Var
	tv         map[dag.TaskID]*taskLPVars
	fixedPower []float64 // zero-work tasks' constant draw
	powerRows  []powerRow

	// Events with no tunable task generate no row; the largest fixed draw
	// among them is a hard feasibility floor checked against each cap.
	fixedFloorW      float64
	fixedFloorVertex int
}

// buildLP constructs the cap-independent LP for graph g: variables,
// precedence, event-order, and event-power rows, with the power-row RHS
// values left at their deduction-only baseline (cap 0).
func (s *Solver) buildLP(g *dag.Graph) (*builtLP, error) {
	init, err := s.initialSchedule(g)
	if err != nil {
		return nil, err
	}
	active := activitySets(g, init)

	b := &builtLP{
		g:                g,
		prob:             lp.NewProblem(lp.Minimize),
		vVar:             make([]lp.Var, len(g.Vertices)),
		tv:               make(map[dag.TaskID]*taskLPVars),
		fixedPower:       make([]float64, len(g.Tasks)),
		fixedFloorVertex: -1,
	}
	prob := b.prob

	// Vertex-time variables (Eq. 2 pins Init; objective is vM, Eq. 1).
	for i := range g.Vertices {
		obj := 0.0
		if g.Vertices[i].Kind == dag.VFinalize {
			obj = 1
		}
		b.vVar[i] = prob.AddVar(fmt.Sprintf("v%d", i), obj)
		if g.Vertices[i].Kind == dag.VInit {
			prob.MustConstraint("init0", lp.Expr{}.Plus(b.vVar[i], 1), lp.EQ, 0)
		}
	}

	// Configuration-fraction variables per tunable compute task
	// (Eqs. 6–9), with the power tiebreak on the objective.
	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
			// Fixed duration, no socket power.
		case t.Work <= 0:
			// Degenerate compute edge (a rank passing straight between
			// two MPI calls): instantaneous, drawing idle power through
			// its slack window.
			b.fixedPower[t.ID] = s.Model.IdlePower(s.eff(t.Rank))
		default:
			f := s.Frontier(t.Shape, t.Rank)
			v := &taskLPVars{f: f, durs: make([]float64, len(f.pts)), cs: make([]lp.Var, len(f.pts))}
			var convex lp.Expr
			for k, p := range f.pts {
				v.durs[k] = p.TimeS * t.Work
				v.cs[k] = prob.AddVar(fmt.Sprintf("c%d_%d", t.ID, k), s.PowerTiebreak*p.PowerW)
				convex = convex.Plus(v.cs[k], 1)
			}
			prob.MustConstraint(fmt.Sprintf("cvx%d", t.ID), convex, lp.EQ, 1)
			b.tv[t.ID] = v
		}
	}

	// Task precedence (Eqs. 3–4 with s and d substituted):
	// v_dst − v_src ≥ Σ_k d_{i,k} c_{i,k}  (or the fixed duration).
	for _, t := range g.Tasks {
		expr := lp.Expr{}.Plus(b.vVar[t.Dst], 1).Plus(b.vVar[t.Src], -1)
		rhs := 0.0
		switch {
		case t.Kind == dag.Message:
			rhs = t.FixedDur
		case t.Work <= 0:
			// ≥ 0: ordering only.
		default:
			v := b.tv[t.ID]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.durs[k])
			}
		}
		prob.MustConstraint(fmt.Sprintf("prec%d", t.ID), expr, lp.GE, rhs)
	}

	// Fixed event order (Eqs. 12–13): chain the vertices in initial-time
	// order; simultaneous events are pinned equal.
	order := make([]dag.VertexID, len(g.Vertices))
	for i := range order {
		order[i] = dag.VertexID(i)
	}
	sort.Slice(order, func(a, bIdx int) bool {
		ta, tb := init.VertexTime[order[a]], init.VertexTime[order[bIdx]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[bIdx]
	})
	for i := 1; i < len(order); i++ {
		prev, cur := order[i-1], order[i]
		expr := lp.Expr{}.Plus(b.vVar[cur], 1).Plus(b.vVar[prev], -1)
		if init.VertexTime[prev] == init.VertexTime[cur] {
			prob.MustConstraint(fmt.Sprintf("eq%d", i), expr, lp.EQ, 0)
		} else {
			prob.MustConstraint(fmt.Sprintf("ord%d", i), expr, lp.GE, 0)
		}
	}

	// Event power (Eqs. 10–11 with P_j substituted): for every event, the
	// powers of the active tasks sum to at most PC; constant draws of
	// degenerate tasks move to the right-hand side. Row indices and
	// deductions are kept so a sweep can re-aim every row at a new cap and
	// so the power constraint's shadow price can be read from the duals.
	for vi := range g.Vertices {
		var expr lp.Expr
		deduct := 0.0
		for _, tid := range active[vi] {
			if v, ok := b.tv[tid]; ok {
				for k := range v.cs {
					expr = expr.Plus(v.cs[k], v.f.pts[k].PowerW)
				}
			} else {
				deduct += b.fixedPower[tid]
			}
		}
		if len(expr) == 0 {
			if deduct > b.fixedFloorW {
				b.fixedFloorW = deduct
				b.fixedFloorVertex = vi
			}
			continue
		}
		b.powerRows = append(b.powerRows, powerRow{
			row:    prob.NumConstraints(),
			deduct: deduct,
			vertex: vi,
		})
		prob.MustConstraint(fmt.Sprintf("pow%d", vi), expr, lp.LE, -deduct)
	}
	return b, nil
}

// solveBuilt re-aims the built LP at capW and solves it, warm starting from
// warmBasis when one is supplied (sparse backend only). Solver effort is
// accumulated into st. The returned solution is always Optimal; infeasible
// caps surface as ErrInfeasible, and a canceled ctx as an error wrapping
// ctx.Err() (so errors.Is against context.Canceled/DeadlineExceeded works).
func (s *Solver) solveBuilt(ctx context.Context, b *builtLP, capW float64, warmBasis []int, st *Stats) (*lp.Solution, error) {
	if b.fixedFloorW > capW {
		return nil, fmt.Errorf("%w: fixed idle power exceeds cap %.1f W at event %d", ErrInfeasible, capW, b.fixedFloorVertex)
	}
	for _, pr := range b.powerRows {
		if err := b.prob.SetRHS(pr.row, capW-pr.deduct); err != nil {
			return nil, err
		}
	}

	opts := []lp.Option{lp.WithBackend(s.Backend)}
	if len(warmBasis) > 0 {
		opts = append(opts, lp.WithWarmBasis(warmBasis))
	}
	if ctx != nil && ctx != context.Background() {
		opts = append(opts, lp.WithContext(ctx))
	}
	sol, err := lp.Solve(b.prob, opts...)
	if err != nil {
		return nil, err
	}
	st.Solves++
	st.Vars += b.prob.NumVars()
	st.Rows += b.prob.NumConstraints()
	st.SimplexIter += sol.Iters
	st.DualIter += sol.Stats.DualIters
	st.Refactorizations += sol.Stats.Refactorizations
	if sol.Stats.WarmStarted {
		st.WarmStarts++
	}

	switch sol.Status {
	case lp.Optimal:
		return sol, nil
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	case lp.Canceled:
		cause := context.Canceled
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
		}
		return nil, fmt.Errorf("core: solve canceled after %d pivots: %w", sol.Iters, cause)
	default:
		return nil, fmt.Errorf("core: LP solver returned %v (cap %.1f W)", sol.Status, capW)
	}
}

// extractInto reads an Optimal solution back into schedule fields: vertex
// times, the power shadow price, and per-task choices (through taskMap).
func (s *Solver) extractInto(b *builtLP, sol *lp.Solution, out *Schedule, taskMap []dag.TaskID, vt []float64) {
	g := b.g
	for i := range g.Vertices {
		vt[i] = sol.Value(b.vVar[i])
	}
	// Raising PC relaxes every event-power row at once, so the makespan
	// sensitivity is the sum of their duals.
	for _, pr := range b.powerRows {
		out.MarginalSecPerW += sol.DualOf(pr.row)
	}

	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch {
		case t.Kind == dag.Message:
			choice.DurationS = t.FixedDur
		case t.Work <= 0:
			choice.PowerW = b.fixedPower[t.ID]
			choice.DiscretePowerW = b.fixedPower[t.ID]
			choice.Discrete = machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1}
		default:
			v := b.tv[t.ID]
			const fracTol = 1e-9
			for k, cv := range v.cs {
				frac := sol.Value(cv)
				if frac <= fracTol {
					continue
				}
				choice.Mix = append(choice.Mix, MixEntry{
					Config:    v.f.cfgs[k],
					Frac:      frac,
					DurationS: v.durs[k],
					PowerW:    v.f.pts[k].PowerW,
				})
				choice.DurationS += frac * v.durs[k]
				choice.PowerW += frac * v.f.pts[k].PowerW
			}
			// Discrete rounding: nearest frontier point by power.
			if p, ok := pareto.NearestToMix(v.f.pts, choice.PowerW); ok {
				idx := frontierIndex(v.f, p)
				choice.Discrete = v.f.cfgs[idx]
				choice.DiscreteDurationS = v.durs[idx]
				choice.DiscretePowerW = v.f.pts[idx].PowerW
			}
		}
		out.Choices[taskMap[t.ID]] = choice
	}
}

// solveInto builds and solves the LP for graph g under capW, writing task
// choices through taskMap into out.Choices and vertex times into vt.
func (s *Solver) solveInto(ctx context.Context, g *dag.Graph, capW float64, out *Schedule, taskMap []dag.TaskID, vt []float64) error {
	b, err := s.buildLP(g)
	if err != nil {
		return err
	}
	sol, err := s.solveBuilt(ctx, b, capW, nil, &out.Stats)
	if err != nil {
		return err
	}
	s.extractInto(b, sol, out, taskMap, vt)
	return nil
}

// frontierIndex locates a pareto point within its frontier by config index.
func frontierIndex(f *frontier, p pareto.Point) int {
	for i := range f.pts {
		if f.pts[i].Index == p.Index {
			return i
		}
	}
	return 0
}
