package core

import (
	"math"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/workloads"
)

// Golden pre-refactor objectives. These makespans were captured from the
// private-builder implementations (core building its own activity sets and
// frontiers per backend) immediately before the solve path moved onto the
// shared internal/problem IR, on one measured iteration of each 8-rank
// workload proxy (Ranks 8, Iterations 4, Seed 1, WorkScale 0.5, slice 2)
// across four job caps. Any drift in activity sets, event order, frontier
// columns, or row emission shows up here as an objective change. The dense
// and sparse LPs agreed on every instance then, so one table pins both.
var goldenLP = map[string][4]float64{
	//            cap 70 W/socket  50 W         40 W         30 W
	"SP":     {0.119566612562, 0.144461208842, 0.170885324449, 0.232723018415},
	"BT":     {0.269011383734, 0.325771963927, 0.385924167022, 0.526868327779},
	"LULESH": {0.633797923242, 0.633797923242, 0.687703739237, 0.839460991070},
	"CoMD":   {0.336608320991, 0.370807751147, 0.443120572798, 0.620180402677},
}

// goldenSlackAware is the slack-aware variant's own pre-refactor table on
// the same instances. Idle-priced slack can free budget (landing below
// goldenLP) or its extra boundary events can tighten the fixed order
// (landing above); on these particular instances neither effect moves the
// optimum and the two tables coincide, but they are pinned independently so
// a regression in either formulation is caught on its own.
var goldenSlackAware = map[string][4]float64{
	"SP":     {0.119566612562, 0.144461208842, 0.170885324449, 0.232723018415},
	"BT":     {0.269011383734, 0.325771963927, 0.385924167022, 0.526868327779},
	"LULESH": {0.633797923242, 0.633797923242, 0.687703739237, 0.839460991070},
	"CoMD":   {0.336608320991, 0.370807751147, 0.443120572798, 0.620180402677},
}

var goldenCaps = [4]float64{70, 50, 40, 30}

func goldenSlice(t *testing.T, name string) *dag.Graph {
	t.Helper()
	w, err := workloads.ByName(name, workloads.Params{Ranks: 8, Iterations: 4, Seed: 1, WorkScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) < 3 {
		t.Fatalf("workload %s produced %d slices, want ≥ 3", name, len(slices))
	}
	return slices[2].Graph
}

// TestEquivalenceWithPreRefactorObjectives verifies that every continuous
// fixed-order backend consuming the shared IR reproduces the pre-refactor
// objectives exactly (to solver tolerance).
func TestEquivalenceWithPreRefactorObjectives(t *testing.T) {
	for name, want := range goldenLP {
		g := goldenSlice(t, name)
		for _, backend := range []lp.Backend{lp.BackendSparse, lp.BackendDense} {
			s := solver()
			s.Backend = backend
			for i, perSocket := range goldenCaps {
				sched, err := s.Solve(g, perSocket*8)
				if err != nil {
					t.Fatalf("%s backend %v cap %v: %v", name, backend, perSocket, err)
				}
				if rel := math.Abs(sched.MakespanS-want[i]) / want[i]; rel > 1e-9 {
					t.Errorf("%s backend %v cap %v: makespan %.12f, pre-refactor %.12f (rel %g)",
						name, backend, perSocket, sched.MakespanS, want[i], rel)
				}
			}
		}
	}
}

// TestSlackAwareEquivalence pins the slack-aware variant to its own
// pre-refactor objectives.
func TestSlackAwareEquivalence(t *testing.T) {
	for name, want := range goldenSlackAware {
		g := goldenSlice(t, name)
		s := solver()
		for i, perSocket := range goldenCaps {
			sched, err := s.SolveSlackAware(g, perSocket*8)
			if err != nil {
				t.Fatalf("%s cap %v: %v", name, perSocket, err)
			}
			if rel := math.Abs(sched.MakespanS-want[i]) / want[i]; rel > 1e-9 {
				t.Errorf("%s cap %v: slack-aware makespan %.12f, pre-refactor %.12f (rel %g)",
					name, perSocket, sched.MakespanS, want[i], rel)
			}
		}
	}
}

// TestDiscreteEquivalence pins the MILP branch-and-bound backend on a tiny
// instance (2 ranks) to its pre-refactor objectives.
func TestDiscreteEquivalence(t *testing.T) {
	w, err := workloads.ByName("SP", workloads.Params{Ranks: 2, Iterations: 2, Seed: 1, WorkScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	g := slices[1].Graph
	want := map[float64]float64{
		70: 0.122498476219,
		40: 0.174644225228,
		25: 0.342886291177,
	}
	s := solver()
	for perSocket, m := range want {
		sched, err := s.SolveDiscrete(g, perSocket*2)
		if err != nil {
			t.Fatalf("cap %v: %v", perSocket, err)
		}
		if rel := math.Abs(sched.MakespanS-m) / m; rel > 1e-9 {
			t.Errorf("cap %v: discrete makespan %.12f, pre-refactor %.12f (rel %g)",
				perSocket, sched.MakespanS, m, rel)
		}
	}
}

// TestIRCacheReusedAcrossSolves asserts the Solver builds the IR once per
// graph digest: the whole point of the cap-independent IR is that sweeps
// and repeated solves share one build.
func TestIRCacheReusedAcrossSolves(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	ir1, err := s.IR(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(g, 70); err != nil {
		t.Fatal(err)
	}
	ir2, err := s.IR(g)
	if err != nil {
		t.Fatal(err)
	}
	if ir1 != ir2 {
		t.Fatal("IR rebuilt for an unchanged graph")
	}
}
