package core

import (
	"context"
	"errors"

	"powercap/internal/dag"
	"powercap/internal/lp"
)

// CapSession is the warm re-solve entry for cap-only changes: one graph's
// whole-graph LP, built once, re-aimed at arbitrary caps. The cap enters the
// fixed-vertex-order program only through the right-hand sides of the event
// power rows, so every SolveAt after the first mutates those RHS values in
// place and warm starts from the previous successful solve's basis — the old
// basis stays dual feasible under an RHS-only change, so a few dual simplex
// pivots repair it instead of a full two-phase solve. Unlike SolveSweep,
// the caps need not be known up front: the cluster power market
// (internal/market) probes each job's power–time curve adaptively, asking
// for whatever cap its last transfer produced.
//
// A CapSession is NOT safe for concurrent use; it belongs to one caller
// (the market holds one session per job). The underlying Solver's shared
// IR and frontier caches are still used, so opening a session on a graph
// the Solver has already seen costs no rebuild.
type CapSession struct {
	s     *Solver
	g     *dag.Graph
	b     *builtLP
	basis []int
	stats Stats
}

// NewCapSession builds the whole-graph LP for g once and returns a session
// whose SolveAt re-solves it at arbitrary caps with warm starts. ctx carries
// obs span parentage for the (possibly cached) IR build.
func (s *Solver) NewCapSession(ctx context.Context, g *dag.Graph) (*CapSession, error) {
	b, err := s.buildLP(ctx, g)
	if err != nil {
		return nil, err
	}
	return &CapSession{s: s, g: g, b: b}, nil
}

// FixedFloorW is a hard lower bound on any feasible cap: the largest fixed
// (untunable) power draw at a single event. Caps at or below it are
// infeasible without a solve; the true feasibility floor — which also
// charges every tunable task's lowest-power configuration — lies above it
// and is what the market discovers by bisection.
func (cs *CapSession) FixedFloorW() float64 { return cs.b.fixedFloorW }

// Stats reports the solver effort accumulated across every SolveAt of this
// session (including failed and infeasible probes).
func (cs *CapSession) Stats() Stats { return cs.stats }

// SolveAt re-aims the session's LP at capW and solves it, warm starting
// from the last successful solve's basis. Infeasible caps return
// ErrInfeasible (cheap: the dual simplex proves infeasibility from the warm
// basis). A numerical breakdown on a warm start is retried once cold —
// the stale basis, not the program, is the usual culprit — before the typed
// error surfaces to the caller.
func (cs *CapSession) SolveAt(ctx context.Context, capW float64) (*Schedule, error) {
	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(cs.g.Tasks)),
		VertexTimeS: make([]float64, len(cs.g.Vertices)),
	}
	sol, err := cs.s.solveBuilt(ctx, cs.b, capW, cs.basis, cs.s.Backend, cs.s.Engine, &sched.Stats)
	var nerr *lp.NumericalError
	if err != nil && errors.As(err, &nerr) && len(cs.basis) > 0 {
		cs.basis = cs.basis[:0]
		sol, err = cs.s.solveBuilt(ctx, cs.b, capW, nil, cs.s.Backend, cs.s.Engine, &sched.Stats)
	}
	cs.stats.Add(sched.Stats)
	if err != nil {
		return nil, err
	}
	cs.s.extractInto(cs.b, sol, sched, identityTaskMap(len(cs.g.Tasks)), sched.VertexTimeS)
	sched.MakespanS = finalizeTime(cs.g, sched.VertexTimeS)
	if len(sol.Basis) > 0 {
		cs.basis = append(cs.basis[:0], sol.Basis...)
	}
	return sched, nil
}
