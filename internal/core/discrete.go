package core

import (
	"errors"
	"fmt"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/milp"
	"powercap/internal/problem"
)

// ErrDiscreteTooLarge guards SolveDiscrete against instances where the
// integer program is hopeless — the paper makes the same call: "if the
// problem is initially formulated with discrete configurations, it becomes
// mixed integer/linear. This requires a significantly less efficient
// solution method, which prohibits us from solving realistic problems."
var ErrDiscreteTooLarge = errors.New("core: instance too large for the discrete (ILP) formulation")

// MaxDiscreteTasks bounds the number of tunable tasks SolveDiscrete
// accepts.
const MaxDiscreteTasks = 24

// SolveDiscrete solves the fixed-vertex-order formulation with Eq. (5)'s
// integrality — each task runs in exactly one frontier configuration for
// its entire duration — via branch and bound. It exists to quantify the
// continuous relaxation's rounding gap exactly on small instances; for
// realistic sizes use Solve and the rounding in TaskChoice.Discrete (or
// internal/schedule for validated realizations). The program is emitted
// from the same IR skeleton as the continuous LP — only the variable
// domain differs.
func (s *Solver) SolveDiscrete(g *dag.Graph, capW float64) (*Schedule, error) {
	ir, err := s.IR(g)
	if err != nil {
		return nil, err
	}
	tunable := 0
	for tid := range g.Tasks {
		if ir.Class[tid] == problem.Tunable {
			tunable++
		}
	}
	if tunable > MaxDiscreteTasks {
		return nil, fmt.Errorf("%w: %d tunable tasks > %d", ErrDiscreteTooLarge, tunable, MaxDiscreteTasks)
	}

	prob := milp.NewProblem(lp.Minimize)
	prob.SetGap(1e-6)

	// Eq. (5): c ∈ {0,1}. The tiny power coefficient mirrors the
	// continuous tiebreak but must stay below the pruning gap.
	vVar, tv := emitSkeleton(ir, prob.Problem, func(name string, powerW float64) lp.Var {
		return prob.AddBinary(name, 1e-9*powerW)
	})
	emitEventOrder(ir, prob.Problem, vVar)
	rows, floorW, floorVertex := emitPowerRows(ir, prob.Problem, tv)
	if floorW > capW {
		return nil, fmt.Errorf("%w: fixed idle power exceeds cap %.1f W at event %d", ErrInfeasible, capW, floorVertex)
	}
	for _, pr := range rows {
		if err := prob.SetRHS(pr.row, capW-pr.deduct); err != nil {
			return nil, err
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case milp.Optimal:
	case milp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	default:
		return nil, fmt.Errorf("core: discrete solver returned %v", sol.Status)
	}

	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(g.Tasks)),
		VertexTimeS: make([]float64, len(g.Vertices)),
	}
	for i := range g.Vertices {
		sched.VertexTimeS[i] = sol.Value(vVar[i])
		if g.Vertices[i].Kind == dag.VFinalize {
			sched.MakespanS = sched.VertexTimeS[i]
		}
	}
	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch ir.Class[t.ID] {
		case problem.Message:
			choice.DurationS = t.FixedDur
		case problem.Fixed:
			choice.PowerW = ir.FixedPowerW[t.ID]
			choice.DiscretePowerW = ir.FixedPowerW[t.ID]
		case problem.Tunable:
			v := tv[t.ID]
			f := v.cols.F
			for k, cv := range v.cs {
				if sol.Value(cv) > 0.5 {
					choice.Discrete = f.Cfgs[k]
					choice.DiscreteDurationS = v.cols.Durs[k]
					choice.DiscretePowerW = f.Pts[k].PowerW
					choice.DurationS = v.cols.Durs[k]
					choice.PowerW = f.Pts[k].PowerW
					choice.Mix = []MixEntry{{Config: f.Cfgs[k], Frac: 1, DurationS: v.cols.Durs[k], PowerW: f.Pts[k].PowerW}}
				}
			}
		}
		sched.Choices[t.ID] = choice
	}
	sched.Stats = Stats{Solves: 1, Vars: prob.NumVars(), Rows: prob.NumConstraints(), SimplexIter: sol.Nodes}
	return sched, nil
}
