package core

import (
	"errors"
	"fmt"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/milp"
)

// ErrDiscreteTooLarge guards SolveDiscrete against instances where the
// integer program is hopeless — the paper makes the same call: "if the
// problem is initially formulated with discrete configurations, it becomes
// mixed integer/linear. This requires a significantly less efficient
// solution method, which prohibits us from solving realistic problems."
var ErrDiscreteTooLarge = errors.New("core: instance too large for the discrete (ILP) formulation")

// MaxDiscreteTasks bounds the number of tunable tasks SolveDiscrete
// accepts.
const MaxDiscreteTasks = 24

// SolveDiscrete solves the fixed-vertex-order formulation with Eq. (5)'s
// integrality — each task runs in exactly one frontier configuration for
// its entire duration — via branch and bound. It exists to quantify the
// continuous relaxation's rounding gap exactly on small instances; for
// realistic sizes use Solve and the rounding in TaskChoice.Discrete.
func (s *Solver) SolveDiscrete(g *dag.Graph, capW float64) (*Schedule, error) {
	tunable := 0
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute && t.Work > 0 {
			tunable++
		}
	}
	if tunable > MaxDiscreteTasks {
		return nil, fmt.Errorf("%w: %d tunable tasks > %d", ErrDiscreteTooLarge, tunable, MaxDiscreteTasks)
	}

	init, err := s.initialSchedule(g)
	if err != nil {
		return nil, err
	}
	active := activitySets(g, init)

	prob := milp.NewProblem(lp.Minimize)
	prob.SetGap(1e-6)

	vVar := make([]lp.Var, len(g.Vertices))
	for i := range g.Vertices {
		obj := 0.0
		if g.Vertices[i].Kind == dag.VFinalize {
			obj = 1
		}
		vVar[i] = prob.AddVar(fmt.Sprintf("v%d", i), obj)
		if g.Vertices[i].Kind == dag.VInit {
			prob.MustConstraint("init0", lp.Expr{}.Plus(vVar[i], 1), lp.EQ, 0)
		}
	}

	type taskVars struct {
		f    *frontier
		durs []float64
		cs   []lp.Var
	}
	tv := make(map[dag.TaskID]*taskVars)
	fixedPower := make([]float64, len(g.Tasks))

	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
		case t.Work <= 0:
			fixedPower[t.ID] = s.Model.IdlePower(s.eff(t.Rank))
		default:
			f := s.Frontier(t.Shape, t.Rank)
			v := &taskVars{f: f, durs: make([]float64, len(f.pts)), cs: make([]lp.Var, len(f.pts))}
			var convex lp.Expr
			for k, p := range f.pts {
				v.durs[k] = p.TimeS * t.Work
				// Eq. (5): c ∈ {0,1}.
				v.cs[k] = prob.AddBinary(fmt.Sprintf("c%d_%d", t.ID, k), 1e-9*p.PowerW)
				convex = convex.Plus(v.cs[k], 1)
			}
			prob.MustConstraint(fmt.Sprintf("cvx%d", t.ID), convex, lp.EQ, 1)
			tv[t.ID] = v
		}
	}

	for _, t := range g.Tasks {
		expr := lp.Expr{}.Plus(vVar[t.Dst], 1).Plus(vVar[t.Src], -1)
		rhs := 0.0
		switch {
		case t.Kind == dag.Message:
			rhs = t.FixedDur
		case t.Work <= 0:
		default:
			v := tv[t.ID]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.durs[k])
			}
		}
		prob.MustConstraint(fmt.Sprintf("prec%d", t.ID), expr, lp.GE, rhs)
	}

	order := make([]dag.VertexID, len(g.Vertices))
	for i := range order {
		order[i] = dag.VertexID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := init.VertexTime[order[a]], init.VertexTime[order[b]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[b]
	})
	for i := 1; i < len(order); i++ {
		prev, cur := order[i-1], order[i]
		expr := lp.Expr{}.Plus(vVar[cur], 1).Plus(vVar[prev], -1)
		if init.VertexTime[prev] == init.VertexTime[cur] {
			prob.MustConstraint(fmt.Sprintf("eq%d", i), expr, lp.EQ, 0)
		} else {
			prob.MustConstraint(fmt.Sprintf("ord%d", i), expr, lp.GE, 0)
		}
	}

	for vi := range g.Vertices {
		var expr lp.Expr
		rhs := capW
		for _, tid := range active[vi] {
			if v, ok := tv[tid]; ok {
				for k := range v.cs {
					expr = expr.Plus(v.cs[k], v.f.pts[k].PowerW)
				}
			} else {
				rhs -= fixedPower[tid]
			}
		}
		if len(expr) == 0 {
			if rhs < 0 {
				return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
			}
			continue
		}
		prob.MustConstraint(fmt.Sprintf("pow%d", vi), expr, lp.LE, rhs)
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case milp.Optimal:
	case milp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	default:
		return nil, fmt.Errorf("core: discrete solver returned %v", sol.Status)
	}

	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(g.Tasks)),
		VertexTimeS: make([]float64, len(g.Vertices)),
	}
	for i := range g.Vertices {
		sched.VertexTimeS[i] = sol.Value(vVar[i])
		if g.Vertices[i].Kind == dag.VFinalize {
			sched.MakespanS = sched.VertexTimeS[i]
		}
	}
	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch {
		case t.Kind == dag.Message:
			choice.DurationS = t.FixedDur
		case t.Work <= 0:
			choice.PowerW = fixedPower[t.ID]
			choice.DiscretePowerW = fixedPower[t.ID]
		default:
			v := tv[t.ID]
			for k, cv := range v.cs {
				if sol.Value(cv) > 0.5 {
					choice.Discrete = v.f.cfgs[k]
					choice.DiscreteDurationS = v.durs[k]
					choice.DiscretePowerW = v.f.pts[k].PowerW
					choice.DurationS = v.durs[k]
					choice.PowerW = v.f.pts[k].PowerW
					choice.Mix = []MixEntry{{Config: v.f.cfgs[k], Frac: 1, DurationS: v.durs[k], PowerW: v.f.pts[k].PowerW}}
				}
			}
		}
		sched.Choices[t.ID] = choice
	}
	sched.Stats = Stats{Solves: 1, Vars: prob.NumVars(), Rows: prob.NumConstraints(), SimplexIter: sol.Nodes}
	return sched, nil
}
