package core

import (
	"context"

	"powercap/internal/dag"
)

// Power-cap sweeps. The paper's experiments (Figs. 8–10) evaluate the
// performance bound across a family of power constraints; re-solving from
// scratch at every cap repeats nearly all of the simplex work. Because the
// cap enters the LP only through the right-hand sides of the event-power
// rows, a sweep can build the LP once and, at each cap, mutate those RHS
// values and warm start from the previous cap's optimal basis: the old
// basis stays dual feasible after an RHS-only change, so a few dual
// simplex pivots repair it instead of a full two-phase solve.

// SweepPoint is the result of one cap in a sweep: either a Schedule or the
// error that cap produced (typically ErrInfeasible once the cap drops
// below the feasibility floor).
type SweepPoint struct {
	CapW     float64
	Schedule *Schedule
	Err      error
}

// SolveSweep solves the whole-graph LP at each cap in caps, in order,
// building the LP once and warm starting every solve after the first from
// its predecessor's basis. Per-cap infeasibility is reported in the
// corresponding SweepPoint.Err (matching ErrInfeasible via errors.Is), not
// as a sweep-level failure; the returned error is reserved for problems
// with the graph itself. Sweeping caps in monotonic order maximizes basis
// reuse, but any order is correct.
func (s *Solver) SolveSweep(g *dag.Graph, caps []float64) ([]SweepPoint, error) {
	return s.SolveSweepCtx(context.Background(), g, caps)
}

// SolveSweepCtx is SolveSweep with cancellation: once ctx is done the
// current cap's pivot loop stops and the remaining caps are marked with the
// cancellation error without being attempted.
func (s *Solver) SolveSweepCtx(ctx context.Context, g *dag.Graph, caps []float64) ([]SweepPoint, error) {
	b, err := s.buildLP(ctx, g)
	if err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, len(caps))
	var basis []int
	for i, capW := range caps {
		pts[i].CapW = capW
		sched := &Schedule{
			CapW:        capW,
			Choices:     make([]TaskChoice, len(g.Tasks)),
			VertexTimeS: make([]float64, len(g.Vertices)),
		}
		sol, err := s.solveBuilt(ctx, b, capW, basis, s.Backend, s.Engine, &sched.Stats)
		if err != nil {
			pts[i].Err = err
			continue
		}
		s.extractInto(b, sol, sched, identityTaskMap(len(g.Tasks)), sched.VertexTimeS)
		sched.MakespanS = finalizeTime(g, sched.VertexTimeS)
		if len(sol.Basis) > 0 {
			basis = sol.Basis
		}
		pts[i].Schedule = sched
	}
	return pts, nil
}
