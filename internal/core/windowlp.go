package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/problem"
)

// feasTol is the slack allowed on constant-only power checks (watts).
const feasTol = 1e-6

// wPrecRef is a boundary precedence row: the task's source event was
// committed by an earlier window, so the row degenerates to
// v_dst ≥ T_src + D_src — a right-hand-side constant.
type wPrecRef struct {
	row  int
	task dag.TaskID
}

// wPowerRef is one in-range event-power row. deduct folds every draw that
// is constant at build time (Fixed-class actives, and the minimum frontier
// power of lookahead-spanning future tasks); committed lists the active
// tunables owned by earlier windows, whose chosen powers join the RHS at
// aim time.
type wPowerRef struct {
	row       int
	pos       int
	vertex    dag.VertexID
	deduct    float64
	committed []dag.TaskID
}

// wConstEvent is an in-range event whose entire draw is boundary-constant:
// no row is emitted, but the draw is a feasibility floor per aim.
type wConstEvent struct {
	pos       int
	vertex    dag.VertexID
	deduct    float64
	committed []dag.TaskID
}

// windowLP is one window's self-contained program: vertex-time variables
// for positions [CoreStart, ExtEnd), configuration variables for the tasks
// sourced there, and a minimax objective z bounding both the last in-range
// event and the completion of every task that straddles ExtEnd. All
// coupling to earlier windows enters through right-hand sides (seam,
// boundary precedence, committed powers), so a commit solve is a dual
// simplex repair of the speculative basis.
type windowLP struct {
	win  problem.Window
	prob *lp.Problem
	vVar []lp.Var // indexed by position − CoreStart
	z    lp.Var
	tv   map[dag.TaskID]*taskLPVars

	seamRow   int // -1 when the window starts at position 0
	seamPrev  dag.VertexID
	precRefs  []wPrecRef
	powerRefs []wPowerRef
	constEvts []wConstEvent
	coupled   bool
}

// boundaryCoupled reports whether any right-hand side depends on earlier
// windows' commitments. An uncoupled window (the first, or the only one)
// solves identically in phases A and B.
func (b *windowLP) boundaryCoupled() bool { return b.coupled }

// vAt returns the vertex-time variable of event position p.
func (b *windowLP) vAt(p int) lp.Var { return b.vVar[p-b.win.CoreStart] }

// buildWindowLP emits the window program for win against plan. Boundary
// rows are emitted at zero RHS; aim points them at a committed (or
// estimated) state.
func (s *Solver) buildWindowLP(plan *problem.Plan, win problem.Window) *windowLP {
	ir := plan.IR
	g := ir.G
	order := ir.EventOrder
	b := &windowLP{
		win:     win,
		prob:    lp.NewProblem(lp.Minimize),
		vVar:    make([]lp.Var, win.ExtEnd-win.CoreStart),
		tv:      make(map[dag.TaskID]*taskLPVars),
		seamRow: -1,
	}

	for p := win.CoreStart; p < win.ExtEnd; p++ {
		b.vVar[p-win.CoreStart] = b.prob.AddVar(fmt.Sprintf("v%d", order[p]), 0)
	}
	b.z = b.prob.AddVar("z", 1)

	// Left anchor: the Init pin for the first window (the whole time-zero
	// simultaneous group sits in window 0's core, Init included), or the
	// seam row v_first ≥ T(previous event) otherwise.
	if win.CoreStart == 0 {
		for p := 0; p < win.ExtEnd; p++ {
			if g.Vertices[order[p]].Kind == dag.VInit {
				b.prob.MustConstraint("init0", lp.Expr{}.Plus(b.vAt(p), 1), lp.EQ, 0)
				break
			}
		}
	} else {
		b.seamRow = b.prob.NumConstraints()
		b.seamPrev = order[win.CoreStart-1]
		b.prob.MustConstraint("seam", lp.Expr{}.Plus(b.vAt(win.CoreStart), 1), lp.GE, 0)
		b.coupled = true
	}

	// Event-order chain inside the range (Eqs. 12–13).
	for p := win.CoreStart + 1; p < win.ExtEnd; p++ {
		prev, cur := order[p-1], order[p]
		expr := lp.Expr{}.Plus(b.vAt(p), 1).Plus(b.vAt(p-1), -1)
		if ir.Simultaneous(prev, cur) {
			b.prob.MustConstraint(fmt.Sprintf("eq%d", p), expr, lp.EQ, 0)
		} else {
			b.prob.MustConstraint(fmt.Sprintf("ord%d", p), expr, lp.GE, 0)
		}
	}

	// Configuration variables with convexity for every reach task: source
	// position in range, tunable class (Eqs. 6–9).
	reach := plan.TasksWithSrcIn(win.CoreStart, win.ExtEnd)
	for _, tid := range reach {
		if ir.Class[tid] != problem.Tunable {
			continue
		}
		cols := ir.Cols[tid]
		v := &taskLPVars{cols: cols, cs: make([]lp.Var, len(cols.F.Pts))}
		var convex lp.Expr
		for k, p := range cols.F.Pts {
			v.cs[k] = b.prob.AddVar(fmt.Sprintf("c%d_%d", tid, k), s.PowerTiebreak*p.PowerW)
			convex = convex.Plus(v.cs[k], 1)
		}
		b.prob.MustConstraint(fmt.Sprintf("cvx%d", tid), convex, lp.EQ, 1)
		b.tv[tid] = v
	}

	// Precedence rows for tasks arriving in range (Eqs. 3–4). A source
	// committed by an earlier window turns the row into a bound with the
	// committed completion time on the RHS.
	for _, tid := range plan.TasksWithDstIn(win.CoreStart, win.ExtEnd) {
		t := &g.Tasks[tid]
		srcPos := plan.Pos[t.Src]
		if srcPos < win.CoreStart {
			b.precRefs = append(b.precRefs, wPrecRef{row: b.prob.NumConstraints(), task: tid})
			b.prob.MustConstraint(fmt.Sprintf("bprec%d", tid),
				lp.Expr{}.Plus(b.vAt(plan.Pos[t.Dst]), 1), lp.GE, 0)
			b.coupled = true
			continue
		}
		expr := lp.Expr{}.Plus(b.vAt(plan.Pos[t.Dst]), 1).Plus(b.vAt(srcPos), -1)
		rhs := 0.0
		switch ir.Class[tid] {
		case problem.Message:
			rhs = t.FixedDur
		case problem.Fixed:
		case problem.Tunable:
			v := b.tv[tid]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.cols.Durs[k])
			}
		}
		b.prob.MustConstraint(fmt.Sprintf("prec%d", tid), expr, lp.GE, rhs)
	}

	// Minimax completion: z bounds the last in-range event and the
	// completion of every straddler (reach task whose destination lies
	// beyond ExtEnd), so the window pays for the tails its choices create.
	b.prob.MustConstraint("zlast",
		lp.Expr{}.Plus(b.z, 1).Plus(b.vAt(win.ExtEnd-1), -1), lp.GE, 0)
	for _, tid := range reach {
		t := &g.Tasks[tid]
		if plan.Pos[t.Dst] < win.ExtEnd {
			continue
		}
		expr := lp.Expr{}.Plus(b.z, 1).Plus(b.vAt(plan.Pos[t.Src]), -1)
		rhs := 0.0
		switch ir.Class[tid] {
		case problem.Message:
			rhs = t.FixedDur
		case problem.Fixed:
		case problem.Tunable:
			v := b.tv[tid]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.cols.Durs[k])
			}
		}
		b.prob.MustConstraint(fmt.Sprintf("tail%d", tid), expr, lp.GE, rhs)
	}

	// Event-power rows (Eqs. 10–11) for every in-range event. Free terms
	// come from reach tunables; Fixed actives and lookahead-spanning future
	// tasks (possible only past CoreEnd, at their minimum frontier power)
	// fold into the build-time deduction; earlier-committed tunables join
	// the RHS at aim time.
	for p := win.CoreStart; p < win.ExtEnd; p++ {
		vi := order[p]
		var expr lp.Expr
		deduct := 0.0
		var committed []dag.TaskID
		for _, tid := range ir.Active[vi] {
			if v, ok := b.tv[tid]; ok {
				for k := range v.cs {
					expr = expr.Plus(v.cs[k], v.cols.F.Pts[k].PowerW)
				}
				continue
			}
			switch {
			case ir.Class[tid] != problem.Tunable:
				deduct += ir.FixedPowerW[tid]
			case plan.Pos[g.Tasks[tid].Src] < win.CoreStart:
				committed = append(committed, tid)
				b.coupled = true
			default:
				// Future task: only reachable in the lookahead when ExtEnd
				// splits its simultaneous group; its owner window holds the
				// binding row for this event.
				deduct += ir.Cols[tid].F.Pts[0].PowerW
			}
		}
		if len(expr) == 0 {
			if deduct > 0 || len(committed) > 0 {
				b.constEvts = append(b.constEvts, wConstEvent{pos: p, vertex: vi, deduct: deduct, committed: committed})
			}
			continue
		}
		b.powerRefs = append(b.powerRefs, wPowerRef{
			row: b.prob.NumConstraints(), pos: p, vertex: vi,
			deduct: deduct, committed: committed,
		})
		b.prob.MustConstraint(fmt.Sprintf("pow%d", vi), expr, lp.LE, -deduct)
	}
	return b
}

// aim points every boundary-dependent right-hand side at the given
// committed (or estimated) state: the seam time, boundary precedence
// completions, and committed powers deducted from the cap.
func (b *windowLP) aim(ir *problem.IR, capW float64, st *committedState) {
	if b.seamRow >= 0 {
		mustSetRHS(b.prob, b.seamRow, st.T[b.seamPrev])
	}
	g := ir.G
	for _, pr := range b.precRefs {
		src := g.Tasks[pr.task].Src
		mustSetRHS(b.prob, pr.row, st.T[src]+st.D[pr.task])
	}
	for _, pr := range b.powerRefs {
		rhs := capW - pr.deduct
		for _, tid := range pr.committed {
			rhs -= st.P[tid]
		}
		mustSetRHS(b.prob, pr.row, rhs)
	}
}

// constExcess returns the worst cap excess among events whose in-range
// draw is entirely constant under st — the windowed analogue of the
// monolithic fixed floor check, and the trigger for escalation when a
// commit leaves a later constant event over budget.
func (b *windowLP) constExcess(capW float64, st *committedState) float64 {
	worst := 0.0
	for _, ce := range b.constEvts {
		total := ce.deduct
		for _, tid := range ce.committed {
			total += st.P[tid]
		}
		if ex := total - capW; ex > worst {
			worst = ex
		}
	}
	return worst
}

func mustSetRHS(p *lp.Problem, row int, rhs float64) {
	if err := p.SetRHS(row, rhs); err != nil {
		panic(fmt.Sprintf("core: window RHS update: %v", err))
	}
}

// solveWindowLP solves an aimed window program, warm starting from basis
// when given, accumulating effort into st. Mirrors solveBuilt's status
// mapping: Optimal returns, Infeasible maps to ErrInfeasible, a canceled
// context surfaces as an error wrapping ctx.Err().
func (s *Solver) solveWindowLP(ctx context.Context, b *windowLP, basis []int, st *Stats) (*lp.Solution, error) {
	return s.solveWindowLPOn(ctx, s.Backend, b, basis, st)
}

// solveWindowResilient is solveWindowLP behind the per-window numerical
// fallback ladder (DESIGN.md §10 at window granularity): a *lp.NumericalError
// from the warm-started solve retries cold on the same backend (a different
// pivot path), and a cold breakdown retries on the dense backend — window
// programs are small enough that dense is an affordable last resort, and
// one ill-conditioned window must not sink a hundred-window solve.
// Fallbacks are counted on ws.
func (s *Solver) solveWindowResilient(ctx context.Context, b *windowLP, basis []int, st *Stats, ws *WindowedSchedule) (*lp.Solution, error) {
	sol, err := s.solveWindowLP(ctx, b, basis, st)
	var numErr *lp.NumericalError
	if err == nil || !errors.As(err, &numErr) {
		return sol, err
	}
	if len(basis) > 0 {
		atomic.AddInt64(&ws.numericalFallbacks, 1)
		sol, err = s.solveWindowLP(ctx, b, nil, st)
		if err == nil || !errors.As(err, &numErr) {
			return sol, err
		}
	}
	if s.Backend != lp.BackendDense {
		atomic.AddInt64(&ws.numericalFallbacks, 1)
		return s.solveWindowLPOn(ctx, lp.BackendDense, b, nil, st)
	}
	return sol, err
}

// solveWindowLPOn is solveWindowLP pinned to an explicit backend.
func (s *Solver) solveWindowLPOn(ctx context.Context, backend lp.Backend, b *windowLP, basis []int, st *Stats) (*lp.Solution, error) {
	opts := []lp.Option{
		lp.WithBackend(backend),
		lp.WithEngine(s.Engine),
		lp.WithPricing(s.Pricing),
		lp.WithSpanContext(ctx),
	}
	if len(basis) > 0 {
		opts = append(opts, lp.WithWarmBasis(basis))
	}
	if ctx != nil && ctx != context.Background() {
		opts = append(opts, lp.WithContext(ctx))
	}
	sol, err := lp.Solve(b.prob, opts...)
	if err != nil {
		return nil, err
	}
	st.AddSolve(b.prob.NumVars(), b.prob.NumConstraints(), sol)

	switch sol.Status {
	case lp.Optimal:
		return sol, nil
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: window %d [%d,%d)", ErrInfeasible, b.win.Index, b.win.CoreStart, b.win.ExtEnd)
	case lp.Canceled:
		cause := context.Canceled
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
		}
		return nil, fmt.Errorf("core: window solve canceled after %d pivots: %w", sol.Iters, cause)
	default:
		return nil, fmt.Errorf("core: LP solver returned %v (window %d)", sol.Status, b.win.Index)
	}
}
