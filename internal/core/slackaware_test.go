package core

import (
	"errors"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

func TestSlackAwareBoundedByMainLP(t *testing.T) {
	// Pricing slack at idle (≤ task power) can only free budget, so the
	// slack-aware bound is never above the main LP's.
	g := imbalancedGraph()
	s := solver()
	for _, cap := range []float64{50, 60, 70, 90, 130} {
		main, err := s.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		aware, err := s.SolveSlackAware(g, cap)
		if err != nil {
			t.Fatalf("cap %v (aware): %v", cap, err)
		}
		if aware.MakespanS > main.MakespanS*(1+1e-6) {
			t.Fatalf("cap %v: slack-aware %v above main LP %v", cap, aware.MakespanS, main.MakespanS)
		}
	}
}

func TestSlackAwareMatchesMainWhenNoSlack(t *testing.T) {
	// A perfectly balanced graph has no slack, so the two formulations
	// coincide.
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 1.0, sh, "w")
	b.Compute(1, 1.0, sh, "w")
	g := b.Finalize()
	s := solver()
	for _, cap := range []float64{55, 70, 100} {
		main, err := s.Solve(g, cap)
		if err != nil {
			t.Fatal(err)
		}
		aware, err := s.SolveSlackAware(g, cap)
		if err != nil {
			t.Fatal(err)
		}
		if d := (main.MakespanS - aware.MakespanS) / main.MakespanS; d > 1e-6 {
			t.Fatalf("cap %v: balanced graph disagrees by %v", cap, d)
		}
	}
}

func TestSlackAwareStrictlyBetterWhenSlackUnavoidable(t *testing.T) {
	// The two formulations differ only when a rank has *unavoidable*
	// slack: a task so small that it finishes early even in the
	// lowest-power configuration. Whenever slack can instead be stretched
	// away at the frontier minimum (the usual case, thanks to the power
	// tiebreak), slack-hold costs nothing -- which is exactly why the
	// paper "favor[s] having fewer events over a marginal increase in
	// power sharing". Here rank 0's task is tiny, so under the main LP it
	// holds its (frontier-minimum) power through a long wait, while the
	// slack-aware variant drops it to idle and hands the heavy rank the
	// difference.
	// Structure: rank 0 finishes a tiny task and then only waits for a
	// message; rank 1's heavy task starts at its Send vertex, i.e. at an
	// event where rank 0 is provably in slack. A task's power is a single
	// decision bounded by its tightest event, so this is the shape where
	// the pricing difference actually reaches the heavy task.
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.02, sh, "tiny")
	b.Compute(1, 0.3, sh, "pre")
	b.Send(1, 0, 1024)
	b.Compute(1, 2.0, sh, "heavy")
	b.Recv(0, 1)
	g := b.Finalize()
	s := solver()
	const cap = 55
	main, err := s.Solve(g, cap)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := s.SolveSlackAware(g, cap)
	if err != nil {
		t.Fatal(err)
	}
	if aware.MakespanS >= main.MakespanS*(1-1e-5) {
		t.Fatalf("expected strict improvement: aware %v vs main %v", aware.MakespanS, main.MakespanS)
	}
	// And the improvement stays marginal -- the paper's rationale for
	// preferring the simpler event set.
	if aware.MakespanS < main.MakespanS*0.97 {
		t.Fatalf("improvement suspiciously large: aware %v vs main %v", aware.MakespanS, main.MakespanS)
	}
}

func TestSlackAwareInfeasible(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	if _, err := s.SolveSlackAware(g, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestSlackAwareChoicesPopulated(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	sched, err := s.SolveSlackAware(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	for tid, task := range g.Tasks {
		if task.Kind == dag.Compute && task.Work > 0 && len(sched.Choices[tid].Mix) == 0 {
			t.Fatalf("task %d missing mix", tid)
		}
	}
}
