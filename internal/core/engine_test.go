package core

import (
	"context"
	"math"
	"testing"

	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// The basis engine and pricing rule are performance knobs, never semantic
// ones: every combination must land on the pre-refactor golden objectives.
func TestEngineEquivalenceGoldenObjectives(t *testing.T) {
	for _, name := range []string{"BT", "CoMD"} {
		want := goldenLP[name]
		g := goldenSlice(t, name)
		for _, eng := range []lp.Engine{lp.EngineLU, lp.EngineEta} {
			for _, pr := range []lp.Pricing{lp.PricingSteepest, lp.PricingDantzig} {
				s := solver()
				s.Engine, s.Pricing = eng, pr
				for i, perSocket := range goldenCaps {
					sched, err := s.Solve(g, perSocket*8)
					if err != nil {
						t.Fatalf("%s %v/%v cap %v: %v", name, eng, pr, perSocket, err)
					}
					if rel := math.Abs(sched.MakespanS-want[i]) / want[i]; rel > 1e-9 {
						t.Errorf("%s %v/%v cap %v: makespan %.12f, golden %.12f (rel %g)",
							name, eng, pr, perSocket, sched.MakespanS, want[i], rel)
					}
				}
			}
		}
	}
}

// SolveCtxWithEngine must pin the per-request engine without disturbing the
// shared Solver: an eta-engine request on a LU-configured Solver reproduces
// the default result, and the Solver still reports its configured engine.
func TestSolveCtxWithEngineOverride(t *testing.T) {
	w := workloads.SP(workloads.Params{Ranks: 4, Iterations: 2, Seed: 1, WorkScale: 0.3})
	s := NewSolver(machine.Default(), w.EffScale)
	s.Engine = lp.EngineLU

	want, err := s.Solve(w.Graph, 180)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SolveCtxWithEngine(context.Background(), w.Graph, 180, false, lp.BackendSparse, lp.EngineEta)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.MakespanS-want.MakespanS) / want.MakespanS; rel > 1e-9 {
		t.Errorf("eta override makespan %.12f vs lu %.12f (rel %g)", got.MakespanS, want.MakespanS, rel)
	}
	if s.Engine != lp.EngineLU {
		t.Errorf("per-request override mutated Solver.Engine to %v", s.Engine)
	}
}

// A CapSession on the LU engine must warm start across cap probes and agree
// with fresh solves — the market's hot path runs on the LU basis, so a
// warm-start regression there is a product regression, not a tuning issue.
func TestCapSessionWarmProbeEngines(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 2, Seed: 3, WorkScale: 0.3})
	for _, eng := range []lp.Engine{lp.EngineLU, lp.EngineEta} {
		t.Run(eng.String(), func(t *testing.T) {
			s := NewSolver(machine.Default(), w.EffScale)
			s.Engine = eng
			cs, err := s.NewCapSession(context.Background(), w.Graph)
			if err != nil {
				t.Fatal(err)
			}
			fresh := NewSolver(machine.Default(), w.EffScale)
			fresh.Engine = eng
			for _, capW := range []float64{220, 150, 180, 130} {
				got, err := cs.SolveAt(context.Background(), capW)
				if err != nil {
					t.Fatalf("cap %.0f: %v", capW, err)
				}
				want, err := fresh.Solve(w.Graph, capW)
				if err != nil {
					t.Fatalf("cap %.0f fresh: %v", capW, err)
				}
				if rel := math.Abs(got.MakespanS-want.MakespanS) / want.MakespanS; rel > 1e-9 {
					t.Errorf("cap %.0f: session %.12f vs fresh %.12f (rel %g)",
						capW, got.MakespanS, want.MakespanS, rel)
				}
			}
			if cs.Stats().WarmStarts == 0 {
				t.Errorf("%s session never warm started", eng)
			}
		})
	}
}
