package core

import (
	"errors"
	"math"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
)

// imbalancedGraph: two ranks, r1 with double the work, one collective.
func imbalancedGraph() *dag.Graph {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "phase1")
	b.Compute(1, 1.0, sh, "phase1")
	b.Collective("sync")
	b.Compute(0, 0.4, sh, "phase2")
	b.Compute(1, 0.4, sh, "phase2")
	return b.Finalize()
}

func solver() *Solver { return NewSolver(machine.Default(), nil) }

func TestUnconstrainedMatchesMaxConfigSchedule(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	sched, err := s.Solve(g, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := s.IR(g)
	if err != nil {
		t.Fatal(err)
	}
	init := ir.Init
	if math.Abs(sched.MakespanS-init.Makespan) > 1e-6*init.Makespan {
		t.Fatalf("unconstrained LP makespan %v != max-config makespan %v", sched.MakespanS, init.Makespan)
	}
}

func TestCapMonotonicity(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	prev := 0.0
	for _, cap := range []float64{160, 120, 100, 80, 60, 45} {
		sched, err := s.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if sched.MakespanS < prev-1e-9 {
			t.Fatalf("makespan decreased when tightening cap to %v: %v < %v", cap, sched.MakespanS, prev)
		}
		prev = sched.MakespanS
	}
}

func TestInfeasibleAtTinyCap(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	_, err := s.Solve(g, 15) // two sockets cannot both fit under 15 W total
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestMixesLieOnFrontierAndSumToOne(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	sched, err := s.Solve(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	for tid, t0 := range g.Tasks {
		if t0.Kind != dag.Compute || t0.Work <= 0 {
			continue
		}
		ch := sched.Choices[tid]
		if len(ch.Mix) == 0 {
			t.Fatalf("task %d has no mix", tid)
		}
		f := s.Frontier(t0.Shape, t0.Rank)
		valid := map[machine.Config]bool{}
		for _, c := range f.Cfgs {
			valid[c] = true
		}
		sum := 0.0
		for _, m := range ch.Mix {
			if !valid[m.Config] {
				t.Fatalf("task %d mixes non-frontier config %v", tid, m.Config)
			}
			sum += m.Frac
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("task %d mix fractions sum to %v", tid, sum)
		}
		if ch.DurationS <= 0 || ch.PowerW <= 0 {
			t.Fatalf("task %d has degenerate duration/power %v/%v", tid, ch.DurationS, ch.PowerW)
		}
		if !valid[ch.Discrete] {
			t.Fatalf("task %d rounded to non-frontier config %v", tid, ch.Discrete)
		}
	}
}

// TestReplayedLPRespectsCap evaluates the LP schedule's (duration, power)
// choices on the simulator and checks the instantaneous job power never
// exceeds the constraint — the paper's Sec. 6.1 validation.
func TestReplayedLPRespectsCap(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	for _, cap := range []float64{50, 60, 70, 90, 120} {
		sched, err := s.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		pts := sim.Points(g)
		for i := range g.Tasks {
			if g.Tasks[i].Kind == dag.Compute {
				pts[i] = sim.TaskPoint{Duration: sched.Choices[i].DurationS, PowerW: sched.Choices[i].PowerW}
			}
		}
		res, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v := res.MaxCapViolation(cap); v > 1e-6*cap {
			t.Fatalf("cap %v violated by %v W in replay", cap, v)
		}
		// The replayed (ASAP) makespan can never exceed the LP's, which
		// holds the same durations but may delay vertices.
		if res.Makespan > sched.MakespanS+1e-6 {
			t.Fatalf("replayed makespan %v exceeds LP makespan %v", res.Makespan, sched.MakespanS)
		}
	}
}

// TestLPBeatsUniformStatic asserts the headline upper-bound property on an
// imbalanced workload: the LP schedule is at least as fast as uniform
// static capping (Sec. 4.1) at the same job power.
func TestLPBeatsUniformStatic(t *testing.T) {
	g := imbalancedGraph()
	m := machine.Default()
	s := solver()
	for _, perSocket := range []float64{30, 35, 40, 50} {
		capTotal := perSocket * 2
		sched, err := s.Solve(g, capTotal)
		if err != nil {
			t.Fatalf("cap %v: %v", capTotal, err)
		}
		// Static: every socket capped at perSocket, 8 threads, RAPL.
		pts := sim.Points(g)
		for i, task := range g.Tasks {
			if task.Kind != dag.Compute {
				continue
			}
			r := m.CapConfig(task.Shape, m.Cores, perSocket, 1)
			pts[i] = sim.TaskPoint{
				Duration: m.DurationDuty(task.Work, task.Shape, r.Config, r.Duty),
				PowerW:   r.PowerW,
			}
		}
		static, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sched.MakespanS > static.Makespan*(1+1e-9) {
			t.Fatalf("per-socket %v W: LP %v slower than Static %v", perSocket, sched.MakespanS, static.Makespan)
		}
	}
}

func TestSolveIterationsMatchesWholeGraph(t *testing.T) {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	for iter := 0; iter < 3; iter++ {
		b.Pcontrol()
		b.Compute(0, 0.3+0.1*float64(iter), sh, "step")
		b.Compute(1, 0.5, sh, "step")
		b.Collective("reduce")
	}
	g := b.Finalize()
	s := solver()
	whole, err := s.Solve(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := s.SolveIterations(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole.MakespanS-sliced.MakespanS) > 1e-5*whole.MakespanS {
		t.Fatalf("whole %v vs per-iteration %v", whole.MakespanS, sliced.MakespanS)
	}
	if len(sliced.IterationMakespans) != 4 { // prologue + 3 iterations
		t.Fatalf("got %d iteration makespans, want 4", len(sliced.IterationMakespans))
	}
	// Choices must be populated for the original task IDs.
	for tid, task := range g.Tasks {
		if task.Kind == dag.Compute && task.Work > 0 && len(sliced.Choices[tid].Mix) == 0 {
			t.Fatalf("task %d missing choice after per-iteration solve", tid)
		}
	}
}

func TestNonUniformAllocationUnderImbalance(t *testing.T) {
	// Under a tight cap, the LP must give the heavy rank more power than
	// the light one during phase 1 (the paper's central mechanism).
	g := imbalancedGraph()
	s := solver()
	sched, err := s.Solve(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	var lightP, heavyP float64
	for tid, task := range g.Tasks {
		if task.Kind != dag.Compute || task.Class != "phase1" {
			continue
		}
		if task.Rank == 0 {
			lightP = sched.Choices[tid].PowerW
		} else {
			heavyP = sched.Choices[tid].PowerW
		}
	}
	if heavyP <= lightP {
		t.Fatalf("heavy rank got %v W, light rank %v W — expected nonuniform allocation", heavyP, lightP)
	}
}

func TestFrontierCacheReuse(t *testing.T) {
	s := solver()
	sh := machine.DefaultShape()
	f1 := s.Frontier(sh, 0)
	f2 := s.Frontier(sh, 0)
	if f1 != f2 {
		t.Fatal("frontier cache miss for identical key")
	}
	f3 := s.Frontier(sh, 1)
	if f1 == f3 && s.EffScale != nil {
		t.Fatal("distinct ranks with different efficiency must not share frontiers")
	}
}

func TestEffScaleChangesFrontierPower(t *testing.T) {
	s := NewSolver(machine.Default(), []float64{1.0, 1.1})
	sh := machine.DefaultShape()
	f0 := s.Frontier(sh, 0)
	f1 := s.Frontier(sh, 1)
	if len(f0.Pts) == 0 || len(f1.Pts) == 0 {
		t.Fatal("empty frontier")
	}
	if !(f1.Pts[0].PowerW > f0.Pts[0].PowerW) {
		t.Fatalf("inefficient socket should draw more: %v vs %v", f1.Pts[0].PowerW, f0.Pts[0].PowerW)
	}
}

func TestZeroWorkTasksHandled(t *testing.T) {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "w")
	// Rank 1 does nothing: zero-work edges Init→coll→Fin.
	b.Collective("sync")
	b.Compute(0, 0.5, sh, "w")
	g := b.Finalize()
	s := solver()
	sched, err := s.Solve(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sched.MakespanS <= 0 {
		t.Fatal("empty makespan")
	}
	for tid, task := range g.Tasks {
		if task.Kind == dag.Compute && task.Work == 0 {
			ch := sched.Choices[tid]
			if ch.DurationS != 0 {
				t.Fatalf("zero-work task %d has duration %v", tid, ch.DurationS)
			}
			if ch.PowerW <= 0 {
				t.Fatalf("zero-work task %d should draw idle power", tid)
			}
		}
	}
}

// TestMarginalSecPerW validates the power shadow price against a finite
// difference: adding ΔW of job budget should change the makespan by about
// Marginal·Δ (exactly, within the same dual basis, for small Δ).
func TestMarginalSecPerW(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	const cap = 60.0
	const delta = 0.05
	a, err := s.Solve(g, cap)
	if err != nil {
		t.Fatal(err)
	}
	if a.MarginalSecPerW > 1e-12 {
		t.Fatalf("marginal = %v, want ≤ 0 (more power cannot hurt)", a.MarginalSecPerW)
	}
	if a.MarginalSecPerW > -1e-6 {
		t.Fatalf("marginal = %v at a binding cap, expected strictly negative", a.MarginalSecPerW)
	}
	b, err := s.Solve(g, cap+delta)
	if err != nil {
		t.Fatal(err)
	}
	fd := (b.MakespanS - a.MakespanS) / delta
	if math.Abs(fd-a.MarginalSecPerW) > 0.05*math.Abs(a.MarginalSecPerW)+1e-6 {
		t.Fatalf("marginal %v vs finite difference %v", a.MarginalSecPerW, fd)
	}
}

// TestMarginalZeroWhenUnconstrained: with abundant power the cap rows are
// slack and the shadow price vanishes.
func TestMarginalZeroWhenUnconstrained(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	sched, err := s.Solve(g, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sched.MarginalSecPerW) > 1e-9 {
		t.Fatalf("marginal = %v at an unconstrained cap, want 0", sched.MarginalSecPerW)
	}
}
