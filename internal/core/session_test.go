package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// A CapSession must reproduce fresh whole-graph solves exactly: same
// objective (1e-9 relative) and same shadow price at every cap, in any
// probing order, while actually reusing its basis.
func TestCapSessionMatchesFreshSolves(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 3, Seed: 3, WorkScale: 0.3})
	s := NewSolver(machine.Default(), w.EffScale)
	cs, err := s.NewCapSession(context.Background(), w.Graph)
	if err != nil {
		t.Fatal(err)
	}

	// Deliberately non-monotone cap order: the market probes adaptively.
	caps := []float64{200, 130, 170, 110, 240, 120}
	fresh := NewSolver(machine.Default(), w.EffScale)
	for _, capW := range caps {
		got, err := cs.SolveAt(context.Background(), capW)
		want, werr := fresh.Solve(w.Graph, capW)
		if (err == nil) != (werr == nil) {
			t.Fatalf("cap %.0f: session err=%v fresh err=%v", capW, err, werr)
		}
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("cap %.0f: %v", capW, err)
			}
			continue
		}
		if rel := math.Abs(got.MakespanS-want.MakespanS) / want.MakespanS; rel > 1e-9 {
			t.Errorf("cap %.0f: session makespan %.12f vs fresh %.12f (rel %.2e)",
				capW, got.MakespanS, want.MakespanS, rel)
		}
		if d := math.Abs(got.MarginalSecPerW - want.MarginalSecPerW); d > 1e-7 {
			t.Errorf("cap %.0f: session marginal %.10f vs fresh %.10f", capW, got.MarginalSecPerW, want.MarginalSecPerW)
		}
	}
	if cs.Stats().WarmStarts == 0 {
		t.Errorf("session never warm started across %d solves", len(caps))
	}
}

// Infeasible probes must surface ErrInfeasible without poisoning the
// session: a feasible cap afterwards still solves correctly.
func TestCapSessionInfeasibleRecovery(t *testing.T) {
	w := workloads.SP(workloads.Params{Ranks: 4, Iterations: 3, Seed: 1, WorkScale: 0.3})
	s := NewSolver(machine.Default(), w.EffScale)
	cs, err := s.NewCapSession(context.Background(), w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.SolveAt(context.Background(), 200); err != nil {
		t.Fatalf("feasible cap: %v", err)
	}
	if _, err := cs.SolveAt(context.Background(), 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("cap 1 W: got %v, want ErrInfeasible", err)
	}
	got, err := cs.SolveAt(context.Background(), 200)
	if err != nil {
		t.Fatalf("post-infeasible solve: %v", err)
	}
	want, err := NewSolver(machine.Default(), w.EffScale).Solve(w.Graph, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.MakespanS-want.MakespanS) / want.MakespanS; rel > 1e-9 {
		t.Errorf("post-infeasible makespan %.12f vs fresh %.12f", got.MakespanS, want.MakespanS)
	}
}

// Cancellation inside a session solve must wrap the context error.
func TestCapSessionCancel(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 8, Iterations: 4, Seed: 1, WorkScale: 1})
	s := NewSolver(machine.Default(), w.EffScale)
	cs, err := s.NewCapSession(context.Background(), w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cs.SolveAt(ctx, 300); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled solve: got %v, want context.Canceled in chain", err)
	}
}
