package core

import (
	"errors"
	"math"
	"testing"

	"powercap/internal/lp"
	"powercap/internal/machine"
)

func TestSolveSweepMatchesIndividualSolves(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	caps := []float64{160, 120, 100, 80, 60, 45, 15} // 15 W is infeasible

	pts, err := s.SolveSweep(g, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(caps) {
		t.Fatalf("%d points for %d caps", len(pts), len(caps))
	}
	warm := 0
	for i, pt := range pts {
		if pt.CapW != caps[i] {
			t.Fatalf("point %d: cap %v, want %v", i, pt.CapW, caps[i])
		}
		indiv, ierr := solver().Solve(g, caps[i])
		if ierr != nil {
			if !errors.Is(ierr, ErrInfeasible) {
				t.Fatal(ierr)
			}
			if !errors.Is(pt.Err, ErrInfeasible) {
				t.Fatalf("cap %v: individual solve infeasible, sweep err %v", caps[i], pt.Err)
			}
			if pt.Schedule != nil {
				t.Fatalf("cap %v: infeasible point carries a schedule", caps[i])
			}
			continue
		}
		if pt.Err != nil {
			t.Fatalf("cap %v: sweep err %v, individual solve optimal", caps[i], pt.Err)
		}
		if math.Abs(pt.Schedule.MakespanS-indiv.MakespanS) > 1e-9*(1+indiv.MakespanS) {
			t.Fatalf("cap %v: sweep makespan %v, individual %v", caps[i], pt.Schedule.MakespanS, indiv.MakespanS)
		}
		warm += pt.Schedule.Stats.WarmStarts
	}
	if warm == 0 {
		t.Fatal("no sweep point warm started; basis handoff broken")
	}
}

func TestSolveSweepWarmSavesPivots(t *testing.T) {
	g := imbalancedGraph()
	caps := []float64{160, 140, 120, 100, 90, 80, 70, 60, 50, 45}

	pts, err := solver().SolveSweep(g, caps)
	if err != nil {
		t.Fatal(err)
	}
	sweepIters, coldIters := 0, 0
	for i, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("cap %v: %v", pt.CapW, pt.Err)
		}
		sweepIters += pt.Schedule.Stats.SimplexIter
		cold, err := solver().Solve(g, caps[i])
		if err != nil {
			t.Fatal(err)
		}
		coldIters += cold.Stats.SimplexIter
	}
	if sweepIters >= coldIters {
		t.Fatalf("warm sweep spent %d pivots, cold solves %d — warm starting saved nothing", sweepIters, coldIters)
	}
}

// TestBackendEquivalenceOnSchedulingLPs cross-checks the two simplex
// backends on the real scheduling LPs core builds (not just synthetic
// corpus instances): identical feasibility verdicts and makespans.
func TestBackendEquivalenceOnSchedulingLPs(t *testing.T) {
	g := imbalancedGraph()
	for _, cap := range []float64{160, 100, 70, 45, 15} {
		sparse := NewSolver(machine.Default(), nil)
		sparse.Backend = lp.BackendSparse
		dense := NewSolver(machine.Default(), nil)
		dense.Backend = lp.BackendDense

		ss, serr := sparse.Solve(g, cap)
		ds, derr := dense.Solve(g, cap)
		if (serr == nil) != (derr == nil) {
			t.Fatalf("cap %v: sparse err %v, dense err %v", cap, serr, derr)
		}
		if serr != nil {
			if !errors.Is(serr, ErrInfeasible) || !errors.Is(derr, ErrInfeasible) {
				t.Fatalf("cap %v: non-infeasibility errors %v / %v", cap, serr, derr)
			}
			continue
		}
		if math.Abs(ss.MakespanS-ds.MakespanS) > 1e-9*(1+ds.MakespanS) {
			t.Fatalf("cap %v: sparse makespan %.15g, dense %.15g", cap, ss.MakespanS, ds.MakespanS)
		}
	}
}

// TestErrInfeasibleWrapsLP: the layered sentinels must chain so callers can
// match at whichever level they know about.
func TestErrInfeasibleWrapsLP(t *testing.T) {
	if !errors.Is(ErrInfeasible, lp.ErrInfeasible) {
		t.Fatal("core.ErrInfeasible does not wrap lp.ErrInfeasible")
	}
	_, err := solver().Solve(imbalancedGraph(), 15)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want core.ErrInfeasible chain, got %v", err)
	}
	if !errors.Is(err, lp.ErrInfeasible) {
		t.Fatalf("want lp.ErrInfeasible chain, got %v", err)
	}
}
