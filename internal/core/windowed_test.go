package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"powercap/internal/lp"
	"powercap/internal/workloads"
)

// TestWindowedSingleWindowMatchesGolden: one window with coarsening
// disabled is the monolithic formulation run through the windowed path
// (speculative solve, canonical replay, stitch), so it must reproduce the
// pinned pre-refactor objectives bit-for-bit to solver tolerance on both
// LP backends.
func TestWindowedSingleWindowMatchesGolden(t *testing.T) {
	for name, want := range goldenLP {
		g := goldenSlice(t, name)
		for _, backend := range []lp.Backend{lp.BackendSparse, lp.BackendDense} {
			s := solver()
			s.Backend = backend
			for i, perSocket := range goldenCaps {
				ws, err := s.SolveWindowed(g, perSocket*8, WindowedOptions{Windows: 1})
				if err != nil {
					t.Fatalf("%s backend %v cap %v: %v", name, backend, perSocket, err)
				}
				if ws.Windows != 1 {
					t.Fatalf("%s: requested 1 window, got %d", name, ws.Windows)
				}
				if rel := math.Abs(ws.MakespanS-want[i]) / want[i]; rel > 1e-9 {
					t.Errorf("%s backend %v cap %v: windowed makespan %.12f, golden %.12f (rel %g)",
						name, backend, perSocket, ws.MakespanS, want[i], rel)
				}
			}
		}
	}
}

// TestWindowedNeverBeatsMonolithic is the decomposition's soundness
// property: the stitched schedule is feasible for the monolithic LP, so
// its makespan can never be below the monolithic optimum, and every
// window seam must respect the cap under the committed powers.
func TestWindowedNeverBeatsMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := workloads.Names()
	for trial := 0; trial < 8; trial++ {
		var w *workloads.Workload
		var name string
		if trial%4 == 3 {
			name = "Synthetic"
			w = workloads.Synthetic(workloads.SynthParams{
				Ranks: 2 + rng.Intn(3), Events: 150 + rng.Intn(150), Seed: int64(trial + 1),
			})
		} else {
			name = names[rng.Intn(len(names))]
			var err error
			w, err = workloads.ByName(name, workloads.Params{
				Ranks:      2 + rng.Intn(3),
				Iterations: 1 + rng.Intn(2),
				Seed:       int64(trial + 1),
				WorkScale:  0.25,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		g := w.Graph
		s := NewSolver(solver().Model, w.EffScale)
		perSocket := 30 + rng.Float64()*40
		capW := perSocket * float64(g.NumRanks)

		mono, err := s.Solve(g, capW)
		if err != nil {
			continue // infeasible caps are exercised elsewhere
		}
		for _, windows := range []int{2, 3, 5} {
			ws, err := s.SolveWindowed(g, capW, WindowedOptions{Windows: windows, OverlapEvents: -1})
			if err != nil {
				t.Fatalf("%s trial %d windows %d: %v", name, trial, windows, err)
			}
			if ws.MakespanS < mono.MakespanS*(1-1e-9) {
				t.Errorf("%s trial %d windows %d: windowed %.12f beats monolithic %.12f",
					name, trial, windows, ws.MakespanS, mono.MakespanS)
			}
			if ws.SeamViolationW > 1e-6 {
				t.Errorf("%s trial %d windows %d: seam cap violation %g W",
					name, trial, windows, ws.SeamViolationW)
			}
			if ws.SimMakespanS > ws.MakespanS*(1+1e-9)+1e-12 {
				t.Errorf("%s trial %d windows %d: simulated %.12f exceeds stitched %.12f",
					name, trial, windows, ws.SimMakespanS, ws.MakespanS)
			}
		}
	}
}

// TestWindowedCoarsenedStaysSound: with coarsening enabled the windowed
// objective is no longer one-sided against the monolithic LP — merging
// removes interior events, and with them event-order chain rows and
// interior power rows, so the coarse program is a *different* fixed-order
// restriction of the true scheduling problem (its optimum can land
// fractionally below the original's). The exhibit therefore reports a
// two-sided gap; this test pins its magnitude at this epsilon, and checks
// the stitched schedule still expands to every original task and
// simulates.
func TestWindowedCoarsenedStaysSound(t *testing.T) {
	w := workloads.Synthetic(workloads.SynthParams{Ranks: 4, Events: 400, Seed: 2})
	g := w.Graph
	s := NewSolver(solver().Model, w.EffScale)
	capW := 45.0 * float64(g.NumRanks)
	mono, err := s.Solve(g, capW)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.SolveWindowed(g, capW, WindowedOptions{Windows: 4, OverlapEvents: -1, CoarsenEps: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	if ws.MergedTasks == 0 {
		t.Fatal("epsilon chosen to merge tasks merged none")
	}
	if len(ws.Choices) != len(g.Tasks) {
		t.Fatalf("stitched schedule has %d choices for %d original tasks", len(ws.Choices), len(g.Tasks))
	}
	if gap := math.Abs(ws.MakespanS/mono.MakespanS - 1); gap > 0.05 {
		t.Fatalf("coarsened windowed gap %.2f%% exceeds 5%% (%.12f vs %.12f)",
			gap*100, ws.MakespanS, mono.MakespanS)
	}
	if ws.SeamViolationW > 1e-6 {
		t.Fatalf("seam cap violation %g W", ws.SeamViolationW)
	}
}

// TestWindowedWarmStartsAndReuse: a multi-window solve on the sparse
// backend should repair speculative bases with dual pivots rather than
// resolving from scratch, and the boundary-free first window should reuse
// its speculative solution outright.
func TestWindowedWarmStartsAndReuse(t *testing.T) {
	g := goldenSlice(t, "SP")
	s := solver()
	ws, err := s.SolveWindowed(g, 50*8, WindowedOptions{Windows: 4, OverlapEvents: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Windows < 2 {
		t.Skipf("instance only admitted %d windows", ws.Windows)
	}
	if ws.SpeculativeSolves == 0 {
		t.Fatal("no speculative solves recorded")
	}
	if ws.CommitSolves >= ws.Windows {
		t.Errorf("all %d windows commit-solved; the boundary-free first window should reuse its speculative solution", ws.Windows)
	}
	if ws.CommitSolves > 0 && ws.WarmStartHits == 0 {
		t.Errorf("0/%d commit solves warm-started", ws.CommitSolves)
	}
	if ws.WarmStartRate() < 0 || ws.WarmStartRate() > 1 {
		t.Errorf("warm-start rate %v out of range", ws.WarmStartRate())
	}
}

// TestWindowedPlanCacheReused: same graph, same slicing — one plan.
func TestWindowedPlanCacheReused(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	if _, err := s.SolveWindowed(g, 140, WindowedOptions{Windows: 2}); err != nil {
		t.Fatal(err)
	}
	if len(s.planCache) != 1 {
		t.Fatalf("plan cache has %d entries, want 1", len(s.planCache))
	}
	ir, err := s.IR(g)
	if err != nil {
		t.Fatal(err)
	}
	p1 := s.planCtx(context.Background(), g, ir, 2, 0)
	p2 := s.planCtx(context.Background(), g, ir, 2, 0)
	if p1 != p2 {
		t.Fatal("plan rebuilt for an unchanged (graph, windows, overlap)")
	}
}

// TestWindowedInfeasibleCap: a cap below the job's idle floor must surface
// ErrInfeasible from the windowed path too, after the escalation ladder
// has exhausted the monolithic rung.
func TestWindowedInfeasibleCap(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	_, err := s.SolveWindowed(g, 1, WindowedOptions{Windows: 2})
	if err == nil {
		t.Fatal("expected infeasibility at 1 W")
	}
}
