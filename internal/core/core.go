// Package core implements the paper's primary contribution: the
// fixed-vertex-order linear programming formulation of the power-constrained
// performance optimization problem for hybrid MPI + OpenMP applications
// (Sec. 3.1–3.3).
//
// Given an application DAG (internal/dag), a machine model
// (internal/machine), and a job-level power constraint PC, the solver builds
// and solves the LP of Figures 4–6:
//
//	minimize  vM                                        (1)
//	v_Init = 0                                          (2)
//	s_j − s_i ≥ d_i              ∀ (i,j) ∈ E            (3)
//	s_i = v_src(i)                                      (4)
//	0 ≤ c_{i,j} ≤ 1                                     (6)  continuous configs
//	d_i = Σ_j d_{i,j} c_{i,j}                           (7)
//	p_i = Σ_j p_{i,j} c_{i,j}                           (8)
//	Σ_j c_{i,j} = 1                                     (9)
//	P_j ≥ Σ_{i∈R_j} p_i                                 (10)
//	P_j ≤ PC                                            (11)
//	v_i ≤ v_j  when event(v_i) < event(v_j)             (12)
//	v_i = v_j  when event(v_i) = event(v_j)             (13)
//
// with the derived quantities s, d, p, and P substituted away so the solved
// LP contains only the vertex times v and the configuration fractions c
// (substitution preserves the optimum exactly and keeps instances at
// simplex-friendly sizes; see DESIGN.md).
//
// The problem skeleton — initial schedule, event order, activity sets R_j,
// and per-task frontier columns — is not assembled here: internal/problem
// builds it once, cap-independently, as an IR shared by every backend (the
// dense and sparse LPs here, SolveSlackAware, SolveDiscrete, and
// internal/flowilp) and cached per graph digest on the Solver, so cap
// sweeps and repeated service requests pay for one build.
package core

import (
	"context"
	"fmt"
	"sync"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/obs"
	"powercap/internal/problem"
)

// ErrInfeasible reports that no schedule exists under the given power
// constraint: even the lowest-power configuration of every co-scheduled
// task exceeds PC at some event. The paper hits the same wall ("Some
// benchmarks were not able to be scheduled at the lowest average per-socket
// power constraint", Figs. 9–10). It wraps lp.ErrInfeasible, so
// errors.Is(err, lp.ErrInfeasible) also holds for every error chain that
// matches this sentinel.
var ErrInfeasible = fmt.Errorf("core: power constraint infeasible: %w", lp.ErrInfeasible)

// MixEntry is one frontier configuration participating in a task's convex
// mix, with the duration and power the task would have if run entirely in
// that configuration.
type MixEntry struct {
	Config    machine.Config
	Frac      float64
	DurationS float64
	PowerW    float64
}

// TaskChoice is the LP's decision for one compute task.
type TaskChoice struct {
	// Mix is the continuous solution: fractions over frontier
	// configurations (at most two adjacent ones in a nondegenerate basic
	// solution).
	Mix []MixEntry
	// DurationS and PowerW are the mixed duration (Eq. 7) and
	// time-weighted average power (Eq. 8).
	DurationS float64
	PowerW    float64
	// Discrete is the rounded single configuration — "the configuration
	// closest to the optimal point on the Pareto frontier" (Sec. 3.2) —
	// with its duration and power.
	Discrete          machine.Config
	DiscreteDurationS float64
	DiscretePowerW    float64
}

// Schedule is a solved LP schedule.
type Schedule struct {
	// CapW is the job-level power constraint PC the schedule respects.
	CapW float64
	// MakespanS is the LP objective vM: the theoretical lower bound on
	// time to solution under PC (and thus the upper bound on performance).
	MakespanS float64
	// Choices is indexed by dag.TaskID; message and zero-work tasks have
	// an empty Mix.
	Choices []TaskChoice
	// VertexTimeS gives each vertex's LP-scheduled time. For per-iteration
	// solves, times are local to each iteration's origin.
	VertexTimeS []float64
	// IterationMakespans, for SolveIterations, records each slice's
	// contribution (prologue first).
	IterationMakespans []float64
	// MarginalSecPerW is the shadow price of the power constraint:
	// d(makespan)/d(PC), summed over the binding event-power rows
	// (non-positive — more power can only help). It quantifies what one
	// more watt of job budget would buy, the marginal information a
	// power-aware job scheduler needs.
	MarginalSecPerW float64
	// Stats aggregates solver effort.
	Stats Stats
}

// Stats summarizes LP solver effort for a schedule, including the kernel's
// numerical-health counters (DESIGN.md §16): effort fields accumulate,
// MaxEtaLen and RowNormRatio keep the worst instance seen.
type Stats struct {
	Solves      int // LP instances solved
	Vars        int // total variables across instances
	Rows        int // total constraint rows across instances
	SimplexIter int // total simplex pivots (primal + dual)

	DualIter         int // dual simplex pivots spent repairing warm starts
	WarmStarts       int // solves that actually reused a prior basis
	Refactorizations int // sparse-backend basis reinversions

	MaxEtaLen        int     // peak basis-update file length across solves
	PivotRejections  int     // LU threshold-pivoting row rejections
	FactorTauRetries int     // factorizations retried under strict pivoting
	NaNRecoveries    int     // refactorize-and-retry repairs of NaN/Inf state
	BlandActivations int     // anti-cycling fallback engagements
	PresolveRows     int     // rows eliminated by presolve
	PresolveCols     int     // columns eliminated by presolve
	RowNormRatio     float64 // worst max/min row-norm ratio (scaling proxy)
}

// Add accumulates other into s (used when merging sweep-point stats).
func (s *Stats) Add(other Stats) {
	s.Solves += other.Solves
	s.Vars += other.Vars
	s.Rows += other.Rows
	s.SimplexIter += other.SimplexIter
	s.DualIter += other.DualIter
	s.WarmStarts += other.WarmStarts
	s.Refactorizations += other.Refactorizations
	if other.MaxEtaLen > s.MaxEtaLen {
		s.MaxEtaLen = other.MaxEtaLen
	}
	s.PivotRejections += other.PivotRejections
	s.FactorTauRetries += other.FactorTauRetries
	s.NaNRecoveries += other.NaNRecoveries
	s.BlandActivations += other.BlandActivations
	s.PresolveRows += other.PresolveRows
	s.PresolveCols += other.PresolveCols
	if other.RowNormRatio > s.RowNormRatio {
		s.RowNormRatio = other.RowNormRatio
	}
}

// AddSolve folds one LP solution — effort and health counters — into s.
// The two solve paths (whole-problem and windowed) share this so a counter
// added to SolveStats cannot reach one path and silently miss the other.
func (s *Stats) AddSolve(vars, rows int, sol *lp.Solution) {
	s.Solves++
	s.Vars += vars
	s.Rows += rows
	s.SimplexIter += sol.Iters
	s.DualIter += sol.Stats.DualIters
	s.Refactorizations += sol.Stats.Refactorizations
	if sol.Stats.WarmStarted {
		s.WarmStarts++
	}
	if sol.Stats.MaxEtaLen > s.MaxEtaLen {
		s.MaxEtaLen = sol.Stats.MaxEtaLen
	}
	s.PivotRejections += sol.Stats.PivotRejections
	s.FactorTauRetries += sol.Stats.FactorTauRetries
	s.NaNRecoveries += sol.Stats.NaNRecoveries
	s.BlandActivations += sol.Stats.BlandActivations
	s.PresolveRows += sol.Stats.PresolveRows
	s.PresolveCols += sol.Stats.PresolveCols
	if r := sol.Stats.RowNormRatio(); r > s.RowNormRatio {
		s.RowNormRatio = r
	}
}

// Solver builds and solves fixed-vertex-order LPs against a machine model.
type Solver struct {
	Model *machine.Model
	// EffScale is the per-rank socket power-efficiency multiplier
	// (manufacturing variation); nil means 1.0 everywhere.
	EffScale []float64
	// PowerTiebreak is a tiny objective weight on total task power that
	// resolves the degeneracy among off-critical-path tasks in favor of
	// low power, mirroring the paper's initial-schedule modification that
	// "slows tasks off the critical path as much as possible". It
	// perturbs the reported makespan by < 1e-4 relative.
	PowerTiebreak float64
	// Backend selects the LP engine (see internal/lp). NewSolver defaults
	// to the sparse revised simplex, which supports the warm starts that
	// SolveSweep exploits; set lp.BackendDense to force the reference
	// full-tableau implementation.
	Backend lp.Backend
	// Engine selects the sparse backend's basis-inverse engine
	// (lp.EngineAuto → the sparse LU; lp.EngineEta for the reference
	// product-form eta file). Ignored by the dense backend.
	Engine lp.Engine
	// Pricing selects the sparse backend's entering rule (lp.PricingAuto →
	// steepest edge; lp.PricingDantzig for the reference full scan).
	Pricing lp.Pricing

	// mu guards fs, irCache, and planCache: SweepParallel and the
	// scheduling service share one Solver across goroutines.
	mu        sync.Mutex
	fs        *problem.FrontierSet
	irCache   map[[32]byte]*problem.IR
	planCache map[planKey]*problem.Plan
}

// NewSolver returns a Solver over the given model. effScale may be nil.
func NewSolver(model *machine.Model, effScale []float64) *Solver {
	return &Solver{
		Model:         model,
		EffScale:      effScale,
		PowerTiebreak: 1e-7,
		Backend:       lp.BackendSparse,
	}
}

func (s *Solver) eff(rank int) float64 {
	if s.EffScale == nil || rank < 0 || rank >= len(s.EffScale) {
		return 1
	}
	return s.EffScale[rank]
}

// Frontiers returns the Solver's shared frontier cache (lazily created so a
// zero-value Solver still works).
func (s *Solver) Frontiers() *problem.FrontierSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fs == nil {
		s.fs = problem.NewFrontierSet(s.Model, s.EffScale)
	}
	return s.fs
}

// Frontier returns the convex Pareto frontier for a task shape on a rank's
// socket, cached per (shape, rank). Safe for concurrent use: parallel sweep
// workers share one Solver and race benignly on the cache.
func (s *Solver) Frontier(shape machine.Shape, rank int) *problem.Frontier {
	return s.Frontiers().For(shape, rank)
}

// IR returns the cap-independent problem IR for graph g, built on first use
// and cached by graph digest — so a cap sweep, the rounding/realization
// layer, and repeated service requests against the same graph share one
// build (initial schedule, activity sets, event order, frontier columns).
func (s *Solver) IR(g *dag.Graph) (*problem.IR, error) {
	return s.IRCtx(context.Background(), g)
}

// IRCtx is IR with obs span parentage: a cache miss records the IR build
// (problem.build and its children) under the caller's span.
func (s *Solver) IRCtx(ctx context.Context, g *dag.Graph) (*problem.IR, error) {
	key := dag.Digest(g)
	s.mu.Lock()
	if ir, ok := s.irCache[key]; ok {
		s.mu.Unlock()
		_, sp := obs.Start(ctx, "problem.ir")
		sp.SetAttr("cached", true)
		sp.End()
		return ir, nil
	}
	s.mu.Unlock()

	ictx, sp := obs.Start(ctx, "problem.ir")
	sp.SetAttr("cached", false)
	ir, err := problem.BuildWithCtx(ictx, s.Frontiers(), g)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.irCache == nil {
		s.irCache = make(map[[32]byte]*problem.IR)
	}
	// A racing builder may have stored an equivalent IR first; keep the
	// stored one so callers share pointers.
	if prior, ok := s.irCache[key]; ok {
		ir = prior
	} else {
		s.irCache[key] = ir
	}
	s.mu.Unlock()
	return ir, nil
}

// Solve solves the fixed-vertex-order LP for the whole graph under the
// job-level power constraint capW (watts across all sockets).
func (s *Solver) Solve(g *dag.Graph, capW float64) (*Schedule, error) {
	return s.solve(context.Background(), g, capW, false)
}

// SolveCtx is Solve with a cancellation context threaded into the simplex
// pivot loops: once ctx is done the solve stops within a few pivots and
// returns an error wrapping ctx.Err().
func (s *Solver) SolveCtx(ctx context.Context, g *dag.Graph, capW float64) (*Schedule, error) {
	return s.solve(ctx, g, capW, false)
}

// SolveIterations decomposes the graph at its MPI_Pcontrol boundaries
// (global synchronization points in the paper's instrumented benchmarks),
// solves each iteration's LP independently, and recombines: the job
// makespan is the sum of iteration makespans, and task choices are mapped
// back to the original task IDs.
func (s *Solver) SolveIterations(g *dag.Graph, capW float64) (*Schedule, error) {
	return s.solve(context.Background(), g, capW, true)
}

// SolveIterationsCtx is SolveIterations with per-request cancellation; the
// context is checked inside every slice's pivot loops, so a canceled
// request stops mid-decomposition instead of finishing remaining slices.
func (s *Solver) SolveIterationsCtx(ctx context.Context, g *dag.Graph, capW float64) (*Schedule, error) {
	return s.solve(ctx, g, capW, true)
}

// SolveCtxWith is the fully parameterized solve: whole-graph or decomposed,
// on an explicit LP backend instead of the Solver's default. The resilience
// ladder (internal/resilience) uses it to retry the same request on the
// dense reference backend after a sparse numerical breakdown without
// mutating the shared Solver.
func (s *Solver) SolveCtxWith(ctx context.Context, g *dag.Graph, capW float64, decompose bool, backend lp.Backend) (*Schedule, error) {
	return s.solveWith(ctx, g, capW, decompose, backend, s.Engine)
}

// SolveCtxWithEngine additionally pins the sparse backend's basis engine for
// this one request. The resilience ladder uses it to retry a sparse
// numerical breakdown on the reference eta engine before abandoning the
// sparse backend altogether.
func (s *Solver) SolveCtxWithEngine(ctx context.Context, g *dag.Graph, capW float64, decompose bool, backend lp.Backend, eng lp.Engine) (*Schedule, error) {
	return s.solveWith(ctx, g, capW, decompose, backend, eng)
}

// solve is the single entry point behind the four exported wrappers: one
// ctx-aware path that either solves the whole graph or decomposes it at
// iteration boundaries. A decomposing solve of a graph without Pcontrol
// boundaries degrades to the whole-graph solve.
func (s *Solver) solve(ctx context.Context, g *dag.Graph, capW float64, decompose bool) (*Schedule, error) {
	return s.solveWith(ctx, g, capW, decompose, s.Backend, s.Engine)
}

func (s *Solver) solveWith(ctx context.Context, g *dag.Graph, capW float64, decompose bool, backend lp.Backend, eng lp.Engine) (*Schedule, error) {
	ctx, span := obs.Start(ctx, "core.solve")
	defer span.End()
	span.SetAttr("cap_w", capW)
	span.SetAttr("backend", backend.String())
	span.SetAttr("decompose", decompose)

	if decompose {
		_, sp := obs.Start(ctx, "dag.slice")
		slices, err := dag.SliceAll(g)
		sp.SetAttr("slices", len(slices))
		sp.End()
		if err != nil {
			return nil, err
		}
		if len(slices) > 0 {
			sched := &Schedule{
				CapW:        capW,
				Choices:     make([]TaskChoice, len(g.Tasks)),
				VertexTimeS: nil, // per-iteration local times are not global
			}
			for si, sl := range slices {
				ictx, isp := obs.Start(ctx, "core.iteration")
				isp.SetAttr("slice", si)
				vt := make([]float64, len(sl.Graph.Vertices))
				err := s.solveInto(ictx, sl.Graph, capW, backend, eng, sched, sl.TaskMap, vt)
				isp.End()
				if err != nil {
					return nil, fmt.Errorf("iteration slice: %w", err)
				}
				m := finalizeTime(sl.Graph, vt)
				sched.IterationMakespans = append(sched.IterationMakespans, m)
				sched.MakespanS += m
			}
			return sched, nil
		}
	}
	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(g.Tasks)),
		VertexTimeS: make([]float64, len(g.Vertices)),
	}
	if err := s.solveInto(ctx, g, capW, backend, eng, sched, identityTaskMap(len(g.Tasks)), sched.VertexTimeS); err != nil {
		return nil, err
	}
	sched.MakespanS = finalizeTime(g, sched.VertexTimeS)
	return sched, nil
}

func identityTaskMap(n int) []dag.TaskID {
	m := make([]dag.TaskID, n)
	for i := range m {
		m[i] = dag.TaskID(i)
	}
	return m
}

func finalizeTime(g *dag.Graph, vt []float64) float64 {
	for i := range g.Vertices {
		if g.Vertices[i].Kind == dag.VFinalize {
			return vt[i]
		}
	}
	return 0
}
