package core

import (
	"fmt"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/problem"
)

// SolveSlackAware solves the fixed-vertex-order formulation with slack
// priced separately from computation — the alternative Sec. 3.3 describes
// but does not adopt for the main LP: "If a task's slack power were
// treated as distinct from the active power (as in the Appendix),
// additional power would be available for use in other simultaneously
// running tasks, at the expense of introducing additional events at
// task/slack boundaries."
//
// This variant introduces one boundary event per tunable task (its
// execution end, v_src + d_i) and prices each rank at its task's power
// while running but only at idle power while slacking. Whether a task is
// still running at a given event is fixed from the power-unconstrained
// initial schedule, in the same spirit as the fixed event order — so like
// the main LP this is a near-optimal model, trading the main LP's
// conservatism (slack holds task power) for twice the event count and a
// fixed running/slacking classification.
//
// Its bound is never above the main LP's (idle ≤ task power frees budget),
// and it approaches the flow ILP's from above (the ILP also chooses event
// order). DESIGN.md §5.3 lists this as the slack-pricing ablation.
//
// The skeleton (variables, convexity, precedence) comes from the shared IR
// emitters; only the enlarged event set and its running/slacking power
// accounting — resolved through the IR's Occupancy — are specific here.
func (s *Solver) SolveSlackAware(g *dag.Graph, capW float64) (*Schedule, error) {
	ir, err := s.IR(g)
	if err != nil {
		return nil, err
	}
	init := ir.Init

	prob := lp.NewProblem(lp.Minimize)
	vVar, tv := emitSkeleton(ir, prob, func(name string, powerW float64) lp.Var {
		return prob.AddVar(name, s.PowerTiebreak*powerW)
	})

	// Event set: vertices plus per-task boundary events at their initial
	// end times. Order fixed from the initial schedule (Eqs. 12–13
	// generalized to the enlarged event set).
	type event struct {
		time   float64
		vertex dag.VertexID // valid when task < 0
		task   dag.TaskID   // boundary event of this task when ≥ 0
	}
	var events []event
	for i := range g.Vertices {
		events = append(events, event{time: init.VertexTime[i], vertex: dag.VertexID(i), task: -1})
	}
	for _, t := range g.Tasks {
		if ir.Class[t.ID] == problem.Tunable {
			events = append(events, event{time: init.End[t.ID], vertex: -1, task: t.ID})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].time < events[b].time })

	// exprOf gives each event's time as an LP expression: the vertex
	// variable, or v_src + Σ d·c for a boundary.
	exprOf := func(e event) lp.Expr {
		if e.task < 0 {
			return lp.Expr{}.Plus(vVar[e.vertex], 1)
		}
		t := g.Task(e.task)
		ex := lp.Expr{}.Plus(vVar[t.Src], 1)
		v := tv[e.task]
		for k := range v.cs {
			ex = ex.Plus(v.cs[k], v.cols.Durs[k])
		}
		return ex
	}
	for i := 1; i < len(events); i++ {
		prev := exprOf(events[i-1])
		cur := exprOf(events[i])
		for _, term := range prev {
			cur = cur.Plus(term.Var, -term.Coef)
		}
		rel := lp.GE
		if events[i-1].time == events[i].time {
			rel = lp.EQ
		}
		prob.MustConstraint(fmt.Sprintf("ord%d", i), cur, rel, 0)
	}

	// Power rows: every event gets one. A running task contributes its
	// configuration power; a slacking rank contributes idle power. The
	// per-rank occupancy (and the running/slacking split) comes from the
	// IR's shared Occupancy index.
	for ei, e := range events {
		var expr lp.Expr
		rhs := capW
		tj := e.time
		for r := 0; r < g.NumRanks; r++ {
			tid, ok := ir.Occ.TaskAt(r, tj)
			if !ok {
				continue
			}
			if v, vok := tv[tid]; vok && ir.Occ.Running(tid, tj) {
				for kk := range v.cs {
					expr = expr.Plus(v.cs[kk], v.cols.F.Pts[kk].PowerW)
				}
			} else {
				rhs -= s.Model.IdlePower(s.eff(r))
			}
		}
		if len(expr) == 0 {
			if rhs < 0 {
				return nil, fmt.Errorf("%w: idle floor exceeds cap %.1f W", ErrInfeasible, capW)
			}
			continue
		}
		prob.MustConstraint(fmt.Sprintf("pow%d", ei), expr, lp.LE, rhs)
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	default:
		return nil, fmt.Errorf("core: slack-aware LP returned %v", sol.Status)
	}

	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(g.Tasks)),
		VertexTimeS: make([]float64, len(g.Vertices)),
	}
	for i := range g.Vertices {
		sched.VertexTimeS[i] = sol.Value(vVar[i])
		if g.Vertices[i].Kind == dag.VFinalize {
			sched.MakespanS = sched.VertexTimeS[i]
		}
	}
	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch ir.Class[t.ID] {
		case problem.Message:
			choice.DurationS = t.FixedDur
		case problem.Fixed:
			choice.PowerW = ir.FixedPowerW[t.ID]
			choice.DiscretePowerW = ir.FixedPowerW[t.ID]
			choice.Discrete = machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1}
		case problem.Tunable:
			v := tv[t.ID]
			f := v.cols.F
			for k, cv := range v.cs {
				frac := sol.Value(cv)
				if frac <= 1e-9 {
					continue
				}
				choice.Mix = append(choice.Mix, MixEntry{
					Config: f.Cfgs[k], Frac: frac, DurationS: v.cols.Durs[k], PowerW: f.Pts[k].PowerW,
				})
				choice.DurationS += frac * v.cols.Durs[k]
				choice.PowerW += frac * f.Pts[k].PowerW
			}
			if idx, ok := f.Nearest(choice.PowerW); ok {
				choice.Discrete = f.Cfgs[idx]
				choice.DiscreteDurationS = v.cols.Durs[idx]
				choice.DiscretePowerW = f.Pts[idx].PowerW
			}
		}
		sched.Choices[t.ID] = choice
	}
	sched.Stats = Stats{Solves: 1, Vars: prob.NumVars(), Rows: prob.NumConstraints(), SimplexIter: sol.Iters}
	return sched, nil
}
