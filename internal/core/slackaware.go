package core

import (
	"fmt"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/pareto"
)

// SolveSlackAware solves the fixed-vertex-order formulation with slack
// priced separately from computation — the alternative Sec. 3.3 describes
// but does not adopt for the main LP: "If a task's slack power were
// treated as distinct from the active power (as in the Appendix),
// additional power would be available for use in other simultaneously
// running tasks, at the expense of introducing additional events at
// task/slack boundaries."
//
// This variant introduces one boundary event per tunable task (its
// execution end, v_src + d_i) and prices each rank at its task's power
// while running but only at idle power while slacking. Whether a task is
// still running at a given event is fixed from the power-unconstrained
// initial schedule, in the same spirit as the fixed event order — so like
// the main LP this is a near-optimal model, trading the main LP's
// conservatism (slack holds task power) for twice the event count and a
// fixed running/slacking classification.
//
// Its bound is never above the main LP's (idle ≤ task power frees budget),
// and it approaches the flow ILP's from above (the ILP also chooses event
// order). DESIGN.md §5.3 lists this as the slack-pricing ablation.
func (s *Solver) SolveSlackAware(g *dag.Graph, capW float64) (*Schedule, error) {
	init, err := s.initialSchedule(g)
	if err != nil {
		return nil, err
	}

	prob := lp.NewProblem(lp.Minimize)

	vVar := make([]lp.Var, len(g.Vertices))
	for i := range g.Vertices {
		obj := 0.0
		if g.Vertices[i].Kind == dag.VFinalize {
			obj = 1
		}
		vVar[i] = prob.AddVar(fmt.Sprintf("v%d", i), obj)
		if g.Vertices[i].Kind == dag.VInit {
			prob.MustConstraint("init0", lp.Expr{}.Plus(vVar[i], 1), lp.EQ, 0)
		}
	}

	type taskVars struct {
		f    *frontier
		durs []float64
		cs   []lp.Var
	}
	tv := make(map[dag.TaskID]*taskVars)
	fixedPower := make([]float64, len(g.Tasks))
	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
		case t.Work <= 0:
			fixedPower[t.ID] = s.Model.IdlePower(s.eff(t.Rank))
		default:
			f := s.Frontier(t.Shape, t.Rank)
			v := &taskVars{f: f, durs: make([]float64, len(f.pts)), cs: make([]lp.Var, len(f.pts))}
			var convex lp.Expr
			for k, p := range f.pts {
				v.durs[k] = p.TimeS * t.Work
				v.cs[k] = prob.AddVar(fmt.Sprintf("c%d_%d", t.ID, k), s.PowerTiebreak*p.PowerW)
				convex = convex.Plus(v.cs[k], 1)
			}
			prob.MustConstraint(fmt.Sprintf("cvx%d", t.ID), convex, lp.EQ, 1)
			tv[t.ID] = v
		}
	}

	// Precedence rows as in the main LP.
	for _, t := range g.Tasks {
		expr := lp.Expr{}.Plus(vVar[t.Dst], 1).Plus(vVar[t.Src], -1)
		rhs := 0.0
		switch {
		case t.Kind == dag.Message:
			rhs = t.FixedDur
		case t.Work <= 0:
		default:
			v := tv[t.ID]
			for k := range v.cs {
				expr = expr.Plus(v.cs[k], -v.durs[k])
			}
		}
		prob.MustConstraint(fmt.Sprintf("prec%d", t.ID), expr, lp.GE, rhs)
	}

	// Event set: vertices plus per-task boundary events at their initial
	// end times. Order fixed from the initial schedule (Eqs. 12–13
	// generalized to the enlarged event set).
	type event struct {
		time   float64
		vertex dag.VertexID // valid when task < 0
		task   dag.TaskID   // boundary event of this task when ≥ 0
	}
	var events []event
	for i := range g.Vertices {
		events = append(events, event{time: init.VertexTime[i], vertex: dag.VertexID(i), task: -1})
	}
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute && t.Work > 0 {
			events = append(events, event{time: init.End[t.ID], vertex: -1, task: t.ID})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].time < events[b].time })

	// exprOf gives each event's time as an LP expression: the vertex
	// variable, or v_src + Σ d·c for a boundary.
	exprOf := func(e event) lp.Expr {
		if e.task < 0 {
			return lp.Expr{}.Plus(vVar[e.vertex], 1)
		}
		t := g.Task(e.task)
		ex := lp.Expr{}.Plus(vVar[t.Src], 1)
		v := tv[e.task]
		for k := range v.cs {
			ex = ex.Plus(v.cs[k], v.durs[k])
		}
		return ex
	}
	for i := 1; i < len(events); i++ {
		prev := exprOf(events[i-1])
		cur := exprOf(events[i])
		for _, term := range prev {
			cur = cur.Plus(term.Var, -term.Coef)
		}
		rel := lp.GE
		if events[i-1].time == events[i].time {
			rel = lp.EQ
		}
		prob.MustConstraint(fmt.Sprintf("ord%d", i), cur, rel, 0)
	}

	// Per-rank occupancy from the initial schedule: at each event, which
	// task occupies the rank, and is it running or slacking there?
	byRank := make([][]dag.TaskID, g.NumRanks)
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			byRank[t.Rank] = append(byRank[t.Rank], t.ID)
		}
	}
	for r := range byRank {
		ids := byRank[r]
		sort.Slice(ids, func(i, j int) bool {
			if init.Start[ids[i]] != init.Start[ids[j]] {
				return init.Start[ids[i]] < init.Start[ids[j]]
			}
			return ids[i] < ids[j]
		})
	}

	// Power rows: every event gets one. A running task contributes its
	// configuration power; a slacking rank contributes idle power.
	for ei, e := range events {
		var expr lp.Expr
		rhs := capW
		tj := e.time
		for r := 0; r < g.NumRanks; r++ {
			ids := byRank[r]
			if len(ids) == 0 {
				continue
			}
			k := sort.Search(len(ids), func(k int) bool { return init.Start[ids[k]] > tj }) - 1
			if k < 0 {
				k = 0
			}
			tid := ids[k]
			running := tj < init.End[tid] || init.Start[tid] == tj
			if v, ok := tv[tid]; ok && running {
				for kk := range v.cs {
					expr = expr.Plus(v.cs[kk], v.f.pts[kk].PowerW)
				}
			} else {
				rhs -= s.Model.IdlePower(s.eff(r))
			}
		}
		if len(expr) == 0 {
			if rhs < 0 {
				return nil, fmt.Errorf("%w: idle floor exceeds cap %.1f W", ErrInfeasible, capW)
			}
			continue
		}
		prob.MustConstraint(fmt.Sprintf("pow%d", ei), expr, lp.LE, rhs)
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: cap %.1f W", ErrInfeasible, capW)
	default:
		return nil, fmt.Errorf("core: slack-aware LP returned %v", sol.Status)
	}

	sched := &Schedule{
		CapW:        capW,
		Choices:     make([]TaskChoice, len(g.Tasks)),
		VertexTimeS: make([]float64, len(g.Vertices)),
	}
	for i := range g.Vertices {
		sched.VertexTimeS[i] = sol.Value(vVar[i])
		if g.Vertices[i].Kind == dag.VFinalize {
			sched.MakespanS = sched.VertexTimeS[i]
		}
	}
	for _, t := range g.Tasks {
		choice := TaskChoice{}
		switch {
		case t.Kind == dag.Message:
			choice.DurationS = t.FixedDur
		case t.Work <= 0:
			choice.PowerW = fixedPower[t.ID]
			choice.DiscretePowerW = fixedPower[t.ID]
			choice.Discrete = machine.Config{FreqGHz: s.Model.FreqMinGHz, Threads: 1}
		default:
			v := tv[t.ID]
			for k, cv := range v.cs {
				frac := sol.Value(cv)
				if frac <= 1e-9 {
					continue
				}
				choice.Mix = append(choice.Mix, MixEntry{
					Config: v.f.cfgs[k], Frac: frac, DurationS: v.durs[k], PowerW: v.f.pts[k].PowerW,
				})
				choice.DurationS += frac * v.durs[k]
				choice.PowerW += frac * v.f.pts[k].PowerW
			}
			if p, ok := pareto.NearestToMix(v.f.pts, choice.PowerW); ok {
				idx := frontierIndex(v.f, p)
				choice.Discrete = v.f.cfgs[idx]
				choice.DiscreteDurationS = v.durs[idx]
				choice.DiscretePowerW = v.f.pts[idx].PowerW
			}
		}
		sched.Choices[t.ID] = choice
	}
	sched.Stats = Stats{Solves: 1, Vars: prob.NumVars(), Rows: prob.NumConstraints(), SimplexIter: sol.Iters}
	return sched, nil
}
