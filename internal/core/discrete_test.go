package core

import (
	"errors"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

func TestSolveDiscreteBoundsAndOrdering(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	for _, cap := range []float64{55, 70, 90, 140} {
		cont, err := s.Solve(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		disc, err := s.SolveDiscrete(g, cap)
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		// The continuous relaxation lower-bounds the discrete optimum
		// (Sec. 3.2: the LP "results in a shorter time to solution").
		if disc.MakespanS < cont.MakespanS-1e-6 {
			t.Fatalf("cap %v: discrete %v beat continuous %v", cap, disc.MakespanS, cont.MakespanS)
		}
		// And the exact discrete optimum is at least as good as naive
		// rounding of the continuous solution evaluated at fixed order:
		// check each task picked exactly one frontier config.
		for tid, task := range g.Tasks {
			if task.Kind != dag.Compute || task.Work <= 0 {
				continue
			}
			ch := disc.Choices[tid]
			if len(ch.Mix) != 1 || ch.Mix[0].Frac != 1 {
				t.Fatalf("cap %v task %d: not a single discrete config: %+v", cap, tid, ch.Mix)
			}
		}
	}
}

func TestSolveDiscreteRoundingGapSmall(t *testing.T) {
	// On convex frontiers the relaxation is tight: the discrete optimum
	// should be within a few percent of the continuous bound.
	g := imbalancedGraph()
	s := solver()
	cont, err := s.Solve(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := s.SolveDiscrete(g, 70)
	if err != nil {
		t.Fatal(err)
	}
	gap := disc.MakespanS/cont.MakespanS - 1
	if gap > 0.05 {
		t.Fatalf("rounding gap %.2f%% > 5%%", gap*100)
	}
}

func TestSolveDiscreteInfeasibleAndTooLarge(t *testing.T) {
	g := imbalancedGraph()
	s := solver()
	if _, err := s.SolveDiscrete(g, 15); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
	b := dag.NewBuilder(5)
	sh := machine.DefaultShape()
	for it := 0; it < 6; it++ {
		for r := 0; r < 5; r++ {
			b.Compute(r, 0.2, sh, "w")
		}
		b.Collective("s")
	}
	big := b.Finalize()
	if _, err := s.SolveDiscrete(big, 200); !errors.Is(err, ErrDiscreteTooLarge) {
		t.Fatalf("expected ErrDiscreteTooLarge, got %v", err)
	}
}
