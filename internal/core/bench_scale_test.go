package core

import (
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// BenchmarkSolve16RankSPSlice tracks the dense simplex's behaviour on the
// default experiment scale. At the paper's full 32 ranks the same slice
// needs ~22k pivots and ~70 s (the repository's known performance
// limitation; see README "Limitations") — kept out of the default harness
// for runtime's sake.
func BenchmarkSolve16RankSPSlice(b *testing.B) {
	w := workloads.SP(workloads.Params{Ranks: 16, Iterations: 4, Seed: 1})
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[2]
	s := NewSolver(machine.Default(), w.EffScale)
	b.ResetTimer()
	var pivots int
	for i := 0; i < b.N; i++ {
		sched, err := s.Solve(sl.Graph, 50*16)
		if err != nil {
			b.Fatal(err)
		}
		pivots = sched.Stats.SimplexIter
	}
	b.ReportMetric(float64(pivots), "pivots")
}
