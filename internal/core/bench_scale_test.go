package core

import (
	"testing"

	"powercap/internal/dag"
	"powercap/internal/lp"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

// BenchmarkSolve16RankSPSlice tracks the dense simplex's behaviour on the
// default experiment scale. At the paper's full 32 ranks the same slice
// needs ~22k pivots and ~70 s (the repository's known performance
// limitation; see README "Limitations") — kept out of the default harness
// for runtime's sake.
func BenchmarkSolve16RankSPSlice(b *testing.B) {
	w := workloads.SP(workloads.Params{Ranks: 16, Iterations: 4, Seed: 1})
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[2]
	s := NewSolver(machine.Default(), w.EffScale)
	b.ResetTimer()
	var pivots int
	for i := 0; i < b.N; i++ {
		sched, err := s.Solve(sl.Graph, 50*16)
		if err != nil {
			b.Fatal(err)
		}
		pivots = sched.Stats.SimplexIter
	}
	b.ReportMetric(float64(pivots), "pivots")
}

// benchSweepCaps is the cap family the sweep benchmarks share: 70 → 30 W
// per socket in 5 W steps, all feasible for the 16-rank SP slice.
func benchSweepCaps(ranks int) []float64 {
	var caps []float64
	for per := 70.0; per >= 30; per -= 5 {
		caps = append(caps, per*float64(ranks))
	}
	return caps
}

func benchSweepSlice(b *testing.B) (*dag.Graph, *workloads.Workload) {
	b.Helper()
	w := workloads.SP(workloads.Params{Ranks: 16, Iterations: 4, Seed: 1})
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	return slices[2].Graph, w
}

// BenchmarkSweepColdDense is the seed baseline: the full-tableau backend
// re-solving from scratch at every cap (what a sweep cost before the
// pluggable engine).
func BenchmarkSweepColdDense(b *testing.B) {
	g, w := benchSweepSlice(b)
	caps := benchSweepCaps(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(machine.Default(), w.EffScale)
		s.Backend = lp.BackendDense
		for _, c := range caps {
			if _, err := s.Solve(g, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepColdSparse isolates the backend change: sparse revised
// simplex, still cold at every cap.
func BenchmarkSweepColdSparse(b *testing.B) {
	g, w := benchSweepSlice(b)
	caps := benchSweepCaps(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(machine.Default(), w.EffScale)
		for _, c := range caps {
			if _, err := s.Solve(g, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepWarmSparse is the full warm-started sweep: build the LP
// once, dual-simplex repair per cap.
func BenchmarkSweepWarmSparse(b *testing.B) {
	g, w := benchSweepSlice(b)
	caps := benchSweepCaps(16)
	b.ResetTimer()
	var warm int
	for i := 0; i < b.N; i++ {
		s := NewSolver(machine.Default(), w.EffScale)
		pts, err := s.SolveSweep(g, caps)
		if err != nil {
			b.Fatal(err)
		}
		warm = 0
		for _, pt := range pts {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
			warm += pt.Schedule.Stats.WarmStarts
		}
	}
	b.ReportMetric(float64(warm), "warmstarts")
}
